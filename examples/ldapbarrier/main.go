// ldapbarrier reproduces the paper's #BUG 1 case study (Fig. 4): OpenLDAP
// worker threads spin on dbmp->mutex re-reading dbmfp->ref until the last
// holder releases its reference. The spin loop "performs the same function
// as barrier primitive", so the paper's fix replaces it with
// pthread_barrier — this example quantifies the recovered CPU.
//
//	go run ./examples/ldapbarrier
package main

import (
	"fmt"

	"perfplay/examples/internal/exhelp"
	"perfplay/internal/sim"
	"perfplay/internal/workload"
)

func main() {
	cfg := workload.Config{Threads: 4, Scale: 0.25, Seed: 11}

	app := workload.MustGet("openldap")
	analysis := exhelp.AnalyzeAppRaces("openldap", cfg)
	fmt.Print(analysis.Summary(4))

	// The spin loop shows up as read-read ULCPs in mp/mp_fopen.c.
	for _, g := range analysis.Debug.Groups {
		if g.CR1.File == "mp/mp_fopen.c" || g.CR2.File == "mp/mp_fopen.c" {
			fmt.Printf("\nFig. 4 spin-wait group: %s\n", g)
		}
	}

	// Barrier fix side by side.
	buggy := sim.Run(app.Build(cfg), sim.Config{Seed: 11})
	fixed := sim.Run(workload.BuildOpenldapFixed(cfg), sim.Config{Seed: 11})
	fmt.Printf("\nbuggy: total %v, CPU %v (spin waste %v)\n",
		buggy.Total, buggy.CPUTotal(), buggy.SpinWaste)
	fmt.Printf("fixed: total %v, CPU %v (spin waste %v)\n",
		fixed.Total, fixed.CPUTotal(), fixed.SpinWaste)
	saved := buggy.CPUTotal() - fixed.CPUTotal()
	fmt.Printf("the barrier fix recovers %v of CPU (%.2f%% per thread)\n",
		saved, 100*float64(saved)/float64(cfg.Threads)/float64(buggy.Total))
}
