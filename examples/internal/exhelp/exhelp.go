// Package exhelp is the shared glue for the runnable examples: one
// helper that drives the concurrent analysis pipeline and exits on
// error, so every example declares only its workload parameters and the
// paper-specific inspection it demonstrates.
package exhelp

import (
	"log"

	"perfplay/internal/core"
	"perfplay/internal/pipeline"
	"perfplay/internal/sim"
	"perfplay/internal/workload"
)

// Analyze runs the pipeline on a request, exiting the example on error.
func Analyze(req pipeline.Request) *pipeline.Result {
	res, err := pipeline.Run(req)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// AnalyzeApp analyzes one registered workload with the examples'
// default pool width.
func AnalyzeApp(app string, cfg workload.Config) *core.Analysis {
	return Analyze(pipeline.Request{
		App:     app,
		Threads: cfg.Threads,
		Input:   cfg.Input,
		Scale:   cfg.Scale,
		Seed:    cfg.Seed,
		Workers: 4,
	}).Analysis
}

// AnalyzeProgram analyzes a hand-built simulator program.
func AnalyzeProgram(p *sim.Program, seed int64) *core.Analysis {
	return Analyze(pipeline.Request{Program: p, Seed: seed, Workers: 4}).Analysis
}

// AnalyzeAppRaces is AnalyzeApp with the happens-before detector on.
func AnalyzeAppRaces(app string, cfg workload.Config) *core.Analysis {
	return Analyze(pipeline.Request{
		App:         app,
		Threads:     cfg.Threads,
		Input:       cfg.Input,
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		Workers:     4,
		DetectRaces: true,
	}).Analysis
}
