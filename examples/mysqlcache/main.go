// mysqlcache reproduces the paper's MySQL #68573 case study (Fig. 17 /
// Case 9): Query_cache::try_lock holds structure_guard_mutex around a
// 50 ms timed condition wait, so concurrent SELECTs serialize their waits
// and the effective timeout inflates with the number of threads.
//
// The example analyzes the buggy server model with PerfPlay, prints the
// recommendation pointing at sql_cache.cc, then measures the buggy and
// fixed variants side by side.
//
//	go run ./examples/mysqlcache
package main

import (
	"fmt"

	"perfplay/examples/internal/exhelp"
	"perfplay/internal/sim"
	"perfplay/internal/workload"
)

func main() {
	cfg := workload.Config{Threads: 4, Scale: 0.25, Seed: 7}

	app := workload.MustGet("mysql")
	analysis := exhelp.AnalyzeApp("mysql", cfg)
	fmt.Print(analysis.Summary(5))

	// Find the query-cache recommendation among the groups.
	fmt.Println("\nquery-cache related groups:")
	for _, g := range analysis.Debug.Groups {
		if g.CR1.File == "sql/sql_cache.cc" || g.CR2.File == "sql/sql_cache.cc" {
			fmt.Printf("  %s\n", g)
		}
	}

	// Quantify the fix: the patched server probes a lock-free status flag
	// instead of parking every SELECT on the guard mutex.
	buggy := sim.Run(app.Build(cfg), sim.Config{Seed: 7})
	fixed := sim.Run(workload.BuildMySQLFixed(cfg), sim.Config{Seed: 7})
	fmt.Printf("\nbuggy run:  %v total, %v waited\n", buggy.Total, buggy.Waited)
	fmt.Printf("fixed run:  %v total, %v waited\n", fixed.Total, fixed.Waited)
	if fixed.Total < buggy.Total {
		fmt.Printf("fix recovers %.1f%% of the run time\n",
			100*float64(buggy.Total-fixed.Total)/float64(buggy.Total))
	}
}
