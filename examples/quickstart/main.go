// Quickstart: build a small lock-based program against the simulator API,
// run the full PerfPlay pipeline on it, and print the ranked list of ULCP
// optimization opportunities.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"perfplay/examples/internal/exhelp"
	"perfplay/internal/sim"
	"perfplay/internal/ulcp"
)

func main() {
	// A toy cache: worker threads mostly read a shared table under one
	// big lock; a maintenance thread occasionally rewrites an entry.
	p := sim.NewProgram("quickstart")
	mu := p.NewLock("cache.mu")
	table := p.Mem.AllocN("cache.table", 4, 100)
	sGet := p.Site("cache.go", 42, "Get")
	sPut := p.Site("cache.go", 87, "Put")

	for w := 0; w < 3; w++ {
		p.AddThread(func(th *sim.Thread) {
			for i := 0; i < 40; i++ {
				th.Lock(mu, sGet)
				th.Read(table[i%len(table)], sGet)
				th.Compute(500) // deserialize the entry
				th.Unlock(mu, sGet)
				th.Compute(300) // use it
			}
		})
	}
	p.AddThread(func(th *sim.Thread) {
		for i := 0; i < 6; i++ {
			th.Compute(4000)
			th.Lock(mu, sPut)
			th.Read(table[i%len(table)], sPut)
			th.Write(table[i%len(table)], int64(1000+i), sPut)
			th.Unlock(mu, sPut)
		}
	})

	// Record, identify, transform, replay both traces, rank — one
	// pipeline request.
	analysis := exhelp.AnalyzeProgram(p, 1)
	fmt.Print(analysis.Summary(3))

	fmt.Println("\nbreakdown of identified pairs:")
	for _, cat := range []ulcp.Category{ulcp.NullLock, ulcp.ReadRead, ulcp.DisjointWrite, ulcp.Benign, ulcp.TLCP} {
		fmt.Printf("  %-14s %d\n", cat, analysis.Report.Counts[cat])
	}
	fmt.Printf("\nthe Get() read sections serialize needlessly: removing their\n"+
		"false dependencies recovers %.1f%% of the run time.\n",
		analysis.Debug.NormalizedDegradation()*100)
}
