// pbzip2join reproduces the paper's #BUG 2 case study (Fig. 18): pbzip2's
// consumers poll fifo->empty and producerDone under nested locks, creating
// read-read ULCPs that serialize the polling and burn CPU; the paper's fix
// moves the end-of-work check to the producer and signals the consumers
// (signal/wait model).
//
//	go run ./examples/pbzip2join
package main

import (
	"fmt"

	"perfplay/examples/internal/exhelp"
	"perfplay/internal/sim"
	"perfplay/internal/ulcp"
	"perfplay/internal/workload"
)

func main() {
	cfg := workload.Config{Threads: 2, Scale: 0.5, Seed: 3}

	app := workload.MustGet("pbzip2")
	analysis := exhelp.AnalyzeApp("pbzip2", cfg)
	fmt.Print(analysis.Summary(4))

	// The Fig. 18 pattern shows up as read-read pairs at
	// syncGetProducerDone (pbzip2.cpp:534) and the consumer poll loop.
	rr := 0
	for _, pair := range analysis.Report.Pairs {
		if pair.Cat == ulcp.ReadRead && pair.C1.Region.File == "pbzip2.cpp" {
			rr++
		}
	}
	fmt.Printf("\nread-read ULCPs in pbzip2.cpp (the Fig. 18 polling): %d\n", rr)

	// Side-by-side with the signal/wait fix: the polling CPU disappears.
	buggy := sim.Run(app.Build(cfg), sim.Config{Seed: 3})
	fixed := sim.Run(workload.BuildPbzip2Fixed(cfg), sim.Config{Seed: 3})
	fmt.Printf("\nbuggy: total %v, CPU %v\n", buggy.Total, buggy.CPUTotal())
	fmt.Printf("fixed: total %v, CPU %v\n", fixed.Total, fixed.CPUTotal())
	saved := buggy.CPUTotal() - fixed.CPUTotal()
	if saved > 0 {
		fmt.Printf("the signal/wait fix saves %v of CPU (%.1f%% of the buggy run's CPU)\n",
			saved, 100*float64(saved)/float64(buggy.CPUTotal()))
	}
}
