// elision contrasts PerfPlay's proactive fix-the-code approach with the
// dynamic alternative the paper argues against (Sec. 2.2): speculative
// lock elision. On a ULCP-heavy workload LE matches the ULCP-free replay;
// on a conflict-heavy one it pays aborts and rollbacks and ends up slower
// than the locks it elided — and in neither case does it tell the
// programmer what to fix.
//
//	go run ./examples/elision
package main

import (
	"fmt"
	"log"

	"perfplay/examples/internal/exhelp"
	"perfplay/internal/elision"
	"perfplay/internal/workload"
)

func main() {
	for _, name := range []string{"mysql", "bodytrack"} {
		a := exhelp.AnalyzeApp(name, workload.Config{Threads: 2, Scale: 0.25, Seed: 5})
		le, err := elision.Run(a.Recorded.Trace, elision.Options{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  locked execution:      %v\n", a.Debug.Tut)
		fmt.Printf("  PerfPlay ULCP-free:    %v (and it names the code region to fix)\n", a.Debug.Tuft)
		fmt.Printf("  lock elision:          %v\n", le.Total)
		fmt.Printf("  LE economy:            %d commits, %d aborts (%d false), %d fallbacks, %v wasted work (abort rate %.1f%%)\n",
			le.Commits, le.Aborts, le.FalseAborts, le.Fallbacks, le.WastedWork, le.AbortRate()*100)
		if len(a.Debug.Groups) > 0 {
			fmt.Printf("  PerfPlay's top advice: %s\n", a.Debug.Groups[0])
		}
		fmt.Println()
	}
	fmt.Println("mysql (ULCP-heavy): elision and the PerfPlay transform both recover the")
	fmt.Println("serialization — but only PerfPlay points at the source line.")
	fmt.Println("bodytrack (conflict-heavy): elision aborts constantly and loses ground;")
	fmt.Println("the transformation correctly leaves true contention alone.")
}
