// multitrace demonstrates the paper's Sec. 6.7 extension: analyzing the
// same application over several traces (different seeds and input sizes)
// and recommending only the code regions whose optimization opportunity
// holds in every execution — "this may prohibit any code modification
// that could lead to performance improvement in some cases but not all."
//
//	go run ./examples/multitrace
package main

import (
	"fmt"

	"perfplay/examples/internal/exhelp"
	"perfplay/internal/core"
	"perfplay/internal/multi"
	"perfplay/internal/workload"
)

func main() {
	var analyses []*core.Analysis
	configs := []workload.Config{
		{Threads: 2, Input: workload.SimSmall, Scale: 0.5, Seed: 1},
		{Threads: 2, Input: workload.SimMedium, Scale: 0.5, Seed: 2},
		{Threads: 4, Input: workload.SimLarge, Scale: 0.5, Seed: 3},
	}
	for _, cfg := range configs {
		a := exhelp.AnalyzeApp("facesim", cfg)
		fmt.Printf("trace %s/%d threads/seed %d: degradation %.2f%%, %d groups\n",
			cfg.Input, cfg.Threads, cfg.Seed,
			a.Debug.NormalizedDegradation()*100, len(a.Debug.Groups))
		analyses = append(analyses, a)
	}

	agg := multi.Merge(analyses)
	fmt.Println()
	fmt.Print(agg.Summary(6))

	fmt.Println("\nconsistent recommendations (safe across all inputs):")
	for i, g := range agg.Recommend(3) {
		fmt.Printf("  #%d %s\n", i+1, g)
	}
}
