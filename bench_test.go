// Package perfplay_test hosts the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (Sec. 6), plus
// micro-benchmarks of the pipeline stages. Each experiment benchmark
// regenerates its table/figure once per iteration and reports it with -v
// via b.Log on the first iteration; run
//
//	go test -bench=. -benchmem
//
// or use cmd/experiments to print the artifacts directly.
package perfplay_test

import (
	"testing"

	"perfplay/internal/elision"
	"perfplay/internal/experiments"
	"perfplay/internal/pipeline"
	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/transform"
	"perfplay/internal/ulcp"
	"perfplay/internal/workload"
)

// benchScale keeps the per-iteration experiment runs tractable while
// preserving every shape; cmd/experiments defaults to full scale.
const benchScale = 0.25

func benchCfg() experiments.Config {
	return experiments.Config{Scale: benchScale, Seed: 42, Replays: 5}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(benchCfg())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure2(benchCfg())
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure13(benchCfg())
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure14(benchCfg())
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2(benchCfg())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table3(benchCfg())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := experiments.Figure15(benchCfg())
		if i == 0 {
			for _, f := range fs {
				b.Log("\n" + f.String())
			}
		}
	}
}

func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := experiments.Figure16(benchCfg())
		if i == 0 {
			for _, f := range fs {
				b.Log("\n" + f.String())
			}
		}
	}
}

func BenchmarkFigure19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := experiments.Figure19(benchCfg())
		if i == 0 {
			for _, f := range fs {
				b.Log("\n" + f.String())
			}
		}
	}
}

// ---- pipeline-stage micro-benchmarks (ablation view) ----

// recordFluidanimate records the most lock-intensive PARSEC benchmark.
func recordApp(b *testing.B, name string) *sim.Result {
	b.Helper()
	app := workload.MustGet(name)
	p := app.Build(workload.Config{Threads: 2, Scale: benchScale, Seed: 42})
	return sim.Run(p, sim.Config{Seed: 42})
}

func BenchmarkRecordFluidanimate(b *testing.B) {
	app := workload.MustGet("fluidanimate")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := app.Build(workload.Config{Threads: 2, Scale: benchScale, Seed: 42})
		res := sim.Run(p, sim.Config{Seed: 42})
		b.ReportMetric(float64(len(res.Trace.Events)), "events")
	}
}

func BenchmarkExtractCS(b *testing.B) {
	rec := recordApp(b, "fluidanimate")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		css := rec.Trace.ExtractCS()
		b.ReportMetric(float64(len(css)), "critsecs")
	}
}

func BenchmarkIdentify(b *testing.B) {
	rec := recordApp(b, "mysql")
	css := rec.Trace.ExtractCS()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := ulcp.Identify(rec.Trace, css, ulcp.Options{})
		b.ReportMetric(float64(rep.NumULCPs()), "ulcps")
	}
}

func BenchmarkTransform(b *testing.B) {
	rec := recordApp(b, "mysql")
	css := rec.Trace.ExtractCS()
	rep := ulcp.Identify(rec.Trace, css, ulcp.Options{})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := transform.Apply(rec.Trace, css, rep); err != nil {
			b.Fatal(err)
		}
	}
}

// Replay micro-benchmarks: one per scheduler, measuring events/op.
func benchReplay(b *testing.B, sched replay.Scheduler) {
	rec := recordApp(b, "vips")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := replay.Run(rec.Trace, replay.Options{Sched: sched, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(len(rec.Trace.Events)), "events")
}

func BenchmarkReplayOrigS(b *testing.B) { benchReplay(b, replay.OrigS) }
func BenchmarkReplayELSCS(b *testing.B) { benchReplay(b, replay.ELSCS) }
func BenchmarkReplaySyncS(b *testing.B) { benchReplay(b, replay.SyncS) }
func BenchmarkReplayMemS(b *testing.B)  { benchReplay(b, replay.MemS) }

func BenchmarkFullPipelineOpenldap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Run(pipeline.Request{App: "openldap", Threads: 2, Scale: benchScale, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Analysis.Debug.NormalizedDegradation()*100, "deg%")
	}
}

// Pipeline throughput: the full staged analysis (record, four-scheme
// replay, sharded classification, quantification, report) serial vs
// parallel, so future PRs have a perf trajectory to compare against.
func benchPipelineWorkers(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Run(pipeline.Request{
			App: "mysql", Threads: 4, Scale: benchScale, Seed: 42,
			Workers: workers, Schemes: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Analysis.Report.NumULCPs()), "ulcps")
	}
}

func BenchmarkPipelineSerial(b *testing.B)   { benchPipelineWorkers(b, 1) }
func BenchmarkPipelineWorkers2(b *testing.B) { benchPipelineWorkers(b, 2) }
func BenchmarkPipelineWorkers4(b *testing.B) { benchPipelineWorkers(b, 4) }
func BenchmarkPipelineWorkers8(b *testing.B) { benchPipelineWorkers(b, 8) }

// Ablation: lockset replay with and without the dynamic locking strategy.
func benchLocksetReplay(b *testing.B, dls bool) {
	rec := recordApp(b, "dedup")
	css := rec.Trace.ExtractCS()
	rep := ulcp.Identify(rec.Trace, css, ulcp.Options{})
	tr, err := transform.Apply(rec.Trace, css, rep)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := replay.Run(tr.Trace, replay.Options{Sched: replay.ELSCS, DLS: dls, LocksetCost: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.LocksetOverhead), "overhead-ticks")
	}
}

func BenchmarkLocksetReplayNoDLS(b *testing.B) { benchLocksetReplay(b, false) }
func BenchmarkLocksetReplayDLS(b *testing.B)   { benchLocksetReplay(b, true) }

// Trace serialization round-trip throughput.
func BenchmarkTraceBinaryRoundTrip(b *testing.B) {
	rec := recordApp(b, "x264")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := rec.Trace.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.n))
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

var _ = trace.NoLock

func BenchmarkTableLE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableLE(benchCfg())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// Ablation: speculative lock elision vs the locked execution on one
// ULCP-heavy and one conflict-heavy benchmark.
func benchElision(b *testing.B, app string) {
	rec := recordApp(b, app)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := elision.Run(rec.Trace, elision.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AbortRate()*100, "abort%")
	}
}

func BenchmarkElisionMySQL(b *testing.B)     { benchElision(b, "mysql") }
func BenchmarkElisionBodytrack(b *testing.B) { benchElision(b, "bodytrack") }

// Simulator throughput: events recorded per second.
func BenchmarkSimThroughput(b *testing.B) {
	app := workload.MustGet("vips")
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		p := app.Build(workload.Config{Threads: 2, Scale: benchScale, Seed: 42})
		res := sim.Run(p, sim.Config{Seed: 42})
		events = len(res.Trace.Events)
	}
	b.ReportMetric(float64(events), "events")
}
