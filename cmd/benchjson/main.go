// Command benchjson converts `go test -bench` text output into the
// repo's BENCH_<sha>.json format, so CI can file one benchmark snapshot
// per commit as an artifact and the perf trajectory accumulates instead
// of living in scroll-back. It has no dependencies beyond the standard
// library on purpose: CI runs it with `go run` before anything else is
// installed.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -count=3 -run='^$' ./... | \
//	  benchjson -commit "$GITHUB_SHA" -out "BENCH_${GITHUB_SHA::12}.json"
//
// Repeated runs of the same benchmark (`-count=N`) are merged into one
// entry per benchmark carrying the per-metric *median*, which is what
// lets cmd/benchdiff gate CI at a tight threshold on noisy single-shot
// timings. The tool exits non-zero when the input contains no benchmark
// lines (or any package failed), so a CI job cannot silently upload an
// empty snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line — or, for `-count=N`
// runs, the per-metric median of N such lines.
type Benchmark struct {
	// Name is the benchmark's bare name (no "Benchmark" prefix, no
	// -GOMAXPROCS suffix); FullName preserves the raw first column.
	Name     string `json:"name"`
	FullName string `json:"full_name"`
	Pkg      string `json:"pkg,omitempty"`
	Procs    int    `json:"procs,omitempty"`
	// Iterations is b.N for the run (the median b.N for merged runs).
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the
	// line (ns/op, B/op, allocs/op, and anything b.ReportMetric added).
	Metrics map[string]float64 `json:"metrics"`
	// Runs counts how many result lines were merged into this entry
	// (absent for a single run).
	Runs int `json:"runs,omitempty"`
}

// Snapshot is the BENCH_<sha>.json document.
type Snapshot struct {
	Commit     string      `json:"commit,omitempty"`
	Generated  string      `json:"generated"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse reads `go test -bench` output. It tolerates interleaved b.Log
// lines and multiple packages, and reports an error when a package
// failed or no benchmark lines were found.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	failed := []string{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			failed = append(failed, line)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("benchmark run failed: %s", strings.Join(failed, "; "))
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found (ran with -bench and -benchtime?)")
	}
	snap.Benchmarks = aggregate(snap.Benchmarks)
	return snap, nil
}

// aggregate collapses repeated runs of the same benchmark — `go test
// -count=N` emits one result line per run — into one entry per
// (pkg, full name) whose metrics are per-metric medians. The median
// (not the mean) is what lets a CI gate run tight thresholds on noisy
// -benchtime=1x data: one cold-cache outlier run shifts the mean but
// not the middle. Single-run input passes through untouched, so the
// output schema only changes (gains "runs") when -count was used.
func aggregate(benchmarks []Benchmark) []Benchmark {
	byKey := make(map[string][]Benchmark)
	var order []string
	for _, b := range benchmarks {
		k := b.Pkg + "." + b.FullName
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], b)
	}
	out := make([]Benchmark, 0, len(order))
	for _, k := range order {
		runs := byKey[k]
		if len(runs) == 1 {
			out = append(out, runs[0])
			continue
		}
		agg := runs[0]
		agg.Runs = len(runs)
		agg.Metrics = make(map[string]float64)
		names := make(map[string]bool)
		for _, r := range runs {
			for name := range r.Metrics {
				names[name] = true
			}
		}
		for name := range names {
			var vals []float64
			for _, r := range runs {
				if v, ok := r.Metrics[name]; ok {
					vals = append(vals, v)
				}
			}
			agg.Metrics[name] = median(vals)
		}
		iters := make([]float64, len(runs))
		for i, r := range runs {
			iters[i] = float64(r.Iterations)
		}
		agg.Iterations = int64(median(iters))
		out = append(out, agg)
	}
	return out
}

// median returns the middle of the values (which it sorts in place);
// even counts average the two middle values.
func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// parseBenchLine parses one "BenchmarkX-4  10  123 ns/op  456 B/op"
// line. Lines that merely start with "Benchmark" but do not follow the
// tabular shape (a b.Log line, say) are skipped, not errors.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		FullName:   fields[0],
		Pkg:        pkg,
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func main() {
	var (
		in     = flag.String("in", "-", "benchmark output file (- = stdin)")
		out    = flag.String("out", "-", "JSON destination (- = stdout)")
		commit = flag.String("commit", "", "commit SHA to stamp into the snapshot")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		defer f.Close()
		src = f
	}
	snap, err := parse(src)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	snap.Commit = *commit
	snap.Generated = time.Now().UTC().Format(time.RFC3339)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}
