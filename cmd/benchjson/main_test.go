package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: perfplay
cpu: Intel(R) Xeon(R) CPU
BenchmarkTable1-4             	       1	 123456789 ns/op
BenchmarkTraceBinaryRoundTrip-4  	       3	   1234 ns/op	     567 B/op	       8 allocs/op
BenchmarkCustomMetric-8       	      10	    99.5 ns/op	        42.0 widgets/op
    bench_test.go:38:
        some b.Log output that mentions BenchmarkTable1 mid-line
PASS
ok  	perfplay	12.3s
pkg: perfplay/internal/pipeline
BenchmarkPipelineSerial       	       1	  55 ns/op
PASS
ok  	perfplay/internal/pipeline	1.0s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || !strings.Contains(snap.CPU, "Xeon") {
		t.Fatalf("header: %+v", snap)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}

	b := snap.Benchmarks[0]
	if b.Name != "Table1" || b.FullName != "BenchmarkTable1-4" || b.Procs != 4 ||
		b.Iterations != 1 || b.Pkg != "perfplay" {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 {
		t.Fatalf("ns/op = %v", b.Metrics)
	}

	rt := snap.Benchmarks[1]
	if rt.Metrics["B/op"] != 567 || rt.Metrics["allocs/op"] != 8 {
		t.Fatalf("round-trip metrics: %v", rt.Metrics)
	}

	cm := snap.Benchmarks[2]
	if cm.Metrics["widgets/op"] != 42.0 || cm.Procs != 8 {
		t.Fatalf("custom metric: %+v", cm)
	}

	// The second package's context sticks.
	if last := snap.Benchmarks[3]; last.Pkg != "perfplay/internal/pipeline" ||
		last.Name != "PipelineSerial" || last.Procs != 0 {
		t.Fatalf("last benchmark: %+v", last)
	}
}

func TestParseRejectsEmptyAndFailed(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  \tperfplay\t1s\n")); err == nil {
		t.Fatal("empty input must be an error, not an empty snapshot")
	}
	failed := "BenchmarkX-4\t1\t5 ns/op\n--- FAIL: TestY\nFAIL\nFAIL\tperfplay\t1s\n"
	if _, err := parse(strings.NewReader(failed)); err == nil {
		t.Fatal("FAIL lines must fail the conversion")
	}
}

func TestParseBenchLineShapes(t *testing.T) {
	for _, line := range []string{
		"Benchmark output from a log line",
		"BenchmarkNoMetrics-4\t1",
		"BenchmarkOdd-4\t1\t5",
		// Value columns that fail to parse as numbers must reject the
		// line, not silently record garbage metrics.
		"BenchmarkBadValue-4\t1\tfast ns/op",
		"BenchmarkBadSecond-4\t1\t5 ns/op\toops B/op",
		// A non-numeric iteration count is a log line, not a result.
		"BenchmarkBadIters-4\tmany\t5 ns/op",
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Fatalf("line %q parsed as a benchmark", line)
		}
	}
	b, ok := parseBenchLine("BenchmarkPlain\t100\t5 ns/op", "p")
	if !ok || b.Procs != 0 || b.Name != "Plain" || b.Iterations != 100 {
		t.Fatalf("plain line: %+v ok=%t", b, ok)
	}
}

// TestParseTotallyEmptyInput: zero bytes of input (a bench run that
// crashed before printing anything) is an error, distinct from the
// PASS-but-no-benchmarks case TestParseRejectsEmptyAndFailed covers.
func TestParseTotallyEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("")); err == nil {
		t.Fatal("empty input produced a snapshot")
	}
}

// TestParseSkipsUnparsableAmongGood: one mangled line (a b.Log that
// happens to start with "Benchmark") must not poison the surrounding
// real results.
func TestParseSkipsUnparsableAmongGood(t *testing.T) {
	in := "pkg: p\nBenchmarkGood-4\t2\t10 ns/op\nBenchmarkBad-4\t1\tNaN%% ns/op garbage\nBenchmarkAlso-4\t3\t20 ns/op\n"
	snap, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want the 2 well-formed ones: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
}

// TestMedianMath pins the aggregation primitive for odd and even run
// counts (even counts average the two middle values).
func TestMedianMath(t *testing.T) {
	cases := []struct {
		vals []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},           // odd: middle of the sorted values
		{[]float64{4, 1, 3, 2}, 2.5},      // even: mean of the two middles
		{[]float64{10, 10, 1000, 10}, 10}, // one outlier cannot move it
		{[]float64{2, 1}, 1.5},
	}
	for _, tc := range cases {
		if got := median(append([]float64(nil), tc.vals...)); got != tc.want {
			t.Fatalf("median(%v) = %v, want %v", tc.vals, got, tc.want)
		}
	}
}

// TestParseCountAware: `-count=3` output collapses to one entry per
// benchmark with per-metric medians, while single-run benchmarks in the
// same stream pass through unchanged (no "runs" field).
func TestParseCountAware(t *testing.T) {
	in := "pkg: p\n" +
		"BenchmarkHot-4\t1\t100 ns/op\t50 B/op\n" +
		"BenchmarkHot-4\t1\t900 ns/op\t70 B/op\n" + // cold-cache outlier
		"BenchmarkHot-4\t1\t120 ns/op\t60 B/op\n" +
		"BenchmarkOnce-4\t2\t7 ns/op\n"
	snap, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("aggregated to %d benchmarks, want 2: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	hot := snap.Benchmarks[0]
	if hot.Runs != 3 || hot.Metrics["ns/op"] != 120 || hot.Metrics["B/op"] != 60 {
		t.Fatalf("hot = %+v (median must shrug off the 900ns outlier)", hot)
	}
	once := snap.Benchmarks[1]
	if once.Runs != 0 || once.Metrics["ns/op"] != 7 || once.Iterations != 2 {
		t.Fatalf("once = %+v (single runs must pass through untouched)", once)
	}
}

// TestParseCountAwareEvenRuns: an even run count averages the two
// middle values per metric, and the median b.N lands in Iterations.
func TestParseCountAwareEvenRuns(t *testing.T) {
	in := "pkg: p\n" +
		"BenchmarkE-4\t1\t10 ns/op\n" +
		"BenchmarkE-4\t3\t20 ns/op\n" +
		"BenchmarkE-4\t5\t30 ns/op\n" +
		"BenchmarkE-4\t7\t40 ns/op\n"
	snap, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1", len(snap.Benchmarks))
	}
	e := snap.Benchmarks[0]
	if e.Runs != 4 || e.Metrics["ns/op"] != 25 || e.Iterations != 4 {
		t.Fatalf("even-run aggregate = %+v, want runs=4 ns/op=25 iterations=4", e)
	}
}

// TestParseCountAwareDistinctPackages: the same benchmark name in two
// packages must never merge — the key is (pkg, full name), exactly like
// benchdiff's matching.
func TestParseCountAwareDistinctPackages(t *testing.T) {
	in := "pkg: a\nBenchmarkX-4\t1\t10 ns/op\npkg: b\nBenchmarkX-4\t1\t30 ns/op\n"
	snap, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 || snap.Benchmarks[0].Runs != 0 || snap.Benchmarks[1].Runs != 0 {
		t.Fatalf("cross-package merge: %+v", snap.Benchmarks)
	}
}
