package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfplay/internal/cachepolicy"
	"perfplay/internal/corpus"
	"perfplay/internal/scheduler"
)

// blackholePeer models a partial partition: the listener accepts TCP
// connections (the route is up) but never writes a byte back (the far
// side is unreachable behind it). This is the failure mode a plain
// connection-refused test cannot catch — the probe has to burn its
// timeout, not fail fast.
func blackholePeer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c) // hold open, never respond
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	return "http://" + ln.Addr().String()
}

// TestPartitionSeversOnlyWarmPeerMidProbe (chaos): gossip honestly
// hints that the one warm peer holds this job's result — then the link
// to it partitions into a blackhole before the probe lands. The probe
// must burn its (short) timeout, degrade to local execution, and
// produce output byte-identical to a standalone node. Partition costs
// latency, never correctness — the same invariant the clustersim
// partition scenario checks on every event.
func TestPartitionSeversOnlyWarmPeerMidProbe(t *testing.T) {
	payload := recordedPayload(t, 3)
	digest := corpus.Digest(payload)
	refSrv, ref := testServer(t, Config{})
	if _, _, err := refSrv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	want := runJobReport(t, ref.URL, digestSpec(digest))

	severed := blackholePeer(t)
	srv, ts := testServer(t, Config{
		Peers:             []string{severed},
		CacheProbeTimeout: 200 * time.Millisecond,
	})
	if _, _, err := srv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	key, ok := srv.pl.CacheKeyFor(digestRequestLike(digest, true))
	if !ok {
		t.Fatal("no cache key for the digest request")
	}
	// The hint is genuine as of the last gossip exchange; the partition
	// happened after.
	srv.gossip.Record(severed, scheduler.PeerStatus{QueueLen: 0, QueueCap: 64, CacheKeys: []string{key}})

	report := runJobReport(t, ts.URL, digestSpec(digest))
	if report != want {
		t.Fatalf("post-partition report differs from standalone:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if probes, hits := srv.cacheStats.probes.Int(), srv.cacheStats.remoteHits.Int(); probes < 1 || hits != 0 {
		t.Fatalf("probes=%d hits=%d, want ≥1 probes / 0 hits across the severed link", probes, hits)
	}
}

// TestProbeTimeoutRacesLocalExecution (chaos): the warm peer is alive
// but pathologically slow — slower than the probe timeout by an order
// of magnitude. The short timeout must win the race: the job degrades
// to local execution and completes long before the peer would have
// answered, with byte-identical output. This is the scenario that made
// the sweep pick a 250ms default over 2s (docs/POLICIES.md): on a
// blackholed or glacial link, every probe's timeout lands on the
// job-execution hot path.
func TestProbeTimeoutRacesLocalExecution(t *testing.T) {
	const hang = 3 * time.Second
	var probed atomic.Int32
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/cache/") {
			probed.Add(1)
			time.Sleep(hang)
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(slow.Close)

	payload := recordedPayload(t, 3)
	digest := corpus.Digest(payload)
	refSrv, ref := testServer(t, Config{})
	if _, _, err := refSrv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	want := runJobReport(t, ref.URL, digestSpec(digest))

	srv, ts := testServer(t, Config{
		Peers:             []string{slow.URL},
		CacheProbeTimeout: 150 * time.Millisecond,
	})
	if _, _, err := srv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	report := runJobReport(t, ts.URL, digestSpec(digest))
	elapsed := time.Since(start)
	if report != want {
		t.Fatalf("timed-out-probe report differs from standalone:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if probed.Load() == 0 {
		t.Fatal("the slow peer was never probed — the race never happened")
	}
	if elapsed >= hang {
		t.Fatalf("job took %v — it waited out the peer's %v hang instead of timing out", elapsed, hang)
	}
	if hits := srv.cacheStats.remoteHits.Int(); hits != 0 {
		t.Fatalf("remote hits = %d, want 0 (the slow answer must be discarded)", hits)
	}
}

// TestCacheFlagZeroEqualsExplicitDefault pins the shared-defaults
// contract that replaced the "0 means N" convention: a zero-valued
// Config and a Config explicitly set to cachepolicy.Defaults() resolve
// to the same cache knobs, and both match the single source of truth
// the flag declarations print. If Defaults() and withDefaults ever
// drift, this fails.
func TestCacheFlagZeroEqualsExplicitDefault(t *testing.T) {
	d := cachepolicy.Defaults()
	zero := Config{}.withDefaults()
	explicit := Config{
		CacheProbeTimeout: d.ProbeTimeout,
		CacheProbeFanout:  d.ProbeFanout,
		CacheHintKeys:     d.HintKeys,
	}.withDefaults()

	for _, cfg := range []Config{zero, explicit} {
		if cfg.CacheProbeTimeout != d.ProbeTimeout {
			t.Fatalf("CacheProbeTimeout = %v, want %v", cfg.CacheProbeTimeout, d.ProbeTimeout)
		}
		if cfg.CacheProbeFanout != d.ProbeFanout {
			t.Fatalf("CacheProbeFanout = %d, want %d", cfg.CacheProbeFanout, d.ProbeFanout)
		}
		if cfg.CacheHintKeys != d.HintKeys {
			t.Fatalf("CacheHintKeys = %d, want %d", cfg.CacheHintKeys, d.HintKeys)
		}
	}
	// The flag declarations seed from the same struct, so -help prints
	// the true defaults rather than a "0 means N" convention.
	if cacheKnobs != d {
		t.Fatalf("flag-default knobs %+v drifted from cachepolicy.Defaults() %+v", cacheKnobs, d)
	}
}
