package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"perfplay/internal/clusterapi"
	"perfplay/internal/corpus"
	"perfplay/internal/sim"
	"perfplay/internal/ulcp"
	"perfplay/internal/workload"
)

// goldenSpecs are the committed pipeline goldens, expressed as daemon
// analyze specs. The cluster contract under test: a coordinator + N
// workers produce the same report bytes these goldens pin.
//
// warmup is the same analysis with different reporting flags: it misses
// the result cache for the golden spec but shares its verdict-table
// key, and a fresh-table run classifies locally as a side effect of
// building the table — so the warmup is what arms distribution for the
// golden job that follows.
var goldenSpecs = []struct {
	name   string
	warmup string
	spec   string
}{
	{"pbzip2",
		`{"app":"pbzip2","threads":2,"scale":0.2,"seed":3,"top":5}`,
		`{"app":"pbzip2","threads":2,"scale":0.2,"seed":3,"top":5,"schemes":true}`},
	{"mysql",
		`{"app":"mysql","threads":4,"scale":0.2,"seed":7,"top":5}`,
		`{"app":"mysql","threads":4,"scale":0.2,"seed":7,"top":5,"races":true}`},
}

func goldenReport(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "internal", "pipeline", "testdata", name+".golden"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// runJobReport submits a spec and returns the finished job's report.
func runJobReport(t *testing.T, base, spec string) string {
	t.Helper()
	resp := postJSON(t, base+"/analyze", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, base, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("job failed: %v", j["error"])
	}
	report, _ := j["report"].(string)
	return report
}

// clusterServer starts a daemon and returns it with its base URL.
func clusterServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	return testServer(t, cfg)
}

// TestClusterByteIdenticalReports is the multi-node acceptance test: a
// coordinator fanning shards out to two in-process workers produces
// merged ranked reports byte-identical to the committed goldens (and
// therefore to a serial single-node run) for both fixtures. It also
// checks the blob push path: the workers start with empty corpora and
// must end up holding the coordinator's canonical trace blobs.
func TestClusterByteIdenticalReports(t *testing.T) {
	w1, ts1 := clusterServer(t, Config{Role: roleWorker})
	w2, ts2 := clusterServer(t, Config{Role: roleWorker})
	_, coord := clusterServer(t, Config{Peers: []string{ts1.URL, ts2.URL}})

	for _, g := range goldenSpecs {
		runJobReport(t, coord.URL, g.warmup) // builds + caches the verdict table
		report := runJobReport(t, coord.URL, g.spec)
		if want := goldenReport(t, g.name); report != want {
			t.Fatalf("%s: cluster report differs from golden:\nwant:\n%s\ngot:\n%s", g.name, want, report)
		}
	}
	// Each worker was seeded with both traces via the 404-push-retry
	// handshake (the coordinator's canonical binary blobs).
	for i, w := range []*Server{w1, w2} {
		if n := w.corpus.Len(); n != 2 {
			t.Fatalf("worker %d corpus holds %d traces after 2 cluster jobs, want 2", i+1, n)
		}
	}
}

// abortableWorker wraps a worker daemon so its /shards handler can be
// made to hang until the test kills the whole server — the "peer dies
// mid-job" scenario, as opposed to a peer that was already down.
type abortableWorker struct {
	inner    http.Handler
	mu       sync.Mutex
	hang     bool
	started  chan struct{} // closed when a /shards call has begun hanging
	release  chan struct{} // closed to abort the hanging calls
	startOne sync.Once
}

func (a *abortableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/shards" {
		a.mu.Lock()
		hang := a.hang
		a.mu.Unlock()
		if hang {
			a.startOne.Do(func() { close(a.started) })
			<-a.release
			panic(http.ErrAbortHandler) // sever the connection mid-response
		}
	}
	a.inner.ServeHTTP(w, r)
}

// TestClusterWorkerKilledMidJob kills one worker while it is holding a
// shard request, then restarts a fresh worker on the same address. The
// in-flight job must fall back and still produce the golden bytes, and
// the restarted worker must serve the next job without fallbacks.
func TestClusterWorkerKilledMidJob(t *testing.T) {
	_, ts1 := clusterServer(t, Config{Role: roleWorker})

	w2srv, err := NewServer(Config{Role: roleWorker, CorpusDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	w2srv.Start()
	ab := &abortableWorker{
		inner:   w2srv.Handler(),
		hang:    true,
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	ts2 := httptest.NewServer(ab)
	w2addr := ts2.Listener.Addr().String()

	coordSrv, coord := clusterServer(t, Config{Peers: []string{ts1.URL, "http://" + w2addr}})

	// Warm the verdict table (a local pass; no shard traffic yet), then
	// submit the distributed job, wait until worker 2 is actually
	// holding a shard request, and kill it mid-flight.
	runJobReport(t, coord.URL, goldenSpecs[1].warmup)
	resp := postJSON(t, coord.URL+"/analyze", goldenSpecs[1].spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	<-ab.started
	close(ab.release)
	ts2.Close()
	w2srv.Close()

	j := waitDone(t, coord.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("job failed after worker kill: %v", j["error"])
	}
	if report, want := j["report"].(string), goldenReport(t, "mysql"); report != want {
		t.Fatalf("report after mid-job worker kill differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if coordSrv.dist.Fallbacks() == 0 {
		t.Fatal("coordinator recorded no fallbacks despite the killed worker")
	}
	after := coordSrv.dist.Fallbacks()

	// Restart a fresh worker on the same address; note the push-retry
	// handshake must re-seed its empty corpus. The next distributed job
	// (a different fixture, warmed first) must use it without fallbacks.
	ln, err := net.Listen("tcp", w2addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", w2addr, err)
	}
	w2b, err := NewServer(Config{Role: roleWorker, CorpusDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	w2b.Start()
	ts2b := &httptest.Server{Listener: ln, Config: &http.Server{Handler: w2b.Handler()}}
	ts2b.Start()
	t.Cleanup(func() {
		ts2b.Close()
		w2b.Close()
	})

	runJobReport(t, coord.URL, goldenSpecs[0].warmup)
	if report, want := runJobReport(t, coord.URL, goldenSpecs[0].spec), goldenReport(t, "pbzip2"); report != want {
		t.Fatalf("report after worker restart differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if got := coordSrv.dist.Fallbacks(); got != after {
		t.Fatalf("restarted worker still caused fallbacks (%d → %d)", after, got)
	}
	if n := w2b.corpus.Len(); n != 1 {
		t.Fatalf("restarted worker corpus holds %d traces, want 1 (re-seeded)", n)
	}
}

// TestClusterAllPeersDown: a coordinator whose every peer is
// unreachable must still complete jobs locally with golden-identical
// output — the cluster can only degrade, never corrupt or wedge.
func TestClusterAllPeersDown(t *testing.T) {
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead2 := httptest.NewServer(http.NotFoundHandler())
	addr1, addr2 := dead1.URL, dead2.URL
	dead1.Close() // closed before any job: connection refused
	dead2.Close()

	coordSrv, coord := clusterServer(t, Config{Peers: []string{addr1, addr2}})
	runJobReport(t, coord.URL, goldenSpecs[0].warmup) // local; arms distribution
	if report, want := runJobReport(t, coord.URL, goldenSpecs[0].spec), goldenReport(t, "pbzip2"); report != want {
		t.Fatalf("all-peers-down report differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if coordSrv.dist.Fallbacks() == 0 {
		t.Fatal("no fallbacks recorded with every peer down")
	}
}

// TestShardsEndpointErrors drives the worker protocol's error paths
// directly: unknown trace digest (404 — the push-retry cue), malformed
// body (400), out-of-bounds range (400), and an oversized request
// (413).
func TestShardsEndpointErrors(t *testing.T) {
	srv, ts := clusterServer(t, Config{Role: roleWorker, MaxTraceBytes: 64 << 10})

	// Unknown digest → 404.
	body, _ := json.Marshal(&shardRequest{Trace: corpus.Digest([]byte("never stored")), Start: 0, End: 1})
	resp := postJSON(t, ts.URL+"/shards", string(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d, want 404", resp.StatusCode)
	}

	// Malformed digest → 400; malformed JSON → 400.
	for _, bad := range []string{`{"trace":"sha256:nope"}`, `{nope`} {
		resp := postJSON(t, ts.URL+"/shards", bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Store a real trace, then ask for an impossible range → 400.
	payload := recordedPayload(t, 3)
	meta, _, err := srv.corpus.Put(payload, false)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = json.Marshal(&shardRequest{Trace: meta.Digest, Start: 0, End: 1 << 20})
	resp = postJSON(t, ts.URL+"/shards", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-bounds range: status %d, want 400", resp.StatusCode)
	}
	if e := apiError(t, resp); e.Code != clusterapi.CodeRangeOutOfBounds {
		t.Fatalf("error = %+v, want code %q", e, clusterapi.CodeRangeOutOfBounds)
	}

	// A shard request larger than MaxTraceBytes → 413.
	huge := fmt.Sprintf(`{"trace":%q,"start":0,"end":1,"table":{"verdicts":{%q:true}}}`,
		meta.Digest, strings.Repeat("x", 128<<10))
	resp = postJSON(t, ts.URL+"/shards", huge)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized shard request: status %d, want 413", resp.StatusCode)
	}

	// No corpus → 503 (a worker cannot resolve digests at all).
	noCorpus, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tsNC := httptest.NewServer(noCorpus.Handler())
	defer tsNC.Close()
	body, _ = json.Marshal(&shardRequest{Trace: meta.Digest, Start: 0, End: 1})
	resp = postJSON(t, tsNC.URL+"/shards", string(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("corpus-less worker: status %d, want 503", resp.StatusCode)
	}
}

// TestShardsBusy: a worker at its concurrent-shard-request bound
// answers 503 (the coordinator's cue to run the range locally) instead
// of stacking unbounded CPU-bound work, and recovers once a slot frees.
func TestShardsBusy(t *testing.T) {
	srv, ts := clusterServer(t, Config{Role: roleWorker, MaxShardRequests: 1})

	srv.shardSem <- struct{}{} // occupy the only slot
	body, _ := json.Marshal(&shardRequest{Trace: corpus.Digest([]byte("x")), Start: 0, End: 1})
	resp := postJSON(t, ts.URL+"/shards", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("busy worker: status %d, want 503", resp.StatusCode)
	}
	if e := apiError(t, resp); e.Code != clusterapi.CodeShardBusy {
		t.Fatalf("error = %+v, want code %q", e, clusterapi.CodeShardBusy)
	}

	<-srv.shardSem // free the slot; the endpoint must serve again
	resp2 := postJSON(t, ts.URL+"/shards", string(body))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound { // unknown digest, but admitted
		t.Fatalf("freed worker: status %d, want 404", resp2.StatusCode)
	}
}

// TestShardTraceCacheLRU pins the worker-side parsed-trace cache's
// bound and recency behavior.
func TestShardTraceCacheLRU(t *testing.T) {
	c := newShardTraceCache(2)
	a, b, d := &shardTrace{}, &shardTrace{}, &shardTrace{}
	c.put("a", a)
	c.put("b", b)
	if _, ok := c.get("a"); !ok { // refresh a's recency
		t.Fatal("a missing")
	}
	c.put("d", d) // evicts b, the coldest
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past the cap")
	}
	for _, k := range []string{"a", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
}

// TestShardsEndpointHappyPath exercises the worker protocol end to end
// without a coordinator: push a trace, request every group with a
// locally-built verdict table, and check the merged rehydrated reports
// equal a direct identification.
func TestShardsEndpointHappyPath(t *testing.T) {
	_, ts := clusterServer(t, Config{Role: roleWorker})

	app := workload.MustGet("mysql")
	rec := sim.Run(app.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7}), sim.Config{Seed: 7})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()
	up, err := http.Post(ts.URL+"/traces", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()

	css := rec.Trace.ExtractCS()
	groups := ulcp.SortedLockGroups(css)
	table, want := ulcp.BuildVerdictTable(rec.Trace, css, ulcp.Options{})

	body, _ := json.Marshal(&shardRequest{
		Trace: corpus.Digest(payload), Start: 0, End: len(groups), Table: table,
	})
	resp := postJSON(t, ts.URL+"/shards", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shards: status %d", resp.StatusCode)
	}
	sr := decode[shardResponse](t, resp)
	if sr.Groups != len(groups) || len(sr.Reports) != len(groups) {
		t.Fatalf("response shape: groups=%d reports=%d, want %d", sr.Groups, len(sr.Reports), len(groups))
	}
	byID := ulcp.CSByID(css)
	merged := &ulcp.Report{Counts: map[ulcp.Category]int{}}
	for _, wr := range sr.Reports {
		rep, err := wr.Rehydrate(byID)
		if err != nil {
			t.Fatal(err)
		}
		merged = ulcp.MergeReports(merged, rep)
	}
	if len(merged.Pairs) != len(want.Pairs) {
		t.Fatalf("merged %d pairs, want %d", len(merged.Pairs), len(want.Pairs))
	}
	for i := range merged.Pairs {
		if merged.Pairs[i].C1.ID != want.Pairs[i].C1.ID ||
			merged.Pairs[i].C2.ID != want.Pairs[i].C2.ID ||
			merged.Pairs[i].Cat != want.Pairs[i].Cat {
			t.Fatalf("pair %d differs", i)
		}
	}
	if merged.ReversedReplays != 0 {
		t.Fatalf("worker performed %d replays despite the shipped table", merged.ReversedReplays)
	}
}
