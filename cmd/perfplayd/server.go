package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"perfplay/internal/cachepolicy"
	"perfplay/internal/clusterapi"
	"perfplay/internal/corpus"
	"perfplay/internal/journal"
	"perfplay/internal/pipeline"
	"perfplay/internal/scheduler"
	"perfplay/internal/telemetry"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the number of job-executor goroutines (0 = 2).
	Workers int
	// PipelineWorkers is the pool width inside each job (0 = 4).
	PipelineWorkers int
	// QueueDepth bounds the pending-job queue; submissions beyond it
	// are rejected with 503 so memory stays bounded under load (0 = 64).
	QueueDepth int
	// CacheSize is the pipeline's LRU result cache capacity (0 = 128).
	CacheSize int
	// MaxJobs bounds retained finished jobs; the oldest are evicted
	// (0 = 1024).
	MaxJobs int
	// MaxTraceBytes caps each uploaded trace body (0 = 64 MiB).
	MaxTraceBytes int64
	// MaxQueuedTraceBytes caps the sum of upload sizes across all
	// queued-but-unstarted trace jobs plus uploads still being
	// buffered in handlers — a parsed trace lives in memory until a
	// worker drains it, so the count-based queue bound alone would
	// still admit QueueDepth×MaxTraceBytes of retained trace data.
	// Chunked uploads (no Content-Length) can overshoot by at most one
	// MaxTraceBytes body each before their size is known (0 = 256 MiB).
	MaxQueuedTraceBytes int64
	// CorpusDir roots the content-addressed trace store behind the
	// /traces endpoints and "trace": "sha256:..." analyze requests.
	// Empty disables the corpus (those requests get 503).
	CorpusDir string
	// CorpusMaxBytes caps the corpus blob bytes; least-recently-used
	// unpinned traces are evicted beyond it (0 = 1 GiB).
	CorpusMaxBytes int64
	// JournalDir roots the crash-durable job journal: every queue
	// transition is fsynced there, and a restarted daemon replays it to
	// resurrect jobs that were queued (re-enqueued in admit order) or
	// out on a steal lease (requeued at the front, like an expired
	// lease) when the previous process died. Empty disables the journal
	// — a restart then loses the queue, the pre-journal behavior. The
	// perfplayd binary defaults it next to the corpus (-journal-dir).
	JournalDir string
	// Role names the daemon's cluster role (standalone, worker,
	// coordinator) — observability only; the HTTP surface is identical.
	// Empty means standalone, or coordinator when Peers are set.
	Role string
	// Peers lists peer daemon base URLs ("http://host:8080"). When
	// non-empty every job's classification shards fan out across them
	// (one range always stays local), with per-peer fallback to local
	// execution, so a dead peer degrades throughput, never correctness.
	Peers []string
	// ShardTimeout bounds each peer shard call, including the one-time
	// blob push to a peer that misses the trace (0 = 120s).
	ShardTimeout time.Duration
	// MaxShardRequests bounds concurrent POST /shards executions; a
	// worker answering several coordinators must not run unbounded
	// CPU-bound classification in parallel just because /shards skips
	// the job queue. Excess requests get 503 and the coordinator falls
	// back locally (0 = Workers, the same parallelism the job path
	// allows; negative disables the bound).
	MaxShardRequests int
	// StealLease bounds how long a peer that claimed a whole job
	// (POST /jobs/claim) may hold it before reporting a result; past
	// the lease the job is re-enqueued locally at the front of the
	// queue, so a crashed thief costs one lease of latency, never the
	// job (0 = 2 min).
	StealLease time.Duration
	// StealInterval is the idle-poll cadence of this node's own
	// stealer loop, started by StartStealer (0 = 1s; negative disables
	// stealing even when peers are configured).
	StealInterval time.Duration
	// CacheProbeTimeout bounds each cluster-cache probe (GET
	// /cache/results/{key}, GET /cache/tables/{key}) and each
	// on-demand admission probe. Short by design: a probe saves a
	// whole replay pipeline when it hits, but must cost almost nothing
	// when the peer is dead (0 = cachepolicy.Defaults().ProbeTimeout).
	CacheProbeTimeout time.Duration
	// CacheProbeFanout bounds how many peers one cache-missed job
	// probes before running locally (0 =
	// cachepolicy.Defaults().ProbeFanout; it also caps the admission
	// path's on-demand probe round).
	CacheProbeFanout int
	// CacheHintKeys bounds the recent result-cache keys gossiped in
	// each GET /steal response — the cache-population hints peers use
	// to aim their probes (0 = cachepolicy.Defaults().HintKeys).
	CacheHintKeys int
	// NodeName labels this node's spans and structured log lines, so a
	// cross-node trace reads as a story of named machines (0 = the
	// hostname).
	NodeName string
	// Logger receives the daemon's structured logs (nil =
	// slog.Default()). Every line carries the node name; job-lifecycle
	// lines carry job, trace and span IDs.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/ —
	// off by default because profiling endpoints leak operational
	// detail and cost CPU when scraped.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.PipelineWorkers == 0 {
		c.PipelineWorkers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 1024
	}
	if c.MaxTraceBytes == 0 {
		c.MaxTraceBytes = 64 << 20
	}
	if c.MaxQueuedTraceBytes == 0 {
		c.MaxQueuedTraceBytes = 256 << 20
	}
	if c.CorpusMaxBytes == 0 {
		c.CorpusMaxBytes = 1 << 30
	}
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 120 * time.Second
	}
	if c.MaxShardRequests == 0 {
		c.MaxShardRequests = c.Workers
	}
	if c.StealLease == 0 {
		c.StealLease = 2 * time.Minute
	}
	if c.StealInterval == 0 {
		c.StealInterval = time.Second
	}
	// The cache-layer knobs share cachepolicy.Defaults() with the
	// perfplayd flag declarations and the clustersim policy lab, so the
	// sweep-backed values cannot drift between surfaces.
	d := cachepolicy.Defaults()
	if c.CacheProbeTimeout == 0 {
		c.CacheProbeTimeout = d.ProbeTimeout
	}
	if c.CacheProbeFanout == 0 {
		c.CacheProbeFanout = d.ProbeFanout
	}
	if c.CacheHintKeys == 0 {
		c.CacheHintKeys = d.HintKeys
	}
	if c.Role == "" {
		c.Role = roleStandalone
		if len(c.Peers) > 0 {
			c.Role = roleCoordinator
		}
	}
	if c.NodeName == "" {
		c.NodeName = defaultNodeName()
	}
	return c
}

// Job states.
const (
	statusQueued  = "queued"
	statusRunning = "running"
	statusDone    = "done"
	statusFailed  = "failed"
)

// job is one submitted analysis. Only the rendered report and summary
// numbers are retained after completion — never the traces — so a
// long-running daemon's footprint is bounded by MaxJobs small records.
type job struct {
	ID        string    `json:"id"`
	Status    string    `json:"status"`
	Submitted time.Time `json:"submitted"`
	Finished  time.Time `json:"finished,omitzero"`
	Error     string    `json:"error,omitempty"`

	TraceDigest string `json:"trace_digest,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	// StolenBy is the peer currently holding (or that completed) this
	// job's steal lease — empty for jobs that ran locally.
	StolenBy string `json:"stolen_by,omitempty"`
	// CachePeer is the peer whose cluster cache settled this job (a
	// remote result-cache hit: zero local replays) — empty for jobs
	// computed locally or stolen.
	CachePeer string `json:"cache_peer,omitempty"`
	// TraceID is the job's distributed trace — minted at submit (or
	// adopted from the client's X-Perfplay-Trace header) and propagated
	// across every steal, cache probe and shard hop. GET
	// /jobs/{id}/trace serves the recorded timeline.
	TraceID string `json:"trace_id,omitempty"`

	jobSummary

	req pipeline.Request
	// traceBytes is the uploaded body size (an estimate of the parsed
	// trace's footprint) counted against MaxQueuedTraceBytes until the
	// job starts.
	traceBytes int64
	// changed is closed (and replaced) on every status transition, so
	// GET /jobs/{id}?wait=... long-polls wake on state change rather
	// than spinning. Guarded by Server.mu.
	changed chan struct{}
	// spanID is the job's root span, minted at submit so children
	// (queue wait, execution — local, stolen or cache-served) can
	// parent onto it before the root itself is recorded at completion.
	spanID string
}

// jobSummary is everything a finished analysis reports — the fields a
// thief computes remotely and ships back verbatim (POST
// /jobs/{id}/result), and a local worker fills via summarize. Keeping
// them one struct is what guarantees a stolen job's JSON is
// field-for-field what a local run would have produced.
type jobSummary struct {
	App            string            `json:"app,omitempty"`
	Threads        int               `json:"threads,omitempty"`
	CritSecs       int               `json:"critical_sections,omitempty"`
	ULCPs          int               `json:"ulcps,omitempty"`
	DegradationPct float64           `json:"degradation_pct,omitempty"`
	Schemes        map[string]string `json:"schemes,omitempty"`
	CacheHit       bool              `json:"cache_hit,omitempty"`
	Report         string            `json:"report,omitempty"`
	// Timings are the pipeline's per-stage wall clocks. A cache-hit job
	// reports the timings of the run that originally computed the
	// result — the hit itself did no stage work.
	Timings []stageTiming `json:"timings,omitempty"`
}

// summarize distills a pipeline result into the job's retained summary.
func summarize(res *pipeline.Result) jobSummary {
	a := res.Analysis
	s := jobSummary{
		App:      a.App,
		Threads:  a.Threads(),
		CritSecs: len(a.CSs),
		ULCPs:    a.Report.NumULCPs(),
		CacheHit: res.CacheHit,
		Report:   res.Report,
	}
	s.DegradationPct = a.Debug.NormalizedDegradation() * 100
	s.Timings = make([]stageTiming, len(res.Timings))
	for i, st := range res.Timings {
		s.Timings[i] = stageTiming{Stage: st.Stage, WallNS: st.Wall.Nanoseconds(), Wall: st.Wall.String()}
	}
	if len(res.Schemes) > 0 {
		s.Schemes = make(map[string]string, len(res.Schemes))
		for _, sr := range res.Schemes {
			s.Schemes[sr.Sched.String()] = sr.Result.Total.String()
		}
	}
	return s
}

// stageTiming is one pipeline stage's wall clock in the job JSON.
type stageTiming struct {
	Stage  string `json:"stage"`
	WallNS int64  `json:"wall_ns"`
	Wall   string `json:"wall"`
}

// notifyLocked broadcasts a job state change: every waiting long-poll
// wakes, and later waiters get a fresh channel. Call with Server.mu
// held.
func (j *job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// analyzeSpec is the JSON body of POST /analyze.
type analyzeSpec struct {
	App     string  `json:"app"`
	Trace   string  `json:"trace"` // corpus digest ("sha256:..."); overrides App
	Threads int     `json:"threads"`
	Input   string  `json:"input"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
	Top     int     `json:"top"`
	Schemes bool    `json:"schemes"`
	Races   bool    `json:"races"`
}

// Server is the perfplayd HTTP front end: a bounded *stealable* job
// queue drained by a fixed set of workers, each running the concurrent
// pipeline. Idle peers may claim whole queued jobs over HTTP and run
// them remotely (see internal/scheduler); the server's own stealer loop
// does the same against its peers.
type Server struct {
	cfg    Config
	pl     *pipeline.Pipeline
	corpus *corpus.Store         // nil when Config.CorpusDir is empty
	dist   *pipeline.Distributor // nil unless Config.Peers is non-empty
	queue  *scheduler.Queue
	gossip *scheduler.Gossip
	// shardSem admission-controls POST /shards (see MaxShardRequests);
	// nil disables the bound.
	shardSem chan struct{}
	// shardTraces caches parsed traces (plus their extracted critical
	// sections and sorted lock groups) across shard requests, so a
	// worker serving many ranges of the same stored trace parses it
	// once, not once per request.
	shardTraces *shardTraceCache
	// cacheClient issues cluster-cache and admission probes under the
	// short CacheProbeTimeout.
	cacheClient *http.Client
	// cacheStats counts cluster-cache traffic (see cache.go); its
	// counters live in the metrics registry, so /healthz and /metrics
	// render the same numbers.
	cacheStats cacheStats

	// metrics is the process-wide registry behind GET /metrics; every
	// subsystem (pipeline, scheduler, corpus, the handlers) registers
	// its instruments here. traces holds per-job span timelines behind
	// GET /jobs/{id}/trace. See telemetry.go.
	metrics      *telemetry.Registry
	traces       *telemetry.TraceStore
	logger       *slog.Logger
	nodeName     string
	schedMetrics *scheduler.Metrics
	httpDur      *telemetry.HistogramVec
	httpReqs     *telemetry.CounterVec
	jobsDone     *telemetry.CounterVec

	// journal is the crash-durable transition log (nil when
	// Config.JournalDir is empty); recovered/jrecovered count what the
	// boot-time replay resurrected. See journal.go.
	journal    *journal.Journal
	jrecovered *telemetry.CounterVec
	recovered  recoveredStats

	mu               sync.Mutex
	jobs             map[string]*job
	order            []string // finished job IDs, oldest first, for eviction
	seq              int64
	queuedTraceBytes int64 // upload bytes awaiting a worker
	inflightBytes    int64 // upload bytes being buffered/parsed in handlers
	running          int   // jobs executing right now (local + stolen)
	stealer          *scheduler.Stealer
	// lastAdmissionProbe rate-limits idlestPeer's synchronous fallback
	// probe round (see admissionProbeAllowed).
	lastAdmissionProbe time.Time

	wg      sync.WaitGroup
	stop    chan struct{} // closed on Close; stops reaper and stealer
	started bool
	closed  bool
}

// NewServer builds a server; call Start to launch its workers.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		queue:       scheduler.NewQueue(cfg.QueueDepth),
		gossip:      scheduler.NewGossip(),
		jobs:        make(map[string]*job),
		shardTraces: newShardTraceCache(shardTraceCacheCap),
		cacheClient: &http.Client{Timeout: cfg.CacheProbeTimeout},
		stop:        make(chan struct{}),
	}
	// The registry must exist before any subsystem that registers
	// instruments into it — the pipeline, the corpus, the queue and the
	// cluster-cache counters all share it.
	s.initTelemetry(cfg)
	s.pl = pipeline.New(pipeline.Options{CacheSize: cfg.CacheSize, Metrics: s.metrics})
	s.queue.Metrics = s.schedMetrics
	s.cacheStats = newCacheStats(s.metrics)
	if cfg.MaxShardRequests > 0 {
		s.shardSem = make(chan struct{}, cfg.MaxShardRequests)
	}
	if cfg.CorpusDir != "" {
		st, err := corpus.Open(cfg.CorpusDir, corpus.Options{MaxBytes: cfg.CorpusMaxBytes, Metrics: s.metrics})
		if err != nil {
			return nil, err
		}
		s.corpus = st
	}
	if len(cfg.Peers) > 0 {
		peers := make([]pipeline.ShardExecutor, len(cfg.Peers))
		for i, base := range cfg.Peers {
			peers[i] = newPeerExecutor(base, cfg.ShardTimeout, s)
		}
		s.dist = &pipeline.Distributor{
			Peers: peers,
			OnFallback: func(job *pipeline.ShardJob, peer string, rng pipeline.ShardRange, err error) {
				s.logger.Warn("shard fallback: re-running range locally",
					"peer", peer, "start", rng.Start, "end", rng.End,
					"trace", job.TraceID, "span", job.SpanID, "err", err)
				now := time.Now()
				s.span(spanCtx{trace: job.TraceID, parent: job.SpanID}, "shard_fallback",
					now, now, map[string]string{"peer": peer, "error": err.Error()})
			},
		}
	}
	// The journal replays last: recovery needs the corpus (digest jobs
	// reload their traces from it) and the distributor (recovered
	// requests shard out like fresh ones), and must finish before Start
	// lets a worker pop anything.
	if cfg.JournalDir != "" {
		if err := s.openJournal(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Start launches the executor goroutines and the steal-lease reaper.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.wg.Add(s.cfg.Workers + 1)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	go s.reaper()
}

// StartStealer launches this node's thief loop against Config.Peers.
// self is the base URL peers can reach this node at (victim-side
// diagnostics only). A no-op without peers or with a negative
// StealInterval. Separate from Start because the advertised URL is
// often only known after the listener binds (httptest, ephemeral
// ports).
func (s *Server) StartStealer(self string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stealer != nil || s.closed || len(s.cfg.Peers) == 0 || s.cfg.StealInterval < 0 {
		return
	}
	s.stealer = &scheduler.Stealer{
		Self:     self,
		Peers:    s.cfg.Peers,
		Interval: s.cfg.StealInterval,
		Idle:     s.idle,
		Execute:  s.executeStolen,
		Gossip:   s.gossip,
		Transport: &scheduler.HTTPTransport{
			Client: &http.Client{Timeout: s.cfg.ShardTimeout},
		},
		// Hint-driven victim ordering: prefer stealing jobs whose trace
		// artifacts (result or verdict table) are already cached here.
		HasCached: s.pl.HasDigestCached,
		Metrics:   s.schedMetrics,
	}
	st := s.stealer
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		st.Run(s.stop)
	}()
}

// idle reports whether this node has spare capacity for stolen work:
// nothing waiting locally and at least one worker unoccupied.
func (s *Server) idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len() == 0 && s.running < s.cfg.Workers
}

// Close stops accepting jobs and waits for in-flight ones (including
// the reaper and stealer loops). Submissions racing with Close get a
// 503 — enqueue checks the closed flag under the mutex.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	s.queue.Close()
	s.mu.Unlock()
	s.wg.Wait()
	// Close the journal only after every worker and the reaper have
	// stopped appending. Jobs still queued or claimed at this point
	// stay live in it — that is the durability contract: the next boot
	// recovers them.
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.logger.Warn("journal close", "err", err)
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		qj, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(qj.Payload.(*job))
	}
}

// reaper re-enqueues jobs whose steal lease expired — the thief crashed
// or lost its network — so they run locally instead of being lost.
func (s *Server) reaper() {
	defer s.wg.Done()
	interval := min(s.cfg.StealLease/4, time.Second)
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C:
			expired := s.queue.TakeExpired(now)
			if len(expired) == 0 {
				continue
			}
			// Reset each job's visible state BEFORE Requeue makes it
			// poppable again — a worker could otherwise pop and even
			// finish the job (result-cache hit) and then have its
			// terminal status clobbered back to "queued" here.
			s.mu.Lock()
			for _, qj := range expired {
				j := qj.Payload.(*job)
				s.logger.Warn("steal lease expired; re-queued locally",
					"job", j.ID, "thief", j.StolenBy, "trace", j.TraceID, "span", j.spanID)
				s.span(spanCtx{trace: j.TraceID, parent: j.spanID}, "lease_expired",
					now, now, map[string]string{"job": j.ID, "thief": j.StolenBy})
				j.StolenBy = ""
				j.Status = statusQueued
				j.notifyLocked()
			}
			s.mu.Unlock()
			// A closed queue admits no requeues: the jobs come back as
			// dropped (journaled as abandoned by the queue) and are
			// marked failed so their clients see the loss instead of a
			// "queued" job no worker will ever run.
			if dropped := s.queue.Requeue(expired); len(dropped) > 0 {
				s.mu.Lock()
				for _, qj := range dropped {
					j := qj.Payload.(*job)
					j.Status = statusFailed
					j.Error = "abandoned: steal lease expired while the server was shutting down"
					j.Finished = time.Now()
					j.notifyLocked()
					s.order = append(s.order, j.ID)
					s.logger.Warn("expired-lease job abandoned: queue closed", "job", j.ID)
				}
				s.evictLocked()
				s.mu.Unlock()
			}
		}
	}
}

func (s *Server) runJob(j *job) {
	popped := time.Now()
	s.mu.Lock()
	j.Status = statusRunning
	j.notifyLocked()
	s.queuedTraceBytes -= j.traceBytes // the upload has left the queue
	s.running++
	submitted := j.Submitted
	tc := spanCtx{trace: j.TraceID, parent: j.spanID}
	s.mu.Unlock()
	s.span(tc, "queue_wait", submitted, popped, nil)

	sum, cachePeer, err := s.executeJob(j.req, tc)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	j.Finished = time.Now()
	j.req = pipeline.Request{} // release any uploaded trace
	if err != nil {
		j.Status = statusFailed
		j.Error = err.Error()
	} else {
		j.Status = statusDone
		j.jobSummary = sum
		j.CachePeer = cachePeer
	}
	j.notifyLocked()
	// The pop left the job live in the journal on purpose — a crash
	// mid-run replays it as queued and re-runs it. Only a terminal
	// status retires the record.
	if j.Status == statusFailed {
		s.journalTerminal(journal.OpFailed, j.ID)
	} else {
		s.journalTerminal(journal.OpSettled, j.ID)
	}
	s.jobsDone.With(j.Status).Inc()
	s.recordSpan(tc, telemetry.Span{
		ID: j.spanID, Name: "job", Start: submitted, End: j.Finished,
		Attrs: map[string]string{"job": j.ID, "status": j.Status},
	})
	s.order = append(s.order, j.ID)
	s.evictLocked()
}

// executeJob produces one job's summary: settled from a peer's cluster
// cache when the local cache misses but a peer's hits (zero replays,
// zero parses — the wire report ships finished bytes), else by running
// the pipeline locally — after best-effort importing the job's verdict
// table from a peer, so even the local run can skip every reversed
// replay. A job the local result cache can already answer probes no
// one: the run below settles instantly without consulting the table
// cache, so even an evicted table would be wasted network I/O. The
// returned peer is non-empty only for remote cache hits.
func (s *Server) executeJob(req pipeline.Request, tc spanCtx) (jobSummary, string, error) {
	if key, ok := s.pl.CacheKeyFor(req); !ok || !s.pl.HasResult(key) {
		if wr, peer, ok := s.probePeerCaches(req, tc); ok {
			return summaryFromWire(wr), peer, nil
		}
		s.probePeerTables(req, tc)
	}
	// The pipeline records per-stage timings and the request carries the
	// trace context into any shard fan-out; execution itself is one span
	// with a stage:<name> child per pipeline stage actually run.
	req.TraceID, req.SpanID = tc.trace, tc.parent
	execStart := time.Now()
	res, err := func() (res *pipeline.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("analysis panicked: %v", r)
			}
		}()
		return s.pl.Run(req)
	}()
	if err != nil {
		return jobSummary{}, "", err
	}
	execID := s.span(tc, "execute", execStart, time.Now(),
		map[string]string{"cache_hit": strconv.FormatBool(res.CacheHit)})
	// A cache hit carries the *original* run's timings; replaying those
	// as spans on this trace would put stale wall clocks on the timeline.
	if !res.CacheHit {
		stageTC := spanCtx{trace: tc.trace, parent: execID, rec: tc.rec}
		for _, st := range res.Timings {
			if !st.Start.IsZero() {
				s.span(stageTC, "stage:"+st.Stage, st.Start, st.Start.Add(st.Wall), nil)
			}
		}
	}
	return summarize(res), "", nil
}

// evictLocked drops the oldest finished jobs beyond MaxJobs.
func (s *Server) evictLocked() {
	for len(s.order) > s.cfg.MaxJobs {
		delete(s.jobs, s.order[0])
		s.journalTerminal(journal.OpEvicted, s.order[0])
		s.order = s.order[1:]
	}
}

// route pairs a mux pattern with its handler. The daemon's whole HTTP
// surface lives in this one table so the served mux, the -print-routes
// flag, and the docs/API.md drift check in CI can never disagree.
type route struct {
	pattern string
	handler http.HandlerFunc
}

func (s *Server) routes() []route {
	return []route{
		{"POST /analyze", s.handleAnalyze},
		{"POST /shards", s.handleShards},
		{"GET /steal", s.handleSteal},
		{"POST /jobs/claim", s.handleClaim},
		{"POST /jobs/{id}/result", s.handleJobResult},
		{"GET /jobs", s.handleJobList},
		{"GET /jobs/{id}", s.handleJob},
		{"GET /jobs/{id}/trace", s.handleJobTrace},
		{"GET /metrics", s.handleMetrics},
		{"GET /cache/results/{key}", s.handleCacheResult},
		{"GET /cache/tables/{key}", s.handleCacheTable},
		{"GET /healthz", s.handleHealthz},
		{"POST /traces", s.handleTraceUpload},
		{"GET /traces", s.handleTraceList},
		{"GET /traces/{digest}", s.handleTraceGet},
		{"DELETE /traces/{digest}", s.handleTraceDelete},
		{"PATCH /traces/{digest}", s.handleTracePin},
	}
}

// Handler returns the daemon's HTTP routes, each wrapped with the
// per-route duration histogram and request counter.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.routes() {
		mux.HandleFunc(r.pattern, s.instrument(r.pattern, r.handler))
	}
	// pprof mounts outside the routes() table on purpose: it is an
	// opt-in debug surface, not part of the documented API the
	// -print-routes/docs drift check covers.
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// routePatterns lists every registered route pattern, sorted — the
// source of truth behind `perfplayd -print-routes`.
func routePatterns() []string {
	var s Server
	rs := s.routes()
	patterns := make([]string, len(rs))
	for i, r := range rs {
		patterns[i] = r.pattern
	}
	sort.Strings(patterns)
	return patterns
}

// reserveInflight reserves n upload bytes against MaxQueuedTraceBytes
// and returns their release func, or nil when the backlog is full. The
// budget covers bodies still being buffered in handlers as well as
// queued jobs, so N concurrent uploads cannot transiently hold
// N×MaxTraceBytes.
func (s *Server) reserveInflight(n int64) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queuedTraceBytes+s.inflightBytes+n > s.cfg.MaxQueuedTraceBytes {
		return nil
	}
	s.inflightBytes += n
	return func() {
		s.mu.Lock()
		s.inflightBytes -= n
		s.mu.Unlock()
	}
}

func (s *Server) backlogFull(w http.ResponseWriter) {
	httpError(w, http.StatusServiceUnavailable, clusterapi.CodeTraceBacklogFull,
		"trace backlog full (limit %d bytes)", s.cfg.MaxQueuedTraceBytes)
}

// admitUpload runs the declared-length admission checks shared by the
// trace-body endpoints: a Content-Length beyond the per-trace cap can
// never be accepted, so it answers 413 up front instead of reserving
// doomed budget that would 503 legitimate concurrent uploads while the
// body dribbles in toward MaxBytesReader's cutoff; known-length bodies
// reserve their in-flight bytes before buffering begins. Chunked bodies
// (no Content-Length) pass through and must be reserved by the caller
// once buffered. ok=false means the response has been written.
func (s *Server) admitUpload(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if r.ContentLength > s.cfg.MaxTraceBytes {
		httpError(w, http.StatusRequestEntityTooLarge, clusterapi.CodeBodyTooLarge,
			"trace body %d bytes exceeds limit %d", r.ContentLength, s.cfg.MaxTraceBytes)
		return nil, false
	}
	if r.ContentLength > 0 {
		if release = s.reserveInflight(r.ContentLength); release == nil {
			s.backlogFull(w)
			return nil, false
		}
	}
	return release, true
}

// requireCorpus 503s when the daemon runs without a trace store.
func (s *Server) requireCorpus(w http.ResponseWriter) bool {
	if s.corpus == nil {
		httpError(w, http.StatusServiceUnavailable, clusterapi.CodeCorpusDisabled,
			"trace corpus disabled (start perfplayd with -corpus)")
		return false
	}
	return true
}

// corpusError maps store errors onto HTTP statuses: caller mistakes to
// 4xx, capacity to 507, and internal store I/O failures to 500.
func corpusError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, corpus.ErrNotFound):
		httpError(w, http.StatusNotFound, clusterapi.CodeTraceNotFound, "%v", err)
	case errors.Is(err, corpus.ErrBudget):
		httpError(w, http.StatusInsufficientStorage, clusterapi.CodeCorpusFull, "%v", err)
	case errors.Is(err, corpus.ErrInvalid):
		httpError(w, http.StatusBadRequest, clusterapi.CodeInvalidTrace, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, clusterapi.CodeInternal, "%v", err)
	}
}

// handleTraceUpload stores a trace body (binary or JSON encoding) in
// the corpus. Re-uploading identical content is idempotent: one blob,
// the same digest, a 200 instead of a 201. ?pin=true exempts the trace
// from LRU eviction.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if !s.requireCorpus(w) {
		return
	}
	// Corpus uploads buffer their whole body while it is parsed and
	// written, so they draw on the same in-flight byte budget as
	// /analyze uploads; chunked bodies reserve once their size is known.
	release, ok := s.admitUpload(w, r)
	if !ok {
		return
	}
	defer func() {
		if release != nil {
			release()
		}
	}()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(body); err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, clusterapi.CodeBodyTooLarge, "request body: %v", err)
		return
	}
	if release == nil {
		if release = s.reserveInflight(int64(buf.Len())); release == nil {
			s.backlogFull(w)
			return
		}
	}
	meta, created, err := s.corpus.Put(buf.Bytes(), r.URL.Query().Get("pin") == "true")
	if err != nil {
		corpusError(w, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	w.Header().Set("Location", "/traces/"+meta.Digest)
	writeJSON(w, code, map[string]any{"created": created, "trace": meta})
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if !s.requireCorpus(w) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traces":      s.corpus.List(),
		"total_bytes": s.corpus.TotalBytes(),
	})
}

// handleTraceGet streams the blob straight from disk, so concurrent
// downloads of large traces never buffer whole bodies in daemon memory.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireCorpus(w) {
		return
	}
	blob, meta, err := s.corpus.OpenBlob(r.PathValue("digest"))
	if err != nil {
		corpusError(w, err)
		return
	}
	defer blob.Close()
	ct := "application/octet-stream"
	if meta.Format == trace.FormatJSON {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Size, 10))
	_, _ = io.Copy(w, blob)
}

func (s *Server) handleTraceDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requireCorpus(w) {
		return
	}
	digest := r.PathValue("digest")
	if err := s.corpus.Delete(digest); err != nil {
		corpusError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": digest})
}

// handleTracePin flips a stored trace's eviction exemption:
// PATCH /traces/{digest}?pin=true|false.
func (s *Server) handleTracePin(w http.ResponseWriter, r *http.Request) {
	if !s.requireCorpus(w) {
		return
	}
	pin := r.URL.Query().Get("pin")
	if pin != "true" && pin != "false" {
		httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest, "pin must be ?pin=true or ?pin=false")
		return
	}
	digest := r.PathValue("digest")
	if err := s.corpus.Pin(digest, pin == "true"); err != nil {
		corpusError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"digest": digest, "pinned": pin == "true"})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	// Cheap admission pre-checks before buffering the body, so overload
	// rejection doesn't pay the read-and-parse cost; the authoritative
	// checks re-run under the mutex at enqueue time.
	ct := r.Header.Get("Content-Type")
	jsonish := ct == "" || strings.HasPrefix(ct, "application/json")
	// Every submission gets a distributed trace ID — minted here, or
	// adopted from the client's X-Perfplay-Trace header so a caller (or
	// an upstream redirecting node) can stitch the job into its own
	// trace. The ID is echoed on every response, including rejections.
	traceID := r.Header.Get(telemetry.TraceHeader)
	if !telemetry.ValidTraceID(traceID) {
		traceID = telemetry.NewTraceID()
	}
	w.Header().Set(telemetry.TraceHeader, traceID)
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		httpError(w, http.StatusServiceUnavailable, clusterapi.CodeShuttingDown, "server shutting down")
		return
	}
	if s.queue.Len() >= s.queue.Cap() {
		s.rejectQueueFull(w, traceID)
		return
	}

	// Trace bytes are budgeted from the moment they start buffering,
	// not just once queued (see reserveInflight). Known-length uploads
	// reserve before the body is read; chunked ones reserve as soon as
	// their size is known, right after buffering.
	var release func()
	reserve := func(n int64) bool {
		release = s.reserveInflight(n)
		return release != nil
	}
	defer func() {
		if release != nil {
			release()
		}
	}()
	backlogFull := func() { s.backlogFull(w) }
	// Declared-trace bodies go through the shared admission checks;
	// jsonish bodies might still be workload specs, so their (possible)
	// trace bytes are only reserved after sniffing, below.
	if !jsonish {
		var ok bool
		if release, ok = s.admitUpload(w, r); !ok {
			return
		}
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(body); err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, clusterapi.CodeBodyTooLarge, "request body: %v", err)
		return
	}

	// A JSON-encoded trace arrives with the same content type as a
	// workload spec; traces carry an "events" array, specs never do.
	isTrace := !jsonish
	if jsonish {
		var probe struct {
			Events json.RawMessage `json:"events"`
		}
		if json.Unmarshal(buf.Bytes(), &probe) == nil && probe.Events != nil {
			isTrace = true
		}
	}

	var req pipeline.Request
	var uploadBytes int64
	if isTrace {
		if release == nil && !reserve(int64(buf.Len())) {
			backlogFull()
			return
		}
		tr, err := trace.ReadAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			httpError(w, http.StatusBadRequest, clusterapi.CodeInvalidTrace, "%v", err)
			return
		}
		if len(tr.Events) == 0 || tr.NumThreads == 0 {
			httpError(w, http.StatusBadRequest, clusterapi.CodeInvalidTrace,
				"empty trace (%d events, %d threads) — did you mean a JSON workload spec?",
				len(tr.Events), tr.NumThreads)
			return
		}
		uploadBytes = int64(buf.Len())
		// Analysis options ride as query parameters on upload requests
		// (the body is the trace itself). The body's content digest keys
		// the result cache, so re-uploading identical bytes — or
		// analyzing the same content stored in the corpus — is a hit.
		q := r.URL.Query()
		top, _ := strconv.Atoi(q.Get("top"))
		req = pipeline.Request{
			Trace:       tr,
			TraceDigest: corpus.Digest(buf.Bytes()),
			TraceBytes:  uploadBytes,
			TopK:        top,
			Schemes:     q.Get("schemes") == "true",
			DetectRaces: q.Get("races") == "true",
		}
	} else {
		var spec analyzeSpec
		if err := json.Unmarshal(buf.Bytes(), &spec); err != nil {
			httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest, "bad request body: %v", err)
			return
		}
		if spec.Trace != "" {
			// Analyze a stored trace by digest: no re-upload, and the
			// digest-keyed result cache is shared with direct uploads of
			// the same bytes. The blob is NOT read here — a TraceLoader
			// defers disk I/O and parsing to the worker, and only on a
			// cache miss, so repeats of an already-analyzed trace cost
			// neither memory while queued nor a redundant parse. That
			// also means digest jobs draw nothing from the upload byte
			// budget: at most Workers traces are in memory at once.
			if !s.requireCorpus(w) {
				return
			}
			// Touch, not Stat: referencing a trace by digest must count
			// as use for LRU purposes even when the job is later served
			// from the result cache without re-reading the blob —
			// otherwise hot traces would be the first evicted.
			meta, err := s.corpus.Touch(spec.Trace)
			if err != nil {
				corpusError(w, err)
				return
			}
			digest := meta.Digest
			req = pipeline.Request{
				TraceLoader: func() (*trace.Trace, error) {
					tr, _, err := s.corpus.Load(digest)
					return tr, err
				},
				TraceDigest: digest,
				TraceBytes:  meta.Size,
				TopK:        spec.Top,
				Schemes:     spec.Schemes,
				DetectRaces: spec.Races,
			}
		} else {
			if _, ok := workload.Get(spec.App); !ok {
				httpError(w, http.StatusBadRequest, clusterapi.CodeUnknownWorkload, "unknown workload %q", spec.App)
				return
			}
			input, err := workload.ParseInputSize(spec.Input)
			if err != nil {
				httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest, "%v", err)
				return
			}
			req = pipeline.Request{
				App: spec.App, Threads: spec.Threads, Input: input,
				Scale: spec.Scale, Seed: spec.Seed, TopK: spec.Top,
				Schemes: spec.Schemes, DetectRaces: spec.Races,
			}
		}
	}
	req.Workers = s.cfg.PipelineWorkers
	// A coordinator fans every job's classification shards out to its
	// peers; the determinism contract keeps the output byte-identical
	// to a local run, so this changes placement, never results.
	req.Distributor = s.dist

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, clusterapi.CodeShuttingDown, "server shutting down")
		return
	}
	// The byte budget was enforced when the upload reserved its
	// in-flight bytes; enqueueing transfers the accounting from
	// inflightBytes (released by the deferred handler) to
	// queuedTraceBytes (released when a worker picks the job up).
	s.seq++
	j := &job{
		ID:          fmt.Sprintf("job-%d", s.seq),
		Status:      statusQueued,
		Submitted:   time.Now(),
		Seed:        req.Seed,
		TraceDigest: req.TraceDigest,
		TraceID:     traceID,
		req:         req,
		traceBytes:  uploadBytes,
		changed:     make(chan struct{}),
		spanID:      telemetry.NewSpanID(),
	}
	s.jobs[j.ID] = j
	// Push is non-blocking (the queue is bounded), so holding the mutex
	// across it is fine.
	enqueued := s.queue.Push(&scheduler.Job{ID: j.ID, Spec: specFor(req), Payload: j})
	if enqueued {
		s.queuedTraceBytes += uploadBytes
	} else {
		delete(s.jobs, j.ID)
	}
	s.mu.Unlock()
	if !enqueued {
		s.rejectQueueFull(w, traceID)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id": j.ID, "status": statusQueued, "trace_id": traceID,
	})
}

// maxJobWait caps GET /jobs/{id}?wait= long-polls so a daemon never
// accumulates unbounded parked handlers behind a wedged job.
const maxJobWait = 60 * time.Second

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest, "bad wait %q: want a duration like 10s", ws)
			return
		}
		wait = min(d, maxJobWait)
	}

	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var snapshot job
	var changed chan struct{}
	if ok {
		snapshot = *j
		changed = j.changed
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, clusterapi.CodeJobNotFound, "no such job")
		return
	}
	// Long-poll: park until the job changes state (queued→running or
	// →done/failed), the wait expires, or the client goes away — then
	// answer with whatever the job looks like now. Terminal jobs answer
	// immediately; "state change" includes starting, so a caller
	// tracking progress sees each transition with one request apiece.
	if wait > 0 && (snapshot.Status == statusQueued || snapshot.Status == statusRunning) {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-changed:
		case <-timer.C:
		case <-r.Context().Done():
			return
		}
		s.mu.Lock()
		if j, ok := s.jobs[id]; ok {
			snapshot = *j
		}
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, &snapshot)
}

// jobListDefaultLimit / jobListMaxLimit bound GET /jobs responses: the
// retained-job map holds up to MaxJobs (1024 by default) records, and
// an unbounded listing would serialize all of them per poll.
const (
	jobListDefaultLimit = 100
	jobListMaxLimit     = 1000
)

// handleJobList (GET /jobs?state=&limit=) lists this node's retained
// jobs newest-first — the operator's "what is this node doing"
// endpoint, complementing the per-ID lookup. ?state= filters by job
// state; ?limit= bounds the page (default 100, capped at 1000). The
// response's total counts every match before the limit was applied, so
// a truncated page is detectable.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	switch state {
	case "", statusQueued, statusRunning, statusDone, statusFailed:
	default:
		httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest,
			"bad state %q: want one of queued, running, done, failed", state)
		return
	}
	limit := jobListDefaultLimit
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest,
				"bad limit %q: want a positive integer", ls)
			return
		}
		limit = min(n, jobListMaxLimit)
	}
	s.mu.Lock()
	list := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if state == "" || j.Status == state {
			snapshot := *j
			list = append(list, &snapshot)
		}
	}
	s.mu.Unlock()
	// Newest submission first: the numeric submit sequence inside the ID
	// ("job-42"), not the lexical ID ("job-10" sorts before "job-9") and
	// not Submitted stamps (equal at clock granularity under load).
	sort.Slice(list, func(i, k int) bool {
		si, iok := jobSeq(list[i].ID)
		sk, kok := jobSeq(list[k].ID)
		if iok && kok && si != sk {
			return si > sk
		}
		return list[i].ID > list[k].ID
	})
	total := len(list)
	if len(list) > limit {
		list = list[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list, "total": total})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	counts := map[string]int{}
	for _, j := range s.jobs {
		counts[j.Status]++
	}
	queuedBytes := s.queuedTraceBytes
	running := s.running
	stealer := s.stealer
	s.mu.Unlock()
	var corpusTraces int
	var corpusBytes int64
	if s.corpus != nil {
		corpusTraces = s.corpus.Len()
		corpusBytes = s.corpus.TotalBytes()
	}
	var fallbacks int
	if s.dist != nil {
		fallbacks = s.dist.Fallbacks()
	}
	// The steal section gossips this node's own depth alongside its
	// last-known view of every peer's, so one healthz poll anywhere in
	// the cluster shows where the backlog lives.
	steal := map[string]any{
		"enabled":   stealer != nil,
		"stealable": s.queue.Stealable(),
		"claimed":   s.queue.ClaimedCount(),
	}
	if stealer != nil {
		steal["stats"] = stealer.Stats()
	}
	if peers := s.gossip.Snapshot(); len(peers) > 0 {
		steal["peer_queues"] = peers
	}
	// The cache section merges the pipeline's own hit accounting with
	// the cluster exchange counters: how often this node's caches
	// answered (locally and to peers) versus how often a peer's did.
	cache := map[string]any{
		"pipeline": s.pl.Stats(),
		"cluster":  s.cacheStats.snapshot(),
	}
	// The journal section shows the durability story: the log's size
	// and live backlog, plus what this boot's replay recovered.
	jnl := map[string]any{"enabled": s.journal != nil}
	if s.journal != nil {
		jnl["stats"] = s.journal.Stats()
		jnl["recovered"] = s.recovered
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":                 true,
		"role":               s.cfg.Role,
		"jobs":               counts,
		"queue_depth":        s.cfg.QueueDepth,
		"queue_len":          s.queue.Len(),
		"queued_trace_bytes": queuedBytes,
		"running":            running,
		"cached":             s.pl.CacheLen(),
		"cached_tables":      s.pl.TableCacheLen(),
		"cache":              cache,
		"workers":            s.cfg.Workers,
		"pool_workers":       s.cfg.PipelineWorkers,
		"corpus_enabled":     s.corpus != nil,
		"corpus_traces":      corpusTraces,
		"corpus_bytes":       corpusBytes,
		"peers":              len(s.cfg.Peers),
		"shard_fallbacks":    fallbacks,
		"steal":              steal,
		"journal":            jnl,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes the documented error envelope:
//
//	{"error": {"code": "queue_full", "message": "job queue full (64 pending)"}}
//
// Every non-2xx body on the API goes through here, so clients match on
// the stable machine-readable code while the message stays free to
// change. The codes are cataloged in internal/clusterapi and
// docs/API.md.
func httpError(w http.ResponseWriter, status int, code clusterapi.ErrorCode, format string, args ...any) {
	writeJSON(w, status, clusterapi.Envelope{Err: *clusterapi.NewError(code, format, args...)})
}
