package main

import (
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"perfplay/internal/clusterapi"
	"perfplay/internal/scheduler"
	"perfplay/internal/telemetry"
)

// This file is the daemon's observability wiring: the process-wide
// metrics registry behind GET /metrics, the per-job span timelines
// behind GET /jobs/{id}/trace, the per-route HTTP instrumentation, and
// the structured logger every subsystem shares. The instruments
// themselves live where the work happens (pipeline, scheduler, corpus,
// the steal/cache/shard handlers); this file owns their one registry
// so /metrics and /healthz are two renderings of the same counters.

// Trace-store bounds: enough for every retained job (MaxJobs default)
// plus in-flight cross-node traffic.
const (
	traceStoreTraces = 2048
	traceSpanCap     = 256
)

// initTelemetry builds the registry, trace store, logger and the
// daemon-level instruments. Called once from NewServer, before any
// subsystem that registers its own families.
func (s *Server) initTelemetry(cfg Config) {
	s.metrics = telemetry.NewRegistry()
	s.traces = telemetry.NewTraceStore(traceStoreTraces, traceSpanCap)
	s.nodeName = cfg.NodeName
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s.logger = logger.With("node", s.nodeName)

	s.httpDur = s.metrics.NewHistogramVec("perfplay_http_request_duration_seconds",
		"HTTP request latency by route pattern.", telemetry.DurationBuckets, "route")
	s.httpReqs = s.metrics.NewCounterVec("perfplay_http_requests_total",
		"HTTP requests by route pattern and status code.", "route", "code")
	s.jobsDone = s.metrics.NewCounterVec("perfplay_jobs_completed_total",
		"Analysis jobs finished, by terminal status.", "status")
	s.metrics.NewGaugeFunc("perfplay_jobs_running",
		"Jobs executing right now (local and stolen).", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
	s.schedMetrics = scheduler.NewMetrics(s.metrics)
	scheduler.RegisterQueueGauges(s.metrics, s.queue)
}

// defaultNodeName labels this process's spans and log lines when the
// operator does not pass one: the hostname, like selfURL's fallback.
func defaultNodeName() string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return "perfplayd"
}

// spanCtx is the tracing context one unit of work runs under: which
// trace to record into, which span is the parent, and — for work
// executed on behalf of another node — an override sink so the spans
// can also be shipped back to the job's owner. A zero spanCtx (empty
// trace) makes every span call a no-op, which is how untraced paths
// stay free.
type spanCtx struct {
	trace  string
	parent string
	// rec, when set, additionally receives every span recorded under
	// this context (the local store still gets them).
	rec func(telemetry.Span)
}

// incomingTrace derives the span context an HTTP request carries in its
// X-Perfplay-Trace/-Span headers; zero when the caller sent none (or
// sent garbage — tracing never fails a request).
func (s *Server) incomingTrace(r *http.Request) spanCtx {
	id := r.Header.Get(telemetry.TraceHeader)
	if !telemetry.ValidTraceID(id) {
		return spanCtx{}
	}
	return spanCtx{trace: id, parent: r.Header.Get(telemetry.SpanHeader)}
}

// recordSpan stores one fully-formed span under the context's trace —
// the low-level hook for spans whose ID was minted in advance (a job's
// root span, a parent whose children are recorded first).
func (s *Server) recordSpan(tc spanCtx, sp telemetry.Span) {
	if tc.trace == "" {
		return
	}
	if sp.Node == "" {
		sp.Node = s.nodeName
	}
	s.traces.Add(tc.trace, sp)
	if tc.rec != nil {
		tc.rec(sp)
	}
}

// span records one named, finished span under the context and returns
// its ID (empty under a zero context).
func (s *Server) span(tc spanCtx, name string, start, end time.Time, attrs map[string]string) string {
	if tc.trace == "" {
		return ""
	}
	sp := telemetry.Span{
		ID:     telemetry.NewSpanID(),
		Parent: tc.parent,
		Node:   s.nodeName,
		Name:   name,
		Start:  start,
		End:    end,
		Attrs:  attrs,
	}
	s.recordSpan(tc, sp)
	return sp.ID
}

// statusWriter captures the response code for the per-route counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route handler with the per-route duration
// histogram and request counter, labeled by the route *pattern* (never
// the raw URL — paths carry unbounded IDs and digests, and a labeled
// series per job ID would grow without bound).
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.httpDur.With(pattern).Observe(time.Since(start).Seconds())
		s.httpReqs.With(pattern, strconv.Itoa(sw.code)).Inc()
	}
}

// handleMetrics (GET /metrics) renders every registered family in the
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// handleJobTrace (GET /jobs/{id}/trace) serves a job's distributed span
// timeline: every span this node recorded or imported for the job's
// trace ID, sorted by start time — including spans shipped back by the
// thief that stole the job or by shard workers, so one request to the
// submitting node reconstructs the whole cross-node story.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var traceID string
	if ok {
		traceID = j.TraceID
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, clusterapi.CodeJobNotFound, "no such job")
		return
	}
	if traceID == "" {
		httpError(w, http.StatusNotFound, clusterapi.CodeTraceUntracked, "job %s predates tracing (no trace ID)", id)
		return
	}
	spans, dropped, _ := s.traces.Get(traceID)
	if spans == nil {
		spans = []telemetry.Span{}
	}
	nodes := make(map[string]bool)
	for _, sp := range spans {
		nodes[sp.Node] = true
	}
	nodeList := make([]string, 0, len(nodes))
	for n := range nodes {
		nodeList = append(nodeList, n)
	}
	sort.Strings(nodeList)
	writeJSON(w, http.StatusOK, map[string]any{
		"job":           id,
		"trace_id":      traceID,
		"nodes":         nodeList,
		"spans":         spans,
		"dropped_spans": dropped,
	})
}
