package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalKillAndRestartRecovers is the durability acceptance test:
// a node stopped with a non-empty queue AND a job out on a steal lease
// recovers every job on restart — same IDs, reports byte-identical to
// what a single-node serial run produces (the determinism invariant is
// what makes "re-run the backlog" a correct recovery strategy).
func TestJournalKillAndRestartRecovers(t *testing.T) {
	base := t.TempDir()
	corpusDir := filepath.Join(base, "corpus")
	journalDir := filepath.Join(base, "journal")
	p3, p5 := recordedPayload(t, 3), recordedPayload(t, 5)

	// Reference: a plain single-node server (no journal) computes the
	// reports the recovered jobs must reproduce byte-for-byte. Its
	// healthz also pins the journal-disabled shape of the section.
	refSrv, ref := testServer(t, Config{})
	m3, _, err := refSrv.corpus.Put(p3, false)
	if err != nil {
		t.Fatal(err)
	}
	m5, _, err := refSrv.corpus.Put(p5, false)
	if err != nil {
		t.Fatal(err)
	}
	want3 := runJobReport(t, ref.URL, digestSpec(m3.Digest))
	want5 := runJobReport(t, ref.URL, digestSpec(m5.Digest))
	refHealth := decode[map[string]any](t, mustGet(t, ref.URL+"/healthz"))
	if jnl, _ := refHealth["journal"].(map[string]any); jnl["enabled"] != false {
		t.Fatalf("journal section without a journal = %v, want enabled:false", refHealth["journal"])
	}

	// Node A: journal enabled, workers never started — every submitted
	// job stays in the backlog, exactly the state a crash would strand.
	aSrv, err := NewServer(Config{CorpusDir: corpusDir, JournalDir: journalDir})
	if err != nil {
		t.Fatal(err)
	}
	aTS := httptest.NewServer(aSrv.Handler())
	if _, _, err := aSrv.corpus.Put(p3, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := aSrv.corpus.Put(p5, false); err != nil {
		t.Fatal(err)
	}
	submit := func(spec string) string {
		t.Helper()
		resp := postJSON(t, aTS.URL+"/analyze", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		return decode[map[string]string](t, resp)["id"]
	}
	id1 := submit(digestSpec(m3.Digest))
	id2 := submit(goldenSpecs[0].spec) // pbzip2 app spec, pinned by the committed golden
	id3 := submit(digestSpec(m5.Digest))

	// A thief claims the newest stealable job (id3) — and then vanishes.
	resp := postJSON(t, aTS.URL+"/jobs/claim", `{"thief":"http://ghost:1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim: status %d", resp.StatusCode)
	}
	if claimed := decode[map[string]any](t, resp); claimed["id"] != id3 {
		t.Fatalf("claimed %v, want %s", claimed["id"], id3)
	}

	// Kill node A mid-backlog: two jobs queued, one out on a lease.
	aTS.Close()
	aSrv.Close()

	// Node B boots over the same corpus and journal. testServer Starts
	// it, so recovery must already have re-enqueued everything before a
	// worker pops.
	bSrv, b := testServer(t, Config{CorpusDir: corpusDir, JournalDir: journalDir})
	health := decode[map[string]any](t, mustGet(t, b.URL+"/healthz"))
	jnl, _ := health["journal"].(map[string]any)
	if jnl["enabled"] != true {
		t.Fatalf("journal = %v, want enabled:true", jnl)
	}
	rec, _ := jnl["recovered"].(map[string]any)
	if rec["requeued"] != 2.0 || rec["released"] != 1.0 || rec["lost"] != 0.0 {
		t.Fatalf("recovered = %v, want requeued:2 released:1 lost:0", rec)
	}

	// Every job finishes under its ORIGINAL ID, byte-identical to the
	// serial reference (digest jobs) and the committed golden (app job).
	for _, tc := range []struct{ id, want, label string }{
		{id1, want3, "digest seed 3"},
		{id2, goldenReport(t, "pbzip2"), "pbzip2 golden"},
		{id3, want5, "digest seed 5 (was on lease)"},
	} {
		j := waitDone(t, b.URL, tc.id)
		if j["status"] != statusDone {
			t.Fatalf("%s (%s) failed after recovery: %v", tc.id, tc.label, j["error"])
		}
		if report, _ := j["report"].(string); report != tc.want {
			t.Errorf("%s (%s): recovered report differs from reference\ngot:\n%s\nwant:\n%s",
				tc.id, tc.label, report, tc.want)
		}
		if sb, ok := j["stolen_by"]; ok && sb != "" {
			t.Errorf("%s still attributed to the dead thief: %v", tc.id, sb)
		}
	}

	// A fresh submit must not collide with a resurrected ID.
	resp = postJSON(t, b.URL+"/analyze", goldenSpecs[0].warmup)
	newID := decode[map[string]string](t, resp)["id"]
	if newID == id1 || newID == id2 || newID == id3 {
		t.Fatalf("new job reused recovered ID %s", newID)
	}
	waitDone(t, b.URL, newID)

	// The journal surfaced its metrics on node B's registry.
	metrics := readBody(t, mustGet(t, b.URL+"/metrics"))
	for _, name := range []string{
		"perfplay_journal_records_total",
		"perfplay_journal_recovered_jobs_total",
		"perfplay_journal_live_jobs",
		"perfplay_journal_segments",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
	_ = bSrv
}

// TestJournalRestartFailsUploadOnlyJob: a job whose trace existed only
// in the dead process's memory is unrecoverable by construction — it
// must surface as failed with a clear error, never vanish.
func TestJournalRestartFailsUploadOnlyJob(t *testing.T) {
	base := t.TempDir()
	cfg := Config{CorpusDir: filepath.Join(base, "corpus"), JournalDir: filepath.Join(base, "journal")}

	aSrv, err := NewServer(cfg) // workers never started
	if err != nil {
		t.Fatal(err)
	}
	aTS := httptest.NewServer(aSrv.Handler())
	resp, err := http.Post(aTS.URL+"/analyze", "application/octet-stream",
		bytes.NewReader(recordedPayload(t, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload submit: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	aTS.Close()
	aSrv.Close()

	_, b := testServer(t, cfg)
	j := decode[map[string]any](t, mustGet(t, b.URL+"/jobs/"+id))
	if j["status"] != statusFailed {
		t.Fatalf("upload-only job after restart = %v, want failed", j["status"])
	}
	if errMsg, _ := j["error"].(string); !strings.Contains(errMsg, "lost in restart") {
		t.Fatalf("error = %q, want a clear lost-in-restart explanation", errMsg)
	}
	health := decode[map[string]any](t, mustGet(t, b.URL+"/healthz"))
	jnl, _ := health["journal"].(map[string]any)
	rec, _ := jnl["recovered"].(map[string]any)
	if rec["lost"] != 1.0 {
		t.Fatalf("recovered = %v, want lost:1", rec)
	}
}

// TestJournalSettledJobsStayRetired: a journal-enabled node that ran
// its backlog to completion restarts with nothing to recover — settled
// records must not resurrect jobs.
func TestJournalSettledJobsStayRetired(t *testing.T) {
	base := t.TempDir()
	cfg := Config{CorpusDir: filepath.Join(base, "corpus"), JournalDir: filepath.Join(base, "journal")}

	aSrv, a := testServer(t, cfg)
	report := runJobReport(t, a.URL, goldenSpecs[0].spec)
	if report != goldenReport(t, "pbzip2") {
		t.Fatal("reference run diverged from the golden")
	}
	// Stop node A now (its t.Cleanup would only run after the test).
	a.Close()
	aSrv.Close()

	_, b := testServer(t, Config{CorpusDir: cfg.CorpusDir, JournalDir: cfg.JournalDir})
	health := decode[map[string]any](t, mustGet(t, b.URL+"/healthz"))
	jnl, _ := health["journal"].(map[string]any)
	rec, _ := jnl["recovered"].(map[string]any)
	if rec["requeued"] != 0.0 || rec["released"] != 0.0 || rec["lost"] != 0.0 {
		t.Fatalf("recovered = %v, want nothing to recover", rec)
	}
	if health["queue_len"] != 0.0 {
		t.Fatalf("queue_len = %v after recovering a settled journal", health["queue_len"])
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
