package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"perfplay/internal/clusterapi"
	"perfplay/internal/corpus"
	"perfplay/internal/pipeline"
	"perfplay/internal/scheduler"
	"perfplay/internal/telemetry"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// This file is the daemon half of the whole-job work-stealing protocol
// (the policy lives in internal/scheduler):
//
//	GET  /steal             victim advertises its stealable backlog
//	POST /jobs/claim        thief takes the newest stealable job, on a lease
//	POST /jobs/{id}/result  thief reports the finished summary back
//
// A stolen job's trace ships content-addressed: the claim carries only
// the corpus digest, and the thief fetches the blob from the victim
// (GET /traces/{digest}, hash-verified) only when its own corpus misses
// it — the same 404-style lazy transfer the shard protocol uses, in the
// pull direction.

// specFor derives the wire-stealable description of a request. Uploaded
// traces held only in this process's memory yield a zero (unstealable)
// spec; workload specs and corpus-backed digest jobs ship whole.
func specFor(req pipeline.Request) scheduler.Spec {
	switch {
	case req.App != "":
		return scheduler.Spec{
			App:     req.App,
			Threads: req.Threads,
			Input:   int(req.Input),
			Scale:   req.Scale,
			Seed:    req.Seed,
			TopK:    req.TopK,
			Schemes: req.Schemes,
			Races:   req.DetectRaces,
		}
	case req.TraceDigest != "" && req.TraceLoader != nil:
		// Only corpus-backed jobs are stealable by digest: the victim
		// must be able to serve the blob to the thief.
		return scheduler.Spec{
			TraceDigest: req.TraceDigest,
			TopK:        req.TopK,
			Schemes:     req.Schemes,
			Races:       req.DetectRaces,
		}
	default:
		return scheduler.Spec{}
	}
}

// errStolenTraceUnavailable marks failures to *obtain* a stolen job's
// trace — transport or storage trouble on the thief, not a property of
// the job. These must never settle the job as failed on the victim
// (which may well hold the trace and run it fine); the thief abandons
// the steal and the victim's lease requeues the job.
var errStolenTraceUnavailable = errors.New("stolen trace unavailable")

// requestFor is specFor's inverse on the thief: the pipeline request
// that reproduces the victim's job byte-for-byte. Digest specs resolve
// their trace from the local corpus, else a hash-verified fetch from
// the victim — performed eagerly, both so the request can carry the
// trace's size (the result cache weighs trace-backed entries against
// its byte budget) and so an unfetchable blob aborts the steal before
// anything is reported.
func (s *Server) requestFor(victim string, spec scheduler.Spec, tc spanCtx) (pipeline.Request, error) {
	req := pipeline.Request{
		TopK:        spec.TopK,
		Schemes:     spec.Schemes,
		DetectRaces: spec.Races,
		Workers:     s.cfg.PipelineWorkers,
		Distributor: s.dist,
	}
	if spec.App != "" {
		if _, ok := workload.Get(spec.App); !ok {
			return pipeline.Request{}, fmt.Errorf("unknown workload %q", spec.App)
		}
		req.App = spec.App
		req.Threads = spec.Threads
		req.Input = workload.InputSize(spec.Input)
		req.Scale = spec.Scale
		req.Seed = spec.Seed
		return req, nil
	}
	digest := spec.TraceDigest
	req.TraceDigest = digest
	if s.corpus != nil {
		// Touch, not Stat: a stolen job referencing a locally stored
		// trace counts as use for LRU purposes, exactly like the
		// victim's own digest path.
		if meta, err := s.corpus.Touch(digest); err == nil {
			req.TraceBytes = meta.Size
			req.TraceLoader = func() (*trace.Trace, error) {
				tr, _, err := s.corpus.Load(digest)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", errStolenTraceUnavailable, err)
				}
				return tr, nil
			}
			return req, nil
		} else if !errors.Is(err, corpus.ErrNotFound) {
			return pipeline.Request{}, fmt.Errorf("%w: %v", errStolenTraceUnavailable, err)
		}
	}
	remote := &corpus.Remote{
		Base:    victim,
		Client:  &http.Client{Timeout: s.cfg.ShardTimeout},
		TraceID: tc.trace,
		SpanID:  tc.parent,
	}
	fetchStart := time.Now()
	data, err := remote.Fetch(digest)
	s.span(tc, "blob_fetch", fetchStart, time.Now(),
		map[string]string{"victim": victim, "digest": digest, "outcome": probeOutcome(err == nil)})
	if err != nil {
		return pipeline.Request{}, fmt.Errorf("%w: fetch from %s: %v", errStolenTraceUnavailable, victim, err)
	}
	if s.corpus != nil {
		// Best-effort local cache: the next steal of this trace is free.
		if _, _, err := s.corpus.Put(data, false); err != nil {
			s.logger.Warn("could not cache stolen trace locally",
				"digest", digest, "victim", victim, "err", err)
		}
	}
	req.TraceBytes = int64(len(data))
	req.TraceLoader = func() (*trace.Trace, error) { return trace.ReadAny(bytes.NewReader(data)) }
	return req, nil
}

// stealResult is the body of POST /jobs/{id}/result: the thief's
// identity, either an analysis error or the finished summary, exactly
// as a local run would have recorded it.
type stealResult struct {
	Thief   string     `json:"thief"`
	Error   string     `json:"error,omitempty"`
	Summary jobSummary `json:"summary"`
	// Spans are the spans the thief recorded while executing the job —
	// shipped back so the victim's GET /jobs/{id}/trace shows the whole
	// cross-node timeline, not a hole where the stolen execution went.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// wire converts the daemon-typed result into the transport-level
// clusterapi.StealResult: the summary and spans travel as raw JSON so
// internal/scheduler never needs the daemon's report types.
func (r *stealResult) wire() (clusterapi.StealResult, error) {
	out := clusterapi.StealResult{Thief: r.Thief, Error: r.Error}
	var err error
	if out.Summary, err = json.Marshal(&r.Summary); err != nil {
		return clusterapi.StealResult{}, err
	}
	if len(r.Spans) > 0 {
		if out.Spans, err = json.Marshal(r.Spans); err != nil {
			return clusterapi.StealResult{}, err
		}
	}
	return out, nil
}

// executeStolen is the thief side of one steal: run the job on the
// local pipeline and report the outcome to the victim. Analysis errors
// are reported as job failures (they are deterministic — the job would
// fail on the victim too). Trace-availability and report-delivery
// failures instead return an error WITHOUT settling the job: the
// victim's lease requeues it there, where it can still succeed.
func (s *Server) executeStolen(victim string, sj scheduler.StolenJob) error {
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()

	// Spans recorded during the stolen execution are collected for the
	// report body as well as stored locally — the victim owns the job's
	// timeline, but this node keeps its own copy for operators looking
	// at the thief. The steal_execute span's ID is minted up front so
	// children can parent onto it before it is itself recorded.
	var (
		spanMu  sync.Mutex
		shipped []telemetry.Span
	)
	collect := func(sp telemetry.Span) {
		spanMu.Lock()
		shipped = append(shipped, sp)
		spanMu.Unlock()
	}
	execSpanID := telemetry.NewSpanID()
	tc := spanCtx{trace: sj.Trace, parent: execSpanID, rec: collect}
	execStart := time.Now()

	result := stealResult{Thief: s.stealer.Self}
	req, err := s.requestFor(victim, sj.Spec, tc)
	if err == nil {
		// executeJob, not a bare pipeline run: a stolen digest job
		// deserves the same peer-cache probe as a local one — a third
		// node (or the victim itself) may hold the finished result,
		// and a steal must not re-pay a pipeline the cluster already ran.
		var sum jobSummary
		sum, _, err = s.executeJob(req, tc)
		if err == nil {
			result.Summary = sum
		}
	}
	s.recordSpan(tc, telemetry.Span{
		ID: execSpanID, Parent: sj.Span, Name: "steal_execute",
		Start: execStart, End: time.Now(),
		Attrs: map[string]string{"victim": victim, "job": sj.ID},
	})
	spanMu.Lock()
	result.Spans = shipped
	spanMu.Unlock()
	if err != nil {
		if errors.Is(err, errStolenTraceUnavailable) {
			return err // abandon: the lease recovers the job on the victim
		}
		result.Error = err.Error()
	}

	// The report rides the same transport the claim came over. A
	// lease-expired settle (the victim re-owns the job; our result is
	// stale and discarded) surfaces as an error, which is exactly the
	// abandon the stealer's failure accounting wants.
	wire, merr := result.wire()
	if merr != nil {
		return merr
	}
	return s.stealTransport().Settle(victim, sj.ID, wire)
}

// stealTransport returns the transport the stealer claims over, so
// settles take the same path; a server whose stealer never started
// (peer-less tests driving executeStolen directly) falls back to a
// fresh HTTP transport with the shard timeout.
func (s *Server) stealTransport() scheduler.Transport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stealer != nil && s.stealer.Transport != nil {
		return s.stealer.Transport
	}
	return &scheduler.HTTPTransport{Client: &http.Client{Timeout: s.cfg.ShardTimeout}}
}

// handleSteal (GET /steal) is the probe half of the steal protocol: a
// cheap, mutation-free advertisement of how much of this node's backlog
// a thief could take, plus the admission headroom (queue cap) and the
// node's hottest result-cache keys — the cache-population hints that
// let peers aim their cluster-cache probes at the likely holder.
func (s *Server) handleSteal(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, scheduler.PeerStatus{
		QueueLen:  s.queue.Len(),
		QueueCap:  s.queue.Cap(),
		Stealable: s.queue.Stealable(),
		// The digests of the stealable backlog ride along so a thief
		// that already holds cached artifacts for one of them can aim
		// its steal here — that steal settles from cache.
		StealableDigests: s.queue.StealableDigests(s.cfg.CacheHintKeys),
		CacheKeys:        s.pl.RecentResultKeys(s.cfg.CacheHintKeys),
		Seen:             time.Now(),
	})
}

// handleClaim (POST /jobs/claim) hands the newest stealable queued job
// to a thief under a lease. 204 means nothing is stealable. The job
// becomes "running" from its client's point of view — work is underway,
// just elsewhere; if the thief vanishes, the reaper flips it back to
// "queued".
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Thief string `json:"thief"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest, "bad claim body: %v", err)
		return
	}
	if body.Thief == "" {
		body.Thief = r.RemoteAddr
	}
	qj, deadline, ok := s.queue.Claim(body.Thief, s.cfg.StealLease)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j := qj.Payload.(*job)
	s.mu.Lock()
	j.Status = statusRunning
	j.StolenBy = body.Thief
	j.notifyLocked()
	traceID, parent := j.TraceID, j.spanID
	s.mu.Unlock()
	// The claim span marks the hand-off on the victim's timeline; its ID
	// ships to the thief as the parent for everything recorded remotely.
	now := time.Now()
	claimSpan := s.span(spanCtx{trace: traceID, parent: parent}, "steal_claim",
		now, now, map[string]string{"thief": body.Thief, "job": j.ID})
	writeJSON(w, http.StatusOK, scheduler.StolenJob{
		ID:      qj.ID,
		Spec:    qj.Spec,
		LeaseMS: time.Until(deadline).Milliseconds(),
		Trace:   traceID,
		Span:    claimSpan,
	})
}

// handleJobResult (POST /jobs/{id}/result) settles a stolen job with
// the thief's outcome. A job that is no longer on lease — the lease
// expired and the reaper re-queued it — answers 409 and the late result
// is discarded; determinism makes that safe (the local re-run produces
// the identical summary).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var result stealResult
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)).Decode(&result); err != nil {
		httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest, "bad result body: %v", err)
		return
	}
	qj, ok := s.queue.Complete(id)
	if !ok {
		httpError(w, http.StatusConflict, clusterapi.CodeLeaseExpired, "job %s is not on lease (expired, settled, or never claimed)", id)
		return
	}
	j := qj.Payload.(*job)
	s.mu.Lock()
	defer s.mu.Unlock()
	j.Finished = time.Now()
	j.req = pipeline.Request{} // release any retained request state
	if result.Thief != "" {
		j.StolenBy = result.Thief
	}
	if result.Error != "" {
		j.Status = statusFailed
		j.Error = result.Error
	} else {
		j.Status = statusDone
		j.jobSummary = result.Summary
	}
	j.notifyLocked()
	s.jobsDone.With(j.Status).Inc()
	// Adopt the thief's spans onto the job's timeline, then close it
	// out exactly like a local run: a settle marker and the root span.
	tc := spanCtx{trace: j.TraceID, parent: j.spanID}
	for _, sp := range result.Spans {
		s.recordSpan(tc, sp)
	}
	s.span(tc, "steal_settle", j.Finished, j.Finished,
		map[string]string{"thief": j.StolenBy, "status": j.Status})
	s.recordSpan(tc, telemetry.Span{
		ID: j.spanID, Name: "job", Start: j.Submitted, End: j.Finished,
		Attrs: map[string]string{"job": j.ID, "status": j.Status},
	})
	s.order = append(s.order, j.ID)
	s.evictLocked()
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": j.Status})
}
