package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestJobLongPoll drives GET /jobs/{id}?wait= through its three paths:
// waking on state change, timing out on a parked job, and answering a
// terminal job immediately with the per-stage timings in the body.
func TestJobLongPoll(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp := postJSON(t, ts.URL+"/analyze", `{"app":"pbzip2","scale":0.2,"seed":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	id := sub["id"]

	// Long-poll until terminal: each request parks until a transition,
	// so this loop needs at most queued→running→done round trips. A
	// broken wake-up would stall each iteration for the full 5s and trip
	// the loop bound.
	var j map[string]any
	for i := 0; ; i++ {
		if i > 4 {
			t.Fatal("long-poll made too many round trips for one job")
		}
		r, err := http.Get(ts.URL + "/jobs/" + id + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		j = decode[map[string]any](t, r)
		if j["status"] == statusDone || j["status"] == statusFailed {
			break
		}
	}
	if j["status"] != statusDone {
		t.Fatalf("job failed: %v", j["error"])
	}

	// The finished body carries every stage's wall clock.
	timings, _ := j["timings"].([]any)
	if len(timings) != 5 {
		t.Fatalf("timings = %v, want the 5 pipeline stages", j["timings"])
	}
	wantStages := []string{"record", "replay", "classify", "quantify", "report"}
	for i, raw := range timings {
		st, _ := raw.(map[string]any)
		if st["stage"] != wantStages[i] {
			t.Fatalf("timing %d = %v, want stage %q", i, raw, wantStages[i])
		}
		if _, ok := st["wall_ns"].(float64); !ok {
			t.Fatalf("timing %d lacks wall_ns: %v", i, raw)
		}
	}

	// A terminal job answers a long-poll immediately.
	start := time.Now()
	r, err := http.Get(ts.URL + "/jobs/" + id + "?wait=5s")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("long-poll on a done job took %v, want immediate", elapsed)
	}

	// Malformed wait durations are rejected.
	bad, err := http.Get(ts.URL + "/jobs/" + id + "?wait=banana")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("wait=banana: status %d, want 400", bad.StatusCode)
	}
}

// TestJobLongPollTimeout: with no workers draining the queue, a
// long-poll on a queued job must return at the wait deadline — still
// queued — rather than hanging.
func TestJobLongPollTimeout(t *testing.T) {
	s, err := NewServer(Config{CorpusDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/analyze", `{"app":"pbzip2","scale":0.2}`)
	sub := decode[map[string]string](t, resp)

	start := time.Now()
	r, err := http.Get(ts.URL + "/jobs/" + sub["id"] + "?wait=300ms")
	if err != nil {
		t.Fatal(err)
	}
	j := decode[map[string]any](t, r)
	elapsed := time.Since(start)
	if j["status"] != statusQueued {
		t.Fatalf("status = %v, want queued (nothing drains the queue)", j["status"])
	}
	if elapsed < 250*time.Millisecond {
		t.Fatalf("long-poll returned after %v, before the 300ms wait", elapsed)
	}
}
