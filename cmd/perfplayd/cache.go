package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"perfplay/internal/pipeline"
	"perfplay/internal/scheduler"
)

// This file is the daemon half of cluster-shared result caching and
// steal-aware admission:
//
//	GET /cache/results/{key}  export one cached analysis result (wire form)
//	GET /cache/tables/{key}   export one cached verdict table
//	503 + Retry-Peer          a full queue redirects submitters to the
//	                          idlest peer instead of turning them away
//
// Before executing a cache-missed job whose trace is content-addressed,
// the job runner probes peers for the finished result by cache key —
// gossip-ordered (peers hinting the key first, then the idlest), with
// bounded fan-out and a short timeout. A hit imports the wire report
// and settles the job with zero replays; the determinism contract
// (byte-identical reports regardless of where work lands) is what makes
// serving a peer's bytes indistinguishable from running locally. Every
// failure on this path degrades to local execution, never to an error.

// cacheHintKeys bounds the recent result-cache keys gossiped in each
// GET /steal response (the cache-population hints).
const cacheHintKeys = 32

// cacheStats counts this node's cluster-cache and admission traffic.
type cacheStats struct {
	// probes / remoteHits count result-cache probes to peers.
	probes, remoteHits atomic.Int64
	// tableProbes / tableImports count verdict-table probes and the
	// tables actually adopted.
	tableProbes, tableImports atomic.Int64
	// servedResults / servedTables count exports to probing peers.
	servedResults, servedTables atomic.Int64
	// admissionRedirects counts queue-full 503s that carried a
	// Retry-Peer header.
	admissionRedirects atomic.Int64
}

func (c *cacheStats) snapshot() map[string]int64 {
	return map[string]int64{
		"probes":              c.probes.Load(),
		"remote_hits":         c.remoteHits.Load(),
		"table_probes":        c.tableProbes.Load(),
		"table_imports":       c.tableImports.Load(),
		"served_results":      c.servedResults.Load(),
		"served_tables":       c.servedTables.Load(),
		"admission_redirects": c.admissionRedirects.Load(),
	}
}

// handleCacheResult (GET /cache/results/{key}) exports one cached
// result in wire form, rendered at ?top= (0 = 5). The key is the
// path-escaped pipeline cache key; a miss is 404 — the prober's cue to
// try the next peer or run locally, never an error.
func (s *Server) handleCacheResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	top, _ := strconv.Atoi(r.URL.Query().Get("top"))
	wr, ok := s.pl.Export(key, top)
	if !ok {
		httpError(w, http.StatusNotFound, "no cached result for key %q", key)
		return
	}
	s.cacheStats.servedResults.Add(1)
	writeJSON(w, http.StatusOK, wr)
}

// handleCacheTable (GET /cache/tables/{key}) exports one cached verdict
// table — the replay-heavy half of classification — so a peer missing
// both caches can still run its job with zero reversed replays. The
// response echoes the key for importer-side validation.
func (s *Server) handleCacheTable(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	wt, ok := s.pl.ExportTable(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no cached verdict table for key %q", key)
		return
	}
	s.cacheStats.servedTables.Add(1)
	writeJSON(w, http.StatusOK, wt)
}

// cacheProbeOrder ranks peers for one cache probe: peers whose
// gossiped hints satisfy the matcher first, then known-healthy peers
// by queue depth (idlest first — most likely to answer fast), then
// peers the gossip has never seen or whose last probe failed, in
// config order; bounded to CacheProbeFanout entries. Failed-probe
// peers rank with the unseen, not the healthy — their counts are
// stale, and a dead peer sorted ahead of a live cache holder would
// burn a probe timeout on the job-execution hot path (or squeeze the
// holder out of the fan-out altogether).
func (s *Server) cacheProbeOrder(hinted func(scheduler.PeerStatus) bool) []string {
	snap := s.gossip.Snapshot()
	peers := append([]string(nil), s.cfg.Peers...)
	sort.SliceStable(peers, func(i, j int) bool {
		si, iok := snap[peers[i]]
		sj, jok := snap[peers[j]]
		hi := iok && si.Err == "" && hinted(si)
		hj := jok && sj.Err == "" && hinted(sj)
		if hi != hj {
			return hi
		}
		ki := iok && si.Err == ""
		kj := jok && sj.Err == ""
		if ki != kj {
			return ki
		}
		return ki && si.QueueLen < sj.QueueLen
	})
	if n := s.cfg.CacheProbeFanout; n > 0 && len(peers) > n {
		peers = peers[:n]
	}
	return peers
}

// probePeerCaches asks peers for a finished result matching the
// request's cache key. Only digest-keyed (content-addressed) requests
// probe: their keys name trace bytes both sides can verify, and only
// those jobs are expensive enough to be worth a network round trip.
// ok=false — local miss everywhere — is the normal path, not a failure.
func (s *Server) probePeerCaches(req pipeline.Request) (*pipeline.WireResult, string, bool) {
	if len(s.cfg.Peers) == 0 || req.TraceDigest == "" {
		return nil, "", false
	}
	key, ok := s.pl.CacheKeyFor(req)
	if !ok || s.pl.HasResult(key) {
		return nil, "", false
	}
	for _, peer := range s.cacheProbeOrder(func(st scheduler.PeerStatus) bool { return st.HintsKey(key) }) {
		s.cacheStats.probes.Add(1)
		wr, err := s.fetchWireResult(peer, key, req.TopK)
		if err != nil {
			continue // miss, dead peer, or garbage: the local run is always correct
		}
		s.cacheStats.remoteHits.Add(1)
		return wr, peer, true
	}
	return nil, "", false
}

// fetchWireResult fetches and validates one peer's cached result.
func (s *Server) fetchWireResult(peer, key string, topK int) (*pipeline.WireResult, error) {
	resp, err := s.cacheClient.Get(peer + "/cache/results/" + url.PathEscape(key) + "?top=" + strconv.Itoa(topK))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cache probe %s: status %d", peer, resp.StatusCode)
	}
	var wr pipeline.WireResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, s.cfg.MaxTraceBytes)).Decode(&wr); err != nil {
		return nil, fmt.Errorf("cache probe %s: %w", peer, err)
	}
	if err := wr.Validate(key, topK); err != nil {
		return nil, err
	}
	return &wr, nil
}

// probePeerTables tries to import the job's verdict table from a peer
// when the result probe missed — the local run then classifies with
// zero reversed replays. Best-effort by design: every failure just
// means the local run pays its own replays. Probes are hint-matched by
// trace *digest*, not by the table key: gossiped hints are result-
// cache keys, and a peer hinting any result for this trace — whatever
// reporting flags its job used — ran the identify pass that built this
// very table.
func (s *Server) probePeerTables(req pipeline.Request) {
	if len(s.cfg.Peers) == 0 || req.TraceDigest == "" {
		return
	}
	key, ok := s.pl.TableKeyFor(req)
	if !ok || s.pl.HasTable(key) {
		return
	}
	digest := req.TraceDigest
	for _, peer := range s.cacheProbeOrder(func(st scheduler.PeerStatus) bool { return st.HintsDigest(digest) }) {
		s.cacheStats.tableProbes.Add(1)
		if s.fetchTable(peer, key) {
			return
		}
	}
}

func (s *Server) fetchTable(peer, key string) bool {
	resp, err := s.cacheClient.Get(peer + "/cache/tables/" + url.PathEscape(key))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false
	}
	var wt pipeline.WireTable
	if err := json.NewDecoder(io.LimitReader(resp.Body, s.cfg.MaxTraceBytes)).Decode(&wt); err != nil {
		return false
	}
	if wt.Validate(key) != nil || !s.pl.ImportTable(key, wt.Table) {
		return false
	}
	s.cacheStats.tableImports.Add(1)
	return true
}

// summaryFromWire settles a job from a peer's cached result: the same
// fields a local summarize would fill, with the ULCP count re-tallied
// from the wire pairs (the one artifact shipped structurally, exercising
// the same wire round-trip the shard protocol trusts).
func summaryFromWire(wr *pipeline.WireResult) jobSummary {
	sum := jobSummary{
		App:            wr.App,
		Threads:        wr.Threads,
		CritSecs:       wr.CritSecs,
		ULCPs:          wr.Ulcp.NumULCPs(),
		DegradationPct: wr.DegradationPct,
		CacheHit:       true,
		Report:         wr.Report,
	}
	if len(wr.Schemes) > 0 {
		sum.Schemes = make(map[string]string, len(wr.Schemes))
		for _, sc := range wr.Schemes {
			sum.Schemes[sc.Sched] = sc.Total
		}
	}
	sum.Timings = make([]stageTiming, len(wr.Timings))
	for i, st := range wr.Timings {
		sum.Timings[i] = stageTiming{Stage: st.Stage, WallNS: st.Wall.Nanoseconds(), Wall: st.Wall.String()}
	}
	return sum
}

// rejectQueueFull answers a submit that found the queue full. With a
// peer known (or probed) to have queue headroom, the 503 carries a
// Retry-Peer header naming it — steal-aware admission: the node cannot
// take the job, but the cluster can, and the redirected submit lands
// where a thief would have dragged the job anyway.
func (s *Server) rejectQueueFull(w http.ResponseWriter) {
	if peer, ok := s.idlestPeer(); ok {
		w.Header().Set("Retry-Peer", peer)
		s.cacheStats.admissionRedirects.Add(1)
		httpError(w, http.StatusServiceUnavailable,
			"job queue full (%d pending); retry at %s", s.cfg.QueueDepth, peer)
		return
	}
	httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.QueueDepth)
}

// idlestPeer picks the admission redirect target: the healthy peer with
// the shortest known queue that is not itself full. The gossip view is
// consulted first (the stealer refreshes it every tick, busy or not).
// When it yields no candidate AND no peer looks healthy in it — no
// stealer, nothing probed yet, or every entry is a stale failure — a
// bounded synchronous probe round stands in, so one bad round (or a
// disabled stealer) cannot suppress redirects forever. Healthy-but-full
// gossip entries do NOT trigger the fallback: that is an honest "no
// room", and probing every peer on every overloaded submit would turn
// an overload into a probe storm. ok=false means no peer is known to
// have room — redirecting a submitter into another full queue would
// just bounce them around the cluster.
func (s *Server) idlestPeer() (string, bool) {
	if len(s.cfg.Peers) == 0 {
		return "", false
	}
	var best string
	bestLen, found := 0, false
	consider := func(peer string, st scheduler.PeerStatus) {
		if st.Err != "" {
			return
		}
		if st.QueueCap > 0 && st.QueueLen >= st.QueueCap {
			return // full too; not a valid redirect target
		}
		if !found || st.QueueLen < bestLen {
			best, bestLen, found = peer, st.QueueLen, true
		}
	}
	snap := s.gossip.Snapshot()
	healthy := false
	for _, peer := range s.cfg.Peers {
		if st, ok := snap[peer]; ok {
			if st.Err == "" {
				healthy = true
			}
			consider(peer, st)
		}
	}
	if !found && !healthy && s.admissionProbeAllowed() {
		peers := s.cfg.Peers
		if n := s.cfg.CacheProbeFanout; n > 0 && len(peers) > n {
			peers = peers[:n]
		}
		for _, peer := range peers {
			st, err := scheduler.Probe(s.cacheClient, peer)
			if err != nil {
				s.gossip.RecordErr(peer, err)
				continue
			}
			s.gossip.Record(peer, st)
			consider(peer, st)
		}
	}
	return best, found
}

// admissionProbeAllowed rate-limits the admission path's synchronous
// fallback probing to one round per steal interval. The fallback
// blocks its handler for up to fanout × CacheProbeTimeout, and it runs
// exactly when the node is overloaded — without this bound, a submit
// storm against a full queue with unreachable peers would tie up a
// handler goroutine per rejection re-probing the same dead peers.
func (s *Server) admissionProbeAllowed() bool {
	// A non-positive StealInterval means "stealing disabled", not
	// "probe without bound" — clamp to a floor so the rate limit holds
	// exactly when the stealer is not around to refresh gossip.
	interval := s.cfg.StealInterval
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	if now.Sub(s.lastAdmissionProbe) < interval {
		return false
	}
	s.lastAdmissionProbe = now
	return true
}
