package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"perfplay/internal/cachepolicy"
	"perfplay/internal/clusterapi"
	"perfplay/internal/pipeline"
	"perfplay/internal/scheduler"
	"perfplay/internal/telemetry"
)

// This file is the daemon half of cluster-shared result caching and
// steal-aware admission:
//
//	GET /cache/results/{key}  export one cached analysis result (wire form)
//	GET /cache/tables/{key}   export one cached verdict table
//	503 + Retry-Peer          a full queue redirects submitters to the
//	                          idlest peer instead of turning them away
//
// Before executing a cache-missed job whose trace is content-addressed,
// the job runner probes peers for the finished result by cache key —
// gossip-ordered (peers hinting the key first, then the idlest), with
// bounded fan-out and a short timeout. A hit imports the wire report
// and settles the job with zero replays; the determinism contract
// (byte-identical reports regardless of where work lands) is what makes
// serving a peer's bytes indistinguishable from running locally. Every
// failure on this path degrades to local execution, never to an error.
//
// The decisions themselves — who to probe, in what order, how many,
// when to give up — live in internal/cachepolicy; this file is the HTTP
// adapter behind its Transport seam (fetch, decode, validate) plus the
// daemon-side accounting. internal/clustersim drives the same policy
// code over a virtual-clock transport, which is what lets the policy
// lab's sweep results (docs/POLICIES.md) speak for this daemon.

// cacheStats counts this node's cluster-cache and admission traffic.
// The counters live in the daemon's metrics registry — /healthz's
// cluster-cache section and /metrics render the same series, so the
// two surfaces cannot drift.
type cacheStats struct {
	// probes / remoteHits count result-cache probes to peers.
	probes, remoteHits *telemetry.Counter
	// tableProbes / tableImports count verdict-table probes and the
	// tables actually adopted.
	tableProbes, tableImports *telemetry.Counter
	// servedResults / servedTables count exports to probing peers.
	servedResults, servedTables *telemetry.Counter
	// admissionRedirects counts queue-full 503s that carried a
	// Retry-Peer header.
	admissionRedirects *telemetry.Counter
}

func newCacheStats(reg *telemetry.Registry) cacheStats {
	probes := reg.NewCounterVec("perfplay_cluster_cache_probes_total",
		"Cluster cache probes issued to peers, by artifact kind.", "kind")
	hits := reg.NewCounterVec("perfplay_cluster_cache_hits_total",
		"Cluster cache probes answered by a peer, by artifact kind.", "kind")
	served := reg.NewCounterVec("perfplay_cluster_cache_served_total",
		"Cache artifacts this node exported to probing peers, by kind.", "kind")
	return cacheStats{
		probes:        probes.With("result"),
		remoteHits:    hits.With("result"),
		tableProbes:   probes.With("table"),
		tableImports:  hits.With("table"),
		servedResults: served.With("result"),
		servedTables:  served.With("table"),
		admissionRedirects: reg.NewCounter("perfplay_admission_redirects_total",
			"Queue-full 503s that carried a Retry-Peer redirect."),
	}
}

func (c *cacheStats) snapshot() map[string]int64 {
	return map[string]int64{
		"probes":              c.probes.Int(),
		"remote_hits":         c.remoteHits.Int(),
		"table_probes":        c.tableProbes.Int(),
		"table_imports":       c.tableImports.Int(),
		"served_results":      c.servedResults.Int(),
		"served_tables":       c.servedTables.Int(),
		"admission_redirects": c.admissionRedirects.Int(),
	}
}

// handleCacheResult (GET /cache/results/{key}) exports one cached
// result in wire form, rendered at ?top= (0 = 5). The key is the
// path-escaped pipeline cache key; a miss is 404 — the prober's cue to
// try the next peer or run locally, never an error.
func (s *Server) handleCacheResult(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	key := r.PathValue("key")
	top, _ := strconv.Atoi(r.URL.Query().Get("top"))
	wr, ok := s.pl.Export(key, top)
	s.span(s.incomingTrace(r), "cache_serve", start, time.Now(),
		map[string]string{"kind": "result", "outcome": probeOutcome(ok)})
	if !ok {
		httpError(w, http.StatusNotFound, clusterapi.CodeCacheMiss, "no cached result for key %q", key)
		return
	}
	s.cacheStats.servedResults.Inc()
	writeJSON(w, http.StatusOK, wr)
}

// handleCacheTable (GET /cache/tables/{key}) exports one cached verdict
// table — the replay-heavy half of classification — so a peer missing
// both caches can still run its job with zero reversed replays. The
// response echoes the key for importer-side validation.
func (s *Server) handleCacheTable(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	key := r.PathValue("key")
	wt, ok := s.pl.ExportTable(key)
	s.span(s.incomingTrace(r), "cache_serve", start, time.Now(),
		map[string]string{"kind": "table", "outcome": probeOutcome(ok)})
	if !ok {
		httpError(w, http.StatusNotFound, clusterapi.CodeCacheMiss, "no cached verdict table for key %q", key)
		return
	}
	s.cacheStats.servedTables.Inc()
	writeJSON(w, http.StatusOK, wt)
}

// probeOutcome renders a cache lookup's result as a span attribute.
func probeOutcome(ok bool) string {
	if ok {
		return "hit"
	}
	return "miss"
}

// cacheProbeOrder ranks this node's peers for one cache probe via the
// shared cachepolicy.ProbeOrder policy (hinted first, then idlest,
// failed-probe peers last), fed from the gossip view and bounded to
// CacheProbeFanout entries.
func (s *Server) cacheProbeOrder(hinted func(scheduler.PeerStatus) bool) []string {
	return cachepolicy.ProbeOrder(s.cfg.Peers, s.gossip.Snapshot(), hinted, s.cfg.CacheProbeFanout)
}

// prober builds the shared degrade-to-local probe policy over this
// node's HTTP transport, with the daemon's counters and spans attached
// as the observation hook — one cache_probe/table_probe span and one
// kind-labelled counter increment per attempt, exactly what the inline
// loops recorded before the policy was extracted.
func (s *Server) prober(tc spanCtx) *cachepolicy.Prober[*pipeline.WireResult, *pipeline.WireTable] {
	return &cachepolicy.Prober[*pipeline.WireResult, *pipeline.WireTable]{
		Transport: &httpCacheTransport{s: s, tc: tc},
		Fanout:    s.cfg.CacheProbeFanout,
		Observe: func(peer, kind string, hit bool, start, end time.Time) {
			name := "cache_probe"
			if kind == "table" {
				name = "table_probe"
				s.cacheStats.tableProbes.Inc()
			} else {
				s.cacheStats.probes.Inc()
			}
			s.span(tc, name, start, end,
				map[string]string{"peer": peer, "kind": kind, "outcome": probeOutcome(hit)})
		},
	}
}

// httpCacheTransport is the daemon's side of the cachepolicy.Transport
// seam: fetch, decode and validate peer cache artifacts over HTTP, with
// the job's trace context riding as headers. Artifacts it returns are
// already verified; the policy layer never opens them.
type httpCacheTransport struct {
	s  *Server
	tc spanCtx
}

func (t *httpCacheTransport) FetchResult(peer, key string, topK int) (*pipeline.WireResult, error) {
	return t.s.fetchWireResult(peer, key, topK, t.tc)
}

func (t *httpCacheTransport) FetchTable(peer, key string) (*pipeline.WireTable, error) {
	return t.s.fetchWireTable(peer, key, t.tc)
}

// probePeerCaches asks peers for a finished result matching the
// request's cache key. Only digest-keyed (content-addressed) requests
// probe: their keys name trace bytes both sides can verify, and only
// those jobs are expensive enough to be worth a network round trip.
// ok=false — local miss everywhere — is the normal path, not a failure.
func (s *Server) probePeerCaches(req pipeline.Request, tc spanCtx) (*pipeline.WireResult, string, bool) {
	if len(s.cfg.Peers) == 0 || req.TraceDigest == "" {
		return nil, "", false
	}
	key, ok := s.pl.CacheKeyFor(req)
	if !ok || s.pl.HasResult(key) {
		return nil, "", false
	}
	wr, peer, ok := s.prober(tc).ProbeResult(s.cfg.Peers, s.gossip.Snapshot(), key, req.TopK)
	if !ok {
		return nil, "", false
	}
	s.cacheStats.remoteHits.Inc()
	return wr, peer, true
}

// probeGet issues one cluster-cache probe with the job's trace context
// riding as headers, so the serving peer's span lands on the same
// timeline as the probe span recorded here.
func (s *Server) probeGet(urlStr string, tc spanCtx) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, urlStr, nil)
	if err != nil {
		return nil, err
	}
	if tc.trace != "" {
		req.Header.Set(telemetry.TraceHeader, tc.trace)
		req.Header.Set(telemetry.SpanHeader, tc.parent)
	}
	return s.cacheClient.Do(req)
}

// fetchWireResult fetches and validates one peer's cached result.
func (s *Server) fetchWireResult(peer, key string, topK int, tc spanCtx) (*pipeline.WireResult, error) {
	resp, err := s.probeGet(peer+"/cache/results/"+url.PathEscape(key)+"?top="+strconv.Itoa(topK), tc)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cache probe %s: status %d", peer, resp.StatusCode)
	}
	var wr pipeline.WireResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, s.cfg.MaxTraceBytes)).Decode(&wr); err != nil {
		return nil, fmt.Errorf("cache probe %s: %w", peer, err)
	}
	if err := wr.Validate(key, topK); err != nil {
		return nil, err
	}
	return &wr, nil
}

// probePeerTables tries to import the job's verdict table from a peer
// when the result probe missed — the local run then classifies with
// zero reversed replays. Best-effort by design: every failure just
// means the local run pays its own replays. Probes are hint-matched by
// trace *digest*, not by the table key: gossiped hints are result-
// cache keys, and a peer hinting any result for this trace — whatever
// reporting flags its job used — ran the identify pass that built this
// very table.
func (s *Server) probePeerTables(req pipeline.Request, tc spanCtx) {
	if len(s.cfg.Peers) == 0 || req.TraceDigest == "" {
		return
	}
	key, ok := s.pl.TableKeyFor(req)
	if !ok || s.pl.HasTable(key) {
		return
	}
	s.prober(tc).ProbeTable(s.cfg.Peers, s.gossip.Snapshot(), req.TraceDigest, key,
		func(wt *pipeline.WireTable) bool {
			if wt.Validate(key) != nil || !s.pl.ImportTable(key, wt.Table) {
				return false
			}
			s.cacheStats.tableImports.Inc()
			return true
		})
}

// fetchWireTable fetches and decodes one peer's cached verdict table.
// Key validation happens in the accept hook: it needs the table key the
// prober matched by digest, and adoption (ImportTable) is the real
// acceptance test.
func (s *Server) fetchWireTable(peer, key string, tc spanCtx) (*pipeline.WireTable, error) {
	resp, err := s.probeGet(peer+"/cache/tables/"+url.PathEscape(key), tc)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("table probe %s: status %d", peer, resp.StatusCode)
	}
	var wt pipeline.WireTable
	if err := json.NewDecoder(io.LimitReader(resp.Body, s.cfg.MaxTraceBytes)).Decode(&wt); err != nil {
		return nil, fmt.Errorf("table probe %s: %w", peer, err)
	}
	return &wt, nil
}

// summaryFromWire settles a job from a peer's cached result: the same
// fields a local summarize would fill, with the ULCP count re-tallied
// from the wire pairs (the one artifact shipped structurally, exercising
// the same wire round-trip the shard protocol trusts).
func summaryFromWire(wr *pipeline.WireResult) jobSummary {
	sum := jobSummary{
		App:            wr.App,
		Threads:        wr.Threads,
		CritSecs:       wr.CritSecs,
		ULCPs:          wr.Ulcp.NumULCPs(),
		DegradationPct: wr.DegradationPct,
		CacheHit:       true,
		Report:         wr.Report,
	}
	if len(wr.Schemes) > 0 {
		sum.Schemes = make(map[string]string, len(wr.Schemes))
		for _, sc := range wr.Schemes {
			sum.Schemes[sc.Sched] = sc.Total
		}
	}
	sum.Timings = make([]stageTiming, len(wr.Timings))
	for i, st := range wr.Timings {
		sum.Timings[i] = stageTiming{Stage: st.Stage, WallNS: st.Wall.Nanoseconds(), Wall: st.Wall.String()}
	}
	return sum
}

// rejectQueueFull answers a submit that found the queue full. With a
// peer known (or probed) to have queue headroom, the 503 carries a
// Retry-Peer header naming it — steal-aware admission: the node cannot
// take the job, but the cluster can, and the redirected submit lands
// where a thief would have dragged the job anyway.
func (s *Server) rejectQueueFull(w http.ResponseWriter, traceID string) {
	if peer, ok := s.idlestPeer(); ok {
		w.Header().Set("Retry-Peer", peer)
		s.cacheStats.admissionRedirects.Inc()
		now := time.Now()
		s.span(spanCtx{trace: traceID}, "admission_redirect", now, now,
			map[string]string{"peer": peer})
		httpError(w, http.StatusServiceUnavailable, clusterapi.CodeQueueFull,
			"job queue full (%d pending); retry at %s", s.cfg.QueueDepth, peer)
		return
	}
	httpError(w, http.StatusServiceUnavailable, clusterapi.CodeQueueFull, "job queue full (%d pending)", s.cfg.QueueDepth)
}

// idlestPeer picks the admission redirect target via the shared
// scheduler.IdlestPeer policy: the healthy peer with the shortest known
// queue that is not itself full. The gossip view is consulted first
// (the stealer refreshes it every tick, busy or not). When it yields no
// candidate AND no peer looks healthy in it — no stealer, nothing
// probed yet, or every entry is a stale failure — a bounded synchronous
// probe round stands in, so one bad round (or a disabled stealer)
// cannot suppress redirects forever. Healthy-but-full gossip entries do
// NOT trigger the fallback: that is an honest "no room", and probing
// every peer on every overloaded submit would turn an overload into a
// probe storm. ok=false means no peer is known to have room —
// redirecting a submitter into another full queue would just bounce
// them around the cluster.
func (s *Server) idlestPeer() (string, bool) {
	if len(s.cfg.Peers) == 0 {
		return "", false
	}
	snap := s.gossip.Snapshot()
	if peer, ok := scheduler.IdlestPeer(s.cfg.Peers, snap); ok {
		return peer, true
	}
	for _, peer := range s.cfg.Peers {
		if st, ok := snap[peer]; ok && st.Err == "" {
			return "", false // healthy but full: an honest "no room"
		}
	}
	if !s.admissionProbeAllowed() {
		return "", false
	}
	peers := s.cfg.Peers
	if n := s.cfg.CacheProbeFanout; n > 0 && len(peers) > n {
		peers = peers[:n]
	}
	for _, peer := range peers {
		st, err := scheduler.Probe(s.cacheClient, peer)
		if err != nil {
			s.gossip.RecordErr(peer, err)
			continue
		}
		s.gossip.Record(peer, st)
	}
	return scheduler.IdlestPeer(peers, s.gossip.Snapshot())
}

// admissionProbeAllowed rate-limits the admission path's synchronous
// fallback probing to one round per steal interval. The fallback
// blocks its handler for up to fanout × CacheProbeTimeout, and it runs
// exactly when the node is overloaded — without this bound, a submit
// storm against a full queue with unreachable peers would tie up a
// handler goroutine per rejection re-probing the same dead peers.
func (s *Server) admissionProbeAllowed() bool {
	// A non-positive StealInterval means "stealing disabled", not
	// "probe without bound" — clamp to a floor so the rate limit holds
	// exactly when the stealer is not around to refresh gossip.
	interval := s.cfg.StealInterval
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	if now.Sub(s.lastAdmissionProbe) < interval {
		return false
	}
	s.lastAdmissionProbe = now
	return true
}
