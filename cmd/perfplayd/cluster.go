package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"perfplay/internal/clusterapi"
	"perfplay/internal/corpus"
	"perfplay/internal/pipeline"
	"perfplay/internal/telemetry"
	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

// Daemon roles. Every role serves the full HTTP surface; the role only
// changes which side of the shard protocol the daemon drives. A worker
// is a daemon whose /shards endpoint is expected to do the heavy
// lifting; a coordinator additionally fans each job's classification
// shards out to its -peers (workers or other standalones), falling back
// to local execution when a peer fails.
const (
	roleStandalone  = "standalone"
	roleWorker      = "worker"
	roleCoordinator = "coordinator"
)

// shardTraceCacheCap bounds the worker-side parsed-trace cache. Parsed
// traces are the big objects here (tens of MB at production scale), so
// the cap is deliberately small: a worker typically serves ranges of
// one or two live traces at a time.
const shardTraceCacheCap = 4

// shardTrace is one cached decomposition: the parsed (and warmed)
// trace and its sorted lock groups — everything handleShards needs
// that is derivable from the blob alone.
type shardTrace struct {
	tr     *trace.Trace
	groups [][]*trace.CritSec
}

// shardTraceCache is a tiny LRU keyed by trace digest. It exists so a
// coordinator analyzing the same stored trace repeatedly (the verdict
// table cache's headline case) does not make each worker re-pay the
// blob read + parse + CS extraction per shard request.
type shardTraceCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*shardTrace
	order []string // oldest first
}

func newShardTraceCache(capacity int) *shardTraceCache {
	return &shardTraceCache{cap: capacity, items: make(map[string]*shardTrace, capacity)}
}

func (c *shardTraceCache) get(digest string) (*shardTrace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.items[digest]
	if ok {
		c.touchLocked(digest)
	}
	return st, ok
}

func (c *shardTraceCache) put(digest string, st *shardTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[digest]; ok {
		c.touchLocked(digest)
		return
	}
	c.items[digest] = st
	c.order = append(c.order, digest)
	for len(c.order) > c.cap {
		delete(c.items, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *shardTraceCache) touchLocked(digest string) {
	for i, d := range c.order {
		if d == digest {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), digest)
			return
		}
	}
}

// shardRequest is the body of POST /shards: analyze lock groups
// [Start, End) of the sorted shard decomposition of the trace stored
// under Trace, with the given options and shared verdict table. The
// trace is referenced by content digest, never inlined — a coordinator
// pushes the blob (POST /traces) only to peers that miss it.
type shardRequest struct {
	Trace string             `json:"trace"`
	Start int                `json:"start"`
	End   int                `json:"end"`
	Opts  ulcp.Options       `json:"options"`
	Table *ulcp.VerdictTable `json:"table,omitempty"`
}

// shardResponse answers with one wire report per requested group, in
// group order, plus the worker's view of the decomposition so a
// coordinator can detect a mismatched trace before merging garbage.
type shardResponse struct {
	Trace   string             `json:"trace"`
	Start   int                `json:"start"`
	End     int                `json:"end"`
	Groups  int                `json:"groups"`
	Reports []*ulcp.WireReport `json:"reports"`
	// Spans are the worker's spans for this range — shipped back so the
	// coordinator's job timeline covers the remote execution.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// handleShards is the worker half of the shard protocol. It is
// synchronous — the coordinator owns queueing and placement; a worker
// just computes. Unknown digests are 404 (the coordinator's cue to push
// the blob and retry); malformed ranges are 400; bodies beyond the
// trace size cap are 413.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if !s.requireCorpus(w) {
		return
	}
	// Admission control: /shards bypasses the job queue (the
	// coordinator owns queueing), so a bounded semaphore stands in for
	// it — beyond MaxShardRequests concurrent executions the worker
	// answers 503 and the coordinator re-runs the range locally.
	if s.shardSem != nil {
		select {
		case s.shardSem <- struct{}{}:
			defer func() { <-s.shardSem }()
		default:
			httpError(w, http.StatusServiceUnavailable, clusterapi.CodeShardBusy,
				"shard executor busy (%d concurrent requests)", cap(s.shardSem))
			return
		}
	}
	// Shard requests are metadata-sized (options + verdict table), so a
	// single MaxTraceBytes cap bounds them without drawing on the
	// upload byte budget reserved for whole-trace bodies.
	var req shardRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, clusterapi.CodeBodyTooLarge,
				"shard request exceeds %d bytes", s.cfg.MaxTraceBytes)
			return
		}
		httpError(w, http.StatusBadRequest, clusterapi.CodeBadRequest, "bad shard request: %v", err)
		return
	}
	st, ok := s.shardTraces.get(req.Trace)
	if !ok {
		tr, _, err := s.corpus.Load(req.Trace)
		if err != nil {
			corpusError(w, err)
			return
		}
		tr.Warm()
		st = &shardTrace{tr: tr, groups: ulcp.SortedLockGroups(tr.ExtractCS())}
		s.shardTraces.put(req.Trace, st)
	} else if _, err := s.corpus.Touch(req.Trace); err != nil {
		// The blob was deleted out from under the cache: behave like a
		// miss so the coordinator re-seeds rather than silently reusing
		// evicted content. (Touch also keeps the LRU honest about use.)
		corpusError(w, err)
		return
	}
	if req.Start < 0 || req.End < req.Start || req.End > len(st.groups) {
		httpError(w, http.StatusBadRequest, clusterapi.CodeRangeOutOfBounds,
			"shard range [%d,%d) out of bounds for %d lock groups", req.Start, req.End, len(st.groups))
		return
	}
	execStart := time.Now()
	reports := make([]*ulcp.WireReport, req.End-req.Start)
	pool := pipeline.NewPool(s.cfg.PipelineWorkers)
	pool.Each(len(reports), func(i int) {
		rep := ulcp.IdentifyShardWithVerdicts(st.tr, st.groups[req.Start+i], req.Opts, req.Table)
		reports[i] = rep.Wire()
	})
	// When the coordinator sent trace context, the execution span is
	// recorded locally AND shipped in the response, so both nodes'
	// timelines cover this range.
	var spans []telemetry.Span
	if tc := s.incomingTrace(r); tc.trace != "" {
		sp := telemetry.Span{
			ID: telemetry.NewSpanID(), Parent: tc.parent, Node: s.nodeName,
			Name: "shard_execute", Start: execStart, End: time.Now(),
			Attrs: map[string]string{
				"digest": req.Trace,
				"start":  strconv.Itoa(req.Start),
				"end":    strconv.Itoa(req.End),
			},
		}
		s.traces.Add(tc.trace, sp)
		spans = []telemetry.Span{sp}
	}
	writeJSON(w, http.StatusOK, &shardResponse{
		Trace:   req.Trace,
		Start:   req.Start,
		End:     req.End,
		Groups:  len(st.groups),
		Reports: reports,
		Spans:   spans,
	})
}

// peerExecutor drives one peer through the shard protocol; it
// implements pipeline.ShardExecutor. On an unknown-trace 404 it pushes
// the job's canonical blob into the peer's corpus and retries once; any
// other failure surfaces to the distributor, which re-runs the range
// locally.
type peerExecutor struct {
	base   string
	client *http.Client
	// srv records coordinator-side spans (peer RTT per range) and
	// imports the worker's shipped spans onto the job's timeline.
	srv *Server
}

func newPeerExecutor(base string, timeout time.Duration, srv *Server) *peerExecutor {
	return &peerExecutor{
		base:   base,
		client: &http.Client{Timeout: timeout},
		srv:    srv,
	}
}

func (p *peerExecutor) Name() string { return p.base }

func (p *peerExecutor) ExecuteShards(job *pipeline.ShardJob, rng pipeline.ShardRange) (_ []*ulcp.Report, err error) {
	// The shard_range span is the coordinator's view of this range: the
	// full round trip including any blob seeding, successful or not (a
	// failed range additionally gets a shard_fallback span from the
	// distributor's fallback hook).
	rangeStart := time.Now()
	defer func() {
		p.srv.span(spanCtx{trace: job.TraceID, parent: job.SpanID}, "shard_range",
			rangeStart, time.Now(), map[string]string{
				"peer":    p.base,
				"start":   strconv.Itoa(rng.Start),
				"end":     strconv.Itoa(rng.End),
				"outcome": probeOutcome(err == nil),
			})
	}()
	// Digest avoids serializing the trace when the pipeline's digest
	// memo already knows its canonical name; the bytes themselves are
	// materialized only if this peer turns out to miss the blob.
	digest, err := job.Digest()
	if err != nil {
		return nil, err
	}
	resp, err := p.post(digest, job, rng)
	if errors.Is(err, corpus.ErrNotFound) {
		// The peer has never seen this trace: seed its corpus and retry.
		var data []byte
		if _, data, err = job.Blob(); err != nil {
			return nil, err
		}
		remote := &corpus.Remote{
			Base: p.base, Client: p.client,
			TraceID: job.TraceID, SpanID: job.SpanID,
		}
		if _, err = remote.Push(data); err != nil {
			return nil, fmt.Errorf("seed %s: %w", p.base, err)
		}
		resp, err = p.post(digest, job, rng)
	}
	if err != nil {
		return nil, err
	}
	if resp.Groups != len(job.Groups) || resp.Start != rng.Start || resp.End != rng.End {
		return nil, fmt.Errorf("peer %s decomposed %d groups for range [%d,%d), want %d for [%d,%d)",
			p.base, resp.Groups, resp.Start, resp.End, len(job.Groups), rng.Start, rng.End)
	}
	byID := job.CSIndex()
	reports := make([]*ulcp.Report, len(resp.Reports))
	for i, wr := range resp.Reports {
		if wr == nil {
			return nil, fmt.Errorf("peer %s: null report at index %d", p.base, i)
		}
		if reports[i], err = wr.Rehydrate(byID); err != nil {
			return nil, fmt.Errorf("peer %s: %w", p.base, err)
		}
	}
	return reports, nil
}

func (p *peerExecutor) post(digest string, job *pipeline.ShardJob, rng pipeline.ShardRange) (*shardResponse, error) {
	body, err := json.Marshal(&shardRequest{
		Trace: digest,
		Start: rng.Start,
		End:   rng.End,
		Opts:  job.Opts,
		Table: job.Table,
	})
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, p.base+"/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if job.TraceID != "" {
		httpReq.Header.Set(telemetry.TraceHeader, job.TraceID)
		httpReq.Header.Set(telemetry.SpanHeader, job.SpanID)
	}
	httpResp, err := p.client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("post shards to %s: %w", p.base, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		// corpus.RemoteError maps the daemon's JSON error body onto the
		// local sentinels; a 404 comes back errors.Is(ErrNotFound), the
		// cue to push the blob and retry.
		return nil, corpus.RemoteError("shards on "+p.base, httpResp)
	}
	var resp shardResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("peer %s: decode shard response: %w", p.base, err)
	}
	if len(resp.Reports) != rng.End-rng.Start {
		return nil, fmt.Errorf("peer %s: %d reports for %d groups", p.base, len(resp.Reports), rng.End-rng.Start)
	}
	// Adopt the worker's spans onto the coordinator's copy of the
	// timeline (they carry the worker's node name).
	for _, sp := range resp.Spans {
		p.srv.recordSpan(spanCtx{trace: job.TraceID}, sp)
	}
	return &resp, nil
}
