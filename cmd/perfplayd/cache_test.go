package main

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"slices"
	"strings"
	"testing"
	"time"

	"perfplay/internal/corpus"
	"perfplay/internal/pipeline"
	"perfplay/internal/scheduler"
	"perfplay/internal/trace"
)

// digestSpec is the analyze body for a stored-trace job with schemes.
func digestSpec(digest string) string {
	return fmt.Sprintf(`{"trace":%q,"schemes":true}`, digest)
}

// digestRequestLike mirrors handleAnalyze's digest path just enough to
// derive the cache keys a submitted job will use.
func digestRequestLike(digest string, schemes bool) pipeline.Request {
	return pipeline.Request{
		TraceLoader: func() (*trace.Trace, error) { return nil, nil },
		TraceDigest: digest,
		Schemes:     schemes,
	}
}

// TestPeerCacheHitOnColdNode is the tentpole acceptance test: a repeat
// job over a stored trace submitted to a *cold* node settles via a peer
// cache hit — zero replays, zero parses, not even a pipeline run — with
// report bytes identical to the warm node's (and therefore to a serial
// single-node run, which the pipeline goldens pin).
func TestPeerCacheHitOnColdNode(t *testing.T) {
	warmSrv, warm := testServer(t, Config{})
	payload := recordedPayload(t, 3)
	meta, _, err := warmSrv.corpus.Put(payload, false)
	if err != nil {
		t.Fatal(err)
	}
	want := runJobReport(t, warm.URL, digestSpec(meta.Digest))

	coldSrv, cold := testServer(t, Config{Peers: []string{warm.URL}})
	if _, _, err := coldSrv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, cold.URL+"/analyze", digestSpec(meta.Digest))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, cold.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("job failed on the cold node: %v", j["error"])
	}
	if report, _ := j["report"].(string); report != want {
		t.Fatalf("peer-cache report differs:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if j["cache_hit"] != true || j["cache_peer"] != warm.URL {
		t.Fatalf("job not settled by the warm peer: cache_hit=%v cache_peer=%v",
			j["cache_hit"], j["cache_peer"])
	}
	// Zero replays: the cold node's pipeline never even ran — its own
	// result cache is empty and it recorded no hits or misses.
	if n := coldSrv.pl.CacheLen(); n != 0 {
		t.Fatalf("cold node cached %d local results, want 0 (no local run)", n)
	}
	if st := coldSrv.pl.Stats(); st != (pipeline.CacheStats{}) {
		t.Fatalf("cold node's pipeline ran: stats %+v", st)
	}
	if got := coldSrv.cacheStats.remoteHits.Int(); got != 1 {
		t.Fatalf("remote hits = %d, want 1", got)
	}
	if got := warmSrv.cacheStats.servedResults.Int(); got != 1 {
		t.Fatalf("warm node served %d results, want 1", got)
	}

	// The healthz cache section surfaces the exchange on both sides.
	h := decode[map[string]any](t, mustGet(t, cold.URL+"/healthz"))
	cluster, _ := h["cache"].(map[string]any)["cluster"].(map[string]any)
	if cluster["remote_hits"] != float64(1) {
		t.Fatalf("cold healthz cluster cache stats = %v", cluster)
	}
}

// TestPeerTableImport: when the result keys differ (different reporting
// flags) but the trace and identify options match, the cold node
// imports the warm node's verdict table and classifies locally with
// zero replay-table builds — still byte-identical to a standalone run.
func TestPeerTableImport(t *testing.T) {
	warmSrv, warm := testServer(t, Config{})
	payload := recordedPayload(t, 3)
	meta, _, err := warmSrv.corpus.Put(payload, false)
	if err != nil {
		t.Fatal(err)
	}
	// Warm with schemes=false: its result key will not match the cold
	// node's schemes=true job, but the verdict-table key will.
	runJobReport(t, warm.URL, fmt.Sprintf(`{"trace":%q}`, meta.Digest))

	refSrv, ref := testServer(t, Config{})
	if _, _, err := refSrv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	want := runJobReport(t, ref.URL, digestSpec(meta.Digest))

	coldSrv, cold := testServer(t, Config{Peers: []string{warm.URL}})
	if _, _, err := coldSrv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	report := runJobReport(t, cold.URL, digestSpec(meta.Digest))
	if report != want {
		t.Fatalf("table-import report differs:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if got := coldSrv.cacheStats.remoteHits.Int(); got != 0 {
		t.Fatalf("remote result hits = %d, want 0 (keys differ)", got)
	}
	if got := coldSrv.cacheStats.tableImports.Int(); got != 1 {
		t.Fatalf("table imports = %d, want 1", got)
	}
	if st := coldSrv.pl.Stats(); st.TableHits != 1 {
		t.Fatalf("cold node rebuilt the table: stats %+v", st)
	}
	if got := warmSrv.cacheStats.servedTables.Int(); got != 1 {
		t.Fatalf("warm node served %d tables, want 1", got)
	}
}

// TestCacheEndpoints drives the export routes directly: escaped keys
// resolve, hits validate and carry the job's exact report bytes, and
// misses are 404s.
func TestCacheEndpoints(t *testing.T) {
	srv, ts := testServer(t, Config{})
	payload := recordedPayload(t, 3)
	meta, _, err := srv.corpus.Put(payload, false)
	if err != nil {
		t.Fatal(err)
	}
	want := runJobReport(t, ts.URL, digestSpec(meta.Digest))

	key, ok := srv.pl.CacheKeyFor(digestRequestLike(meta.Digest, true))
	if !ok {
		t.Fatal("no cache key for the digest request")
	}
	resp := mustGet(t, ts.URL+"/cache/results/"+url.PathEscape(key)+"?top=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache result: status %d", resp.StatusCode)
	}
	wr := decode[pipeline.WireResult](t, resp)
	if err := wr.Validate(key, 5); err != nil {
		t.Fatal(err)
	}
	if wr.Report != want {
		t.Fatalf("exported report differs from the job's:\nwant:\n%s\ngot:\n%s", want, wr.Report)
	}

	tkey, ok := srv.pl.TableKeyFor(digestRequestLike(meta.Digest, true))
	if !ok {
		t.Fatal("no table key for the digest request")
	}
	tresp := mustGet(t, ts.URL+"/cache/tables/"+url.PathEscape(tkey))
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("cache table: status %d", tresp.StatusCode)
	}
	wt := decode[pipeline.WireTable](t, tresp)
	if err := wt.Validate(tkey); err != nil {
		t.Fatalf("exported table invalid: %v", err)
	}

	for _, path := range []string{
		"/cache/results/" + url.PathEscape("no|such|key"),
		"/cache/tables/" + url.PathEscape("no|such|key"),
	} {
		miss := mustGet(t, ts.URL+path)
		miss.Body.Close()
		if miss.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, miss.StatusCode)
		}
	}
}

// TestAdmissionRedirectLandsOnIdlestPeer is the steal-aware admission
// acceptance test: a full node's 503 carries a Retry-Peer naming the
// idlest peer — skipping a peer that is itself full — the client
// follows it, and the redirected job completes byte-identical to the
// committed golden.
func TestAdmissionRedirectLandsOnIdlestPeer(t *testing.T) {
	// fullPeer: queue of one, occupied, no workers — would 503 too.
	_, fullPeerTS := saturatedVictim(t, Config{QueueDepth: 1})
	occupy := postJSON(t, fullPeerTS.URL+"/analyze", goldenSpecs[0].spec)
	occupy.Body.Close()
	if occupy.StatusCode != http.StatusAccepted {
		t.Fatalf("occupy full peer: status %d", occupy.StatusCode)
	}

	// idlePeer: a normal running daemon.
	_, idlePeerTS := testServer(t, Config{})

	// The submitted node: full, with the full peer listed FIRST — the
	// redirect must still pick the idle one.
	subSrv, subTS := saturatedVictim(t, Config{QueueDepth: 1, Peers: []string{fullPeerTS.URL, idlePeerTS.URL}})
	first := postJSON(t, subTS.URL+"/analyze", goldenSpecs[0].spec)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("occupy submitted node: status %d", first.StatusCode)
	}

	remote := &corpus.Remote{Base: subTS.URL}
	id, accepted, err := remote.SubmitAnalyze([]byte(goldenSpecs[0].spec))
	if err != nil {
		t.Fatalf("redirected submit failed: %v", err)
	}
	if accepted != idlePeerTS.URL {
		t.Fatalf("job accepted at %s, want the idle peer %s", accepted, idlePeerTS.URL)
	}
	if got := subSrv.cacheStats.admissionRedirects.Int(); got != 1 {
		t.Fatalf("admission redirects = %d, want 1", got)
	}
	j := waitDone(t, accepted, id)
	if j["status"] != statusDone {
		t.Fatalf("redirected job failed: %v", j["error"])
	}
	if report, want := j["report"].(string), goldenReport(t, goldenSpecs[0].name); report != want {
		t.Fatalf("redirected report differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
	}
}

// TestRetryPeerLoopBound (chaos): two mutually-full nodes whose stale
// gossip claims the other is idle bounce a submit exactly once each —
// the client's visited set breaks the loop with an error instead of
// ping-ponging forever — and the backlogged jobs still complete locally
// with golden-identical output once capacity frees.
func TestRetryPeerLoopBound(t *testing.T) {
	aSrv, aTS := saturatedVictim(t, Config{QueueDepth: 1})
	bSrv, bTS := saturatedVictim(t, Config{QueueDepth: 1})
	aSrv.cfg.Peers = []string{bTS.URL}
	bSrv.cfg.Peers = []string{aTS.URL}

	// Occupy both queues, then poison both gossip views with stale
	// "peer is idle" observations.
	subA := decode[map[string]string](t, postJSON(t, aTS.URL+"/analyze", goldenSpecs[0].spec))
	subB := decode[map[string]string](t, postJSON(t, bTS.URL+"/analyze", goldenSpecs[0].spec))
	aSrv.gossip.Record(bTS.URL, scheduler.PeerStatus{QueueLen: 0, QueueCap: 1})
	bSrv.gossip.Record(aTS.URL, scheduler.PeerStatus{QueueLen: 0, QueueCap: 1})

	remote := &corpus.Remote{Base: aTS.URL}
	start := time.Now()
	_, _, err := remote.SubmitAnalyze([]byte(goldenSpecs[0].spec))
	if err == nil {
		t.Fatal("submit into a mutually-full cluster succeeded")
	}
	if !strings.Contains(err.Error(), "Retry-Peer loop") {
		t.Fatalf("err = %v, want a Retry-Peer loop diagnosis", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("loop bound took %v — did the client ping-pong?", elapsed)
	}
	if a, b := aSrv.cacheStats.admissionRedirects.Int(), bSrv.cacheStats.admissionRedirects.Int(); a != 1 || b != 1 {
		t.Fatalf("redirects a=%d b=%d, want 1 each", a, b)
	}

	// Degrade to local execution: arm the workers and both backlogged
	// jobs finish with golden bytes.
	aSrv.Start()
	bSrv.Start()
	for _, probe := range []struct{ base, id string }{{aTS.URL, subA["id"]}, {bTS.URL, subB["id"]}} {
		j := waitDone(t, probe.base, probe.id)
		if j["status"] != statusDone {
			t.Fatalf("backlogged job failed: %v", j["error"])
		}
		if report, want := j["report"].(string), goldenReport(t, goldenSpecs[0].name); report != want {
			t.Fatalf("post-loop local report differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
		}
	}
}

// abortCacheProbes severs the connection on every /cache/ request — the
// peer "dies mid cache-probe".
type abortCacheProbes struct{}

func (abortCacheProbes) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/cache/") {
		panic(http.ErrAbortHandler)
	}
	http.NotFound(w, r)
}

// TestCacheProbePeerDiesDegradesLocal (chaos): one peer is down before
// the probe (connection refused), the other dies mid-probe (connection
// severed). The job must degrade to local execution with output
// byte-identical to a standalone node — a cache probe can only ever
// save work, never change or lose a result.
func TestCacheProbePeerDiesDegradesLocal(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	aborting := httptest.NewServer(abortCacheProbes{})
	t.Cleanup(aborting.Close)

	payload := recordedPayload(t, 3)
	digest := corpus.Digest(payload)
	refSrv, ref := testServer(t, Config{})
	if _, _, err := refSrv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	want := runJobReport(t, ref.URL, digestSpec(digest))

	srv, ts := testServer(t, Config{
		Peers:             []string{deadURL, aborting.URL},
		CacheProbeTimeout: 500 * time.Millisecond,
	})
	if _, _, err := srv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/analyze", digestSpec(digest))
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("job failed with dying peers: %v", j["error"])
	}
	if report, _ := j["report"].(string); report != want {
		t.Fatalf("report with dying peers differs:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if j["cache_peer"] != nil {
		t.Fatalf("cache_peer = %v, want empty (local execution)", j["cache_peer"])
	}
	if probes, hits := srv.cacheStats.probes.Int(), srv.cacheStats.remoteHits.Int(); probes != 2 || hits != 0 {
		t.Fatalf("probes=%d hits=%d, want 2 probes / 0 hits", probes, hits)
	}
}

// TestStaleCacheHintFallsBack (chaos): gossip advertises a key the peer
// has since evicted (here: never computed — the same 404). The prober
// must treat the stale hint as an ordinary miss and run locally with
// identical output.
func TestStaleCacheHintFallsBack(t *testing.T) {
	_, empty := testServer(t, Config{})

	payload := recordedPayload(t, 3)
	refSrv, ref := testServer(t, Config{})
	if _, _, err := refSrv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	digest := corpus.Digest(payload)
	want := runJobReport(t, ref.URL, digestSpec(digest))

	srv, ts := testServer(t, Config{Peers: []string{empty.URL}})
	if _, _, err := srv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	key, ok := srv.pl.CacheKeyFor(digestRequestLike(digest, true))
	if !ok {
		t.Fatal("no cache key")
	}
	// Stale gossip: the peer once advertised this key (then evicted it).
	srv.gossip.Record(empty.URL, scheduler.PeerStatus{QueueLen: 0, QueueCap: 64, CacheKeys: []string{key}})

	report := runJobReport(t, ts.URL, digestSpec(digest))
	if report != want {
		t.Fatalf("stale-hint report differs:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if probes, hits := srv.cacheStats.probes.Int(), srv.cacheStats.remoteHits.Int(); probes < 1 || hits != 0 {
		t.Fatalf("probes=%d hits=%d, want ≥1 probes / 0 hits", probes, hits)
	}
}

// TestAdmissionRedirectRecoversAfterFailedProbes: a gossip view
// holding only stale probe failures (peers rebooted, say) must not
// suppress the on-demand fallback — the next queue-full submit
// re-probes and redirects to the recovered peer.
func TestAdmissionRedirectRecoversAfterFailedProbes(t *testing.T) {
	_, idleTS := testServer(t, Config{})
	srv, ts := saturatedVictim(t, Config{QueueDepth: 1, Peers: []string{idleTS.URL}})
	first := postJSON(t, ts.URL+"/analyze", goldenSpecs[0].spec)
	first.Body.Close()
	srv.gossip.RecordErr(idleTS.URL, errors.New("connection refused"))

	resp := postJSON(t, ts.URL+"/analyze", goldenSpecs[0].spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if rp := resp.Header.Get("Retry-Peer"); rp != idleTS.URL {
		t.Fatalf("Retry-Peer = %q, want the recovered peer %s", rp, idleTS.URL)
	}
}

// TestCacheProbeOrderRanking pins the gossip-ordered fan-out: peers
// hinting the key first, then healthy peers by queue depth; peers
// whose last probe failed rank with the unseen (their counts are
// stale) no matter how idle they once looked.
func TestCacheProbeOrderRanking(t *testing.T) {
	peers := []string{"http://failed", "http://busy", "http://hinted", "http://unseen"}
	srv, _ := testServer(t, Config{Peers: peers, CacheProbeFanout: 4})
	srv.gossip.Record("http://failed", scheduler.PeerStatus{QueueLen: 0, QueueCap: 64})
	srv.gossip.RecordErr("http://failed", errors.New("connection refused"))
	srv.gossip.Record("http://busy", scheduler.PeerStatus{QueueLen: 5, QueueCap: 64})
	srv.gossip.Record("http://hinted", scheduler.PeerStatus{QueueLen: 9, QueueCap: 64, CacheKeys: []string{"K"}})

	hints := func(key string) func(scheduler.PeerStatus) bool {
		return func(st scheduler.PeerStatus) bool { return st.HintsKey(key) }
	}
	got := srv.cacheProbeOrder(hints("K"))
	want := []string{"http://hinted", "http://busy", "http://failed", "http://unseen"}
	if !slices.Equal(got, want) {
		t.Fatalf("probe order = %v, want %v", got, want)
	}
	// Without the hint, depth decides among the healthy.
	got = srv.cacheProbeOrder(hints("other-key"))
	if got[0] != "http://busy" {
		t.Fatalf("unhinted order = %v, want the healthy peer first", got)
	}
}

// TestQueueFullWithoutViablePeerOmitsRetryPeer: when every peer is
// known-full (honest gossip this time), the 503 must NOT name a
// redirect target — bouncing a submitter into another full queue helps
// no one.
func TestQueueFullWithoutViablePeerOmitsRetryPeer(t *testing.T) {
	_, peerTS := saturatedVictim(t, Config{QueueDepth: 1})
	occupy := postJSON(t, peerTS.URL+"/analyze", goldenSpecs[0].spec)
	occupy.Body.Close()

	srv, ts := saturatedVictim(t, Config{QueueDepth: 1, Peers: []string{peerTS.URL}})
	first := postJSON(t, ts.URL+"/analyze", goldenSpecs[0].spec)
	first.Body.Close()
	srv.gossip.Record(peerTS.URL, scheduler.PeerStatus{QueueLen: 1, QueueCap: 1})

	resp := postJSON(t, ts.URL+"/analyze", goldenSpecs[0].spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if rp := resp.Header.Get("Retry-Peer"); rp != "" {
		t.Fatalf("Retry-Peer = %q pointing at a known-full peer", rp)
	}
}
