package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perfplay/internal/clusterapi"
	"perfplay/internal/corpus"
	"perfplay/internal/sim"
	"perfplay/internal/workload"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CorpusDir == "" {
		cfg.CorpusDir = t.TempDir()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// apiError decodes an error-envelope response body and returns the
// typed error, so tests assert machine-readable codes instead of
// grepping message prose.
func apiError(t *testing.T, resp *http.Response) clusterapi.APIError {
	t.Helper()
	return decode[clusterapi.Envelope](t, resp).Err
}

// waitDone polls GET /jobs/{id} until the job leaves the queue.
func waitDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decode[map[string]any](t, resp)
		switch j["status"] {
		case statusDone, statusFailed:
			return j
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

func TestAnalyzeWorkloadSpec(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp := postJSON(t, ts.URL+"/analyze",
		`{"app":"mysql","threads":4,"scale":0.2,"seed":7,"schemes":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	if sub["id"] == "" || sub["status"] != statusQueued {
		t.Fatalf("submit response: %v", sub)
	}

	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("job failed: %v", j["error"])
	}
	report, _ := j["report"].(string)
	if !strings.Contains(report, "PerfPlay analysis of mysql") {
		t.Fatalf("report = %q", report)
	}
	if j["app"] != "mysql" {
		t.Fatalf("app = %v", j["app"])
	}
	schemes, _ := j["schemes"].(map[string]any)
	if len(schemes) != 4 {
		t.Fatalf("schemes = %v", schemes)
	}

	// The identical spec resubmitted must be served from the LRU cache.
	resp = postJSON(t, ts.URL+"/analyze",
		`{"app":"mysql","threads":4,"scale":0.2,"seed":7,"schemes":true}`)
	sub = decode[map[string]string](t, resp)
	j2 := waitDone(t, ts.URL, sub["id"])
	if j2["cache_hit"] != true {
		t.Fatalf("resubmission missed the cache: %v", j2["cache_hit"])
	}
	if j2["report"] != report {
		t.Fatal("cached report differs")
	}
}

func TestAnalyzeTraceUpload(t *testing.T) {
	_, ts := testServer(t, Config{})

	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 3}), sim.Config{Seed: 3})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/analyze?schemes=true", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("upload job failed: %v", j["error"])
	}
	report, _ := j["report"].(string)
	if !strings.Contains(report, "pbzip2") {
		t.Fatalf("report = %q", report)
	}
	// The scheme section's baseline must be the recording's own wall
	// time from the trace header, not an ELSC re-replay total.
	wantrecorded := fmt.Sprintf("scheme replays (recorded %v)", rec.Trace.TotalTime)
	if !strings.Contains(report, wantrecorded) {
		t.Fatalf("report lacks %q:\n%s", wantrecorded, report)
	}
}

// TestAnalyzeJSONTraceUpload: a JSON-encoded trace posted with
// Content-Type: application/json must be recognized as a trace (it
// carries an "events" array), not misparsed as a workload spec that
// would silently re-record a fresh run.
func TestAnalyzeJSONTraceUpload(t *testing.T) {
	_, ts := testServer(t, Config{})

	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 3}), sim.Config{Seed: 3})
	var buf bytes.Buffer
	if err := rec.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/analyze", buf.String())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("json trace job failed: %v", j["error"])
	}
	// An analyzed upload reports the trace's own event count; a
	// misrouted spec job would have re-recorded and shown a seed field.
	if got := j["critical_sections"].(float64); int(got) != len(rec.Trace.ExtractCS()) {
		t.Fatalf("critical_sections = %v, want %d (trace was re-recorded, not analyzed?)",
			got, len(rec.Trace.ExtractCS()))
	}
}

// TestAnalyzeSpecWrongContentType: a spec body sent without the JSON
// content type (curl -d default) decodes as a zero-event trace and must
// be rejected loudly, not analyzed into an all-zero report.
func TestAnalyzeSpecWrongContentType(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Post(ts.URL+"/analyze", "application/x-www-form-urlencoded",
		strings.NewReader(`{"app":"mysql","scale":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if e := apiError(t, resp); e.Code != clusterapi.CodeInvalidTrace || !strings.Contains(e.Message, "empty trace") {
		t.Fatalf("error = %+v, want code %q mentioning an empty trace", e, clusterapi.CodeInvalidTrace)
	}
}

// TestJobListing: GET /jobs pages retained jobs newest-first, filters
// by ?state=, bounds pages by ?limit= (with total reporting the
// pre-truncation match count), and rejects unknown states with a typed
// bad_request.
func TestJobListing(t *testing.T) {
	_, ts := testServer(t, Config{})

	var ids []string
	for _, seed := range []string{"1", "2", "3"} {
		resp := postJSON(t, ts.URL+"/analyze", `{"app":"mysql","scale":0.2,"seed":`+seed+`}`)
		sub := decode[map[string]string](t, resp)
		ids = append(ids, sub["id"])
		waitDone(t, ts.URL, sub["id"])
	}

	type jobPage struct {
		Jobs []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		} `json:"jobs"`
		Total int `json:"total"`
	}

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	page := decode[jobPage](t, resp)
	if page.Total != 3 || len(page.Jobs) != 3 {
		t.Fatalf("listing = %+v, want all 3 jobs", page)
	}
	for i, j := range page.Jobs { // newest submission first
		if want := ids[len(ids)-1-i]; j.ID != want {
			t.Fatalf("jobs[%d] = %s, want %s (newest-first)", i, j.ID, want)
		}
	}

	resp, err = http.Get(ts.URL + "/jobs?state=done&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	page = decode[jobPage](t, resp)
	if page.Total != 3 || len(page.Jobs) != 2 {
		t.Fatalf("limited listing: total %d jobs %d, want total 3 over 2 jobs", page.Total, len(page.Jobs))
	}

	resp, err = http.Get(ts.URL + "/jobs?state=queued")
	if err != nil {
		t.Fatal(err)
	}
	if page = decode[jobPage](t, resp); page.Total != 0 {
		t.Fatalf("queued listing after completion: %+v", page)
	}

	resp, err = http.Get(ts.URL + "/jobs?state=exploded")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad state: status %d, want 400", resp.StatusCode)
	}
	if e := apiError(t, resp); e.Code != clusterapi.CodeBadRequest {
		t.Fatalf("bad state error = %+v, want code %q", e, clusterapi.CodeBadRequest)
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	_, ts := testServer(t, Config{})

	for body, want := range map[string]int{
		`{"app":"no-such-app"}`:              http.StatusBadRequest,
		`{nope`:                              http.StatusBadRequest,
		`{"app":"mysql","input":"simwrong"}`: http.StatusBadRequest,
	} {
		resp := postJSON(t, ts.URL+"/analyze", body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("body %q: status %d, want %d", body, resp.StatusCode, want)
		}
	}

	resp, err := http.Post(ts.URL+"/analyze", "application/octet-stream",
		strings.NewReader("definitely not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage trace: status %d", resp.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestQueueBounded(t *testing.T) {
	// No Start(): nothing drains the depth-1 queue, so the second
	// submission must be rejected rather than buffered without bound.
	s, err := NewServer(Config{QueueDepth: 1, CorpusDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := postJSON(t, ts.URL+"/analyze", `{"app":"mysql","scale":0.2}`)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", first.StatusCode)
	}
	second := postJSON(t, ts.URL+"/analyze", `{"app":"mysql","scale":0.2}`)
	defer second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second submit: status %d, want 503", second.StatusCode)
	}
	if e := apiError(t, second); e.Code != clusterapi.CodeQueueFull {
		t.Fatalf("error = %+v, want code %q", e, clusterapi.CodeQueueFull)
	}
}

func TestQueuedTraceBytesBounded(t *testing.T) {
	// No Start(): uploads accumulate in the queue, so the aggregate
	// byte budget — not just the job count — must push back.
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 3}), sim.Config{Seed: 3})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()

	s, err := NewServer(Config{QueueDepth: 16, MaxQueuedTraceBytes: int64(len(payload)) + 1, CorpusDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first, err := http.Post(ts.URL+"/analyze", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first upload: status %d", first.StatusCode)
	}
	second, err := http.Post(ts.URL+"/analyze", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second upload: status %d, want 503", second.StatusCode)
	}
	if e := apiError(t, second); e.Code != clusterapi.CodeTraceBacklogFull {
		t.Fatalf("error = %+v, want code %q", e, clusterapi.CodeTraceBacklogFull)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	h := decode[map[string]any](t, resp)
	if h["ok"] != true {
		t.Fatalf("healthz = %v", h)
	}
}

// recordedPayload serializes a small deterministic recording.
func recordedPayload(t *testing.T, seed int64) []byte {
	t.Helper()
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: seed}), sim.Config{Seed: seed})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceCorpusLifecycle drives the full /traces surface: upload,
// idempotent re-upload (one blob, same digest), list, download
// byte-for-byte, delete, and post-delete 404s.
func TestTraceCorpusLifecycle(t *testing.T) {
	s, ts := testServer(t, Config{})
	payload := recordedPayload(t, 3)

	up, err := http.Post(ts.URL+"/traces", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if up.StatusCode != http.StatusCreated {
		t.Fatalf("first upload: status %d, want 201", up.StatusCode)
	}
	first := decode[map[string]any](t, up)
	meta, _ := first["trace"].(map[string]any)
	digest, _ := meta["digest"].(string)
	if first["created"] != true || digest != corpus.Digest(payload) {
		t.Fatalf("first upload response: %v", first)
	}

	// Uploading the same bytes again stores nothing new.
	up2, err := http.Post(ts.URL+"/traces", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if up2.StatusCode != http.StatusOK {
		t.Fatalf("re-upload: status %d, want 200", up2.StatusCode)
	}
	second := decode[map[string]any](t, up2)
	meta2, _ := second["trace"].(map[string]any)
	if second["created"] != false || meta2["digest"] != digest {
		t.Fatalf("re-upload response: %v", second)
	}
	if n := s.corpus.Len(); n != 1 {
		t.Fatalf("corpus holds %d blobs after duplicate upload, want 1", n)
	}

	list, err := http.Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	listed := decode[map[string]any](t, list)
	if traces, _ := listed["traces"].([]any); len(traces) != 1 {
		t.Fatalf("GET /traces listed %v", listed)
	}

	dl, err := http.Get(ts.URL + "/traces/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(dl.Body)
	dl.Body.Close()
	if err != nil || dl.StatusCode != http.StatusOK {
		t.Fatalf("download: status %d err %v", dl.StatusCode, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("downloaded %d bytes differ from uploaded %d", len(got), len(payload))
	}

	del, err := httpDelete(ts.URL + "/traces/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", del.StatusCode)
	}
	for _, probe := range []string{"/traces/" + digest} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s after delete: status %d", probe, resp.StatusCode)
		}
	}
}

func httpDelete(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

func httpPatch(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPatch, url, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// TestOversizedDeclaredLengthRejectedEarly: a Content-Length beyond the
// per-trace cap can never be accepted, so both upload endpoints must
// answer 413 immediately instead of reserving shared budget (and 503ing
// other clients) while the doomed body streams in.
func TestOversizedDeclaredLengthRejectedEarly(t *testing.T) {
	_, ts := testServer(t, Config{MaxTraceBytes: 1 << 10})
	oversized := make([]byte, 64<<10)
	for _, path := range []string{"/traces", "/analyze"} {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(oversized))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with oversized Content-Length: status %d, want 413", path, resp.StatusCode)
		}
	}
}

// TestTracePinEndpoint flips eviction exemption over HTTP and checks
// the store observes it.
func TestTracePinEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{})
	payload := recordedPayload(t, 3)
	up, err := http.Post(ts.URL+"/traces", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	digest := decode[map[string]any](t, up)["trace"].(map[string]any)["digest"].(string)

	for _, want := range []bool{true, false} {
		resp, err := httpPatch(fmt.Sprintf("%s/traces/%s?pin=%t", ts.URL, digest, want))
		if err != nil {
			t.Fatal(err)
		}
		body := decode[map[string]any](t, resp)
		if resp.StatusCode != http.StatusOK || body["pinned"] != want {
			t.Fatalf("pin=%t: status %d body %v", want, resp.StatusCode, body)
		}
		meta, err := s.corpus.Stat(digest)
		if err != nil || meta.Pinned != want {
			t.Fatalf("store pinned=%v after pin=%t (err %v)", meta.Pinned, want, err)
		}
	}

	bad, err := httpPatch(ts.URL + "/traces/" + digest + "?pin=maybe")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("pin=maybe: status %d, want 400", bad.StatusCode)
	}
	missing, err := httpPatch(ts.URL + "/traces/" + corpus.Digest([]byte("nope")) + "?pin=true")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("pin missing digest: status %d, want 404", missing.StatusCode)
	}
}

// TestAnalyzeByDigest: a job referencing a stored trace by digest runs
// without re-uploading, and a second job over the same stored trace is
// served from the pipeline's digest-keyed result cache.
func TestAnalyzeByDigest(t *testing.T) {
	s, ts := testServer(t, Config{})
	payload := recordedPayload(t, 3)

	up, err := http.Post(ts.URL+"/traces", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	uploaded := decode[map[string]any](t, up)
	digest := uploaded["trace"].(map[string]any)["digest"].(string)

	submit := fmt.Sprintf(`{"trace":%q,"schemes":true}`, digest)
	resp := postJSON(t, ts.URL+"/analyze", submit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("analyze by digest: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("digest job failed: %v", j["error"])
	}
	if j["cache_hit"] == true {
		t.Fatal("first digest job claims a cache hit")
	}
	if j["trace_digest"] != digest {
		t.Fatalf("job trace_digest = %v", j["trace_digest"])
	}
	report, _ := j["report"].(string)
	if !strings.Contains(report, "pbzip2") {
		t.Fatalf("report = %q", report)
	}

	// Same stored trace again: one cache entry shared across jobs.
	resp = postJSON(t, ts.URL+"/analyze", submit)
	sub = decode[map[string]string](t, resp)
	j2 := waitDone(t, ts.URL, sub["id"])
	if j2["status"] != statusDone {
		t.Fatalf("second digest job failed: %v", j2["error"])
	}
	if j2["cache_hit"] != true {
		t.Fatal("second digest job missed the pipeline result cache")
	}
	if j2["report"] != report {
		t.Fatal("cached digest report differs")
	}

	// A direct upload of the identical bytes shares the same cache
	// entry — content addressing, not transport, keys the cache.
	resp2, err := http.Post(ts.URL+"/analyze?schemes=true", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	sub = decode[map[string]string](t, resp2)
	j3 := waitDone(t, ts.URL, sub["id"])
	if j3["cache_hit"] != true {
		t.Fatal("identical direct upload missed the digest-keyed cache")
	}

	if n := s.pl.CacheLen(); n != 1 {
		t.Fatalf("pipeline cache holds %d entries, want 1", n)
	}
}

func TestAnalyzeByDigestErrors(t *testing.T) {
	_, ts := testServer(t, Config{})

	missing := corpus.Digest([]byte("never stored"))
	resp := postJSON(t, ts.URL+"/analyze", fmt.Sprintf(`{"trace":%q}`, missing))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d, want 404", resp.StatusCode)
	}

	malformed := postJSON(t, ts.URL+"/analyze", `{"trace":"sha256:nope"}`)
	defer malformed.Body.Close()
	if malformed.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed digest: status %d, want 400", malformed.StatusCode)
	}
}

// TestCorpusDisabled: a daemon started without a corpus directory keeps
// the analyze endpoints but 503s every corpus-backed request.
func TestCorpusDisabled(t *testing.T) {
	s, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/traces", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /traces without corpus: status %d, want 503", resp.StatusCode)
	}
	byDigest := postJSON(t, ts.URL+"/analyze", fmt.Sprintf(`{"trace":%q}`, corpus.Digest([]byte("x"))))
	defer byDigest.Body.Close()
	if byDigest.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("analyze by digest without corpus: status %d, want 503", byDigest.StatusCode)
	}
}

func TestJobEviction(t *testing.T) {
	s, ts := testServer(t, Config{MaxJobs: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		resp := postJSON(t, ts.URL+"/analyze", `{"app":"pbzip2","scale":0.2,"seed":`+string(rune('0'+i))+`}`)
		sub := decode[map[string]string](t, resp)
		waitDone(t, ts.URL, sub["id"])
		ids = append(ids, sub["id"])
	}
	s.mu.Lock()
	retained := len(s.order)
	s.mu.Unlock()
	if retained != 2 {
		t.Fatalf("retained %d finished jobs, want 2", retained)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job still served: status %d", resp.StatusCode)
	}
}
