package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perfplay/internal/sim"
	"perfplay/internal/workload"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitDone polls GET /jobs/{id} until the job leaves the queue.
func waitDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decode[map[string]any](t, resp)
		switch j["status"] {
		case statusDone, statusFailed:
			return j
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

func TestAnalyzeWorkloadSpec(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp := postJSON(t, ts.URL+"/analyze",
		`{"app":"mysql","threads":4,"scale":0.2,"seed":7,"schemes":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	if sub["id"] == "" || sub["status"] != statusQueued {
		t.Fatalf("submit response: %v", sub)
	}

	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("job failed: %v", j["error"])
	}
	report, _ := j["report"].(string)
	if !strings.Contains(report, "PerfPlay analysis of mysql") {
		t.Fatalf("report = %q", report)
	}
	if j["app"] != "mysql" {
		t.Fatalf("app = %v", j["app"])
	}
	schemes, _ := j["schemes"].(map[string]any)
	if len(schemes) != 4 {
		t.Fatalf("schemes = %v", schemes)
	}

	// The identical spec resubmitted must be served from the LRU cache.
	resp = postJSON(t, ts.URL+"/analyze",
		`{"app":"mysql","threads":4,"scale":0.2,"seed":7,"schemes":true}`)
	sub = decode[map[string]string](t, resp)
	j2 := waitDone(t, ts.URL, sub["id"])
	if j2["cache_hit"] != true {
		t.Fatalf("resubmission missed the cache: %v", j2["cache_hit"])
	}
	if j2["report"] != report {
		t.Fatal("cached report differs")
	}
}

func TestAnalyzeTraceUpload(t *testing.T) {
	_, ts := testServer(t, Config{})

	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 3}), sim.Config{Seed: 3})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/analyze?schemes=true", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("upload job failed: %v", j["error"])
	}
	report, _ := j["report"].(string)
	if !strings.Contains(report, "pbzip2") {
		t.Fatalf("report = %q", report)
	}
	// The scheme section's baseline must be the recording's own wall
	// time from the trace header, not an ELSC re-replay total.
	wantrecorded := fmt.Sprintf("scheme replays (recorded %v)", rec.Trace.TotalTime)
	if !strings.Contains(report, wantrecorded) {
		t.Fatalf("report lacks %q:\n%s", wantrecorded, report)
	}
}

// TestAnalyzeJSONTraceUpload: a JSON-encoded trace posted with
// Content-Type: application/json must be recognized as a trace (it
// carries an "events" array), not misparsed as a workload spec that
// would silently re-record a fresh run.
func TestAnalyzeJSONTraceUpload(t *testing.T) {
	_, ts := testServer(t, Config{})

	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 3}), sim.Config{Seed: 3})
	var buf bytes.Buffer
	if err := rec.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/analyze", buf.String())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("json trace job failed: %v", j["error"])
	}
	// An analyzed upload reports the trace's own event count; a
	// misrouted spec job would have re-recorded and shown a seed field.
	if got := j["critical_sections"].(float64); int(got) != len(rec.Trace.ExtractCS()) {
		t.Fatalf("critical_sections = %v, want %d (trace was re-recorded, not analyzed?)",
			got, len(rec.Trace.ExtractCS()))
	}
}

// TestAnalyzeSpecWrongContentType: a spec body sent without the JSON
// content type (curl -d default) decodes as a zero-event trace and must
// be rejected loudly, not analyzed into an all-zero report.
func TestAnalyzeSpecWrongContentType(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Post(ts.URL+"/analyze", "application/x-www-form-urlencoded",
		strings.NewReader(`{"app":"mysql","scale":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if errBody := decode[map[string]string](t, resp); !strings.Contains(errBody["error"], "empty trace") {
		t.Fatalf("error = %q", errBody["error"])
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	_, ts := testServer(t, Config{})

	for body, want := range map[string]int{
		`{"app":"no-such-app"}`:              http.StatusBadRequest,
		`{nope`:                              http.StatusBadRequest,
		`{"app":"mysql","input":"simwrong"}`: http.StatusBadRequest,
	} {
		resp := postJSON(t, ts.URL+"/analyze", body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("body %q: status %d, want %d", body, resp.StatusCode, want)
		}
	}

	resp, err := http.Post(ts.URL+"/analyze", "application/octet-stream",
		strings.NewReader("definitely not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage trace: status %d", resp.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestQueueBounded(t *testing.T) {
	// No Start(): nothing drains the depth-1 queue, so the second
	// submission must be rejected rather than buffered without bound.
	s := NewServer(Config{QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := postJSON(t, ts.URL+"/analyze", `{"app":"mysql","scale":0.2}`)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", first.StatusCode)
	}
	second := postJSON(t, ts.URL+"/analyze", `{"app":"mysql","scale":0.2}`)
	defer second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second submit: status %d, want 503", second.StatusCode)
	}
	errBody := decode[map[string]string](t, second)
	if !strings.Contains(errBody["error"], "queue full") {
		t.Fatalf("error = %q", errBody["error"])
	}
}

func TestQueuedTraceBytesBounded(t *testing.T) {
	// No Start(): uploads accumulate in the queue, so the aggregate
	// byte budget — not just the job count — must push back.
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 3}), sim.Config{Seed: 3})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()

	s := NewServer(Config{QueueDepth: 16, MaxQueuedTraceBytes: int64(len(payload)) + 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first, err := http.Post(ts.URL+"/analyze", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first upload: status %d", first.StatusCode)
	}
	second, err := http.Post(ts.URL+"/analyze", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second upload: status %d, want 503", second.StatusCode)
	}
	if errBody := decode[map[string]string](t, second); !strings.Contains(errBody["error"], "trace backlog full") {
		t.Fatalf("error = %q", errBody["error"])
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	h := decode[map[string]any](t, resp)
	if h["ok"] != true {
		t.Fatalf("healthz = %v", h)
	}
}

func TestJobEviction(t *testing.T) {
	s, ts := testServer(t, Config{MaxJobs: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		resp := postJSON(t, ts.URL+"/analyze", `{"app":"pbzip2","scale":0.2,"seed":`+string(rune('0'+i))+`}`)
		sub := decode[map[string]string](t, resp)
		waitDone(t, ts.URL, sub["id"])
		ids = append(ids, sub["id"])
	}
	s.mu.Lock()
	retained := len(s.order)
	s.mu.Unlock()
	if retained != 2 {
		t.Fatalf("retained %d finished jobs, want 2", retained)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job still served: status %d", resp.StatusCode)
	}
}
