package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"perfplay/internal/journal"
	"perfplay/internal/pipeline"
	"perfplay/internal/scheduler"
	"perfplay/internal/telemetry"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// This file is the daemon half of crash durability (the log itself
// lives in internal/journal): every queue transition is appended to the
// journal synchronously — the scheduler.Queue calls Transition under
// its own lock, so record order always matches queue order — and a
// restarted daemon replays the journal in NewServer, before any worker
// starts, to resurrect the previous process's backlog:
//
//   - jobs that were queued re-enter the queue in their original admit
//     order, so the recovered backlog runs in the order clients
//     submitted it;
//   - jobs that were out on a steal lease are requeued at the FRONT,
//     exactly the expired-lease semantics — the thief is gone (or will
//     be told 409 when it reports against the restarted node);
//   - upload-only jobs (trace lived solely in the dead process's
//     memory) are unrecoverable and surface as failed with a clear
//     error instead of vanishing.
//
// Determinism makes recovery safe: a re-run job produces the
// byte-identical report the lost run would have.

// Meta keys an admitted record carries so the restarted daemon can
// rebuild the client-visible job, not just the pipeline request.
const (
	jmetaTraceID   = "trace_id"
	jmetaSubmitted = "submitted" // RFC3339Nano
	jmetaSeed      = "seed"
	jmetaDigest    = "trace_digest"
)

// recoveredStats counts one boot's journal recovery, for /healthz.
type recoveredStats struct {
	// Requeued jobs were queued at crash time and re-entered the queue.
	Requeued int `json:"requeued"`
	// Released jobs were out on a steal lease and were requeued at the
	// front, like any expired lease.
	Released int `json:"released"`
	// Lost jobs could not be recovered (memory-only uploads, traces
	// since evicted from the corpus); they surface as failed.
	Lost int `json:"lost"`
}

// Transition implements scheduler.TransitionLog: the queue reports
// every state change and the journal makes it durable before the queue
// operation returns. Append errors are logged, not propagated — a full
// disk must degrade durability, not take down job admission.
func (s *Server) Transition(op string, qj *scheduler.Job, thief string) {
	if s.journal == nil {
		return
	}
	rec := journal.Record{Op: op, Job: qj.ID, Thief: thief}
	if op == scheduler.TransitionAdmitted {
		rec.Spec, _ = json.Marshal(qj.Spec)
		if j, ok := qj.Payload.(*job); ok {
			rec.Meta = map[string]string{
				jmetaTraceID:   j.TraceID,
				jmetaSubmitted: j.Submitted.UTC().Format(time.RFC3339Nano),
			}
			if j.Seed != 0 {
				rec.Meta[jmetaSeed] = strconv.FormatInt(j.Seed, 10)
			}
			if j.TraceDigest != "" {
				rec.Meta[jmetaDigest] = j.TraceDigest
			}
		}
	}
	s.appendJournal(rec)
}

// journalTerminal records a job's terminal transition reached outside
// the queue (local completion, failure, eviction) — the queue only sees
// admission, claims and requeues; the owner sees the end.
func (s *Server) journalTerminal(op, id string) {
	if s.journal == nil {
		return
	}
	s.appendJournal(journal.Record{Op: op, Job: id})
}

func (s *Server) appendJournal(rec journal.Record) {
	if err := s.journal.Append(rec); err != nil {
		s.logger.Error("journal append failed; durability degraded",
			"op", rec.Op, "job", rec.Job, "err", err)
	}
}

// openJournal opens (replaying) the journal and resurrects the
// previous process's backlog. Called from NewServer before Start, so
// recovered jobs are queued before any worker can pop.
func (s *Server) openJournal(cfg Config) error {
	jr, err := journal.Open(cfg.JournalDir, journal.Options{Metrics: s.metrics})
	if err != nil {
		return err
	}
	s.journal = jr
	s.jrecovered = s.metrics.NewCounterVec("perfplay_journal_recovered_jobs_total",
		"Jobs recovered from the journal at boot, by outcome (requeued, released, lost).",
		"outcome")
	// The queue journals through the server from here on; the replayed
	// live jobs below re-admit themselves through the same path, which
	// keeps the journal's view identical to the queue's.
	s.queue.Journal = s

	live := jr.Live()
	if st := jr.Stats(); st.TruncatedTail {
		s.logger.Warn("journal had a torn final record (crash mid-append); tail truncated",
			"dir", cfg.JournalDir)
	}
	var claimed []*scheduler.Job
	for _, lj := range live {
		var spec scheduler.Spec
		if len(lj.Spec) > 0 {
			if err := json.Unmarshal(lj.Spec, &spec); err != nil {
				return fmt.Errorf("journal: job %s: bad spec: %w", lj.Job, err)
			}
		}
		j := s.recoveredJob(lj)
		s.jobs[j.ID] = j
		if n, ok := jobSeq(j.ID); ok && n > s.seq {
			s.seq = n
		}
		req, err := s.requestForRecovered(spec)
		if err != nil {
			s.failRecoveredLocked(j, err)
			continue
		}
		j.req = req
		qj := &scheduler.Job{ID: j.ID, Spec: spec, Payload: j}
		if lj.Claimed {
			// Out on a steal lease when the node died: the PR 4 expired-
			// lease semantics apply verbatim — requeue at the front,
			// after the queued backlog is restored below.
			claimed = append(claimed, qj)
			continue
		}
		if !s.queue.Push(qj) {
			s.failRecoveredLocked(j, fmt.Errorf("job not recovered: queue full after restart (depth %d)", s.queue.Cap()))
			continue
		}
		s.recovered.Requeued++
		s.jrecovered.With("requeued").Inc()
	}
	if len(claimed) > 0 {
		if dropped := s.queue.Requeue(claimed); len(dropped) > 0 {
			// Unreachable in practice — the queue cannot be closed this
			// early — but never silently lose a job.
			for _, qj := range dropped {
				s.failRecoveredLocked(qj.Payload.(*job), fmt.Errorf("job not recovered: queue closed during recovery"))
			}
		} else {
			s.recovered.Released = len(claimed)
			s.jrecovered.With("released").Add(float64(len(claimed)))
		}
	}
	if len(live) > 0 {
		s.logger.Info("journal recovery: previous backlog restored",
			"dir", cfg.JournalDir, "requeued", s.recovered.Requeued,
			"released", s.recovered.Released, "lost", s.recovered.Lost)
	}
	return nil
}

// recoveredJob rebuilds the client-visible job record from a journaled
// live entry. The job keeps its original ID — clients polling GET
// /jobs/{id} across the restart just see "queued" again — and its
// original trace ID, so the distributed timeline survives too.
func (s *Server) recoveredJob(lj journal.LiveJob) *job {
	j := &job{
		ID:      lj.Job,
		Status:  statusQueued,
		changed: make(chan struct{}),
		spanID:  telemetry.NewSpanID(),
	}
	j.TraceID = lj.Meta[jmetaTraceID]
	if !telemetry.ValidTraceID(j.TraceID) {
		j.TraceID = telemetry.NewTraceID()
	}
	if ts, err := time.Parse(time.RFC3339Nano, lj.Meta[jmetaSubmitted]); err == nil {
		j.Submitted = ts
	} else {
		j.Submitted = time.Now()
	}
	if seed, err := strconv.ParseInt(lj.Meta[jmetaSeed], 10, 64); err == nil {
		j.Seed = seed
	}
	j.TraceDigest = lj.Meta[jmetaDigest]
	return j
}

// failRecoveredLocked marks an unrecoverable journaled job failed —
// visible to its client with a clear error, never silently dropped —
// and records the loss. Called from NewServer, before any concurrency;
// "Locked" in the sense that s.mu protection is not yet needed.
func (s *Server) failRecoveredLocked(j *job, err error) {
	j.Status = statusFailed
	j.Error = err.Error()
	j.Finished = time.Now()
	s.order = append(s.order, j.ID)
	s.recovered.Lost++
	s.jrecovered.With("lost").Inc()
	s.journalTerminal(journal.OpFailed, j.ID)
	s.logger.Warn("journaled job not recoverable", "job", j.ID, "err", err)
}

// requestForRecovered is requestFor without a victim: the pipeline
// request for a journaled spec, resolved purely locally. An empty
// (unstealable) spec means the trace lived only in the dead process's
// memory — unrecoverable by construction.
func (s *Server) requestForRecovered(spec scheduler.Spec) (pipeline.Request, error) {
	if !spec.Stealable() {
		return pipeline.Request{}, fmt.Errorf("job lost in restart: its uploaded trace existed only in the previous process's memory (store traces via POST /traces to survive restarts)")
	}
	req := pipeline.Request{
		TopK:        spec.TopK,
		Schemes:     spec.Schemes,
		DetectRaces: spec.Races,
		Workers:     s.cfg.PipelineWorkers,
		Distributor: s.dist,
	}
	if spec.App != "" {
		if _, ok := workload.Get(spec.App); !ok {
			return pipeline.Request{}, fmt.Errorf("job not recovered: unknown workload %q", spec.App)
		}
		req.App = spec.App
		req.Threads = spec.Threads
		req.Input = workload.InputSize(spec.Input)
		req.Scale = spec.Scale
		req.Seed = spec.Seed
		return req, nil
	}
	if s.corpus == nil {
		return pipeline.Request{}, fmt.Errorf("job not recovered: it references stored trace %s but the corpus is disabled", spec.TraceDigest)
	}
	digest := spec.TraceDigest
	meta, err := s.corpus.Touch(digest)
	if err != nil {
		return pipeline.Request{}, fmt.Errorf("job not recovered: stored trace %s: %v", digest, err)
	}
	req.TraceDigest = digest
	req.TraceBytes = meta.Size
	req.TraceLoader = func() (*trace.Trace, error) {
		tr, _, err := s.corpus.Load(digest)
		return tr, err
	}
	return req, nil
}

// jobSeq parses the numeric suffix of a "job-N" ID so recovery can
// advance the ID sequence past every recovered job — a fresh submit
// must never collide with a resurrected ID.
func jobSeq(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
