package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"perfplay/internal/telemetry"
)

// jobTrace is the GET /jobs/{id}/trace response shape.
type jobTrace struct {
	Job     string           `json:"job"`
	TraceID string           `json:"trace_id"`
	Nodes   []string         `json:"nodes"`
	Spans   []telemetry.Span `json:"spans"`
	Dropped int              `json:"dropped_spans"`
}

func (jt jobTrace) byName(name string) []telemetry.Span {
	var out []telemetry.Span
	for _, sp := range jt.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

func getTrace(t *testing.T, base, id string) jobTrace {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace: status %d", id, resp.StatusCode)
	}
	return decode[jobTrace](t, resp)
}

// TestMetricsEndpoint scrapes a live daemon after one real job and runs
// the output through the package's own strict exposition-format parser
// and naming lint — the same checks CI applies — then pins the presence
// of every metric family the observability contract promises.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := testServer(t, Config{})

	resp := postJSON(t, ts.URL+"/analyze", goldenSpecs[0].spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	if j := waitDone(t, ts.URL, sub["id"]); j["status"] != statusDone {
		t.Fatalf("job failed: %v", j["error"])
	}

	scrape, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer scrape.Body.Close()
	if ct := scrape.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	families, err := telemetry.ParseExposition(scrape.Body)
	if err != nil {
		t.Fatalf("scrape violates the text exposition format: %v", err)
	}
	if problems := telemetry.LintFamilies(families, "perfplay_"); len(problems) > 0 {
		t.Fatalf("metric naming lint: %v", problems)
	}

	byName := make(map[string]telemetry.ExpositionFamily, len(families))
	for _, f := range families {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"perfplay_pipeline_stage_duration_seconds",
		"perfplay_pipeline_cache_requests_total",
		"perfplay_scheduler_steal_probes_total",
		"perfplay_scheduler_leases_granted_total",
		"perfplay_scheduler_queue_depth",
		"perfplay_cluster_cache_probes_total",
		"perfplay_cluster_cache_hits_total",
		"perfplay_corpus_blob_bytes",
		"perfplay_corpus_evictions_total",
		"perfplay_http_request_duration_seconds",
		"perfplay_http_requests_total",
		"perfplay_jobs_completed_total",
		"perfplay_jobs_running",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("scrape is missing family %s", want)
		}
	}

	// The job that just ran must be visible: at least one stage
	// histogram sample and the per-route counters for the requests this
	// test itself made.
	if f := byName["perfplay_pipeline_stage_duration_seconds"]; len(f.Series) == 0 {
		t.Error("stage duration histogram has no series after a completed job")
	}
	var sawAnalyze, sawCompleted bool
	for _, line := range byName["perfplay_http_requests_total"].Series {
		if strings.Contains(line, `route="POST /analyze"`) && strings.Contains(line, `code="202"`) {
			sawAnalyze = true
		}
	}
	for _, line := range byName["perfplay_jobs_completed_total"].Series {
		if strings.Contains(line, `status="done"`) {
			sawCompleted = true
		}
	}
	if !sawAnalyze {
		t.Error("perfplay_http_requests_total missing the POST /analyze 202 series")
	}
	if !sawCompleted {
		t.Error(`perfplay_jobs_completed_total has no status="done" series after one job`)
	}
	if got := srv.jobsDone.With(statusDone).Int(); got != 1 {
		t.Errorf("jobs completed counter = %d, want 1", got)
	}
}

// TestJobTraceLocalJob pins the single-node span tree: a root job span
// whose children (queue_wait, execute) parent onto it, and per-stage
// spans under the execution.
func TestJobTraceLocalJob(t *testing.T) {
	_, ts := testServer(t, Config{NodeName: "solo-node"})

	resp := postJSON(t, ts.URL+"/analyze", goldenSpecs[0].spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.TraceHeader); !telemetry.ValidTraceID(got) {
		t.Fatalf("202 did not echo a valid trace ID (got %q)", got)
	}
	sub := decode[map[string]string](t, resp)
	if sub["trace_id"] == "" {
		t.Fatal("202 body has no trace_id")
	}
	if j := waitDone(t, ts.URL, sub["id"]); j["status"] != statusDone {
		t.Fatalf("job failed: %v", j["error"])
	}

	jt := getTrace(t, ts.URL, sub["id"])
	if jt.TraceID != sub["trace_id"] {
		t.Fatalf("trace endpoint reports trace %s, submit reported %s", jt.TraceID, sub["trace_id"])
	}
	roots := jt.byName("job")
	if len(roots) != 1 {
		t.Fatalf("want exactly one root job span, got %d", len(roots))
	}
	root := roots[0]
	if root.Parent != "" || root.Node != "solo-node" {
		t.Fatalf("root span = %+v", root)
	}
	for _, name := range []string{"queue_wait", "execute"} {
		spans := jt.byName(name)
		if len(spans) != 1 {
			t.Fatalf("want one %s span, got %d", name, len(spans))
		}
		if spans[0].Parent != root.ID {
			t.Fatalf("%s span parents onto %q, want root %q", name, spans[0].Parent, root.ID)
		}
	}
	exec := jt.byName("execute")[0]
	stages := 0
	for _, sp := range jt.Spans {
		if strings.HasPrefix(sp.Name, "stage:") {
			stages++
			if sp.Parent != exec.ID {
				t.Fatalf("stage span %s parents onto %q, want execute %q", sp.Name, sp.Parent, exec.ID)
			}
		}
	}
	if stages == 0 {
		t.Fatal("no stage:* spans recorded for a computed job")
	}
}

// TestJobTraceClientSuppliedID: a valid X-Perfplay-Trace header is
// adopted verbatim; garbage is replaced with a minted ID.
func TestJobTraceClientSuppliedID(t *testing.T) {
	_, ts := testServer(t, Config{})

	want := "deadbeefdeadbeefdeadbeefdeadbeef"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/analyze", strings.NewReader(goldenSpecs[0].spec))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, want)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get(telemetry.TraceHeader) != want {
		t.Fatalf("valid client trace ID not adopted: got %q", resp.Header.Get(telemetry.TraceHeader))
	}
	sub := decode[map[string]string](t, resp)
	if sub["trace_id"] != want {
		t.Fatalf("trace_id = %q, want %q", sub["trace_id"], want)
	}

	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/analyze", strings.NewReader(goldenSpecs[0].spec))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(telemetry.TraceHeader, "NOT HEX!")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	sub2 := decode[map[string]string](t, resp2)
	if sub2["trace_id"] == "NOT HEX!" || !telemetry.ValidTraceID(sub2["trace_id"]) {
		t.Fatalf("garbage trace header not replaced: %q", sub2["trace_id"])
	}
}

// TestJobTraceSpansTwoNodes is the acceptance test for distributed
// tracing: one job submitted to a saturated victim is stolen by an idle
// thief (which also probes the victim's cluster cache on the way), and
// the victim's single GET /jobs/{id}/trace afterwards shows a span tree
// covering BOTH nodes — claim and settle on the victim, execution and
// cache probe on the thief, all stitched by parent IDs.
func TestJobTraceSpansTwoNodes(t *testing.T) {
	victimSrv, victim := saturatedVictim(t, Config{NodeName: "victim-node"})
	payload := recordedPayload(t, 3)
	meta, _, err := victimSrv.corpus.Put(payload, false)
	if err != nil {
		t.Fatal(err)
	}

	thiefSrv, thiefTS := testServer(t, Config{
		NodeName:      "thief-node",
		Peers:         []string{victim.URL},
		StealInterval: 5 * time.Millisecond,
	})
	thiefSrv.StartStealer(thiefTS.URL)

	spec := `{"trace":"` + meta.Digest + `"}`
	resp := postJSON(t, victim.URL+"/analyze", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, victim.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("stolen job failed: %v", j["error"])
	}
	if j["stolen_by"] != thiefTS.URL {
		t.Fatalf("job was not stolen (stolen_by=%v)", j["stolen_by"])
	}

	jt := getTrace(t, victim.URL, sub["id"])
	nodes := strings.Join(jt.Nodes, ",")
	if !strings.Contains(nodes, "victim-node") || !strings.Contains(nodes, "thief-node") {
		t.Fatalf("trace nodes = %v, want both victim-node and thief-node", jt.Nodes)
	}

	roots := jt.byName("job")
	if len(roots) != 1 || roots[0].Node != "victim-node" {
		t.Fatalf("root job span = %+v", roots)
	}
	claims := jt.byName("steal_claim")
	if len(claims) != 1 || claims[0].Node != "victim-node" || claims[0].Parent != roots[0].ID {
		t.Fatalf("steal_claim span = %+v (root %s)", claims, roots[0].ID)
	}
	execs := jt.byName("steal_execute")
	if len(execs) != 1 || execs[0].Node != "thief-node" || execs[0].Parent != claims[0].ID {
		t.Fatalf("steal_execute span = %+v (claim %s)", execs, claims[0].ID)
	}
	// The thief's cache probe against the victim rode the same trace.
	probes := jt.byName("cache_probe")
	if len(probes) == 0 || probes[0].Node != "thief-node" || probes[0].Parent != execs[0].ID {
		t.Fatalf("cache_probe spans = %+v (exec %s)", probes, execs[0].ID)
	}
	// ...and the victim, serving that probe, recorded its side too.
	serves := jt.byName("cache_serve")
	if len(serves) == 0 || serves[0].Node != "victim-node" {
		t.Fatalf("cache_serve spans = %+v", serves)
	}
	if len(jt.byName("steal_settle")) != 1 {
		t.Fatalf("want one steal_settle span")
	}

	// The thief kept its own copy of the spans it recorded.
	if spans, _, ok := thiefSrv.traces.Get(jt.TraceID); !ok || len(spans) == 0 {
		t.Fatal("thief's local trace store is missing the stolen job's spans")
	}
}

// TestJobTraceUnknownJob: the trace endpoint 404s for unknown jobs.
func TestJobTraceUnknownJob(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/jobs/job-999/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}
