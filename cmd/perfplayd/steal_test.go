package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perfplay/internal/pipeline"
	"perfplay/internal/scheduler"
)

// saturatedVictim builds a daemon whose workers never start — the
// deterministic stand-in for a node too overloaded to reach its own
// queue — so everything it accepts stays stealable until someone claims
// it. The reaper can be armed later via Start.
func saturatedVictim(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CorpusDir == "" {
		cfg.CorpusDir = t.TempDir()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// thiefServer builds a started daemon whose stealer polls the given
// victims at test cadence.
func thiefServer(t *testing.T, victims ...string) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := testServer(t, Config{Peers: victims, StealInterval: 5 * time.Millisecond})
	s.StartStealer(ts.URL)
	return s, ts
}

// TestWholeJobStealCompletesOnIdlePeer is the headline acceptance test:
// a workload job submitted to saturated node A completes on idle node B
// via a whole-job steal, byte-identical to the committed golden (and
// therefore to a serial single-node run), while A's client keeps
// polling A and never learns the job moved — except through the
// stolen_by field.
func TestWholeJobStealCompletesOnIdlePeer(t *testing.T) {
	_, victim := saturatedVictim(t, Config{})
	thiefSrv, thief := thiefServer(t, victim.URL)

	resp := postJSON(t, victim.URL+"/analyze", goldenSpecs[0].spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, victim.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("stolen job failed: %v", j["error"])
	}
	if report, want := j["report"].(string), goldenReport(t, goldenSpecs[0].name); report != want {
		t.Fatalf("stolen report differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if j["stolen_by"] != thief.URL {
		t.Fatalf("stolen_by = %v, want %s", j["stolen_by"], thief.URL)
	}
	if stats := thiefSrv.stealer.Stats(); stats.Claims != 1 || stats.Failures != 0 {
		t.Fatalf("thief stats = %+v", stats)
	}

	// The thief's healthz gossips the victim's queue depth.
	hz, err := http.Get(thief.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[map[string]any](t, hz)
	steal, _ := h["steal"].(map[string]any)
	if steal == nil || steal["enabled"] != true {
		t.Fatalf("thief healthz steal section = %v", steal)
	}
	if _, ok := steal["peer_queues"].(map[string]any)[victim.URL]; !ok {
		t.Fatalf("thief gossip missing the victim: %v", steal["peer_queues"])
	}
}

// TestWholeJobStealTraceDigest: a stored-trace job steals too — the
// thief pulls the blob from the victim's corpus by content digest
// (hash-verified), caches it locally, and produces the identical
// report a local run of the same digest yields.
func TestWholeJobStealTraceDigest(t *testing.T) {
	victimSrv, victim := saturatedVictim(t, Config{})
	payload := recordedPayload(t, 3)
	meta, _, err := victimSrv.corpus.Put(payload, false)
	if err != nil {
		t.Fatal(err)
	}

	// The reference output: the same digest job run on an ordinary
	// standalone daemon holding the same blob.
	refSrv, ref := testServer(t, Config{})
	if _, _, err := refSrv.corpus.Put(payload, false); err != nil {
		t.Fatal(err)
	}
	spec := `{"trace":"` + meta.Digest + `","schemes":true}`
	want := runJobReport(t, ref.URL, spec)

	thiefSrv, _ := thiefServer(t, victim.URL)
	resp := postJSON(t, victim.URL+"/analyze", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[map[string]string](t, resp)
	j := waitDone(t, victim.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("stolen digest job failed: %v", j["error"])
	}
	if j["report"] != want {
		t.Fatalf("stolen digest report differs:\nwant:\n%s\ngot:\n%s", want, j["report"])
	}
	// The thief's corpus now holds the victim's blob (content pull).
	if _, err := thiefSrv.corpus.Stat(meta.Digest); err != nil {
		t.Fatalf("thief corpus missing the stolen trace: %v", err)
	}
}

// TestThiefCrashLeaseExpiry: a thief that claims a job and vanishes
// costs one lease, not the job — the reaper re-queues it, a local
// worker completes it with golden-identical output, and the thief's
// eventual late result is rejected with 409.
func TestThiefCrashLeaseExpiry(t *testing.T) {
	srv, ts := saturatedVictim(t, Config{StealLease: 50 * time.Millisecond})

	resp := postJSON(t, ts.URL+"/analyze", goldenSpecs[0].spec)
	sub := decode[map[string]string](t, resp)

	// A "thief" claims the job... and crashes (never reports).
	claim := postJSON(t, ts.URL+"/jobs/claim", `{"thief":"http://doomed:1"}`)
	if claim.StatusCode != http.StatusOK {
		t.Fatalf("claim: status %d", claim.StatusCode)
	}
	stolen := decode[scheduler.StolenJob](t, claim)
	if stolen.ID != sub["id"] || stolen.Spec.App != "pbzip2" {
		t.Fatalf("claimed %+v, want job %s", stolen, sub["id"])
	}
	// The client now sees the job running elsewhere.
	st, err := http.Get(ts.URL + "/jobs/" + sub["id"])
	if err != nil {
		t.Fatal(err)
	}
	if mid := decode[map[string]any](t, st); mid["status"] != statusRunning || mid["stolen_by"] != "http://doomed:1" {
		t.Fatalf("mid-steal job = %v", mid)
	}

	time.Sleep(100 * time.Millisecond) // let the lease lapse
	srv.Start()                        // arms the reaper and the local workers

	j := waitDone(t, ts.URL, sub["id"])
	if j["status"] != statusDone {
		t.Fatalf("job lost after thief crash: %v", j["error"])
	}
	if report, want := j["report"].(string), goldenReport(t, goldenSpecs[0].name); report != want {
		t.Fatalf("post-expiry local report differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if j["stolen_by"] != nil {
		t.Fatalf("stolen_by = %v after local recovery, want empty", j["stolen_by"])
	}

	// The crashed thief limps back with a stale result: rejected, and
	// the settled job is untouched.
	late := postJSON(t, ts.URL+"/jobs/"+sub["id"]+"/result",
		`{"thief":"http://doomed:1","summary":{"report":"stale"}}`)
	defer late.Body.Close()
	if late.StatusCode != http.StatusConflict {
		t.Fatalf("late result: status %d, want 409", late.StatusCode)
	}
	if j2 := decode[map[string]any](t, mustGet(t, ts.URL+"/jobs/"+sub["id"])); j2["report"] != j["report"] {
		t.Fatal("late result overwrote the settled job")
	}
}

// abortResults wraps a victim handler so POST /jobs/{id}/result severs
// the connection — the victim "crashes" at the worst moment, after the
// thief did the work but before the result lands.
type abortResults struct {
	inner http.Handler
}

func (a *abortResults) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/result") {
		panic(http.ErrAbortHandler)
	}
	a.inner.ServeHTTP(w, r)
}

// TestVictimCrashMidSteal: the victim dies between claim and result.
// The thief must count a failure, stay healthy, and keep serving its
// own jobs; the stolen result is simply dropped (the victim's lease
// would have recovered the job had the victim lived).
func TestVictimCrashMidSteal(t *testing.T) {
	victimSrv, err := NewServer(Config{CorpusDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	victim := httptest.NewServer(&abortResults{inner: victimSrv.Handler()})
	t.Cleanup(func() {
		victim.Close()
		victimSrv.Close()
	})

	thiefSrv, thief := thiefServer(t, victim.URL)
	resp := postJSON(t, victim.URL+"/analyze", goldenSpecs[0].spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for thiefSrv.stealer.Stats().Failures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thief never recorded the failed result report")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The thief is unharmed: its own jobs still run to completion.
	if report, want := runJobReport(t, thief.URL, goldenSpecs[0].spec), goldenReport(t, goldenSpecs[0].name); report != want {
		t.Fatalf("thief report after victim crash differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
	}
}

// TestClaimEndpointEdges pins the protocol's edges: empty queue → 204,
// malformed body → 400, an unstealable (in-memory upload) job is never
// offered, and a result for an unclaimed job → 409.
func TestClaimEndpointEdges(t *testing.T) {
	srv, ts := saturatedVictim(t, Config{})

	resp := postJSON(t, ts.URL+"/jobs/claim", `{"thief":"http://x"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("empty-queue claim: status %d, want 204", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/jobs/claim", `{nope`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed claim: status %d, want 400", resp.StatusCode)
	}

	// A raw trace upload lives only in victim memory: not stealable.
	up, err := http.Post(ts.URL+"/analyze", "application/octet-stream", bytes.NewReader(recordedPayload(t, 5)))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusAccepted {
		t.Fatalf("upload submit: status %d", up.StatusCode)
	}
	if n := srv.queue.Stealable(); n != 0 {
		t.Fatalf("%d upload jobs advertised as stealable", n)
	}
	resp = postJSON(t, ts.URL+"/jobs/claim", `{"thief":"http://x"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("claim with only an upload queued: status %d, want 204", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/jobs/job-999/result", `{"thief":"x","summary":{}}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result for unclaimed job: status %d, want 409", resp.StatusCode)
	}

	// GET /steal is a cheap truthful probe.
	probe := decode[scheduler.PeerStatus](t, mustGet(t, ts.URL+"/steal"))
	if probe.QueueLen != 1 || probe.Stealable != 0 {
		t.Fatalf("probe = %+v, want 1 queued / 0 stealable", probe)
	}
}

// slowShards wraps a worker handler so each POST /shards stalls — the
// induced load skew for the range-migration test.
type slowShards struct {
	inner http.Handler
	delay time.Duration
}

func (s *slowShards) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/shards" {
		time.Sleep(s.delay)
	}
	s.inner.ServeHTTP(w, r)
}

// TestShardRangeMigratesUnderSkew is the mid-classify work-stealing
// acceptance test at the HTTP layer: with one worker slowed to a crawl,
// the shard ranges a static cost split would have parked behind it
// drain through the fast worker and the local pool instead — and the
// merged report still matches the committed golden byte-for-byte.
func TestShardRangeMigratesUnderSkew(t *testing.T) {
	_, fast := clusterServer(t, Config{Role: roleWorker})

	slowSrv, err := NewServer(Config{Role: roleWorker, CorpusDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	slow := httptest.NewServer(&slowShards{inner: slowSrv.Handler(), delay: 400 * time.Millisecond})
	t.Cleanup(func() {
		slow.Close()
		slowSrv.Close()
	})
	slowSrv.Start()

	coordSrv, coord := clusterServer(t, Config{Peers: []string{fast.URL, slow.URL}})
	runJobReport(t, coord.URL, goldenSpecs[1].warmup) // arm distribution (cached verdict table)
	report := runJobReport(t, coord.URL, goldenSpecs[1].spec)
	if want := goldenReport(t, goldenSpecs[1].name); report != want {
		t.Fatalf("skewed-cluster report differs from golden:\nwant:\n%s\ngot:\n%s", want, report)
	}
	if coordSrv.dist.Fallbacks() != 0 {
		t.Fatalf("slow-but-healthy worker caused %d fallbacks", coordSrv.dist.Fallbacks())
	}
	a := coordSrv.dist.Assignments()
	if a[slow.URL] == 0 {
		t.Fatalf("slow worker never engaged: %v", a)
	}
	if a[fast.URL]+a["local"] <= a[slow.URL] {
		t.Fatalf("no migration under skew: %v", a)
	}
}

// TestStolenTraceFetchFailureAbandons: a thief that cannot obtain the
// stolen job's trace must abandon the steal (so the victim's lease
// recovers the job) rather than settle it as failed — and for a trace
// the thief does hold, the request must carry the blob size so the
// result cache can weigh the retained trace.
func TestStolenTraceFetchFailureAbandons(t *testing.T) {
	srv, _ := testServer(t, Config{})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	spec := scheduler.Spec{TraceDigest: "sha256:" + strings.Repeat("ab", 32)}
	_, err := srv.requestFor(deadURL, spec, spanCtx{})
	if err == nil || !strings.Contains(err.Error(), "stolen trace unavailable") {
		t.Fatalf("unreachable victim: err = %v, want errStolenTraceUnavailable", err)
	}

	payload := recordedPayload(t, 9)
	meta, _, perr := srv.corpus.Put(payload, false)
	if perr != nil {
		t.Fatal(perr)
	}
	req, err := srv.requestFor(deadURL, scheduler.Spec{TraceDigest: meta.Digest}, spanCtx{})
	if err != nil {
		t.Fatal(err)
	}
	if req.TraceBytes != meta.Size {
		t.Fatalf("TraceBytes = %d, want the blob size %d (cache weight)", req.TraceBytes, meta.Size)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSpecRoundTrip pins the wire spec against the request builder: a
// stolen workload job's thief-side request reproduces the victim's
// pipeline cache key, which is the determinism contract's foundation.
func TestSpecRoundTrip(t *testing.T) {
	srv, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var spec analyzeSpec
	if err := json.Unmarshal([]byte(goldenSpecs[1].spec), &spec); err != nil {
		t.Fatal(err)
	}
	victimReq := pipeline.Request{
		App: spec.App, Threads: spec.Threads,
		Scale: spec.Scale, Seed: spec.Seed, TopK: spec.Top,
		Schemes: spec.Schemes, DetectRaces: spec.Races,
	}
	wire := specFor(victimReq)
	if !wire.Stealable() {
		t.Fatal("workload spec not stealable")
	}
	thiefReq, err := srv.requestFor("http://victim", wire, spanCtx{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := thiefReq.CacheKey(), victimReq.CacheKey(); got != want {
		t.Fatalf("thief cache key %q != victim %q", got, want)
	}
}
