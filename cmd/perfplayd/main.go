// Command perfplayd is the PerfPlay analysis daemon: a long-running
// HTTP service that accepts analysis jobs — a workload spec or an
// uploaded trace file — runs them through the concurrent
// internal/pipeline orchestrator on a bounded job queue, and serves the
// ranked reports back as JSON.
//
// Endpoints:
//
//	POST /analyze         submit a job; JSON spec {"app": "mysql", "threads": 4,
//	                      "scale": 0.5, "seed": 42, "schemes": true}, a stored-
//	                      trace reference {"trace": "sha256:...", "schemes": true},
//	                      or a raw trace body (binary or JSON encoding, options
//	                      as ?schemes=true&races=true&top=5); returns {id}
//	GET  /jobs/{id}       job status plus, once done, the JSON report
//	GET  /healthz         liveness, job counts, queue/cache/corpus occupancy
//	POST /traces          store a trace in the content-addressed corpus;
//	                      dedupes by SHA-256 (201 new, 200 already present);
//	                      ?pin=true exempts it from LRU eviction
//	GET  /traces          list stored traces and their metadata
//	GET  /traces/{digest} download a stored trace blob
//	DELETE /traces/{digest} evict a stored trace
//	PATCH /traces/{digest}?pin=true|false  flip LRU-eviction exemption
//
// Usage:
//
//	perfplayd [-addr :8080] [-workers 2] [-pipeline-workers 4]
//	          [-queue 64] [-cache 128] [-max-jobs 1024]
//	          [-corpus perfplay-corpus] [-corpus-max-bytes 1073741824]
package main

import (
	"flag"
	"log"
	"net/http"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 2, "concurrent analysis jobs")
		plWorkers   = flag.Int("pipeline-workers", 4, "worker-pool width inside each job")
		queueDepth  = flag.Int("queue", 64, "pending-job queue depth (further submits get 503)")
		cacheSize   = flag.Int("cache", 128, "LRU result cache capacity")
		maxJobs     = flag.Int("max-jobs", 1024, "finished jobs retained before eviction")
		corpusDir   = flag.String("corpus", "perfplay-corpus", "trace corpus directory (same layout as perfplay -corpus; empty disables /traces)")
		corpusBytes = flag.Int64("corpus-max-bytes", 0, "corpus byte budget; LRU-evicts unpinned traces beyond it (0 = 1 GiB)")
	)
	flag.Parse()

	srv, err := NewServer(Config{
		Workers:         *workers,
		PipelineWorkers: *plWorkers,
		QueueDepth:      *queueDepth,
		CacheSize:       *cacheSize,
		MaxJobs:         *maxJobs,
		CorpusDir:       *corpusDir,
		CorpusMaxBytes:  *corpusBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	log.Printf("perfplayd listening on %s (%d job workers × %d pipeline workers, queue %d)",
		*addr, *workers, *plWorkers, *queueDepth)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
