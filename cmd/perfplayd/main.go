// Command perfplayd is the PerfPlay analysis daemon: a long-running
// HTTP service that accepts analysis jobs — a workload spec or an
// uploaded trace file — runs them through the concurrent
// internal/pipeline orchestrator on a bounded job queue, and serves the
// ranked reports back as JSON.
//
// Endpoints:
//
//	POST /analyze         submit a job; JSON spec {"app": "mysql", "threads": 4,
//	                      "scale": 0.5, "seed": 42, "schemes": true}, a stored-
//	                      trace reference {"trace": "sha256:...", "schemes": true},
//	                      or a raw trace body (binary or JSON encoding, options
//	                      as ?schemes=true&races=true&top=5); returns {id}
//	POST /shards          execute classification shards [start,end) of a stored
//	                      trace's sorted lock groups with a shipped verdict
//	                      table (the cluster worker protocol; see README
//	                      "Cluster mode")
//	GET  /jobs/{id}       job status plus, once done, the JSON report and
//	                      per-stage timings; ?wait=10s long-polls until the
//	                      job changes state or the wait expires
//	GET  /healthz         liveness, job counts, queue/cache/corpus occupancy,
//	                      cluster role and shard-fallback count
//	POST /traces          store a trace in the content-addressed corpus;
//	                      dedupes by SHA-256 (201 new, 200 already present);
//	                      ?pin=true exempts it from LRU eviction
//	GET  /traces          list stored traces and their metadata
//	GET  /traces/{digest} download a stored trace blob
//	DELETE /traces/{digest} evict a stored trace
//	PATCH /traces/{digest}?pin=true|false  flip LRU-eviction exemption
//
// Usage:
//
//	perfplayd [-addr :8080] [-workers 2] [-pipeline-workers 4]
//	          [-queue 64] [-cache 128] [-max-jobs 1024]
//	          [-corpus perfplay-corpus] [-corpus-max-bytes 1073741824]
//	          [-role standalone|worker|coordinator]
//	          [-peers http://h1:8080,http://h2:8080] [-shard-timeout 120s]
//
// Cluster mode: start workers with -role=worker (a corpus is required —
// shard requests reference traces by digest), then a coordinator with
// -peers listing them. Every analyze job's classification shards fan
// out across the peers and merge deterministically; dead peers fall
// back to local execution. See README "Cluster mode".
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "concurrent analysis jobs")
		plWorkers    = flag.Int("pipeline-workers", 4, "worker-pool width inside each job")
		queueDepth   = flag.Int("queue", 64, "pending-job queue depth (further submits get 503)")
		cacheSize    = flag.Int("cache", 128, "LRU result cache capacity")
		maxJobs      = flag.Int("max-jobs", 1024, "finished jobs retained before eviction")
		corpusDir    = flag.String("corpus", "perfplay-corpus", "trace corpus directory (same layout as perfplay -corpus; empty disables /traces)")
		corpusBytes  = flag.Int64("corpus-max-bytes", 0, "corpus byte budget; LRU-evicts unpinned traces beyond it (0 = 1 GiB)")
		role         = flag.String("role", "", "cluster role: standalone, worker, or coordinator (default standalone; coordinator when -peers is set)")
		peers        = flag.String("peers", "", "comma-separated peer base URLs to fan classification shards out to (implies -role=coordinator)")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-peer shard call timeout (0 = 120s)")
	)
	flag.Parse()

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}
	switch *role {
	case "", roleStandalone, roleWorker, roleCoordinator:
	default:
		log.Fatalf("perfplayd: unknown -role %q (want standalone, worker, or coordinator)", *role)
	}
	if *role == roleCoordinator && len(peerList) == 0 {
		log.Fatal("perfplayd: -role=coordinator requires -peers")
	}
	if len(peerList) > 0 && (*role == roleWorker || *role == roleStandalone) {
		// Peers make this daemon distribute; letting it also claim to be
		// a worker/standalone would give operators contradictory signals
		// (healthz role vs observed fan-out).
		log.Fatalf("perfplayd: -peers implies -role=coordinator, not %q", *role)
	}
	if *role == roleWorker && *corpusDir == "" {
		log.Fatal("perfplayd: -role=worker requires a -corpus (shard requests reference traces by digest)")
	}

	srv, err := NewServer(Config{
		Workers:         *workers,
		PipelineWorkers: *plWorkers,
		QueueDepth:      *queueDepth,
		CacheSize:       *cacheSize,
		MaxJobs:         *maxJobs,
		CorpusDir:       *corpusDir,
		CorpusMaxBytes:  *corpusBytes,
		Role:            *role,
		Peers:           peerList,
		ShardTimeout:    *shardTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	cluster := ""
	if len(peerList) > 0 {
		cluster = " as coordinator of " + strings.Join(peerList, ", ")
	} else if srv.cfg.Role != roleStandalone {
		cluster = " as " + srv.cfg.Role
	}
	log.Printf("perfplayd listening on %s (%d job workers × %d pipeline workers, queue %d)%s",
		*addr, *workers, *plWorkers, *queueDepth, cluster)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
