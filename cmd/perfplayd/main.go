// Command perfplayd is the PerfPlay analysis daemon: a long-running
// HTTP service that accepts analysis jobs — a workload spec or an
// uploaded trace file — runs them through the concurrent
// internal/pipeline orchestrator on a bounded job queue, and serves the
// ranked reports back as JSON.
//
// The full HTTP API reference — every route, request/response schema,
// error code and curl example — lives in docs/API.md (kept in sync with
// the registered mux by CI via the -print-routes flag). In brief:
//
//	POST   /analyze           submit a job (workload spec, stored-trace
//	                          reference, or raw trace upload); a full
//	                          queue 503s with a Retry-Peer redirect
//	GET    /jobs/{id}         job status/report; ?wait= long-polls
//	GET    /jobs/{id}/trace   the job's distributed span timeline
//	POST   /jobs/claim        a peer claims a whole queued job (work stealing)
//	POST   /jobs/{id}/result  the thief reports the finished job back
//	GET    /steal             stealable-backlog + cache-hint probe
//	POST   /shards            execute classification shard ranges (cluster)
//	GET    /cache/results/{key}  export a cached analysis result (wire form)
//	GET    /cache/tables/{key}   export a cached verdict table
//	GET    /healthz           liveness, occupancy, cluster gossip
//	GET    /metrics           Prometheus text-format metrics
//	POST   /traces            store a trace in the content-addressed corpus
//	GET    /traces[/{digest}] list / download stored traces
//	DELETE /traces/{digest}   evict a stored trace
//	PATCH  /traces/{digest}   pin or unpin a stored trace
//
// Usage:
//
//	perfplayd [-addr :8080] [-workers 2] [-pipeline-workers 4]
//	          [-queue 64] [-cache 128] [-max-jobs 1024]
//	          [-corpus perfplay-corpus] [-corpus-max-bytes 1073741824]
//	          [-journal-dir auto|DIR|""]
//	          [-role standalone|worker|coordinator]
//	          [-peers http://h1:8080,http://h2:8080] [-shard-timeout 120s]
//	          [-advertise http://me:8080] [-steal-interval 1s]
//	          [-steal-lease 2m] [-cache-probe-timeout 250ms]
//	          [-cache-probe-fanout 2] [-cache-hint-keys 32]
//	          [-node name] [-pprof] [-print-routes]
//
// Observability: GET /metrics serves every counter, gauge and histogram
// in the Prometheus text format; GET /jobs/{id}/trace serves a job's
// cross-node span timeline; logs are structured (log/slog) and carry
// the node name plus job/trace IDs. -pprof additionally mounts the
// net/http/pprof handlers under /debug/pprof/ (off by default). See
// docs/OBSERVABILITY.md for the metric catalog and span names.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, waits for
// in-flight requests and running jobs, then exits.
//
// Durability: every job queue transition is fsynced to an append-only
// journal (-journal-dir, by default <corpus>-journal next to the
// corpus), and a restarted daemon replays it — jobs queued at crash
// time re-enter the queue in admit order, jobs out on a steal lease
// are requeued at the front like any expired lease, and determinism
// makes the recovered runs byte-identical to what the lost runs would
// have produced. GET /healthz's "journal" section and the
// perfplay_journal_* metrics show the log's size, live backlog and
// what the last boot recovered. -journal-dir "" disables durability.
//
// Cluster mode: give every node the same -corpus-backed setup and point
// each at its peers with -peers. Each node then both fans its jobs'
// classification shards out across the peers (pull-based range
// work-stealing; dead peers fall back to local execution) and runs a
// whole-job stealer: when idle it claims entire queued jobs from the
// busiest peer, executes them locally (fetching the trace blob by
// content digest when needed), and reports the results back — so the
// cluster is a symmetric pool, not a star. Cached analysis results are
// a cluster resource too: before executing a cache-missed job over a
// stored trace, a node probes its peers' result caches by content-
// addressed key (gossip-ordered, bounded fan-out) and a hit settles the
// job with zero replays; a full node's 503 redirects submitters to the
// idlest peer via the Retry-Peer header. -role remains as an
// observability label. See docs/ARCHITECTURE.md for the topology and
// README "Cluster mode" for a quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perfplay/internal/cachepolicy"
)

// cacheKnobs seeds the cache-layer flag defaults from the shared
// cachepolicy.Defaults() struct — the same values Config.withDefaults
// applies and the clustersim policy lab sweeps — so `-help` prints the
// true, sweep-backed defaults instead of a "0 means N" convention.
var cacheKnobs = cachepolicy.Defaults()

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 2, "concurrent analysis jobs")
		plWorkers     = flag.Int("pipeline-workers", 4, "worker-pool width inside each job")
		queueDepth    = flag.Int("queue", 64, "pending-job queue depth (further submits get 503)")
		cacheSize     = flag.Int("cache", 128, "LRU result cache capacity")
		maxJobs       = flag.Int("max-jobs", 1024, "finished jobs retained before eviction")
		corpusDir     = flag.String("corpus", "perfplay-corpus", "trace corpus directory (same layout as perfplay -corpus; empty disables /traces)")
		corpusBytes   = flag.Int64("corpus-max-bytes", 0, "corpus byte budget; LRU-evicts unpinned traces beyond it (0 = 1 GiB)")
		journalDir    = flag.String("journal-dir", "auto", `crash-durable job journal directory; "auto" derives <corpus>-journal next to the corpus, empty disables durability`)
		role          = flag.String("role", "", "cluster role label: standalone, worker, or coordinator (default standalone; coordinator when -peers is set)")
		peers         = flag.String("peers", "", "comma-separated peer base URLs for shard fan-out and whole-job stealing")
		shardTimeout  = flag.Duration("shard-timeout", 0, "per-peer shard call timeout (0 = 120s)")
		advertise     = flag.String("advertise", "", "base URL peers should see this node as (default http://<addr>)")
		stealInterval = flag.Duration("steal-interval", 0, "idle poll cadence of the whole-job stealer (0 = 1s; negative disables stealing)")
		stealLease    = flag.Duration("steal-lease", 0, "how long a thief may hold a claimed job before it re-queues locally (0 = 2m)")
		probeTimeout  = flag.Duration("cache-probe-timeout", cacheKnobs.ProbeTimeout, "per-peer cluster-cache probe timeout")
		probeFanout   = flag.Int("cache-probe-fanout", cacheKnobs.ProbeFanout, "max peers probed per cache-missed job (sweep-derived; see docs/POLICIES.md)")
		hintKeys      = flag.Int("cache-hint-keys", cacheKnobs.HintKeys, "recent result-cache keys gossiped per GET /steal (cache-population hints)")
		nodeName      = flag.String("node", "", "node name on spans and log lines (default: hostname)")
		enablePprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
		printRoutes   = flag.Bool("print-routes", false, "print the registered HTTP routes, one per line, and exit")
	)
	flag.Parse()

	if *printRoutes {
		for _, p := range routePatterns() {
			fmt.Println(p)
		}
		return
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}
	switch *role {
	case "", roleStandalone, roleWorker, roleCoordinator:
	default:
		log.Fatalf("perfplayd: unknown -role %q (want standalone, worker, or coordinator)", *role)
	}
	if *role == roleCoordinator && len(peerList) == 0 {
		log.Fatal("perfplayd: -role=coordinator requires -peers")
	}
	if len(peerList) > 0 && *corpusDir == "" {
		log.Fatal("perfplayd: -peers requires a -corpus (cluster transfers reference traces by digest)")
	}
	if *role == roleWorker && *corpusDir == "" {
		log.Fatal("perfplayd: -role=worker requires a -corpus (shard requests reference traces by digest)")
	}

	// "auto" puts the journal next to the corpus: both are the node's
	// durable state, and a node without a corpus (memory-only uploads
	// are unrecoverable anyway) runs without a journal too.
	jdir := *journalDir
	if jdir == "auto" {
		jdir = ""
		if *corpusDir != "" {
			jdir = strings.TrimRight(*corpusDir, "/") + "-journal"
		}
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv, err := NewServer(Config{
		Workers:           *workers,
		PipelineWorkers:   *plWorkers,
		QueueDepth:        *queueDepth,
		CacheSize:         *cacheSize,
		MaxJobs:           *maxJobs,
		CorpusDir:         *corpusDir,
		CorpusMaxBytes:    *corpusBytes,
		JournalDir:        jdir,
		Role:              *role,
		Peers:             peerList,
		ShardTimeout:      *shardTimeout,
		StealInterval:     *stealInterval,
		StealLease:        *stealLease,
		CacheProbeTimeout: *probeTimeout,
		CacheProbeFanout:  *probeFanout,
		CacheHintKeys:     *hintKeys,
		NodeName:          *nodeName,
		Logger:            logger,
		EnablePprof:       *enablePprof,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	srv.StartStealer(strings.TrimRight(selfURL(*advertise, *addr), "/"))
	cluster := ""
	if len(peerList) > 0 {
		cluster = " in a pool with " + strings.Join(peerList, ", ")
	} else if srv.cfg.Role != roleStandalone {
		cluster = " as " + srv.cfg.Role
	}
	srv.logger.Info(fmt.Sprintf("perfplayd listening on %s (%d job workers × %d pipeline workers, queue %d)%s",
		*addr, *workers, *plWorkers, *queueDepth, cluster))

	// Graceful shutdown: SIGINT/SIGTERM stops the listener, drains
	// in-flight HTTP requests, then waits for running jobs. A second
	// signal during the drain kills the process the default way.
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal force-kills
	srv.logger.Info("shutting down: draining in-flight requests and jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		srv.logger.Warn("shutdown did not drain cleanly", "err", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.logger.Warn("listener error", "err", err)
	}
	srv.Close()
	srv.logger.Info("perfplayd stopped")
}

// selfURL derives the node's advertised base URL. A bare ":8080"-style
// listen address has no host, and advertising "http://:8080" would make
// every stolen_by/lease diagnostic unattributable — substitute the
// machine's hostname so operators can tell nodes apart.
func selfURL(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		if h, err := os.Hostname(); err == nil && h != "" {
			host = h
		} else {
			host = "localhost"
		}
	}
	return "http://" + net.JoinHostPort(host, port)
}
