// Command experiments regenerates the paper's evaluation tables and
// figures (Sec. 6) on the simulated substrate.
//
// Usage:
//
//	experiments                 # run everything at paper scale
//	experiments -run table1     # one experiment
//	experiments -scale 0.25     # quicker, smaller runs
//
// Experiment names: table1, table2, table3, figure2, figure13, figure14,
// figure15, figure16, figure19.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfplay/internal/experiments"
	"perfplay/internal/vtime"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment to run (comma separated), or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale relative to the paper's setup")
		seed    = flag.Int64("seed", 42, "recording seed")
		replays = flag.Int("replays", 10, "replays per scheme for figure13")
		lscost  = flag.Int64("lockset-cost", 8, "lockset maintenance cost per member (ticks)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:       *scale,
		Seed:        *seed,
		Replays:     *replays,
		LocksetCost: vtime.Duration(*lscost),
	}

	all := map[string]func(){
		"table1":       func() { fmt.Println(experiments.Table1(cfg)) },
		"table2":       func() { fmt.Println(experiments.Table2(cfg)) },
		"table3":       func() { fmt.Println(experiments.Table3(cfg)) },
		"figure2":      func() { fmt.Println(experiments.Figure2(cfg)) },
		"figure13":     func() { fmt.Println(experiments.Figure13(cfg)) },
		"figure14":     func() { fmt.Println(experiments.Figure14(cfg)) },
		"figure15":     func() { printAll(experiments.Figure15(cfg)) },
		"figure16":     func() { printAll(experiments.Figure16(cfg)) },
		"figure19":     func() { printAll(experiments.Figure19(cfg)) },
		"table-le":     func() { fmt.Println(experiments.TableLE(cfg)) },
		"table-static": func() { fmt.Println(experiments.TableStatic(cfg)) },
	}
	order := []string{"table1", "figure2", "figure13", "figure14", "table2", "table3", "figure15", "figure16", "figure19", "table-le", "table-static"}

	names := order
	if *run != "all" {
		names = strings.Split(*run, ",")
	}
	for _, n := range names {
		n = strings.TrimSpace(strings.ToLower(n))
		f, ok := all[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", n)
			os.Exit(2)
		}
		f()
	}
}

func printAll[T fmt.Stringer](xs []T) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
