// Command experiments regenerates the paper's evaluation tables and
// figures (Sec. 6) on the simulated substrate. Selected experiments run
// concurrently on the pipeline's worker pool; their artifacts are
// buffered and printed in the canonical order, so output is identical
// at any -workers width.
//
// Usage:
//
//	experiments                 # run everything at paper scale
//	experiments -run table1     # one experiment
//	experiments -scale 0.25     # quicker, smaller runs
//	experiments -workers 4      # fan experiments out over 4 workers
//
// Experiment names: table1, table2, table3, figure2, figure13, figure14,
// figure15, figure16, figure19, table-le, table-static.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfplay/internal/experiments"
	"perfplay/internal/pipeline"
	"perfplay/internal/report"
	"perfplay/internal/vtime"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment to run (comma separated), or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale relative to the paper's setup")
		seed    = flag.Int64("seed", 42, "recording seed")
		replays = flag.Int("replays", 10, "replays per scheme for figure13")
		lscost  = flag.Int64("lockset-cost", 8, "lockset maintenance cost per member (ticks)")
		workers = flag.Int("workers", 1, "experiments run concurrently (output order is fixed)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:       *scale,
		Seed:        *seed,
		Replays:     *replays,
		LocksetCost: vtime.Duration(*lscost),
	}

	all := map[string]func() string{
		"table1":       func() string { return experiments.Table1(cfg).String() },
		"table2":       func() string { return experiments.Table2(cfg).String() },
		"table3":       func() string { return experiments.Table3(cfg).String() },
		"figure2":      func() string { return experiments.Figure2(cfg).String() },
		"figure13":     func() string { return experiments.Figure13(cfg).String() },
		"figure14":     func() string { return experiments.Figure14(cfg).String() },
		"figure15":     func() string { return joinAll(experiments.Figure15(cfg)) },
		"figure16":     func() string { return joinAll(experiments.Figure16(cfg)) },
		"figure19":     func() string { return joinAll(experiments.Figure19(cfg)) },
		"table-le":     func() string { return experiments.TableLE(cfg).String() },
		"table-static": func() string { return experiments.TableStatic(cfg).String() },
	}
	order := []string{"table1", "figure2", "figure13", "figure14", "table2", "table3", "figure15", "figure16", "figure19", "table-le", "table-static"}

	names := order
	if *run != "all" {
		names = strings.Split(*run, ",")
	}
	tasks := make([]func() string, len(names))
	for i, n := range names {
		n = strings.TrimSpace(strings.ToLower(n))
		f, ok := all[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", n)
			os.Exit(2)
		}
		tasks[i] = f
	}

	// Experiments run concurrently; a watermark printer flushes each
	// artifact as soon as it and all its predecessors are done, so
	// output stays incremental (exactly like the old serial loop when
	// -workers=1) yet in canonical order at any width.
	type artifact struct {
		i   int
		out string
	}
	ch := make(chan artifact, len(tasks))
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		pending := make(map[int]string, len(tasks))
		next := 0
		for a := range ch {
			pending[a.i] = a.out
			for out, ok := pending[next]; ok; out, ok = pending[next] {
				fmt.Println(out)
				delete(pending, next)
				next++
			}
		}
	}()
	pipeline.NewPool(*workers).Each(len(tasks), func(i int) { ch <- artifact{i, tasks[i]()} })
	close(ch)
	<-printed
}

func joinAll(xs []*report.Figure) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return strings.Join(parts, "\n")
}
