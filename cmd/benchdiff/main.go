// Command benchdiff compares two BENCH_<sha>.json snapshots (the format
// cmd/benchjson writes and CI archives per push) and exits non-zero
// when any benchmark regressed beyond a threshold — the regression gate
// on the repo's benchmark trajectory. Like benchjson it depends only on
// the standard library so CI can `go run` it cold.
//
// Usage:
//
//	benchdiff -old BENCH_aaaa.json -new BENCH_bbbb.json \
//	    [-threshold 25] [-metric ns/op]
//
// Benchmarks are matched by (pkg, full name). Ones present on only one
// side are reported but never fatal — adding or deleting a benchmark is
// not a regression. Exit codes: 0 within threshold, 1 regression(s), 2
// usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Benchmark and Snapshot mirror cmd/benchjson's output schema; the
// fields irrelevant to diffing are omitted (unknown JSON keys are
// ignored by encoding/json).
type Benchmark struct {
	FullName string             `json:"full_name"`
	Pkg      string             `json:"pkg"`
	Metrics  map[string]float64 `json:"metrics"`
}

// Snapshot is one parsed BENCH_<sha>.json document.
type Snapshot struct {
	Commit     string      `json:"commit"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Delta is one matched benchmark's change.
type Delta struct {
	Key      string
	Old, New float64
	// Pct is the signed relative change in percent; positive means the
	// metric grew (a regression for cost metrics like ns/op).
	Pct float64
}

func key(b Benchmark) string { return b.Pkg + "." + b.FullName }

// diff matches benchmarks across snapshots on the chosen metric and
// returns the deltas plus the keys present on only one side.
func diff(oldSnap, newSnap *Snapshot, metric string) (deltas []Delta, onlyOld, onlyNew []string) {
	oldBy := make(map[string]Benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldBy[key(b)] = b
	}
	seen := make(map[string]bool, len(newSnap.Benchmarks))
	for _, nb := range newSnap.Benchmarks {
		k := key(nb)
		seen[k] = true
		ob, ok := oldBy[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		ov, oOK := ob.Metrics[metric]
		nv, nOK := nb.Metrics[metric]
		if !oOK || !nOK {
			continue // metric absent on one side: nothing to compare
		}
		d := Delta{Key: k, Old: ov, New: nv}
		if ov != 0 {
			d.Pct = (nv - ov) / ov * 100
		}
		deltas = append(deltas, d)
	}
	for _, b := range oldSnap.Benchmarks {
		if !seen[key(b)] {
			onlyOld = append(onlyOld, key(b))
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Pct > deltas[j].Pct })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// regressions filters deltas beyond the threshold (percent).
func regressions(deltas []Delta, threshold float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Pct > threshold {
			out = append(out, d)
		}
	}
	return out
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &s, nil
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline BENCH_<sha>.json")
		newPath   = flag.String("new", "", "candidate BENCH_<sha>.json")
		threshold = flag.Float64("threshold", 25, "max allowed increase of the metric, in percent")
		metric    = flag.String("metric", "ns/op", "metric to compare")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldSnap, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	deltas, onlyOld, onlyNew := diff(oldSnap, newSnap, *metric)
	fmt.Printf("benchdiff: %s → %s (%s, threshold +%g%%)\n",
		orUnknown(oldSnap.Commit), orUnknown(newSnap.Commit), *metric, *threshold)
	for _, d := range deltas {
		fmt.Printf("  %+8.1f%%  %-60s %14.1f → %.1f\n", d.Pct, d.Key, d.Old, d.New)
	}
	for _, k := range onlyOld {
		fmt.Printf("  removed    %s\n", k)
	}
	for _, k := range onlyNew {
		fmt.Printf("  added      %s\n", k)
	}
	if len(deltas) == 0 {
		// Disjoint snapshots compare nothing; failing here would block
		// renames, but say so loudly.
		fmt.Println("benchdiff: no comparable benchmarks between snapshots")
		return
	}
	if reg := regressions(deltas, *threshold); len(reg) > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed beyond +%g%%\n", len(reg), *threshold)
		os.Exit(1)
	}
	fmt.Println("benchdiff: within threshold")
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown)"
	}
	return s
}
