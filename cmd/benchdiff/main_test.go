package main

import (
	"os"
	"path/filepath"
	"testing"
)

func snap(benchmarks ...Benchmark) *Snapshot {
	return &Snapshot{Commit: "test", Benchmarks: benchmarks}
}

func bm(pkg, name string, nsOp float64) Benchmark {
	return Benchmark{FullName: name, Pkg: pkg, Metrics: map[string]float64{"ns/op": nsOp}}
}

func TestDiffMatchesByPkgAndName(t *testing.T) {
	oldS := snap(
		bm("a", "BenchmarkX-4", 100),
		bm("b", "BenchmarkX-4", 100), // same name, different pkg
		bm("a", "BenchmarkGone-4", 50),
	)
	newS := snap(
		bm("a", "BenchmarkX-4", 110),
		bm("b", "BenchmarkX-4", 90),
		bm("a", "BenchmarkNew-4", 1),
	)
	deltas, onlyOld, onlyNew := diff(oldS, newS, "ns/op")
	if len(deltas) != 2 {
		t.Fatalf("%d deltas, want 2: %+v", len(deltas), deltas)
	}
	// Sorted worst-first.
	if deltas[0].Key != "a.BenchmarkX-4" || deltas[0].Pct != 10 {
		t.Fatalf("worst delta = %+v", deltas[0])
	}
	if deltas[1].Pct != -10 {
		t.Fatalf("improvement delta = %+v", deltas[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "a.BenchmarkGone-4" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "a.BenchmarkNew-4" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestRegressionsThreshold(t *testing.T) {
	deltas, _, _ := diff(
		snap(bm("p", "BenchmarkA-4", 100), bm("p", "BenchmarkB-4", 100), bm("p", "BenchmarkC-4", 100)),
		snap(bm("p", "BenchmarkA-4", 126), bm("p", "BenchmarkB-4", 124), bm("p", "BenchmarkC-4", 10)),
		"ns/op")
	reg := regressions(deltas, 25)
	if len(reg) != 1 || reg[0].Key != "p.BenchmarkA-4" {
		t.Fatalf("regressions = %+v, want only the +26%% one", reg)
	}
	// A faster run is never a regression, whatever the threshold.
	if reg := regressions(deltas, 0); len(reg) != 2 {
		t.Fatalf("at threshold 0: %+v, want the two slower ones", reg)
	}
}

func TestDiffSkipsMissingMetric(t *testing.T) {
	oldS := snap(Benchmark{FullName: "BenchmarkX-4", Pkg: "p", Metrics: map[string]float64{"B/op": 7}})
	newS := snap(bm("p", "BenchmarkX-4", 5))
	deltas, _, _ := diff(oldS, newS, "ns/op")
	if len(deltas) != 0 {
		t.Fatalf("compared across a missing metric: %+v", deltas)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	deltas, _, _ := diff(snap(bm("p", "BenchmarkX-4", 0)), snap(bm("p", "BenchmarkX-4", 50)), "ns/op")
	if len(deltas) != 1 || deltas[0].Pct != 0 {
		t.Fatalf("zero baseline must not divide: %+v", deltas)
	}
}

func TestLoadRejectsEmptyAndMalformed(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"commit":"x","benchmarks":[]}`), 0o644)
	if _, err := load(empty); err == nil {
		t.Fatal("empty snapshot must not load")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{nope`), 0o644)
	if _, err := load(bad); err == nil {
		t.Fatal("malformed snapshot must not load")
	}
	if _, err := load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file must not load")
	}
}
