// Command promlint validates a Prometheus text-format exposition — the
// output of perfplayd's GET /metrics — against the strict parser and
// the repo's metric-naming conventions (see internal/telemetry and
// docs/OBSERVABILITY.md):
//
//   - the exposition parses: # HELP before # TYPE before samples,
//     contiguous families, well-formed labels, float values, no
//     duplicate series
//   - every family name carries the required prefix and is snake_case
//   - counters end in _total; histograms carry a unit suffix
//     (_seconds, _bytes); non-counters never end in _total
//
// Usage:
//
//	promlint [-prefix perfplay_] [-url http://host:8080/metrics] [file]
//
// With -url the exposition is scraped over HTTP; otherwise it is read
// from the named file, or stdin when no file is given. Exits non-zero
// on any violation, printing one line per problem — which is what lets
// CI gate every push on the daemon's own scrape.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"perfplay/internal/telemetry"
)

func main() {
	prefix := flag.String("prefix", "perfplay_", "required metric-name prefix")
	url := flag.String("url", "", "scrape this URL instead of reading a file/stdin")
	flag.Parse()

	in, name, err := source(*url, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	defer in.Close()

	families, err := telemetry.ParseExposition(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: exposition format violations:\n%v\n", name, err)
		os.Exit(1)
	}
	if problems := telemetry.LintFamilies(families, *prefix); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "promlint: %s: %s\n", name, p)
		}
		os.Exit(1)
	}
	fmt.Printf("promlint: %s: %d families ok\n", name, len(families))
}

func source(url, file string) (io.ReadCloser, string, error) {
	if url != "" {
		resp, err := http.Get(url)
		if err != nil {
			return nil, url, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, url, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		return resp.Body, url, nil
	}
	if file != "" {
		f, err := os.Open(file)
		return f, file, err
	}
	return io.NopCloser(os.Stdin), "stdin", nil
}
