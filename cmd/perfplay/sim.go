package main

import (
	"flag"
	"fmt"
	"os"

	"perfplay/internal/clustersim"
)

// runSim is the `perfplay sim` subcommand: the offline policy lab.
// It runs seeded cluster scenarios through internal/clustersim —
// the real scheduler and ledger policy code over a simulated fabric —
// and prints the deterministic report (same seed, same bytes). With
// -sweep it grids the policy knobs instead and prints the ranked
// table.
func runSim(argv []string) int {
	fs := flag.NewFlagSet("perfplay sim", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: perfplay sim [flags]\n\n"+
			"Runs a seeded, deterministic cluster-scheduling scenario against the real\n"+
			"perfplayd policy code (queue, stealer, gossip, range ledger) on an in-memory\n"+
			"transport. Same seed, byte-identical output.\n\n")
		fs.PrintDefaults()
	}
	var (
		scenario = fs.String("scenario", "skewed", `scenario: uniform, skewed, slownode, crash, cachewarm, partition, admission, or "all"`)
		seed     = fs.Int64("seed", 42, "simulation seed (all randomness derives from it)")
		sweep    = fs.Bool("sweep", false, "grid the policy knobs over the scenario and rank the results (cache scenarios grid the cache knobs)")

		nodes    = fs.Int("nodes", 0, "cluster size (0 = scenario default)")
		workers  = fs.Int("workers", 0, "workers per node (0 = scenario default)")
		queue    = fs.Int("queue", 0, "per-node queue depth (0 = scenario default)")
		duration = fs.Int64("duration", 0, "arrival window, ms (0 = scenario default)")
		arrival  = fs.Int64("arrival", 0, "mean inter-arrival gap, ms (0 = scenario default)")
		interval = fs.Int64("steal-interval", 0, "stealer tick cadence, ms (0 = scenario default)")
		lease    = fs.Int64("lease", 0, "steal lease, ms (0 = scenario default)")
		chunk    = fs.Int("chunk-factor", -1, "range-ledger chunk factor (-1 = scenario default)")
		hints    = fs.Bool("hints", true, "hint-driven steal ordering (prefer cache-warm victims)")
		slow     = fs.Int64("slow-factor", 0, "slow-node cost multiplier for slownode (0 = default)")
		crashN   = fs.Int("crash-node", -1, "crash scenario: node to kill (-1 = busiest thief)")
		crashAt  = fs.Int64("crash-at", 0, "crash scenario: kill time, ms (0 = default)")

		probeFanout  = fs.Int("probe-fanout", -1, "cache scenarios: peers probed per cache-missed job (0 disables probing; -1 = scenario default)")
		probeTimeout = fs.Int64("probe-timeout", 0, "cache scenarios: per-peer probe timeout, ms (0 = scenario default)")
		hintBreadth  = fs.Int("hint-breadth", -1, "cache scenarios: recent result keys gossiped as hints (-1 = scenario default)")
		maxHops      = fs.Int("max-hops", -1, "cache scenarios: Retry-Peer admission hop bound (-1 = scenario default)")
		warmNodes    = fs.Int("warm-nodes", -1, "cache scenarios: nodes pre-warmed with the corpus (-1 = scenario default)")
	)
	fs.Parse(argv)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "perfplay sim: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	scenarios := []string{*scenario}
	if *scenario == "all" {
		scenarios = clustersim.Scenarios()
	}
	for i, sc := range scenarios {
		cfg := clustersim.DefaultConfig(sc, *seed)
		if *nodes > 0 {
			cfg.Nodes = *nodes
		}
		if *workers > 0 {
			cfg.WorkersPerNode = *workers
		}
		if *queue > 0 {
			cfg.QueueDepth = *queue
		}
		if *duration > 0 {
			cfg.DurationMS = *duration
		}
		if *arrival > 0 {
			cfg.ArrivalEveryMS = *arrival
		}
		if *interval > 0 {
			cfg.StealIntervalMS = *interval
		}
		if *lease > 0 {
			cfg.LeaseMS = *lease
		}
		if *chunk >= 0 {
			cfg.ChunkFactor = *chunk
		}
		cfg.HintSteals = *hints
		if *slow > 0 {
			cfg.SlowFactor = *slow
		}
		cfg.CrashNode = *crashN
		if *crashAt > 0 {
			cfg.CrashAtMS = *crashAt
		}
		if cfg.CacheLayer {
			if *probeFanout >= 0 {
				cfg.ProbeFanout = *probeFanout
			}
			if *probeTimeout > 0 {
				cfg.ProbeTimeoutMS = *probeTimeout
			}
			if *hintBreadth >= 0 {
				cfg.HintBreadth = *hintBreadth
			}
			if *maxHops >= 0 {
				cfg.MaxHops = *maxHops
			}
			if *warmNodes >= 0 {
				cfg.WarmNodes = *warmNodes
			}
		}

		if i > 0 {
			fmt.Println()
		}
		if *sweep {
			// Cache scenarios sweep the cache knobs; legacy scenarios
			// sweep the steal knobs, exactly as before.
			if cfg.CacheLayer {
				results, err := clustersim.CacheSweep(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "perfplay sim:", err)
					return 1
				}
				fmt.Print(clustersim.RenderCacheSweep(sc, *seed, results))
				continue
			}
			results, err := clustersim.Sweep(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "perfplay sim:", err)
				return 1
			}
			fmt.Print(clustersim.RenderSweep(sc, *seed, results))
			continue
		}
		report, err := clustersim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfplay sim:", err)
			return 1
		}
		fmt.Print(report.String())
	}
	return 0
}
