// Command perfplay runs the PerfPlay pipeline on a modelled workload and
// prints the ranked list of ULCP optimization opportunities — the
// "List: ULCP optimization benefits" of the paper's Fig. 5.
//
// Usage:
//
//	perfplay -app mysql -threads 2 [-scale 0.5] [-top 5]
//	         [-trace out.trace] [-json] [-races]
//	perfplay -list
//
// With -trace the recorded execution is also written to disk in the
// binary (or, with -json, JSON) trace format, replayable later via
// -replay.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfplay/internal/core"
	"perfplay/internal/elision"
	"perfplay/internal/multi"
	"perfplay/internal/race"
	"perfplay/internal/replay"
	"perfplay/internal/sim"
	timelinepkg "perfplay/internal/timeline"
	"perfplay/internal/trace"
	"perfplay/internal/tracediff"
	"perfplay/internal/ulcp"
	"perfplay/internal/workload"
)

func main() {
	var (
		appName   = flag.String("app", "", "workload to analyze (see -list)")
		threads   = flag.Int("threads", 2, "worker thread count")
		scale     = flag.Float64("scale", 1.0, "workload scale relative to the paper's setup")
		input     = flag.String("input", "simlarge", "input size: simsmall, simmedium, simlarge")
		seed      = flag.Int64("seed", 42, "recording seed")
		top       = flag.Int("top", 5, "number of recommendations to print")
		traceOut  = flag.String("trace", "", "write the recorded trace to this file")
		jsonOut   = flag.Bool("json", false, "write the trace as JSON instead of binary")
		replayIn  = flag.String("replay", "", "replay an existing trace file instead of recording")
		races     = flag.Bool("races", false, "run the happens-before detector on the transformed trace")
		list      = flag.Bool("list", false, "list available workloads")
		scheduler = flag.String("sched", "elsc", "replay scheme for -replay: orig, elsc, sync, mem")
		runs      = flag.Int("runs", 1, "aggregate the analysis over N differently-seeded traces (multi-trace mode)")
		timeline  = flag.Bool("timeline", false, "print an ASCII per-thread timeline of the recorded trace")
		caseNum   = flag.Int("case", 0, "analyze an appendix real-world case (1-10) instead of a full workload")
		diffA     = flag.String("diff", "", "diff two trace files per code region: -diff a.trace -with b.trace")
		diffB     = flag.String("with", "", "second trace file for -diff")
		le        = flag.Bool("le", false, "also run the speculative lock elision baseline on the recording")
		verifyT1  = flag.Bool("verify", false, "run the Theorem 1 correctness check on the transformation")
	)
	flag.Parse()

	if *list {
		fmt.Println("available workloads:")
		for _, a := range workload.All() {
			fmt.Printf("  %-15s (%s)\n", a.Name, a.Kind)
		}
		return
	}

	if *replayIn != "" {
		if err := replayFile(*replayIn, *scheduler); err != nil {
			fatal(err)
		}
		return
	}

	if *diffA != "" {
		if *diffB == "" {
			fatal(fmt.Errorf("-diff requires -with"))
		}
		if err := diffFiles(*diffA, *diffB); err != nil {
			fatal(err)
		}
		return
	}

	if *caseNum != 0 {
		p, err := workload.BuildCase(*caseNum, workload.Config{Threads: *threads, Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		analysis, err := core.Analyze(p, core.Config{Sim: sim.Config{Seed: *seed}, DetectRaces: *races})
		if err != nil {
			fatal(err)
		}
		fmt.Print(analysis.Summary(*top))
		return
	}

	if *appName == "" {
		fmt.Fprintln(os.Stderr, "perfplay: -app is required (or -list, -replay)")
		flag.Usage()
		os.Exit(2)
	}
	app, ok := workload.Get(*appName)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q; try -list", *appName))
	}

	in := workload.SimLarge
	switch strings.ToLower(*input) {
	case "simsmall":
		in = workload.SimSmall
	case "simmedium":
		in = workload.SimMedium
	case "simlarge":
	default:
		fatal(fmt.Errorf("unknown input size %q", *input))
	}

	if *runs > 1 {
		// Multi-trace mode (Sec. 6.7 extension): analyze several
		// differently-seeded recordings and recommend only the code
		// regions whose opportunity holds in every one.
		var analyses []*core.Analysis
		for r := 0; r < *runs; r++ {
			s := *seed + int64(r)
			p := app.Build(workload.Config{Threads: *threads, Scale: *scale, Input: in, Seed: s})
			a, err := core.Analyze(p, core.Config{Sim: sim.Config{Seed: s}})
			if err != nil {
				fatal(err)
			}
			analyses = append(analyses, a)
		}
		fmt.Print(multi.Merge(analyses).Summary(*top))
		return
	}

	p := app.Build(workload.Config{Threads: *threads, Scale: *scale, Input: in, Seed: *seed})
	cfg := core.Config{Sim: sim.Config{Seed: *seed}, DetectRaces: *races, VerifyTheorem1: *verifyT1}
	analysis, err := core.Analyze(p, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Print(analysis.Summary(*top))
	if analysis.Theorem1 != nil {
		fmt.Println(" " + analysis.Theorem1.String())
	}
	if *timeline {
		fmt.Println(timelinepkg.Render(analysis.Recorded.Trace, timelinepkg.Options{Width: 100}))
	}
	if *le {
		res, err := elision.Run(analysis.Recorded.Trace, elision.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lock elision baseline: total %v (locked %v, ULCP-free %v); %d commits, %d aborts (%d false), %d fallbacks, %v wasted\n",
			res.Total, analysis.Debug.Tut, analysis.Debug.Tuft,
			res.Commits, res.Aborts, res.FalseAborts, res.Fallbacks, res.WastedWork)
	}
	for _, r := range analysis.Races {
		fmt.Printf(" race: %s\n", r)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *jsonOut {
			err = analysis.Recorded.Trace.WriteJSON(f)
		} else {
			err = analysis.Recorded.Trace.WriteBinary(f)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, len(analysis.Recorded.Trace.Events))
	}
}

// diffFiles loads two trace files and prints the per-region lock profile
// diff (e.g. a buggy recording against a patched one).
func diffFiles(pathA, pathB string) error {
	a, err := loadTrace(pathA)
	if err != nil {
		return err
	}
	b, err := loadTrace(pathB)
	if err != nil {
		return err
	}
	tbl, err := tracediff.Compare(pathA, a, pathB, b)
	if err != nil {
		return err
	}
	fmt.Println(tbl)
	return nil
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err == nil {
		return tr, nil
	}
	if _, serr := f.Seek(0, 0); serr != nil {
		return nil, err
	}
	return trace.ReadJSON(f)
}

// replayFile loads a trace from disk and replays it under the chosen
// scheme, reporting the replayed time and ULCP summary.
func replayFile(path, scheme string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		// Fall back to JSON.
		if _, serr := f.Seek(0, 0); serr != nil {
			return err
		}
		tr, err = trace.ReadJSON(f)
		if err != nil {
			return err
		}
	}
	var sched replay.Scheduler
	switch strings.ToLower(scheme) {
	case "orig":
		sched = replay.OrigS
	case "elsc":
		sched = replay.ELSCS
	case "sync":
		sched = replay.SyncS
	case "mem":
		sched = replay.MemS
	default:
		return fmt.Errorf("unknown scheduler %q", scheme)
	}
	res, err := replay.Run(tr, replay.Options{Sched: sched})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s (%d events, %d threads) under %v\n",
		tr.App, len(tr.Events), tr.NumThreads, sched)
	fmt.Printf(" recorded total: %v   replayed total: %v\n", tr.TotalTime, res.Total)
	css := tr.ExtractCS()
	rep := ulcp.Identify(tr, css, ulcp.Options{})
	fmt.Printf(" critical sections: %d  ULCPs: %d  TLCPs: %d\n",
		len(css), rep.NumULCPs(), rep.Counts[ulcp.TLCP])
	_ = race.OrderByStart
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfplay:", err)
	os.Exit(1)
}
