// Command perfplay runs the PerfPlay pipeline on a modelled workload and
// prints the ranked list of ULCP optimization opportunities — the
// "List: ULCP optimization benefits" of the paper's Fig. 5. All analysis
// goes through the concurrent internal/pipeline orchestrator; -workers
// sets the pool width (the report bytes are the same at any width).
//
// Usage:
//
//	perfplay -app mysql -threads 2 [-scale 0.5] [-top 5] [-workers 8]
//	         [-trace out.trace] [-trace-format columnar] [-races] [-schemes]
//	perfplay -trace-digest sha256:... [-corpus dir]
//	perfplay -daemon http://host:8080 -app mysql | -trace-digest sha256:...
//	perfplay -list
//
// With -trace the recorded execution is also written to disk, replayable
// later via -replay; -trace-format selects the encoding (binary, json,
// or the mmap-friendly columnar layout — -json remains as shorthand for
// -trace-format json). All readers sniff the format, so any encoding
// works with -replay, -diff, and the corpus. With -save-trace it is stored in the local content-addressed
// corpus (-corpus, the same on-disk layout perfplayd serves), and
// -trace-digest re-analyzes a stored trace by its sha256 digest without
// re-recording. With -daemon the job is submitted to a perfplayd node
// instead of running locally — following any 503 Retry-Peer admission
// redirect to an idler cluster node — and the daemon's (byte-identical)
// report is printed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"perfplay/internal/core"
	"perfplay/internal/corpus"
	"perfplay/internal/elision"
	"perfplay/internal/multi"
	"perfplay/internal/pipeline"
	"perfplay/internal/replay"
	timelinepkg "perfplay/internal/timeline"
	"perfplay/internal/trace"
	"perfplay/internal/tracediff"
	"perfplay/internal/ulcp"
	"perfplay/internal/workload"
)

func main() {
	// Subcommand dispatch before the legacy flag surface: `perfplay sim`
	// is the offline cluster-policy lab (see sim.go).
	if len(os.Args) > 1 && os.Args[1] == "sim" {
		os.Exit(runSim(os.Args[2:]))
	}
	var (
		appName   = flag.String("app", "", "workload to analyze (see -list)")
		threads   = flag.Int("threads", 2, "worker thread count")
		scale     = flag.Float64("scale", 1.0, "workload scale relative to the paper's setup")
		input     = flag.String("input", "simlarge", "input size: simsmall, simmedium, simlarge")
		seed      = flag.Int64("seed", 42, "recording seed")
		top       = flag.Int("top", 5, "number of recommendations to print")
		workers   = flag.Int("workers", 1, "pipeline worker-pool width (1 = serial)")
		schemes   = flag.Bool("schemes", false, "also replay the recording under all four schedulers")
		traceOut  = flag.String("trace", "", "write the recorded trace to this file")
		jsonOut   = flag.Bool("json", false, "write the trace as JSON instead of binary (shorthand for -trace-format json)")
		traceFmt  = flag.String("trace-format", "", "on-disk encoding for -trace: binary, json, or columnar (default binary)")
		replayIn  = flag.String("replay", "", "replay an existing trace file instead of recording")
		races     = flag.Bool("races", false, "run the happens-before detector on the transformed trace")
		list      = flag.Bool("list", false, "list available workloads")
		scheduler = flag.String("sched", "elsc", "replay scheme for -replay: orig, elsc, sync, mem")
		runs      = flag.Int("runs", 1, "aggregate the analysis over N differently-seeded traces (multi-trace mode)")
		timeline  = flag.Bool("timeline", false, "print an ASCII per-thread timeline of the recorded trace")
		caseNum   = flag.Int("case", 0, "analyze an appendix real-world case (1-10) instead of a full workload")
		diffA     = flag.String("diff", "", "diff two trace files per code region: -diff a.trace -with b.trace")
		diffB     = flag.String("with", "", "second trace file for -diff")
		corpusDir = flag.String("corpus", "perfplay-corpus", "content-addressed trace corpus directory (shared layout with perfplayd)")
		saveTrace = flag.Bool("save-trace", false, "store the recorded trace in the corpus and print its sha256 digest")
		digestIn  = flag.String("trace-digest", "", "analyze a stored trace from the corpus by sha256 digest instead of recording")
		le        = flag.Bool("le", false, "also run the speculative lock elision baseline on the recording")
		verifyT1  = flag.Bool("verify", false, "run the Theorem 1 correctness check on the transformation")
		daemon    = flag.String("daemon", "", "submit the job to a perfplayd daemon at this base URL instead of analyzing locally (follows 503 Retry-Peer admission redirects)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available workloads:")
		for _, a := range workload.All() {
			fmt.Printf("  %-15s (%s)\n", a.Name, a.Kind)
		}
		return
	}

	if *replayIn != "" {
		if err := replayFile(*replayIn, *scheduler); err != nil {
			fatal(err)
		}
		return
	}

	if *daemon != "" {
		// Daemon mode ships the job description, not the work: a
		// workload spec or a stored-trace digest the daemon resolves
		// from its own corpus. The accepting node may differ from the
		// submitted one under steal-aware admission. Flags the daemon
		// spec cannot express are rejected rather than silently dropped
		// — a user asking for -verify must not get an unverified run
		// that exits 0.
		switch {
		case *le, *verifyT1, *timeline:
			fatal(fmt.Errorf("-le, -verify and -timeline run local-only analyses; drop them or drop -daemon"))
		case *traceOut != "", *jsonOut, *traceFmt != "", *saveTrace:
			fatal(fmt.Errorf("-trace/-json/-trace-format/-save-trace write local recordings; the daemon records remotely"))
		case *runs > 1, *caseNum != 0:
			fatal(fmt.Errorf("-runs and -case are not supported with -daemon"))
		}
		spec := map[string]any{"top": *top, "schemes": *schemes, "races": *races}
		switch {
		case *digestIn != "":
			spec["trace"] = *digestIn
		case *appName != "":
			spec["app"] = *appName
			spec["threads"] = *threads
			spec["input"] = *input
			spec["scale"] = *scale
			spec["seed"] = *seed
		default:
			fatal(fmt.Errorf("-daemon requires -app or -trace-digest"))
		}
		if err := runOnDaemon(*daemon, spec); err != nil {
			fatal(err)
		}
		return
	}

	if *digestIn != "" {
		if err := analyzeDigest(*corpusDir, *digestIn, pipeline.Request{
			TopK:           *top,
			Workers:        *workers,
			Schemes:        *schemes,
			DetectRaces:    *races,
			VerifyTheorem1: *verifyT1,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *diffA != "" {
		if *diffB == "" {
			fatal(fmt.Errorf("-diff requires -with"))
		}
		if err := diffFiles(*diffA, *diffB); err != nil {
			fatal(err)
		}
		return
	}

	req := pipeline.Request{
		Threads:        *threads,
		Scale:          *scale,
		Seed:           *seed,
		TopK:           *top,
		Workers:        *workers,
		Schemes:        *schemes,
		DetectRaces:    *races,
		VerifyTheorem1: *verifyT1,
	}

	if *caseNum != 0 {
		p, err := workload.BuildCase(*caseNum, workload.Config{Threads: *threads, Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		req.Program = p
		res, err := pipeline.Run(req)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Report)
		return
	}

	if *appName == "" {
		fmt.Fprintln(os.Stderr, "perfplay: -app is required (or -list, -replay)")
		flag.Usage()
		os.Exit(2)
	}
	if _, ok := workload.Get(*appName); !ok {
		fatal(fmt.Errorf("unknown workload %q; try -list", *appName))
	}
	req.App = *appName

	in, err := workload.ParseInputSize(*input)
	if err != nil {
		fatal(err)
	}
	req.Input = in

	if *runs > 1 {
		// Multi-trace mode (Sec. 6.7 extension): analyze several
		// differently-seeded recordings — spread over the pool — and
		// recommend only the code regions whose opportunity holds in
		// every one.
		seeds := make([]int64, *runs)
		for r := range seeds {
			seeds[r] = *seed + int64(r)
		}
		// multi.Merge consumes only the quantification artifacts, so
		// don't pay for per-seed scheme replays or Theorem 1 checks
		// whose output would be discarded.
		req.Schemes, req.VerifyTheorem1, req.DetectRaces = false, false, false
		results, err := pipeline.New(pipeline.Options{}).RunSeeds(req, seeds)
		if err != nil {
			fatal(err)
		}
		analyses := make([]*core.Analysis, len(results))
		for i, r := range results {
			analyses[i] = r.Analysis
		}
		fmt.Print(multi.Merge(analyses).Summary(*top))
		return
	}

	res, err := pipeline.Run(req)
	if err != nil {
		fatal(err)
	}
	analysis := res.Analysis

	fmt.Print(res.Report)
	if *timeline {
		fmt.Println(timelinepkg.Render(analysis.Recorded.Trace, timelinepkg.Options{Width: 100}))
	}
	if *le {
		leRes, err := elision.Run(analysis.Recorded.Trace, elision.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lock elision baseline: total %v (locked %v, ULCP-free %v); %d commits, %d aborts (%d false), %d fallbacks, %v wasted\n",
			leRes.Total, analysis.Debug.Tut, analysis.Debug.Tuft,
			leRes.Commits, leRes.Aborts, leRes.FalseAborts, leRes.Fallbacks, leRes.WastedWork)
	}

	if *traceOut != "" {
		format := *traceFmt
		if format == "" {
			if *jsonOut {
				format = trace.FormatJSON
			} else {
				format = trace.FormatBinary
			}
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		switch format {
		case trace.FormatBinary:
			err = analysis.Recorded.Trace.WriteBinary(f)
		case trace.FormatColumnar:
			err = analysis.Recorded.Trace.WriteColumnar(f)
		case trace.FormatJSON:
			err = analysis.Recorded.Trace.WriteJSON(f)
		default:
			err = fmt.Errorf("unknown -trace-format %q (want binary, json, or columnar)", format)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%s, %d events)\n", *traceOut, format, len(analysis.Recorded.Trace.Events))
	}

	if *saveTrace {
		if err := saveToCorpus(*corpusDir, analysis.Recorded.Trace); err != nil {
			fatal(err)
		}
	}
}

// runOnDaemon submits one job to a perfplayd daemon (following
// Retry-Peer admission redirects via corpus.Remote) and long-polls the
// accepting node until the job settles, printing its report — which the
// determinism contract guarantees is byte-identical to what a local run
// of the same description would print.
func runOnDaemon(base string, spec map[string]any) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	remote := &corpus.Remote{Base: strings.TrimRight(base, "/")}
	id, accepted, err := remote.SubmitAnalyze(body)
	if err != nil {
		return err
	}
	if accepted != strings.TrimRight(base, "/") {
		fmt.Fprintf(os.Stderr, "perfplay: redirected to %s (submitted node was full)\n", accepted)
	}
	for {
		resp, err := http.Get(accepted + "/jobs/" + id + "?wait=30s")
		if err != nil {
			return err
		}
		var j struct {
			Status string `json:"status"`
			Error  string `json:"error"`
			Report string `json:"report"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			// E.g. 404 after the finished job aged out of -max-jobs;
			// answers immediately (no ?wait parking), so looping on it
			// would be a hot request storm, not patience.
			msg := j.Error
			if msg == "" {
				msg = resp.Status
			}
			return fmt.Errorf("poll %s/jobs/%s: %s", accepted, id, msg)
		}
		if derr != nil {
			return fmt.Errorf("poll %s/jobs/%s: %w", accepted, id, derr)
		}
		switch j.Status {
		case "done":
			fmt.Print(j.Report)
			return nil
		case "failed":
			return fmt.Errorf("daemon job %s failed: %s", id, j.Error)
		case "queued", "running":
		default:
			return fmt.Errorf("poll %s/jobs/%s: unknown status %q", accepted, id, j.Status)
		}
	}
}

// saveToCorpus stores the recording in the local content-addressed
// corpus (the same layout perfplayd serves) and prints its digest, so a
// later -trace-digest run — or a daemon job {"trace": "sha256:..."} over
// the same directory — can re-analyze it without re-recording.
func saveToCorpus(dir string, tr *trace.Trace) error {
	store, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		return err
	}
	meta, created, err := store.Put(buf.Bytes(), false)
	if err != nil {
		return err
	}
	verb := "stored in"
	if !created {
		verb = "already in"
	}
	fmt.Printf("trace %s %s: %s (%d bytes, %d events)\n", verb, dir, meta.Digest, meta.Size, meta.Events)
	return nil
}

// analyzeDigest runs the full pipeline over a trace stored in the local
// corpus, identified by content digest. The digest also keys the result
// cache, matching the daemon's keying for the same stored trace.
func analyzeDigest(dir, digest string, req pipeline.Request) error {
	store, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		return err
	}
	tr, meta, err := store.Load(digest)
	if err != nil {
		return err
	}
	req.Trace = tr
	req.TraceDigest = meta.Digest
	req.TraceBytes = meta.Size
	res, err := pipeline.Run(req)
	if err != nil {
		return err
	}
	fmt.Printf("analyzing %s %s (%d events, %d threads)\n", meta.App, meta.Digest, meta.Events, meta.Threads)
	fmt.Print(res.Report)
	return nil
}

// diffFiles loads two trace files and prints the per-region lock profile
// diff (e.g. a buggy recording against a patched one).
func diffFiles(pathA, pathB string) error {
	a, err := trace.ReadFile(pathA)
	if err != nil {
		return err
	}
	b, err := trace.ReadFile(pathB)
	if err != nil {
		return err
	}
	tbl, err := tracediff.Compare(pathA, a, pathB, b)
	if err != nil {
		return err
	}
	fmt.Println(tbl)
	return nil
}

// replayFile loads a trace from disk and replays it under the chosen
// scheme, reporting the replayed time and ULCP summary.
func replayFile(path, scheme string) error {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	var sched replay.Scheduler
	switch strings.ToLower(scheme) {
	case "orig":
		sched = replay.OrigS
	case "elsc":
		sched = replay.ELSCS
	case "sync":
		sched = replay.SyncS
	case "mem":
		sched = replay.MemS
	default:
		return fmt.Errorf("unknown scheduler %q", scheme)
	}
	res, err := replay.Run(tr, replay.Options{Sched: sched})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s (%d events, %d threads) under %v\n",
		tr.App, len(tr.Events), tr.NumThreads, sched)
	fmt.Printf(" recorded total: %v   replayed total: %v\n", tr.TotalTime, res.Total)
	css := tr.ExtractCS()
	// Sharded identification, so the counts agree with what -app and
	// the daemon report for the same recording.
	rep := ulcp.IdentifySharded(tr, css, ulcp.Options{})
	fmt.Printf(" critical sections: %d  ULCPs: %d  TLCPs: %d\n",
		len(css), rep.NumULCPs(), rep.Counts[ulcp.TLCP])
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfplay:", err)
	os.Exit(1)
}
