// Package journal is perfplayd's crash-durable job journal: an
// append-only log of job state transitions (admitted, claimed,
// requeued, settled, failed, evicted, abandoned) that lets a restarted
// daemon reconstruct exactly which jobs were queued or out on a steal
// lease when the previous process died. The trace blobs themselves
// already survive in the content-addressed corpus; the journal is the
// missing piece that makes the *queue* survive too.
//
// Records are framed on disk as
//
//	[4-byte LE payload length][4-byte LE CRC32-IEEE of payload][payload]
//
// with one JSON-encoded Record per frame, and every Append is fsynced
// before it returns — a record the caller saw committed is durable.
// Frames live in numbered segment files (journal-00000001.wal, ...);
// the active segment rotates past Options.SegmentBytes, and once the
// dead-record ratio (records that no longer contribute to live state)
// passes Options.CompactRatio the journal compacts: live state is
// rewritten into a fresh segment and every older segment is deleted, so
// a long-running daemon's journal is bounded by its live backlog, not
// its lifetime job count.
//
// Recovery semantics on Open:
//
//   - a clean log replays fully; Live() returns every job that was
//     admitted but never settled/failed/evicted/abandoned, in admit
//     order, with its claim state (a job out on a steal lease at crash
//     time replays as Claimed).
//   - a torn tail — the final record of the final segment cut short or
//     checksum-damaged by a crash mid-write — is salvaged: the tail is
//     truncated away and replay succeeds with everything before it.
//     Only the record being written at the instant of the crash can be
//     in that position, and by the fsync contract it was never
//     acknowledged.
//   - a checksum mismatch anywhere else is real corruption, not a torn
//     write, and Open fails closed with ErrCorrupt naming the segment
//     and offset rather than silently dropping committed jobs.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"perfplay/internal/telemetry"
)

// Ops are the journaled job state transitions. Admitted records carry
// the job's spec and metadata; every other op only references the job
// by ID.
const (
	// OpAdmitted: the job entered the queue (or was re-enqueued at
	// recovery). Upserts the job into live state as queued.
	OpAdmitted = "admitted"
	// OpClaimed: a thief took the job on a steal lease.
	OpClaimed = "claimed"
	// OpRequeued: a claimed job's lease expired and it went back in the
	// queue — the job is live and queued again.
	OpRequeued = "requeued"
	// OpSettled: the job finished successfully (locally or via a
	// thief's reported result). Terminal.
	OpSettled = "settled"
	// OpFailed: the job finished with an error, or could not be
	// recovered at restart. Terminal.
	OpFailed = "failed"
	// OpEvicted: the finished job's record was dropped from the
	// daemon's retention window. Terminal (normally a no-op for live
	// state — eviction follows settlement).
	OpEvicted = "evicted"
	// OpAbandoned: the job was dropped on a closed queue (requeue after
	// shutdown began) and will not run. Terminal.
	OpAbandoned = "abandoned"
)

// terminalOp reports whether op removes the job from live state.
func terminalOp(op string) bool {
	switch op {
	case OpSettled, OpFailed, OpEvicted, OpAbandoned:
		return true
	}
	return false
}

// Record is one journaled state transition. Spec is opaque to the
// journal — the daemon stores its wire-stealable scheduler spec there
// and unmarshals it back at recovery — as is Meta (trace ID, submit
// time, and whatever else the owner wants to restore).
type Record struct {
	Op    string            `json:"op"`
	Job   string            `json:"job"`
	Thief string            `json:"thief,omitempty"`
	Spec  json.RawMessage   `json:"spec,omitempty"`
	Meta  map[string]string `json:"meta,omitempty"`
}

// LiveJob is one job reconstructed by replay: admitted but not yet
// terminal. Claimed means the job was out on a steal lease when the
// journal was last written — the recovery code treats that exactly like
// an expired lease.
type LiveJob struct {
	Job     string
	Spec    json.RawMessage
	Meta    map[string]string
	Claimed bool
	Thief   string
}

// Options tunes the journal. The zero value is production-ready.
type Options struct {
	// SegmentBytes rotates the active segment past this size
	// (0 = 4 MiB).
	SegmentBytes int64
	// CompactRatio triggers compaction once dead records make up this
	// fraction of all records (0 = 0.5). Values >= 1 never compact.
	CompactRatio float64
	// MinCompactRecords is the record count below which compaction is
	// never considered, so a small journal doesn't churn (0 = 1024).
	MinCompactRecords int
	// NoSync skips the per-append fsync — only for tests, where the
	// process outlives every assertion anyway.
	NoSync bool
	// Metrics, when set, registers the perfplay_journal_* families on
	// the given registry.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactRatio == 0 {
		o.CompactRatio = 0.5
	}
	if o.MinCompactRecords == 0 {
		o.MinCompactRecords = 1024
	}
	return o
}

// Stats is a point-in-time summary for /healthz and operators.
type Stats struct {
	Segments    int     `json:"segments"`
	Records     int     `json:"records"`
	LiveJobs    int     `json:"live_jobs"`
	DeadRatio   float64 `json:"dead_ratio"`
	Bytes       int64   `json:"bytes"`
	Compactions int64   `json:"compactions"`
	// TruncatedTail reports that Open salvaged a torn final record —
	// evidence the previous process died mid-append.
	TruncatedTail bool `json:"truncated_tail,omitempty"`
}

// ErrCorrupt marks a record whose checksum or framing is damaged
// somewhere fsync promised it couldn't be — replay fails closed rather
// than silently dropping committed jobs.
var ErrCorrupt = errors.New("journal: corrupt record")

// frame framing constants.
const (
	headerBytes = 8        // 4-byte length + 4-byte CRC32
	maxRecord   = 16 << 20 // sanity bound on one record's payload
)

// liveJob is the mutable replay state for one non-terminal job.
type liveJob struct {
	spec    json.RawMessage
	meta    map[string]string
	claimed bool
	thief   string
}

// Journal is the append-only log. All methods are safe for concurrent
// use; Append serializes on an internal mutex (the fsync dominates).
type Journal struct {
	dir  string
	opts Options

	recordsByOp *telemetry.CounterVec
	bytesTotal  *telemetry.Counter
	compactions *telemetry.Counter
	errorsTotal *telemetry.Counter

	mu        sync.Mutex
	active    *os.File
	activeSeq int
	activeLen int64
	segments  []int // sorted segment sequence numbers, activeSeq last
	totalLen  int64 // bytes across all segments

	live      map[string]*liveJob
	order     []string // admit order; may hold IDs since removed
	records   int      // records across all segments
	liveRecs  int      // records a compaction would rewrite
	compacted int64
	truncated bool
	closed    bool
}

// Open replays every segment in dir (creating it if needed) and
// returns the journal positioned to append. See the package comment
// for the torn-tail salvage and fail-closed corruption semantics.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		dir:  dir,
		opts: opts,
		live: make(map[string]*liveJob),
	}
	if reg := opts.Metrics; reg != nil {
		j.recordsByOp = reg.NewCounterVec("perfplay_journal_records_total",
			"Job-journal records appended, by transition op.", "op")
		j.bytesTotal = reg.NewCounter("perfplay_journal_appended_bytes_total",
			"Bytes appended to the job journal (frames included).")
		j.compactions = reg.NewCounter("perfplay_journal_compactions_total",
			"Job-journal compactions (live state rewritten, old segments deleted).")
		j.errorsTotal = reg.NewCounter("perfplay_journal_errors_total",
			"Job-journal append or compaction failures (durability degraded).")
		reg.NewGaugeFunc("perfplay_journal_segments",
			"Job-journal segment files on disk.", func() float64 {
				return float64(j.Stats().Segments)
			})
		reg.NewGaugeFunc("perfplay_journal_live_jobs",
			"Jobs the journal would recover after a crash right now.", func() float64 {
				return float64(j.Stats().LiveJobs)
			})
		reg.NewGaugeFunc("perfplay_journal_dead_ratio",
			"Fraction of journal records no longer contributing to live state.", func() float64 {
				return j.Stats().DeadRatio
			})
		reg.NewGaugeFunc("perfplay_journal_size_bytes",
			"Job-journal bytes on disk across all segments.", func() float64 {
				return float64(j.Stats().Bytes)
			})
	}
	if err := j.replay(); err != nil {
		return nil, err
	}
	return j, nil
}

func segmentName(seq int) string { return fmt.Sprintf("journal-%08d.wal", seq) }

// segmentSeq parses a segment filename; ok=false for foreign files.
func segmentSeq(name string) (int, bool) {
	var seq int
	if n, err := fmt.Sscanf(name, "journal-%d.wal", &seq); n != 1 || err != nil {
		return 0, false
	}
	if !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	return seq, true
}

// replay loads every segment and opens the last (or a fresh first one)
// for appending.
func (j *Journal) replay() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := segmentSeq(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	for i, seq := range seqs {
		if err := j.replaySegment(seq, i == len(seqs)-1); err != nil {
			return err
		}
	}
	j.segments = seqs
	if len(seqs) == 0 {
		return j.openSegment(1)
	}
	// Re-open the last segment for appending, positioned at its
	// (possibly truncated) end.
	last := seqs[len(seqs)-1]
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.active = f
	j.activeSeq = last
	return nil
}

// replaySegment reads one segment, applying every record. last selects
// the torn-tail salvage semantics.
func (j *Journal) replaySegment(seq int, last bool) error {
	path := filepath.Join(j.dir, segmentName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	size := int64(len(data))
	off := int64(0)
	for off < size {
		// A frame cut short (header or payload) is a torn tail when it
		// runs to EOF of the final segment; anywhere else it's
		// corruption the fsync contract says cannot happen.
		salvage := func(reason string) error {
			if !last {
				return fmt.Errorf("%w: %s at %s offset %d (not the final segment)", ErrCorrupt, reason, segmentName(seq), off)
			}
			if err := os.Truncate(path, off); err != nil {
				return fmt.Errorf("journal: truncating torn tail of %s: %w", segmentName(seq), err)
			}
			size = off
			j.truncated = true
			return nil
		}
		if size-off < headerBytes {
			if err := salvage("truncated frame header"); err != nil {
				return err
			}
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxRecord {
			if err := salvage(fmt.Sprintf("implausible record length %d", length)); err != nil {
				return err
			}
			break
		}
		if size-off-headerBytes < length {
			if err := salvage("truncated record payload"); err != nil {
				return err
			}
			break
		}
		payload := data[off+headerBytes : off+headerBytes+length]
		if crc32.ChecksumIEEE(payload) != sum {
			// A bad checksum on the very last frame of the final
			// segment is a torn write of the payload; anywhere earlier
			// it is silent corruption of an acknowledged record.
			if last && off+headerBytes+length == size {
				if err := salvage("checksum mismatch on torn tail"); err != nil {
					return err
				}
				break
			}
			return fmt.Errorf("%w: checksum mismatch at %s offset %d", ErrCorrupt, segmentName(seq), off)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w: undecodable record at %s offset %d: %v", ErrCorrupt, segmentName(seq), off, err)
		}
		j.apply(rec)
		j.records++
		off += headerBytes + length
	}
	j.totalLen += size
	if last {
		j.activeLen = size
	}
	return nil
}

// apply folds one record into live state.
func (j *Journal) apply(rec Record) {
	switch {
	case rec.Op == OpAdmitted:
		lj, ok := j.live[rec.Job]
		if !ok {
			lj = &liveJob{}
			j.live[rec.Job] = lj
			j.order = append(j.order, rec.Job)
			j.liveRecs++
		}
		// Upsert: a re-admit at recovery refreshes spec/meta and resets
		// any stale claim (the job is back in a queue).
		if len(rec.Spec) > 0 {
			lj.spec = rec.Spec
		}
		if rec.Meta != nil {
			lj.meta = rec.Meta
		}
		if lj.claimed {
			lj.claimed, lj.thief = false, ""
			j.liveRecs--
		}
	case rec.Op == OpClaimed:
		if lj, ok := j.live[rec.Job]; ok && !lj.claimed {
			lj.claimed, lj.thief = true, rec.Thief
			j.liveRecs++
		}
	case rec.Op == OpRequeued:
		if lj, ok := j.live[rec.Job]; ok && lj.claimed {
			lj.claimed, lj.thief = false, ""
			j.liveRecs--
		}
	case terminalOp(rec.Op):
		if lj, ok := j.live[rec.Job]; ok {
			if lj.claimed {
				j.liveRecs--
			}
			j.liveRecs--
			delete(j.live, rec.Job)
		}
	}
}

// Live returns the replayed non-terminal jobs in admit order.
func (j *Journal) Live() []LiveJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]LiveJob, 0, len(j.live))
	for _, id := range j.order {
		lj, ok := j.live[id]
		if !ok {
			continue
		}
		out = append(out, LiveJob{
			Job:     id,
			Spec:    lj.spec,
			Meta:    lj.meta,
			Claimed: lj.claimed,
			Thief:   lj.thief,
		})
	}
	return out
}

// Append commits one record: framed, written, fsynced, applied. The
// record is durable when Append returns nil.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if err := j.appendLocked(rec); err != nil {
		if j.errorsTotal != nil {
			j.errorsTotal.Inc()
		}
		return err
	}
	if j.recordsByOp != nil {
		j.recordsByOp.With(rec.Op).Inc()
	}
	// Housekeeping after the durable write: compact when mostly dead,
	// else rotate an oversized active segment. Failures here degrade
	// space reclamation, never durability — the record is on disk.
	if err := j.maybeCompactLocked(); err != nil {
		if j.errorsTotal != nil {
			j.errorsTotal.Inc()
		}
		return nil
	}
	if j.activeLen >= j.opts.SegmentBytes {
		if err := j.openSegment(j.activeSeq + 1); err != nil && j.errorsTotal != nil {
			j.errorsTotal.Inc()
		}
	}
	return nil
}

func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("journal: record %d bytes exceeds %d", len(payload), maxRecord)
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[headerBytes:], payload)
	return buf, nil
}

func (j *Journal) appendLocked(rec Record) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	if _, err := j.active.Write(buf); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.active.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	j.activeLen += int64(len(buf))
	j.totalLen += int64(len(buf))
	j.records++
	j.apply(rec)
	if j.bytesTotal != nil {
		j.bytesTotal.Add(float64(len(buf)))
	}
	return nil
}

// openSegment closes the active segment (if any) and starts a fresh
// one with the given sequence number.
func (j *Journal) openSegment(seq int) error {
	if j.active != nil {
		j.active.Close()
	}
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(seq)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.active = f
	j.activeSeq = seq
	j.activeLen = 0
	j.segments = append(j.segments, seq)
	j.syncDir()
	return nil
}

// syncDir best-effort fsyncs the journal directory so segment
// creations and renames are themselves durable.
func (j *Journal) syncDir() {
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// maybeCompactLocked rewrites live state into a fresh segment and
// deletes every older one, once the journal is large enough and mostly
// dead.
func (j *Journal) maybeCompactLocked() error {
	if j.records < j.opts.MinCompactRecords {
		return nil
	}
	dead := float64(j.records-j.liveRecs) / float64(j.records)
	if dead < j.opts.CompactRatio {
		return nil
	}
	seq := j.activeSeq + 1
	path := filepath.Join(j.dir, segmentName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	var written int64
	var nrecs int
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	for _, lj := range j.liveSnapshotLocked() {
		recs := []Record{{Op: OpAdmitted, Job: lj.Job, Spec: lj.Spec, Meta: lj.Meta}}
		if lj.Claimed {
			recs = append(recs, Record{Op: OpClaimed, Job: lj.Job, Thief: lj.Thief})
		}
		for _, rec := range recs {
			buf, err := frame(rec)
			if err != nil {
				return fail(err)
			}
			if _, err := f.Write(buf); err != nil {
				return fail(err)
			}
			written += int64(len(buf))
			nrecs++
		}
	}
	if !j.opts.NoSync {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail(err)
	}
	j.syncDir()
	// The compacted segment is durable under its final name; everything
	// older is now redundant. From here on, failures only leak files.
	old := j.segments
	if j.active != nil {
		j.active.Close()
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: reopen: %w", err)
	}
	j.active = af
	j.activeSeq = seq
	j.activeLen = written
	j.totalLen = written
	j.segments = []int{seq}
	j.records = nrecs
	j.liveRecs = nrecs
	j.compacted++
	if j.compactions != nil {
		j.compactions.Inc()
	}
	for _, s := range old {
		_ = os.Remove(filepath.Join(j.dir, segmentName(s)))
	}
	// Drop tombstoned IDs from the admit-order slice while we're here.
	keep := j.order[:0]
	for _, id := range j.order {
		if _, ok := j.live[id]; ok {
			keep = append(keep, id)
		}
	}
	j.order = keep
	j.syncDir()
	return nil
}

// liveSnapshotLocked is Live without locking (for compaction).
func (j *Journal) liveSnapshotLocked() []LiveJob {
	out := make([]LiveJob, 0, len(j.live))
	for _, id := range j.order {
		lj, ok := j.live[id]
		if !ok {
			continue
		}
		out = append(out, LiveJob{Job: id, Spec: lj.spec, Meta: lj.meta, Claimed: lj.claimed, Thief: lj.thief})
	}
	return out
}

// Stats summarizes the journal for /healthz.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Stats{
		Segments:      len(j.segments),
		Records:       j.records,
		LiveJobs:      len(j.live),
		Bytes:         j.totalLen,
		Compactions:   j.compacted,
		TruncatedTail: j.truncated,
	}
	if j.records > 0 {
		st.DeadRatio = float64(j.records-j.liveRecs) / float64(j.records)
	}
	return st
}

// Close syncs and closes the active segment. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.active == nil {
		return nil
	}
	var err error
	if !j.opts.NoSync {
		err = j.active.Sync()
	}
	if cerr := j.active.Close(); err == nil {
		err = cerr
	}
	j.active = nil
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}
