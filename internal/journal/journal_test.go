package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testOpts keeps tests fast: no fsync (the process outlives every
// assertion) and default rotation/compaction unless overridden.
func testOpts() Options { return Options{NoSync: true} }

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func mustAppend(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

func admitted(id string) Record {
	return Record{Op: OpAdmitted, Job: id, Spec: json.RawMessage(`{"app":"pbzip2"}`), Meta: map[string]string{"trace_id": "t-" + id}}
}

func liveIDs(j *Journal) []string {
	var ids []string
	for _, lj := range j.Live() {
		ids = append(ids, lj.Job)
	}
	return ids
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOpts())
	mustAppend(t, j,
		admitted("a"), admitted("b"), admitted("c"), admitted("d"),
		Record{Op: OpClaimed, Job: "b", Thief: "http://thief:1"},
		Record{Op: OpSettled, Job: "a"},
		Record{Op: OpClaimed, Job: "c", Thief: "http://thief:2"},
		Record{Op: OpRequeued, Job: "c"}, // lease expired, back in queue
		Record{Op: OpFailed, Job: "d"},
	)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := mustOpen(t, dir, testOpts())
	defer j2.Close()
	live := j2.Live()
	if got, want := len(live), 2; got != want {
		t.Fatalf("live jobs = %d, want %d (%+v)", got, want, live)
	}
	// Admit order: b before c.
	if live[0].Job != "b" || live[1].Job != "c" {
		t.Fatalf("live order = %s,%s; want b,c", live[0].Job, live[1].Job)
	}
	if !live[0].Claimed || live[0].Thief != "http://thief:1" {
		t.Errorf("b = %+v, want claimed by http://thief:1", live[0])
	}
	if live[1].Claimed {
		t.Errorf("c = %+v, want unclaimed (requeued)", live[1])
	}
	if string(live[0].Spec) != `{"app":"pbzip2"}` {
		t.Errorf("spec = %s", live[0].Spec)
	}
	if live[1].Meta["trace_id"] != "t-c" {
		t.Errorf("meta = %v", live[1].Meta)
	}
}

// TestReplayIdempotence: opening the same log twice (no writes in
// between) yields the same state — and so does a recovery-style
// re-admission of the live jobs, which is what the daemon does at boot.
func TestReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOpts())
	mustAppend(t, j,
		admitted("a"), admitted("b"), admitted("c"),
		Record{Op: OpClaimed, Job: "a", Thief: "x"},
		Record{Op: OpSettled, Job: "b"},
	)
	j.Close()

	j2 := mustOpen(t, dir, testOpts())
	first := j2.Live()
	// The daemon re-admits recovered jobs through the same journal;
	// replaying those extra records must not change the state.
	for _, lj := range first {
		mustAppend(t, j2, Record{Op: OpAdmitted, Job: lj.Job, Spec: lj.Spec, Meta: lj.Meta})
	}
	j2.Close()

	j3 := mustOpen(t, dir, testOpts())
	defer j3.Close()
	second := j3.Live()
	if len(first) != len(second) {
		t.Fatalf("replay not idempotent: %d live then %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Job != second[i].Job {
			t.Errorf("live[%d] = %s, then %s", i, first[i].Job, second[i].Job)
		}
		// Re-admission resets claims by design: the job is back in a
		// queue, not out on a lease.
		if second[i].Claimed {
			t.Errorf("live[%d] %s still claimed after re-admission", i, second[i].Job)
		}
	}
}

// TestTruncatedFinalRecord: a crash mid-append leaves a torn tail; Open
// salvages everything before it and the journal stays appendable.
func TestTruncatedFinalRecord(t *testing.T) {
	for _, cut := range []int64{1, 5, 11} { // mid-header, mid-header+, mid-payload
		dir := t.TempDir()
		j := mustOpen(t, dir, testOpts())
		mustAppend(t, j, admitted("a"), admitted("b"))
		sizeBefore := j.Stats().Bytes
		mustAppend(t, j, admitted("torn"))
		j.Close()

		seg := filepath.Join(dir, segmentName(1))
		if err := os.Truncate(seg, sizeBefore+cut); err != nil {
			t.Fatal(err)
		}
		j2, err := Open(dir, testOpts())
		if err != nil {
			t.Fatalf("cut=%d: Open after torn tail: %v", cut, err)
		}
		if got := liveIDs(j2); len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Fatalf("cut=%d: live = %v, want [a b]", cut, got)
		}
		st := j2.Stats()
		if !st.TruncatedTail {
			t.Errorf("cut=%d: TruncatedTail not reported", cut)
		}
		// The journal must keep working where the tail was cut.
		mustAppend(t, j2, admitted("after"))
		j2.Close()
		j3 := mustOpen(t, dir, testOpts())
		if got := liveIDs(j3); len(got) != 3 || got[2] != "after" {
			t.Fatalf("cut=%d: live after reopen = %v, want [a b after]", cut, got)
		}
		j3.Close()
	}
}

// TestCorruptChecksumMidSegment: damage to an acknowledged record —
// anywhere other than the final frame — must fail Open with a clear
// error, never silently drop committed jobs.
func TestCorruptChecksumMidSegment(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOpts())
	mustAppend(t, j, admitted("a"), admitted("b"), admitted("c"))
	j.Close()

	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the FIRST record's payload.
	length := binary.LittleEndian.Uint32(data)
	data[headerBytes+length/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, testOpts())
	if err == nil {
		t.Fatal("Open succeeded over a corrupt mid-segment record")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), segmentName(1)) || !strings.Contains(err.Error(), "offset") {
		t.Errorf("err %q should name the segment and offset", err)
	}
}

// A checksum-damaged FINAL frame is indistinguishable from a torn
// write of that frame's payload — salvaged, not fatal.
func TestCorruptChecksumOnFinalRecordSalvaged(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOpts())
	mustAppend(t, j, admitted("a"), admitted("torn"))
	j.Close()

	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // damage the last frame's payload tail
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("Open after torn final frame: %v", err)
	}
	defer j2.Close()
	if got := liveIDs(j2); len(got) != 1 || got[0] != "a" {
		t.Fatalf("live = %v, want [a]", got)
	}
	if !j2.Stats().TruncatedTail {
		t.Error("TruncatedTail not reported")
	}
}

// Truncation anywhere but the final segment means a whole later segment
// exists past the damage — that is corruption, not a torn tail.
func TestTruncationInNonFinalSegmentFailsClosed(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 1 // rotate after every record
	opts.CompactRatio = 2 // never compact
	j := mustOpen(t, dir, opts)
	mustAppend(t, j, admitted("a"), admitted("b"), admitted("c"))
	j.Close()

	// Segment 1 holds record "a"; cut into it.
	seg := filepath.Join(dir, segmentName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, opts)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestCompactionPreservesLiveClaims: compaction rewrites live state —
// including the claimed flag and thief — and deletes old segments.
func TestCompactionPreservesLiveClaims(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.MinCompactRecords = 8
	opts.CompactRatio = 0.5
	j := mustOpen(t, dir, opts)

	mustAppend(t, j, admitted("keep-queued"), admitted("keep-claimed"))
	mustAppend(t, j, Record{Op: OpClaimed, Job: "keep-claimed", Thief: "http://thief:9"})
	// Churn enough settled jobs to push the dead ratio past 0.5.
	for _, id := range []string{"x1", "x2", "x3", "x4", "x5"} {
		mustAppend(t, j, admitted(id), Record{Op: OpSettled, Job: id})
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after churn: %+v", st)
	}
	if st.Segments != 1 {
		t.Errorf("segments = %d after compaction, want 1", st.Segments)
	}
	if st.DeadRatio >= opts.CompactRatio {
		t.Errorf("dead ratio = %v, want < %v after compaction", st.DeadRatio, opts.CompactRatio)
	}

	// Only the compacted segment may remain on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("dir holds %d files after compaction, want 1", len(entries))
	}
	j.Close()

	j2 := mustOpen(t, dir, opts)
	defer j2.Close()
	live := j2.Live()
	if len(live) != 2 {
		t.Fatalf("live = %v, want keep-queued, keep-claimed", liveIDs(j2))
	}
	if live[0].Job != "keep-queued" || live[0].Claimed {
		t.Errorf("live[0] = %+v, want unclaimed keep-queued", live[0])
	}
	if live[1].Job != "keep-claimed" || !live[1].Claimed || live[1].Thief != "http://thief:9" {
		t.Errorf("live[1] = %+v, want keep-claimed claimed by http://thief:9", live[1])
	}
	if live[1].Meta["trace_id"] != "t-keep-claimed" {
		t.Errorf("meta lost in compaction: %v", live[1].Meta)
	}
}

// TestSegmentRotation: the active segment rotates past SegmentBytes and
// replay walks all segments in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 64 // tiny: rotate every record or two
	opts.CompactRatio = 2  // never compact; rotation is the subject
	j := mustOpen(t, dir, opts)
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		mustAppend(t, j, admitted(id))
	}
	if st := j.Stats(); st.Segments < 2 {
		t.Fatalf("segments = %d, want rotation", st.Segments)
	}
	j.Close()

	j2 := mustOpen(t, dir, opts)
	defer j2.Close()
	if got := liveIDs(j2); len(got) != 5 || got[0] != "a" || got[4] != "e" {
		t.Fatalf("live = %v, want [a..e] in order", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j := mustOpen(t, t.TempDir(), testOpts())
	j.Close()
	if err := j.Append(admitted("late")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, dir, testOpts())
	defer j.Close()
	mustAppend(t, j, admitted("a"))
	if got := liveIDs(j); len(got) != 1 {
		t.Fatalf("live = %v", got)
	}
}
