package clustersim

import (
	"fmt"
	"strings"
)

// NodeReport is one node's slice of the run.
type NodeReport struct {
	Node            string `json:"node"`
	CompletedLocal  int    `json:"completed_local"`
	CompletedStolen int    `json:"completed_stolen"`
	StolenFrom      int    `json:"stolen_from"` // leases this node granted
	LeasesExpired   int    `json:"leases_expired"`
	Probes          int    `json:"probes"`
	Claims          int    `json:"claims"`
	HintedClaims    int    `json:"hinted_claims"`
	WarmRuns        int    `json:"warm_runs"`
	DepthP50        int64  `json:"queue_depth_p50"`
	DepthP90        int64  `json:"queue_depth_p90"`
	DepthMax        int64  `json:"queue_depth_max"`
	Crashed         bool   `json:"crashed,omitempty"`
}

// Report is the deterministic outcome of one simulated run: every
// field derives from seeded draws and the event order, so the same
// config renders the same bytes.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	Jobs       int `json:"jobs"`
	Completed  int `json:"completed"`
	Rejected   int `json:"rejected"`
	Lost       int `json:"lost"`
	Unfinished int `json:"unfinished"`
	// Duplicates are executions whose lease expired before settle — the
	// job ran twice and only the re-run counted.
	Duplicates int `json:"duplicates"`
	// Orphans are stolen jobs finished after their owner crashed: work
	// done, result undeliverable.
	Orphans int `json:"orphans"`

	// Steal-protocol totals across all nodes.
	Claims        int `json:"claims"`
	HintedClaims  int `json:"hinted_claims"`
	LeasesExpired int `json:"leases_expired"`
	Redirects     int `json:"redirects"`
	WarmRuns      int `json:"warm_runs"`

	LatencyP50 int64 `json:"latency_p50_ms"`
	LatencyP90 int64 `json:"latency_p90_ms"`
	LatencyP99 int64 `json:"latency_p99_ms"`
	LatencyMax int64 `json:"latency_max_ms"`
	// MakespanMS is when the last completion landed.
	MakespanMS int64 `json:"makespan_ms"`

	// Cache is the cache-layer activity; nil (and unrendered) for
	// legacy scenarios, keeping their reports byte-stable.
	Cache *CacheReport `json:"cache,omitempty"`
	// Violations are the invariant checker's findings. Always rendered
	// when non-empty — a shipped scenario producing any is a bug.
	Violations []string `json:"violations,omitempty"`

	Nodes []NodeReport `json:"nodes"`
}

// CacheReport totals the cluster cache layer's activity for one run.
type CacheReport struct {
	Probes        int `json:"probes"`
	RemoteHits    int `json:"remote_hits"`
	LocalHits     int `json:"local_hits"`
	TableImports  int `json:"table_imports"`
	ProbeTimeouts int `json:"probe_timeouts"`
	Degraded      int `json:"degraded_local"`
	AdmissionHops int `json:"admission_hops"`
}

// report assembles the Report once the event loop stops.
func (c *Cluster) report() *Report {
	r := &Report{
		Scenario:   c.cfg.Scenario,
		Seed:       c.cfg.Seed,
		Jobs:       len(c.jobs),
		Rejected:   c.rejected,
		Lost:       c.lostJobs,
		Duplicates: c.duplicates,
		Orphans:    c.orphans,
		Redirects:  c.redirects,
		Completed:  len(c.latencies),
		Unfinished: len(c.jobs) - c.resolved,
		LatencyP50: percentile(c.latencies, 50),
		LatencyP90: percentile(c.latencies, 90),
		LatencyP99: percentile(c.latencies, 99),
		LatencyMax: percentile(c.latencies, 100),
		MakespanMS: c.lastCompleted,
	}
	if c.cfg.CacheLayer {
		r.Cache = &CacheReport{
			Probes:        c.cache.probes,
			RemoteHits:    c.cache.remoteHits,
			LocalHits:     c.cache.localHits,
			TableImports:  c.cache.tableImports,
			ProbeTimeouts: c.cache.probeTimeouts,
			Degraded:      c.cache.degraded,
			AdmissionHops: c.cache.admissionHops,
		}
	}
	for _, n := range c.nodes {
		st := n.stealer.Stats()
		nr := NodeReport{
			Node:            fmt.Sprintf("node-%d", n.idx),
			CompletedLocal:  n.completedLocal,
			CompletedStolen: n.completedStolen,
			StolenFrom:      int(n.metrics.LeasesGranted.Int()),
			LeasesExpired:   int(n.metrics.LeasesExpired.Int()),
			Probes:          st.Probes,
			Claims:          st.Claims,
			HintedClaims:    st.HintedClaims,
			WarmRuns:        n.warmRuns,
			DepthP50:        percentile(n.depthSamples, 50),
			DepthP90:        percentile(n.depthSamples, 90),
			DepthMax:        percentile(n.depthSamples, 100),
			Crashed:         n.crashed,
		}
		r.Claims += nr.Claims
		r.HintedClaims += nr.HintedClaims
		r.LeasesExpired += nr.LeasesExpired
		r.WarmRuns += nr.WarmRuns
		r.Nodes = append(r.Nodes, nr)
	}
	c.inv.finish(r)
	return r
}

// String renders the report as the fixed-layout text the CLI prints
// and the determinism smoke diffs. Integer-only formatting: nothing
// here depends on floating-point rendering.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster-sim scenario=%s seed=%d\n", r.Scenario, r.Seed)
	fmt.Fprintf(&b, "  jobs %d: completed=%d rejected=%d lost=%d unfinished=%d duplicates=%d orphans=%d\n",
		r.Jobs, r.Completed, r.Rejected, r.Lost, r.Unfinished, r.Duplicates, r.Orphans)
	fmt.Fprintf(&b, "  latency ms: p50=%d p90=%d p99=%d max=%d makespan=%d\n",
		r.LatencyP50, r.LatencyP90, r.LatencyP99, r.LatencyMax, r.MakespanMS)
	fmt.Fprintf(&b, "  steals: claims=%d hinted=%d lease-expired=%d redirects=%d warm-runs=%d\n",
		r.Claims, r.HintedClaims, r.LeasesExpired, r.Redirects, r.WarmRuns)
	if r.Cache != nil {
		fmt.Fprintf(&b, "  cache: probes=%d remote-hits=%d local-hits=%d table-imports=%d timeouts=%d degraded=%d admission-hops=%d\n",
			r.Cache.Probes, r.Cache.RemoteHits, r.Cache.LocalHits, r.Cache.TableImports,
			r.Cache.ProbeTimeouts, r.Cache.Degraded, r.Cache.AdmissionHops)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  INVARIANT VIOLATION: %s\n", v)
	}
	for _, n := range r.Nodes {
		crashed := ""
		if n.Crashed {
			crashed = " CRASHED"
		}
		fmt.Fprintf(&b, "  %s: local=%d stolen-in=%d stolen-out=%d expired=%d probes=%d claims=%d hinted=%d warm=%d depth p50/p90/max=%d/%d/%d%s\n",
			n.Node, n.CompletedLocal, n.CompletedStolen, n.StolenFrom, n.LeasesExpired,
			n.Probes, n.Claims, n.HintedClaims, n.WarmRuns, n.DepthP50, n.DepthP90, n.DepthMax, crashed)
	}
	return b.String()
}
