package clustersim

import (
	"strings"
	"testing"
)

// requireClean fails the test if the invariant checker flagged anything
// — every shipped cache scenario must run violation-free.
func requireClean(t *testing.T, r *Report) {
	t.Helper()
	if len(r.Violations) != 0 {
		t.Fatalf("invariant violations:\n%s", strings.Join(r.Violations, "\n"))
	}
}

// TestCacheWarmProbesSettleJobs: the warm island's results must reach
// the cold nodes through the real cachepolicy.Prober — remote hits for
// cached results, table imports (and so warm runs) for digests whose
// results the island's LRU already evicted — and the run must stay
// invariant-clean.
func TestCacheWarmProbesSettleJobs(t *testing.T) {
	r := MustRun(short(ScenarioCacheWarm, 42))
	requireClean(t, r)
	if r.Cache == nil {
		t.Fatal("cache scenario produced no cache report")
	}
	if r.Cache.RemoteHits == 0 {
		t.Fatalf("no job settled from a peer's result cache:\n%s", r)
	}
	if r.Cache.TableImports == 0 || r.WarmRuns == 0 {
		t.Fatalf("the two-tier miss path (table import → warm run) never fired:\n%s", r)
	}
	if r.Unfinished != 0 {
		t.Fatalf("cache scenario stranded %d jobs:\n%s", r.Unfinished, r)
	}
}

// TestCacheProbingBeatsNoProbing is the lab's reason to exist: on the
// same seeded workload, probing (scenario default) must beat fan-out 0
// (probing disabled) on p90 latency — the cold nodes either fetch the
// warm island's results or re-run everything from scratch.
func TestCacheProbingBeatsNoProbing(t *testing.T) {
	on := MustRun(short(ScenarioCacheWarm, 42))
	offCfg := short(ScenarioCacheWarm, 42)
	offCfg.ProbeFanout = 0
	off := MustRun(offCfg)
	requireClean(t, off)
	if off.Cache.Probes != 0 {
		t.Fatalf("fan-out 0 still probed %d times", off.Cache.Probes)
	}
	if on.LatencyP90 >= off.LatencyP90 {
		t.Fatalf("probing p90=%d not better than no-probing p90=%d", on.LatencyP90, off.LatencyP90)
	}
}

// TestPartitionBurnsTimeoutsThenHeals: during the partition window,
// probes across severed links must burn the probe timeout (the knob's
// whole cost model), no artifact may be delivered across a severed
// link (invariant), and the run must still drain — partition costs
// latency, never correctness.
func TestPartitionBurnsTimeoutsThenHeals(t *testing.T) {
	cfg := short(ScenarioPartition, 42)
	// The short run ends arrivals at 15s; open the partition early so
	// plenty of probe traffic crosses the window.
	cfg.PartitionAtMS = 3_000
	cfg.HealAtMS = 12_000
	r := MustRun(cfg)
	requireClean(t, r)
	if r.Cache.ProbeTimeouts == 0 {
		t.Fatalf("partition window burned no probe timeouts:\n%s", r)
	}
	if r.Unfinished != 0 {
		t.Fatalf("partition stranded %d jobs:\n%s", r.Unfinished, r)
	}
}

// TestAdmissionWalksMultiHopChains: with near-total skew over a
// shallow queue, admission must follow Retry-Peer chains (the real
// cachepolicy.FollowRedirects), and the chain bound must hold — the
// invariant checker independently recounts every chain.
func TestAdmissionWalksMultiHopChains(t *testing.T) {
	r := MustRun(short(ScenarioAdmission, 42))
	requireClean(t, r)
	if r.Cache.AdmissionHops == 0 {
		t.Fatalf("admission pressure produced no Retry-Peer hops:\n%s", r)
	}
	if r.Redirects == 0 {
		t.Fatalf("no redirects counted:\n%s", r)
	}
}

// TestHintBreadthMatters: cache hints are how a probe finds the right
// peer without brute force. With hints off, the same workload at the
// same fan-out must hit strictly less often or probe strictly more.
func TestHintBreadthMatters(t *testing.T) {
	withHints := MustRun(short(ScenarioAdmission, 42))
	cfg := short(ScenarioAdmission, 42)
	cfg.HintBreadth = 0
	noHints := MustRun(cfg)
	requireClean(t, noHints)
	if noHints.Cache.RemoteHits >= withHints.Cache.RemoteHits {
		t.Fatalf("hints off remote-hits=%d >= hints on remote-hits=%d",
			noHints.Cache.RemoteHits, withHints.Cache.RemoteHits)
	}
}

// TestLegacyScenariosHaveNoCacheSection: the cache layer must be
// invisible to legacy scenarios — no cache report, no cache line in
// the rendering — so PR-era policy tables stay reproducible.
func TestLegacyScenariosHaveNoCacheSection(t *testing.T) {
	for _, sc := range []string{ScenarioUniform, ScenarioSkewed, ScenarioSlowNode, ScenarioCrash} {
		r := MustRun(short(sc, 42))
		requireClean(t, r)
		if r.Cache != nil {
			t.Fatalf("%s: legacy scenario grew a cache report", sc)
		}
		if strings.Contains(r.String(), "cache:") {
			t.Fatalf("%s: legacy report renders a cache line:\n%s", sc, r)
		}
	}
}

// TestCacheSweepRanksAndCovers: the cache sweep must run its full
// rectangular grid, rank by p90 then makespan, include the fan-out 0
// baseline, and reject non-cache scenarios.
func TestCacheSweepRanksAndCovers(t *testing.T) {
	cfg := short(ScenarioCacheWarm, 42)
	cfg.DurationMS = 4_000
	rs, err := CacheSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := len(cacheSweepFanouts) * len(cacheSweepTimeouts) * len(cacheSweepBreadths) * len(cacheSweepHops)
	if len(rs) != wantRuns {
		t.Fatalf("sweep ran %d grid points, want %d", len(rs), wantRuns)
	}
	for i := 1; i < len(rs); i++ {
		a, b := rs[i-1].Report, rs[i].Report
		if a.LatencyP90 > b.LatencyP90 {
			t.Fatalf("rank %d (p90=%d) worse than rank %d (p90=%d)", i, a.LatencyP90, i+1, b.LatencyP90)
		}
	}
	baseline := false
	for _, r := range rs {
		if r.ProbeFanout == 0 {
			baseline = true
		}
		requireClean(t, r.Report)
	}
	if !baseline {
		t.Fatal("sweep grid lost its fan-out 0 baseline")
	}
	out := RenderCacheSweep(ScenarioCacheWarm, 42, rs)
	if !strings.Contains(out, "fanout") || !strings.Contains(out, "timeout-ms") {
		t.Fatalf("sweep table missing knob columns:\n%s", out)
	}

	if _, err := CacheSweep(short(ScenarioUniform, 42)); err == nil {
		t.Fatal("cache sweep accepted a non-cache scenario")
	}
}

// --- invariant checker self-tests: a checker that cannot fail checks
// nothing. Feed it each violation class directly and watch it flag. ---

func invHarness() (*Cluster, *invariants) {
	c := newCluster(DefaultConfig(ScenarioCacheWarm, 1))
	return c, c.inv
}

func TestInvariantDoubleSettleFires(t *testing.T) {
	_, inv := invHarness()
	inv.terminalOnce("job-1", "completed")
	inv.terminalOnce("job-1", "rejected")
	if len(inv.violations) != 1 || !strings.Contains(inv.violations[0], "settled twice") {
		t.Fatalf("double settle not flagged: %v", inv.violations)
	}
}

func TestInvariantUnsourcedServeFires(t *testing.T) {
	c, inv := invHarness()
	cold := c.nodes[len(c.nodes)-1]
	inv.served("result", cold, c.nodes[0], "sha256:never|sim")
	if len(inv.violations) != 1 || !strings.Contains(inv.violations[0], "never computed or imported") {
		t.Fatalf("unsourced serve not flagged: %v", inv.violations)
	}
	// After a legitimate import, the same serve is clean.
	inv.importedResult(cold, "sha256:never|sim")
	inv.served("result", cold, c.nodes[0], "sha256:never|sim")
	if len(inv.violations) != 1 {
		t.Fatalf("legitimate serve flagged: %v", inv.violations)
	}
}

func TestInvariantPartitionedServeFires(t *testing.T) {
	cfg := DefaultConfig(ScenarioPartition, 1)
	c := newCluster(cfg)
	c.now = cfg.PartitionAtMS + 1 // inside the window
	warm, cold := c.nodes[0], c.nodes[cfg.WarmNodes]
	key := resultKey(digestPool(cfg.DigestPool)[0])
	c.inv.served("result", warm, cold, key)
	if len(c.inv.violations) != 1 || !strings.Contains(c.inv.violations[0], "partitioned link") {
		t.Fatalf("cross-partition delivery not flagged: %v", c.inv.violations)
	}
	// The bridge (last node) still reaches both sides.
	c.inv.served("result", warm, c.nodes[cfg.Nodes-1], key)
	if len(c.inv.violations) != 1 {
		t.Fatalf("bridge delivery flagged: %v", c.inv.violations)
	}
}

func TestInvariantProbeBoundFires(t *testing.T) {
	_, inv := invHarness()
	inv.probeBound(3, 1, 2)
	if len(inv.violations) != 1 || !strings.Contains(inv.violations[0], "fan-out") {
		t.Fatalf("over-fan-out probe not flagged: %v", inv.violations)
	}
	inv.probeBound(2, 2, 2) // at the bound is legal
	if len(inv.violations) != 1 {
		t.Fatalf("at-bound probe flagged: %v", inv.violations)
	}
}

func TestInvariantChainChecksFire(t *testing.T) {
	_, inv := invHarness()
	cc := inv.chain("job-1")
	cc.visit("sim://node-0", 1)
	cc.visit("sim://node-1", 1)
	cc.visit("sim://node-0", 1) // revisit AND over the bound
	found := strings.Join(inv.violations, "\n")
	if !strings.Contains(found, "revisited") || !strings.Contains(found, "bound is 2") {
		t.Fatalf("chain violations not flagged: %v", inv.violations)
	}
}

func TestInvariantAccountingIdentityFires(t *testing.T) {
	c, inv := invHarness()
	r := &Report{Jobs: 5, Completed: 2, Rejected: 1, Unfinished: 1} // one job leaked
	inv.finish(r)
	if len(r.Violations) == 0 || !strings.Contains(r.Violations[0], "accounting identity") {
		t.Fatalf("broken accounting not flagged: %v", r.Violations)
	}
	_ = c
}
