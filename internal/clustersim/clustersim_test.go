package clustersim

import (
	"strings"
	"testing"
)

// short returns a quicker variant of the default lab config so the
// full scenario matrix stays test-suite friendly.
func short(scenario string, seed int64) Config {
	cfg := DefaultConfig(scenario, seed)
	cfg.DurationMS = 15_000
	cfg.CrashAtMS = 3_000
	return cfg
}

// TestSameSeedByteIdentical is the simulator's load-bearing invariant:
// every shipped scenario, run twice with the same seed, renders the
// same bytes. Policy sweeps, the CI smoke, and every A/B comparison
// rest on this.
func TestSameSeedByteIdentical(t *testing.T) {
	for _, sc := range Scenarios() {
		a := MustRun(short(sc, 42)).String()
		b := MustRun(short(sc, 42)).String()
		if a != b {
			t.Errorf("%s: same seed produced different reports:\n--- first\n%s--- second\n%s", sc, a, b)
		}
	}
}

// TestSeedChangesOutcome guards against the opposite failure: a
// simulator that ignores its seed would pass the determinism test
// while measuring nothing.
func TestSeedChangesOutcome(t *testing.T) {
	a := MustRun(short(ScenarioSkewed, 1)).String()
	b := MustRun(short(ScenarioSkewed, 2)).String()
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical reports:\n%s", a)
	}
}

// TestSkewedArrivalShiftsWork: under skewed arrival, the idle nodes
// must drain node 0's backlog through the real Stealer claim path —
// the acceptance criterion for the whole simulator.
func TestSkewedArrivalShiftsWork(t *testing.T) {
	r := MustRun(short(ScenarioSkewed, 42))
	if r.Claims == 0 {
		t.Fatal("skewed scenario produced zero steals")
	}
	if r.Nodes[0].StolenFrom == 0 {
		t.Fatalf("nothing stolen from the hot node: %+v", r.Nodes[0])
	}
	stolenIn := 0
	for _, n := range r.Nodes[1:] {
		stolenIn += n.CompletedStolen
	}
	if stolenIn == 0 {
		t.Fatalf("idle nodes completed no stolen work:\n%s", r)
	}
	if r.Unfinished != 0 {
		t.Fatalf("backlog did not drain: %d unfinished\n%s", r.Unfinished, r)
	}
}

// TestUniformAccountsEveryJob: the terminal accounts partition the
// generated workload exactly — no job double-counted or leaked.
func TestUniformAccountsEveryJob(t *testing.T) {
	r := MustRun(short(ScenarioUniform, 7))
	if got := r.Completed + r.Rejected + r.Lost + r.Unfinished; got != r.Jobs {
		t.Fatalf("accounts sum to %d, want %d:\n%s", got, r.Jobs, r)
	}
	if r.Unfinished != 0 {
		t.Fatalf("uniform load left %d jobs unfinished:\n%s", r.Unfinished, r)
	}
}

// TestCrashRecoversLeases: when a thief dies holding leases, the
// victims' reapers must expire and re-queue those jobs, and the run
// must still drain — crash costs latency (and the dead node's local
// jobs), never stranded work.
func TestCrashRecoversLeases(t *testing.T) {
	r := MustRun(short(ScenarioCrash, 42))
	crashed := 0
	for _, n := range r.Nodes {
		if n.Crashed {
			crashed++
		}
	}
	if crashed != 1 {
		t.Fatalf("%d nodes marked crashed, want exactly 1:\n%s", crashed, r)
	}
	if r.LeasesExpired == 0 {
		t.Fatalf("crash scenario exercised no lease recovery:\n%s", r)
	}
	if r.Unfinished != 0 {
		t.Fatalf("crash stranded %d jobs:\n%s", r.Unfinished, r)
	}
	if got := r.Completed + r.Rejected + r.Lost; got != r.Jobs {
		t.Fatalf("accounts sum to %d, want %d:\n%s", got, r.Jobs, r)
	}
}

// TestSlowNodeSheds: a 4x-slow node under uniform arrival must end up
// a net steal victim — the fast nodes pull its backlog over.
func TestSlowNodeSheds(t *testing.T) {
	r := MustRun(short(ScenarioSlowNode, 42))
	slow := r.Nodes[len(r.Nodes)-1]
	if slow.StolenFrom == 0 {
		t.Fatalf("nothing stolen from the slow node:\n%s", r)
	}
	if r.Unfinished != 0 {
		t.Fatalf("slow-node backlog did not drain:\n%s", r)
	}
}

// TestHintedStealsFire: with hint-driven stealing on and a small
// digest pool, some claims must be aimed by cache hints; with it off,
// none may be.
func TestHintedStealsFire(t *testing.T) {
	on := short(ScenarioSkewed, 42)
	on.DigestPool = 4 // small pool → thieves warm up fast → hints match
	r := MustRun(on)
	if r.HintedClaims == 0 {
		t.Fatalf("hint-driven stealing never fired:\n%s", r)
	}
	off := on
	off.HintSteals = false
	if r := MustRun(off); r.HintedClaims != 0 {
		t.Fatalf("hints disabled but %d hinted claims counted", r.HintedClaims)
	}
}

// TestReportMentionsEveryNode keeps the rendering honest: one line per
// node, in index order.
func TestReportMentionsEveryNode(t *testing.T) {
	cfg := short(ScenarioUniform, 3)
	cfg.Nodes = 3
	out := MustRun(cfg).String()
	for _, want := range []string{"node-0:", "node-1:", "node-2:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestValidation rejects configs the engine cannot run.
func TestValidation(t *testing.T) {
	bad := []Config{
		{Scenario: "nope"},
		func() Config { c := DefaultConfig(ScenarioUniform, 1); c.Nodes = 1; return c }(),
		func() Config { c := DefaultConfig(ScenarioCrash, 1); c.CrashNode = 99; return c }(),
		func() Config { c := DefaultConfig(ScenarioUniform, 1); c.LeaseMS = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}
