// Package clustersim is the offline policy lab for perfplay's cluster
// scheduling: a discrete-event simulator that stands up N virtual
// perfplayd nodes and runs seeded workload scenarios against the REAL
// policy code — scheduler.Queue admission and leases, scheduler.Stealer
// probe/claim ordering, scheduler.Gossip views, scheduler.IdlestPeer
// admission redirects, and pipeline.RangeLedger guided self-scheduling
// — with only the transport and the clock replaced. The same Stealer
// loop that steals over HTTP in production steals over an in-memory
// fabric here, injected through the scheduler.Transport seam; nothing
// scheduling-relevant is reimplemented, so a policy knob that wins in
// the simulator is exercising the exact code that ships.
//
// Everything random flows from one scenario seed through a
// subsystem-partitioned RNG (arrival process, job costs, link
// latencies), all time is simulated milliseconds driven by an event
// heap with a total order on (timestamp, kind, sequence), and the
// report renders through integer-only formatting — so the same seed
// produces byte-identical output, run after run, machine after
// machine. That determinism is what makes A/B policy comparisons
// honest: two sweeps differing in one knob see the identical workload.
package clustersim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Scenario names, selectable by Config.Scenario.
const (
	// ScenarioUniform spreads arrivals evenly — the no-stress baseline.
	ScenarioUniform = "uniform"
	// ScenarioSkewed aims most arrivals at node 0; the idle nodes must
	// pull the backlog over via the real steal path.
	ScenarioSkewed = "skewed"
	// ScenarioSlowNode spreads arrivals evenly but makes the last node
	// several times slower, so its backlog must migrate to fast nodes.
	ScenarioSlowNode = "slownode"
	// ScenarioCrash is skewed arrival plus one thief node dying
	// mid-run: its claimed leases must expire on the victims and the
	// jobs re-run to completion.
	ScenarioCrash = "crash"
)

// Scenarios lists every shipped scenario in report order.
func Scenarios() []string {
	return []string{ScenarioUniform, ScenarioSkewed, ScenarioSlowNode, ScenarioCrash}
}

// Config parameterizes one simulated run. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	Scenario string
	Seed     int64
	// Nodes and WorkersPerNode shape the virtual cluster.
	Nodes          int
	WorkersPerNode int
	// QueueDepth is each node's admission bound (scheduler.NewQueue).
	QueueDepth int
	// DurationMS bounds the arrival window; the run itself continues
	// until the admitted backlog drains (or the hard cap trips).
	DurationMS int64
	// ArrivalEveryMS is the mean inter-arrival gap across the whole
	// cluster (exponential).
	ArrivalEveryMS int64
	// StealIntervalMS is each node's stealer tick cadence.
	StealIntervalMS int64
	// LeaseMS is the steal-lease duration granted by victims.
	LeaseMS int64
	// ChunkFactor is the RangeLedger guided self-scheduling factor
	// (0 = the pipeline's default).
	ChunkFactor int
	// HintSteals wires Stealer.HasCached so thieves aim at victims
	// advertising digests the thief has warm.
	HintSteals bool
	// SlowFactor multiplies the slow node's chunk durations
	// (ScenarioSlowNode).
	SlowFactor int64
	// CrashNode / CrashAtMS pick the dying node (ScenarioCrash).
	// CrashNode < 0 self-targets: the first time on or after CrashAtMS
	// that any steal lease is outstanding, the thief holding the most
	// leases dies.
	CrashNode int
	CrashAtMS int64
	// DigestPool is how many distinct trace digests the workload draws
	// from — small pools make cache hints matter.
	DigestPool int
}

// DefaultConfig returns the baseline lab cluster for a scenario: four
// 2-worker nodes under a minute of moderate load. The crash scenario
// arrives hotter: the point is to kill a thief mid-steal, which needs
// the thieves saturated with stolen work when the clock hits CrashAtMS.
func DefaultConfig(scenario string, seed int64) Config {
	arrival := int64(100)
	if scenario == ScenarioCrash {
		arrival = 60
	}
	return Config{
		Scenario:        scenario,
		Seed:            seed,
		Nodes:           4,
		WorkersPerNode:  2,
		QueueDepth:      8,
		DurationMS:      60_000,
		ArrivalEveryMS:  arrival,
		StealIntervalMS: 250,
		LeaseMS:         2_000,
		ChunkFactor:     0,
		HintSteals:      true,
		SlowFactor:      4,
		CrashNode:       -1,
		CrashAtMS:       10_000,
		DigestPool:      32,
	}
}

// validate rejects configs the engine cannot run honestly.
func (cfg Config) validate() error {
	switch cfg.Scenario {
	case ScenarioUniform, ScenarioSkewed, ScenarioSlowNode, ScenarioCrash:
	default:
		return fmt.Errorf("unknown scenario %q (want one of %v)", cfg.Scenario, Scenarios())
	}
	if cfg.Nodes < 2 {
		return errors.New("need at least 2 nodes: with one node there is nothing to steal from")
	}
	if cfg.WorkersPerNode < 1 || cfg.QueueDepth < 1 {
		return errors.New("workers and queue depth must be positive")
	}
	if cfg.DurationMS < 1 || cfg.ArrivalEveryMS < 1 || cfg.StealIntervalMS < 1 || cfg.LeaseMS < 1 {
		return errors.New("durations must be positive")
	}
	if cfg.Scenario == ScenarioCrash && cfg.CrashNode >= cfg.Nodes {
		return fmt.Errorf("crash node %d out of range [0,%d) (negative = auto-target)", cfg.CrashNode, cfg.Nodes)
	}
	return nil
}

// Run executes one seeded scenario to completion and returns its
// report. Same config (including seed) → byte-identical report.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := newCluster(cfg)
	c.generateWorkload()
	c.scheduleHousekeeping()
	// Hard cap: a pathological policy (leases never expiring, a crash
	// stranding the whole backlog) must terminate with an honest
	// "unfinished" count rather than spin the heap forever.
	hardCap := cfg.DurationMS*20 + 10*cfg.LeaseMS
	for c.events.Len() > 0 && !c.drained() {
		ev := heap.Pop(&c.events).(*event)
		if ev.at > hardCap {
			break
		}
		c.now = ev.at
		ev.fn()
	}
	return c.report(), nil
}

// MustRun is Run for callers whose config is known valid (tests, the
// sweep grid).
func MustRun(cfg Config) *Report {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
