// Package clustersim is the offline policy lab for perfplay's cluster
// scheduling: a discrete-event simulator that stands up N virtual
// perfplayd nodes and runs seeded workload scenarios against the REAL
// policy code — scheduler.Queue admission and leases, scheduler.Stealer
// probe/claim ordering, scheduler.Gossip views, scheduler.IdlestPeer
// admission redirects, pipeline.RangeLedger guided self-scheduling,
// and (in the cache scenarios) the cluster cache layer —
// cachepolicy.Prober probe ordering/fan-out and the
// cachepolicy.FollowRedirects multi-hop admission chain — with only
// the transport and the clock replaced. The same Stealer loop that
// steals over HTTP in production steals over an in-memory fabric here,
// injected through the scheduler.Transport seam, and the same Prober
// that probes peer caches over HTTP probes them over the virtual-clock
// cache transport; nothing scheduling-relevant is reimplemented, so a
// policy knob that wins in the simulator is exercising the exact code
// that ships. Every scenario additionally runs under an invariant
// checker (invariants.go) whose violations land on the report.
//
// Everything random flows from one scenario seed through a
// subsystem-partitioned RNG (arrival process, job costs, link
// latencies), all time is simulated milliseconds driven by an event
// heap with a total order on (timestamp, kind, sequence), and the
// report renders through integer-only formatting — so the same seed
// produces byte-identical output, run after run, machine after
// machine. That determinism is what makes A/B policy comparisons
// honest: two sweeps differing in one knob see the identical workload.
package clustersim

import (
	"container/heap"
	"errors"
	"fmt"

	"perfplay/internal/cachepolicy"
)

// Scenario names, selectable by Config.Scenario.
const (
	// ScenarioUniform spreads arrivals evenly — the no-stress baseline.
	ScenarioUniform = "uniform"
	// ScenarioSkewed aims most arrivals at node 0; the idle nodes must
	// pull the backlog over via the real steal path.
	ScenarioSkewed = "skewed"
	// ScenarioSlowNode spreads arrivals evenly but makes the last node
	// several times slower, so its backlog must migrate to fast nodes.
	ScenarioSlowNode = "slownode"
	// ScenarioCrash is skewed arrival plus one thief node dying
	// mid-run: its claimed leases must expire on the victims and the
	// jobs re-run to completion.
	ScenarioCrash = "crash"
	// ScenarioCacheWarm enables the cluster cache layer with a warm
	// island: the first WarmNodes nodes hold every digest's result
	// pre-computed, arrivals aim at the cold nodes, and the cold nodes
	// must find the warm results through hint-gossiped cache probes
	// (the real cachepolicy.Prober over a virtual-clock transport).
	ScenarioCacheWarm = "cachewarm"
	// ScenarioPartition is cachewarm plus a partial network partition:
	// for a window mid-run the warm island and the cold nodes cannot
	// reach each other directly, while the last node bridges both sides
	// — A sees B, B cannot see C. Probes across a severed link burn
	// their full timeout, so the probe-timeout knob earns its keep here.
	ScenarioPartition = "partition"
	// ScenarioAdmission aims nearly all arrivals at node 0 with a
	// shallow queue, so admission overflows and submits walk multi-hop
	// Retry-Peer chains — the real cachepolicy.FollowRedirects, hop
	// bound and visited set included.
	ScenarioAdmission = "admission"
)

// Scenarios lists every shipped scenario in report order.
func Scenarios() []string {
	return []string{
		ScenarioUniform, ScenarioSkewed, ScenarioSlowNode, ScenarioCrash,
		ScenarioCacheWarm, ScenarioPartition, ScenarioAdmission,
	}
}

// cacheScenario reports whether a scenario turns the cache layer on by
// default.
func cacheScenario(scenario string) bool {
	switch scenario {
	case ScenarioCacheWarm, ScenarioPartition, ScenarioAdmission:
		return true
	}
	return false
}

// Config parameterizes one simulated run. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	Scenario string
	Seed     int64
	// Nodes and WorkersPerNode shape the virtual cluster.
	Nodes          int
	WorkersPerNode int
	// QueueDepth is each node's admission bound (scheduler.NewQueue).
	QueueDepth int
	// DurationMS bounds the arrival window; the run itself continues
	// until the admitted backlog drains (or the hard cap trips).
	DurationMS int64
	// ArrivalEveryMS is the mean inter-arrival gap across the whole
	// cluster (exponential).
	ArrivalEveryMS int64
	// StealIntervalMS is each node's stealer tick cadence.
	StealIntervalMS int64
	// LeaseMS is the steal-lease duration granted by victims.
	LeaseMS int64
	// ChunkFactor is the RangeLedger guided self-scheduling factor
	// (0 = the pipeline's default).
	ChunkFactor int
	// HintSteals wires Stealer.HasCached so thieves aim at victims
	// advertising digests the thief has warm.
	HintSteals bool
	// SlowFactor multiplies the slow node's chunk durations
	// (ScenarioSlowNode).
	SlowFactor int64
	// CrashNode / CrashAtMS pick the dying node (ScenarioCrash).
	// CrashNode < 0 self-targets: the first time on or after CrashAtMS
	// that any steal lease is outstanding, the thief holding the most
	// leases dies.
	CrashNode int
	CrashAtMS int64
	// DigestPool is how many distinct trace digests the workload draws
	// from — small pools make cache hints matter.
	DigestPool int

	// CacheLayer enables the cluster cache layer: result/table cache
	// probing before cold runs (cachepolicy.Prober) and multi-hop
	// Retry-Peer admission (cachepolicy.FollowRedirects), both running
	// the real policy code over the in-memory transport. Legacy
	// scenarios leave it off and are bit-for-bit unaffected.
	CacheLayer bool
	// ProbeFanout bounds peers probed per cache-missed job. Unlike the
	// daemon (where 0 means "apply the default"), 0 here disables
	// probing entirely — the sweep's no-probe baseline.
	ProbeFanout int
	// ProbeTimeoutMS bounds each individual peer probe; a probe across
	// a partitioned (blackholed) link burns the full timeout.
	ProbeTimeoutMS int64
	// HintBreadth is how many recent result-cache keys each node
	// gossips in its probe responses (0 = no cache hints).
	HintBreadth int
	// MaxHops bounds the Retry-Peer admission chain.
	MaxHops int
	// WarmNodes pre-warms nodes [0, WarmNodes) with every pool digest's
	// result at t=0 (the warm island).
	WarmNodes int
	// PartitionAtMS / HealAtMS bound the partial-partition window
	// (ScenarioPartition): from PartitionAtMS until HealAtMS the warm
	// island and the cold nodes cannot reach each other except through
	// the bridge (the last node).
	PartitionAtMS int64
	HealAtMS      int64
}

// DefaultConfig returns the baseline lab cluster for a scenario: four
// 2-worker nodes under a minute of moderate load. The crash scenario
// arrives hotter: the point is to kill a thief mid-steal, which needs
// the thieves saturated with stolen work when the clock hits CrashAtMS.
func DefaultConfig(scenario string, seed int64) Config {
	arrival := int64(100)
	if scenario == ScenarioCrash {
		arrival = 60
	}
	cfg := Config{
		Scenario:        scenario,
		Seed:            seed,
		Nodes:           4,
		WorkersPerNode:  2,
		QueueDepth:      8,
		DurationMS:      60_000,
		ArrivalEveryMS:  arrival,
		StealIntervalMS: 250,
		LeaseMS:         2_000,
		ChunkFactor:     0,
		HintSteals:      true,
		SlowFactor:      4,
		CrashNode:       -1,
		CrashAtMS:       10_000,
		DigestPool:      32,
	}
	if cacheScenario(scenario) {
		// Cache scenarios start from the shared cachepolicy defaults —
		// the same values the daemon's flags print. The digest pool is
		// sized to the run (~600 arrivals over 64 digests): repeats are
		// common enough for caching to matter, but a cold node keeps
		// discovering new digests for most of the run — coupon-collector
		// pacing — so probe traffic stays alive through the partition
		// window instead of converging in the first few seconds.
		d := cachepolicy.Defaults()
		cfg.CacheLayer = true
		cfg.ProbeFanout = d.ProbeFanout
		cfg.ProbeTimeoutMS = d.ProbeTimeout.Milliseconds()
		cfg.HintBreadth = d.HintKeys
		cfg.MaxHops = d.SubmitHops
		cfg.DigestPool = 64
		cfg.WarmNodes = 2
		switch scenario {
		case ScenarioPartition:
			cfg.PartitionAtMS = 10_000
			cfg.HealAtMS = 40_000
		case ScenarioAdmission:
			// No warm island: the point is organic cache build-up under
			// admission pressure, with shallow queues forcing multi-hop
			// Retry-Peer chains.
			cfg.WarmNodes = 0
			cfg.QueueDepth = 4
			cfg.ArrivalEveryMS = 60
		}
	}
	return cfg
}

// validate rejects configs the engine cannot run honestly.
func (cfg Config) validate() error {
	switch cfg.Scenario {
	case ScenarioUniform, ScenarioSkewed, ScenarioSlowNode, ScenarioCrash,
		ScenarioCacheWarm, ScenarioPartition, ScenarioAdmission:
	default:
		return fmt.Errorf("unknown scenario %q (want one of %v)", cfg.Scenario, Scenarios())
	}
	if cfg.Nodes < 2 {
		return errors.New("need at least 2 nodes: with one node there is nothing to steal from")
	}
	if cfg.WorkersPerNode < 1 || cfg.QueueDepth < 1 {
		return errors.New("workers and queue depth must be positive")
	}
	if cfg.DurationMS < 1 || cfg.ArrivalEveryMS < 1 || cfg.StealIntervalMS < 1 || cfg.LeaseMS < 1 {
		return errors.New("durations must be positive")
	}
	if cfg.Scenario == ScenarioCrash && cfg.CrashNode >= cfg.Nodes {
		return fmt.Errorf("crash node %d out of range [0,%d) (negative = auto-target)", cfg.CrashNode, cfg.Nodes)
	}
	if cfg.CacheLayer {
		if cfg.ProbeFanout < 0 || cfg.HintBreadth < 0 || cfg.MaxHops < 0 {
			return errors.New("cache knobs must be non-negative")
		}
		if cfg.ProbeFanout > 0 && cfg.ProbeTimeoutMS < 1 {
			return errors.New("probe timeout must be positive when probing is on")
		}
		if cfg.WarmNodes < 0 || cfg.WarmNodes > cfg.Nodes {
			return fmt.Errorf("warm nodes %d out of range [0,%d]", cfg.WarmNodes, cfg.Nodes)
		}
	}
	if cfg.Scenario == ScenarioPartition && cfg.PartitionAtMS >= cfg.HealAtMS {
		return errors.New("partition window must open before it heals")
	}
	return nil
}

// Run executes one seeded scenario to completion and returns its
// report. Same config (including seed) → byte-identical report.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := newCluster(cfg)
	c.generateWorkload()
	c.scheduleHousekeeping()
	// Hard cap: a pathological policy (leases never expiring, a crash
	// stranding the whole backlog) must terminate with an honest
	// "unfinished" count rather than spin the heap forever.
	hardCap := cfg.DurationMS*20 + 10*cfg.LeaseMS
	for c.events.Len() > 0 && !c.drained() {
		ev := heap.Pop(&c.events).(*event)
		if ev.at > hardCap {
			break
		}
		c.now = ev.at
		ev.fn()
	}
	return c.report(), nil
}

// MustRun is Run for callers whose config is known valid (tests, the
// sweep grid).
func MustRun(cfg Config) *Report {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
