package clustersim

import (
	"hash/fnv"
	"math/rand/v2"
	"sort"
)

// PartitionedRNG hands out one independent deterministic random stream
// per named subsystem, all derived from a single scenario seed. The
// partitioning is what keeps scenarios comparable across policy sweeps:
// the "arrival" stream draws the same workload whether or not the
// "latency" stream was consulted more often under one knob setting, so
// two runs that differ only in a policy knob see byte-identical job
// arrivals and costs. A single shared stream would entangle them — one
// extra probe would shift every subsequent arrival.
type PartitionedRNG struct {
	seed    int64
	streams map[string]*rand.Rand
}

// NewPartitionedRNG returns a partitioned source rooted at seed.
func NewPartitionedRNG(seed int64) *PartitionedRNG {
	return &PartitionedRNG{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Stream returns the named stream, creating it on first use. The
// stream's state is a pure function of (seed, name): the creation
// *order* of streams does not matter, only the draw order within each.
func (p *PartitionedRNG) Stream(name string) *rand.Rand {
	if r, ok := p.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewPCG(uint64(p.seed), h.Sum64()))
	p.streams[name] = r
	return r
}

// expMS draws an exponentially distributed duration with the given
// mean, floored at 1ms so degenerate draws still advance time.
func expMS(r *rand.Rand, meanMS int64) int64 {
	d := int64(r.ExpFloat64() * float64(meanMS))
	if d < 1 {
		return 1
	}
	return d
}

// percentile reports the nearest-rank p-th percentile of values,
// sorting a copy. Zero for an empty slice. Integer in, integer out —
// the report stays float-free, which makes byte-identical output
// trivial rather than a property of floating-point formatting.
func percentile(values []int64, p int) int64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]int64(nil), values...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := (p*len(s) + 99) / 100 // ceil(p/100 * n), nearest-rank
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
