package clustersim

import "fmt"

// invariants is the run-wide safety checker: a shadow bookkeeper fed by
// the same simulation events that drive the accounting, verifying after
// every step what the report can only assert in aggregate. It keeps its
// OWN record of which node computed or imported which artifact — never
// reading the nodes' cache maps — so a regression where the transport
// serves a result the serving node never held, or the policy probes
// wider than its fan-out, or an admission chain revisits a node, is
// caught at the moment it happens rather than laundered into a
// plausible-looking latency number. Violations are deterministic
// strings rendered on the report; every shipped scenario must produce
// none.
type invariants struct {
	c *Cluster
	// terminal maps job id → how it reached its terminal account
	// ("completed", "rejected", "lost"). A second terminal transition
	// for the same job is the double-settle bug class.
	terminal map[string]string
	// results / warm are the shadow artifact books: which result keys
	// and which trace digests each node (by URL) has legitimately
	// computed or imported.
	results map[string]map[string]bool
	warm    map[string]map[string]bool

	violations []string
}

// maxViolations bounds the report: one broken invariant tends to fire
// on every subsequent event, and a thousand copies of the same line
// help nobody.
const maxViolations = 20

func newInvariants(c *Cluster) *invariants {
	return &invariants{
		c:        c,
		terminal: make(map[string]string),
		results:  make(map[string]map[string]bool),
		warm:     make(map[string]map[string]bool),
	}
}

func (v *invariants) violatef(format string, args ...any) {
	if len(v.violations) < maxViolations {
		v.violations = append(v.violations, fmt.Sprintf(format, args...))
	}
}

// terminalOnce records a job's terminal transition; a job must settle
// exactly once. ("Exactly once" rather than "at most once": the missing
// half — every job settles — is the accounting identity checked in
// finish.)
func (v *invariants) terminalOnce(id, how string) {
	if prior, ok := v.terminal[id]; ok {
		v.violatef("job %s settled twice: %s after %s (t=%d)", id, how, prior, v.c.now)
		return
	}
	v.terminal[id] = how
}

func markSet(m map[string]map[string]bool, url, key string) {
	s := m[url]
	if s == nil {
		s = make(map[string]bool)
		m[url] = s
	}
	s[key] = true
}

// computedResult records that a node produced a result (and the warm
// trace artifacts under it) by actually running the job — or held it
// from the start, for pre-warmed nodes.
func (v *invariants) computedResult(n *node, key, digest string) {
	markSet(v.results, n.url, key)
	markSet(v.warm, n.url, digest)
}

// importedResult records a result adopted from a peer's cache.
func (v *invariants) importedResult(n *node, key string) {
	markSet(v.results, n.url, key)
}

// importedTable records a verdict table adopted from a peer's cache —
// which also makes the node a legitimate table server for the digest.
func (v *invariants) importedTable(n *node, digest string) {
	markSet(v.warm, n.url, digest)
}

// served checks one artifact delivery from→to: the serving node must
// hold the artifact in the shadow books, and the link must be up.
func (v *invariants) served(kind string, from, to *node, key string) {
	book := v.results
	if kind == "table" {
		book = v.warm
	}
	if !book[from.url][key] {
		v.violatef("%s %q served by %s which never computed or imported it (t=%d)",
			kind, key, from.url, v.c.now)
	}
	if !v.c.linkUp(from, to) {
		v.violatef("%s %q delivered %s→%s across a partitioned link (t=%d)",
			kind, key, from.url, to.url, v.c.now)
	}
}

// probeBound checks one job's probe session against the fan-out bound:
// each probe round (result, then table) may touch at most fanout peers.
func (v *invariants) probeBound(resultCalls, tableCalls, fanout int) {
	if fanout <= 0 {
		return
	}
	if resultCalls > fanout {
		v.violatef("result probe round touched %d peers, fan-out is %d (t=%d)",
			resultCalls, fanout, v.c.now)
	}
	if tableCalls > fanout {
		v.violatef("table probe round touched %d peers, fan-out is %d (t=%d)",
			tableCalls, fanout, v.c.now)
	}
}

// chainCheck independently re-counts one admission chain — it does not
// trust cachepolicy.FollowRedirects' own visited set, which is exactly
// the code under test.
type chainCheck struct {
	v     *invariants
	jobID string
	seen  map[string]bool
	hops  int
}

func (v *invariants) chain(jobID string) *chainCheck {
	return &chainCheck{v: v, jobID: jobID, seen: make(map[string]bool)}
}

// visit records one submit in the chain, flagging revisits and chains
// longer than the hop bound allows (origin + maxHops redirects).
func (cc *chainCheck) visit(base string, maxHops int) {
	if cc.seen[base] {
		cc.v.violatef("admission chain for %s revisited %s (t=%d)", cc.jobID, base, cc.v.c.now)
	}
	cc.seen[base] = true
	cc.hops++
	if cc.hops > maxHops+1 {
		cc.v.violatef("admission chain for %s reached %d submits, bound is %d (t=%d)",
			cc.jobID, cc.hops, maxHops+1, cc.v.c.now)
	}
}

// finish runs the end-of-run checks: the accounting identity (every
// generated job reached exactly one terminal account) and that the
// terminal book agrees with the counters.
func (v *invariants) finish(r *Report) {
	if got := r.Completed + r.Rejected + r.Lost + r.Unfinished; got != r.Jobs {
		v.violatef("accounting identity broken: completed+rejected+lost+unfinished = %d, jobs = %d", got, r.Jobs)
	}
	if settled := len(v.terminal); settled != r.Jobs-r.Unfinished {
		v.violatef("terminal book holds %d jobs, counters say %d settled", settled, r.Jobs-r.Unfinished)
	}
	r.Violations = v.violations
}
