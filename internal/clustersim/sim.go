package clustersim

import (
	"fmt"
	"time"

	"perfplay/internal/cachepolicy"
	"perfplay/internal/clusterapi"
	"perfplay/internal/pipeline"
	"perfplay/internal/scheduler"
)

// epoch anchors simulated time: node clocks read epoch + now·1ms. Any
// fixed instant works; Unix zero in UTC keeps timestamps legible in
// debugging output.
var epoch = time.Unix(0, 0).UTC()

// warmRunDivisor is how much cheaper a job runs on a node that already
// holds the job's trace artifacts: the identify pass and replay are
// served from cache, leaving only merge/report work. The factor is the
// whole reason hinted steals exist.
const warmRunDivisor = 4

// traceFetchDivisor sizes the trace download a thief performs before
// executing a cold stolen job (the daemon's GET /traces/{digest} from
// the victim): fetch time = job cost / traceFetchDivisor. A warm thief
// skips the fetch entirely — the other half of the hinted-steal win.
const traceFetchDivisor = 3

// simJob is one generated workload unit as the simulator tracks it —
// the scheduler only ever sees its clusterapi.Spec.
type simJob struct {
	id      string
	digest  string
	arrival int64 // submitted at (sim ms)
	origin  int   // node it first arrived at
	groups  []int64
	total   int64 // summed group cost, ms of cold single-worker work
	done    bool  // completed (or orphaned) — resolved for accounting
	// penalty is latency charged outside the event clock: the link time
	// a multi-hop admission chain spent before the job landed anywhere.
	// Always 0 on the legacy (non-cache-layer) path.
	penalty int64
}

// activeJob is a job currently executing on a node: its ledger frontier
// and how many chunks are in flight on workers.
type activeJob struct {
	job         *simJob
	ledger      *pipeline.RangeLedger
	outstanding int
	warm        bool
	// cached marks a job settled straight from a result cache (local or
	// probed off a peer): no ledger, no worker — just a settle event.
	cached bool
	// pre is virtual time already spent before the first chunk can run
	// (the cache-probe round that missed); charged to the first chunk.
	pre int64
	// victim is the node this job was stolen from (nil for local runs);
	// completion settles the lease back through the transport.
	victim *node
}

// node is one virtual perfplayd: the real queue/gossip/stealer policy
// objects plus the simulation-only worker and cache model around them.
type node struct {
	c   *Cluster
	idx int
	url string

	queue   *scheduler.Queue
	gossip  *scheduler.Gossip
	stealer *scheduler.Stealer
	metrics *scheduler.Metrics

	freeWorkers int
	// pendingStolen reserves workers for claims whose stolen job is
	// still in flight over the (simulated) link, so the greedy steal
	// loop cannot over-claim while its earlier claims are airborne.
	pendingStolen int
	active        []*activeJob
	cache         map[string]bool
	// results is the node's result cache (cache-layer scenarios only):
	// result keys it computed or imported, servable to probing peers.
	// recent is the MRU tail of those keys, gossiped as cache hints.
	results map[string]bool
	recent  []string
	speed   int64 // chunk-duration multiplier (1 = nominal)
	crashed bool

	// Simulation-side stats.
	completedLocal  int
	completedStolen int
	warmRuns        int
	depthSamples    []int64
}

// idle implements Stealer.Idle: spare capacity not already promised to
// an in-flight claim.
func (n *node) idle() bool {
	return !n.crashed && n.freeWorkers-n.pendingStolen > 0
}

// addResult records a result key in the node's cache and its MRU hint
// tail. Cache-layer scenarios only.
func (n *node) addResult(key string) {
	if n.results[key] {
		return
	}
	n.results[key] = true
	n.recent = append(n.recent, key)
}

// recentKeys returns the newest k result keys — the cache-population
// hints this node gossips in probe responses.
func (n *node) recentKeys(k int) []string {
	if k <= 0 || len(n.recent) == 0 {
		return nil
	}
	if len(n.recent) > k {
		return n.recent[len(n.recent)-k:]
	}
	return n.recent
}

// resultKey and tableKey name the cached artifacts for a trace digest,
// shaped like the daemon's cache keys: the result key has the digest as
// its first "|"-separated segment, so clusterapi.PeerStatus.HintsKey
// matches it exactly and HintsDigest matches it by digest prefix.
func resultKey(digest string) string { return digest + "|sim" }
func tableKey(digest string) string  { return digest + "|table" }

// Cluster is one simulation in progress.
type Cluster struct {
	cfg    Config
	rng    *PartitionedRNG
	events eventHeap
	seq    int64
	now    int64

	nodes []*node
	jobs  []*simJob
	byID  map[string]*simJob

	resolved  int // jobs done, lost, or orphaned — never coming back
	latencies []int64

	// Cluster-wide counters (per-node ones live on node / its metrics).
	redirects     int
	rejected      int
	duplicates    int
	orphans       int
	lostJobs      int
	lastCompleted int64

	// inv is the always-on invariant checker; its violations land on
	// the report (and must be empty for every shipped scenario).
	inv *invariants
	// cache totals the cache-layer activity (CacheLayer configs only).
	cache cacheCounters
}

// cacheCounters are the cluster-wide cache-layer totals.
type cacheCounters struct {
	probes        int // individual peer fetch attempts (result + table)
	remoteHits    int // jobs settled from a peer's result cache
	localHits     int // jobs settled from the local result cache
	tableImports  int // verdict tables adopted from a peer
	probeTimeouts int // probes that burned their timeout (partition/slow)
	degraded      int // probed jobs that missed everywhere and ran locally
	admissionHops int // extra Retry-Peer hops walked by admission chains
}

func newCluster(cfg Config) *Cluster {
	c := &Cluster{cfg: cfg, rng: NewPartitionedRNG(cfg.Seed), byID: make(map[string]*simJob)}
	c.inv = newInvariants(c)
	for i := 0; i < cfg.Nodes; i++ {
		n := &node{
			c:           c,
			idx:         i,
			url:         fmt.Sprintf("sim://node-%d", i),
			gossip:      scheduler.NewGossip(),
			metrics:     scheduler.NewMetrics(nil),
			freeWorkers: cfg.WorkersPerNode,
			cache:       make(map[string]bool),
			results:     make(map[string]bool),
			speed:       1,
		}
		n.queue = scheduler.NewQueue(cfg.QueueDepth)
		n.queue.Metrics = n.metrics
		n.queue.Now = c.clock
		n.gossip.Now = c.clock
		c.nodes = append(c.nodes, n)
	}
	if cfg.Scenario == ScenarioSlowNode {
		c.nodes[cfg.Nodes-1].speed = cfg.SlowFactor
	}
	if cfg.CacheLayer {
		// Pre-warm the warm island: nodes [0, WarmNodes) ran the whole
		// corpus yesterday. Like the daemon's two-tier cache, the tiers
		// age differently: the verdict tables and trace artifacts are
		// still on disk for every digest, but the LRU result cache has
		// since evicted half the pool — so probes for evicted digests
		// miss on results, fall through to the table probe, and the cold
		// node runs warm instead of settling for free.
		for di, digest := range digestPool(cfg.DigestPool) {
			for i := 0; i < cfg.WarmNodes; i++ {
				n := c.nodes[i]
				n.cache[digest] = true
				if di%2 == 0 {
					n.addResult(resultKey(digest))
					c.inv.computedResult(n, resultKey(digest), digest)
				} else {
					c.inv.importedTable(n, digest)
				}
			}
		}
	}
	for _, n := range c.nodes {
		n.stealer = c.newStealer(n)
	}
	return c
}

// linkUp reports whether a and b can currently reach each other. Links
// are symmetric; the only way one goes down is the partition scenario's
// window, during which the warm island [0, WarmNodes) and the cold
// nodes are mutually unreachable — except via the last node, the
// bridge, which both sides still see. That asymmetry of knowledge (the
// bridge sees a peer its neighbors cannot) is what makes gossiped hints
// dangerous: a cold node hears about a warm cache it cannot reach.
func (c *Cluster) linkUp(a, b *node) bool {
	if a == nil || b == nil || a == b {
		return true
	}
	if c.cfg.Scenario != ScenarioPartition || c.now < c.cfg.PartitionAtMS || c.now >= c.cfg.HealAtMS {
		return true
	}
	bridge := c.cfg.Nodes - 1
	if a.idx == bridge || b.idx == bridge {
		return true
	}
	return (a.idx < c.cfg.WarmNodes) == (b.idx < c.cfg.WarmNodes)
}

// clock renders simulated time as the time.Time the real policy code
// expects — injected into Queue.Now, Gossip.Now and Stealer.Now.
func (c *Cluster) clock() time.Time {
	return epoch.Add(time.Duration(c.now) * time.Millisecond)
}

// peersOf lists every other node's URL, in index order (the stealer
// probes in this order, so it is part of the deterministic tie-break).
func (c *Cluster) peersOf(n *node) []string {
	peers := make([]string, 0, len(c.nodes)-1)
	for _, p := range c.nodes {
		if p != n {
			peers = append(peers, p.url)
		}
	}
	return peers
}

// byURL resolves a peer URL to its node; nil models an address that
// never existed.
func (c *Cluster) byURL(url string) *node {
	for _, n := range c.nodes {
		if n.url == url {
			return n
		}
	}
	return nil
}

// latencyMS draws one link delay from the latency stream.
func (c *Cluster) latencyMS() int64 {
	return 1 + c.rng.Stream("latency").Int64N(4)
}

func (c *Cluster) newStealer(n *node) *scheduler.Stealer {
	s := &scheduler.Stealer{
		Self:      n.url,
		Peers:     c.peersOf(n),
		Idle:      n.idle,
		Gossip:    n.gossip,
		Metrics:   n.metrics,
		Now:       c.clock,
		Transport: &memTransport{c: c, from: n},
		Execute: func(victim string, sj scheduler.StolenJob) error {
			// The real daemon executes synchronously inside the steal
			// loop; the simulator cannot block an event, so the claim
			// reserves a worker immediately and the job lands after one
			// link delay. Always nil: execution failures surface as
			// expired leases on the victim, exactly like a thief crash.
			job := c.byID[sj.ID]
			v := c.byURL(victim)
			if job == nil || v == nil {
				return fmt.Errorf("claimed unknown job %q from %q", sj.ID, victim)
			}
			n.pendingStolen++
			delay := c.latencyMS()
			if !n.cache[job.digest] {
				delay += job.total / traceFetchDivisor
			}
			c.schedule(c.now+delay, kindStolenStart, func() {
				n.pendingStolen--
				if n.crashed {
					return // the claim dies with the thief; the victim's lease recovers it
				}
				c.startJob(n, job, v)
				c.assign(n)
			})
			return nil
		},
	}
	if c.cfg.HintSteals {
		s.HasCached = func(digest string) bool { return n.cache[digest] }
	}
	return s
}

// memTransport carries the steal protocol between simulated nodes: the
// scheduler.Transport the daemon implements over HTTP, implemented over
// direct method calls on the victim's real Queue. A crashed node is a
// refused connection; a partitioned link is one too (from's side of the
// fabric cannot reach the peer at all).
type memTransport struct {
	c *Cluster
	// from is the node issuing the calls — the partition model needs to
	// know both ends of the link.
	from *node
}

func (t *memTransport) lookup(peer string) (*node, error) {
	n := t.c.byURL(peer)
	if n == nil || n.crashed {
		return nil, fmt.Errorf("dial %s: connection refused", peer)
	}
	if !t.c.linkUp(t.from, n) {
		return nil, fmt.Errorf("dial %s: network unreachable (partitioned)", peer)
	}
	return n, nil
}

func (t *memTransport) Probe(peer string) (scheduler.PeerStatus, error) {
	v, err := t.lookup(peer)
	if err != nil {
		return scheduler.PeerStatus{}, err
	}
	st := scheduler.PeerStatus{
		QueueLen:         v.queue.Len(),
		QueueCap:         v.queue.Cap(),
		Stealable:        v.queue.Stealable(),
		StealableDigests: v.queue.StealableDigests(8),
	}
	if t.c.cfg.CacheLayer {
		st.CacheKeys = v.recentKeys(t.c.cfg.HintBreadth)
	}
	return st, nil
}

func (t *memTransport) Claim(peer, thief string) (scheduler.StolenJob, bool, error) {
	v, err := t.lookup(peer)
	if err != nil {
		return scheduler.StolenJob{}, false, err
	}
	lease := time.Duration(t.c.cfg.LeaseMS) * time.Millisecond
	j, _, ok := v.queue.Claim(thief, lease)
	if !ok {
		return scheduler.StolenJob{}, false, nil
	}
	return scheduler.StolenJob{ID: j.ID, Spec: j.Spec, LeaseMS: t.c.cfg.LeaseMS}, true, nil
}

func (t *memTransport) Settle(victim, jobID string, res clusterapi.StealResult) error {
	v, err := t.lookup(victim)
	if err != nil {
		return err
	}
	if _, ok := v.queue.Complete(jobID); !ok {
		return fmt.Errorf("settle %s on %s: %w", jobID, victim, scheduler.ErrLeaseExpired)
	}
	return nil
}

// cacheLatencyMS draws one cache-probe round trip. Its own stream, so
// cache scenarios do not perturb the steal path's latency draws.
func (c *Cluster) cacheLatencyMS() int64 {
	return 1 + c.rng.Stream("cachelat").Int64N(4)
}

// simCacheTransport is the cachepolicy.Fetcher the simulator injects
// into the real Prober — the virtual-clock counterpart of the daemon's
// httpCacheTransport. One instance serves one job's probe session and
// accumulates the session's virtual cost in elapsed: a healthy peer
// answers in one latency draw, a crashed peer refuses fast, and a
// partitioned link is a blackhole that burns the full probe timeout —
// which is precisely why the timeout knob exists.
//
// The artifact types are the cache keys themselves: the sim has no
// bytes to decode, and the policy code never opens artifacts anyway.
type simCacheTransport struct {
	c       *Cluster
	from    *node
	elapsed int64
	// resultCalls / tableCalls count the session's fetches per round,
	// for the fan-out invariant.
	resultCalls int
	tableCalls  int
}

var _ cachepolicy.Fetcher[string, string] = (*simCacheTransport)(nil)

// fetch resolves one probe's target and charges its virtual cost.
func (t *simCacheTransport) fetch(peer string) (*node, error) {
	t.c.cache.probes++
	target := t.c.byURL(peer)
	if target == nil || target.crashed {
		t.elapsed++ // refused connections fail fast
		return nil, fmt.Errorf("dial %s: connection refused", peer)
	}
	if !t.c.linkUp(t.from, target) {
		t.elapsed += t.c.cfg.ProbeTimeoutMS
		t.c.cache.probeTimeouts++
		return nil, fmt.Errorf("probe %s: timeout (blackholed)", peer)
	}
	rtt := t.c.cacheLatencyMS()
	if rtt > t.c.cfg.ProbeTimeoutMS {
		t.elapsed += t.c.cfg.ProbeTimeoutMS
		t.c.cache.probeTimeouts++
		return nil, fmt.Errorf("probe %s: timeout", peer)
	}
	t.elapsed += rtt
	return target, nil
}

func (t *simCacheTransport) FetchResult(peer, key string, topK int) (string, error) {
	t.resultCalls++
	target, err := t.fetch(peer)
	if err != nil {
		return "", err
	}
	if !target.results[key] {
		return "", fmt.Errorf("result %s: miss on %s", key, peer)
	}
	t.c.inv.served("result", target, t.from, key)
	return key, nil
}

func (t *simCacheTransport) FetchTable(peer, key string) (string, error) {
	t.tableCalls++
	target, err := t.fetch(peer)
	if err != nil {
		return "", err
	}
	// A node can serve the verdict table for every digest it holds warm
	// artifacts for: computing a result builds the table, and importing
	// a table adopts it.
	digest := tableDigest(key)
	if !target.cache[digest] {
		return "", fmt.Errorf("table %s: miss on %s", key, peer)
	}
	t.c.inv.served("table", target, t.from, digest)
	return key, nil
}

// tableDigest recovers the trace digest from a table key.
func tableDigest(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[:i]
		}
	}
	return key
}

// probeCaches runs one cache-missed job's real probe policy —
// cachepolicy.Prober over the sim transport, against the node's live
// gossip view — and applies what it finds: a remote result hit settles
// the job (the caller's cue), a table hit warms the node for a cheaper
// cold run. The returned elapsed is the session's virtual cost, charged
// ahead of whatever the job does next; hit or miss, probing never fails
// the job.
func (c *Cluster) probeCaches(n *node, j *simJob) (hit bool, elapsed int64) {
	tr := &simCacheTransport{c: c, from: n}
	pr := &cachepolicy.Prober[string, string]{Transport: tr, Fanout: c.cfg.ProbeFanout}
	peers := c.peersOf(n)
	view := n.gossip.Snapshot()
	key := resultKey(j.digest)
	if _, _, ok := pr.ProbeResult(peers, view, key, 0); ok {
		c.cache.remoteHits++
		n.addResult(key)
		c.inv.importedResult(n, key)
		hit = true
	} else if !n.cache[j.digest] {
		// No finished result anywhere reachable — try to at least adopt
		// the verdict table so the local run goes warm. accept is
		// unconditional: the sim's artifacts cannot be corrupt.
		if _, ok := pr.ProbeTable(peers, view, j.digest, tableKey(j.digest), func(string) bool { return true }); ok {
			c.cache.tableImports++
			n.cache[j.digest] = true
			c.inv.importedTable(n, j.digest)
		}
	}
	c.inv.probeBound(tr.resultCalls, tr.tableCalls, c.cfg.ProbeFanout)
	if !hit {
		c.cache.degraded++
	}
	return hit, tr.elapsed
}

// settleCached completes a job from a result cache after delay: no
// ledger, no worker — the activeJob exists only so a crash between now
// and the settle drops it like any other in-flight work.
func (c *Cluster) settleCached(n *node, j *simJob, victim *node, delay int64) {
	aj := &activeJob{job: j, victim: victim, cached: true}
	n.active = append(n.active, aj)
	c.schedule(c.now+delay, kindChunkDone, func() {
		if n.crashed {
			return
		}
		c.finishJob(n, aj)
	})
}

// generateWorkload pre-draws every arrival from the partitioned streams
// and schedules them. Drawing everything up front (rather than lazily
// inside events) pins the workload to the seed alone: no policy knob
// can perturb which jobs exist.
func (c *Cluster) generateWorkload() {
	arr := c.rng.Stream("arrival")
	cost := c.rng.Stream("cost")
	digests := digestPool(c.cfg.DigestPool)
	var t int64
	for idx := 0; ; idx++ {
		t += expMS(arr, c.cfg.ArrivalEveryMS)
		if t >= c.cfg.DurationMS {
			break
		}
		origin := c.pickOrigin(arr.Float64(), arr.IntN(c.cfg.Nodes))
		// Mean job ≈ 10.5 groups × ~35ms ≈ 360ms of cold single-worker
		// work — against the default 100ms mean arrival this oversubscribes
		// a skewed-at node several workers deep, which is the regime work
		// stealing exists for.
		groups := make([]int64, 6+cost.IntN(10))
		var total int64
		for i := range groups {
			groups[i] = 10 + cost.Int64N(50)
			total += groups[i]
		}
		j := &simJob{
			id:      fmt.Sprintf("job-%05d", idx),
			digest:  digests[cost.IntN(len(digests))],
			arrival: t,
			origin:  origin,
			groups:  groups,
			total:   total,
		}
		c.jobs = append(c.jobs, j)
		c.byID[j.id] = j
		at, node := j.arrival, origin
		if c.cfg.CacheLayer {
			c.schedule(at, kindArrival, func() { c.admit(j, c.nodes[node]) })
		} else {
			c.schedule(at, kindArrival, func() { c.arrive(j, c.nodes[node], 0) })
		}
	}
}

// digestPool names the workload's distinct trace digests.
func digestPool(n int) []string {
	digests := make([]string, n)
	for i := range digests {
		digests[i] = fmt.Sprintf("sha256:sim%04d", i)
	}
	return digests
}

// pickOrigin maps one uniform draw (plus a pre-drawn uniform node) to
// the scenario's arrival skew. Both values are always drawn so the
// arrival stream advances identically across scenarios.
func (c *Cluster) pickOrigin(f float64, uniform int) int {
	switch c.cfg.Scenario {
	case ScenarioSkewed:
		// 80% of submissions hit node 0; the rest spread over the others.
		if f < 0.8 {
			return 0
		}
		return 1 + uniform%(c.cfg.Nodes-1)
	case ScenarioCrash:
		// Near-total skew keeps the thieves saturated with stolen work,
		// so the crash reliably catches the dying node holding leases —
		// the recovery path the scenario exists to exercise.
		if f < 0.95 {
			return 0
		}
		return 1 + uniform%(c.cfg.Nodes-1)
	case ScenarioCacheWarm, ScenarioPartition:
		// Everything lands on the cold side: the warm island's results
		// are only reachable through the cache-probe path under test.
		if c.cfg.WarmNodes < c.cfg.Nodes {
			return c.cfg.WarmNodes + uniform%(c.cfg.Nodes-c.cfg.WarmNodes)
		}
		return uniform
	case ScenarioAdmission:
		// Heavy skew over a shallow queue: node 0 overflows constantly,
		// so admission walks multi-hop Retry-Peer chains.
		if f < 0.9 {
			return 0
		}
		return 1 + uniform%(c.cfg.Nodes-1)
	default:
		return uniform
	}
}

// scheduleHousekeeping arms the periodic machinery: steal ticks and
// lease reapers per node, cluster-wide queue-depth sampling, and the
// scenario's crash.
func (c *Cluster) scheduleHousekeeping() {
	for _, n := range c.nodes {
		n := n
		// Stagger first ticks by node index so same-millisecond rounds
		// keep a defined order even across cadence changes.
		c.schedule(c.cfg.StealIntervalMS+int64(n.idx), kindStealTick, func() { c.stealTick(n) })
		reap := c.cfg.LeaseMS / 2
		if reap < 1 {
			reap = 1
		}
		c.schedule(reap+int64(n.idx), kindReaper, func() { c.reap(n) })
	}
	c.schedule(sampleEveryMS, kindSample, c.sample)
	if c.cfg.Scenario == ScenarioCrash {
		c.schedule(c.cfg.CrashAtMS, kindCrash, c.crash)
	}
}

const sampleEveryMS = 100

// drained reports whether every generated job reached a terminal
// account (completed, lost, or orphaned) — the run's natural end.
func (c *Cluster) drained() bool { return c.resolved >= len(c.jobs) }

// arrive admits a job at a node, or redirects it through the same
// steal-aware admission policy the daemon applies: a full queue sends
// the submitter to scheduler.IdlestPeer's pick from this node's gossip
// view. hops bounds the redirect chain like the CLI client does.
func (c *Cluster) arrive(j *simJob, n *node, hops int) {
	if j.done {
		return
	}
	if !n.crashed {
		qj := &scheduler.Job{
			ID:   j.id,
			Spec: clusterapi.Spec{App: "sim", TraceDigest: j.digest, Seed: c.cfg.Seed},
		}
		if n.queue.Push(qj) {
			c.assign(n)
			return
		}
	}
	if hops >= 2 {
		c.reject(j)
		return
	}
	peer, ok := scheduler.IdlestPeer(c.peersOf(n), n.gossip.Snapshot())
	if !ok {
		c.reject(j)
		return
	}
	c.redirects++
	target := c.byURL(peer)
	c.schedule(c.now+c.latencyMS(), kindArrival, func() { c.arrive(j, target, hops+1) })
}

func (c *Cluster) reject(j *simJob) {
	j.done = true
	c.rejected++
	c.resolved++
	c.inv.terminalOnce(j.id, "rejected")
}

// admit is the cache-layer admission path: the real multi-hop chain,
// cachepolicy.FollowRedirects — hop bound, visited set, the exact code
// corpus.Remote submits through — over an in-memory submit adapter. A
// full node's rejection names its gossip-picked idlest peer as the
// Retry-Peer, and the chain walks on. The walk is synchronous at the
// arrival instant (the queues cannot shift mid-chain, unlike the
// event-spaced legacy path); its link time is charged to the job as a
// latency penalty instead.
func (c *Cluster) admit(j *simJob, origin *node) {
	if j.done {
		return
	}
	var (
		elapsed  int64
		accepted *node
		hops     = -1 // first submit is hop 0
		chain    = c.inv.chain(j.id)
	)
	submit := func(base string) (cachepolicy.SubmitReply, error) {
		hops++
		if hops > 0 {
			elapsed += c.latencyMS()
		}
		chain.visit(base, c.cfg.MaxHops)
		n := c.byURL(base)
		if n == nil || n.crashed {
			return cachepolicy.SubmitReply{}, fmt.Errorf("dial %s: connection refused", base)
		}
		qj := &scheduler.Job{
			ID:   j.id,
			Spec: clusterapi.Spec{App: "sim", TraceDigest: j.digest, Seed: c.cfg.Seed},
		}
		if n.queue.Push(qj) {
			accepted = n
			return cachepolicy.SubmitReply{ID: j.id}, nil
		}
		reply := cachepolicy.SubmitReply{Reject: fmt.Errorf("queue full at %s", base)}
		if peer, ok := scheduler.IdlestPeer(c.peersOf(n), n.gossip.Snapshot()); ok {
			reply.RetryPeer = peer
		}
		return reply, nil
	}
	_, _, err := cachepolicy.FollowRedirects(submit, origin.url, c.cfg.MaxHops)
	c.redirects += hops
	c.cache.admissionHops += hops
	if err != nil || accepted == nil {
		c.reject(j)
		return
	}
	j.penalty = elapsed
	c.assign(accepted)
}

// startJob registers a job as executing on n, building its real
// RangeLedger sized to the node's worker pool. victim is non-nil for
// stolen jobs. With the cache layer on, the job first consults the
// result caches exactly like the daemon's executeJob: local result hit
// settles instantly, a probed remote hit settles after the probe round
// trip, a table hit warms the run, and a miss everywhere degrades to
// the cold run with the probe time charged up front.
func (c *Cluster) startJob(n *node, j *simJob, victim *node) {
	var pre int64
	if c.cfg.CacheLayer {
		if n.results[resultKey(j.digest)] {
			c.cache.localHits++
			c.settleCached(n, j, victim, 1)
			return
		}
		if c.cfg.ProbeFanout > 0 {
			hit, elapsed := c.probeCaches(n, j)
			if hit {
				c.settleCached(n, j, victim, elapsed+1)
				return
			}
			pre = elapsed
		}
	}
	aj := &activeJob{
		job:    j,
		victim: victim,
		warm:   n.cache[j.digest],
		pre:    pre,
		ledger: pipeline.NewRangeLedger(j.groups, c.cfg.WorkersPerNode, c.cfg.ChunkFactor),
	}
	if aj.warm {
		n.warmRuns++
	}
	n.active = append(n.active, aj)
}

// assign puts every free worker to work: first on already-active
// ledgers (in start order — finish what you started), then by popping
// the queue. Each pulled chunk schedules its completion after the
// chunk's cost, scaled by node speed and cache warmth — the guided
// self-scheduling drain of pipeline.RangeLedger, run for real.
func (c *Cluster) assign(n *node) {
	if n.crashed {
		return
	}
	for n.freeWorkers > 0 {
		var aj *activeJob
		for _, a := range n.active {
			if !a.cached && a.ledger.Remaining() > 0 {
				aj = a
				break
			}
		}
		if aj == nil {
			qj, ok := n.queue.TryPop()
			if !ok {
				return
			}
			j := c.byID[qj.ID]
			if j == nil || j.done {
				continue
			}
			c.startJob(n, j, nil)
			continue
		}
		rng, ok := aj.ledger.Next()
		if !ok {
			continue
		}
		var costSum int64
		for _, g := range aj.job.groups[rng.Start:rng.End] {
			costSum += g
		}
		dur := costSum * n.speed
		if aj.warm {
			dur /= warmRunDivisor
		}
		if dur < 1 {
			dur = 1
		}
		if aj.pre > 0 {
			// The probe round that missed delayed the start; charge it to
			// the job's first chunk.
			dur += aj.pre
			aj.pre = 0
		}
		n.freeWorkers--
		aj.outstanding++
		c.schedule(c.now+dur, kindChunkDone, func() { c.chunkDone(n, aj) })
	}
}

// chunkDone returns a worker and, when the job's ledger is fully
// drained with nothing in flight, completes the job.
func (c *Cluster) chunkDone(n *node, aj *activeJob) {
	if n.crashed {
		return // the worker died mid-chunk with the node
	}
	n.freeWorkers++
	aj.outstanding--
	if aj.outstanding == 0 && aj.ledger.Remaining() == 0 {
		c.finishJob(n, aj)
	}
	c.assign(n)
}

// finishJob retires an active job: warms the node's digest cache,
// settles the lease for stolen work, and records the completion.
func (c *Cluster) finishJob(n *node, aj *activeJob) {
	for i, a := range n.active {
		if a == aj {
			n.active = append(n.active[:i], n.active[i+1:]...)
			break
		}
	}
	if !aj.cached {
		// A real run warms the node; a cache-settled job built nothing
		// locally beyond the result it already imported.
		n.cache[aj.job.digest] = true
		if c.cfg.CacheLayer {
			n.addResult(resultKey(aj.job.digest))
			c.inv.computedResult(n, resultKey(aj.job.digest), aj.job.digest)
		}
	}
	if aj.victim != nil {
		tr := memTransport{c: c, from: n}
		err := tr.Settle(aj.victim.url, aj.job.id, clusterapi.StealResult{Thief: n.url})
		switch {
		case err == nil:
			n.completedStolen++
		case aj.victim.crashed:
			// Work done, owner gone: the result has nowhere to land.
			n.completedStolen++
			c.orphans++
		default:
			// Lease expired first — the victim re-queued the job and
			// the re-run's completion is the one that counts.
			c.duplicates++
			return
		}
	} else {
		n.completedLocal++
	}
	c.complete(aj.job)
}

func (c *Cluster) complete(j *simJob) {
	if j.done {
		return
	}
	j.done = true
	c.resolved++
	c.latencies = append(c.latencies, c.now-j.arrival+j.penalty)
	if c.now > c.lastCompleted {
		c.lastCompleted = c.now
	}
	c.inv.terminalOnce(j.id, "completed")
}

// stealTick drives one real Stealer round at simulated time, then
// re-arms while the run is live.
func (c *Cluster) stealTick(n *node) {
	if n.crashed {
		return
	}
	n.stealer.Tick(nil)
	if !c.drained() {
		c.schedule(c.now+c.cfg.StealIntervalMS, kindStealTick, func() { c.stealTick(n) })
	}
}

// reap recovers expired steal leases through the queue's real recovery
// path, exactly like the daemon's reaper goroutine.
func (c *Cluster) reap(n *node) {
	if n.crashed {
		return
	}
	if expired := n.queue.TakeExpired(c.clock()); len(expired) > 0 {
		n.queue.Requeue(expired)
		c.assign(n)
	}
	if !c.drained() {
		reap := c.cfg.LeaseMS / 2
		if reap < 1 {
			reap = 1
		}
		c.schedule(c.now+reap, kindReaper, func() { c.reap(n) })
	}
}

// sample records every node's queue depth on a fixed cadence for the
// report's depth percentiles.
func (c *Cluster) sample() {
	for _, n := range c.nodes {
		if n.crashed {
			continue
		}
		n.depthSamples = append(n.depthSamples, int64(n.queue.Len()))
	}
	if !c.drained() {
		c.schedule(c.now+sampleEveryMS, kindSample, c.sample)
	}
}

// crash kills one node at (or shortly after) CrashAtMS. With
// CrashNode < 0 — the default — the scenario self-targets like a chaos
// probe aimed at the steal protocol: it kills whichever thief holds
// the most outstanding leases right now, re-arming in 50ms slices
// until some lease is outstanding, so the run reliably exercises
// lease-expiry recovery instead of depending on a lucky timestamp.
// A non-negative CrashNode kills that node at exactly CrashAtMS,
// leases or not.
//
// The dead node's queued and locally running jobs are lost; jobs it
// had stolen (claimed elsewhere, unfinished here) are NOT — the
// victims' leases expire and their reapers re-queue them, which is
// exactly the recovery path this scenario exists for. Claims the dead
// node had granted to live thieves also stay outstanding: the thief's
// settle finds the victim gone and the finished result is accounted
// an orphan.
func (c *Cluster) crash() {
	n := c.crashTarget()
	if n == nil {
		if !c.drained() {
			c.schedule(c.now+50, kindCrash, c.crash)
		}
		return
	}
	n.crashed = true
	// Drain the dying queue first: TryPop still serves a closed queue,
	// so this enumerates the exact queued jobs that die with the node.
	for {
		qj, ok := n.queue.TryPop()
		if !ok {
			break
		}
		c.lose(c.byID[qj.ID])
	}
	n.queue.Close()
	for _, aj := range n.active {
		if aj.victim == nil {
			c.lose(aj.job)
		}
	}
	n.active = nil
}

// crashTarget picks the node to kill: the configured one, or — in
// auto mode — the live thief holding the most outstanding leases
// (ties break on the lower node index; generation-order job iteration
// keeps the count deterministic). Nil means "no lease outstanding,
// try again shortly".
func (c *Cluster) crashTarget() *node {
	if c.cfg.CrashNode >= 0 {
		return c.nodes[c.cfg.CrashNode]
	}
	counts := make([]int, len(c.nodes))
	for _, j := range c.jobs {
		if j.done {
			continue
		}
		for _, v := range c.nodes {
			thief, ok := v.queue.Claimant(j.id)
			if !ok {
				continue
			}
			if t := c.byURL(thief); t != nil && !t.crashed {
				counts[t.idx]++
			}
		}
	}
	best := -1
	for i, ct := range counts {
		if ct > 0 && (best < 0 || ct > counts[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return c.nodes[best]
}

func (c *Cluster) lose(j *simJob) {
	if j == nil || j.done {
		return
	}
	j.done = true
	c.resolved++
	c.lostJobs++
	c.inv.terminalOnce(j.id, "lost")
}
