package clustersim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Sweep knob grids. Small on purpose: the sweep is a ranking aid, not
// an optimizer — 18 deterministic runs an operator can eyeball.
var (
	sweepIntervals = []int64{100, 250, 500}
	sweepChunks    = []int{1, 3, 6}
	sweepHints     = []bool{false, true}
)

// SweepResult is one grid point's knobs and outcome.
type SweepResult struct {
	StealIntervalMS int64
	ChunkFactor     int
	HintSteals      bool
	Report          *Report
}

// Sweep grids steal interval × ledger chunk factor × hint-driven
// stealing over one scenario and seed, returning results ranked best
// first: lowest p90 job latency, ties broken by makespan, then by grid
// order. Every grid point sees the byte-identical workload (the
// partitioned RNG pins arrivals and costs to the seed), so differences
// in the ranking are attributable to the knobs alone.
func Sweep(base Config) ([]SweepResult, error) {
	if err := base.validate(); err != nil {
		return nil, err
	}
	var out []SweepResult
	for _, iv := range sweepIntervals {
		for _, cf := range sweepChunks {
			for _, h := range sweepHints {
				cfg := base
				cfg.StealIntervalMS = iv
				cfg.ChunkFactor = cf
				cfg.HintSteals = h
				r, err := Run(cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, SweepResult{iv, cf, h, r})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Report, out[j].Report
		if a.LatencyP90 != b.LatencyP90 {
			return a.LatencyP90 < b.LatencyP90
		}
		return a.MakespanMS < b.MakespanMS
	})
	return out, nil
}

// Cache-layer sweep grids. Fan-out 0 is the no-probe baseline (sim
// semantics: probing disabled), so every ranking shows what the cache
// layer is worth against not having one.
var (
	cacheSweepFanouts  = []int{0, 1, 2, 4}
	cacheSweepTimeouts = []int64{50, 250, 2000}
	cacheSweepBreadths = []int{0, 16}
	cacheSweepHops     = []int{1, 3}
)

// CacheSweepResult is one cache-grid point's knobs and outcome.
type CacheSweepResult struct {
	ProbeFanout    int
	ProbeTimeoutMS int64
	HintBreadth    int
	MaxHops        int
	Report         *Report
}

// CacheSweep grids probe fan-out × probe timeout × hint breadth × max
// admission hops over one cache-layer scenario and seed — 48
// deterministic runs — returning results ranked best first: lowest p90
// job latency, ties broken by makespan, then by grid order. As with
// Sweep, every grid point sees the byte-identical workload, so the
// ranking is attributable to the knobs alone. Fan-out 0 rows never
// probe, anchoring what probing buys; with fan-out 0 the timeout knob
// is inert, but those rows still run so the grid stays rectangular and
// the renderer honest about it.
func CacheSweep(base Config) ([]CacheSweepResult, error) {
	if !base.CacheLayer {
		return nil, errors.New("cache sweep needs a cache-layer scenario (cachewarm, partition, admission)")
	}
	if err := base.validate(); err != nil {
		return nil, err
	}
	var out []CacheSweepResult
	for _, fo := range cacheSweepFanouts {
		for _, to := range cacheSweepTimeouts {
			for _, hb := range cacheSweepBreadths {
				for _, mh := range cacheSweepHops {
					cfg := base
					cfg.ProbeFanout = fo
					cfg.ProbeTimeoutMS = to
					cfg.HintBreadth = hb
					cfg.MaxHops = mh
					r, err := Run(cfg)
					if err != nil {
						return nil, err
					}
					out = append(out, CacheSweepResult{fo, to, hb, mh, r})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Report, out[j].Report
		if a.LatencyP90 != b.LatencyP90 {
			return a.LatencyP90 < b.LatencyP90
		}
		return a.MakespanMS < b.MakespanMS
	})
	return out, nil
}

// RenderCacheSweep renders ranked cache-sweep results as the
// fixed-width table the CLI prints (and docs/POLICIES.md records).
func RenderCacheSweep(scenario string, seed int64, rs []CacheSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache policy sweep scenario=%s seed=%d (%d runs; best first by latency p90, then makespan)\n",
		scenario, seed, len(rs))
	fmt.Fprintf(&b, "%4s  %6s  %10s  %7s  %4s  %7s  %7s  %8s  %6s  %6s  %8s  %4s\n",
		"rank", "fanout", "timeout-ms", "breadth", "hops", "p50-ms", "p90-ms", "makespan", "r-hit", "t-imp", "timeouts", "adm")
	for i, r := range rs {
		c := r.Report.Cache
		fmt.Fprintf(&b, "%4d  %6d  %10d  %7d  %4d  %7d  %7d  %8d  %6d  %6d  %8d  %4d\n",
			i+1, r.ProbeFanout, r.ProbeTimeoutMS, r.HintBreadth, r.MaxHops,
			r.Report.LatencyP50, r.Report.LatencyP90, r.Report.MakespanMS,
			c.RemoteHits, c.TableImports, c.ProbeTimeouts, c.AdmissionHops)
	}
	return b.String()
}

// RenderSweep renders ranked sweep results as the fixed-width table
// the CLI prints (and docs/POLICIES.md records).
func RenderSweep(scenario string, seed int64, rs []SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy sweep scenario=%s seed=%d (%d runs; best first by latency p90, then makespan)\n",
		scenario, seed, len(rs))
	fmt.Fprintf(&b, "%4s  %12s  %5s  %5s  %7s  %7s  %8s  %6s  %6s  %9s\n",
		"rank", "steal-int-ms", "chunk", "hints", "p50-ms", "p90-ms", "makespan", "claims", "hinted", "completed")
	for i, r := range rs {
		hints := "off"
		if r.HintSteals {
			hints = "on"
		}
		fmt.Fprintf(&b, "%4d  %12d  %5d  %5s  %7d  %7d  %8d  %6d  %6d  %9d\n",
			i+1, r.StealIntervalMS, r.ChunkFactor, hints,
			r.Report.LatencyP50, r.Report.LatencyP90, r.Report.MakespanMS,
			r.Report.Claims, r.Report.HintedClaims, r.Report.Completed)
	}
	return b.String()
}
