package clustersim

import "container/heap"

// Event kinds, in same-timestamp execution order. When several events
// share a millisecond the order below resolves them: arrivals land
// before stolen work starts, chunk completions free workers before the
// reaper looks for expired leases, and steal ticks observe the queue
// after all of that settled. Any fixed order would be deterministic;
// this one is also the least surprising — it matches the order a real
// node would tend to observe the same happenings.
const (
	kindArrival = iota
	kindStolenStart
	kindChunkDone
	kindReaper
	kindStealTick
	kindSample
	kindCrash
)

// event is one scheduled simulator action. seq breaks (at, kind) ties
// in scheduling order, which closes the last determinism gap: two
// chunk completions on the same millisecond run in the order they were
// scheduled, never in heap-internal order.
type event struct {
	at   int64 // simulated milliseconds since the epoch
	kind int
	seq  int64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// schedule queues fn to run at simulated time at (clamped to now — the
// past is immutable).
func (c *Cluster) schedule(at int64, kind int, fn func()) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	heap.Push(&c.events, &event{at: at, kind: kind, seq: c.seq, fn: fn})
}
