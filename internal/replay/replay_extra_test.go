package replay

import (
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

func TestExtraConstraintsForceOrder(t *testing.T) {
	tr := trace.New("x", 2)
	a := tr.Append(trace.Event{Thread: 0, Kind: trace.KCompute, Cost: 900})
	b := tr.Append(trace.Event{Thread: 1, Kind: trace.KCompute, Cost: 10})
	res, err := Run(tr, Options{Sched: OrigS, ExtraConstraints: []trace.Constraint{{After: a, Before: b}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventStart[b] < res.EventEnd[a] {
		t.Fatal("extra constraint ignored")
	}
}

func TestBarrierReplaySemantic(t *testing.T) {
	// Two threads with asymmetric pre-barrier work: the replayed barrier
	// must release both at the slower arrival, and the wait must be
	// re-derived (a faster post-transform thread would wait less).
	p := sim.NewProgram("bar")
	b := p.NewBarrier("B", 2)
	s := p.Site("f.c", 1, "f")
	costs := []vtime.Duration{500, 3000}
	for i := 0; i < 2; i++ {
		i := i
		p.AddThread(func(th *sim.Thread) {
			th.Compute(costs[i])
			th.Barrier(b, s)
			th.Compute(100)
		})
	}
	rec := sim.Run(p, sim.Config{Seed: 1})
	res, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != rec.Total {
		t.Fatalf("replay total %v != recorded %v", res.Total, rec.Total)
	}
	// The fast thread's barrier wait is charged as Waited, not CPU.
	if res.Waited < 2000 {
		t.Fatalf("waited = %v, want >= 2400 (the fast thread's barrier wait)", res.Waited)
	}
}

func TestORIGSeedStable(t *testing.T) {
	rec := buildContended(3, 8)
	a, err := Run(rec.Trace, Options{Sched: OrigS, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rec.Trace, Options{Sched: OrigS, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatal("same seed must reproduce the same ORIG-S schedule")
	}
}

func TestDLSCheckCostDefault(t *testing.T) {
	aux := trace.AuxLockBase + 1
	tr := trace.New("d", 1)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux}, Sources: []int32{-1}, Cost: 10})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux}, Cost: 10})
	res, err := Run(tr, Options{Sched: OrigS, DLS: true, LocksetCost: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Single-member lockset under DLS: only the check cost (16/8 = 2).
	if res.LocksetOverhead != 2 {
		t.Fatalf("overhead = %v, want 2 (one END check)", res.LocksetOverhead)
	}
}

func TestSchedulerStrings(t *testing.T) {
	for s, want := range map[Scheduler]string{
		OrigS: "ORIG-S", ELSCS: "ELSC-S", SyncS: "SYNC-S", MemS: "MEM-S",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestMemSRunsSerially(t *testing.T) {
	// Under MEM-S the makespan equals the sum of all event costs (full
	// serialization), modulo barrier releases.
	p := sim.NewProgram("ser")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("f.c", 1, "f")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 5; j++ {
				th.Compute(100)
				th.Lock(l, s)
				th.Add(x, 1, s)
				th.Unlock(l, s)
			}
		})
	}
	rec := sim.Run(p, sim.Config{Seed: 1})
	res, err := Run(rec.Trace, Options{Sched: MemS})
	if err != nil {
		t.Fatal(err)
	}
	var sum vtime.Duration
	for i := range rec.Trace.Events {
		sum += rec.Trace.Events[i].Cost
	}
	if res.Total != sum {
		t.Fatalf("MEM-S total %v != sum of costs %v (must serialize everything)", res.Total, sum)
	}
}

func TestReplayStuckOnImpossibleOrder(t *testing.T) {
	// An ELSC override demanding an acquisition order that contradicts
	// program order within one thread must be detected as stuck, not spin.
	p := sim.NewProgram("imp")
	l := p.NewLock("L")
	s := p.Site("f.c", 1, "f")
	p.AddThread(func(th *sim.Thread) {
		th.Lock(l, s)
		th.Unlock(l, s)
		th.Lock(l, s)
		th.Unlock(l, s)
	})
	rec := sim.Run(p, sim.Config{Seed: 1})
	order := rec.Trace.LockOrder()[l]
	rev := map[trace.LockID][]int32{l: {order[1], order[0]}}
	if _, err := Run(rec.Trace, Options{Sched: ELSCS, LockOrder: rev}); err == nil {
		t.Fatal("impossible order not detected")
	}
}

func TestSpinLockWaitBurnsCPUInReplay(t *testing.T) {
	p := sim.NewProgram("spin")
	l := p.NewSpinLock("S")
	s := p.Site("f.c", 1, "f")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			th.Lock(l, s)
			th.Compute(1500)
			th.Unlock(l, s)
		})
	}
	rec := sim.Run(p, sim.Config{Seed: 1})
	res, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpinWaste == 0 {
		t.Fatal("replay lost the spin-lock CPU burn")
	}
	if res.Waited != 0 {
		t.Fatalf("spin wait misclassified as blocking: %v", res.Waited)
	}
}
