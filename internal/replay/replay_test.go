package replay

import (
	"testing"

	"perfplay/internal/memmodel"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// buildContended records a program where threads contend on one lock with
// heterogeneous segment costs, the setting of Fig. 11.
func buildContended(threads, iters int) *sim.Result {
	p := sim.NewProgram("contended")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("w.c", 10, "work")
	for i := 0; i < threads; i++ {
		i := i
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < iters; j++ {
				th.Compute(vtime.Duration(300 + 137*i + 71*j))
				th.Lock(l, s)
				th.Add(x, 1, s)
				th.Compute(400)
				th.Unlock(l, s)
			}
		})
	}
	return sim.Run(p, sim.Config{Seed: 11})
}

func TestELSCReproducesRecordedTime(t *testing.T) {
	rec := buildContended(4, 8)
	res, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != rec.Total {
		t.Fatalf("ELSC replay total = %v, recorded %v — ELSC must reproduce the schedule exactly", res.Total, rec.Total)
	}
	// Replayed final memory must equal the recorded final state.
	if !res.FinalMem.Equal(rec.Trace.FinalMem) {
		t.Fatal("ELSC replay diverged in final memory")
	}
}

func TestELSCStableAcrossSeeds(t *testing.T) {
	rec := buildContended(3, 6)
	var totals []vtime.Duration
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(rec.Trace, Options{Sched: ELSCS, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		totals = append(totals, res.Total)
	}
	for _, tot := range totals {
		if tot != totals[0] {
			t.Fatalf("ELSC totals vary across seeds: %v", totals)
		}
	}
}

func TestOrigSVariesAcrossSeeds(t *testing.T) {
	rec := buildContended(4, 10)
	seen := map[vtime.Duration]bool{}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(rec.Trace, Options{Sched: OrigS, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Total] = true
	}
	if len(seen) < 2 {
		t.Fatalf("ORIG-S produced a single total across 10 seeds (%v); expected schedule-dependent variance", seen)
	}
}

func TestSyncSAddsEnforcedWaiting(t *testing.T) {
	rec := buildContended(4, 8)
	elsc, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	sync, err := Run(rec.Trace, Options{Sched: SyncS})
	if err != nil {
		t.Fatal(err)
	}
	if sync.Total < elsc.Total {
		t.Fatalf("SYNC-S total %v < ELSC-S total %v; Kendo-style enforcement should not be faster", sync.Total, elsc.Total)
	}
	if sync.EnforceWait == 0 {
		t.Fatal("SYNC-S reported no enforcement waiting on a contended trace")
	}
	// Deterministic across seeds.
	sync2, err := Run(rec.Trace, Options{Sched: SyncS, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if sync2.Total != sync.Total {
		t.Fatal("SYNC-S must be seed-independent")
	}
}

func TestMemSSlowestAndStable(t *testing.T) {
	rec := buildContended(4, 8)
	elsc, _ := Run(rec.Trace, Options{Sched: ELSCS})
	mem1, err := Run(rec.Trace, Options{Sched: MemS})
	if err != nil {
		t.Fatal(err)
	}
	mem2, err := Run(rec.Trace, Options{Sched: MemS, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	if mem1.Total != mem2.Total {
		t.Fatal("MEM-S must be deterministic")
	}
	if mem1.Total < elsc.Total {
		t.Fatalf("MEM-S total %v < ELSC total %v; serializing shared accesses cannot be faster", mem1.Total, elsc.Total)
	}
}

func TestReversedOrderChangesOrderSensitiveState(t *testing.T) {
	// Two threads write different constants to the same cell: reversing
	// the lock order must flip the final value (true contention), which
	// is exactly the signal the benign/TLCP reversed replay relies on.
	p := sim.NewProgram("ws")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("w.c", 1, "f")
	p.AddThread(func(th *sim.Thread) {
		th.Lock(l, s)
		th.Write(x, 1, s)
		th.Unlock(l, s)
	})
	p.AddThread(func(th *sim.Thread) {
		th.Compute(500)
		th.Lock(l, s)
		th.Write(x, 2, s)
		th.Unlock(l, s)
	})
	rec := sim.Run(p, sim.Config{Seed: 1})
	fwd, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	order := rec.Trace.LockOrder()[l]
	if len(order) != 2 {
		t.Fatalf("lock order = %v", order)
	}
	rev := map[trace.LockID][]int32{l: {order[1], order[0]}}
	bwd, err := Run(rec.Trace, Options{Sched: ELSCS, LockOrder: rev})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.FinalMem.Equal(bwd.FinalMem) {
		t.Fatal("reversed replay produced identical state for order-sensitive writes")
	}
}

func TestReversedOrderKeepsCommutativeState(t *testing.T) {
	// Commutative adds: reversing the order must NOT change final state
	// (benign pattern).
	p := sim.NewProgram("add")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("w.c", 1, "f")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			th.Compute(vtime.Duration(100 * (th.ID() + 1)))
			th.Lock(l, s)
			th.Add(x, 5, s)
			th.Unlock(l, s)
		})
	}
	rec := sim.Run(p, sim.Config{Seed: 1})
	order := rec.Trace.LockOrder()[l]
	rev := map[trace.LockID][]int32{l: {order[1], order[0]}}
	fwd, _ := Run(rec.Trace, Options{Sched: ELSCS})
	bwd, err := Run(rec.Trace, Options{Sched: ELSCS, LockOrder: rev})
	if err != nil {
		t.Fatal(err)
	}
	if !fwd.FinalMem.Equal(bwd.FinalMem) {
		t.Fatal("reversed replay changed state for commutative adds")
	}
}

func TestConstraintsEnforceOrder(t *testing.T) {
	// Build a trace manually: two independent compute events on two
	// threads; a constraint forces T1's event after T0's.
	tr := trace.New("c", 2)
	a := tr.Append(trace.Event{Thread: 0, Kind: trace.KCompute, Cost: 1000})
	b := tr.Append(trace.Event{Thread: 1, Kind: trace.KCompute, Cost: 10})
	tr.Constraints = []trace.Constraint{{After: a, Before: b}}
	res, err := Run(tr, Options{Sched: OrigS})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventStart[b] < res.EventEnd[a] {
		t.Fatalf("constraint violated: b starts %v before a ends %v", res.EventStart[b], res.EventEnd[a])
	}
	if res.Total != 1010 {
		t.Fatalf("total = %v, want 1010", res.Total)
	}
}

func TestLocksetMutualExclusion(t *testing.T) {
	// Two lockset CSs sharing one auxiliary lock must serialize; two with
	// disjoint locksets must overlap (RULE 4).
	aux1 := trace.AuxLockBase + 1
	aux2 := trace.AuxLockBase + 2
	aux3 := trace.AuxLockBase + 3

	tr := trace.New("ls", 2)
	a0 := tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux1}, Cost: 10})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KCompute, Cost: 1000})
	r0 := tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux1}, Cost: 10})
	a1 := tr.Append(trace.Event{Thread: 1, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux1, aux2}, Cost: 10})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KCompute, Cost: 1000})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux1, aux2}, Cost: 10})
	res, err := Run(tr, Options{Sched: OrigS})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventStart[a1] < res.EventEnd[r0] && res.EventStart[a0] < res.EventEnd[a1] {
		// Overlap check: intersecting locksets must not overlap.
		if res.EventStart[a1] < res.EventEnd[r0] {
			t.Fatalf("intersecting locksets overlapped: a1 starts %v, CS0 ends %v", res.EventStart[a1], res.EventEnd[r0])
		}
	}

	// Disjoint locksets: must run in parallel (total << serialized sum).
	tr2 := trace.New("ls2", 2)
	tr2.Append(trace.Event{Thread: 0, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux1}, Cost: 10})
	tr2.Append(trace.Event{Thread: 0, Kind: trace.KCompute, Cost: 1000})
	tr2.Append(trace.Event{Thread: 0, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux1}, Cost: 10})
	tr2.Append(trace.Event{Thread: 1, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux3}, Cost: 10})
	tr2.Append(trace.Event{Thread: 1, Kind: trace.KCompute, Cost: 1000})
	tr2.Append(trace.Event{Thread: 1, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux3}, Cost: 10})
	res2, err := Run(tr2, Options{Sched: OrigS})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Total > 1500 {
		t.Fatalf("disjoint locksets serialized: total %v", res2.Total)
	}
}

func TestDLSSkipsFinishedSources(t *testing.T) {
	aux1 := trace.AuxLockBase + 1
	aux2 := trace.AuxLockBase + 2
	tr := trace.New("dls", 2)
	// Source CS on T0 (owns aux1).
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux1}, Sources: []int32{-1}, Cost: 10})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KCompute, Cost: 100})
	rel := tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux1}, Cost: 10})
	// Target CS on T1 much later: lockset {aux1 (from source), aux2 (own)}.
	tr.Append(trace.Event{Thread: 1, Kind: trace.KSleep, Cost: 10000})
	acq := tr.Append(trace.Event{Thread: 1, Kind: trace.KLocksetAcq,
		Locks: []trace.LockID{aux1, aux2}, Sources: []int32{rel, -1}, Cost: 10})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux1, aux2}, Cost: 10})
	tr.Constraints = []trace.Constraint{{After: rel, Before: acq}}

	with, err := Run(tr, Options{Sched: OrigS, DLS: true, LocksetCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(tr, Options{Sched: OrigS, DLS: false, LocksetCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	// With DLS the finished source's lock is excluded: 1 member acquired
	// in the target CS instead of 2, and less maintenance charged.
	if with.LocksetOverhead >= without.LocksetOverhead {
		t.Fatalf("DLS overhead %v >= non-DLS %v", with.LocksetOverhead, without.LocksetOverhead)
	}
	if with.LocksetMembers >= without.LocksetMembers {
		t.Fatalf("DLS members %d >= non-DLS %d", with.LocksetMembers, without.LocksetMembers)
	}
}

func TestReplayValidatesAgainstRecordedFinalState(t *testing.T) {
	rec := buildContended(3, 5)
	for _, sched := range []Scheduler{OrigS, ELSCS, SyncS, MemS} {
		res, err := Run(rec.Trace, Options{Sched: sched, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		// All writes here are commutative adds, so every schedule must
		// reach the same final state.
		if !res.FinalMem.Equal(rec.Trace.FinalMem) {
			t.Fatalf("%v: final memory diverged", sched)
		}
	}
}

func TestSkipEventRestoresDelta(t *testing.T) {
	p := sim.NewProgram("skip")
	y := p.Mem.Alloc("y", 0)
	s := p.Site("s.c", 1, "f")
	p.AddThread(func(th *sim.Thread) {
		th.SkipRange(500, func(m *memmodel.Memory) { m.Store(y, 77) })
		th.Read(y, s)
	})
	rec := sim.Run(p, sim.Config{Seed: 1})
	res, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMem[y] != 77 {
		t.Fatalf("replayed y = %d, want 77 (skip delta must be restored)", res.FinalMem[y])
	}
}
