package replay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// TestFigure11OrderSensitivity reproduces the paper's Fig. 11: two
// critical sections contending for one lock with asymmetric successor
// segments — if A wins the program takes 8s, if B wins it takes 9s — so
// the lock interleaving alone changes the measured performance, which is
// why ELSC pins it.
func TestFigure11OrderSensitivity(t *testing.T) {
	build := func() *sim.Result {
		p := sim.NewProgram("fig11")
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("fig11.c", 1, "f")
		// T1: 3s precursor, CS A (2s), 3s successor => A path.
		p.AddThread(func(th *sim.Thread) {
			th.Compute(3000)
			th.Lock(l, s)
			th.Add(x, 1, s)
			th.Compute(2000)
			th.Unlock(l, s)
			th.Compute(3000)
		})
		// T2: 3s precursor, CS B (2s), 4s successor => B path.
		p.AddThread(func(th *sim.Thread) {
			th.Compute(3000)
			th.Lock(l, s)
			th.Add(x, 1, s)
			th.Compute(2000)
			th.Unlock(l, s)
			th.Compute(4000)
		})
		return sim.Run(p, sim.Config{Seed: 8})
	}
	rec := build()
	order := rec.Trace.LockOrder()[1]
	if len(order) != 2 {
		t.Fatalf("lock order = %v", order)
	}

	// Forward order (as recorded) and reversed order produce different
	// totals — exactly the 8s-vs-9s fluctuation of Fig. 11.
	fwd, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Run(rec.Trace, Options{Sched: ELSCS,
		LockOrder: map[trace.LockID][]int32{1: {order[1], order[0]}}})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Total == rev.Total {
		t.Fatalf("both orders cost %v; Fig. 11 requires order-dependent time", fwd.Total)
	}
	// The difference equals the successor-segment asymmetry (1s), give or
	// take lock-op costs.
	diff := fwd.Total - rev.Total
	if diff < 0 {
		diff = -diff
	}
	if diff < 500 || diff > 1500 {
		t.Fatalf("order cost difference = %v, want ~1000", diff)
	}
}

// TestFigure12ELSCvsKendo reproduces the Fig. 12 narrative: Kendo
// (SYNC-S) enforces a fixed input-driven order regardless of the actual
// schedule, deferring acquisitions and extending execution, while ELSC
// follows the schedule that actually happened and adds nothing.
func TestFigure12ELSCvsKendo(t *testing.T) {
	p := sim.NewProgram("fig12")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("fig12.c", 1, "f")
	// T0 reaches its acquisitions much later than T1; Kendo still makes
	// T1 wait for T0's logical progress.
	p.AddThread(func(th *sim.Thread) {
		for j := 0; j < 6; j++ {
			th.Compute(1200)
			th.Lock(l, s)
			th.Add(x, 1, s)
			th.Unlock(l, s)
		}
	})
	p.AddThread(func(th *sim.Thread) {
		for j := 0; j < 6; j++ {
			th.Compute(200)
			th.Lock(l, s)
			th.Add(x, 1, s)
			th.Unlock(l, s)
		}
	})
	rec := sim.Run(p, sim.Config{Seed: 4})
	elsc, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	kendo, err := Run(rec.Trace, Options{Sched: SyncS})
	if err != nil {
		t.Fatal(err)
	}
	if elsc.Total != rec.Total {
		t.Fatalf("ELSC total %v != recorded %v (schedule-driven adds nothing)", elsc.Total, rec.Total)
	}
	if kendo.Total <= elsc.Total {
		t.Fatalf("Kendo total %v <= ELSC %v; input-driven enforcement must defer the fast thread", kendo.Total, elsc.Total)
	}
	if kendo.EnforceWait == 0 {
		t.Fatal("Kendo reported no enforced waiting")
	}
}

// randomProgram builds a random but deadlock-free program for property
// tests: every thread acquires at most one lock at a time.
func randomProgram(seed int64, threads, locks, iters int) *sim.Result {
	p := sim.NewProgram("rand")
	rng := rand.New(rand.NewSource(seed))
	var ls []trace.LockID
	for i := 0; i < locks; i++ {
		ls = append(ls, p.NewLock("L"))
	}
	cells := p.Mem.AllocN("c", 4, 0)
	s := p.Site("rand.c", 1, "f")
	type step struct {
		gap, cs vtime.Duration
		lock    trace.LockID
		cell    int
		op      int
	}
	for i := 0; i < threads; i++ {
		var steps []step
		for j := 0; j < iters; j++ {
			steps = append(steps, step{
				gap:  vtime.Duration(50 + rng.Intn(400)),
				cs:   vtime.Duration(50 + rng.Intn(300)),
				lock: ls[rng.Intn(len(ls))],
				cell: rng.Intn(len(cells)),
				op:   rng.Intn(3),
			})
		}
		p.AddThread(func(th *sim.Thread) {
			for _, st := range steps {
				th.Compute(st.gap)
				th.Lock(st.lock, s)
				switch st.op {
				case 0:
					th.Read(cells[st.cell], s)
				case 1:
					th.Add(cells[st.cell], 1, s)
				default:
					th.Read(cells[st.cell], s)
					th.Add(cells[st.cell], 2, s)
				}
				th.Compute(st.cs)
				th.Unlock(st.lock, s)
			}
		})
	}
	return sim.Run(p, sim.Config{Seed: seed})
}

// Property: for any program, ELSC reproduces the recorded makespan and
// final state exactly, and all four schedulers reach the same final state
// (all updates here are commutative).
func TestSchedulerPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rec := randomProgram(seed, 2+int(uint64(seed)%3), 1+int(uint64(seed)%3), 6)
		elsc, err := Run(rec.Trace, Options{Sched: ELSCS})
		if err != nil || elsc.Total != rec.Total {
			return false
		}
		for _, sch := range []Scheduler{OrigS, SyncS, MemS} {
			res, err := Run(rec.Trace, Options{Sched: sch, Seed: seed})
			if err != nil {
				return false
			}
			if !res.FinalMem.Equal(rec.Trace.FinalMem) {
				return false
			}
			// Full serialization can never beat any parallel schedule.
			// (SYNC-S may: a different grant order sometimes happens to be
			// faster than the recorded one — Fig. 11 cuts both ways.)
			if sch == MemS && res.Total < elsc.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every event's start is within [0, Total] and per-thread starts
// are monotone under every scheduler.
func TestEventTimesMonotoneQuick(t *testing.T) {
	f := func(seed int64, schedPick uint8) bool {
		rec := randomProgram(seed, 3, 2, 5)
		sch := []Scheduler{OrigS, ELSCS, SyncS, MemS}[schedPick%4]
		res, err := Run(rec.Trace, Options{Sched: sch, Seed: seed})
		if err != nil {
			return false
		}
		for t, evs := range rec.Trace.PerThread() {
			var last vtime.Time
			for _, idx := range evs {
				if res.EventStart[idx] < last {
					return false
				}
				if res.EventEnd[idx] < res.EventStart[idx] {
					return false
				}
				last = res.EventStart[idx]
				_ = t
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
