package replay

import (
	"reflect"
	"sync"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
)

// TestPooledEngineMatchesFresh interleaves replays of different traces,
// schemes, and options so recycled engines keep crossing shape
// boundaries (different event counts, thread counts, schedulers,
// constraints); every result must equal a first-run result computed
// before any recycling could kick in.
func TestPooledEngineMatchesFresh(t *testing.T) {
	recA := buildContended(4, 8)
	recB := buildContended(2, 3)

	type run struct {
		name string
		rec  *sim.Result
		opts Options
	}
	runs := []run{
		{"elsc-big", recA, Options{Sched: ELSCS}},
		{"orig-small", recB, Options{Sched: OrigS, Seed: 5}},
		{"mems-big", recA, Options{Sched: MemS}},
		{"sync-small", recB, Options{Sched: SyncS}},
		{"elsc-small", recB, Options{Sched: ELSCS, LocksetCost: 3}},
	}

	want := make([]*Result, len(runs))
	for i, r := range runs {
		res, err := Run(r.rec.Trace, r.opts)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		want[i] = res
	}
	// Several more rounds: by now every run executes on a recycled
	// engine, usually one last used with a different trace shape.
	for round := 0; round < 4; round++ {
		for i, r := range runs {
			res, err := Run(r.rec.Trace, r.opts)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, r.name, err)
			}
			if !reflect.DeepEqual(res, want[i]) {
				t.Fatalf("round %d %s: pooled result diverged from fresh run", round, r.name)
			}
		}
	}
}

// TestPooledEngineConcurrent hammers Run from many goroutines over
// shared traces; with -race this pins that pooled engines never share
// state across concurrent replays and results stay deterministic.
func TestPooledEngineConcurrent(t *testing.T) {
	rec := buildContended(4, 6)
	base, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := Run(rec.Trace, Options{Sched: ELSCS})
				if err != nil {
					errs <- err
					return
				}
				if res.Total != base.Total || !res.FinalMem.Equal(base.FinalMem) || res.ReadHash != base.ReadHash {
					errs <- errMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent pooled replay diverged" }

// TestPooledEngineAfterError: a failed replay (stuck schedule) must
// still recycle cleanly and not poison the next run.
func TestPooledEngineAfterError(t *testing.T) {
	rec := buildContended(2, 2)
	good, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	// An impossible extra constraint (event waits on itself) wedges the
	// replay immediately.
	bad := Options{Sched: ELSCS, ExtraConstraints: []trace.Constraint{{After: 3, Before: 3}}}
	if _, err := Run(rec.Trace, bad); err == nil {
		t.Fatal("self-dependent constraint replayed successfully")
	}
	again, err := Run(rec.Trace, Options{Sched: ELSCS})
	if err != nil {
		t.Fatal(err)
	}
	if again.Total != good.Total || again.ReadHash != good.ReadHash {
		t.Fatal("run after a failed replay diverged")
	}
}

// BenchmarkPooledReplay measures the steady-state cost of a full ELSC
// replay with engine recycling (the pipeline's per-scheme replay path).
func BenchmarkPooledReplay(b *testing.B) {
	rec := buildContended(4, 16)
	rec.Trace.Warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(rec.Trace, Options{Sched: ELSCS}); err != nil {
			b.Fatal(err)
		}
	}
}
