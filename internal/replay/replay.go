// Package replay implements PerfPlay's data-driven trace replayer and the
// four scheduling schemes evaluated in the paper (Sec. 6.1):
//
//	ORIG-S — free parallel replay with seeded lock-arrival jitter; models
//	         the nondeterministic native re-execution whose run-to-run
//	         variance Fig. 11 illustrates.
//	ELSC-S — the paper's enforced locking serialization constraint: every
//	         lock's acquisitions replay in the recorded order. Because the
//	         recorded order is the schedule the costs already imply, ELSC
//	         adds no waiting, giving both stability and precision.
//	SYNC-S — a Kendo-style input-driven scheme: lock acquisitions are
//	         granted in a deterministic logical order computed from
//	         per-thread progress, independent of the recorded schedule,
//	         which introduces enforced waits (Fig. 12).
//	MEM-S  — a PinPlay/CoreDet-style scheme enforcing a total order over
//	         all shared-memory accesses; stable but far slower.
//
// The replayer re-executes reads and writes against a fresh memory image
// (writes carry their operation, not just the stored value), so modified
// replays — the reversed replay used to separate benign ULCPs from true
// contention, and the transformed ULCP-free replay — produce genuinely
// different final states when the order matters.
package replay

import (
	"fmt"
	"sync"

	"perfplay/internal/memmodel"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// Scheduler selects the replay enforcement scheme.
type Scheduler int

// The four schemes of Sec. 6.1.
const (
	OrigS Scheduler = iota
	ELSCS
	SyncS
	MemS
)

// String names the scheduler as in the paper's figures.
func (s Scheduler) String() string {
	switch s {
	case OrigS:
		return "ORIG-S"
	case ELSCS:
		return "ELSC-S"
	case SyncS:
		return "SYNC-S"
	case MemS:
		return "MEM-S"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Options configures a replay.
type Options struct {
	// Sched is the enforcement scheme.
	Sched Scheduler
	// Seed drives ORIG-S arrival jitter; ignored by the other schemes.
	Seed int64
	// JitterWindow bounds ORIG-S lock-arrival jitter. Zero selects the
	// default (200 ticks, a fraction of a typical critical section).
	JitterWindow vtime.Duration
	// LockOrder overrides the enforced per-lock acquisition order for
	// ELSC-S. Keys are lock IDs; values are the global event indices of
	// that lock's KLockAcq events in the desired order. Nil uses the
	// recorded order. The reversed replay of Sec. 3.1 passes a swapped
	// order here.
	LockOrder map[trace.LockID][]int32
	// DLS enables the dynamic locking strategy (Fig. 9) on lockset
	// acquisitions: auxiliary locks whose source critical section already
	// finished are excluded from the acquired set.
	DLS bool
	// LocksetCost is the modelled per-member maintenance cost charged at
	// each lockset acquisition (RULE 4 intersection bookkeeping). Zero
	// disables the cost model; Table 3 compares replays with it on.
	LocksetCost vtime.Duration
	// DLSCheckCost is the cost of one END-flag check under DLS (cheaper
	// than full lockset maintenance). Zero selects LocksetCost/8.
	DLSCheckCost vtime.Duration
	// ExtraConstraints adds happens-before edges beyond those in the
	// trace. The reversed replay of Sec. 3.1 forces "C2 releases before C1
	// acquires" this way while leaving every other ordering natural.
	ExtraConstraints []trace.Constraint
}

// Result is the outcome of one replay.
type Result struct {
	// Total is the replayed makespan.
	Total vtime.Duration
	// EventEnd holds the completion timestamp of every executed event,
	// indexed like the trace's Events slice.
	EventEnd []vtime.Time
	// EventStart holds the start timestamp of every executed event.
	EventStart []vtime.Time
	// PerThreadCPU is CPU consumed per thread (including spin waste and
	// lockset maintenance).
	PerThreadCPU []vtime.Duration
	// Waited is total blocked (non-CPU) waiting across threads.
	Waited vtime.Duration
	// SpinWaste is CPU burned waiting on spin locks.
	SpinWaste vtime.Duration
	// EnforceWait is waiting attributable purely to schedule enforcement
	// (SYNC-S / MEM-S chains), not to mutual exclusion.
	EnforceWait vtime.Duration
	// LocksetOverhead is the total maintenance cost charged for lockset
	// acquisitions.
	LocksetOverhead vtime.Duration
	// LocksetAcqs counts lockset acquisitions; LocksetMembers sums the
	// effective member counts actually acquired (after DLS filtering).
	LocksetAcqs, LocksetMembers int
	// FinalMem is the re-executed final memory image.
	FinalMem memmodel.Snapshot
	// ReadHash digests every value observed by every read, per thread in
	// program order, combined order-independently across threads. Two
	// replays "produce the same result" in the reversed-replay sense
	// (Sec. 3.1) iff their final memories AND read observations match.
	ReadHash uint64

	readHashes []uint64
}

// SameOutcome reports whether two replays observed the same reads and
// reached the same final state — the equality test of the reversed replay.
func (r *Result) SameOutcome(o *Result) bool {
	return r.ReadHash == o.ReadHash && r.FinalMem.Equal(o.FinalMem)
}

// CPUTotal sums per-thread CPU.
func (r *Result) CPUTotal() vtime.Duration {
	var s vtime.Duration
	for _, c := range r.PerThreadCPU {
		s += c
	}
	return s
}

type lockState struct {
	held   bool
	freeAt vtime.Time
}

type threadState struct {
	id    int32
	evs   []int32 // global indices of this thread's events
	pos   int
	clock vtime.Time
	cpu   vtime.Duration
}

type engine struct {
	tr   *trace.Trace
	opts Options
	mem  *memmodel.Memory

	threads []*threadState
	locks   map[trace.LockID]*lockState

	// ELSC per-lock cursors: position in the enforced acquisition order.
	elscOrder map[trace.LockID][]int32
	elscPos   map[trace.LockID]int

	// MEM-S: the recorded total order over every event.
	memOrder   []int32
	memPos     int
	memLastEnd vtime.Time

	// Constraint bookkeeping.
	prereqs map[int32][]int32
	done    []bool

	// Lockset bookkeeping: acquired member subset per open lockset-acq
	// event, and a per-thread stack of open acquisitions (transform emits
	// them well nested).
	heldSets map[int32][]trace.LockID
	openSets [][]int32

	// Barrier bookkeeping: episode key -> member event indices, and the
	// set of members whose thread has arrived (is pending at the event),
	// with arrival clocks.
	barGroups  map[barKey][]int32
	barArrived map[barKey]map[int32]vtime.Time
	// newArrival notes that an eligibility pass registered a barrier
	// arrival: the pass must be retried before declaring the replay stuck,
	// since the registration may have completed an episode.
	newArrival bool

	res *Result

	// threadBuf backs the threads pointer slice so recycled engines
	// reuse the threadState allocations.
	threadBuf []threadState
}

// barKey identifies one barrier episode.
type barKey struct {
	bar trace.LockID
	gen int64
}

// enginePool recycles engine scratch state across replays. The ULCP
// pipeline replays the same trace hundreds of times (per scheme, per
// transformed variant, per quantification sample); everything the
// engine allocates except the escaping Result is reusable.
var enginePool = sync.Pool{New: func() any { return new(engine) }}

// reset prepares a (possibly recycled) engine for one run. Every field
// is either rebuilt from (tr, opts) or cleared in place, keeping map
// and slice capacity from previous runs.
func (e *engine) reset(tr *trace.Trace, opts Options) {
	e.tr, e.opts = tr, opts
	if e.mem == nil {
		e.mem = memmodel.New()
	} else {
		e.mem.Reset()
	}
	if e.locks == nil {
		e.locks = make(map[trace.LockID]*lockState)
	} else {
		// Keep the entries: lock IDs recur across replays of one trace,
		// and lock() lazily revives whatever the next trace needs.
		for _, ls := range e.locks {
			ls.held = false
			ls.freeAt = 0
		}
	}

	nev, nt := len(tr.Events), tr.NumThreads
	e.res = &Result{
		EventEnd:     make([]vtime.Time, nev),
		EventStart:   make([]vtime.Time, nev),
		PerThreadCPU: make([]vtime.Duration, nt),
		readHashes:   make([]uint64, nt),
	}
	if cap(e.done) >= nev {
		e.done = e.done[:nev]
		clear(e.done)
	} else {
		e.done = make([]bool, nev)
	}
	if e.heldSets == nil {
		e.heldSets = make(map[int32][]trace.LockID)
	} else {
		clear(e.heldSets)
	}
	if cap(e.openSets) >= nt {
		e.openSets = e.openSets[:nt]
		for i := range e.openSets {
			e.openSets[i] = e.openSets[i][:0]
		}
	} else {
		e.openSets = make([][]int32, nt)
	}
	if e.barGroups != nil {
		clear(e.barGroups)
		clear(e.barArrived)
	}

	if cap(e.threadBuf) >= nt {
		e.threadBuf = e.threadBuf[:nt]
	} else {
		e.threadBuf = make([]threadState, nt)
	}
	e.threads = e.threads[:0]
	for t, evs := range tr.PerThread() {
		e.threadBuf[t] = threadState{id: int32(t), evs: evs}
		e.threads = append(e.threads, &e.threadBuf[t])
	}

	e.elscOrder = nil
	if e.elscPos != nil {
		clear(e.elscPos)
	}
	e.memOrder, e.memPos, e.memLastEnd = e.memOrder[:0], 0, 0
	e.newArrival = false
	if e.prereqs != nil {
		clear(e.prereqs)
	}
}

// release returns the engine to the pool, dropping every reference that
// would otherwise keep the trace, the caller's options, or the escaping
// Result alive while the engine idles in the pool.
func (e *engine) release() {
	e.tr = nil
	e.opts = Options{}
	e.res = nil
	e.elscOrder = nil
	e.threads = e.threads[:0]
	for i := range e.threadBuf {
		e.threadBuf[i].evs = nil
	}
	enginePool.Put(e)
}

// takeHeldSet pops the thread's innermost open lockset acquisition and
// returns the member subset it actually acquired.
func (e *engine) takeHeldSet(ts *threadState, _ *trace.Event) ([]trace.LockID, bool) {
	stack := e.openSets[ts.id]
	if len(stack) == 0 {
		return nil, false
	}
	acq := stack[len(stack)-1]
	e.openSets[ts.id] = stack[:len(stack)-1]
	members := e.heldSets[acq]
	delete(e.heldSets, acq)
	return members, true
}

// Run replays the trace under the given options.
func Run(tr *trace.Trace, opts Options) (*Result, error) {
	if opts.JitterWindow == 0 {
		opts.JitterWindow = 200
	}
	if opts.DLSCheckCost == 0 && opts.LocksetCost > 0 {
		opts.DLSCheckCost = opts.LocksetCost / 8
		if opts.DLSCheckCost == 0 {
			opts.DLSCheckCost = 1
		}
	}
	e := enginePool.Get().(*engine)
	defer e.release()
	e.reset(tr, opts)
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.KBarrier {
			if e.barGroups == nil {
				e.barGroups = make(map[barKey][]int32)
				e.barArrived = make(map[barKey]map[int32]vtime.Time)
			}
			k := barKey{bar: tr.Events[i].Lock, gen: tr.Events[i].Value}
			e.barGroups[k] = append(e.barGroups[k], int32(i))
		}
	}
	for a, v := range tr.InitMem {
		e.mem.Store(a, v)
	}

	switch opts.Sched {
	case ELSCS:
		e.elscOrder = opts.LockOrder
		if e.elscOrder == nil {
			e.elscOrder = tr.LockOrder()
		}
		if e.elscPos == nil {
			e.elscPos = make(map[trace.LockID]int, len(e.elscOrder))
		}
	case MemS:
		// Deterministic-everything: the recorded order of every event.
		if cap(e.memOrder) < len(tr.Events) {
			e.memOrder = make([]int32, len(tr.Events))
		} else {
			e.memOrder = e.memOrder[:len(tr.Events)]
		}
		for i := range e.memOrder {
			e.memOrder[i] = int32(i)
		}
	}

	if len(tr.Constraints)+len(opts.ExtraConstraints) > 0 {
		if e.prereqs == nil {
			e.prereqs = make(map[int32][]int32, len(tr.Constraints)+len(opts.ExtraConstraints))
		}
		for _, c := range tr.Constraints {
			e.prereqs[c.Before] = append(e.prereqs[c.Before], c.After)
		}
		for _, c := range opts.ExtraConstraints {
			e.prereqs[c.Before] = append(e.prereqs[c.Before], c.After)
		}
	}

	if err := e.loop(); err != nil {
		return nil, err
	}
	res := e.res
	var total vtime.Time
	for i, ts := range e.threads {
		if ts.clock > total {
			total = ts.clock
		}
		res.PerThreadCPU[i] = ts.cpu
	}
	res.Total = vtime.Duration(total)
	res.FinalMem = e.mem.Snapshot()
	for t, h := range res.readHashes {
		// Mix per-thread digests order-independently across threads.
		x := h + uint64(t)*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		res.ReadHash ^= x
	}
	return res, nil
}

// next returns the thread's next pending event index, or -1.
func (ts *threadState) next() int32 {
	if ts.pos >= len(ts.evs) {
		return -1
	}
	return ts.evs[ts.pos]
}

func (e *engine) loop() error {
	remaining := 0
	for _, ts := range e.threads {
		remaining += len(ts.evs)
	}
	for remaining > 0 {
		best := -1
		var bestStart vtime.Time
		var bestPrio vtime.Time
		for i, ts := range e.threads {
			idx := ts.next()
			if idx < 0 {
				continue
			}
			start, ok := e.eligible(ts, idx)
			if !ok {
				continue
			}
			prio := start
			if e.opts.Sched == OrigS && e.tr.Events[idx].Kind == trace.KLockAcq {
				prio = start.Add(e.jitter(idx))
			}
			if best == -1 || prio < bestPrio || (prio == bestPrio && i < best) {
				best, bestStart, bestPrio = i, start, prio
			}
		}
		if best == -1 {
			if e.newArrival {
				e.newArrival = false
				continue // a barrier arrival registered: retry the pass
			}
			return e.stuckErr()
		}
		e.exec(e.threads[best], bestStart)
		remaining--
	}
	return nil
}

func (e *engine) stuckErr() error {
	var pend []string
	for _, ts := range e.threads {
		if idx := ts.next(); idx >= 0 {
			ev := &e.tr.Events[idx]
			pend = append(pend, fmt.Sprintf("T%d@ev%d(%v)", ts.id, idx, ev.Kind))
		}
	}
	return fmt.Errorf("replay stuck under %v: pending %v", e.opts.Sched, pend)
}

// jitter derives a deterministic pseudo-random arrival perturbation for an
// event from the replay seed (ORIG-S only).
func (e *engine) jitter(idx int32) vtime.Duration {
	h := uint64(e.opts.Seed)*0x9e3779b97f4a7c15 + uint64(idx)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return vtime.Duration(h % uint64(e.opts.JitterWindow))
}

// eligible reports whether the event can execute now and the earliest
// virtual time it may start.
func (e *engine) eligible(ts *threadState, idx int32) (vtime.Time, bool) {
	ev := &e.tr.Events[idx]
	start := ts.clock

	for _, p := range e.prereqs[idx] {
		if !e.done[p] {
			return 0, false
		}
		if e.res.EventEnd[p] > start {
			start = e.res.EventEnd[p]
		}
	}

	// Barrier arrivals register unconditionally (before any enforcement
	// gate): other participants' eligibility depends on seeing this
	// thread parked at the episode.
	if ev.Kind == trace.KBarrier {
		k := barKey{bar: ev.Lock, gen: ev.Value}
		arr := e.barArrived[k]
		if arr == nil {
			arr = make(map[int32]vtime.Time)
			e.barArrived[k] = arr
		}
		if _, ok := arr[idx]; !ok {
			arr[idx] = start
			e.newArrival = true
		}
	}

	// MEM-S enforces a total order over all shared-memory access points:
	// in a trace whose compute segments summarize the instructions between
	// accesses, that pins every event to the recorded global sequence —
	// the whole execution serializes, which is exactly the 2x-20x
	// PinPlay/CoreDet regime the paper cites.
	if e.opts.Sched == MemS {
		if e.memPos >= len(e.memOrder) || e.memOrder[e.memPos] != idx {
			return 0, false
		}
		if e.memLastEnd > start {
			start = e.memLastEnd
		}
	}

	switch ev.Kind {
	case trace.KLockAcq:
		if order, ok := e.elscOrderFor(ev.Lock); ok {
			pos := e.elscPos[ev.Lock]
			if pos >= len(order) || order[pos] != idx {
				return 0, false
			}
		}
		if e.opts.Sched == SyncS {
			// Kendo-style input-driven determinism: a thread may acquire
			// only when its logical clock (its position in its own event
			// stream) is globally minimal, so fast threads wait for slow
			// ones at every acquisition — the enforced waiting Fig. 12
			// contrasts with ELSC. Threads already parked on a held lock
			// are exempt (their logical clocks advance while spinning).
			if wait, ok := e.kendoBarrier(ts); !ok {
				return 0, false
			} else if wait > start {
				start = wait
			}
		}
		ls := e.lock(ev.Lock)
		if ls.held {
			return 0, false
		}
		if ls.freeAt > start {
			start = ls.freeAt
		}
	case trace.KLocksetAcq:
		members := e.effectiveLockset(ev)
		for _, l := range members {
			ls := e.lock(l)
			if ls.held {
				return 0, false
			}
			if ls.freeAt > start {
				start = ls.freeAt
			}
		}
	case trace.KBarrier:
		k := barKey{bar: ev.Lock, gen: ev.Value}
		arr := e.barArrived[k]
		if len(arr) < len(e.barGroups[k]) {
			return 0, false // waiting for the other participants
		}
		for _, at := range arr {
			if at > start {
				start = at
			}
		}
	}
	return start, true
}

func (e *engine) elscOrderFor(l trace.LockID) ([]int32, bool) {
	if e.elscOrder == nil {
		return nil, false
	}
	order, ok := e.elscOrder[l]
	return order, ok
}

// kendoBarrier implements SYNC-S's logical-clock gate for a thread about
// to acquire a lock: the acquisition may start only once every other
// thread's progress counter (events completed) has reached this thread's,
// and no earlier than the moment the slowest of them got there. Threads
// parked on a held mutex are exempt — Kendo lets a spinning thread's
// logical clock keep advancing.
func (e *engine) kendoBarrier(ts *threadState) (vtime.Time, bool) {
	p := ts.pos
	var wait vtime.Time
	for _, o := range e.threads {
		if o == ts {
			continue
		}
		limit := p
		if limit > len(o.evs) {
			limit = len(o.evs)
		}
		if o.pos < limit {
			idx := o.next()
			ev := &e.tr.Events[idx]
			if ev.Kind == trace.KLockAcq && e.lock(ev.Lock).held {
				continue // spinning: its logical clock advances
			}
			return 0, false
		}
		if limit > 0 {
			if end := e.res.EventEnd[o.evs[limit-1]]; end > wait {
				wait = end
			}
		}
	}
	return wait, true
}

// effectiveLockset returns the member locks actually acquired, applying
// the dynamic locking strategy when enabled: a source critical section
// that already finished (its release event executed) contributes no lock.
func (e *engine) effectiveLockset(ev *trace.Event) []trace.LockID {
	if !e.opts.DLS || len(ev.Sources) != len(ev.Locks) {
		return ev.Locks
	}
	members := make([]trace.LockID, 0, len(ev.Locks))
	for i, l := range ev.Locks {
		src := ev.Sources[i]
		if src >= 0 && e.done[src] {
			continue // source END flag is set: exclude its lock
		}
		members = append(members, l)
	}
	return members
}

func (e *engine) lock(l trace.LockID) *lockState {
	ls, ok := e.locks[l]
	if !ok {
		ls = &lockState{}
		e.locks[l] = ls
	}
	return ls
}

// exec runs one event starting at the given time.
func (e *engine) exec(ts *threadState, start vtime.Time) {
	idx := ts.next()
	ev := &e.tr.Events[idx]
	wait := start.Sub(ts.clock)
	if wait > 0 {
		if ev.Kind == trace.KLockAcq && ev.Spin {
			ts.cpu += wait
			e.res.SpinWaste += wait
		} else {
			e.res.Waited += wait
			if e.opts.Sched == SyncS && ev.Kind == trace.KLockAcq {
				e.res.EnforceWait += wait
			}
			if e.opts.Sched == MemS {
				e.res.EnforceWait += wait
			}
		}
	}
	cost := ev.Cost
	switch ev.Kind {
	case trace.KThreadStart, trace.KThreadEnd:
		cost = 0
	case trace.KLockAcq:
		e.lock(ev.Lock).held = true
		if e.elscPos != nil {
			if _, ok := e.elscOrderFor(ev.Lock); ok {
				e.elscPos[ev.Lock]++
			}
		}
	case trace.KLockRel:
		ls := e.lock(ev.Lock)
		ls.held = false
		ls.freeAt = start.Add(cost)
	case trace.KLocksetAcq:
		members := e.effectiveLockset(ev)
		for _, l := range members {
			e.lock(l).held = true
		}
		// Maintenance cost model: without DLS, RULE-4 bookkeeping walks
		// the full lockset; with DLS, each member costs one cheap END
		// check and only extra members beyond the degenerate single-lock
		// case pay full maintenance (a one-lock set is a plain mutex,
		// whose cost the event already carries).
		var maint vtime.Duration
		if e.opts.LocksetCost > 0 {
			if e.opts.DLS {
				maint = e.opts.DLSCheckCost * vtime.Duration(len(ev.Locks))
				if extra := len(members) - 1; extra > 0 {
					maint += e.opts.LocksetCost * vtime.Duration(extra)
				}
			} else {
				maint = e.opts.LocksetCost * vtime.Duration(len(ev.Locks))
			}
		}
		cost += maint
		e.res.LocksetOverhead += maint
		e.res.LocksetAcqs++
		e.res.LocksetMembers += len(members)
		// Remember the acquired subset for the matching release.
		e.heldSets[idx] = members
		e.openSets[ts.id] = append(e.openSets[ts.id], idx)
	case trace.KLocksetRel:
		// The matching acquisition is the latest unreleased lockset-acq of
		// this thread; transform emits them well nested, and we track the
		// acquired subset by scanning our open map.
		if members, ok := e.takeHeldSet(ts, ev); ok {
			// Release-side maintenance mirrors acquisition: without DLS
			// the whole lockset is walked, with DLS only the members that
			// were actually acquired.
			var maint vtime.Duration
			if e.opts.LocksetCost > 0 {
				if e.opts.DLS {
					if extra := len(members) - 1; extra > 0 {
						maint = e.opts.LocksetCost * vtime.Duration(extra)
					}
				} else {
					maint = e.opts.LocksetCost * vtime.Duration(len(ev.Locks))
				}
			}
			cost += maint
			e.res.LocksetOverhead += maint
			end := start.Add(cost)
			for _, l := range members {
				ls := e.lock(l)
				ls.held = false
				ls.freeAt = end
			}
		}
	case trace.KRead:
		// Re-execute the load against the replayed memory image and fold
		// the observed value into the thread's read digest.
		v := e.mem.Load(ev.Addr)
		h := e.res.readHashes[ts.id]
		h = h*1099511628211 + uint64(v) + uint64(ev.Addr)<<32
		e.res.readHashes[ts.id] = h
	case trace.KWrite:
		cur := e.mem.Load(ev.Addr)
		e.mem.Store(ev.Addr, ev.Op.Apply(cur, ev.Value))
	case trace.KSkip:
		for a, v := range ev.Delta {
			e.mem.Store(a, v)
		}
	case trace.KSleep:
		// Time passes without CPU.
	}

	end := start.Add(cost)
	switch ev.Kind {
	case trace.KSleep, trace.KThreadStart, trace.KThreadEnd:
		// no CPU
	default:
		ts.cpu += cost
	}
	if e.opts.Sched == MemS {
		e.memPos++
		e.memLastEnd = end
	}
	ts.clock = end
	e.res.EventStart[idx] = start
	e.res.EventEnd[idx] = end
	e.done[idx] = true
	ts.pos++
}
