package cachepolicy

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"perfplay/internal/clusterapi"
)

func status(queueLen int, keys ...string) clusterapi.PeerStatus {
	return clusterapi.PeerStatus{QueueLen: queueLen, CacheKeys: keys}
}

func TestProbeOrderRanking(t *testing.T) {
	peers := []string{"a", "b", "c", "d", "e"}
	view := map[string]clusterapi.PeerStatus{
		"a": status(9),                  // healthy, deep queue
		"b": status(1),                  // healthy, idlest
		"c": status(5, "K"),             // hinted
		"d": {QueueLen: 0, Err: "down"}, // failed probe ranks with the unseen
		// e: never probed
	}
	hinted := func(st clusterapi.PeerStatus) bool { return st.HintsKey("K") }

	got := ProbeOrder(peers, view, hinted, 0)
	want := []string{"c", "b", "a", "d", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ProbeOrder = %v, want %v", got, want)
	}

	if got := ProbeOrder(peers, view, hinted, 2); !reflect.DeepEqual(got, []string{"c", "b"}) {
		t.Fatalf("fanout-2 ProbeOrder = %v, want [c b]", got)
	}
}

func TestProbeOrderHintedButUnhealthyNotPromoted(t *testing.T) {
	view := map[string]clusterapi.PeerStatus{
		"a": {QueueLen: 0, CacheKeys: []string{"K"}, Err: "timeout"},
		"b": status(3),
	}
	got := ProbeOrder([]string{"a", "b"}, view,
		func(st clusterapi.PeerStatus) bool { return st.HintsKey("K") }, 0)
	if !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("ProbeOrder = %v, want the failed hinter demoted", got)
	}
}

func TestProbeOrderDoesNotMutateInput(t *testing.T) {
	peers := []string{"z", "a"}
	ProbeOrder(peers, map[string]clusterapi.PeerStatus{"a": status(0)}, func(clusterapi.PeerStatus) bool { return false }, 0)
	if !reflect.DeepEqual(peers, []string{"z", "a"}) {
		t.Fatalf("input slice mutated: %v", peers)
	}
}

// fakeFetcher is an in-memory Transport over string artifacts.
var _ Transport[string, string] = (*fakeFetcher)(nil)

type fakeFetcher struct {
	results map[string]map[string]string // peer -> key -> artifact
	tables  map[string]map[string]string
	down    map[string]bool
	probed  []string
}

func (f *fakeFetcher) FetchResult(peer, key string, topK int) (string, error) {
	f.probed = append(f.probed, peer)
	if f.down[peer] {
		return "", errors.New("dial: connection refused")
	}
	if art, ok := f.results[peer][key]; ok {
		return art, nil
	}
	return "", errors.New("cache miss")
}

func (f *fakeFetcher) FetchTable(peer, key string) (string, error) {
	f.probed = append(f.probed, peer)
	if f.down[peer] {
		return "", errors.New("dial: connection refused")
	}
	if art, ok := f.tables[peer][key]; ok {
		return art, nil
	}
	return "", errors.New("cache miss")
}

func (f *fakeFetcher) Submit(base string) (SubmitReply, error) {
	return SubmitReply{}, errors.New("not an admission transport")
}

func TestProbeResultFirstHitWins(t *testing.T) {
	tr := &fakeFetcher{
		results: map[string]map[string]string{"b": {"K": "artifact"}},
		down:    map[string]bool{"a": true},
	}
	p := &Prober[string, string]{Transport: tr, Fanout: 3}
	view := map[string]clusterapi.PeerStatus{
		"a": status(0, "K"), // hinted and idlest, but dead: must degrade past it
		"b": status(4),
		"c": status(1),
	}
	art, peer, ok := p.ProbeResult([]string{"a", "b", "c"}, view, "K", 5)
	if !ok || art != "artifact" || peer != "b" {
		t.Fatalf("ProbeResult = (%q, %q, %v), want hit from b", art, peer, ok)
	}
	// Probe order was hinted-a, idlest-c, then b; a errored, c missed.
	if !reflect.DeepEqual(tr.probed, []string{"a", "c", "b"}) {
		t.Fatalf("probed %v, want [a c b]", tr.probed)
	}
}

func TestProbeResultMissEverywhereIsOK(t *testing.T) {
	tr := &fakeFetcher{down: map[string]bool{"a": true, "b": true}}
	p := &Prober[string, string]{Transport: tr, Fanout: 0}
	art, peer, ok := p.ProbeResult([]string{"a", "b"}, nil, "K", 5)
	if ok || art != "" || peer != "" {
		t.Fatalf("ProbeResult = (%q, %q, %v), want clean miss", art, peer, ok)
	}
}

func TestProbeResultHonorsFanout(t *testing.T) {
	tr := &fakeFetcher{}
	p := &Prober[string, string]{Transport: tr, Fanout: 2}
	p.ProbeResult([]string{"a", "b", "c", "d"}, nil, "K", 5)
	if len(tr.probed) != 2 {
		t.Fatalf("probed %d peers, want fanout bound 2", len(tr.probed))
	}
}

func TestProbeTableAcceptGate(t *testing.T) {
	tr := &fakeFetcher{tables: map[string]map[string]string{
		"a": {"T": "corrupt"},
		"b": {"T": "good"},
	}}
	p := &Prober[string, string]{Transport: tr}
	var rejected []string
	peer, ok := p.ProbeTable([]string{"a", "b"}, nil, "sha256:d", "T", func(art string) bool {
		if art != "good" {
			rejected = append(rejected, art)
			return false
		}
		return true
	})
	if !ok || peer != "b" {
		t.Fatalf("ProbeTable = (%q, %v), want accepted table from b", peer, ok)
	}
	if !reflect.DeepEqual(rejected, []string{"corrupt"}) {
		t.Fatalf("accept saw %v, want the corrupt table offered first", rejected)
	}
}

func TestProbeObserveHook(t *testing.T) {
	tr := &fakeFetcher{results: map[string]map[string]string{"b": {"K": "x"}}}
	var seen []string
	p := &Prober[string, string]{
		Transport: tr,
		Observe: func(peer, kind string, hit bool, start, end time.Time) {
			if start.IsZero() || end.Before(start) {
				t.Errorf("bad observation window [%v, %v]", start, end)
			}
			seen = append(seen, fmt.Sprintf("%s/%s/%v", peer, kind, hit))
		},
	}
	p.ProbeResult([]string{"a", "b"}, nil, "K", 5)
	if !reflect.DeepEqual(seen, []string{"a/result/false", "b/result/true"}) {
		t.Fatalf("observations %v", seen)
	}
}

func TestDefaultsAreSane(t *testing.T) {
	d := Defaults()
	if d.ProbeFanout <= 0 || d.ProbeTimeout <= 0 || d.HintKeys <= 0 || d.SubmitHops <= 0 {
		t.Fatalf("Defaults() has a non-positive knob: %+v", d)
	}
}
