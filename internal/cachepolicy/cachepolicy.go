// Package cachepolicy is the transport-independent policy half of the
// cluster cache layer: probe ordering (gossip-hinted peers first, then
// the idlest), bounded fan-out, degrade-to-local probing, and the
// multi-hop Retry-Peer admission chain. The daemon (cmd/perfplayd)
// drives it over HTTP; the offline policy lab (internal/clustersim)
// drives the same code over an in-memory virtual-clock transport —
// mirroring the scheduler.Transport seam, so the simulator's sweep
// results speak for the code production runs.
//
// The package deliberately knows nothing about wire formats: the
// Transport seam is generic over the result and table artifact types,
// and adapters own fetching, decoding, and validating bytes. That keeps
// the dependency graph acyclic (corpus → cachepolicy, while
// pipeline → corpus) and keeps every policy decision — who to ask, how
// many, when to give up — in one testable place.
package cachepolicy

import (
	"sort"
	"time"

	"perfplay/internal/clusterapi"
)

// Knobs are the cache-layer tunables shared by the daemon's flags and
// the simulator's scenarios. Defaults returns the single source of
// truth for their default values, so the two cannot drift: perfplayd
// flag declarations print these values, Config.withDefaults applies
// them, and clustersim's cache scenarios start from them.
type Knobs struct {
	// ProbeFanout bounds how many peers one cache-missed job probes.
	ProbeFanout int
	// ProbeTimeout bounds each individual peer probe.
	ProbeTimeout time.Duration
	// HintKeys bounds the recent result-cache keys gossiped in each
	// steal/status response (the cache-population hints).
	HintKeys int
	// SubmitHops bounds how many Retry-Peer admission redirects one
	// submit will follow.
	SubmitHops int
}

// Defaults returns the shared cache-layer defaults. ProbeFanout and
// ProbeTimeout are sweep-derived (docs/POLICIES.md, `perfplay sim
// -sweep` over the cache scenarios): fan-out 2 is within a hair of the
// per-scenario best everywhere — fan-out 1 is fragile when caches
// populate organically and hints lag, while 4 doubles the timeout burn
// under partial partitions — and a short 250ms probe timeout is what
// keeps partitions cheap: a blackholed link costs the full timeout per
// probe on the job-execution hot path, and the sweep's 2s rows are the
// worst non-disabled configurations in the partition scenario, while
// 250ms is indistinguishable from 50ms everywhere else.
func Defaults() Knobs {
	return Knobs{
		ProbeFanout:  2,
		ProbeTimeout: 250 * time.Millisecond,
		HintKeys:     32,
		SubmitHops:   3,
	}
}

// ProbeOrder ranks peers for one cache probe: peers whose gossiped
// hints satisfy the matcher first, then known-healthy peers by queue
// depth (idlest first — most likely to answer fast), then peers the
// gossip has never seen or whose last probe failed, in config order;
// bounded to fanout entries when fanout > 0. Failed-probe peers rank
// with the unseen, not the healthy — their counts are stale, and a dead
// peer sorted ahead of a live cache holder would burn a probe timeout
// on the job-execution hot path (or squeeze the holder out of the
// fan-out altogether).
func ProbeOrder(peers []string, view map[string]clusterapi.PeerStatus, hinted func(clusterapi.PeerStatus) bool, fanout int) []string {
	out := append([]string(nil), peers...)
	sort.SliceStable(out, func(i, j int) bool {
		si, iok := view[out[i]]
		sj, jok := view[out[j]]
		hi := iok && si.Err == "" && hinted(si)
		hj := jok && sj.Err == "" && hinted(sj)
		if hi != hj {
			return hi
		}
		ki := iok && si.Err == ""
		kj := jok && sj.Err == ""
		if ki != kj {
			return ki
		}
		return ki && si.QueueLen < sj.QueueLen
	})
	if fanout > 0 && len(out) > fanout {
		out = out[:fanout]
	}
	return out
}

// Fetcher is the probe half of the cache transport seam. R and T are
// the result and verdict-table artifact types (*pipeline.WireResult and
// *pipeline.WireTable in the daemon); policy code never opens them.
type Fetcher[R, T any] interface {
	// FetchResult asks one peer for a finished result by cache key. Any
	// error — miss, dead peer, timeout, garbage — means "try the next
	// peer", never "fail the job".
	FetchResult(peer, key string, topK int) (R, error)
	// FetchTable asks one peer for a cached verdict table by table key.
	FetchTable(peer, key string) (T, error)
}

// Transport is the cache layer's full seam between policy and
// mechanism, mirroring scheduler.Transport: fetching cached artifacts
// from peers plus submitting jobs through the admission chain. The
// daemon implements it over HTTP (fetch, decode, validate — a returned
// artifact is already trusted), and clustersim substitutes a
// virtual-clock in-memory one. Probe-only callers need just the
// Fetcher half; submit-only callers (corpus.Remote) pass a SubmitFunc.
type Transport[R, T any] interface {
	Fetcher[R, T]
	// Submit submits the adapter's job spec to one node's admission
	// endpoint. The error return is transport-level (unreachable peer,
	// un-decodable accept); a reachable node that rejects reports why in
	// SubmitReply.Reject.
	Submit(base string) (SubmitReply, error)
}

// Prober runs the degrade-to-local cache probe policy over a Transport:
// walk ProbeOrder, take the first usable artifact, and treat a miss
// everywhere as the normal path. It never returns an error — every
// failure on this path degrades to local execution.
type Prober[R, T any] struct {
	Transport Fetcher[R, T]
	// Fanout bounds peers probed per call (0 = unbounded).
	Fanout int
	// Observe, when non-nil, is invoked after every probe attempt with
	// the peer, the artifact kind ("result" or "table"), whether the
	// attempt produced a usable artifact, and its wall-clock bounds —
	// the daemon's counter/span hook. Virtual-clock callers leave it
	// nil; the clock is never read when unobserved.
	Observe func(peer, kind string, hit bool, start, end time.Time)
}

// ProbeResult asks ranked peers for a finished result matching key,
// returning the first hit and the peer that served it. ok=false — a
// miss everywhere — is the normal path, not a failure.
func (p *Prober[R, T]) ProbeResult(peers []string, view map[string]clusterapi.PeerStatus, key string, topK int) (R, string, bool) {
	for _, peer := range ProbeOrder(peers, view, func(st clusterapi.PeerStatus) bool { return st.HintsKey(key) }, p.Fanout) {
		start := p.now()
		r, err := p.Transport.FetchResult(peer, key, topK)
		p.observe(peer, "result", err == nil, start)
		if err != nil {
			continue // miss, dead peer, or garbage: the local run is always correct
		}
		return r, peer, true
	}
	var zero R
	return zero, "", false
}

// ProbeTable asks ranked peers for the verdict table named by key,
// handing each fetched table to accept (validate + adopt; false means
// keep probing). Probes are hint-matched by trace digest, not by the
// table key: gossiped hints are result-cache keys, and a peer hinting
// any result for this trace ran the identify pass that built the table.
// It returns the peer whose table was accepted.
func (p *Prober[R, T]) ProbeTable(peers []string, view map[string]clusterapi.PeerStatus, digest, key string, accept func(T) bool) (string, bool) {
	for _, peer := range ProbeOrder(peers, view, func(st clusterapi.PeerStatus) bool { return st.HintsDigest(digest) }, p.Fanout) {
		start := p.now()
		t, err := p.Transport.FetchTable(peer, key)
		hit := err == nil && accept(t)
		p.observe(peer, "table", hit, start)
		if hit {
			return peer, true
		}
	}
	return "", false
}

// now reads the wall clock only when someone is observing, keeping the
// virtual-clock simulator free of real-time reads.
func (p *Prober[R, T]) now() time.Time {
	if p.Observe == nil {
		return time.Time{}
	}
	return time.Now()
}

func (p *Prober[R, T]) observe(peer, kind string, hit bool, start time.Time) {
	if p.Observe != nil {
		p.Observe(peer, kind, hit, start, time.Now())
	}
}
