package cachepolicy

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// fakeAdmission scripts a cluster of nodes for FollowRedirects: each
// node either accepts, rejects with an optional Retry-Peer, or is dead
// (transport error).
type fakeAdmission struct {
	accept map[string]string // base -> job id
	retry  map[string]string // base -> Retry-Peer on queue-full
	dead   map[string]bool
	visits []string
}

func (f *fakeAdmission) submit(base string) (SubmitReply, error) {
	f.visits = append(f.visits, base)
	switch {
	case f.dead[base]:
		return SubmitReply{}, fmt.Errorf("submit to %s: dial: connection refused", base)
	case f.accept[base] != "":
		return SubmitReply{ID: f.accept[base]}, nil
	default:
		return SubmitReply{
			RetryPeer: f.retry[base],
			Reject:    fmt.Errorf("queue full at %s", base),
		}, nil
	}
}

func TestFollowRedirects(t *testing.T) {
	cases := []struct {
		name       string
		cluster    fakeAdmission
		base       string
		maxHops    int
		wantID     string
		wantBase   string
		wantErr    string // substring; empty means success
		wantVisits []string
	}{
		{
			name:       "immediate accept",
			cluster:    fakeAdmission{accept: map[string]string{"n1": "job-1"}},
			base:       "n1",
			maxHops:    3,
			wantID:     "job-1",
			wantBase:   "n1",
			wantVisits: []string{"n1"},
		},
		{
			name: "one redirect then accept",
			cluster: fakeAdmission{
				retry:  map[string]string{"n1": "n2"},
				accept: map[string]string{"n2": "job-2"},
			},
			base:       "n1",
			maxHops:    3,
			wantID:     "job-2",
			wantBase:   "n2",
			wantVisits: []string{"n1", "n2"},
		},
		{
			name: "hop exhaustion across a saturated chain",
			cluster: fakeAdmission{
				retry: map[string]string{"n1": "n2", "n2": "n3", "n3": "n4", "n4": "n5"},
			},
			base:       "n1",
			maxHops:    3,
			wantErr:    "gave up after 3 Retry-Peer hops",
			wantVisits: []string{"n1", "n2", "n3", "n4"},
		},
		{
			name: "visited-set breaks a redirect loop",
			cluster: fakeAdmission{
				retry: map[string]string{"n1": "n2", "n2": "n1"},
			},
			base:       "n1",
			maxHops:    5,
			wantErr:    "Retry-Peer loop back to n1",
			wantVisits: []string{"n1", "n2"},
		},
		{
			name: "redirect to a dead node is a transport error, not a rejection",
			cluster: fakeAdmission{
				retry: map[string]string{"n1": "n2"},
				dead:  map[string]bool{"n2": true},
			},
			base:       "n1",
			maxHops:    3,
			wantErr:    "dial: connection refused",
			wantVisits: []string{"n1", "n2"},
		},
		{
			name: "trailing slashes normalized before loop detection",
			cluster: fakeAdmission{
				retry: map[string]string{"n1": "n1/"},
			},
			base:       "n1/",
			maxHops:    3,
			wantErr:    "Retry-Peer loop back to n1",
			wantVisits: []string{"n1"},
		},
		{
			name: "rejection without a retry peer is terminal",
			cluster: fakeAdmission{
				retry: map[string]string{},
			},
			base:       "n1",
			maxHops:    3,
			wantErr:    "queue full at n1",
			wantVisits: []string{"n1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, base, err := FollowRedirects(tc.cluster.submit, tc.base, tc.maxHops)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
			} else {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if id != tc.wantID || base != tc.wantBase {
					t.Fatalf("accepted (%q, %q), want (%q, %q)", id, base, tc.wantID, tc.wantBase)
				}
			}
			if !reflect.DeepEqual(tc.cluster.visits, tc.wantVisits) {
				t.Fatalf("visited %v, want %v", tc.cluster.visits, tc.wantVisits)
			}
		})
	}
}

func TestFollowRedirectsKeepsRejectionUnwrappable(t *testing.T) {
	sentinel := errors.New("queue full")
	submit := func(base string) (SubmitReply, error) {
		return SubmitReply{RetryPeer: "n2", Reject: fmt.Errorf("%w at %s", sentinel, base)}, nil
	}
	_, _, err := FollowRedirects(submit, "n1", 0)
	if !errors.Is(err, sentinel) {
		t.Fatalf("hop-exhaustion wrap lost the rejection cause: %v", err)
	}
}
