package cachepolicy

import (
	"fmt"
	"strings"
)

// SubmitReply is one node's answer to an admission submit.
type SubmitReply struct {
	// ID is the accepted job's id; non-empty means the node took the
	// job and Reject is nil.
	ID string
	// RetryPeer, on a queue-full rejection, names the peer the node
	// believes has room (the Retry-Peer header). Adapters must leave it
	// empty for rejections that are not retryable elsewhere.
	RetryPeer string
	// Reject is why a reachable node turned the job away (nil when
	// accepted). Transport-level failures travel on Submit's error
	// return instead.
	Reject error
}

// SubmitFunc submits one job spec (held by the closure) to one node.
// It is the narrow slice of Transport that FollowRedirects needs, so
// submit-only clients like corpus.Remote avoid the full seam.
type SubmitFunc func(base string) (SubmitReply, error)

// FollowRedirects drives the steal-aware admission chain: submit to
// base, and when a full node answers with a Retry-Peer, retry there —
// at most maxHops redirects, each base visited at most once, so a
// cluster of mutually-full nodes answers a bounded chain of rejections
// instead of bouncing the client forever. Trailing slashes are trimmed
// before bases are compared or revisited, matching how peers name each
// other. It returns the job id and the base that accepted it — the node
// to poll for the result, which under redirection is not necessarily
// the one submitted to.
func FollowRedirects(submit SubmitFunc, base string, maxHops int) (id, acceptedBase string, err error) {
	base = strings.TrimRight(base, "/")
	visited := make(map[string]bool, maxHops+1)
	for hop := 0; ; hop++ {
		visited[base] = true
		reply, err := submit(base)
		if err != nil {
			return "", "", err
		}
		if reply.Reject == nil {
			return reply.ID, base, nil
		}
		retry := strings.TrimRight(reply.RetryPeer, "/")
		switch {
		case retry == "":
			return "", "", reply.Reject
		case visited[retry]:
			return "", "", fmt.Errorf("%w (Retry-Peer loop back to %s)", reply.Reject, retry)
		case hop >= maxHops:
			return "", "", fmt.Errorf("%w (gave up after %d Retry-Peer hops)", reply.Reject, hop)
		}
		base = retry
	}
}
