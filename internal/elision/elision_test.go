package elision

import (
	"testing"

	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/vtime"
)

// readOnly builds the Fig. 4-style workload LE excels at: contended
// read-only critical sections.
func readOnly(threads, iters int) *sim.Result {
	p := sim.NewProgram("ro")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 5)
	s := p.Site("ro.c", 1, "r")
	for i := 0; i < threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < iters; j++ {
				th.Lock(l, s)
				th.Read(x, s)
				th.Compute(600)
				th.Unlock(l, s)
				th.Compute(100)
			}
		})
	}
	return sim.Run(p, sim.Config{Seed: 3})
}

// conflicting builds a workload where every critical section really
// conflicts — the regime where LE pays rollbacks. The update is a read
// followed by an increment: order-sensitive enough to abort concurrent
// speculation, while re-executing correctly under any commit order (a
// trace cannot recompute stale absolute stores).
func conflicting(threads, iters int) *sim.Result {
	p := sim.NewProgram("wr")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("wr.c", 1, "w")
	for i := 0; i < threads; i++ {
		i := i
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < iters; j++ {
				th.Lock(l, s)
				th.Read(x, s)
				th.Compute(400)
				th.Add(x, int64(i+1), s)
				th.Unlock(l, s)
				th.Compute(100)
			}
		})
	}
	return sim.Run(p, sim.Config{Seed: 3})
}

func TestElisionParallelizesReadOnly(t *testing.T) {
	rec := readOnly(4, 10)
	le, err := Run(rec.Trace, Options{Seed: 1, FalseAbortPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := replay.Run(rec.Trace, replay.Options{Sched: replay.ELSCS})
	if le.Total >= orig.Total {
		t.Fatalf("LE total %v >= locked total %v; read-only sections must parallelize", le.Total, orig.Total)
	}
	if le.Aborts != 0 {
		t.Fatalf("aborts = %d on a read-only workload, want 0", le.Aborts)
	}
	if le.Commits != 40 {
		t.Fatalf("commits = %d, want 40", le.Commits)
	}
	if !le.FinalMem.Equal(rec.Trace.FinalMem) {
		t.Fatal("elided execution changed final state")
	}
}

func TestElisionAbortsOnRealConflicts(t *testing.T) {
	rec := conflicting(4, 8)
	le, err := Run(rec.Trace, Options{Seed: 1, FalseAbortPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if le.Aborts == 0 {
		t.Fatal("no aborts on a fully conflicting workload")
	}
	if le.WastedWork == 0 {
		t.Fatal("aborts must waste work")
	}
	// Every increment must survive: commits + fallbacks re-execute until
	// the update lands exactly once.
	var want int64
	for i := 0; i < 4; i++ {
		want += int64(i+1) * 8
	}
	var got int64
	for a, name := range rec.Trace.MemNames {
		if name == "x" {
			got = le.FinalMem[a]
		}
	}
	if got != want {
		t.Fatalf("final x = %d, want %d (lost or doubled updates)", got, want)
	}
}

func TestElisionFallbackAfterRetries(t *testing.T) {
	rec := conflicting(6, 6)
	le, err := Run(rec.Trace, Options{Seed: 1, MaxRetries: 1, FalseAbortPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if le.Fallbacks == 0 {
		t.Fatal("heavy conflicts with MaxRetries=1 must trigger fallbacks")
	}
}

func TestFalseAborts(t *testing.T) {
	rec := readOnly(2, 30)
	le, err := Run(rec.Trace, Options{Seed: 9, FalseAbortPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	if le.FalseAborts == 0 {
		t.Fatal("20% false-abort rate produced none over 60 sections")
	}
	// False aborts retry and still complete; final state intact.
	if !le.FinalMem.Equal(rec.Trace.FinalMem) {
		t.Fatal("false aborts corrupted final state")
	}
	if le.AbortRate() <= 0 {
		t.Fatal("abort rate must be positive")
	}
}

func TestElisionDeterministic(t *testing.T) {
	rec := conflicting(3, 6)
	a, err := Run(rec.Trace, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rec.Trace, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.Aborts != b.Aborts || a.FalseAborts != b.FalseAborts {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestElisionRejectsTransformedTraces(t *testing.T) {
	rec := readOnly(2, 2)
	tr := rec.Trace
	// Fake a lockset event.
	tr.Events[3].Kind = 6 // KLocksetAcq
	if _, err := Run(tr, Options{}); err == nil {
		t.Fatal("transformed trace must be rejected")
	}
}

func TestNestedLocksFlatten(t *testing.T) {
	p := sim.NewProgram("nested")
	l1, l2 := p.NewLock("L1"), p.NewLock("L2")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("n.c", 1, "f")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 4; j++ {
				th.Lock(l1, s)
				th.Lock(l2, s)
				th.Add(x, 1, s)
				th.Unlock(l2, s)
				th.Unlock(l1, s)
				th.Compute(vtime.Duration(100 + 37*j))
			}
		})
	}
	rec := sim.Run(p, sim.Config{Seed: 2})
	le, err := Run(rec.Trace, Options{Seed: 2, FalseAbortPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !le.FinalMem.Equal(rec.Trace.FinalMem) {
		t.Fatalf("nested-lock elision corrupted state")
	}
}
