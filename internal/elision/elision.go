// Package elision implements a speculative lock elision (SLE) baseline in
// the spirit of Rajwar & Goodman, the dynamic approach the paper contrasts
// PerfPlay against (Sec. 2.2, Sec. 7.1): critical sections execute
// speculatively without acquiring their lock, a data conflict aborts and
// rolls back the younger transaction, and repeated aborts fall back to a
// real acquisition.
//
// The paper's argument — and what this baseline lets the benches show — is
// that LE indeed removes ULCP serialization at runtime, but (i) it pays
// rollbacks wherever contention is real, (ii) hardware limitations cause
// false aborts, and (iii) it produces no debugging information: the
// programmer never learns which code region to fix.
package elision

import (
	"fmt"

	"perfplay/internal/memmodel"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// Options configures the elision run.
type Options struct {
	// Seed drives false-abort selection.
	Seed int64
	// MaxRetries is the number of speculative attempts before a critical
	// section falls back to really acquiring its lock (default 2).
	MaxRetries int
	// AbortPenalty is the rollback cost charged per abort (pipeline flush
	// plus re-fetch; default 150 ticks).
	AbortPenalty vtime.Duration
	// FalseAbortPct is the percentage (0-100) of speculative sections
	// aborted by modelled hardware limitations — cache capacity,
	// unfriendly instructions — independent of real conflicts (default 2).
	FalseAbortPct int
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.AbortPenalty == 0 {
		o.AbortPenalty = 150
	}
	if o.FalseAbortPct == 0 {
		o.FalseAbortPct = 2
	}
	return o
}

// Result is the outcome of an elided execution.
type Result struct {
	// Total is the virtual makespan under elision.
	Total vtime.Duration
	// Commits counts critical sections that completed speculatively.
	Commits int
	// Aborts counts rollbacks due to real data conflicts.
	Aborts int
	// FalseAborts counts rollbacks due to modelled hardware limits.
	FalseAborts int
	// Fallbacks counts critical sections that exhausted their retries and
	// acquired the lock for real.
	Fallbacks int
	// WastedWork is virtual time spent on rolled-back speculation.
	WastedWork vtime.Duration
	// FinalMem is the re-executed final memory image.
	FinalMem memmodel.Snapshot
}

// AbortRate returns aborts (real + false) per started transaction.
func (r *Result) AbortRate() float64 {
	started := r.Commits + r.Aborts + r.FalseAborts
	if started == 0 {
		return 0
	}
	return float64(r.Aborts+r.FalseAborts) / float64(started)
}

// spec is one in-flight speculative critical section.
type spec struct {
	thread   int32
	lock     trace.LockID
	start    vtime.Time
	acqPos   int // thread-local position of the acquisition event
	reads    map[memmodel.Addr]struct{}
	writes   map[memmodel.Addr]int64 // buffered stores (value after ops)
	workDone vtime.Duration
	retries  int
	fallback bool // holding the lock for real
}

type thread struct {
	id    int32
	evs   []int32
	pos   int
	clock vtime.Time
	// cs is the innermost in-flight critical section, if any. Nested
	// critical sections are flattened into the outer transaction, as flat
	// transactional memories do.
	cs    *spec
	depth int
}

type engine struct {
	tr      *trace.Trace
	opts    Options
	mem     *memmodel.Memory
	threads []*thread
	lockBy  map[trace.LockID]int32 // real holders (fallback mode)
	freeAt  map[trace.LockID]vtime.Time
	// retryCount tracks aborts per acquisition event so retries survive
	// the rewind.
	retryCount map[int32]int
	res        *Result
}

// Run executes the trace with every original lock elided.
//
// Transformed traces (lockset events) are rejected: elision is a baseline
// for the original execution.
func Run(tr *trace.Trace, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	e := &engine{
		tr:     tr,
		opts:   opts,
		mem:    memmodel.New(),
		lockBy: make(map[trace.LockID]int32),
		freeAt: make(map[trace.LockID]vtime.Time),
		res:    &Result{},
	}
	for a, v := range tr.InitMem {
		e.mem.Store(a, v)
	}
	for t, evs := range tr.PerThread() {
		e.threads = append(e.threads, &thread{id: int32(t), evs: evs})
	}
	for i := range tr.Events {
		if k := tr.Events[i].Kind; k == trace.KLocksetAcq || k == trace.KLocksetRel {
			return nil, fmt.Errorf("elision: transformed traces are not elidable")
		}
	}
	if err := e.loop(); err != nil {
		return nil, err
	}
	var total vtime.Time
	for _, th := range e.threads {
		if th.clock > total {
			total = th.clock
		}
	}
	e.res.Total = vtime.Duration(total)
	e.res.FinalMem = e.mem.Snapshot()
	return e.res, nil
}

func (e *engine) loop() error {
	// Aborts rewind a thread's position, so progress is re-derived each
	// pass rather than counted down.
	for {
		pending := false
		var best *thread
		for _, th := range e.threads {
			if th.pos >= len(th.evs) {
				continue
			}
			pending = true
			if !e.eligible(th) {
				continue
			}
			if best == nil || th.clock < best.clock {
				best = th
			}
		}
		if !pending {
			return nil
		}
		if best == nil {
			return fmt.Errorf("elision: stuck (all runnable threads blocked)")
		}
		e.exec(best)
	}
}

// eligible: a thread is blocked only while waiting for a real (fallback)
// lock holder.
func (e *engine) eligible(th *thread) bool {
	ev := &e.tr.Events[th.evs[th.pos]]
	if ev.Kind != trace.KLockAcq {
		return true
	}
	if th.cs != nil && th.cs.fallback {
		return true // nested acquisition inside a fallback section
	}
	wantReal := th.cs == nil && e.retriesFor(th) > e.opts.MaxRetries
	if !wantReal {
		return true // speculative entry never waits
	}
	_, held := e.lockBy[ev.Lock]
	return !held
}

// retriesFor reports how many times the thread's pending critical section
// has already aborted (tracked via a side table keyed by acquisition
// event).
func (e *engine) retriesFor(th *thread) int {
	if e.retryCount == nil {
		return 0
	}
	return e.retryCount[th.evs[th.pos]]
}

// exec runs the thread's next event; it returns false when the event
// stream was rewound by an abort instead of consumed.
func (e *engine) exec(th *thread) bool {
	idx := th.evs[th.pos]
	ev := &e.tr.Events[idx]
	switch ev.Kind {
	case trace.KLockAcq:
		if th.cs != nil {
			// Nested acquisition: flatten into the outer transaction.
			th.depth++
			th.clock = th.clock.Add(ev.Cost)
			break
		}
		retries := e.retriesFor(th)
		sp := &spec{
			thread: th.id, lock: ev.Lock, start: th.clock, acqPos: th.pos,
			reads:   make(map[memmodel.Addr]struct{}),
			writes:  make(map[memmodel.Addr]int64),
			retries: retries,
		}
		if retries > e.opts.MaxRetries {
			// Fallback: acquire for real and abort every speculative
			// section on this lock (the lock's cache line transfers).
			sp.fallback = true
			e.lockBy[ev.Lock] = th.id
			e.res.Fallbacks++
			for _, o := range e.threads {
				if o.cs != nil && !o.cs.fallback && o.cs.lock == ev.Lock {
					e.abort(o, false)
				}
			}
		}
		th.cs = sp
		th.depth = 1
		th.clock = th.clock.Add(ev.Cost)
	case trace.KLockRel:
		if th.cs == nil {
			th.clock = th.clock.Add(ev.Cost)
			break
		}
		th.depth--
		th.clock = th.clock.Add(ev.Cost)
		if th.depth > 0 {
			break
		}
		sp := th.cs
		if !sp.fallback && e.falseAbort(idx, sp.retries) {
			e.abort(th, true)
			return false
		}
		// Commit: apply buffered stores.
		for a, v := range sp.writes {
			e.mem.Store(a, v)
		}
		if sp.fallback {
			delete(e.lockBy, sp.lock)
			e.freeAt[sp.lock] = th.clock
		} else {
			e.res.Commits++
		}
		th.cs = nil
	case trace.KRead:
		th.clock = th.clock.Add(ev.Cost)
		if th.cs != nil && !th.cs.fallback {
			th.cs.reads[ev.Addr] = struct{}{}
			th.cs.workDone += ev.Cost
			if e.conflictAndResolve(th, ev.Addr, false) {
				return false
			}
		}
	case trace.KWrite:
		th.clock = th.clock.Add(ev.Cost)
		if th.cs != nil && !th.cs.fallback {
			cur, buffered := th.cs.writes[ev.Addr]
			if !buffered {
				cur = e.mem.Load(ev.Addr)
			}
			th.cs.writes[ev.Addr] = ev.Op.Apply(cur, ev.Value)
			th.cs.workDone += ev.Cost
			if e.conflictAndResolve(th, ev.Addr, true) {
				return false
			}
		} else {
			cur := e.mem.Load(ev.Addr)
			e.mem.Store(ev.Addr, ev.Op.Apply(cur, ev.Value))
		}
	case trace.KSkip:
		for a, v := range ev.Delta {
			e.mem.Store(a, v)
		}
		th.clock = th.clock.Add(ev.Cost)
	default:
		th.clock = th.clock.Add(ev.Cost)
	}
	th.pos++
	return true
}

// conflictAndResolve checks the access against every other in-flight
// speculative section and aborts the younger party of any conflict. It
// reports whether th itself was aborted.
func (e *engine) conflictAndResolve(th *thread, addr memmodel.Addr, isWrite bool) bool {
	for _, o := range e.threads {
		if o == th || o.cs == nil || o.cs.fallback {
			continue
		}
		_, oReads := o.cs.reads[addr]
		_, oWrites := o.cs.writes[addr]
		conflict := oWrites || (isWrite && oReads)
		if !conflict {
			continue
		}
		// Requester-wins approximation: the younger transaction aborts.
		if o.cs.start > th.cs.start {
			e.abort(o, false)
		} else {
			e.abort(th, false)
			return true
		}
	}
	return false
}

// abort rolls a thread back to its critical section entry.
func (e *engine) abort(th *thread, hw bool) {
	sp := th.cs
	if sp == nil {
		return
	}
	if hw {
		e.res.FalseAborts++
	} else {
		e.res.Aborts++
	}
	e.res.WastedWork += sp.workDone
	if e.retryCount == nil {
		e.retryCount = make(map[int32]int)
	}
	acqIdx := th.evs[sp.acqPos]
	e.retryCount[acqIdx] = sp.retries + 1
	th.pos = sp.acqPos
	th.clock = th.clock.Add(e.opts.AbortPenalty)
	th.cs = nil
	th.depth = 0
}

// falseAbort deterministically selects ~FalseAbortPct% of first-attempt
// commits for a hardware-style abort.
func (e *engine) falseAbort(idx int32, retries int) bool {
	if retries > 0 || e.opts.FalseAbortPct <= 0 {
		return false
	}
	h := uint64(e.opts.Seed)*0x9e3779b97f4a7c15 + uint64(idx)*0xd6e8feb86659fd93
	h ^= h >> 32
	return int(h%100) < e.opts.FalseAbortPct
}
