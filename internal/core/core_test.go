package core

import (
	"strings"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/ulcp"
	"perfplay/internal/vtime"
)

// readHeavy builds a program whose threads repeatedly read shared data
// under one lock — pure read-read ULCPs whose serialization the
// transformation should eliminate.
func readHeavy(threads, iters int) *sim.Program {
	p := sim.NewProgram("read-heavy")
	l := p.NewLock("mu")
	x := p.Mem.Alloc("shared", 42)
	sLock := p.Site("app.c", 100, "reader")
	sRead := p.Site("app.c", 101, "reader")
	for i := 0; i < threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < iters; j++ {
				th.Lock(l, sLock)
				th.Read(x, sRead)
				th.Compute(800) // long read-side critical section
				th.Unlock(l, sLock)
				th.Compute(200)
			}
		})
	}
	return p
}

// writeConflict builds a program with genuine contention: threads write
// distinct values to the same cell, so nothing should be parallelized.
func writeConflict(threads, iters int) *sim.Program {
	p := sim.NewProgram("write-conflict")
	l := p.NewLock("mu")
	x := p.Mem.Alloc("shared", 0)
	s := p.Site("app.c", 200, "writer")
	for i := 0; i < threads; i++ {
		i := i
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < iters; j++ {
				th.Lock(l, s)
				th.Read(x, s) // observe, then overwrite: order-sensitive
				th.Write(x, int64(i*1000+j), s)
				th.Compute(500)
				th.Unlock(l, s)
				th.Compute(300)
			}
		})
	}
	return p
}

func TestPipelineFindsAndRemovesReadReadULCPs(t *testing.T) {
	a, err := Analyze(readHeavy(4, 10), Config{Sim: sim.Config{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Counts[ulcp.ReadRead] == 0 {
		t.Fatal("no read-read ULCPs found in a read-heavy workload")
	}
	if a.Report.Counts[ulcp.TLCP] != 0 {
		t.Fatalf("found %d TLCPs in a read-only workload", a.Report.Counts[ulcp.TLCP])
	}
	if a.Debug.Tuft >= a.Debug.Tut {
		t.Fatalf("ULCP-free replay (%v) not faster than original (%v)", a.Debug.Tuft, a.Debug.Tut)
	}
	// Read-only critical sections: removal must not change semantics.
	if !a.FreeReplay.FinalMem.Equal(a.OrigReplay.FinalMem) {
		t.Fatal("transformed replay changed final state of a read-only workload")
	}
	if len(a.Debug.Groups) == 0 {
		t.Fatal("no fused groups produced")
	}
	if a.Debug.Groups[0].P <= 0 {
		t.Fatal("top group has zero optimization share")
	}
}

func TestPipelineKeepsTrueContention(t *testing.T) {
	a, err := Analyze(writeConflict(3, 8), Config{Sim: sim.Config{Seed: 5}, DetectRaces: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Counts[ulcp.TLCP] == 0 {
		t.Fatal("no TLCPs found in a write-conflict workload")
	}
	// Same-value ordering: transformed replay must preserve per-lock
	// partial order of causal nodes (RULE 2), so the final state matches.
	if !a.FreeReplay.FinalMem.Equal(a.OrigReplay.FinalMem) {
		t.Fatal("RULE 2 violated: transformed replay changed the final write order")
	}
	// Genuine contention is preserved, so speedup should be small
	// relative to the read-heavy case (only lock-op overhead removed for
	// standalone CSs; here every CS is causal, so none removed).
	deg := a.Debug.NormalizedDegradation()
	if deg > 0.10 {
		t.Fatalf("write-conflict workload reported %.1f%% degradation; true contention must not be 'optimized'", deg*100)
	}
	if len(a.Races) != 0 {
		t.Fatalf("unexpected races on a fully serialized workload: %v", a.Races)
	}
}

func TestPipelineNullLocks(t *testing.T) {
	// Fig. 3's generic null-lock model: threads take a lock, test a
	// thread-local flag that is false, and leave without shared access.
	p := sim.NewProgram("null-lock")
	l := p.NewLock("L")
	s := p.Site("fig3.c", 1, "nl")
	for i := 0; i < 3; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 5; j++ {
				th.Lock(l, s)
				th.Compute(100) // branch test on a local, no shared access
				th.Unlock(l, s)
				th.Compute(150)
			}
		})
	}
	a, err := Analyze(p, Config{Sim: sim.Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Counts[ulcp.NullLock] == 0 {
		t.Fatal("no null-locks identified")
	}
	if a.Transformed.RemovedSync == 0 {
		t.Fatal("null-lock critical sections should have their sync removed")
	}
	if a.Debug.Tuft >= a.Debug.Tut {
		t.Fatalf("null-lock removal should speed up replay: %v vs %v", a.Debug.Tuft, a.Debug.Tut)
	}
}

func TestSummaryRendering(t *testing.T) {
	a, err := Analyze(readHeavy(2, 4), Config{Sim: sim.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := a.Summary(3)
	for _, want := range []string{"PerfPlay analysis", "read-heavy", "ULCPs:", "recommendations"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeTraceMatchesAnalyze(t *testing.T) {
	p := readHeavy(3, 6)
	rec := sim.Run(p, sim.Config{Seed: 9})
	a, err := AnalyzeTrace(rec.Trace, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Debug.Tut != rec.Total {
		t.Fatalf("ELSC original replay %v != recorded %v", a.Debug.Tut, rec.Total)
	}
}

func TestDisjointWritePipeline(t *testing.T) {
	// Disjoint-write pattern: same lock guards updates to different cells
	// (the pointer-alias idiom of Sec. 2.1).
	p := sim.NewProgram("disjoint-write")
	l := p.NewLock("mu")
	cells := p.Mem.AllocN("obj", 4, 0)
	s := p.Site("dw.c", 10, "update")
	for i := 0; i < 4; i++ {
		i := i
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 6; j++ {
				th.Lock(l, s)
				th.Write(cells[i], int64(j), s)
				th.Compute(600)
				th.Unlock(l, s)
				th.Compute(vtime.Duration(100 + 50*i))
			}
		})
	}
	a, err := Analyze(p, Config{Sim: sim.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Counts[ulcp.DisjointWrite] == 0 {
		t.Fatal("no disjoint-write ULCPs identified")
	}
	if a.Debug.Tuft >= a.Debug.Tut {
		t.Fatalf("disjoint writes should parallelize: %v vs %v", a.Debug.Tuft, a.Debug.Tut)
	}
	if !a.FreeReplay.FinalMem.Equal(a.OrigReplay.FinalMem) {
		t.Fatal("disjoint-write transformation changed final state")
	}
}

func TestBenignCommutativePipeline(t *testing.T) {
	// Threads increment a shared counter: conflicting but commutative, so
	// the reversed replay should classify pairs as benign.
	p := sim.NewProgram("benign-add")
	l := p.NewLock("mu")
	x := p.Mem.Alloc("ctr", 0)
	s := p.Site("ba.c", 5, "inc")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 4; j++ {
				th.Lock(l, s)
				th.Add(x, 1, s)
				th.Compute(400)
				th.Unlock(l, s)
				th.Compute(250)
			}
		})
	}
	a, err := Analyze(p, Config{Sim: sim.Config{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Counts[ulcp.Benign] == 0 {
		t.Fatalf("no benign ULCPs found; counts = %v", a.Report.Counts)
	}
	if !a.FreeReplay.FinalMem.Equal(a.OrigReplay.FinalMem) {
		t.Fatal("commutative adds must reach the same total either way")
	}
}

func TestVerifyTheorem1Integration(t *testing.T) {
	a, err := Analyze(readHeavy(3, 6), Config{Sim: sim.Config{Seed: 5}, VerifyTheorem1: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Theorem1 == nil {
		t.Fatal("Theorem1 report missing")
	}
	if !a.Theorem1.Ok() {
		t.Fatalf("Theorem 1 violated:\n%s", a.Theorem1)
	}
	if a.Theorem1.Speedup >= 1 {
		t.Fatalf("speedup = %v, want < 1", a.Theorem1.Speedup)
	}
}

func TestAnalyzeWithDLSAndLocksetCost(t *testing.T) {
	a, err := Analyze(readHeavy(2, 6), Config{Sim: sim.Config{Seed: 5}, DLS: true, LocksetCost: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Read-only workloads have no causal edges, so no locksets and no
	// overhead; the options must still be accepted.
	if a.FreeReplay.LocksetOverhead != 0 {
		t.Fatalf("lockset overhead = %v on a lockset-free trace", a.FreeReplay.LocksetOverhead)
	}
	b, err := Analyze(writeConflict(3, 6), Config{Sim: sim.Config{Seed: 5}, DLS: true, LocksetCost: 8})
	if err != nil {
		t.Fatal(err)
	}
	if b.Transformed.LocksetNodes > 0 && b.FreeReplay.LocksetAcqs == 0 {
		t.Fatal("lockset acquisitions not counted")
	}
}
