// Package core is the public face of PerfPlay: it wires the record →
// identify → transform → replay → debug pipeline of Fig. 5 into a single
// call and exposes the per-stage artifacts for tools, examples and the
// experiment harness.
package core

import (
	"fmt"

	"perfplay/internal/perfdbg"
	"perfplay/internal/race"
	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/transform"
	"perfplay/internal/ulcp"
	"perfplay/internal/verify"
	"perfplay/internal/vtime"
)

// Config tunes a PerfPlay analysis.
type Config struct {
	// Sim configures the recording run (seed, cost model).
	Sim sim.Config
	// Identify configures ULCP identification.
	Identify ulcp.Options
	// LocksetCost enables the lockset maintenance cost model in the
	// ULCP-free replay (Table 3); zero disables it.
	LocksetCost vtime.Duration
	// DLS applies the dynamic locking strategy in the ULCP-free replay.
	DLS bool
	// DetectRaces runs the happens-before detector over the transformed
	// replay (Theorem 1's fallback reporting).
	DetectRaces bool
	// MaxRaces caps reported races (0 = 32).
	MaxRaces int
	// VerifyTheorem1 runs the full Theorem 1 check (outcome comparison
	// plus race attribution) and stores the report on the analysis.
	VerifyTheorem1 bool
}

// Analysis bundles every artifact of one pipeline run.
type Analysis struct {
	// App names the analyzed workload.
	App string
	// Recorded is the recording run (trace plus native measurements).
	Recorded *sim.Result
	// CSs are the extracted critical sections.
	CSs []*trace.CritSec
	// Report is the ULCP identification outcome.
	Report *ulcp.Report
	// Transformed is the ULCP-free trace and its construction artifacts.
	Transformed *transform.Result
	// OrigReplay and FreeReplay are the two ELSC replays PerfPlay
	// compares (Sec. 4).
	OrigReplay, FreeReplay *replay.Result
	// Debug holds Eq. 1/Eq. 2 results and the fused recommendations.
	Debug *perfdbg.Debug
	// Races are happens-before conflicts surfaced in the transformed
	// replay, if race detection was requested.
	Races []race.Race
	// Theorem1 is the correctness verdict, if VerifyTheorem1 was set.
	Theorem1 *verify.Report
}

// Analyze records the program and runs the full PerfPlay pipeline on the
// resulting trace.
func Analyze(p *sim.Program, cfg Config) (*Analysis, error) {
	rec := sim.Run(p, cfg.Sim)
	a, err := AnalyzeTrace(rec.Trace, cfg)
	if err != nil {
		return nil, err
	}
	a.Recorded = rec
	return a, nil
}

// AnalyzeTrace runs the pipeline on an existing trace (e.g. one loaded
// from disk): identification, transformation, the two ELSC replays, and
// performance debugging.
func AnalyzeTrace(tr *trace.Trace, cfg Config) (*Analysis, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("core: input trace: %w", err)
	}
	a := &Analysis{App: tr.App}

	a.CSs = tr.ExtractCS()
	// Sharded identification (per-lock reversed-replay budget) is the
	// repo's canonical semantics: it is what the concurrent pipeline
	// computes, so every front end — core, CLI, daemon, experiments —
	// reports the same counts for the same recording.
	a.Report = ulcp.IdentifySharded(tr, a.CSs, cfg.Identify)

	var err error
	a.Transformed, err = transform.Apply(tr, a.CSs, a.Report)
	if err != nil {
		return nil, err
	}

	// Replay the original trace under ELSC (performance fidelity,
	// Sec. 5.2) and the ULCP-free trace under the same discipline.
	a.OrigReplay, err = replay.Run(tr, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		return nil, fmt.Errorf("core: original replay: %w", err)
	}
	a.FreeReplay, err = replay.Run(a.Transformed.Trace, replay.Options{
		Sched:       replay.ELSCS,
		DLS:         cfg.DLS,
		LocksetCost: cfg.LocksetCost,
	})
	if err != nil {
		return nil, fmt.Errorf("core: ULCP-free replay: %w", err)
	}

	a.Debug = perfdbg.Evaluate(tr, a.CSs, a.Report, a.OrigReplay, a.FreeReplay, tr.NumThreads)

	if cfg.DetectRaces {
		limit := cfg.MaxRaces
		if limit == 0 {
			limit = 32
		}
		order := race.OrderByStart(a.FreeReplay.EventStart)
		a.Races = race.Detect(a.Transformed.Trace, order, limit)
	}
	if cfg.VerifyTheorem1 {
		a.Theorem1, err = verify.Check(tr, a.Transformed.Trace, cfg.MaxRaces)
		if err != nil {
			return nil, fmt.Errorf("core: theorem 1 check: %w", err)
		}
	}
	return a, nil
}

// Summary returns a compact multi-line report: overall impact plus the
// top-k recommended code regions, the list Fig. 5's final stage hands to
// the programmer.
func (a *Analysis) Summary(topK int) string {
	d := a.Debug
	s := fmt.Sprintf("PerfPlay analysis of %s (%d threads)\n", a.App, a.Threads())
	s += fmt.Sprintf(" dynamic locks: %d  critical sections: %d\n",
		dynamicLocks(a), len(a.CSs))
	s += fmt.Sprintf(" ULCPs: %d (null-lock %d, read-read %d, disjoint-write %d, benign %d), TLCPs: %d\n",
		a.Report.NumULCPs(),
		a.Report.Counts[ulcp.NullLock], a.Report.Counts[ulcp.ReadRead],
		a.Report.Counts[ulcp.DisjointWrite], a.Report.Counts[ulcp.Benign],
		a.Report.Counts[ulcp.TLCP])
	s += fmt.Sprintf(" replayed: original %v, ULCP-free %v  => degradation %.2f%%\n",
		d.Tut, d.Tuft, d.NormalizedDegradation()*100)
	s += fmt.Sprintf(" resource waste: %v (%.2f%%/thread)\n",
		d.Trw, d.CPUWastePerThread(a.Threads())*100)
	if len(a.Races) > 0 {
		s += fmt.Sprintf(" data races reported in transformed trace: %d\n", len(a.Races))
	}
	if len(d.Groups) > 0 {
		s += fmt.Sprintf(" grouped ULCP code regions: %d; top recommendations:\n", len(d.Groups))
		for i, g := range d.Recommend(topK) {
			s += fmt.Sprintf("  #%d %s\n", i+1, g)
		}
	}
	return s
}

// Threads is the analyzed execution's thread count: the recording's
// when this analysis recorded, else the replay's view for loaded
// traces. The single source every summary — local, daemon, or wire —
// derives the number from.
func (a *Analysis) Threads() int {
	if a.Recorded != nil {
		return a.Recorded.Trace.NumThreads
	}
	if a.OrigReplay != nil {
		return len(a.OrigReplay.PerThreadCPU)
	}
	return 0
}

func dynamicLocks(a *Analysis) int {
	if a.Recorded != nil {
		return a.Recorded.Trace.DynamicLocks()
	}
	return len(a.CSs)
}
