// Package timeline renders ASCII per-thread timelines of traces, the
// visual aid the paper's Figs. 4, 10 and 11 draw by hand: one row per
// thread, time flowing left to right, critical sections marked per lock.
package timeline

import (
	"fmt"
	"strings"

	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// Options controls rendering.
type Options struct {
	// Width is the number of character cells the full duration maps to
	// (default 80).
	Width int
	// From and To bound the rendered window; zero values select the whole
	// trace.
	From, To vtime.Time
}

// glyph returns the cell character for a lock: critical sections of the
// first nine locks draw as digits, later ones as '#', auxiliary locks as
// '@', compute as '-', waits/sleep as '.', idle as ' '.
func glyph(l trace.LockID) byte {
	if l.IsAux() {
		return '@'
	}
	if l >= 1 && l <= 9 {
		return byte('0' + l)
	}
	return '#'
}

// Render draws the trace. Each thread row samples its events into Width
// buckets; within a bucket, synchronization wins over shared access, which
// wins over compute.
func Render(tr *trace.Trace, opts Options) string {
	if opts.Width <= 0 {
		opts.Width = 80
	}
	from, to := opts.From, opts.To
	if to == 0 {
		to = vtime.Time(int64(tr.TotalTime))
	}
	if to <= from {
		return "(empty window)"
	}
	span := float64(to - from)
	cell := func(t vtime.Time) int {
		c := int(float64(t-from) / span * float64(opts.Width))
		if c < 0 {
			c = 0
		}
		if c >= opts.Width {
			c = opts.Width - 1
		}
		return c
	}
	rank := map[byte]int{' ': 0, '.': 1, '-': 2, 'r': 3, 'w': 3}

	rows := make([][]byte, tr.NumThreads)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	put := func(row []byte, at int, ch byte) {
		cur := row[at]
		rc, ok := rank[cur]
		if !ok {
			rc = 4 // lock glyphs outrank everything
		}
		nc, ok := rank[ch]
		if !ok {
			nc = 4
		}
		if nc >= rc {
			row[at] = ch
		}
	}
	fill := func(row []byte, a, b int, ch byte) {
		for i := a; i <= b && i < len(row); i++ {
			put(row, i, ch)
		}
	}

	// Track open critical sections per thread to paint their spans.
	held := make([]map[trace.LockID]vtime.Time, tr.NumThreads)
	for i := range held {
		held[i] = make(map[trace.LockID]vtime.Time)
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Time < from || e.Time > to {
			continue
		}
		row := rows[e.Thread]
		switch e.Kind {
		case trace.KCompute:
			fill(row, cell(e.Time.Add(-e.Cost)), cell(e.Time), '-')
		case trace.KSleep:
			fill(row, cell(e.Time.Add(-e.Cost)), cell(e.Time), '.')
		case trace.KBarrier:
			put(row, cell(e.Time), '|')
		case trace.KRead:
			put(row, cell(e.Time), 'r')
		case trace.KWrite:
			put(row, cell(e.Time), 'w')
		case trace.KLockAcq, trace.KLocksetAcq:
			l := e.Lock
			if e.Kind == trace.KLocksetAcq && len(e.Locks) > 0 {
				l = e.Locks[0]
			}
			held[e.Thread][l] = e.Time
		case trace.KLockRel, trace.KLocksetRel:
			l := e.Lock
			if e.Kind == trace.KLocksetRel && len(e.Locks) > 0 {
				l = e.Locks[0]
			}
			if start, ok := held[e.Thread][l]; ok {
				fill(row, cell(start), cell(e.Time), glyph(l))
				delete(held[e.Thread], l)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "timeline of %s: %v .. %v (%d cells)\n", tr.App, from, to, opts.Width)
	for t, row := range rows {
		fmt.Fprintf(&b, "T%-2d |%s|\n", t, string(row))
	}
	b.WriteString("legend: digits/#=critical section (per lock), @=lockset, r/w=shared access, -=compute, .=wait, |=barrier\n")
	return b.String()
}
