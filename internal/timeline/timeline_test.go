package timeline

import (
	"strings"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
)

func sample() *trace.Trace {
	p := sim.NewProgram("tl")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := p.Site("t.c", 1, "f")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			th.Compute(500)
			th.Lock(l, s)
			th.Add(x, 1, s)
			th.Compute(800)
			th.Unlock(l, s)
			th.Compute(300)
		})
	}
	return sim.Run(p, sim.Config{Seed: 1}).Trace
}

func TestRenderBasics(t *testing.T) {
	tr := sample()
	out := Render(tr, Options{Width: 60})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 2 thread rows + legend
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "T0 ") || !strings.HasPrefix(lines[2], "T1 ") {
		t.Fatalf("thread rows malformed:\n%s", out)
	}
	// The critical section of lock 1 appears as '1' in both rows.
	if !strings.Contains(lines[1], "1") || !strings.Contains(lines[2], "1") {
		t.Fatalf("critical sections not drawn:\n%s", out)
	}
	// Compute segments appear as '-'.
	if !strings.Contains(lines[1], "-") {
		t.Fatalf("compute not drawn:\n%s", out)
	}
	// Rows fit the requested width (plus the frame).
	row := lines[1][strings.Index(lines[1], "|")+1 : strings.LastIndex(lines[1], "|")]
	if len(row) != 60 {
		t.Fatalf("row width = %d, want 60", len(row))
	}
}

func TestRenderSerializationVisible(t *testing.T) {
	// Under one contended lock, T1's critical section must start after
	// T0's: its '1' cells begin strictly later.
	tr := sample()
	out := Render(tr, Options{Width: 80})
	lines := strings.Split(out, "\n")
	first := func(s string) int { return strings.IndexByte(s, '1') }
	a, b := first(lines[1]), first(lines[2])
	if a < 0 || b < 0 {
		t.Fatalf("missing CS glyphs:\n%s", out)
	}
	if a == b {
		t.Fatalf("contended critical sections start in the same cell:\n%s", out)
	}
}

func TestRenderWindow(t *testing.T) {
	tr := sample()
	if got := Render(tr, Options{From: 100, To: 100}); got != "(empty window)" {
		t.Fatalf("empty window = %q", got)
	}
	out := Render(tr, Options{Width: 20, From: 0, To: 400})
	if !strings.Contains(out, "0t .. 400t") {
		t.Fatalf("window header missing:\n%s", out)
	}
}

func TestRenderAuxLocks(t *testing.T) {
	tr := trace.New("aux", 1)
	aux := trace.AuxLockBase + 1
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux}, Time: 10})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KCompute, Cost: 80, Time: 90})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux}, Time: 100})
	tr.TotalTime = 100
	out := Render(tr, Options{Width: 20})
	if !strings.Contains(out, "@") {
		t.Fatalf("lockset section not drawn as '@':\n%s", out)
	}
}

func TestGlyphs(t *testing.T) {
	if glyph(3) != '3' {
		t.Error("lock 3 glyph")
	}
	if glyph(12) != '#' {
		t.Error("high lock glyph")
	}
	if glyph(trace.AuxLockBase+5) != '@' {
		t.Error("aux glyph")
	}
}
