package ulcp

import (
	"strconv"

	"perfplay/internal/memmodel"
	"perfplay/internal/trace"
)

// The reversed replay used to pay O(events) twice per conflicting pair:
// prefixState re-walked the whole trace prefix, and execPairLocal
// full-copied the resulting image for each of the two orders. The
// identifier visits pairs in each lock's acquisition order, so the
// prefix points are (almost always) non-decreasing — one evolving
// memory image advanced incrementally between pairs serves every
// replay, and the two executions run against copy-on-write overlays of
// it instead of copies. The prefix walk is paid once per lock group,
// not once per pair.

// prefixSweeper maintains the recorded memory image at a moving event
// position. stateAt advances it forward incrementally; a request behind
// the current position (a new lock group restarting the scan) rebuilds
// from the initial image.
type prefixSweeper struct {
	tr  *trace.Trace
	pos int32
	mem map[memmodel.Addr]int64
	// rebuilds counts from-scratch restarts, for tests asserting the
	// sweep really is incremental.
	rebuilds int
}

func newPrefixSweeper(tr *trace.Trace) *prefixSweeper {
	s := &prefixSweeper{tr: tr}
	s.reset()
	return s
}

func (s *prefixSweeper) reset() {
	if s.mem == nil {
		s.mem = make(map[memmodel.Addr]int64, len(s.tr.InitMem)+16)
	} else {
		clear(s.mem)
	}
	for a, v := range s.tr.InitMem {
		s.mem[a] = v
	}
	s.pos = 0
	s.rebuilds++
}

// stateAt returns the memory image after every recorded write before
// the given event index. The returned map is the sweeper's own evolving
// state: callers must treat it as read-only and must not retain it
// across stateAt calls.
func (s *prefixSweeper) stateAt(before int32) map[memmodel.Addr]int64 {
	if before < s.pos {
		s.reset()
	}
	for ; s.pos < before; s.pos++ {
		e := &s.tr.Events[s.pos]
		switch e.Kind {
		case trace.KWrite:
			s.mem[e.Addr] = e.Op.Apply(s.mem[e.Addr], e.Value)
		case trace.KSkip:
			for a, v := range e.Delta {
				s.mem[a] = v
			}
		}
	}
	return s.mem
}

// pairScratch is the reusable state for one identifier's reversed
// replays: the two outcome buffers, their read slices, and the buffers
// backing memo-key construction. One instance serves a whole
// identification run; nothing here escapes to the report.
type pairScratch struct {
	fwd, rev pairOutcome
	r1, r2   []int64

	sigAddrs    []memmodel.Addr
	conflicting map[memmodel.Addr]struct{}
	keyBuf      []byte
}

// execPairOverlay re-executes first's then second's shared accesses
// against base without copying it: out.writes doubles as a
// copy-on-write overlay, so reads consult it before base and writes
// (and skip deltas — the recorded effects of unrecorded execution,
// which the prefix walk applies and the pair execution therefore must
// too) land only in it. The reads slice is keyed by critical-section
// identity (c1's reads then c2's), matching execPairLocal.
func execPairOverlay(tr *trace.Trace, base map[memmodel.Addr]int64, first, second *trace.CritSec, out *pairOutcome, sc *pairScratch) {
	if out.writes == nil {
		out.writes = make(map[memmodel.Addr]int64, 8)
	} else {
		clear(out.writes)
	}
	load := func(a memmodel.Addr) int64 {
		if v, ok := out.writes[a]; ok {
			return v
		}
		return base[a]
	}
	sc.r1, sc.r2 = sc.r1[:0], sc.r2[:0]
	exec := func(cs *trace.CritSec, reads *[]int64) {
		for i := cs.AcqEv; i <= cs.RelEv; i++ {
			e := &tr.Events[i]
			if e.Thread != cs.Thread {
				continue
			}
			switch e.Kind {
			case trace.KRead:
				*reads = append(*reads, load(e.Addr))
			case trace.KWrite:
				out.writes[e.Addr] = e.Op.Apply(load(e.Addr), e.Value)
			case trace.KSkip:
				for a, v := range e.Delta {
					out.writes[a] = v
				}
			}
		}
	}
	if first.AcqEv <= second.AcqEv {
		// first==c1: execute first, then second, logging into (r1, r2).
		exec(first, &sc.r1)
		exec(second, &sc.r2)
	} else {
		// Reversed call order (c2,c1): execute c2 first but log its reads
		// into the second slot so slots always mean (c1, c2).
		exec(first, &sc.r2)
		exec(second, &sc.r1)
	}
	out.reads = append(append(out.reads[:0], sc.r1...), sc.r2...)
}

func outcomesEqual(fwd, rev *pairOutcome) bool {
	if len(fwd.reads) != len(rev.reads) {
		return false
	}
	for i := range fwd.reads {
		if fwd.reads[i] != rev.reads[i] {
			return false
		}
	}
	if len(fwd.writes) != len(rev.writes) {
		return false
	}
	for a, v := range fwd.writes {
		if rev.writes[a] != v {
			return false
		}
	}
	return true
}

// reversedReplayEqual is the batched form of the package-level function:
// the prefix comes from the identifier's forward sweep and the two
// orders execute against overlays, with all scratch reused across the
// run's pairs.
func (id *identifier) reversedReplayEqual(c1, c2 *trace.CritSec) bool {
	if id.sweep == nil {
		id.sweep = newPrefixSweeper(id.tr)
		id.scratch = &pairScratch{}
	}
	base := id.sweep.stateAt(c1.AcqEv)
	execPairOverlay(id.tr, base, c1, c2, &id.scratch.fwd, id.scratch)
	execPairOverlay(id.tr, base, c2, c1, &id.scratch.rev, id.scratch)
	return outcomesEqual(&id.scratch.fwd, &id.scratch.rev)
}

// pairKey is regionPairKey built into the identifier's reusable buffer;
// the two must remain byte-identical (pinned by test) because verdict
// tables built from either must interoperate.
func (id *identifier) pairKey(c1, c2 *trace.CritSec) string {
	if id.scratch == nil {
		id.scratch = &pairScratch{}
	}
	sc := id.scratch
	b := sc.keyBuf[:0]
	b = appendRegion(b, c1.Region)
	b = append(b, '|')
	b = appendRegion(b, c2.Region)
	b = append(b, '|')
	b = appendConflictSig(b, sc, c1, c2)
	sc.keyBuf = b
	return string(b)
}

// appendRegion renders r exactly as trace.Region.String does.
func appendRegion(b []byte, r trace.Region) []byte {
	if r.Empty() {
		return append(b, "<none>"...)
	}
	b = append(b, r.File...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(r.StartLine), 10)
	if r.StartLine != r.EndLine {
		b = append(b, '-')
		b = strconv.AppendInt(b, int64(r.EndLine), 10)
	}
	return b
}

// appendConflictSig renders conflictSig into b using the scratch's
// reusable address set and slice.
func appendConflictSig(b []byte, sc *pairScratch, c1, c2 *trace.CritSec) []byte {
	if sc.conflicting == nil {
		sc.conflicting = make(map[memmodel.Addr]struct{}, 8)
	} else {
		clear(sc.conflicting)
	}
	for a := range c1.Writes {
		if _, ok := c2.Writes[a]; ok {
			sc.conflicting[a] = struct{}{}
		}
		if _, ok := c2.Reads[a]; ok {
			sc.conflicting[a] = struct{}{}
		}
	}
	for a := range c2.Writes {
		if _, ok := c1.Reads[a]; ok {
			sc.conflicting[a] = struct{}{}
		}
	}
	sc.sigAddrs = sc.sigAddrs[:0]
	for a := range sc.conflicting {
		sc.sigAddrs = append(sc.sigAddrs, a)
	}
	sortAddrs(sc.sigAddrs)
	touch := func(b []byte, cs *trace.CritSec, a memmodel.Addr) []byte {
		if _, ok := cs.Reads[a]; ok {
			b = append(b, 'r')
		}
		seen := [4]bool{}
		for _, op := range cs.WriteOps[a] {
			if !seen[op] {
				seen[op] = true
				b = append(b, "sa&|"[op])
			}
		}
		return b
	}
	for _, a := range sc.sigAddrs {
		b = touch(b, c1, a)
		b = append(b, ':')
		b = touch(b, c2, a)
		b = append(b, ';')
	}
	return b
}

// sortAddrs is an insertion sort: conflict sets are tiny (usually 1-3
// addresses), where this beats sort.Slice and allocates nothing.
func sortAddrs(a []memmodel.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
