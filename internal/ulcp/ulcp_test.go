package ulcp

import (
	"testing"
	"testing/quick"

	"perfplay/internal/memmodel"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
)

func cs(reads, writes []memmodel.Addr) *trace.CritSec {
	c := &trace.CritSec{
		Reads:    make(map[memmodel.Addr]struct{}),
		Writes:   make(map[memmodel.Addr]struct{}),
		WriteOps: make(map[memmodel.Addr][]trace.WriteOp),
	}
	for _, a := range reads {
		c.Reads[a] = struct{}{}
	}
	for _, a := range writes {
		c.Writes[a] = struct{}{}
		c.WriteOps[a] = []trace.WriteOp{trace.WSet}
	}
	return c
}

func TestClassifyAlgorithm1(t *testing.T) {
	tests := []struct {
		name   string
		c1, c2 *trace.CritSec
		want   Category
	}{
		{"both empty", cs(nil, nil), cs(nil, nil), NullLock},
		{"first empty", cs(nil, nil), cs([]memmodel.Addr{1}, nil), NullLock},
		{"second empty", cs([]memmodel.Addr{1}, nil), cs(nil, nil), NullLock},
		{"read read same addr", cs([]memmodel.Addr{1}, nil), cs([]memmodel.Addr{1}, nil), ReadRead},
		{"read read different addr", cs([]memmodel.Addr{1}, nil), cs([]memmodel.Addr{2}, nil), ReadRead},
		{"disjoint writes", cs(nil, []memmodel.Addr{1}), cs(nil, []memmodel.Addr{2}), DisjointWrite},
		{"read vs disjoint write", cs([]memmodel.Addr{1}, nil), cs(nil, []memmodel.Addr{2}), DisjointWrite},
		{"write write conflict", cs(nil, []memmodel.Addr{1}), cs(nil, []memmodel.Addr{1}), TLCP},
		{"read write conflict", cs([]memmodel.Addr{1}, nil), cs(nil, []memmodel.Addr{1}), TLCP},
		{"write read conflict", cs(nil, []memmodel.Addr{1}), cs([]memmodel.Addr{1}, nil), TLCP},
	}
	for _, tt := range tests {
		if got := Classify(tt.c1, tt.c2); got != tt.want {
			t.Errorf("%s: Classify = %v, want %v", tt.name, got, tt.want)
		}
	}
}

// TestClassifyQuick: Algorithm 1 is exhaustive and consistent — a pair is
// TLCP iff some address is shared with at least one write.
func TestClassifyQuick(t *testing.T) {
	f := func(r1, w1, r2, w2 uint8) bool {
		mk := func(bits uint8) []memmodel.Addr {
			var out []memmodel.Addr
			for i := 0; i < 4; i++ {
				if bits&(1<<i) != 0 {
					out = append(out, memmodel.Addr(i+1))
				}
			}
			return out
		}
		c1 := cs(mk(r1), mk(w1))
		c2 := cs(mk(r2), mk(w2))
		got := Classify(c1, c2)
		conflict := (r1&w2)|(w1&r2)|(w1&w2) != 0
		// Mask to 4 bits.
		conflict = ((r1&w2)|(w1&r2)|(w1&w2))&0x0f != 0
		switch {
		case c1.Empty() || c2.Empty():
			return got == NullLock
		case w1&0x0f == 0 && w2&0x0f == 0:
			return got == ReadRead
		case conflict:
			return got == TLCP
		default:
			return got == DisjointWrite
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// record builds a small two-thread trace with a given body per thread.
func record(build func(p *sim.Program)) *sim.Result {
	p := sim.NewProgram("t")
	build(p)
	return sim.Run(p, sim.Config{Seed: 7})
}

func TestIdentifyRule1StopsAtFirstTLCP(t *testing.T) {
	// T0 performs one read CS; T1 performs N read CSs then a write CS.
	// RULE 1: T0's scan should classify the reads as RR ULCPs and stop at
	// the write, producing exactly one causal edge from T0's CS.
	rec := record(func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 1)
		s := p.Site("f.c", 1, "r")
		p.AddThread(func(th *sim.Thread) {
			th.Lock(l, s)
			th.Read(x, s)
			th.Unlock(l, s)
		})
		p.AddThread(func(th *sim.Thread) {
			th.Compute(500)
			for i := 0; i < 3; i++ {
				th.Lock(l, s)
				th.Read(x, s)
				th.Unlock(l, s)
				th.Compute(100)
			}
			th.Lock(l, s)
			th.Read(x, s)
			th.Write(x, 99, s)
			th.Unlock(l, s)
		})
	})
	css := rec.Trace.ExtractCS()
	rep := Identify(rec.Trace, css, Options{})
	if rep.Counts[ReadRead] != 3 {
		t.Errorf("read-read = %d, want 3", rep.Counts[ReadRead])
	}
	if rep.Counts[TLCP] != 1 {
		t.Errorf("tlcp = %d, want 1 (scan must stop at first conflict)", rep.Counts[TLCP])
	}
	if len(rep.CausalEdges) != 1 {
		t.Errorf("causal edges = %d, want 1", len(rep.CausalEdges))
	}
}

func TestIdentifyBenignViaReversedReplay(t *testing.T) {
	// Commutative increments from two threads: conflicting but benign.
	rec := record(func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "inc")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				th.Compute(100)
				th.Lock(l, s)
				th.Add(x, 1, s)
				th.Unlock(l, s)
			})
		}
	})
	css := rec.Trace.ExtractCS()
	rep := Identify(rec.Trace, css, Options{})
	if rep.Counts[Benign] != 1 {
		t.Fatalf("benign = %d (counts %v), want 1", rep.Counts[Benign], rep.Counts)
	}
	if rep.ReversedReplays == 0 {
		t.Fatal("no reversed replay performed")
	}
}

func TestIdentifyRedundantWriteBenign(t *testing.T) {
	// Both threads store the same constant: redundant write, benign.
	rec := record(func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "store7")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				th.Compute(100)
				th.Lock(l, s)
				th.Write(x, 7, s)
				th.Unlock(l, s)
			})
		}
	})
	css := rec.Trace.ExtractCS()
	rep := Identify(rec.Trace, css, Options{})
	if rep.Counts[Benign] != 1 {
		t.Fatalf("benign = %d (counts %v), want 1 for redundant writes", rep.Counts[Benign], rep.Counts)
	}
}

func TestIdentifyOrderSensitiveIsTLCP(t *testing.T) {
	// Distinct stores read later: true contention.
	rec := record(func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "w")
		for i := 0; i < 2; i++ {
			i := i
			p.AddThread(func(th *sim.Thread) {
				th.Compute(100)
				th.Lock(l, s)
				th.Read(x, s)
				th.Write(x, int64(10+i), s)
				th.Unlock(l, s)
			})
		}
	})
	css := rec.Trace.ExtractCS()
	rep := Identify(rec.Trace, css, Options{})
	if rep.Counts[TLCP] != 1 {
		t.Fatalf("tlcp = %d (counts %v), want 1", rep.Counts[TLCP], rep.Counts)
	}
	if rep.Counts[Benign] != 0 {
		t.Fatalf("benign = %d, want 0 for order-sensitive writes", rep.Counts[Benign])
	}
}

func TestIdentifyDisableReversedReplay(t *testing.T) {
	rec := record(func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "inc")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				th.Compute(100)
				th.Lock(l, s)
				th.Add(x, 1, s)
				th.Unlock(l, s)
			})
		}
	})
	css := rec.Trace.ExtractCS()
	rep := Identify(rec.Trace, css, Options{DisableReversedReplay: true})
	if rep.Counts[Benign] != 0 || rep.Counts[TLCP] != 1 {
		t.Fatalf("counts = %v, want 1 TLCP and no benign with reversed replay disabled", rep.Counts)
	}
	if rep.ReversedReplays != 0 {
		t.Fatal("reversed replays performed despite being disabled")
	}
}

func TestIdentifyScanCap(t *testing.T) {
	// Many read-only CSs on one lock with no conflict at all: the scan cap
	// must bound the pair count and report truncation.
	rec := record(func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 1)
		s := p.Site("f.c", 1, "r")
		for i := 0; i < 2; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 30; j++ {
					th.Lock(l, s)
					th.Read(x, s)
					th.Unlock(l, s)
					th.Compute(50)
				}
			})
		}
	})
	css := rec.Trace.ExtractCS()
	rep := Identify(rec.Trace, css, Options{MaxScanPerThread: 5})
	if rep.Truncated == 0 {
		t.Fatal("expected truncated scans with a tiny cap")
	}
	if rep.Counts[ReadRead] > 2*30*5 {
		t.Fatalf("read-read = %d exceeds cap bound", rep.Counts[ReadRead])
	}
}

func TestNumULCPsAndULCPs(t *testing.T) {
	rep := &Report{Counts: map[Category]int{ReadRead: 3, TLCP: 2, NullLock: 1}}
	rep.Pairs = []Pair{
		{Cat: ReadRead}, {Cat: ReadRead}, {Cat: ReadRead},
		{Cat: TLCP}, {Cat: TLCP}, {Cat: NullLock},
	}
	if got := rep.NumULCPs(); got != 4 {
		t.Errorf("NumULCPs = %d, want 4", got)
	}
	if got := len(rep.ULCPs()); got != 4 {
		t.Errorf("ULCPs len = %d, want 4", got)
	}
}

func TestConflictSigDistinguishesOps(t *testing.T) {
	addC := cs(nil, []memmodel.Addr{1})
	addC.WriteOps[1] = []trace.WriteOp{trace.WAdd}
	setC := cs(nil, []memmodel.Addr{1})
	k1 := regionPairKey(addC, addC)
	k2 := regionPairKey(addC, setC)
	if k1 == k2 {
		t.Fatal("conflict signatures must distinguish add/add from add/set pairs")
	}
}

func TestCategoryStrings(t *testing.T) {
	for c, want := range map[Category]string{
		NullLock: "null-lock", ReadRead: "read-read",
		DisjointWrite: "disjoint-write", Benign: "benign", TLCP: "tlcp",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if TLCP.IsULCP() {
		t.Error("TLCP must not be a ULCP")
	}
	if !Benign.IsULCP() {
		t.Error("benign must be a ULCP")
	}
}
