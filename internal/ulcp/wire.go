package ulcp

import (
	"fmt"

	"perfplay/internal/trace"
)

// WirePair is a classified pair with its critical sections referenced
// by CS ID instead of by pointer, for cross-node transport. ExtractCS
// assigns IDs deterministically from the trace bytes, so two nodes
// holding the same trace agree on every ID.
type WirePair struct {
	C1  int      `json:"c1"`
	C2  int      `json:"c2"`
	Cat Category `json:"cat"`
}

// WireReport is a Report flattened for JSON transport between nodes.
// Counts are not carried — they are a pure tally of Pairs and are
// rebuilt on rehydration, so the wire format cannot go self-
// inconsistent.
type WireReport struct {
	Pairs           []WirePair `json:"pairs"`
	CausalEdges     []Edge     `json:"causal_edges,omitempty"`
	Truncated       int        `json:"truncated,omitempty"`
	ReversedReplays int        `json:"reversed_replays,omitempty"`
}

// Wire flattens a report for transport.
func (r *Report) Wire() *WireReport {
	w := &WireReport{
		CausalEdges:     r.CausalEdges,
		Truncated:       r.Truncated,
		ReversedReplays: r.ReversedReplays,
	}
	w.Pairs = make([]WirePair, len(r.Pairs))
	for i, p := range r.Pairs {
		w.Pairs[i] = WirePair{C1: p.C1.ID, C2: p.C2.ID, Cat: p.Cat}
	}
	return w
}

// Tally rebuilds the per-category counts from the wire pairs — the same
// Counts a rehydrated report carries, computable without the receiver's
// critical sections. Cluster cache importers use it to summarize a
// remotely-computed report they will never rehydrate (they hold the
// digest, not the parsed trace).
func (w *WireReport) Tally() map[Category]int {
	counts := make(map[Category]int)
	for _, p := range w.Pairs {
		counts[p.Cat]++
	}
	return counts
}

// NumULCPs counts the wire report's unnecessary pairs.
func (w *WireReport) NumULCPs() int {
	n := 0
	for c, k := range w.Tally() {
		if c.IsULCP() {
			n += k
		}
	}
	return n
}

// CSByID indexes critical sections by ID for Rehydrate.
func CSByID(css []*trace.CritSec) map[int]*trace.CritSec {
	byID := make(map[int]*trace.CritSec, len(css))
	for _, cs := range css {
		byID[cs.ID] = cs
	}
	return byID
}

// Rehydrate rebuilds a full report from its wire form against the
// receiver's own critical sections (see CSByID). An ID the receiver
// does not know means the two sides analyzed different traces — that is
// an error, never a silent drop.
func (w *WireReport) Rehydrate(byID map[int]*trace.CritSec) (*Report, error) {
	r := &Report{
		Counts:          make(map[Category]int),
		CausalEdges:     w.CausalEdges,
		Truncated:       w.Truncated,
		ReversedReplays: w.ReversedReplays,
	}
	r.Pairs = make([]Pair, len(w.Pairs))
	for i, p := range w.Pairs {
		c1, ok1 := byID[p.C1]
		c2, ok2 := byID[p.C2]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("ulcp: wire pair references unknown critical section (%d, %d)", p.C1, p.C2)
		}
		r.Pairs[i] = Pair{C1: c1, C2: c2, Cat: p.Cat}
		r.Counts[p.Cat]++
	}
	return r, nil
}
