package ulcp

import (
	"perfplay/internal/trace"
)

// VerdictTable is the cross-shard reversed-replay memo: one benign/TLCP
// verdict per conflicting region-pair class, shared by every shard of a
// trace — and, in cluster mode, shipped with each shard request — so a
// region pair recurring under many locks pays the O(events) prefix walk
// once per trace instead of once per lock shard (the ROADMAP's measured
// 39 → 24 replays on openldap).
//
// A table is a deterministic function of (trace, critical sections,
// options): it is the memo produced by Identify's own sorted
// lock/thread walk under its per-trace replay budget. Shards replaying
// the same walk against the table observe exactly Identify's verdicts —
// including the RULE-1 early stops those verdicts imply — so
// IdentifyShardWithVerdicts over sorted lock groups performs zero
// shard-local replays and merges to a report pair-for-pair identical to
// Identify's, regardless of which goroutine or machine ran each shard.
type VerdictTable struct {
	// Verdicts maps regionPairKey → benign. Every class Identify's walk
	// replayed (or budget-defaulted) has an entry.
	Verdicts map[string]bool `json:"verdicts"`
	// Replays counts the reversed replays spent building the table.
	Replays int `json:"replays"`
}

// Lookup returns the memoized verdict for a conflicting pair.
func (vt *VerdictTable) Lookup(c1, c2 *trace.CritSec) (benign, ok bool) {
	if vt == nil {
		return false, false
	}
	benign, ok = vt.Verdicts[regionPairKey(c1, c2)]
	return benign, ok
}

// Classes reports how many region-pair classes the table memoizes.
func (vt *VerdictTable) Classes() int {
	if vt == nil {
		return 0
	}
	return len(vt.Verdicts)
}

// BuildVerdictTable runs one full identification pass over the trace —
// Identify's walk and budget semantics exactly — and returns both its
// verdict memo and the complete report the pass produced along the way.
// Single-node callers use the report directly (the pass replaces, not
// precedes, their classification); distributed callers ship the table
// with each shard request and merge the shard reports, which reproduce
// this report byte-for-byte. MaxReversedReplays budgets replays per
// trace (Identify's semantics, not IdentifyShard's per-lock one).
//
// The table is also the unit of cross-job reuse: it depends only on
// (trace content, Options), so a daemon analyzing the same stored trace
// under different reporting flags can reuse a cached table and skip
// every replay (see the pipeline's digest-keyed table cache).
func BuildVerdictTable(tr *trace.Trace, css []*trace.CritSec, opts Options) (*VerdictTable, *Report) {
	opts = opts.withDefaults()
	id := &identifier{
		tr:   tr,
		css:  css,
		opts: opts,
		rep: &Report{
			Counts: make(map[Category]int),
		},
		benignMemo: make(map[string]bool),
	}
	id.run()
	return &VerdictTable{Verdicts: id.benignMemo, Replays: id.rep.ReversedReplays}, id.rep
}
