// Package ulcp identifies and classifies unnecessary lock contention
// pairs.
//
// It implements the paper's Algorithm 1 over critical-section shadow sets
// (null-lock / read-read / disjoint-write), the RULE-1 sequential search
// that enumerates pairs and first-matched true-contention (TLCP) causal
// edges, and the reversed-replay classification that separates benign
// false conflicts from real contention (Sec. 3.1).
package ulcp

import (
	"fmt"
	"sort"

	"perfplay/internal/memmodel"
	"perfplay/internal/shadow"
	"perfplay/internal/trace"
)

// Category classifies a same-lock critical-section pair.
type Category int

// The paper's four ULCP categories plus true lock contention.
const (
	NullLock Category = iota
	ReadRead
	DisjointWrite
	Benign
	TLCP
)

var catNames = [...]string{"null-lock", "read-read", "disjoint-write", "benign", "tlcp"}

// String names the category.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// IsULCP reports whether the category denotes an unnecessary pair.
func (c Category) IsULCP() bool { return c != TLCP }

// Pair is one classified same-lock pair; C1 precedes C2 in the lock's
// recorded acquisition order.
type Pair struct {
	C1, C2 *trace.CritSec
	Cat    Category
}

// Edge is a RULE-1 causal edge between critical sections (by CS ID).
type Edge struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Options tunes identification. The JSON tags are the cluster wire
// format: a coordinator ships options verbatim with each shard request
// so every node classifies under identical settings.
type Options struct {
	// MaxScanPerThread caps the RULE-1 sequential search ahead of each
	// critical section within one peer thread. Zero selects 4096. Scans
	// cut short are tallied in Report.Truncated.
	MaxScanPerThread int `json:"max_scan_per_thread,omitempty"`
	// DisableReversedReplay turns off the benign/TLCP reversed-replay
	// check; every Algorithm-1 conflict is then reported as TLCP.
	DisableReversedReplay bool `json:"disable_reversed_replay,omitempty"`
	// MaxReversedReplays caps full-trace reversed replays; beyond it the
	// memoized per-region verdicts are reused and unseen region pairs
	// default to TLCP (conservative). Zero selects 128.
	MaxReversedReplays int `json:"max_reversed_replays,omitempty"`
}

func (o Options) withDefaults() Options {
	if o.MaxScanPerThread == 0 {
		o.MaxScanPerThread = 4096
	}
	if o.MaxReversedReplays == 0 {
		o.MaxReversedReplays = 128
	}
	return o
}

// Report is the identification outcome.
type Report struct {
	// Pairs holds every classified pair (ULCPs and the first-matched
	// TLCPs that terminate each RULE-1 scan).
	Pairs []Pair
	// Counts tallies pairs per category.
	Counts map[Category]int
	// CausalEdges are the RULE-1 first-matched TLCP edges feeding the
	// topology construction.
	CausalEdges []Edge
	// Truncated counts scans cut short by MaxScanPerThread.
	Truncated int
	// ReversedReplays counts full reversed replays performed.
	ReversedReplays int
}

// ULCPs returns only the unnecessary pairs.
func (r *Report) ULCPs() []Pair {
	out := make([]Pair, 0, len(r.Pairs))
	for _, p := range r.Pairs {
		if p.Cat.IsULCP() {
			out = append(out, p)
		}
	}
	return out
}

// NumULCPs counts unnecessary pairs.
func (r *Report) NumULCPs() int {
	n := 0
	for c, k := range r.Counts {
		if c.IsULCP() {
			n += k
		}
	}
	return n
}

// Classify implements Algorithm 1: it returns the pair's category from the
// shadow sets alone, reporting TLCP for any conflicting access (the caller
// refines conflicts into benign/TLCP with the reversed replay).
func Classify(c1, c2 *trace.CritSec) Category {
	s1r, s1w := shadow.Set(c1.Reads), shadow.Set(c1.Writes)
	s2r, s2w := shadow.Set(c2.Reads), shadow.Set(c2.Writes)
	switch {
	case c1.Empty() || c2.Empty():
		return NullLock
	case shadow.Empty(s1w) && shadow.Empty(s2w):
		return ReadRead
	case !shadow.Intersects(s1r, s2w) && !shadow.Intersects(s1w, s2r) &&
		!shadow.Intersects(s1w, s2w):
		return DisjointWrite
	default:
		return TLCP
	}
}

// identifier carries the state of one identification run.
type identifier struct {
	tr   *trace.Trace
	css  []*trace.CritSec
	opts Options
	rep  *Report
	// benignMemo caches reversed-replay verdicts per code-region pair.
	benignMemo map[string]bool
	// table, when set, is a precomputed cross-shard verdict table
	// consulted before benignMemo; hits cost no replay.
	table *VerdictTable
	// sweep and scratch are the run's reusable replay state (see
	// sweep.go), created on the first conflicting pair.
	sweep   *prefixSweeper
	scratch *pairScratch
}

// Identify runs the full identification pass over a recorded trace.
// Locks and peer threads are visited in sorted order, so the report —
// including the reversed-replay budget's consumption order — is a
// deterministic function of (trace, critical sections, options).
func Identify(tr *trace.Trace, css []*trace.CritSec, opts Options) *Report {
	opts = opts.withDefaults()
	id := &identifier{
		tr:   tr,
		css:  css,
		opts: opts,
		rep: &Report{
			Counts: make(map[Category]int),
		},
		benignMemo: make(map[string]bool),
	}
	id.run()
	return id.rep
}

// IdentifyShard runs identification over a single lock's critical
// sections (one group of trace.CSByLock) with a shard-local memo and
// reversed-replay budget. Shards are independent — the result is a pure
// function of (trace, lock group, options) — so callers may run them
// concurrently and combine them with MergeReports; merging in sorted
// lock order reproduces Identify's pair order. Note the budget semantics
// differ from Identify: MaxReversedReplays caps replays per lock rather
// than per trace.
func IdentifyShard(tr *trace.Trace, lockCSs []*trace.CritSec, opts Options) *Report {
	opts = opts.withDefaults()
	id := &identifier{
		tr:   tr,
		css:  lockCSs,
		opts: opts,
		rep: &Report{
			Counts: make(map[Category]int),
		},
		benignMemo: make(map[string]bool),
	}
	id.runLock(lockCSs)
	return id.rep
}

// IdentifyShardWithVerdicts is IdentifyShard with a precomputed verdict
// table (see BuildVerdictTable): conflicting pairs whose region-pair
// class is in the table reuse its verdict without a replay, so shards
// sharing one table — across goroutines or across nodes — stop
// re-paying the O(events) prefix walk for classes that recur under
// many locks. Classes absent from the table (a table built over
// different groups) fall back to the shard-local memo and budget. With
// a table built over the same sorted lock groups and options, shards
// perform zero replays and the merged classification is a pure
// function of (trace, groups, options, table).
func IdentifyShardWithVerdicts(tr *trace.Trace, lockCSs []*trace.CritSec, opts Options, table *VerdictTable) *Report {
	opts = opts.withDefaults()
	id := &identifier{
		tr:   tr,
		css:  lockCSs,
		opts: opts,
		rep: &Report{
			Counts: make(map[Category]int),
		},
		benignMemo: make(map[string]bool),
		table:      table,
	}
	id.runLock(lockCSs)
	return id.rep
}

// SortedLockGroups returns CSByLock's groups in ascending lock order —
// the canonical shard decomposition shared by Identify, IdentifySharded
// and the concurrent pipeline. Keeping it in one place is what keeps
// the serial and parallel paths byte-identical.
func SortedLockGroups(css []*trace.CritSec) [][]*trace.CritSec {
	byLock := trace.CSByLock(css)
	locks := make([]trace.LockID, 0, len(byLock))
	for l := range byLock {
		locks = append(locks, l)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	groups := make([][]*trace.CritSec, len(locks))
	for i, l := range locks {
		groups[i] = byLock[l]
	}
	return groups
}

// IdentifySharded is the serial convenience over the shard API: every
// lock group through IdentifyShard, merged in sorted lock order. It has
// the pipeline's per-lock budget semantics (unlike Identify's per-trace
// budget), so serial tools that must agree with pipeline-produced
// reports should use it.
func IdentifySharded(tr *trace.Trace, css []*trace.CritSec, opts Options) *Report {
	groups := SortedLockGroups(css)
	reports := make([]*Report, len(groups))
	for i, g := range groups {
		reports[i] = IdentifyShard(tr, g, opts)
	}
	return MergeReports(reports...)
}

// MergeReports combines shard reports in call order into one report.
func MergeReports(reports ...*Report) *Report {
	out := &Report{Counts: make(map[Category]int)}
	for _, r := range reports {
		if r == nil {
			continue
		}
		out.Pairs = append(out.Pairs, r.Pairs...)
		out.CausalEdges = append(out.CausalEdges, r.CausalEdges...)
		for c, n := range r.Counts {
			out.Counts[c] += n
		}
		out.Truncated += r.Truncated
		out.ReversedReplays += r.ReversedReplays
	}
	return out
}

func (id *identifier) run() {
	for _, g := range SortedLockGroups(id.css) {
		id.runLock(g)
	}
}

// runLock scans one lock's critical sections: per thread in acquisition
// order, with peer threads visited in sorted order.
func (id *identifier) runLock(lockCSs []*trace.CritSec) {
	perThread := make(map[int32][]*trace.CritSec)
	for _, cs := range lockCSs {
		perThread[cs.Thread] = append(perThread[cs.Thread], cs)
	}
	if len(perThread) < 2 {
		return // single-thread lock: no cross-thread pairs
	}
	threads := make([]int32, 0, len(perThread))
	for t := range perThread {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i] < threads[j] })
	for _, cur := range lockCSs {
		for _, t := range threads {
			if t == cur.Thread {
				continue
			}
			id.scan(cur, perThread[t])
		}
	}
}

// scan performs the RULE-1 sequential search: walk the peer thread's
// critical sections after cur in the lock's acquisition order, classify
// each pair, and stop at the first true contention (which becomes a
// causal edge).
func (id *identifier) scan(cur *trace.CritSec, peer []*trace.CritSec) {
	// peer is in acquisition order; start just past cur's position.
	lo := sort.Search(len(peer), func(i int) bool { return peer[i].SeqInLock > cur.SeqInLock })
	steps := 0
	for _, cs := range peer[lo:] {
		steps++
		if steps > id.opts.MaxScanPerThread {
			id.rep.Truncated++
			return
		}
		cat := Classify(cur, cs)
		if cat == TLCP && !id.opts.DisableReversedReplay {
			if id.benign(cur, cs) {
				cat = Benign
			}
		}
		id.rep.Pairs = append(id.rep.Pairs, Pair{C1: cur, C2: cs, Cat: cat})
		id.rep.Counts[cat]++
		if cat == TLCP {
			// Matched: first true contention establishes the causal edge
			// and ends this thread's scan (RULE 1).
			id.rep.CausalEdges = append(id.rep.CausalEdges, Edge{From: cur.ID, To: cs.ID})
			return
		}
	}
}

// benign decides whether a conflicting pair is a benign ULCP by replaying
// the trace with the two critical sections' enforced order reversed and
// comparing final memory states (the reversed-replay extension of
// Narayanasamy et al. the paper adopts). Verdicts are memoized per
// code-region pair; once the replay budget is exhausted, unseen region
// pairs conservatively classify as true contention.
func (id *identifier) benign(c1, c2 *trace.CritSec) bool {
	key := id.pairKey(c1, c2)
	if id.table != nil {
		if v, ok := id.table.Verdicts[key]; ok {
			return v
		}
	}
	if v, ok := id.benignMemo[key]; ok {
		return v
	}
	// Fast pre-filter: order-sensitive only if some conflicting address
	// is written non-commutatively with distinct effects. Commutative-only
	// conflicts (adds, or-bits) are benign without a replay; we still
	// verify a sample of them through the replayer when budget allows.
	if id.rep.ReversedReplays >= id.opts.MaxReversedReplays {
		id.benignMemo[key] = false
		return false
	}
	id.rep.ReversedReplays++
	v := id.reversedReplayEqual(c1, c2)
	id.benignMemo[key] = v
	return v
}

// regionPairKey identifies the memoization class of a conflicting pair:
// the two code regions plus the write-op signature of the conflicting
// addresses. The signature matters because one code region can emit both
// commutative updates (benign) and order-sensitive stores (TLCP); a shared
// key would let one verdict shadow the other.
func regionPairKey(c1, c2 *trace.CritSec) string {
	return c1.Region.String() + "|" + c2.Region.String() + "|" + conflictSig(c1, c2)
}

// conflictSig summarizes, per conflicting address, how each side touches
// it: r=read, and one letter per write-op kind (s/a/&/|), deduplicated.
func conflictSig(c1, c2 *trace.CritSec) string {
	touch := func(cs *trace.CritSec, a memmodel.Addr) string {
		var b []byte
		if _, ok := cs.Reads[a]; ok {
			b = append(b, 'r')
		}
		seen := [4]bool{}
		for _, op := range cs.WriteOps[a] {
			if !seen[op] {
				seen[op] = true
				b = append(b, "sa&|"[op])
			}
		}
		return string(b)
	}
	conflicting := make(map[memmodel.Addr]struct{})
	for a := range c1.Writes {
		if _, ok := c2.Writes[a]; ok {
			conflicting[a] = struct{}{}
		}
		if _, ok := c2.Reads[a]; ok {
			conflicting[a] = struct{}{}
		}
	}
	for a := range c2.Writes {
		if _, ok := c1.Reads[a]; ok {
			conflicting[a] = struct{}{}
		}
	}
	addrs := make([]memmodel.Addr, 0, len(conflicting))
	for a := range conflicting {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var b []byte
	for _, a := range addrs {
		b = append(b, touch(c1, a)...)
		b = append(b, ':')
		b = append(b, touch(c2, a)...)
		b = append(b, ';')
	}
	return string(b)
}

// reversedReplayEqual performs the reversed replay localized to the pair:
// it reconstructs the recorded memory state at c1's acquisition, replays
// the two critical sections in both orders (c1;c2 and c2;c1), and reports
// whether both orders produce the same result — identical writes applied
// and identical values observed by every read. Localizing the reversal
// keeps the check deterministic: a whole-trace reversal would perturb
// unrelated lock races and misattribute their differences to the pair.
// This standalone form builds fresh sweep state per call; Identify's
// inner loop uses the identifier method, which batches the prefix walk
// across a lock group's pairs (sweep.go).
func reversedReplayEqual(tr *trace.Trace, c1, c2 *trace.CritSec) bool {
	id := &identifier{tr: tr}
	return id.reversedReplayEqual(c1, c2)
}

// pairOutcome is the observable result of executing the two critical
// sections in one order: the values every read observed (c1's reads then
// c2's reads when called as (c1,c2)) and the final values of all touched
// cells (including cells restored by skip deltas inside the sections).
type pairOutcome struct {
	reads  []int64
	writes map[memmodel.Addr]int64
}
