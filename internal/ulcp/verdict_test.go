package ulcp

import (
	"encoding/json"
	"reflect"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// openldapFixture records the contended openldap workload — the ROADMAP
// fixture where the per-lock memo re-pays replays for region pairs that
// recur under many locks.
func openldapFixture(t *testing.T) (*trace.Trace, []*trace.CritSec) {
	t.Helper()
	a := workload.MustGet("openldap")
	p := a.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7})
	res := sim.Run(p, sim.Config{Seed: 7})
	return res.Trace, res.Trace.ExtractCS()
}

// TestVerdictTableReducesReplays pins the reversed-replay counters on
// the openldap fixture: the per-lock memo re-replays recurring region
// pairs (39 replays), while one shared table pays each class once (24)
// and the table-backed shards pay nothing. The exact values are
// deterministic functions of the fixture; a change means the walk or
// the memo key changed and must be deliberate.
func TestVerdictTableReducesReplays(t *testing.T) {
	tr, css := openldapFixture(t)
	opts := Options{}

	sharded := IdentifySharded(tr, css, opts)
	table, rep := BuildVerdictTable(tr, css, opts)

	groups := SortedLockGroups(css)
	var shardReplays int
	for _, g := range groups {
		shardReplays += IdentifyShardWithVerdicts(tr, g, opts, table).ReversedReplays
	}

	if table.Replays >= sharded.ReversedReplays {
		t.Fatalf("shared table spent %d replays, per-lock memo %d — table must reduce them",
			table.Replays, sharded.ReversedReplays)
	}
	if shardReplays != 0 {
		t.Fatalf("table-backed shards performed %d replays, want 0", shardReplays)
	}
	// Pin the exact trajectory (the ROADMAP's measured 24 → 39).
	if table.Replays != 24 || sharded.ReversedReplays != 39 {
		t.Fatalf("replay counters moved: table=%d (want 24), per-lock=%d (want 39)",
			table.Replays, sharded.ReversedReplays)
	}
	if rep.ReversedReplays != table.Replays {
		t.Fatalf("build report counts %d replays, table %d", rep.ReversedReplays, table.Replays)
	}
}

// TestVerdictTableShardsMatchIdentify: shards consulting the shared
// table reproduce Identify exactly — same pairs in the same order, same
// counts and causal edges — because the table carries Identify's own
// verdicts, including the early stops they imply. This is what makes a
// distributed run mergeable into a byte-identical report.
func TestVerdictTableShardsMatchIdentify(t *testing.T) {
	for _, app := range []string{"openldap", "pbzip2", "mysql"} {
		a := workload.MustGet(app)
		p := a.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7})
		res := sim.Run(p, sim.Config{Seed: 7})
		tr := res.Trace
		css := tr.ExtractCS()
		opts := Options{}

		serial := Identify(tr, css, opts)
		table, buildRep := BuildVerdictTable(tr, css, opts)

		groups := SortedLockGroups(css)
		shards := make([]*Report, len(groups))
		for i, g := range groups {
			shards[i] = IdentifyShardWithVerdicts(tr, g, opts, table)
		}
		merged := MergeReports(shards...)

		if !reflect.DeepEqual(merged.Pairs, serial.Pairs) {
			t.Fatalf("%s: table-shard pairs differ from Identify (%d vs %d)",
				app, len(merged.Pairs), len(serial.Pairs))
		}
		if !reflect.DeepEqual(merged.Counts, serial.Counts) {
			t.Fatalf("%s: counts differ: %v vs %v", app, merged.Counts, serial.Counts)
		}
		if !reflect.DeepEqual(merged.CausalEdges, serial.CausalEdges) {
			t.Fatalf("%s: causal edges differ", app)
		}
		if !reflect.DeepEqual(buildRep.Pairs, serial.Pairs) {
			t.Fatalf("%s: build-pass report differs from Identify", app)
		}
	}
}

// TestVerdictTableJSONRoundTrip: the table survives the JSON transport
// used by shard requests.
func TestVerdictTableJSONRoundTrip(t *testing.T) {
	tr, css := openldapFixture(t)
	table, _ := BuildVerdictTable(tr, css, Options{})
	data, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	var back VerdictTable
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, table) {
		t.Fatal("verdict table changed across JSON round trip")
	}

	groups := SortedLockGroups(css)
	want := IdentifyShardWithVerdicts(tr, groups[0], Options{}, table)
	got := IdentifyShardWithVerdicts(tr, groups[0], Options{}, &back)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("shard report differs under round-tripped table")
	}
}

// TestWireReportRoundTrip: a report crosses the CS-ID wire format and
// rehydrates into an equal report against the receiver's own critical
// sections; unknown IDs are an error.
func TestWireReportRoundTrip(t *testing.T) {
	tr, css := openldapFixture(t)
	rep := Identify(tr, css, Options{})

	data, err := json.Marshal(rep.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var w WireReport
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.Rehydrate(CSByID(css))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Pairs, rep.Pairs) {
		t.Fatalf("rehydrated pairs differ (%d vs %d)", len(back.Pairs), len(rep.Pairs))
	}
	if !reflect.DeepEqual(back.Counts, rep.Counts) {
		t.Fatalf("rehydrated counts differ: %v vs %v", back.Counts, rep.Counts)
	}
	if !reflect.DeepEqual(back.CausalEdges, rep.CausalEdges) {
		t.Fatal("rehydrated causal edges differ")
	}
	if back.Truncated != rep.Truncated || back.ReversedReplays != rep.ReversedReplays {
		t.Fatal("rehydrated counters differ")
	}

	bad := &WireReport{Pairs: []WirePair{{C1: 1 << 30, C2: 0}}}
	if _, err := bad.Rehydrate(CSByID(css)); err == nil {
		t.Fatal("rehydrating an unknown CS ID must fail")
	}
}
