package ulcp

import (
	"reflect"
	"sort"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// recordedCS records one workload and extracts its critical sections.
func recordedCS(t *testing.T, app string, seed int64) (*trace.Trace, []*trace.CritSec) {
	t.Helper()
	a := workload.MustGet(app)
	p := a.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: seed})
	res := sim.Run(p, sim.Config{Seed: seed})
	return res.Trace, res.Trace.ExtractCS()
}

// TestShardMergeMatchesIdentify: with a non-binding reversed-replay
// budget, running each lock group through IdentifyShard and merging in
// sorted lock order must reproduce Identify exactly (same pairs in the
// same order, same counts and causal edges) — the per-lock vs per-trace
// budget difference only matters when the budget binds.
func TestShardMergeMatchesIdentify(t *testing.T) {
	for _, app := range []string{"pbzip2", "mysql"} {
		tr, css := recordedCS(t, app, 7)
		opts := Options{MaxReversedReplays: 1 << 30}

		serial := Identify(tr, css, opts)

		byLock := trace.CSByLock(css)
		locks := make([]trace.LockID, 0, len(byLock))
		for l := range byLock {
			locks = append(locks, l)
		}
		sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
		shards := make([]*Report, len(locks))
		for i, l := range locks {
			shards[i] = IdentifyShard(tr, byLock[l], opts)
		}
		merged := MergeReports(shards...)

		if !reflect.DeepEqual(merged.Pairs, serial.Pairs) {
			t.Fatalf("%s: shard-merged pairs differ from Identify (%d vs %d pairs)",
				app, len(merged.Pairs), len(serial.Pairs))
		}
		if !reflect.DeepEqual(merged.Counts, serial.Counts) {
			t.Fatalf("%s: counts differ: %v vs %v", app, merged.Counts, serial.Counts)
		}
		if !reflect.DeepEqual(merged.CausalEdges, serial.CausalEdges) {
			t.Fatalf("%s: causal edges differ", app)
		}
	}
}

// TestIdentifyDeterministic: two runs over the same trace produce
// identical reports (sorted lock/thread iteration removed the map-order
// dependence that made budget consumption racy).
func TestIdentifyDeterministic(t *testing.T) {
	tr, css := recordedCS(t, "mysql", 3)
	a := Identify(tr, css, Options{})
	b := Identify(tr, css, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Identify is not deterministic across runs")
	}
}
