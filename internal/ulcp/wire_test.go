package ulcp

import (
	"encoding/json"
	"reflect"
	"testing"

	"perfplay/internal/trace"
)

// wireCS builds a minimal critical section with just an identity —
// Rehydrate only resolves pointers by ID, it never inspects the body.
func wireCS(id int) *trace.CritSec { return &trace.CritSec{ID: id} }

// TestWireReportRoundTripShapes drives Wire → JSON → Rehydrate across
// the edge shapes the cluster ships (the live-fixture round trip lives
// in verdict_test.go): empty reports, single- and multi-pair reports
// with causal edges, and truncation/replay counters.
func TestWireReportRoundTripShapes(t *testing.T) {
	cs := map[int]*trace.CritSec{0: wireCS(0), 1: wireCS(1), 2: wireCS(2)}
	cases := []struct {
		name string
		rep  *Report
	}{
		{"empty", &Report{Counts: map[Category]int{}}},
		{"one-pair", &Report{
			Counts: map[Category]int{ReadRead: 1},
			Pairs:  []Pair{{C1: cs[0], C2: cs[1], Cat: ReadRead}},
		}},
		{"full", &Report{
			Counts: map[Category]int{NullLock: 1, TLCP: 1, Benign: 1},
			Pairs: []Pair{
				{C1: cs[0], C2: cs[1], Cat: NullLock},
				{C1: cs[1], C2: cs[2], Cat: TLCP},
				{C1: cs[0], C2: cs[2], Cat: Benign},
			},
			CausalEdges:     []Edge{{From: 0, To: 2}},
			Truncated:       3,
			ReversedReplays: 24,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(tc.rep.Wire())
			if err != nil {
				t.Fatal(err)
			}
			var w WireReport
			if err := json.Unmarshal(data, &w); err != nil {
				t.Fatal(err)
			}
			got, err := w.Rehydrate(CSByID([]*trace.CritSec{cs[0], cs[1], cs[2]}))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Pairs) != len(tc.rep.Pairs) {
				t.Fatalf("rehydrated %d pairs, want %d", len(got.Pairs), len(tc.rep.Pairs))
			}
			for i := range got.Pairs {
				if got.Pairs[i].C1.ID != tc.rep.Pairs[i].C1.ID ||
					got.Pairs[i].C2.ID != tc.rep.Pairs[i].C2.ID ||
					got.Pairs[i].Cat != tc.rep.Pairs[i].Cat {
					t.Fatalf("pair %d: got %+v", i, got.Pairs[i])
				}
			}
			if !reflect.DeepEqual(got.Counts, tc.rep.Counts) {
				t.Fatalf("counts %v, want %v", got.Counts, tc.rep.Counts)
			}
			if !reflect.DeepEqual(got.Counts, w.Tally()) {
				t.Fatalf("Tally %v disagrees with rehydrated counts %v", w.Tally(), got.Counts)
			}
			if got.Truncated != tc.rep.Truncated || got.ReversedReplays != tc.rep.ReversedReplays ||
				!reflect.DeepEqual(got.CausalEdges, tc.rep.CausalEdges) {
				t.Fatalf("metadata differs: %+v", got)
			}
		})
	}
}

// TestWireReportUnknownFieldTolerance: decoding must ignore fields a
// newer (or just different) node added — wire compatibility across a
// mixed-version cluster — while unknown CS IDs remain a hard error,
// never a silent drop.
func TestWireReportUnknownFieldTolerance(t *testing.T) {
	var w WireReport
	blob := `{"pairs":[{"c1":0,"c2":1,"cat":1,"confidence":0.9}],"future_field":{"x":1},"reversed_replays":2}`
	if err := json.Unmarshal([]byte(blob), &w); err != nil {
		t.Fatalf("unknown fields broke decoding: %v", err)
	}
	rep, err := w.Rehydrate(CSByID([]*trace.CritSec{wireCS(0), wireCS(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != 1 || rep.Pairs[0].Cat != ReadRead || rep.ReversedReplays != 2 {
		t.Fatalf("rehydrated %+v", rep)
	}

	if _, err := w.Rehydrate(CSByID([]*trace.CritSec{wireCS(0)})); err == nil {
		t.Fatal("unknown CS ID rehydrated without error")
	}
}

// TestCSByIDDuplicateIDs pins CSByID's behavior when two critical
// sections claim the same ID (a corrupted or mismatched extraction):
// the later entry wins, so Rehydrate resolves deterministically against
// exactly one of them rather than depending on map iteration order.
func TestCSByIDDuplicateIDs(t *testing.T) {
	first, second := wireCS(7), wireCS(7)
	byID := CSByID([]*trace.CritSec{first, second})
	if len(byID) != 1 {
		t.Fatalf("index holds %d entries for one ID, want 1", len(byID))
	}
	if byID[7] != second {
		t.Fatal("duplicate ID did not resolve to the later critical section")
	}
}

// TestWireTallyAndNumULCPs: the count helpers importers use on wire
// reports they never rehydrate.
func TestWireTallyAndNumULCPs(t *testing.T) {
	w := &WireReport{Pairs: []WirePair{
		{C1: 0, C2: 1, Cat: NullLock},
		{C1: 1, C2: 2, Cat: ReadRead},
		{C1: 2, C2: 3, Cat: ReadRead},
		{C1: 3, C2: 4, Cat: TLCP},
	}}
	want := map[Category]int{NullLock: 1, ReadRead: 2, TLCP: 1}
	if got := w.Tally(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tally = %v, want %v", got, want)
	}
	if got := w.NumULCPs(); got != 3 {
		t.Fatalf("NumULCPs = %d, want 3", got)
	}
	if got := (&WireReport{}).NumULCPs(); got != 0 {
		t.Fatalf("empty NumULCPs = %d, want 0", got)
	}
}

// FuzzWireReportDecode: the cluster's wire decode path (peer cache
// imports and shard responses) must never panic on arbitrary JSON, and
// whatever decodes must rehydrate either cleanly or with an error —
// and a clean rehydration must agree with the wire tally.
func FuzzWireReportDecode(f *testing.F) {
	seed, _ := json.Marshal((&Report{
		Counts: map[Category]int{ReadRead: 1, TLCP: 1},
		Pairs: []Pair{
			{C1: wireCS(0), C2: wireCS(1), Cat: ReadRead},
			{C1: wireCS(1), C2: wireCS(2), Cat: TLCP},
		},
		CausalEdges: []Edge{{From: 0, To: 1}},
	}).Wire())
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"pairs":[{"c1":-1,"c2":99,"cat":42}]}`))
	f.Add([]byte(`not json`))
	byID := CSByID([]*trace.CritSec{wireCS(0), wireCS(1), wireCS(2)})
	f.Fuzz(func(t *testing.T, data []byte) {
		var w WireReport
		if err := json.Unmarshal(data, &w); err != nil {
			return
		}
		rep, err := w.Rehydrate(byID)
		if err != nil {
			return
		}
		if !reflect.DeepEqual(rep.Counts, w.Tally()) {
			t.Fatalf("rehydrated counts %v disagree with tally %v", rep.Counts, w.Tally())
		}
	})
}
