package ulcp

import (
	"testing"

	"perfplay/internal/memmodel"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// refPrefixState is the naive per-pair prefix reconstruction the sweep
// replaced, kept here as the test oracle.
func refPrefixState(tr *trace.Trace, before int32) map[memmodel.Addr]int64 {
	mem := make(map[memmodel.Addr]int64, len(tr.InitMem)+16)
	for a, v := range tr.InitMem {
		mem[a] = v
	}
	for i := int32(0); i < before; i++ {
		e := &tr.Events[i]
		switch e.Kind {
		case trace.KWrite:
			mem[e.Addr] = e.Op.Apply(mem[e.Addr], e.Value)
		case trace.KSkip:
			for a, v := range e.Delta {
				mem[a] = v
			}
		}
	}
	return mem
}

// refExecPair is the naive full-copy pair execution (with the skip-delta
// handling the production overlay applies), the second half of the oracle.
func refExecPair(tr *trace.Trace, pre map[memmodel.Addr]int64, first, second *trace.CritSec) pairOutcome {
	mem := make(map[memmodel.Addr]int64, len(pre))
	for a, v := range pre {
		mem[a] = v
	}
	out := pairOutcome{writes: make(map[memmodel.Addr]int64)}
	var r1, r2 []int64
	exec := func(cs *trace.CritSec, reads *[]int64) {
		for i := cs.AcqEv; i <= cs.RelEv; i++ {
			e := &tr.Events[i]
			if e.Thread != cs.Thread {
				continue
			}
			switch e.Kind {
			case trace.KRead:
				*reads = append(*reads, mem[e.Addr])
			case trace.KWrite:
				mem[e.Addr] = e.Op.Apply(mem[e.Addr], e.Value)
				out.writes[e.Addr] = mem[e.Addr]
			case trace.KSkip:
				for a, v := range e.Delta {
					mem[a] = v
					out.writes[a] = v
				}
			}
		}
	}
	if first.AcqEv <= second.AcqEv {
		exec(first, &r1)
		exec(second, &r2)
	} else {
		exec(first, &r2)
		exec(second, &r1)
	}
	for a := range out.writes {
		out.writes[a] = mem[a]
	}
	out.reads = append(r1, r2...)
	return out
}

func refReversedReplayEqual(tr *trace.Trace, c1, c2 *trace.CritSec) bool {
	pre := refPrefixState(tr, c1.AcqEv)
	fwd := refExecPair(tr, pre, c1, c2)
	rev := refExecPair(tr, pre, c2, c1)
	return outcomesEqual(&fwd, &rev)
}

// TestSweepMatchesNaiveReplay drives the batched sweep through every
// conflicting pair of several recorded workloads — in the identifier's
// own visit order, so the incremental advance is exercised — and checks
// each verdict against the naive full-walk oracle.
func TestSweepMatchesNaiveReplay(t *testing.T) {
	for _, app := range []string{"openldap", "mysql", "pbzip2"} {
		t.Run(app, func(t *testing.T) {
			a := workload.MustGet(app)
			p := a.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7})
			res := sim.Run(p, sim.Config{Seed: 7})
			tr, css := res.Trace, res.Trace.ExtractCS()

			id := &identifier{tr: tr}
			pairs := 0
			for _, g := range SortedLockGroups(css) {
				for i, c1 := range g {
					for _, c2 := range g[i+1:] {
						if c1.Thread == c2.Thread || Classify(c1, c2) != TLCP {
							continue
						}
						pairs++
						got := id.reversedReplayEqual(c1, c2)
						want := refReversedReplayEqual(tr, c1, c2)
						if got != want {
							t.Fatalf("pair (cs%d, cs%d): sweep=%v oracle=%v", c1.ID, c2.ID, got, want)
						}
					}
				}
			}
			if pairs == 0 {
				t.Fatalf("%s produced no conflicting pairs; fixture lost its teeth", app)
			}
			if id.sweep.rebuilds > len(SortedLockGroups(css))+1 {
				t.Errorf("sweep rebuilt %d times for %d lock groups — not incremental",
					id.sweep.rebuilds, len(SortedLockGroups(css)))
			}
		})
	}
}

// skipPairTrace builds a trace where thread 0's critical section spans
// a KSkip delta restoring y=10 between two commutative adds. The adds
// alone commute (both orders end at y=3), but the skip's absolute
// restore does not: c1-then-c2 ends at 12, c2-then-c1 at 10. Ignoring
// in-section skip deltas — the old execPairLocal bug — misclassifies
// this pair as benign.
func skipPairTrace() (*trace.Trace, []*trace.CritSec) {
	tr := trace.New("skip-pair", 2)
	const y = memmodel.Addr(2)
	l := trace.LockID(1)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KThreadStart})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KThreadStart})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLockAcq, Lock: l, Time: 10})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: y, Value: 1, Op: trace.WAdd, Time: 20})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KSkip, Delta: memmodel.Snapshot{y: 10}, Cost: 5, Time: 25})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLockRel, Lock: l, Time: 30})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLockAcq, Lock: l, Time: 40})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: y, Value: 2, Op: trace.WAdd, Time: 50})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLockRel, Lock: l, Time: 60})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KThreadEnd, Time: 70})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KThreadEnd, Time: 70})
	tr.TotalTime = 70
	return tr, tr.ExtractCS()
}

// TestSkipDeltaInsideCriticalSection pins the execPairLocal bugfix: a
// skip event's delta inside [AcqEv, RelEv] participates in the replayed
// pair, exactly as the prefix walk applies it outside.
func TestSkipDeltaInsideCriticalSection(t *testing.T) {
	tr, css := skipPairTrace()
	if len(css) != 2 {
		t.Fatalf("extracted %d CSs, want 2", len(css))
	}
	c1, c2 := css[0], css[1]
	if Classify(c1, c2) != TLCP {
		t.Fatalf("fixture pair classifies %v, want conflicting", Classify(c1, c2))
	}
	if reversedReplayEqual(tr, c1, c2) {
		t.Fatal("orders judged equal: the skip delta inside the critical section was ignored")
	}
	rep := Identify(tr, css, Options{})
	if rep.Counts[TLCP] != 1 || rep.Counts[Benign] != 0 {
		t.Fatalf("counts = %v, want the skip pair reported as true contention", rep.Counts)
	}

	// Remove the skip's restore and the adds commute again: the same
	// machinery must call the pair benign, proving the TLCP verdict above
	// comes from the delta and not from the adds.
	tr2, css2 := skipPairTrace()
	tr2.Events[4].Delta = nil
	if !reversedReplayEqual(tr2, css2[0], css2[1]) {
		t.Fatal("commutative adds without a delta judged order-sensitive")
	}
}

// TestPairKeyMatchesRegionPairKey pins the scratch-built memo key to the
// allocating reference over every same-lock cross-thread pair of the
// example workloads: verdict tables built by either form must
// interoperate byte-for-byte.
func TestPairKeyMatchesRegionPairKey(t *testing.T) {
	for _, app := range []string{"openldap", "mysql", "pbzip2", "transmissionBT"} {
		a := workload.MustGet(app)
		p := a.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7})
		res := sim.Run(p, sim.Config{Seed: 7})
		css := res.Trace.ExtractCS()

		id := &identifier{tr: res.Trace}
		checked := 0
		for _, g := range SortedLockGroups(css) {
			for i, c1 := range g {
				for _, c2 := range g[i+1:] {
					if c1.Thread == c2.Thread {
						continue
					}
					checked++
					if got, want := id.pairKey(c1, c2), regionPairKey(c1, c2); got != want {
						t.Fatalf("%s: pairKey %q != regionPairKey %q", app, got, want)
					}
				}
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no pairs checked", app)
		}
	}
}

// TestPrefixSweeperIncremental checks the sweeper against the naive
// prefix at every event index, forward then after a regression.
func TestPrefixSweeperIncremental(t *testing.T) {
	tr, _ := skipPairTrace()
	s := newPrefixSweeper(tr)
	for i := int32(0); i <= int32(len(tr.Events)); i++ {
		got := s.stateAt(i)
		want := refPrefixState(tr, i)
		if len(got) != len(want) {
			t.Fatalf("stateAt(%d): %v, want %v", i, got, want)
		}
		for a, v := range want {
			if got[a] != v {
				t.Fatalf("stateAt(%d)[%v] = %d, want %d", i, a, got[a], v)
			}
		}
	}
	if s.rebuilds != 1 {
		t.Fatalf("forward sweep rebuilt %d times, want 1", s.rebuilds)
	}
	got := s.stateAt(3) // regression: must rebuild and still be right
	want := refPrefixState(tr, 3)
	for a, v := range want {
		if got[a] != v {
			t.Fatalf("post-regression stateAt(3)[%v] = %d, want %d", a, got[a], v)
		}
	}
	if s.rebuilds != 2 {
		t.Fatalf("regression rebuilt %d times total, want 2", s.rebuilds)
	}
}

// BenchmarkReversedReplayPairs isolates the reversed-replay hot path
// the identification benchmark is built on: every conflicting pair of a
// recorded mysql trace replayed in both orders through the batched
// sweep + copy-on-write overlay. One op = one full pass over all pairs
// with a fresh identifier, so the sweep's incremental advance (not the
// memo cache) is what's measured.
func BenchmarkReversedReplayPairs(b *testing.B) {
	a := workload.MustGet("mysql")
	p := a.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7})
	res := sim.Run(p, sim.Config{Seed: 7})
	tr, css := res.Trace, res.Trace.ExtractCS()
	tr.Warm()
	groups := SortedLockGroups(css)

	b.ReportAllocs()
	b.ResetTimer()
	var pairs int
	for i := 0; i < b.N; i++ {
		id := &identifier{tr: tr}
		pairs = 0
		for _, g := range groups {
			for j, c1 := range g {
				for _, c2 := range g[j+1:] {
					if c1.Thread == c2.Thread || Classify(c1, c2) != TLCP {
						continue
					}
					id.reversedReplayEqual(c1, c2)
					pairs++
				}
			}
		}
	}
	b.ReportMetric(float64(pairs), "pairs")
}
