// Package verify implements the Theorem 1 check: a transformed ULCP-free
// trace "is performed with a guarantee of either the program correctness
// or reporting the data races". The verifier replays original and
// transformed traces, compares their observable outcomes (final memory
// and every value observed by every read), and, on divergence, runs the
// happens-before detector to surface the interleaving-sensitive races
// responsible.
package verify

import (
	"fmt"
	"strings"

	"perfplay/internal/race"
	"perfplay/internal/replay"
	"perfplay/internal/trace"
)

// Verdict classifies the outcome of a Theorem 1 check.
type Verdict int

const (
	// SemanticsPreserved: the transformed trace produced the same result
	// as the original — the common case the theorem's first branch covers.
	SemanticsPreserved Verdict = iota
	// RacesReported: the result diverged and the detector found the
	// responsible data races — the theorem's second branch: the
	// divergence is itself a diagnosis ("it further enables PerfPlay to
	// help developers understand the correctness of the original trace").
	RacesReported
	// Violated: the result diverged and no race explains it. This
	// indicates a transformation bug and fails the check.
	Violated
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case SemanticsPreserved:
		return "semantics-preserved"
	case RacesReported:
		return "races-reported"
	case Violated:
		return "violated"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Report is the full outcome of one verification.
type Report struct {
	Verdict Verdict
	// SameFinalState and SameReads break down the outcome comparison.
	SameFinalState, SameReads bool
	// Races holds the detector findings when the outcome diverged.
	Races []race.Race
	// Speedup is the transformed/original makespan ratio (< 1 is faster).
	Speedup float64
}

// Ok reports whether Theorem 1 holds (either branch).
func (r *Report) Ok() bool { return r.Verdict != Violated }

// String renders a short report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "theorem-1 check: %s (speedup %.3fx)", r.Verdict, r.Speedup)
	if len(r.Races) > 0 {
		fmt.Fprintf(&b, "; %d race(s):", len(r.Races))
		for _, rc := range r.Races {
			fmt.Fprintf(&b, "\n  %s", rc)
		}
	}
	return b.String()
}

// Check replays both traces under ELSC and applies Theorem 1. maxRaces
// caps detector output (0 = 16).
func Check(orig, transformed *trace.Trace, maxRaces int) (*Report, error) {
	if maxRaces == 0 {
		maxRaces = 16
	}
	o, err := replay.Run(orig, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		return nil, fmt.Errorf("verify: original replay: %w", err)
	}
	t, err := replay.Run(transformed, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		return nil, fmt.Errorf("verify: transformed replay: %w", err)
	}
	rep := &Report{
		SameFinalState: t.FinalMem.Equal(o.FinalMem),
		SameReads:      t.ReadHash == o.ReadHash,
	}
	if o.Total > 0 {
		rep.Speedup = float64(t.Total) / float64(o.Total)
	}
	if rep.SameFinalState && rep.SameReads {
		rep.Verdict = SemanticsPreserved
		return rep, nil
	}
	order := race.OrderByStart(t.EventStart)
	rep.Races = race.Detect(transformed, order, maxRaces)
	if len(rep.Races) > 0 {
		rep.Verdict = RacesReported
	} else {
		rep.Verdict = Violated
	}
	return rep, nil
}
