package verify

import (
	"strings"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/transform"
	"perfplay/internal/ulcp"
	"perfplay/internal/vtime"
)

func transformOf(t *testing.T, build func(p *sim.Program)) (*trace.Trace, *trace.Trace) {
	t.Helper()
	p := sim.NewProgram("v")
	build(p)
	rec := sim.Run(p, sim.Config{Seed: 6})
	css := rec.Trace.ExtractCS()
	rep := ulcp.Identify(rec.Trace, css, ulcp.Options{})
	res, err := transform.Apply(rec.Trace, css, rep)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace, res.Trace
}

func TestTheorem1PreservedOnCleanWorkload(t *testing.T) {
	orig, tf := transformOf(t, func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 3)
		s := p.Site("v.c", 1, "r")
		for i := 0; i < 3; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 6; j++ {
					th.Lock(l, s)
					th.Read(x, s)
					th.Compute(400)
					th.Unlock(l, s)
					th.Compute(vtime.Duration(100 + 40*int(th.ID())))
				}
			})
		}
	})
	rep, err := Check(orig, tf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != SemanticsPreserved {
		t.Fatalf("verdict = %v, want semantics-preserved\n%s", rep.Verdict, rep)
	}
	if !rep.Ok() {
		t.Fatal("Ok() false on a preserved transform")
	}
	if rep.Speedup >= 1.0 {
		t.Fatalf("speedup = %v, want < 1 (read-only parallelization)", rep.Speedup)
	}
}

func TestTheorem1PreservedOnTrueContention(t *testing.T) {
	orig, tf := transformOf(t, func(p *sim.Program) {
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("v.c", 1, "w")
		for i := 0; i < 2; i++ {
			i := i
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 5; j++ {
					th.Compute(vtime.Duration(150 * (i + 1)))
					th.Lock(l, s)
					th.Read(x, s)
					th.Write(x, int64(i*100+j), s)
					th.Unlock(l, s)
				}
			})
		}
	})
	rep, err := Check(orig, tf, 0)
	if err != nil {
		t.Fatal(err)
	}
	// RULE 2 keeps the conflicting order: semantics preserved.
	if rep.Verdict != SemanticsPreserved {
		t.Fatalf("verdict = %v, want semantics-preserved\n%s", rep.Verdict, rep)
	}
}

func TestTheorem1ReportsRacesOnDivergence(t *testing.T) {
	// Hand-build a divergent "transform": drop the lock from two
	// order-sensitive critical sections without any constraint, so the
	// replays can interleave them differently and the outcome changes.
	orig := trace.New("bad", 2)
	l := trace.LockID(1)
	s := orig.Sites.Intern(trace.Site{File: "bad.c", Line: 5})
	orig.Append(trace.Event{Thread: 0, Kind: trace.KCompute, Cost: 50, Time: 50})
	orig.Append(trace.Event{Thread: 0, Kind: trace.KLockAcq, Lock: l, Cost: 10, Time: 60, Site: s})
	orig.Append(trace.Event{Thread: 0, Kind: trace.KRead, Addr: 1, Cost: 10, Time: 70, Site: s})
	orig.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 1, Value: 11, Cost: 10, Time: 80, Site: s})
	orig.Append(trace.Event{Thread: 0, Kind: trace.KLockRel, Lock: l, Cost: 10, Time: 90, Site: s})
	orig.Append(trace.Event{Thread: 1, Kind: trace.KCompute, Cost: 500, Time: 500})
	orig.Append(trace.Event{Thread: 1, Kind: trace.KLockAcq, Lock: l, Cost: 10, Time: 510, Site: s})
	orig.Append(trace.Event{Thread: 1, Kind: trace.KRead, Addr: 1, Cost: 10, Time: 520, Site: s})
	orig.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 1, Value: 22, Cost: 10, Time: 530, Site: s})
	orig.Append(trace.Event{Thread: 1, Kind: trace.KLockRel, Lock: l, Cost: 10, Time: 540, Site: s})
	orig.TotalTime = 540

	bad := trace.New("bad-transformed", 2)
	bad.Sites = orig.Sites
	bad.Events = make([]trace.Event, len(orig.Events))
	copy(bad.Events, orig.Events)
	for i := range bad.Events {
		switch bad.Events[i].Kind {
		case trace.KLockAcq, trace.KLockRel:
			bad.Events[i].Kind = trace.KCompute
			bad.Events[i].Lock = trace.NoLock
			bad.Events[i].Cost = 0
		}
	}
	// Shrink T1's leading compute so the unsynchronized sections now
	// overlap and the read observes a different value.
	bad.Events[5].Cost = 10

	rep, err := Check(orig, bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != RacesReported {
		t.Fatalf("verdict = %v, want races-reported\n%s", rep.Verdict, rep)
	}
	if len(rep.Races) == 0 {
		t.Fatal("no races attached")
	}
	if !rep.Ok() {
		t.Fatal("races-reported still satisfies Theorem 1")
	}
	if !strings.Contains(rep.String(), "race") {
		t.Fatalf("report rendering: %s", rep)
	}
}

func TestVerifyPipelineEndToEnd(t *testing.T) {
	// Every transformed app trace must satisfy Theorem 1.
	orig, tf := transformOf(t, func(p *sim.Program) {
		l1, l2 := p.NewLock("L1"), p.NewLock("L2")
		x := p.Mem.Alloc("x", 0)
		y := p.Mem.Alloc("y", 9)
		s := p.Site("v.c", 1, "m")
		for i := 0; i < 3; i++ {
			p.AddThread(func(th *sim.Thread) {
				for j := 0; j < 5; j++ {
					th.Lock(l1, s)
					th.Add(x, 1, s)
					th.Unlock(l1, s)
					th.Lock(l2, s)
					th.Read(y, s)
					th.Compute(300)
					th.Unlock(l2, s)
					th.Compute(vtime.Duration(80 + 30*j))
				}
			})
		}
	})
	rep, err := Check(orig, tf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("Theorem 1 violated:\n%s", rep)
	}
}
