package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row padded
	tb.AddNote("scaled by %.1f", 0.5)
	out := tb.String()
	for _, want := range []string{"T\n", "name", "alpha", "note: scaled by 0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows + note
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want 6:\n%s", len(lines), out)
	}
	// Columns align: header and first row start the second column at the
	// same offset.
	h, r := lines[1], lines[3]
	if strings.Index(h, "value") != strings.Index(r, "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRowf("", 12, 3.5)
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "12" || tb.Rows[0][1] != "3.5" {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("F", "speed")
	s := f.Add("series-a")
	s.AddPoint("2", 1.5, 0.1)
	s.AddPoint("4", 2.5, 0.2)
	f.Add("series-b").AddPoint("2", 3, 0)
	f.AddNote("hello")
	out := f.String()
	for _, want := range []string{"F", "speed", "series-a", "series-b", "1.5", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}
