// Package report renders the experiment harness's tables and series as
// aligned ASCII, in the shape of the paper's tables and figure data.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are appended under the table (scaling factors, caveats).
	Notes []string
}

// NewTable creates an empty table.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	_ = format
	t.AddRow(parts...)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is one line of a figure: a label and (x, y) points.
type Series struct {
	Label  string
	Points []Point
}

// Point is one figure datum; Err is the error-bar half-width (σ).
type Point struct {
	X   string
	Y   float64
	Err float64
}

// Figure is a titled set of series — the textual equivalent of one paper
// figure.
type Figure struct {
	Title  string
	YLabel string
	Series []*Series
	Notes  []string
}

// NewFigure creates an empty figure.
func NewFigure(title, ylabel string) *Figure {
	return &Figure{Title: title, YLabel: ylabel}
}

// Add appends a series and returns it for point insertion.
func (f *Figure) Add(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// AddPoint appends a point to the series.
func (s *Series) AddPoint(x string, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}

// AddNote appends a footnote.
func (f *Figure) AddNote(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// String renders the figure as a table of series rows.
func (f *Figure) String() string {
	t := NewTable(fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel), "series", "x", "y", "±σ")
	for _, s := range f.Series {
		for _, p := range s.Points {
			t.AddRow(s.Label, p.X, fmt.Sprintf("%.4g", p.Y), fmt.Sprintf("%.3g", p.Err))
		}
	}
	t.Notes = f.Notes
	return t.String()
}
