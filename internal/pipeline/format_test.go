package pipeline

import (
	"bytes"
	"io"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// TestReportIdenticalAcrossTraceFormats runs the full analysis over the
// same recording loaded from all three on-disk encodings. The report —
// the repo's determinism currency — must be byte-identical regardless
// of which format carried the trace, serial and parallel alike; a
// columnar load that adopted a wrong side index or dropped a sidecar
// field would surface here as report drift.
func TestReportIdenticalAcrossTraceFormats(t *testing.T) {
	app := workload.MustGet("mysql")
	rec := sim.Run(app.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7}), sim.Config{Seed: 7})

	encoders := map[string]func(*trace.Trace, io.Writer) error{
		"binary":   (*trace.Trace).WriteBinary,
		"columnar": (*trace.Trace).WriteColumnar,
		"json":     (*trace.Trace).WriteJSON,
	}

	var want string
	for _, workers := range []int{1, 4} {
		for name, write := range encoders {
			var buf bytes.Buffer
			if err := write(rec.Trace, &buf); err != nil {
				t.Fatalf("%s: write: %v", name, err)
			}
			tr, err := trace.ReadAny(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: load: %v", name, err)
			}
			res, err := Run(Request{Trace: tr.Warm(), TopK: 5, Workers: workers, Schemes: true})
			if err != nil {
				t.Fatalf("%s: pipeline: %v", name, err)
			}
			if want == "" {
				want = res.Report
			}
			if res.Report != want {
				t.Fatalf("%s (workers=%d): report differs across trace formats:\nwant:\n%s\ngot:\n%s",
					name, workers, want, res.Report)
			}
		}
	}
}
