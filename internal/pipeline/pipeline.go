// Package pipeline is the concurrent analysis orchestrator: it runs the
// PerfPlay stages — Record → Replay → Classify → Quantify → Report — as
// one staged job with a typed Request/Result API, sharding the
// embarrassingly parallel work (the four replay schemes, per-lock ULCP
// pair enumeration with its per-pair reversed replays, and the
// original/ULCP-free quantification replays) across a worker pool.
//
// Determinism is a hard contract: results are merged by task index in a
// fixed order (schemes in scheduler order, classification shards in
// sorted lock order), so a run with Workers: 8 produces byte-identical
// reports to the serial path for the same seed. A Pipeline value adds an
// LRU result cache keyed by (workload, input, threads, seed, config) on
// top; cmd/perfplay, cmd/experiments, the examples, the bench harness
// and the perfplayd daemon all drive their analyses through this
// package instead of hand-rolling the stage glue.
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"perfplay/internal/core"
	"perfplay/internal/perfdbg"
	"perfplay/internal/race"
	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/telemetry"
	"perfplay/internal/trace"
	"perfplay/internal/transform"
	"perfplay/internal/ulcp"
	"perfplay/internal/verify"
	"perfplay/internal/vtime"
	"perfplay/internal/workload"
)

// Request describes one analysis job. Exactly one input source applies:
// a registered workload name (App), a pre-built simulator program
// (Program), or a pre-recorded trace (Trace) — the latter two skip the
// workload registry and, for Trace, the Record stage entirely.
type Request struct {
	// App names a registered workload (see internal/workload).
	App string
	// Program, when set, overrides App with a pre-built program
	// (appendix cases, hand-written sim programs).
	Program *sim.Program
	// Trace, when set, is analyzed directly — the Record stage is
	// skipped (uploaded or on-disk traces).
	Trace *trace.Trace
	// TraceDigest, when set alongside Trace, is the trace's content
	// address (the corpus "sha256:..." digest of its serialized bytes).
	// It re-enables the result cache for trace requests: two jobs over
	// the same stored trace share one cache entry even though they
	// parsed separate *trace.Trace values. Callers must only pass a
	// digest that really identifies Trace's content.
	TraceDigest string
	// TraceBytes is the serialized size of Trace (upload body or corpus
	// blob). It is excluded from the cache key and used only to weigh
	// trace-backed results against the cache's byte budget; zero means
	// "unknown" and weighs nothing.
	TraceBytes int64
	// TraceLoader, set with TraceDigest instead of Trace, defers
	// loading to the moment the pipeline actually needs the events: a
	// digest-keyed cache hit returns without ever invoking it, so
	// re-analyzing an already-analyzed stored trace costs no blob read
	// and no parse. Ignored when Trace is set.
	TraceLoader func() (*trace.Trace, error)

	// Threads, Input, Scale and Seed parameterize the recording;
	// zero values select 2 threads, simlarge and scale 1.0.
	Threads int
	Input   workload.InputSize
	Scale   float64
	Seed    int64

	// TopK bounds the ranked recommendations in the rendered report
	// (0 = 5).
	TopK int
	// Workers is the pool width for the parallel stages; 0 or 1 runs
	// the serial path. Output bytes do not depend on it.
	Workers int
	// Distributor, when set, fans the classification shards out across
	// its peer nodes (one range stays local; failed peer ranges re-run
	// locally). Like Workers it is excluded from the cache key: the
	// determinism contract makes distributed output byte-identical to
	// the local path.
	Distributor *Distributor
	// Schemes additionally replays the recorded trace under all four
	// schedulers (ORIG/ELSC/SYNC/MEM), in parallel.
	Schemes bool

	// DetectRaces, MaxRaces, DLS, LocksetCost, VerifyTheorem1 and
	// Identify mirror core.Config. Classification builds one shared
	// verdict table per trace (ulcp.BuildVerdictTable) and runs shards
	// against it, so Identify.MaxReversedReplays budgets reversed
	// replays per trace — Identify's semantics — and recurring region
	// pairs are replayed once instead of once per contended lock.
	DetectRaces    bool
	MaxRaces       int
	DLS            bool
	LocksetCost    vtime.Duration
	VerifyTheorem1 bool
	Identify       ulcp.Options

	// TraceID and SpanID carry the job's distributed-tracing context so
	// a Distributor can propagate it to peer nodes. Both are excluded
	// from CacheKey — tracing identifies a run, never its output.
	TraceID string
	SpanID  string
}

// normalize applies defaults so equivalent requests share a cache key.
func (r Request) normalize() Request {
	if r.Threads == 0 {
		r.Threads = 2
	}
	if r.Scale == 0 {
		r.Scale = 1.0
	}
	// Clamp (not just default) TopK: negative depths would panic the
	// recommendation slice locally while the cluster-cache wire path
	// maps them to 5 — the same job must behave identically wherever
	// and however it is served.
	if r.TopK <= 0 {
		r.TopK = 5
	}
	if r.Workers < 1 {
		r.Workers = 1
	}
	return r
}

// cacheable reports whether the request is a pure function of its cache
// key. Workload requests are keyed by name; trace requests are keyed by
// content digest when the caller supplies one. Programs and digest-less
// traces are identified by pointer only and therefore bypass the cache.
func (r Request) cacheable() bool {
	if r.Program != nil {
		return false
	}
	if r.Trace != nil || r.TraceLoader != nil {
		return r.TraceDigest != ""
	}
	return r.App != ""
}

// CacheKey canonically encodes every field that affects the computed
// artifacts. Two fields are deliberately excluded: Workers (the
// determinism contract makes the output identical at any pool width)
// and TopK (it only affects report rendering, which a cache hit redoes
// at the requested depth). For digest-keyed trace requests the
// record-stage fields (Input, Threads, Scale, Seed) are inert — the
// Record stage is skipped — but they stay in the key, so callers should
// leave them zero to share entries.
func (r Request) CacheKey() string {
	src := r.App
	if r.TraceDigest != "" {
		src = r.TraceDigest
	}
	return fmt.Sprintf("%s|in%d|t%d|s%g|seed%d|sch%t|races%t|mr%d|dls%t|lc%d|v%t|id{%d,%t,%d}",
		src, r.Input, r.Threads, r.Scale, r.Seed, r.Schemes,
		r.DetectRaces, r.MaxRaces, r.DLS, r.LocksetCost, r.VerifyTheorem1,
		r.Identify.MaxScanPerThread, r.Identify.DisableReversedReplay, r.Identify.MaxReversedReplays)
}

// SchemeReplay is one scheduler's replay of the recorded trace.
type SchemeReplay struct {
	Sched  replay.Scheduler
	Result *replay.Result
}

// StageTiming records one stage's wall-clock time (observability only —
// not part of the deterministic report). It is JSON-tagged because wire
// results carry the exporting run's timings across nodes. Start lets
// the daemon rebuild per-stage spans on a job's trace timeline; it is
// zero on wire results imported from peers that predate the field.
type StageTiming struct {
	Stage string        `json:"stage"`
	Wall  time.Duration `json:"wall"`
	Start time.Time     `json:"start,omitempty"`
}

// Result bundles a finished job: the full analysis artifacts, the
// optional scheme replays, and the rendered ranked report whose bytes
// are identical for serial and parallel runs of the same request.
// Results are read-only: a cache hit returns a copy of the struct that
// still shares the Analysis artifacts and slices with every other
// holder of the same key, so mutating them would poison the cache.
type Result struct {
	Request  Request
	Analysis *core.Analysis
	Schemes  []SchemeReplay
	Report   string
	Timings  []StageTiming
	CacheHit bool

	// traceTotal is the analyzed trace's own recorded wall time,
	// captured at run time so cache hits can re-render the report
	// without holding (or re-loading) the trace itself.
	traceTotal vtime.Duration
}

// Pipeline is a long-lived orchestrator with a result cache. The zero
// value is not usable; construct with New.
type Pipeline struct {
	cache  *lruCache[*Result]
	tables *tableCache

	// digests memoizes each stored trace's canonical binary digest (the
	// one the cluster shard protocol references), keyed by the corpus
	// digest the request arrived with — which may address a different
	// (JSON) encoding of the same events. With it, steady-state
	// distributed jobs skip re-serializing and re-hashing the trace
	// just to name it to peers. Bounded by brute force: the entries are
	// ~150 bytes, so past digestMemoMax the map is simply reset.
	mu      sync.Mutex
	digests map[string]string

	// Cache traffic and stage timings live in telemetry instruments so
	// /metrics and /healthz read the same numbers (see CacheStats).
	resultHits, resultMisses *telemetry.Counter
	tableHits, tableMisses   *telemetry.Counter
	stageDur                 *telemetry.HistogramVec
}

// CacheStats is a snapshot of the pipeline's cache-hit accounting.
// Only cacheable (digest- or workload-keyed) requests count; the table
// counters tick once per table lookup during a cache-missed execution.
type CacheStats struct {
	ResultHits   int64 `json:"result_hits"`
	ResultMisses int64 `json:"result_misses"`
	TableHits    int64 `json:"table_hits"`
	TableMisses  int64 `json:"table_misses"`
}

// Stats returns the pipeline's lifetime cache counters — read from the
// same telemetry series /metrics renders, so the two can never drift.
func (p *Pipeline) Stats() CacheStats {
	return CacheStats{
		ResultHits:   p.resultHits.Int(),
		ResultMisses: p.resultMisses.Int(),
		TableHits:    p.tableHits.Int(),
		TableMisses:  p.tableMisses.Int(),
	}
}

// digestMemoMax bounds the canonical-digest memo before it is reset.
const digestMemoMax = 4096

// Options configures a Pipeline.
type Options struct {
	// CacheSize bounds the LRU result cache (0 disables caching).
	CacheSize int
	// CacheTraceBytes additionally bounds the summed Request.TraceBytes
	// of cached trace-backed results, since those retain their parsed
	// traces; the coldest are evicted beyond it (0 = 256 MiB, negative
	// disables the byte bound).
	CacheTraceBytes int64
	// TableCacheSize bounds the digest-keyed verdict-table cache, which
	// lets jobs over the same stored trace skip every reversed replay
	// even when their reporting flags miss the result cache (0 = 64,
	// negative disables it).
	TableCacheSize int
	// Metrics, when set, hosts the pipeline's instruments (stage
	// duration histograms, cache hit/miss counters). Nil uses a private
	// registry so the instruments always exist — Stats() reads them
	// either way — they just aren't exported anywhere.
	Metrics *telemetry.Registry
}

// New constructs a Pipeline.
func New(opts Options) *Pipeline {
	if opts.CacheTraceBytes == 0 {
		opts.CacheTraceBytes = 256 << 20
	}
	if opts.TableCacheSize == 0 {
		opts.TableCacheSize = 64
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	cacheReqs := reg.NewCounterVec("perfplay_pipeline_cache_requests_total",
		"Result/table cache lookups by outcome.", "cache", "outcome")
	return &Pipeline{
		cache:        newLRU[*Result](opts.CacheSize, opts.CacheTraceBytes),
		tables:       newLRU[*ulcp.VerdictTable](opts.TableCacheSize, 0),
		digests:      make(map[string]string),
		resultHits:   cacheReqs.With("result", "hit"),
		resultMisses: cacheReqs.With("result", "miss"),
		tableHits:    cacheReqs.With("table", "hit"),
		tableMisses:  cacheReqs.With("table", "miss"),
		stageDur: reg.NewHistogramVec("perfplay_pipeline_stage_duration_seconds",
			"Wall time of each pipeline stage.", telemetry.DurationBuckets, "stage"),
	}
}

// canonicalDigest returns the memoized canonical binary digest for a
// corpus digest, if known.
func (p *Pipeline) canonicalDigest(corpusDigest string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.digests[corpusDigest]
	return d, ok
}

func (p *Pipeline) rememberDigest(corpusDigest, canonical string) {
	if corpusDigest == "" || canonical == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.digests) >= digestMemoMax {
		p.digests = make(map[string]string)
	}
	p.digests[corpusDigest] = canonical
}

// CacheLen reports how many results the cache currently holds.
func (p *Pipeline) CacheLen() int { return p.cache.len() }

// TableCacheLen reports how many verdict tables are cached.
func (p *Pipeline) TableCacheLen() int { return p.tables.len() }

// Run executes the staged pipeline for one request, consulting the
// cache first for cacheable requests.
func (p *Pipeline) Run(req Request) (*Result, error) {
	req = req.normalize()
	var key string
	if p.cache != nil && req.cacheable() {
		key = req.CacheKey()
		if cached, ok := p.cache.get(key); ok {
			p.resultHits.Add(1)
			hit := *cached
			hit.Request = req
			// TopK is outside the key — it only shapes the rendered
			// report, so a hit re-renders at the requested depth.
			hit.Report = render(&hit)
			hit.CacheHit = true
			return &hit, nil
		}
		p.resultMisses.Add(1)
	}
	res, err := p.exec(req)
	if err != nil {
		return nil, err
	}
	if key != "" {
		var cost int64
		if req.Trace != nil || req.TraceLoader != nil {
			cost = req.TraceBytes
		}
		p.cache.put(key, res, cost)
	}
	return res, nil
}

// RunSeeds runs the same request across several seeds — the multi-trace
// mode of Sec. 6.7 — spreading whole jobs over the pool (each job runs
// its own stages serially) and returning results in seed order.
func (p *Pipeline) RunSeeds(req Request, seeds []int64) ([]*Result, error) {
	req = req.normalize()
	pool := NewPool(req.Workers)
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	pool.Each(len(seeds), func(i int) {
		r := req
		r.Seed = seeds[i]
		r.Workers = 1
		results[i], errs[i] = p.Run(r)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Run executes one request without a cache; the convenience entry point
// for one-shot callers (CLI, benchmarks).
func Run(req Request) (*Result, error) {
	return New(Options{}).Run(req)
}

// tableKey derives the verdict-table cache key: the fields that define
// the analyzed trace's content (digest, or the record-stage tuple for
// workload requests) plus the identify options — and nothing else, so
// jobs differing only in reporting flags share one table.
func tableKey(req Request) string {
	src := req.App
	if req.TraceDigest != "" {
		src = req.TraceDigest
	} else if src == "" {
		return "" // pointer-identified program or digest-less trace
	}
	return fmt.Sprintf("%s|in%d|t%d|s%g|seed%d|id{%d,%t,%d}",
		src, req.Input, req.Threads, req.Scale, req.Seed,
		req.Identify.MaxScanPerThread, req.Identify.DisableReversedReplay, req.Identify.MaxReversedReplays)
}

// exec is the staged orchestrator.
func (p *Pipeline) exec(req Request) (*Result, error) {
	pool := NewPool(req.Workers)
	res := &Result{Request: req}
	a := &core.Analysis{}
	res.Analysis = a

	stage := func(name string, f func() error) error {
		start := time.Now()
		err := f()
		wall := time.Since(start)
		res.Timings = append(res.Timings, StageTiming{Stage: name, Wall: wall, Start: start})
		p.stageDur.With(name).Observe(wall.Seconds())
		return err
	}

	// Stage 1 — Record: build and run the workload under the recording
	// simulator, unless the caller supplied a trace. The trace is warmed
	// here because the later stages replay it from several goroutines.
	tr := req.Trace
	if err := stage("record", func() error {
		if tr == nil && req.TraceLoader != nil {
			var err error
			if tr, err = req.TraceLoader(); err != nil {
				return fmt.Errorf("pipeline: load trace: %w", err)
			}
		}
		if tr == nil {
			prog := req.Program
			if prog == nil {
				app, ok := workload.Get(req.App)
				if !ok {
					return fmt.Errorf("pipeline: unknown workload %q", req.App)
				}
				prog = app.Build(workload.Config{
					Threads: req.Threads, Input: req.Input, Scale: req.Scale, Seed: req.Seed,
				})
			}
			a.Recorded = sim.Run(prog, sim.Config{Seed: req.Seed})
			tr = a.Recorded.Trace
		}
		if err := tr.Validate(); err != nil {
			return err
		}
		// Validate's loops are vacuous on an event-free trace, which is
		// what a stray JSON object decodes to — reject it here so every
		// front end reports an error instead of an all-zero analysis.
		if len(tr.Events) == 0 || tr.NumThreads == 0 {
			return fmt.Errorf("pipeline: empty trace (%d events, %d threads)",
				len(tr.Events), tr.NumThreads)
		}
		tr.Warm()
		return nil
	}); err != nil {
		return nil, err
	}
	a.App = tr.App
	res.traceTotal = tr.TotalTime

	// Stage 2 — Replay: the independent scheduler replays of the
	// recorded trace. The ELSC run doubles as the quantification
	// baseline (core's OrigReplay), so it always runs; the other three
	// schemes join the fan-out when requested.
	if err := stage("replay", func() error {
		scheds := []replay.Scheduler{replay.ELSCS}
		if req.Schemes {
			scheds = []replay.Scheduler{replay.OrigS, replay.ELSCS, replay.SyncS, replay.MemS}
		}
		results := make([]*replay.Result, len(scheds))
		errs := make([]error, len(scheds))
		pool.Each(len(scheds), func(i int) {
			results[i], errs[i] = replay.Run(tr, replay.Options{Sched: scheds[i]})
		})
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("pipeline: %v replay: %w", scheds[i], err)
			}
		}
		for i, s := range scheds {
			if s == replay.ELSCS {
				a.OrigReplay = results[i]
			}
			if req.Schemes {
				res.Schemes = append(res.Schemes, SchemeReplay{Sched: s, Result: results[i]})
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Stage 3 — Classify: extract critical sections, obtain the shared
	// reversed-replay verdict table (cached by trace digest, or built by
	// one identification pass), run the per-lock shards against it —
	// locally on the pool, or fanned out across peer nodes when a
	// Distributor is configured — merge shard reports in sorted lock
	// order, and build the ULCP-free trace. Every path below produces
	// the same report bytes: shards with the table are pure functions of
	// (trace, group, options, table), and the table itself is a pure
	// function of (trace, options).
	if err := stage("classify", func() error {
		a.CSs = tr.ExtractCS()
		var table *ulcp.VerdictTable
		var buildRep *ulcp.Report
		key := tableKey(req)
		if cached, ok := p.tables.get(key); key != "" && ok {
			p.tableHits.Add(1)
			table = cached
		} else {
			if key != "" {
				p.tableMisses.Add(1)
			}
			// One full identification pass yields both the table and the
			// finished report; the replays it spends are the per-trace
			// total (recurring region pairs pay once, not once per lock).
			table, buildRep = ulcp.BuildVerdictTable(tr, a.CSs, req.Identify)
			if key != "" {
				p.tables.put(key, table, 0)
			}
		}
		switch {
		case buildRep != nil:
			// Fresh table: the build pass's report already is the
			// complete classification — using it beats both a second
			// local walk and a fan-out that could only reproduce it.
			// Consequently a cluster distributes nothing for the first
			// analysis of a trace (the table build is inherently one
			// local pass); peers engage from the second job on, when
			// the cached table makes shards replay-free.
			a.Report = buildRep
		case req.Distributor != nil && len(req.Distributor.Peers) > 0:
			// Cached table + cluster: ship the table with each shard
			// range and merge in group order.
			groups := ulcp.SortedLockGroups(a.CSs)
			job := NewShardJob(tr, groups, req.Identify, table)
			job.TraceID, job.SpanID = req.TraceID, req.SpanID
			if req.TraceDigest != "" {
				if d, ok := p.canonicalDigest(req.TraceDigest); ok {
					job.PresetDigest(d)
				}
			}
			a.Report = req.Distributor.Run(job, pool)
			if req.TraceDigest != "" {
				p.rememberDigest(req.TraceDigest, job.CanonicalDigest())
			}
			a.Report.ReversedReplays += table.Replays
		default:
			// Cached table, single node: shards re-derive the report in
			// parallel without a single reversed replay.
			groups := ulcp.SortedLockGroups(a.CSs)
			shards := make([]*ulcp.Report, len(groups))
			pool.Each(len(groups), func(i int) {
				shards[i] = ulcp.IdentifyShardWithVerdicts(tr, groups[i], req.Identify, table)
			})
			a.Report = ulcp.MergeReports(shards...)
			a.Report.ReversedReplays += table.Replays
		}
		var err error
		a.Transformed, err = transform.Apply(tr, a.CSs, a.Report)
		if err != nil {
			return err
		}
		// The quantify stage replays this trace concurrently with the
		// Theorem 1 check.
		a.Transformed.Trace.Warm()
		return nil
	}); err != nil {
		return nil, err
	}

	// Stage 4 — Quantify: replay the ULCP-free trace under ELSC (in
	// parallel with the Theorem 1 check when requested), then evaluate
	// Eq. 1/Eq. 2 and optionally the happens-before detector.
	if err := stage("quantify", func() error {
		maxRaces := req.MaxRaces
		if maxRaces == 0 {
			maxRaces = 32
		}
		tasks := []func() error{
			func() error {
				var err error
				a.FreeReplay, err = replay.Run(a.Transformed.Trace, replay.Options{
					Sched:       replay.ELSCS,
					DLS:         req.DLS,
					LocksetCost: req.LocksetCost,
				})
				if err != nil {
					return fmt.Errorf("pipeline: ULCP-free replay: %w", err)
				}
				return nil
			},
		}
		if req.VerifyTheorem1 {
			tasks = append(tasks, func() error {
				var err error
				a.Theorem1, err = verify.Check(tr, a.Transformed.Trace, req.MaxRaces)
				if err != nil {
					return fmt.Errorf("pipeline: theorem 1 check: %w", err)
				}
				return nil
			})
		}
		errs := make([]error, len(tasks))
		pool.Each(len(tasks), func(i int) { errs[i] = tasks[i]() })
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		a.Debug = perfdbg.Evaluate(tr, a.CSs, a.Report, a.OrigReplay, a.FreeReplay, tr.NumThreads)
		if req.DetectRaces {
			order := race.OrderByStart(a.FreeReplay.EventStart)
			a.Races = race.Detect(a.Transformed.Trace, order, maxRaces)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Stage 5 — Report: render the ranked report. Everything in it is a
	// deterministic function of the merged artifacts.
	_ = stage("report", func() error {
		res.Report = render(res)
		return nil
	})
	return res, nil
}

// render produces the job's human-readable ranked report.
func render(res *Result) string {
	a := res.Analysis
	s := a.Summary(res.Request.TopK)
	if a.Theorem1 != nil {
		s += " " + a.Theorem1.String() + "\n"
	}
	if len(res.Schemes) > 0 {
		s += fmt.Sprintf(" scheme replays (recorded %v):", recordedTotal(res))
		for _, sr := range res.Schemes {
			s += fmt.Sprintf("  %v %v", sr.Sched, sr.Result.Total)
		}
		s += "\n"
	}
	for _, r := range a.Races {
		s += fmt.Sprintf(" race: %s\n", r)
	}
	return s
}

// recordedTotal is the recording's own wall time — for uploaded traces
// it comes from the trace header, not from a re-replay (which can
// differ whenever ELSC reorders contended acquisitions).
func recordedTotal(res *Result) vtime.Duration {
	if a := res.Analysis; a.Recorded != nil {
		return a.Recorded.Trace.TotalTime
	}
	if res.traceTotal != 0 {
		return res.traceTotal
	}
	if res.Request.Trace != nil {
		return res.Request.Trace.TotalTime
	}
	return res.Analysis.OrigReplay.Total
}
