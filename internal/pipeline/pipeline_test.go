package pipeline

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"perfplay/internal/corpus"
	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// TestParallelByteIdentical is the determinism contract: for the same
// request and seed, the parallel pipeline must produce byte-identical
// ranked reports to the serial path — across several seeds and
// workloads, and stably across repeated parallel runs.
func TestParallelByteIdentical(t *testing.T) {
	for _, app := range []string{"mysql", "pbzip2"} {
		for _, seed := range []int64{1, 7, 42} {
			req := Request{
				App: app, Threads: 4, Scale: 0.2, Seed: seed,
				Schemes: true, DetectRaces: true,
			}

			serialReq := req
			serialReq.Workers = 1
			serial, err := Run(serialReq)
			if err != nil {
				t.Fatalf("%s/seed %d serial: %v", app, seed, err)
			}

			parReq := req
			parReq.Workers = 8
			for round := 0; round < 2; round++ {
				par, err := Run(parReq)
				if err != nil {
					t.Fatalf("%s/seed %d workers=8: %v", app, seed, err)
				}
				if par.Report != serial.Report {
					t.Fatalf("%s/seed %d round %d: parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
						app, seed, round, serial.Report, par.Report)
				}
			}
			if serial.Report == "" || !strings.Contains(serial.Report, "PerfPlay analysis") {
				t.Fatalf("%s/seed %d: implausible report: %q", app, seed, serial.Report)
			}
		}
	}
}

// TestSchemesAndStages checks the stage plumbing: four scheme replays in
// scheduler order, all five stage timings, and a populated analysis.
func TestSchemesAndStages(t *testing.T) {
	res, err := Run(Request{App: "pbzip2", Scale: 0.2, Seed: 3, Workers: 4, Schemes: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []replay.Scheduler{replay.OrigS, replay.ELSCS, replay.SyncS, replay.MemS}
	if len(res.Schemes) != len(want) {
		t.Fatalf("got %d scheme replays, want %d", len(res.Schemes), len(want))
	}
	for i, s := range want {
		if res.Schemes[i].Sched != s || res.Schemes[i].Result == nil {
			t.Fatalf("scheme %d = %v (result %v), want %v", i, res.Schemes[i].Sched, res.Schemes[i].Result, s)
		}
	}
	stages := []string{"record", "replay", "classify", "quantify", "report"}
	if len(res.Timings) != len(stages) {
		t.Fatalf("got %d stage timings: %v", len(res.Timings), res.Timings)
	}
	for i, s := range stages {
		if res.Timings[i].Stage != s {
			t.Fatalf("stage %d = %q, want %q", i, res.Timings[i].Stage, s)
		}
	}
	a := res.Analysis
	if a.Recorded == nil || a.Report == nil || a.Transformed == nil ||
		a.OrigReplay == nil || a.FreeReplay == nil || a.Debug == nil {
		t.Fatalf("analysis artifacts missing: %+v", a)
	}
}

// TestTraceRequest analyzes a pre-recorded trace (the daemon's upload
// path): Record is skipped and the result matches an App-driven run of
// the same recording.
func TestTraceRequest(t *testing.T) {
	app := workload.MustGet("pbzip2")
	p := app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 5})
	rec := sim.Run(p, sim.Config{Seed: 5})

	fromTrace, err := Run(Request{Trace: rec.Trace, Workers: 4, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fromTrace.Analysis.Recorded != nil {
		t.Fatal("Record stage ran despite a supplied trace")
	}
	if fromTrace.Analysis.App != rec.Trace.App {
		t.Fatalf("app = %q, want %q", fromTrace.Analysis.App, rec.Trace.App)
	}
	if fromTrace.Report == "" {
		t.Fatal("empty report")
	}
}

func TestRunSeeds(t *testing.T) {
	p := New(Options{})
	seeds := []int64{1, 2, 3}
	results, err := p.RunSeeds(Request{App: "pbzip2", Scale: 0.2, Workers: 4}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(seeds) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Request.Seed != seeds[i] {
			t.Fatalf("result %d has seed %d, want %d", i, r.Request.Seed, seeds[i])
		}
	}
}

func TestCache(t *testing.T) {
	p := New(Options{CacheSize: 2})
	req := Request{App: "pbzip2", Scale: 0.2, Seed: 9}

	first, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first run reported a cache hit")
	}

	// Same request at a different worker count must hit: workers are
	// excluded from the key by the determinism contract.
	req.Workers = 8
	second, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second run missed the cache")
	}
	if second.Report != first.Report {
		t.Fatal("cached report differs")
	}

	// A different TopK also hits — it only affects rendering, which the
	// hit redoes at the requested depth.
	req.TopK = 2
	rerender, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if !rerender.CacheHit {
		t.Fatal("different TopK missed the cache")
	}
	if rerender.Report == first.Report {
		t.Fatal("report not re-rendered for the new TopK")
	}
	if rerender.Request.TopK != 2 {
		t.Fatalf("hit kept the cached TopK: %d", rerender.Request.TopK)
	}
	req.TopK = 0

	// A different seed misses.
	req.Seed = 10
	third, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("different seed hit the cache")
	}

	// LRU eviction: capacity 2, three distinct keys → oldest evicted.
	req.Seed = 11
	if _, err := p.Run(req); err != nil {
		t.Fatal(err)
	}
	if got := p.CacheLen(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	req.Seed = 9
	again, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("evicted entry still hit")
	}
}

// TestDigestKeyedTraceCache: trace requests are cacheable when the
// caller supplies the trace's content digest — two jobs over separately
// parsed copies of the same bytes share one cache entry — while
// digest-less trace requests keep bypassing the cache.
func TestDigestKeyedTraceCache(t *testing.T) {
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 5}), sim.Config{Seed: 5})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	digest := corpus.Digest(buf.Bytes())

	p := New(Options{CacheSize: 4})

	anon, err := p.Run(Request{Trace: rec.Trace})
	if err != nil {
		t.Fatal(err)
	}
	if anon.CacheHit || p.CacheLen() != 0 {
		t.Fatalf("digest-less trace request touched the cache (len %d)", p.CacheLen())
	}

	parse := func() *trace.Trace {
		tr, err := trace.ReadAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	first, err := p.Run(Request{Trace: parse(), TraceDigest: digest})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first digest run reported a cache hit")
	}
	second, err := p.Run(Request{Trace: parse(), TraceDigest: digest})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("same digest missed the cache despite a distinct *Trace")
	}
	if second.Report != first.Report {
		t.Fatal("cached digest report differs")
	}
	// The digest must key the analysis config too.
	withSchemes, err := p.Run(Request{Trace: parse(), TraceDigest: digest, Schemes: true})
	if err != nil {
		t.Fatal(err)
	}
	if withSchemes.CacheHit {
		t.Fatal("different config hit the digest cache")
	}
}

// TestTraceLoaderLazy: with a TraceLoader the blob is parsed only on a
// cache miss — a repeat of an already-analyzed digest never invokes the
// loader, and its re-rendered report (including the recorded-total
// line, which normally comes from the trace header) is byte-identical.
func TestTraceLoaderLazy(t *testing.T) {
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 5}), sim.Config{Seed: 5})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	digest := corpus.Digest(buf.Bytes())

	p := New(Options{CacheSize: 4})
	calls := 0
	req := Request{
		TraceLoader: func() (*trace.Trace, error) {
			calls++
			return trace.ReadAny(bytes.NewReader(buf.Bytes()))
		},
		TraceDigest: digest,
		TraceBytes:  int64(buf.Len()),
		Schemes:     true,
	}
	first, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || calls != 1 {
		t.Fatalf("first run: hit=%v loader calls=%d", first.CacheHit, calls)
	}
	wantRecorded := fmt.Sprintf("recorded %v", rec.Trace.TotalTime)
	if !strings.Contains(first.Report, wantRecorded) {
		t.Fatalf("report lacks %q:\n%s", wantRecorded, first.Report)
	}

	second, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("repeat missed the cache")
	}
	if calls != 1 {
		t.Fatalf("cache hit invoked the loader (%d calls)", calls)
	}
	if second.Report != first.Report {
		t.Fatalf("re-rendered report differs:\nfirst:\n%s\nsecond:\n%s", first.Report, second.Report)
	}

	// Loader failures surface as run errors, not panics.
	bad := Request{
		TraceLoader: func() (*trace.Trace, error) { return nil, fmt.Errorf("blob vanished") },
		TraceDigest: corpus.Digest([]byte("other")),
	}
	if _, err := p.Run(bad); err == nil || !strings.Contains(err.Error(), "blob vanished") {
		t.Fatalf("loader error lost: %v", err)
	}
}

// TestTraceCacheByteBudget: cached trace-backed results retain their
// parsed traces, so the cache evicts the coldest of them past the byte
// budget even when the entry-count cap has room — while the most recent
// entry always survives, keeping analyze-by-digest repeats cache hits.
func TestTraceCacheByteBudget(t *testing.T) {
	app := workload.MustGet("pbzip2")
	serialize := func(seed int64) ([]byte, *trace.Trace) {
		rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: seed}), sim.Config{Seed: seed})
		var buf bytes.Buffer
		if err := rec.Trace.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rec.Trace
	}
	bytesA, trA := serialize(5)
	bytesB, trB := serialize(6)

	// Budget holds one trace but not two: caching B must evict A.
	p := New(Options{CacheSize: 16, CacheTraceBytes: int64(len(bytesA)+len(bytesB)) - 1})
	reqA := Request{Trace: trA, TraceDigest: corpus.Digest(bytesA), TraceBytes: int64(len(bytesA))}
	reqB := Request{Trace: trB, TraceDigest: corpus.Digest(bytesB), TraceBytes: int64(len(bytesB))}
	if _, err := p.Run(reqA); err != nil {
		t.Fatal(err)
	}
	if res, err := p.Run(reqB); err != nil || res.CacheHit {
		t.Fatalf("B first run: hit=%v err=%v", res.CacheHit, err)
	}
	if res, err := p.Run(reqB); err != nil || !res.CacheHit {
		t.Fatalf("B repeat should hit even over budget alone: hit=%v err=%v", res.CacheHit, err)
	}
	if res, err := p.Run(reqA); err != nil || res.CacheHit {
		t.Fatalf("A should have been evicted by the byte budget: hit=%v err=%v", res.CacheHit, err)
	}
}

func TestPoolEach(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var hits [100]atomic.Int32
		NewPool(workers).Each(len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
	NewPool(4).Each(0, func(int) { t.Fatal("task ran for n=0") })
}

func TestPoolPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	NewPool(4).Each(16, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run(Request{App: "no-such-app"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestEmptyTraceRejected: Validate is vacuous on a zero-event trace (the
// shape a stray JSON object decodes to), so the record stage must
// reject it rather than emit an all-zero analysis.
func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Run(Request{Trace: trace.New("empty", 2)}); err == nil {
		t.Fatal("empty trace accepted")
	}
}
