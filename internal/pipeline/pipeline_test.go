package pipeline

import (
	"strings"
	"sync/atomic"
	"testing"

	"perfplay/internal/replay"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// TestParallelByteIdentical is the determinism contract: for the same
// request and seed, the parallel pipeline must produce byte-identical
// ranked reports to the serial path — across several seeds and
// workloads, and stably across repeated parallel runs.
func TestParallelByteIdentical(t *testing.T) {
	for _, app := range []string{"mysql", "pbzip2"} {
		for _, seed := range []int64{1, 7, 42} {
			req := Request{
				App: app, Threads: 4, Scale: 0.2, Seed: seed,
				Schemes: true, DetectRaces: true,
			}

			serialReq := req
			serialReq.Workers = 1
			serial, err := Run(serialReq)
			if err != nil {
				t.Fatalf("%s/seed %d serial: %v", app, seed, err)
			}

			parReq := req
			parReq.Workers = 8
			for round := 0; round < 2; round++ {
				par, err := Run(parReq)
				if err != nil {
					t.Fatalf("%s/seed %d workers=8: %v", app, seed, err)
				}
				if par.Report != serial.Report {
					t.Fatalf("%s/seed %d round %d: parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
						app, seed, round, serial.Report, par.Report)
				}
			}
			if serial.Report == "" || !strings.Contains(serial.Report, "PerfPlay analysis") {
				t.Fatalf("%s/seed %d: implausible report: %q", app, seed, serial.Report)
			}
		}
	}
}

// TestSchemesAndStages checks the stage plumbing: four scheme replays in
// scheduler order, all five stage timings, and a populated analysis.
func TestSchemesAndStages(t *testing.T) {
	res, err := Run(Request{App: "pbzip2", Scale: 0.2, Seed: 3, Workers: 4, Schemes: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []replay.Scheduler{replay.OrigS, replay.ELSCS, replay.SyncS, replay.MemS}
	if len(res.Schemes) != len(want) {
		t.Fatalf("got %d scheme replays, want %d", len(res.Schemes), len(want))
	}
	for i, s := range want {
		if res.Schemes[i].Sched != s || res.Schemes[i].Result == nil {
			t.Fatalf("scheme %d = %v (result %v), want %v", i, res.Schemes[i].Sched, res.Schemes[i].Result, s)
		}
	}
	stages := []string{"record", "replay", "classify", "quantify", "report"}
	if len(res.Timings) != len(stages) {
		t.Fatalf("got %d stage timings: %v", len(res.Timings), res.Timings)
	}
	for i, s := range stages {
		if res.Timings[i].Stage != s {
			t.Fatalf("stage %d = %q, want %q", i, res.Timings[i].Stage, s)
		}
	}
	a := res.Analysis
	if a.Recorded == nil || a.Report == nil || a.Transformed == nil ||
		a.OrigReplay == nil || a.FreeReplay == nil || a.Debug == nil {
		t.Fatalf("analysis artifacts missing: %+v", a)
	}
}

// TestTraceRequest analyzes a pre-recorded trace (the daemon's upload
// path): Record is skipped and the result matches an App-driven run of
// the same recording.
func TestTraceRequest(t *testing.T) {
	app := workload.MustGet("pbzip2")
	p := app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 5})
	rec := sim.Run(p, sim.Config{Seed: 5})

	fromTrace, err := Run(Request{Trace: rec.Trace, Workers: 4, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fromTrace.Analysis.Recorded != nil {
		t.Fatal("Record stage ran despite a supplied trace")
	}
	if fromTrace.Analysis.App != rec.Trace.App {
		t.Fatalf("app = %q, want %q", fromTrace.Analysis.App, rec.Trace.App)
	}
	if fromTrace.Report == "" {
		t.Fatal("empty report")
	}
}

func TestRunSeeds(t *testing.T) {
	p := New(Options{})
	seeds := []int64{1, 2, 3}
	results, err := p.RunSeeds(Request{App: "pbzip2", Scale: 0.2, Workers: 4}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(seeds) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Request.Seed != seeds[i] {
			t.Fatalf("result %d has seed %d, want %d", i, r.Request.Seed, seeds[i])
		}
	}
}

func TestCache(t *testing.T) {
	p := New(Options{CacheSize: 2})
	req := Request{App: "pbzip2", Scale: 0.2, Seed: 9}

	first, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first run reported a cache hit")
	}

	// Same request at a different worker count must hit: workers are
	// excluded from the key by the determinism contract.
	req.Workers = 8
	second, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second run missed the cache")
	}
	if second.Report != first.Report {
		t.Fatal("cached report differs")
	}

	// A different TopK also hits — it only affects rendering, which the
	// hit redoes at the requested depth.
	req.TopK = 2
	rerender, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if !rerender.CacheHit {
		t.Fatal("different TopK missed the cache")
	}
	if rerender.Report == first.Report {
		t.Fatal("report not re-rendered for the new TopK")
	}
	if rerender.Request.TopK != 2 {
		t.Fatalf("hit kept the cached TopK: %d", rerender.Request.TopK)
	}
	req.TopK = 0

	// A different seed misses.
	req.Seed = 10
	third, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("different seed hit the cache")
	}

	// LRU eviction: capacity 2, three distinct keys → oldest evicted.
	req.Seed = 11
	if _, err := p.Run(req); err != nil {
		t.Fatal(err)
	}
	if got := p.CacheLen(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	req.Seed = 9
	again, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("evicted entry still hit")
	}
}

func TestPoolEach(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var hits [100]atomic.Int32
		NewPool(workers).Each(len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
	NewPool(4).Each(0, func(int) { t.Fatal("task ran for n=0") })
}

func TestPoolPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	NewPool(4).Each(16, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run(Request{App: "no-such-app"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestEmptyTraceRejected: Validate is vacuous on a zero-event trace (the
// shape a stray JSON object decodes to), so the record stage must
// reject it rather than emit an all-zero analysis.
func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Run(Request{Trace: trace.New("empty", 2)}); err == nil {
		t.Fatal("empty trace accepted")
	}
}
