package pipeline

import (
	"errors"
	"maps"
	"sync"
	"testing"
	"time"

	"perfplay/internal/sim"
	"perfplay/internal/ulcp"
	"perfplay/internal/workload"
)

// fakeExecutor runs shards in-process, honestly or not.
type fakeExecutor struct {
	name  string
	fail  bool // every call errors
	calls int  // ranges executed
}

func (f *fakeExecutor) Name() string { return f.name }

func (f *fakeExecutor) ExecuteShards(job *ShardJob, rng ShardRange) ([]*ulcp.Report, error) {
	f.calls++
	if f.fail {
		return nil, errors.New("peer unreachable")
	}
	reps := make([]*ulcp.Report, rng.Len())
	for i := range reps {
		reps[i] = ulcp.IdentifyShardWithVerdicts(job.Trace, job.Groups[rng.Start+i], job.Opts, job.Table)
	}
	return reps, nil
}

func recordedJob(t *testing.T, app string) *ShardJob {
	t.Helper()
	a := workload.MustGet(app)
	p := a.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7})
	res := sim.Run(p, sim.Config{Seed: 7})
	tr := res.Trace
	css := tr.ExtractCS()
	table, _ := ulcp.BuildVerdictTable(tr, css, ulcp.Options{})
	return NewShardJob(tr, ulcp.SortedLockGroups(css), ulcp.Options{}, table)
}

func reportsEqual(t *testing.T, app string, got, want *ulcp.Report) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", app, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s: pair %d differs: %+v vs %+v", app, i, got.Pairs[i], want.Pairs[i])
		}
	}
	if len(got.CausalEdges) != len(want.CausalEdges) {
		t.Fatalf("%s: causal edges differ", app)
	}
	for i := range got.CausalEdges {
		if got.CausalEdges[i] != want.CausalEdges[i] {
			t.Fatalf("%s: edge %d differs", app, i)
		}
	}
}

// TestDistributorMatchesLocal: 2 honest peers + the local range merge
// into the same pair stream as a purely local run, for every fixture.
func TestDistributorMatchesLocal(t *testing.T) {
	for _, app := range []string{"pbzip2", "mysql", "openldap"} {
		job := recordedJob(t, app)
		serial := ulcp.MergeReports(func() []*ulcp.Report {
			reps := make([]*ulcp.Report, len(job.Groups))
			for i, g := range job.Groups {
				reps[i] = ulcp.IdentifyShardWithVerdicts(job.Trace, g, job.Opts, job.Table)
			}
			return reps
		}()...)

		p1 := &fakeExecutor{name: "p1"}
		p2 := &fakeExecutor{name: "p2"}
		d := &Distributor{Peers: []ShardExecutor{p1, p2}}
		got := d.Run(job, NewPool(4))

		reportsEqual(t, app, got, serial)
		if len(job.Groups) >= 3 && (p1.calls == 0 || p2.calls == 0) {
			t.Fatalf("%s: fan-out skipped a peer (p1=%d p2=%d calls)", app, p1.calls, p2.calls)
		}
		if d.Fallbacks() != 0 {
			t.Fatalf("%s: unexpected fallbacks: %d", app, d.Fallbacks())
		}
	}
}

// TestDistributorFallsBackOnPeerFailure: a dead peer's range re-runs
// locally and the merged report is still byte-identical.
func TestDistributorFallsBackOnPeerFailure(t *testing.T) {
	job := recordedJob(t, "mysql")
	serial := ulcp.MergeReports(func() []*ulcp.Report {
		reps := make([]*ulcp.Report, len(job.Groups))
		for i, g := range job.Groups {
			reps[i] = ulcp.IdentifyShardWithVerdicts(job.Trace, g, job.Opts, job.Table)
		}
		return reps
	}()...)

	dead := &fakeExecutor{name: "dead", fail: true}
	alive := &fakeExecutor{name: "alive"}
	var fellBack []string
	d := &Distributor{
		Peers: []ShardExecutor{dead, alive},
		OnFallback: func(_ *ShardJob, peer string, rng ShardRange, err error) {
			fellBack = append(fellBack, peer)
			if err == nil {
				t.Error("fallback without an error")
			}
		},
	}
	got := d.Run(job, NewPool(4))
	reportsEqual(t, "mysql", got, serial)
	if d.Fallbacks() != 1 || len(fellBack) != 1 || fellBack[0] != "dead" {
		t.Fatalf("fallbacks = %d (%v), want exactly the dead peer", d.Fallbacks(), fellBack)
	}

	// All peers down: everything runs locally, output unchanged.
	d2 := &Distributor{Peers: []ShardExecutor{
		&fakeExecutor{name: "d1", fail: true},
		&fakeExecutor{name: "d2", fail: true},
	}}
	got2 := d2.Run(job, NewPool(4))
	reportsEqual(t, "mysql/all-down", got2, serial)
	if d2.Fallbacks() != 2 {
		t.Fatalf("fallbacks = %d, want 2", d2.Fallbacks())
	}
}

// gatedExecutor blocks inside each ExecuteShards call until released —
// the deterministic stand-in for an overloaded peer.
type gatedExecutor struct {
	name    string
	entered chan ShardRange // receives each range as the call begins
	release chan struct{}   // closed to let the calls finish

	mu     sync.Mutex
	ranges []ShardRange
}

func (g *gatedExecutor) Name() string { return g.name }

func (g *gatedExecutor) ExecuteShards(job *ShardJob, rng ShardRange) ([]*ulcp.Report, error) {
	g.entered <- rng
	<-g.release
	g.mu.Lock()
	g.ranges = append(g.ranges, rng)
	g.mu.Unlock()
	reps := make([]*ulcp.Report, rng.Len())
	for i := range reps {
		reps[i] = ulcp.IdentifyShardWithVerdicts(job.Trace, job.Groups[rng.Start+i], job.Opts, job.Table)
	}
	return reps, nil
}

// TestDistributorMigratesRangesUnderSkew is the work-stealing contract:
// with one peer wedged mid-chunk, the chunks a static cost split would
// have assigned to it drain through the healthy executors instead, and
// once the wedged peer finishes its single chunk the merged report is
// still byte-identical to serial.
func TestDistributorMigratesRangesUnderSkew(t *testing.T) {
	job := recordedJob(t, "mysql")
	if len(job.Groups) < 4 {
		t.Fatalf("fixture too small for a skew test: %d groups", len(job.Groups))
	}
	serial := ulcp.MergeReports(func() []*ulcp.Report {
		reps := make([]*ulcp.Report, len(job.Groups))
		for i, g := range job.Groups {
			reps[i] = ulcp.IdentifyShardWithVerdicts(job.Trace, g, job.Opts, job.Table)
		}
		return reps
	}()...)

	slow := &gatedExecutor{
		name:    "slow",
		entered: make(chan ShardRange, 16),
		release: make(chan struct{}),
	}
	fast := &fakeExecutor{name: "fast"}
	d := &Distributor{Peers: []ShardExecutor{slow, fast}}

	type runResult struct{ rep *ulcp.Report }
	done := make(chan runResult)
	go func() { done <- runResult{d.Run(job, NewPool(2))} }()

	// The slow peer is now holding its first chunk. Everything else
	// must drain without it: wait for the run to need only that chunk.
	first := <-slow.entered
	deadline := time.After(10 * time.Second)
	for {
		if d.Fallbacks() > 0 {
			t.Fatal("healthy-but-slow peer triggered a fallback")
		}
		a := d.Assignments()
		if a["fast"]+a[LocalExecutor] == len(job.Groups)-first.Len() {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("rest of the ledger never drained around the wedged peer: %v", a)
		case <-time.After(time.Millisecond):
		}
	}
	close(slow.release) // un-wedge; the run can now finish

	res := <-done
	reportsEqual(t, "mysql/skew", res.rep, serial)
	a := d.Assignments()
	if got := a["slow"]; got != first.Len() {
		t.Fatalf("slow peer computed %d groups, want exactly its first chunk (%d)", got, first.Len())
	}
	// A static 3-way cost split would hand the slow peer ~1/3 of the
	// groups; under skew it must end up with strictly less — the rest
	// migrated mid-classify.
	if a["slow"]*3 >= len(job.Groups) {
		t.Fatalf("no migration: slow kept %d of %d groups", a["slow"], len(job.Groups))
	}
	if total := a["slow"] + a["fast"] + a[LocalExecutor]; total != len(job.Groups) {
		t.Fatalf("assignments cover %d of %d groups: %v", total, len(job.Groups), a)
	}
}

// TestPipelineDistributedByteIdentical: a full pipeline run with a
// distributor produces the same report string as the plain run — the
// whole-job determinism contract the cluster relies on. The result
// cache is disabled so the second run actually re-executes; the first
// run warms the verdict-table cache, which is what arms distribution
// (a fresh-table run classifies locally as a side effect of building
// the table).
func TestPipelineDistributedByteIdentical(t *testing.T) {
	p := New(Options{CacheSize: 0}) // no result cache: the second run must re-execute
	req := Request{App: "mysql", Threads: 4, Scale: 0.2, Seed: 7, TopK: 5, Schemes: true}
	plain, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	honest := &fakeExecutor{name: "p1"}
	dreq := req
	dreq.Workers = 4
	dreq.Distributor = &Distributor{Peers: []ShardExecutor{
		honest,
		&fakeExecutor{name: "p2", fail: true},
	}}
	dist, err := p.Run(dreq)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Report != plain.Report {
		t.Fatalf("distributed report differs from plain:\nplain:\n%s\ndistributed:\n%s",
			plain.Report, dist.Report)
	}
	if honest.calls == 0 {
		t.Fatal("cached-table run never reached the peers")
	}
	if dreq.Distributor.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1 (the failing peer)", dreq.Distributor.Fallbacks())
	}
}

// TestDistributorContainsExecutorPanics: an executor whose response
// handling panics (a peer can answer well-formed JSON with poisonous
// content) must degrade to a local fallback, not crash the process.
func TestDistributorContainsExecutorPanics(t *testing.T) {
	job := recordedJob(t, "mysql")
	serial := ulcp.MergeReports(func() []*ulcp.Report {
		reps := make([]*ulcp.Report, len(job.Groups))
		for i, g := range job.Groups {
			reps[i] = ulcp.IdentifyShardWithVerdicts(job.Trace, g, job.Opts, job.Table)
		}
		return reps
	}()...)

	d := &Distributor{Peers: []ShardExecutor{
		&panicExecutor{name: "poison"},
		&nilReportExecutor{name: "nuller"},
	}}
	got := d.Run(job, NewPool(4))
	reportsEqual(t, "mysql/panic", got, serial)
	if d.Fallbacks() != 2 {
		t.Fatalf("fallbacks = %d, want 2", d.Fallbacks())
	}
}

type panicExecutor struct{ name string }

func (p *panicExecutor) Name() string { return p.name }
func (p *panicExecutor) ExecuteShards(job *ShardJob, rng ShardRange) ([]*ulcp.Report, error) {
	panic("poisoned peer response")
}

// nilReportExecutor returns the right count of reports, one of them nil
// — the shape a version-skewed peer's null JSON element produces.
type nilReportExecutor struct{ name string }

func (n *nilReportExecutor) Name() string { return n.name }
func (n *nilReportExecutor) ExecuteShards(job *ShardJob, rng ShardRange) ([]*ulcp.Report, error) {
	return make([]*ulcp.Report, rng.Len()), nil
}

// TestTableCacheSkipsReplays: the second job over the same digest —
// with different reporting flags, so the result cache misses — reuses
// the cached verdict table and performs zero reversed replays.
func TestTableCacheSkipsReplays(t *testing.T) {
	app := workload.MustGet("openldap")
	res := sim.Run(app.Build(workload.Config{Threads: 4, Scale: 0.2, Seed: 7}), sim.Config{Seed: 7})
	p := New(Options{CacheSize: 8})

	req := Request{Trace: res.Trace, TraceDigest: "sha256:testfixture", TopK: 5}
	first, err := p.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first run claims a cache hit")
	}
	if p.TableCacheLen() != 1 {
		t.Fatalf("table cache holds %d entries, want 1", p.TableCacheLen())
	}

	req2 := req
	req2.DetectRaces = true // different result-cache key, same table key
	second, err := p.Run(req2)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHit {
		t.Fatal("second run must miss the result cache (flags differ)")
	}
	if got, want := second.Analysis.Report.ReversedReplays, first.Analysis.Report.ReversedReplays; got != want {
		t.Fatalf("cached-table run reports %d replays, want %d (table's)", got, want)
	}
	// DetectRaces only adds a races line; the classification itself must
	// be pair-for-pair what the build pass produced. The two runs
	// extracted separate CritSec values, so compare by ID, not pointer.
	fw, sw := first.Analysis.Report.Wire(), second.Analysis.Report.Wire()
	if len(fw.Pairs) != len(sw.Pairs) {
		t.Fatalf("cached-table run: %d pairs, want %d", len(sw.Pairs), len(fw.Pairs))
	}
	for i := range fw.Pairs {
		if fw.Pairs[i] != sw.Pairs[i] {
			t.Fatalf("cached-table pair %d differs: %+v vs %+v", i, sw.Pairs[i], fw.Pairs[i])
		}
	}
	if !maps.Equal(second.Analysis.Report.Counts, first.Analysis.Report.Counts) {
		t.Fatalf("cached-table counts differ: %v vs %v",
			second.Analysis.Report.Counts, first.Analysis.Report.Counts)
	}
}
