package pipeline

import (
	"container/list"
	"strings"
	"sync"

	"perfplay/internal/ulcp"
)

// lruCache is a thread-safe fixed-capacity LRU with optional per-entry
// byte weights. One implementation backs both of the pipeline's caches:
//
//   - the result cache, keyed by the normalized request (see
//     Request.CacheKey), whose trace-backed entries carry their
//     serialized trace size as weight so a count-bounded cache cannot
//     pin cap×MaxTraceBytes of parsed traces in memory; and
//   - the verdict-table cache, keyed by (trace digest, identify
//     options), whose entries are small and all zero-weight.
//
// Besides the entry-count cap, a non-zero maxBytes enforces a byte
// budget over weighted entries; the coldest weighted entries are
// evicted beyond it.
type lruCache[V any] struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64      // weighted-entry budget; 0 = no byte bound
	bytes    int64      // current weighted total
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry[V any] struct {
	key  string
	val  V
	cost int64
}

func newLRU[V any](capacity int, maxBytes int64) *lruCache[V] {
	if capacity <= 0 {
		return nil
	}
	return &lruCache[V]{
		cap:      capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache[V]) get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// put inserts a value with its weight (0 for unweighted entries).
func (c *lruCache[V]) put(key string, val V, cost int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry[V])
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	// Evict past either bound. Over the count cap, the cold end goes
	// regardless of weight; over only the byte budget, evict the
	// coldest entry that actually carries weight — removing zero-cost
	// entries would destroy valid entries without freeing a byte. The
	// most recent entry always survives even if it alone exceeds the
	// byte budget — at worst one oversized result is retained, still
	// bounded by the front end's per-upload size limit.
	for c.ll.Len() > 1 {
		overCount := c.ll.Len() > c.cap
		overBytes := c.maxBytes > 0 && c.bytes > c.maxBytes
		if !overCount && !overBytes {
			break
		}
		victim := c.ll.Back()
		if !overCount {
			for victim != nil && victim != c.ll.Front() && victim.Value.(*lruEntry[V]).cost == 0 {
				victim = victim.Prev()
			}
			if victim == nil || victim == c.ll.Front() {
				break // all remaining weight sits in the most recent entry
			}
		}
		e := victim.Value.(*lruEntry[V])
		c.ll.Remove(victim)
		c.bytes -= e.cost
		delete(c.items, e.key)
	}
}

func (c *lruCache[V]) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// peek reports whether a key is cached without refreshing its recency —
// for presence probes (cluster cache lookups deciding whether to ask a
// peer) that must not distort the LRU order.
func (c *lruCache[V]) peek(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// keys returns up to n cache keys, most recently used first — the
// "cache-population hints" a node gossips to peers so their cluster
// cache probes can target the holder directly.
func (c *lruCache[V]) keys(n int) []string {
	if c == nil || n <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, min(n, c.ll.Len()))
	for el := c.ll.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[V]).key)
	}
	return out
}

// hasKeyPrefix reports whether any cached key starts with prefix,
// without touching recency — a presence probe over the whole key set
// (both pipeline caches key by leading content digest, so "does any
// artifact derive from this trace" is a prefix question).
func (c *lruCache[V]) hasKeyPrefix(prefix string) bool {
	if c == nil || prefix == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.items {
		if strings.HasPrefix(key, prefix) {
			return true
		}
	}
	return false
}

// tableCache memoizes verdict tables across jobs, keyed by (trace
// digest, identify options). The result cache misses whenever any
// reporting flag differs (schemes, races, top-k), yet the verdict table
// — the replay-heavy part of classification — depends only on the
// trace content and the identify options; caching it separately means a
// second job over the same stored trace skips every reversed replay
// even on a result-cache miss. Entries are small (one bool per
// conflicting region-pair class), so they carry no byte weight.
type tableCache = lruCache[*ulcp.VerdictTable]
