package pipeline

import (
	"container/list"
	"sync"
)

// lruCache is a thread-safe fixed-capacity LRU of analysis results,
// keyed by the normalized request (see Request.CacheKey). The daemon
// and any long-lived embedder share it across jobs so repeated analyses
// of the same (workload, input, threads, seed, config) tuple are free.
//
// Besides the entry-count cap, the cache enforces a byte budget over
// weighted entries: trace-backed results retain the caller's parsed
// trace (weighted by its serialized size, Request.TraceBytes), and
// client-sized uploads must not let a count-bounded cache pin
// cap×MaxTraceBytes of memory. Workload-backed results weigh zero —
// their footprint is bounded by the modelled workloads themselves.
type lruCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64      // weighted-entry budget; 0 = no byte bound
	bytes    int64      // current weighted total
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry struct {
	key  string
	res  *Result
	cost int64
}

func newLRU(capacity int, maxBytes int64) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:      capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// put inserts a result with its weight (0 for workload-backed results,
// the serialized trace size for trace-backed ones).
func (c *lruCache) put(key string, res *Result, cost int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += cost - e.cost
		e.res, e.cost = res, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res, cost: cost})
		c.bytes += cost
	}
	// Evict past either bound. Over the count cap, the cold end goes
	// regardless of weight; over only the byte budget, evict the
	// coldest entry that actually carries weight — removing zero-cost
	// workload results would destroy valid entries without freeing a
	// byte. The most recent entry always survives even if it alone
	// exceeds the byte budget — at worst one oversized result is
	// retained, still bounded by the front end's per-upload size limit.
	for c.ll.Len() > 1 {
		overCount := c.ll.Len() > c.cap
		overBytes := c.maxBytes > 0 && c.bytes > c.maxBytes
		if !overCount && !overBytes {
			break
		}
		victim := c.ll.Back()
		if !overCount {
			for victim != nil && victim != c.ll.Front() && victim.Value.(*lruEntry).cost == 0 {
				victim = victim.Prev()
			}
			if victim == nil || victim == c.ll.Front() {
				break // all remaining weight sits in the most recent entry
			}
		}
		e := victim.Value.(*lruEntry)
		c.ll.Remove(victim)
		c.bytes -= e.cost
		delete(c.items, e.key)
	}
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
