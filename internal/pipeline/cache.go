package pipeline

import (
	"container/list"
	"sync"
)

// lruCache is a thread-safe fixed-capacity LRU of analysis results,
// keyed by the normalized request (see Request.CacheKey). The daemon
// and any long-lived embedder share it across jobs so repeated analyses
// of the same (workload, input, threads, seed, config) tuple are free.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res *Result
}

func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) put(key string, res *Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
