package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"perfplay/internal/corpus"
	"perfplay/internal/sim"
	"perfplay/internal/ulcp"
	"perfplay/internal/workload"
)

// recordedDigestRequest builds a digest-keyed trace request — the only
// kind the cluster cache exchanges — from a small deterministic
// recording.
func recordedDigestRequest(t *testing.T, seed int64) Request {
	t.Helper()
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: seed}), sim.Config{Seed: seed})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return Request{
		Trace:       rec.Trace,
		TraceDigest: corpus.Digest(buf.Bytes()),
		TraceBytes:  int64(buf.Len()),
	}
}

// TestExportWireRoundTrip: a cached result exported in wire form, JSON
// round-tripped, validates against its key and carries the exact report
// bytes a local hit at the same depth renders.
func TestExportWireRoundTrip(t *testing.T) {
	p := New(Options{CacheSize: 4})
	req := recordedDigestRequest(t, 3)
	req.Schemes = true
	if _, err := p.Run(req); err != nil {
		t.Fatal(err)
	}
	key, ok := p.CacheKeyFor(req)
	if !ok {
		t.Fatal("digest request not cacheable")
	}
	if !p.HasResult(key) {
		t.Fatal("result not cached under its key")
	}

	for _, topK := range []int{0, 3} {
		wr, ok := p.Export(key, topK)
		if !ok {
			t.Fatalf("Export(top=%d) missed a populated key", topK)
		}
		data, err := json.Marshal(wr)
		if err != nil {
			t.Fatal(err)
		}
		var back WireResult
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(key, topK); err != nil {
			t.Fatalf("round-tripped wire result invalid: %v", err)
		}
		// The exported report must be byte-identical to a local cache
		// hit of the same request at the same depth.
		hitReq := req
		hitReq.TopK = topK
		hit, err := p.Run(hitReq)
		if err != nil {
			t.Fatal(err)
		}
		if !hit.CacheHit {
			t.Fatal("second run missed the cache")
		}
		if back.Report != hit.Report {
			t.Fatalf("wire report differs from local hit at top %d:\nwire:\n%s\nlocal:\n%s",
				topK, back.Report, hit.Report)
		}
		if back.Ulcp == nil || back.Ulcp.NumULCPs() != hit.Analysis.Report.NumULCPs() {
			t.Fatalf("wire ULCP tally differs from the analysis")
		}
		if len(back.Schemes) != len(hit.Schemes) {
			t.Fatalf("wire carries %d schemes, want %d", len(back.Schemes), len(hit.Schemes))
		}
	}

	if _, ok := p.Export("no-such-key", 0); ok {
		t.Fatal("Export invented a result for an unknown key")
	}
}

// TestNegativeTopKClamped: a negative report depth behaves like the
// default everywhere — the local run must not diverge from (or panic
// where) the cluster-cache wire path, which maps top<=0 to 5.
func TestNegativeTopKClamped(t *testing.T) {
	p := New(Options{CacheSize: 4})
	neg := recordedDigestRequest(t, 3)
	neg.TopK = -1
	res, err := p.Run(neg)
	if err != nil {
		t.Fatal(err)
	}
	def := neg
	def.TopK = 5
	ref, err := p.Run(def)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.CacheHit {
		t.Fatal("clamped depths did not share a cache entry")
	}
	if res.Report != ref.Report {
		t.Fatal("negative TopK report differs from the default depth")
	}
}

// TestWireResultValidate pins the import guards: mismatched key,
// mismatched depth, missing report or ulcp section — each must be
// rejected, because importing any of them would silently break the
// byte-identical contract.
func TestWireResultValidate(t *testing.T) {
	good := func() *WireResult {
		return &WireResult{Key: "k", TopK: 5, Report: "r", Ulcp: &ulcp.WireReport{}}
	}
	if err := good().Validate("k", 0); err != nil {
		t.Fatalf("valid wire result rejected: %v", err)
	}
	if err := good().Validate("k", 5); err != nil {
		t.Fatalf("valid wire result rejected at explicit depth: %v", err)
	}
	cases := map[string]*WireResult{
		"wrong key":   {Key: "other", TopK: 5, Report: "r", Ulcp: &ulcp.WireReport{}},
		"wrong depth": {Key: "k", TopK: 3, Report: "r", Ulcp: &ulcp.WireReport{}},
		"no report":   {Key: "k", TopK: 5, Ulcp: &ulcp.WireReport{}},
		"no ulcp":     {Key: "k", TopK: 5, Report: "r"},
	}
	for name, wr := range cases {
		if err := wr.Validate("k", 5); err == nil {
			t.Fatalf("%s: Validate accepted it", name)
		}
	}
}

// TestTableExportImport: a verdict table cached by one pipeline imports
// into another under the same key, after which the importer classifies
// with zero additional table builds — and garbage imports are refused.
func TestTableExportImport(t *testing.T) {
	src := New(Options{CacheSize: 4})
	req := recordedDigestRequest(t, 5)
	if _, err := src.Run(req); err != nil {
		t.Fatal(err)
	}
	key, ok := src.TableKeyFor(req)
	if !ok {
		t.Fatal("digest request has no table key")
	}
	wt, ok := src.ExportTable(key)
	if !ok {
		t.Fatal("table not cached after a run")
	}
	if err := wt.Validate(key); err != nil {
		t.Fatalf("exported table invalid: %v", err)
	}
	if err := wt.Validate("other-key"); err == nil {
		t.Fatal("mismatched key validated")
	}
	table := wt.Table

	dst := New(Options{CacheSize: 4})
	if dst.HasTable(key) {
		t.Fatal("fresh pipeline claims the table")
	}
	if !dst.ImportTable(key, table) {
		t.Fatal("valid table import refused")
	}
	if !dst.HasTable(key) {
		t.Fatal("imported table not visible")
	}
	// The imported table must steer a run exactly like a locally-built
	// one: same report bytes, table-hit accounting instead of a build.
	res, err := dst.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := src.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != ref.Report {
		t.Fatal("run over imported table differs from source pipeline")
	}
	if st := dst.Stats(); st.TableHits != 1 || st.TableMisses != 0 {
		t.Fatalf("importer stats = %+v, want one table hit", st)
	}

	for name, tc := range map[string]struct {
		key string
		t   *ulcp.VerdictTable
	}{
		"empty key":   {"", table},
		"nil table":   {key, nil},
		"no verdicts": {key, &ulcp.VerdictTable{}},
	} {
		if dst.ImportTable(tc.key, tc.t) {
			t.Fatalf("%s: garbage import accepted", name)
		}
	}
}

// TestCacheStatsAndRecentKeys: hit/miss accounting and the
// most-recent-first hint ordering peers gossip.
func TestCacheStatsAndRecentKeys(t *testing.T) {
	p := New(Options{CacheSize: 4})
	reqA := recordedDigestRequest(t, 3)
	reqB := recordedDigestRequest(t, 5)
	for _, r := range []Request{reqA, reqB, reqA} {
		if _, err := p.Run(r); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.ResultHits != 1 || st.ResultMisses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if st.TableMisses != 2 || st.TableHits != 0 {
		t.Fatalf("stats = %+v, want 2 table misses (each first run builds)", st)
	}

	keyA, _ := p.CacheKeyFor(reqA)
	keyB, _ := p.CacheKeyFor(reqB)
	keys := p.RecentResultKeys(8)
	if len(keys) != 2 || keys[0] != keyA || keys[1] != keyB {
		t.Fatalf("recent keys = %v, want [%s %s] (A re-hit last)", keys, keyA, keyB)
	}
	if got := p.RecentResultKeys(1); len(got) != 1 || got[0] != keyA {
		t.Fatalf("bounded recent keys = %v", got)
	}
	// Presence probes must not distort that order.
	if !p.HasResult(keyB) || p.HasResult("nope") {
		t.Fatal("HasResult wrong")
	}
	if keys2 := p.RecentResultKeys(8); keys2[0] != keyA {
		t.Fatalf("peek reordered the LRU: %v", keys2)
	}
}
