package pipeline

import (
	"fmt"

	"perfplay/internal/ulcp"
)

// This file is the pipeline's cluster-cache surface: cached results and
// verdict tables exported in a JSON-serializable wire form, so peer
// nodes can import a finished analysis by cache key instead of
// re-running the whole replay pipeline. The exchange is only sound
// because cache keys are stable content addresses — a digest-keyed key
// names the trace bytes, not a node-local pointer — and because the
// determinism contract makes the exporter's artifacts byte-identical to
// what the importer's own run would have produced.

// WireScheme is one scheduler replay's summary in wire form.
type WireScheme struct {
	Sched string `json:"sched"`
	Total string `json:"total"`
}

// WireResult is the cross-node serialization of one cached Result,
// rendered at one requested TopK. It carries the classification report
// in ulcp wire form (critical sections by ID) plus the summary numbers
// and the rendered report bytes — everything a peer needs to settle an
// identical job with zero replays, and nothing that only makes sense in
// the exporter's memory (no traces, no replay artifacts).
type WireResult struct {
	// Key echoes the result-cache key the exporter served, so an
	// importer can reject a mismatched or misrouted response.
	Key string `json:"key"`
	// TopK is the report depth the Report field was rendered at.
	TopK int `json:"top"`

	App      string `json:"app,omitempty"`
	Threads  int    `json:"threads"`
	CritSecs int    `json:"critical_sections"`
	// Ulcp is the classification report with critical sections
	// referenced by ID; Counts rebuild from the pair tally on arrival.
	Ulcp           *ulcp.WireReport `json:"ulcp"`
	DegradationPct float64          `json:"degradation_pct"`
	Schemes        []WireScheme     `json:"schemes,omitempty"`
	// Report is the rendered ranked report — byte-identical to what a
	// local (serial or parallel) run of the same request would print.
	Report string `json:"report"`
	// Timings are the exporting run's per-stage wall clocks
	// (observability only, like a local cache hit's).
	Timings []StageTiming `json:"timings,omitempty"`
}

// Validate sanity-checks an imported wire result against the key and
// depth it was requested for. A peer answering for a different key (or
// rendering at the wrong depth) must be treated as a miss, never
// imported — a wrong report here would break the byte-identical
// contract silently.
func (w *WireResult) Validate(key string, topK int) error {
	if topK <= 0 {
		topK = 5
	}
	switch {
	case w.Key != key:
		return fmt.Errorf("pipeline: wire result for key %q, requested %q", w.Key, key)
	case w.TopK != topK:
		return fmt.Errorf("pipeline: wire result rendered at top %d, requested %d", w.TopK, topK)
	case w.Report == "":
		return fmt.Errorf("pipeline: wire result carries no report")
	case w.Ulcp == nil:
		return fmt.Errorf("pipeline: wire result carries no ulcp report")
	}
	return nil
}

// Export serves one cached result in wire form, re-rendered at the
// requested TopK (0 = 5; TopK is outside the cache key, so the exporter
// — who still holds the full artifacts — renders at whatever depth the
// prober's job asked for). ok=false is a cache miss.
func (p *Pipeline) Export(key string, topK int) (*WireResult, bool) {
	cached, ok := p.cache.get(key)
	if !ok {
		return nil, false
	}
	hit := *cached
	if topK <= 0 {
		topK = 5
	}
	hit.Request.TopK = topK
	a := hit.Analysis
	w := &WireResult{
		Key:            key,
		TopK:           topK,
		App:            a.App,
		Threads:        a.Threads(),
		CritSecs:       len(a.CSs),
		Ulcp:           a.Report.Wire(),
		DegradationPct: a.Debug.NormalizedDegradation() * 100,
		Report:         render(&hit),
		Timings:        hit.Timings,
	}
	for _, sr := range hit.Schemes {
		w.Schemes = append(w.Schemes, WireScheme{Sched: sr.Sched.String(), Total: sr.Result.Total.String()})
	}
	return w, true
}

// WireTable wraps an exported verdict table with the key it was served
// under, so importers can reject a misrouted or mismatched response
// exactly like WireResult.Validate does for results — an unverified
// table with wrong verdicts would silently break the byte-identical
// contract of every run that consults it.
type WireTable struct {
	Key   string             `json:"key"`
	Table *ulcp.VerdictTable `json:"table"`
}

// Validate checks an imported wire table against the key it was
// requested under.
func (w *WireTable) Validate(key string) error {
	switch {
	case w.Key != key:
		return fmt.Errorf("pipeline: wire table for key %q, requested %q", w.Key, key)
	case w.Table == nil || w.Table.Verdicts == nil:
		return fmt.Errorf("pipeline: wire table carries no verdicts")
	}
	return nil
}

// ExportTable serves one cached verdict table (refreshing its recency).
// The table itself is already wire-shaped — the shard protocol ships
// tables with every request — so the only addition is the key echo.
func (p *Pipeline) ExportTable(key string) (*WireTable, bool) {
	t, ok := p.tables.get(key)
	if !ok {
		return nil, false
	}
	return &WireTable{Key: key, Table: t}, true
}

// ImportTable adopts a verdict table computed elsewhere under the given
// key. The caller vouches that the key was derived from the same
// (trace digest, identify options) tuple — tables are deterministic
// functions of that tuple, so a correctly-keyed import is
// indistinguishable from a local build. Nil or verdict-less tables are
// rejected.
func (p *Pipeline) ImportTable(key string, t *ulcp.VerdictTable) bool {
	if p.tables == nil || key == "" || t == nil || t.Verdicts == nil {
		return false
	}
	p.tables.put(key, t, 0)
	return true
}

// CacheKeyFor reports the normalized result-cache key for a request,
// and whether the request is cacheable at all (and therefore worth
// probing peers for).
func (p *Pipeline) CacheKeyFor(req Request) (string, bool) {
	if p.cache == nil {
		return "", false
	}
	req = req.normalize()
	if !req.cacheable() {
		return "", false
	}
	return req.CacheKey(), true
}

// TableKeyFor reports the verdict-table cache key for a request ("",
// false for pointer-identified inputs that cannot be shared).
func (p *Pipeline) TableKeyFor(req Request) (string, bool) {
	if p.tables == nil {
		return "", false
	}
	key := tableKey(req.normalize())
	return key, key != ""
}

// HasResult reports whether a result-cache key is populated, without
// touching its recency.
func (p *Pipeline) HasResult(key string) bool { return p.cache.peek(key) }

// HasTable reports whether a verdict-table key is populated, without
// touching its recency.
func (p *Pipeline) HasTable(key string) bool { return p.tables.peek(key) }

// RecentResultKeys lists up to n result-cache keys, most recent first —
// the cache-population hints gossiped to peers.
func (p *Pipeline) RecentResultKeys(n int) []string { return p.cache.keys(n) }

// HasDigestCached reports whether any cached artifact — a finished
// result or a verdict table — derives from the given trace digest.
// Both caches key by leading content digest, so this is a prefix probe
// over the key sets; recency is untouched. The stealer uses it for
// hint-driven victim ordering: stealing a job whose digest is cached
// here settles from cache instead of re-running the pipeline.
func (p *Pipeline) HasDigestCached(digest string) bool {
	if digest == "" {
		return false
	}
	prefix := digest + "|"
	return p.cache.hasKeyPrefix(prefix) || p.tables.hasKeyPrefix(prefix)
}
