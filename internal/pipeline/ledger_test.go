package pipeline

import (
	"math/rand"
	"sync"
	"testing"

	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

func mkGroups(sizes ...int) [][]*trace.CritSec {
	gs := make([][]*trace.CritSec, len(sizes))
	for i, n := range sizes {
		gs[i] = make([]*trace.CritSec, n)
	}
	return gs
}

// TestRangeLedgerCoversExactlyOnce: for a spread of cost shapes and
// executor counts, draining the ledger yields contiguous, non-empty,
// non-overlapping ranges whose union is exactly [0, n).
func TestRangeLedgerCoversExactlyOnce(t *testing.T) {
	cases := []struct {
		name      string
		groups    [][]*trace.CritSec
		executors int
		factor    int
	}{
		{"empty", mkGroups(), 3, 0},
		{"single", mkGroups(5), 3, 0},
		{"uniform", mkGroups(1, 1, 1, 1), 2, 0},
		{"hot-head", mkGroups(100, 1, 1, 1, 1, 1), 3, 0},
		{"hot-tail", mkGroups(1, 1, 1, 1, 1, 100), 3, 0},
		{"ramp", mkGroups(2, 3, 4, 5, 6, 7, 8), 4, 0},
		{"one-executor", mkGroups(3, 3, 3, 3), 1, 0},
		{"fine-grain", mkGroups(4, 4, 4, 4, 4, 4, 4, 4), 2, 8},
		{"wide", mkGroups(1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2), 5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewRangeLedger(groupCosts(tc.groups), tc.executors, tc.factor)
			next := 0
			for {
				rng, ok := l.Next()
				if !ok {
					break
				}
				if rng.Len() <= 0 {
					t.Fatalf("empty chunk %+v", rng)
				}
				if rng.Start != next {
					t.Fatalf("chunk %+v not contiguous with frontier %d", rng, next)
				}
				next = rng.End
			}
			if next != len(tc.groups) {
				t.Fatalf("ledger drained %d of %d groups", next, len(tc.groups))
			}
			if l.Remaining() != 0 {
				t.Fatalf("Remaining() = %d after drain", l.Remaining())
			}
			// A drained ledger stays drained.
			if _, ok := l.Next(); ok {
				t.Fatal("Next() produced a chunk after the drain")
			}
		})
	}
}

// TestRangeLedgerIsolatesHotGroups: the dominant group must not drag
// its neighbors into one giant chunk — that would serialize the drain
// behind whoever pulled it.
func TestRangeLedgerIsolatesHotGroups(t *testing.T) {
	l := NewRangeLedger(groupCosts(mkGroups(100, 1, 1, 1, 1, 1)), 3, 0)
	first, ok := l.Next()
	if !ok || first.Len() != 1 {
		t.Fatalf("hot-lock chunk = %+v, want it isolated to one group", first)
	}
}

// TestRangeLedgerMergeDeterminism is the steal-range ledger's merge
// contract, table-driven over real fixtures: however many executors
// pull chunks, in whatever interleaving, slot-indexed reports merged in
// group order equal the serial pass pair-for-pair.
func TestRangeLedgerMergeDeterminism(t *testing.T) {
	cases := []struct {
		app       string
		executors int
		factor    int
	}{
		{"pbzip2", 2, 0},
		{"pbzip2", 5, 4},
		{"mysql", 2, 0},
		{"mysql", 3, 0},
		{"mysql", 8, 2},
		{"openldap", 3, 0},
		{"openldap", 4, 6},
	}
	for _, tc := range cases {
		t.Run(tc.app, func(t *testing.T) {
			job := recordedJob(t, tc.app)
			serial := ulcp.MergeReports(func() []*ulcp.Report {
				reps := make([]*ulcp.Report, len(job.Groups))
				for i, g := range job.Groups {
					reps[i] = ulcp.IdentifyShardWithVerdicts(job.Trace, g, job.Opts, job.Table)
				}
				return reps
			}()...)

			// Simulated cluster: executors race for chunks with random
			// per-chunk delays, so chunk→executor placement differs run
			// to run — the merge must not care.
			ledger := NewRangeLedger(groupCosts(job.Groups), tc.executors, tc.factor)
			reports := make([]*ulcp.Report, len(job.Groups))
			var wg sync.WaitGroup
			for e := 0; e < tc.executors; e++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						chunk, ok := ledger.Next()
						if !ok {
							return
						}
						if rng.Intn(2) == 0 {
							// Jitter placement between runs.
							for i := 0; i < rng.Intn(1000); i++ {
								_ = i
							}
						}
						for i := chunk.Start; i < chunk.End; i++ {
							reports[i] = ulcp.IdentifyShardWithVerdicts(job.Trace, job.Groups[i], job.Opts, job.Table)
						}
					}
				}(int64(e))
			}
			wg.Wait()
			merged := ulcp.MergeReports(reports...)
			reportsEqual(t, tc.app, merged, serial)
		})
	}
}
