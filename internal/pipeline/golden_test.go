package pipeline

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report files")

// TestGoldenReports pins the ranked ULCP reports for two fixture
// workloads byte-for-byte against committed goldens, for both the
// serial and the 4-worker pipeline. This is a stronger check than
// serial ≡ parallel alone: it also catches changes that alter both
// paths identically (ranking tweaks, formatting drift, cost-model
// regressions) so report changes are always explicit in review.
//
// Regenerate with: go test ./internal/pipeline/ -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"pbzip2", Request{App: "pbzip2", Threads: 2, Scale: 0.2, Seed: 3, TopK: 5, Schemes: true}},
		{"mysql", Request{App: "mysql", Threads: 4, Scale: 0.2, Seed: 7, TopK: 5, DetectRaces: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialReq := tc.req
			serialReq.Workers = 1
			serial, err := Run(serialReq)
			if err != nil {
				t.Fatal(err)
			}
			parReq := tc.req
			parReq.Workers = 4
			par, err := Run(parReq)
			if err != nil {
				t.Fatal(err)
			}
			if par.Report != serial.Report {
				t.Fatalf("4-worker report differs from serial:\nserial:\n%s\nparallel:\n%s",
					serial.Report, par.Report)
			}

			goldenPath := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(serial.Report), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Report != string(want) {
				t.Fatalf("report drifted from %s (rerun with -update if intentional):\nwant:\n%s\ngot:\n%s",
					goldenPath, want, serial.Report)
			}
		})
	}
}
