package pipeline

import (
	"sync"

	"perfplay/internal/trace"
)

// RangeLedger is the steal-aware successor to static cost partitioning:
// a shared frontier over the sorted lock groups from which every
// executor — the local pool and each peer — *pulls* contiguous chunks
// until nothing is left. A slow or overloaded executor simply stops
// pulling, and the groups a static split would have stranded behind it
// migrate to whoever is still hungry; a failed executor forfeits only
// the chunk it held.
//
// Chunks follow guided self-scheduling: each pull takes roughly
// remaining/(factor·executors) of the outstanding estimated cost, so
// early chunks are large (amortizing per-chunk HTTP overhead — each
// peer chunk ships the verdict table) and late chunks are small (the
// tail balances to within one small chunk of perfectly even).
//
// Determinism is unaffected by any of this: chunks are ranges of group
// indices, every group's report lands in its own index slot, and the
// merge reads the slots in group order — so WHO computed a group can
// never change WHAT the merged report says.
type RangeLedger struct {
	mu        sync.Mutex
	costs     []int64
	next      int   // first unclaimed group index
	remaining int64 // summed cost of groups[next:]
	divisor   int64 // factor · executors, the quantum denominator
}

// defaultChunkFactor is how many chunks per executor a perfectly
// uniform drain would produce; >1 is what creates the migration slack.
const defaultChunkFactor = 3

// NewRangeLedger builds a ledger over per-group costs for the given
// executor count. factor <= 0 selects the default.
func NewRangeLedger(costs []int64, executors, factor int) *RangeLedger {
	if factor <= 0 {
		factor = defaultChunkFactor
	}
	if executors < 1 {
		executors = 1
	}
	var total int64
	for _, c := range costs {
		total += c
	}
	return &RangeLedger{
		costs:     costs,
		remaining: total,
		divisor:   int64(factor) * int64(executors),
	}
}

// Next claims the next chunk of the frontier for the caller. ok=false
// means the ledger is drained. Every returned range is non-empty,
// contiguous with its predecessor, and disjoint from every other
// returned range; the union over all calls is exactly [0, len(costs)).
func (l *RangeLedger) Next() (ShardRange, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next >= len(l.costs) {
		return ShardRange{}, false
	}
	target := l.remaining / l.divisor
	var acc int64
	end := l.next
	// Always take at least one group; stop once the chunk would
	// meaningfully overshoot the quantum (the half-cost slack keeps a
	// single hot lock from dragging its neighbors into its chunk).
	for end < len(l.costs) && (acc == 0 || acc+l.costs[end]/2 <= target) {
		acc += l.costs[end]
		end++
	}
	rng := ShardRange{Start: l.next, End: end}
	l.next = end
	l.remaining -= acc
	return rng, true
}

// Remaining counts unclaimed groups (observability and tests).
func (l *RangeLedger) Remaining() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.costs) - l.next
}

// groupCosts estimates each lock group's classification cost as the
// squared group size — an upper bound on the cross-thread pairs a shard
// can enumerate — plus one so even empty groups cost a pull.
func groupCosts(groups [][]*trace.CritSec) []int64 {
	costs := make([]int64, len(groups))
	for i, g := range groups {
		costs[i] = int64(len(g))*int64(len(g)) + 1
	}
	return costs
}
