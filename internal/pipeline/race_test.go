package pipeline

import (
	"runtime"
	"testing"
)

// TestConcurrentStagesRaceFree reproduces the multi-core daemon/bench
// shape on this (possibly single-CPU) host: several Ps, a wide pool,
// and the scheme + quantify fan-outs replaying shared traces. Run with
// -race; it guards the trace-warming in the record/classify stages,
// without which the lazy PerThread/LockOrder caches race.
func TestConcurrentStagesRaceFree(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for i := 0; i < 3; i++ {
		_, err := Run(Request{
			App: "mysql", Threads: 4, Scale: 0.2, Seed: int64(i),
			Workers: 8, Schemes: true, VerifyTheorem1: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
