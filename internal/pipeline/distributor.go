package pipeline

import (
	"bytes"
	"fmt"
	"sync"

	"perfplay/internal/corpus"
	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

// ShardJob carries everything an executor — local or on a peer node —
// needs to run a range of classification shards: the trace, its sorted
// lock groups, the identification options, and the precomputed shared
// verdict table that makes every shard a replay-free pure function (see
// ulcp.BuildVerdictTable).
type ShardJob struct {
	Trace  *trace.Trace
	Groups [][]*trace.CritSec
	Opts   ulcp.Options
	Table  *ulcp.VerdictTable

	// TraceID and SpanID are the owning job's distributed-tracing
	// context; executors forward them with each range so a worker's
	// shard spans land under the coordinator's trace. Empty for
	// untraced runs.
	TraceID string
	SpanID  string

	// blob lazily serializes the trace in canonical binary form; peers
	// reference the job's trace by this blob's content digest and
	// receive the bytes only when their corpus misses it. preset, when
	// the caller already knows the canonical digest (the pipeline's
	// digest memo), lets Digest answer without serializing at all.
	blobOnce sync.Once
	blobData []byte
	blobDig  string
	blobErr  error
	preset   string

	// byID lazily indexes every critical section by ID — shared by all
	// peer executors of the job, which each need it to rehydrate wire
	// reports.
	byIDOnce sync.Once
	byID     map[int]*trace.CritSec
}

// NewShardJob assembles a shard job from a classify stage's artifacts.
func NewShardJob(tr *trace.Trace, groups [][]*trace.CritSec, opts ulcp.Options, table *ulcp.VerdictTable) *ShardJob {
	return &ShardJob{Trace: tr, Groups: groups, Opts: opts, Table: table}
}

// Blob returns the job's canonical binary serialization and its content
// digest, computing both at most once. Every peer interaction is keyed
// by this digest — not by any digest the trace may have had in a corpus
// (which could address a JSON encoding of the same events) — so the
// bytes a worker parses are exactly the bytes the coordinator hashed.
func (j *ShardJob) Blob() (digest string, data []byte, err error) {
	j.blobOnce.Do(func() {
		var buf bytes.Buffer
		if j.blobErr = j.Trace.WriteBinary(&buf); j.blobErr != nil {
			return
		}
		j.blobData = buf.Bytes()
		j.blobDig = corpus.Digest(j.blobData)
	})
	return j.blobDig, j.blobData, j.blobErr
}

// PresetDigest seeds the canonical digest from a prior job over the
// same trace content, so executors that only need to *name* the trace
// (every peer that already holds the blob) skip the serialize-and-hash
// entirely. Callers must only preset a digest that Blob would compute.
func (j *ShardJob) PresetDigest(d string) { j.preset = d }

// Digest returns the canonical blob digest, serializing the trace only
// when no preset is available.
func (j *ShardJob) Digest() (string, error) {
	if j.preset != "" {
		return j.preset, nil
	}
	d, _, err := j.Blob()
	return d, err
}

// CanonicalDigest reports the digest if this job established one
// (preset, or computed by an executor); empty otherwise. Only call it
// after Distributor.Run has returned — it reads the lazily-computed
// state without synchronization.
func (j *ShardJob) CanonicalDigest() string {
	if j.preset != "" {
		return j.preset
	}
	return j.blobDig
}

// CSIndex returns the job's critical sections indexed by ID, built at
// most once and shared across executors.
func (j *ShardJob) CSIndex() map[int]*trace.CritSec {
	j.byIDOnce.Do(func() {
		j.byID = make(map[int]*trace.CritSec)
		for _, g := range j.Groups {
			for _, cs := range g {
				j.byID[cs.ID] = cs
			}
		}
	})
	return j.byID
}

// ShardRange is a contiguous run [Start, End) of sorted lock-group
// indices — the unit of work handed to one executor.
type ShardRange struct {
	Start, End int
}

// Len reports how many groups the range covers.
func (r ShardRange) Len() int { return r.End - r.Start }

// ShardExecutor executes one range of lock-group shards and returns one
// report per group, indexed rng.Start..rng.End-1. Implementations must
// be pure relays: the report for group i must equal
// ulcp.IdentifyShardWithVerdicts(job.Trace, job.Groups[i], job.Opts,
// job.Table) run anywhere — that equivalence is what lets the
// distributor place ranges on any node (or re-run them locally after a
// peer failure) without changing the merged output.
type ShardExecutor interface {
	// Name identifies the executor in fallback diagnostics.
	Name() string
	ExecuteShards(job *ShardJob, rng ShardRange) ([]*ulcp.Report, error)
}

// LocalExecutor is the name under which the distributor's own node
// appears in assignment stats and fallback diagnostics.
const LocalExecutor = "local"

// Distributor is the pipeline's scheduling policy for fanning
// classification shards out across nodes. Scheduling is pull-based
// work-stealing over a RangeLedger: the local pool and every peer
// repeatedly claim the next cost-sized chunk of sorted lock groups
// until the ledger drains, so a slow or overloaded peer keeps only the
// chunk it is holding while the rest of "its" share migrates to faster
// executors mid-classify. A failed chunk is re-run locally and its
// executor stops pulling. Reports land in per-group index slots and
// merge in group order — so a 3-node run is byte-identical to the
// serial path no matter which peers survived or how chunks migrated.
type Distributor struct {
	// Peers are the remote executors. An empty slice runs everything
	// locally.
	Peers []ShardExecutor
	// ChunkFactor tunes ledger chunk sizing: ~ChunkFactor chunks per
	// executor on a uniform drain (0 = the ledger default). Larger
	// values migrate load at finer grain but ship the verdict table
	// more often.
	ChunkFactor int
	// OnFallback, when set, observes each peer failure just before its
	// range is re-run locally (logging, metrics, tests). job carries
	// the failed range's trace context so the observer can attribute
	// the fallback to the originating distributed trace.
	OnFallback func(job *ShardJob, peer string, rng ShardRange, err error)

	mu        sync.Mutex
	fallbacks int
	assigned  map[string]int
}

// Fallbacks reports how many peer ranges have been re-run locally since
// construction.
func (d *Distributor) Fallbacks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fallbacks
}

// Assignments reports how many groups each executor has computed since
// construction, keyed by executor name (LocalExecutor for this node,
// including fallback re-runs). It is how tests — and operators reading
// logs — observe load-skew migration.
func (d *Distributor) Assignments() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.assigned))
	for k, v := range d.assigned {
		out[k] = v
	}
	return out
}

func (d *Distributor) recordAssigned(name string, groups int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.assigned == nil {
		d.assigned = make(map[string]int)
	}
	d.assigned[name] += groups
}

// Run executes the job's shards across the local node and all peers and
// returns the merged report. pool bounds local shard concurrency (both
// for locally claimed chunks and for fallback re-runs).
func (d *Distributor) Run(job *ShardJob, pool *Pool) *ulcp.Report {
	n := len(job.Groups)
	reports := make([]*ulcp.Report, n)
	ledger := NewRangeLedger(groupCosts(job.Groups), 1+len(d.Peers), d.ChunkFactor)

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for _, ex := range d.Peers {
		// Claim each peer's first chunk before the local drain starts,
		// so every peer engages even on jobs small enough for the local
		// pool to finish in the time a goroutine takes to get scheduled.
		first, ok := ledger.Next()
		if !ok {
			break
		}
		wg.Add(1)
		go func(ex ShardExecutor, rng ShardRange) {
			defer wg.Done()
			// A panic on this goroutine would escape the job worker's
			// recover and kill the whole daemon, so it is re-raised on
			// the caller after the fan-out drains (mirroring Pool.Each).
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				reps, err := executeShardsSafely(ex, job, rng)
				if err == nil && len(reps) != rng.Len() {
					err = fmt.Errorf("pipeline: peer returned %d shard reports for %d groups", len(reps), rng.Len())
				}
				if err != nil {
					d.mu.Lock()
					d.fallbacks++
					d.mu.Unlock()
					if d.OnFallback != nil {
						d.OnFallback(job, ex.Name(), rng, err)
					}
					// Peer lost: its chunk runs here, and the peer pulls
					// no further chunks — the rest of the ledger drains
					// through the healthy executors. Shards are pure
					// functions of (trace, group, opts, table), so the
					// merged report cannot tell the difference.
					runShardRange(job, rng, reports, nil)
					d.recordAssigned(LocalExecutor, rng.Len())
					return
				}
				copy(reports[rng.Start:rng.End], reps)
				d.recordAssigned(ex.Name(), rng.Len())
				var ok bool
				if rng, ok = ledger.Next(); !ok {
					return
				}
			}
		}(ex, first)
	}
	for {
		rng, ok := ledger.Next()
		if !ok {
			break
		}
		runShardRange(job, rng, reports, pool)
		d.recordAssigned(LocalExecutor, rng.Len())
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("pipeline: distributor fallback panic: %v", panicked))
	}
	return ulcp.MergeReports(reports...)
}

// executeShardsSafely converts an executor panic — a peer answering
// well-formed JSON with poisonous content can trip one in a client —
// into an error, so a single bad peer response degrades to a local
// fallback instead of crashing the coordinator process.
func executeShardsSafely(ex ShardExecutor, job *ShardJob, rng ShardRange) (reps []*ulcp.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			reps, err = nil, fmt.Errorf("pipeline: executor %s panicked: %v", ex.Name(), r)
		}
	}()
	reps, err = ex.ExecuteShards(job, rng)
	if err == nil {
		for i, rep := range reps {
			if rep == nil {
				return nil, fmt.Errorf("pipeline: executor %s returned a nil report at index %d", ex.Name(), i)
			}
		}
	}
	return reps, err
}

// runShardRange executes one range locally, writing each group's report
// into its slot. A nil pool runs serially (fallback path — the local
// pool may be busy with the local range).
func runShardRange(job *ShardJob, rng ShardRange, reports []*ulcp.Report, pool *Pool) {
	if rng.Len() == 0 {
		return
	}
	run := func(i int) {
		reports[rng.Start+i] = ulcp.IdentifyShardWithVerdicts(job.Trace, job.Groups[rng.Start+i], job.Opts, job.Table)
	}
	if pool == nil {
		for i := 0; i < rng.Len(); i++ {
			run(i)
		}
		return
	}
	pool.Each(rng.Len(), run)
}
