package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-width worker-pool executor for index-addressed tasks.
// It is the pipeline's only concurrency primitive: every parallel stage
// writes its result into a caller-owned slot picked by task index, so
// merge order never depends on goroutine scheduling.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers tasks concurrently.
// Width 1 (or less) degenerates to a plain serial loop over the same
// code path, which is what makes parallel output bit-comparable to the
// serial baseline.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// Each runs fn(0..n-1), blocking until all calls return. With width 1
// the tasks run in index order on the calling goroutine; otherwise they
// are claimed from a shared counter by up to Workers goroutines. A
// panicking task is captured and re-raised on the caller after the
// remaining workers drain, so a daemon can recover it in one place.
func (p *Pool) Each(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
					// Drain the counter so sibling workers stop
					// picking up new tasks.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("pipeline: worker panic: %v", panicked))
	}
}
