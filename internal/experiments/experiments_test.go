package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick runs everything at a small scale: these tests assert the paper's
// qualitative shapes, which must hold at any scale.
func quickCfg() Config {
	return Config{Scale: 0.1, Seed: 42, Replays: 4}
}

func TestTable1Shape(t *testing.T) {
	tb := Table1(quickCfg())
	if len(tb.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 applications", len(tb.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tb.Rows {
		byName[r[0]] = r
	}
	// blackscholes has no locks at all.
	if byName["blackscholes"][3] != "0" {
		t.Errorf("blackscholes locks = %s, want 0", byName["blackscholes"][3])
	}
	// canneal, streamcluster, swaptions: zero ULCPs of every class.
	for _, name := range []string{"canneal", "streamcluster", "swaptions"} {
		for col := 4; col <= 7; col++ {
			if byName[name][col] != "0" {
				t.Errorf("%s column %d = %s, want 0", name, col, byName[name][col])
			}
		}
	}
	// fluidanimate has the most dynamic locks among PARSEC.
	fl, _ := strconv.Atoi(byName["fluidanimate"][3])
	for _, name := range []string{"bodytrack", "canneal", "dedup", "vips", "x264"} {
		n, _ := strconv.Atoi(byName[name][3])
		if n >= fl {
			t.Errorf("%s locks %d >= fluidanimate %d", name, n, fl)
		}
	}
}

func TestFigure2Growth(t *testing.T) {
	f := Figure2(quickCfg())
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) != 5 {
			t.Fatalf("%s: points = %d, want 5", s.Label, len(s.Points))
		}
		if s.Points[4].Y <= s.Points[0].Y {
			t.Errorf("%s: ULCPs did not grow with threads (%v -> %v)",
				s.Label, s.Points[0].Y, s.Points[4].Y)
		}
	}
}

func TestFigure13FidelityShape(t *testing.T) {
	f := Figure13(quickCfg())
	series := map[string]map[string][2]float64{} // scheme -> app -> (mean, std)
	for _, s := range f.Series {
		m := map[string][2]float64{}
		for _, p := range s.Points {
			m[p.X] = [2]float64{p.Y, p.Err}
		}
		series[s.Label] = m
	}
	for app := range series["ELSC-S"] {
		elsc := series["ELSC-S"][app]
		orig := series["ORIG-S"][app]
		sync := series["SYNC-S"][app]
		mem := series["MEM-S"][app]
		if elsc[0] == 0 {
			continue // lock-free app
		}
		// Enforced schemes are stable; ELSC is never slower than SYNC/MEM.
		if elsc[1] != 0 || sync[1] != 0 || mem[1] != 0 {
			t.Errorf("%s: enforced schemes must have zero variance (elsc σ=%v sync σ=%v mem σ=%v)",
				app, elsc[1], sync[1], mem[1])
		}
		if sync[0] < elsc[0] || mem[0] < elsc[0] {
			t.Errorf("%s: ELSC (%v) must not exceed SYNC (%v) or MEM (%v)",
				app, elsc[0], sync[0], mem[0])
		}
		// ELSC tracks the ORIG mean closely (performance precision).
		if orig[0] > 0 {
			ratio := elsc[0] / orig[0]
			if ratio < 0.95 || ratio > 1.05 {
				t.Errorf("%s: ELSC/ORIG mean ratio = %.3f, want ~1", app, ratio)
			}
		}
	}
}

func TestFigure14ZeroApps(t *testing.T) {
	f := Figure14(quickCfg())
	deg := map[string]float64{}
	for _, p := range f.Series[0].Points {
		deg[p.X] = p.Y
	}
	for _, name := range []string{"blackscholes", "canneal", "streamcluster", "swaptions"} {
		if deg[name] != 0 {
			t.Errorf("%s degradation = %v, want 0", name, deg[name])
		}
	}
	for _, name := range []string{"openldap", "mysql"} {
		if deg[name] <= 0 {
			t.Errorf("%s degradation = %v, want > 0", name, deg[name])
		}
	}
	if deg["average"] <= 0 {
		t.Error("average degradation must be positive")
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2(quickCfg())
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		name, groups, p := r[0], r[1], r[2]
		if name == "blackscholes" || name == "swaptions" {
			if groups != "0" {
				t.Errorf("%s groups = %s, want 0", name, groups)
			}
			continue
		}
		if groups == "0" || groups == "error" {
			t.Errorf("%s groups = %s, want > 0", name, groups)
		}
		if !strings.HasSuffix(p, "%") {
			t.Errorf("%s P = %q, want a percentage", name, p)
		}
	}
}

func TestTable3DLSReducesOverhead(t *testing.T) {
	tb := Table3(quickCfg())
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v
	}
	for _, r := range tb.Rows {
		if r[1] == "0" {
			continue
		}
		wo, w := parse(r[1]), parse(r[2])
		if w > wo {
			t.Errorf("%s: DLS overhead %.1f%% exceeds non-DLS %.1f%%", r[0], w, wo)
		}
	}
}

func TestFigure19Shapes(t *testing.T) {
	figs := Figure19(Config{Scale: 0.5, Seed: 42})
	if len(figs) != 2 {
		t.Fatalf("figures = %d, want 2", len(figs))
	}
	// 19b: both bugs' normalized impact declines as the input grows.
	for _, s := range figs[1].Series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if first < last {
			t.Errorf("19b %s: impact grew with input (%v -> %v), want declining", s.Label, first, last)
		}
	}
}

func TestFigure15and16Run(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweeps are slow")
	}
	for _, f := range Figure15(quickCfg()) {
		if len(f.Series) != 3 {
			t.Fatalf("figure15 series = %d", len(f.Series))
		}
	}
	for _, f := range Figure16(quickCfg()) {
		if len(f.Series) != 3 {
			t.Fatalf("figure16 series = %d", len(f.Series))
		}
	}
}

func TestTableLEShape(t *testing.T) {
	tb := TableLE(quickCfg())
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[1] == "error" {
			t.Fatalf("%s errored: %v", r[0], r)
		}
	}
	// canneal (pure conflicts) must show a meaningful abort rate, and
	// mysql (read-heavy) a much lower one.
	rates := map[string]string{}
	for _, r := range tb.Rows {
		rates[r[0]] = r[5]
	}
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v
	}
	if parse(rates["bodytrack"]) <= parse(rates["mysql"]) {
		t.Fatalf("abort rates: bodytrack %s should exceed mysql %s", rates["bodytrack"], rates["mysql"])
	}
}
