// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6) on the simulated substrate. Each entry point returns
// a report.Table or report.Figure whose rows/series mirror the paper's;
// EXPERIMENTS.md records the measured values next to the published ones.
package experiments

import (
	"fmt"

	"perfplay/internal/core"
	"perfplay/internal/elision"
	"perfplay/internal/replay"
	"perfplay/internal/report"
	"perfplay/internal/sim"
	"perfplay/internal/staticcheck"
	"perfplay/internal/stats"
	"perfplay/internal/ulcp"
	"perfplay/internal/vtime"
	"perfplay/internal/workload"
)

// Config scales the whole harness.
type Config struct {
	// Scale multiplies every workload's iteration counts. 1.0 is paper
	// scale; tests use smaller values.
	Scale float64
	// Seed drives recording determinism.
	Seed int64
	// Replays is the per-scheme replay count for Fig. 13 (default 10, as
	// in the paper).
	Replays int
	// LocksetCost is the Table 3 maintenance cost per lockset member
	// (default 12 ticks against a 40-tick lock acquisition).
	LocksetCost vtime.Duration
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Replays == 0 {
		c.Replays = 10
	}
	if c.LocksetCost == 0 {
		c.LocksetCost = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// identify records an app and runs identification only (Table 1, Fig. 2).
func identify(app *workload.App, wcfg workload.Config) (*sim.Result, *ulcp.Report) {
	p := app.Build(wcfg)
	rec := sim.Run(p, sim.Config{Seed: wcfg.Seed})
	css := rec.Trace.ExtractCS()
	rep := ulcp.IdentifySharded(rec.Trace, css, ulcp.Options{})
	return rec, rep
}

// analyze runs the full pipeline on an app.
func analyze(app *workload.App, wcfg workload.Config, ccfg core.Config) (*core.Analysis, error) {
	p := app.Build(wcfg)
	ccfg.Sim.Seed = wcfg.Seed
	return core.Analyze(p, ccfg)
}

// Table1 reproduces Table 1: the ULCP breakdown of all sixteen
// applications at two threads.
func Table1(cfg Config) *report.Table {
	cfg = cfg.withDefaults()
	t := report.NewTable("Table 1: Breakdown of ULCPs (2 threads)",
		"application", "LOC", "size", "#locks", "NL", "RR", "DW", "benign", "TLCP")
	for _, app := range workload.All() {
		rec, rep := identify(app, workload.Config{Threads: 2, Scale: cfg.Scale, Seed: cfg.Seed})
		t.AddRow(app.Name, app.LOC, app.BinSize,
			fmt.Sprint(rec.Trace.DynamicLocks()),
			fmt.Sprint(rep.Counts[ulcp.NullLock]),
			fmt.Sprint(rep.Counts[ulcp.ReadRead]),
			fmt.Sprint(rep.Counts[ulcp.DisjointWrite]),
			fmt.Sprint(rep.Counts[ulcp.Benign]),
			fmt.Sprint(rep.Counts[ulcp.TLCP]))
	}
	if cfg.Scale != 1.0 {
		t.AddNote("workload scale %.2f of paper scale", cfg.Scale)
	}
	return t
}

// Figure2 reproduces Fig. 2: ULCP count growth with thread count for
// openldap, pbzip2 and bodytrack.
func Figure2(cfg Config) *report.Figure {
	cfg = cfg.withDefaults()
	f := report.NewFigure("Figure 2: number of ULCPs vs. threads", "#ULCPs")
	// The sweep reuses Table 1 scale divided by 4 to keep the 32-thread
	// runs tractable; growth shape is scale-invariant.
	scale := cfg.Scale * 0.25
	for _, name := range []string{"openldap", "pbzip2", "bodytrack"} {
		app, _ := workload.Get(name)
		s := f.Add(name)
		for _, th := range []int{2, 4, 8, 16, 32} {
			_, rep := identify(app, workload.Config{Threads: th, Scale: scale, Seed: cfg.Seed})
			s.AddPoint(fmt.Sprint(th), float64(rep.NumULCPs()), 0)
		}
	}
	f.AddNote("run at %.2fx of Table 1 scale", scale)
	return f
}

// Figure13 reproduces Fig. 13: replayed execution time (mean ± σ over N
// replays) for MEM-S, SYNC-S, ELSC-S and ORIG-S on the PARSEC benchmarks.
func Figure13(cfg Config) *report.Figure {
	cfg = cfg.withDefaults()
	f := report.NewFigure("Figure 13: performance fidelity of replay schemes", "replayed time (ticks)")
	schemes := []replay.Scheduler{replay.MemS, replay.SyncS, replay.ELSCS, replay.OrigS}
	series := make(map[replay.Scheduler]*report.Series, len(schemes))
	for _, s := range schemes {
		series[s] = f.Add(s.String())
	}
	for _, app := range workload.Parsec() {
		p := app.Build(workload.Config{Threads: 2, Scale: cfg.Scale, Seed: cfg.Seed})
		rec := sim.Run(p, sim.Config{Seed: cfg.Seed})
		for _, sch := range schemes {
			var totals []vtime.Duration
			for r := 0; r < cfg.Replays; r++ {
				res, err := replay.Run(rec.Trace, replay.Options{Sched: sch, Seed: int64(r + 1)})
				if err != nil {
					continue
				}
				totals = append(totals, res.Total)
			}
			sample := stats.FromDurations(totals)
			series[sch].AddPoint(app.Name, sample.Mean(), sample.Std())
		}
	}
	f.AddNote("%d replays per scheme; error bars are ±σ", cfg.Replays)
	return f
}

// Figure14 reproduces Fig. 14: normalized execution time split into ULCP
// performance degradation and CPU-time wasting per thread for all apps.
func Figure14(cfg Config) *report.Figure {
	cfg = cfg.withDefaults()
	f := report.NewFigure("Figure 14: normalized ULCP performance impact (2 threads)", "fraction of execution time")
	deg := f.Add("performance degradation")
	waste := f.Add("CPU time wasting per thread")
	var sumDeg, sumWaste float64
	n := 0
	for _, app := range workload.All() {
		a, err := analyze(app, workload.Config{Threads: 2, Scale: cfg.Scale, Seed: cfg.Seed}, core.Config{})
		if err != nil {
			deg.AddPoint(app.Name, 0, 0)
			waste.AddPoint(app.Name, 0, 0)
			continue
		}
		d := a.Debug.NormalizedDegradation()
		w := a.Debug.CPUWastePerThread(2)
		deg.AddPoint(app.Name, d, 0)
		waste.AddPoint(app.Name, w, 0)
		sumDeg += d
		sumWaste += w
		n++
	}
	if n > 0 {
		deg.AddPoint("average", sumDeg/float64(n), 0)
		waste.AddPoint("average", sumWaste/float64(n), 0)
	}
	return f
}

// table2Apps is the application subset Table 2 reports.
var table2Apps = []string{
	"openldap", "mysql", "pbzip2", "transmissionBT", "handbrake",
	"blackscholes", "bodytrack", "facesim", "fluidanimate", "swaptions",
}

// Table2 reproduces Table 2: grouped ULCP code regions and the relative
// optimization opportunity of the most beneficial one (ULCP1.P).
func Table2(cfg Config) *report.Table {
	cfg = cfg.withDefaults()
	t := report.NewTable("Table 2: grouped ULCP code regions and top opportunity",
		"application", "#grouped ULCPs", "ULCP1.P")
	for _, name := range table2Apps {
		app, _ := workload.Get(name)
		a, err := analyze(app, workload.Config{Threads: 2, Scale: cfg.Scale, Seed: cfg.Seed}, core.Config{})
		if err != nil {
			t.AddRow(name, "error", err.Error())
			continue
		}
		groups := a.Debug.Groups
		if len(groups) == 0 {
			t.AddRow(name, "0", "0")
			continue
		}
		t.AddRow(name, fmt.Sprint(len(groups)), fmt.Sprintf("%.1f%%", groups[0].P*100))
	}
	return t
}

// Table3 reproduces Table 3: lockset maintenance overhead with and without
// the dynamic locking strategy, on the PARSEC benchmarks.
func Table3(cfg Config) *report.Table {
	cfg = cfg.withDefaults()
	t := report.NewTable("Table 3: lockset runtime overhead w/o and w/ DLS",
		"application", "w/o DLS", "w/ DLS")
	for _, app := range workload.Parsec() {
		a, err := analyze(app, workload.Config{Threads: 2, Scale: cfg.Scale, Seed: cfg.Seed}, core.Config{})
		if err != nil {
			t.AddRow(app.Name, "error", err.Error())
			continue
		}
		base := a.FreeReplay.Total // lockset cost model off
		over := func(dls bool) string {
			if base == 0 {
				return "0" // no locks at all (blackscholes)
			}
			res, err := replay.Run(a.Transformed.Trace, replay.Options{
				Sched: replay.ELSCS, DLS: dls, LocksetCost: cfg.LocksetCost,
			})
			if err != nil {
				return "error"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(res.Total-base)/float64(base))
		}
		t.AddRow(app.Name, over(false), over(true))
	}
	t.AddNote("lockset maintenance cost %d ticks/member (lock acquisition costs 40)", cfg.LocksetCost)
	return t
}

// TableLE is an ablation beyond the paper's tables, quantifying its
// Sec. 2.2 argument against the dynamic alternative: speculative lock
// elision removes ULCP serialization at runtime, but pays aborts and
// wasted work where contention is real — and produces no code-region
// diagnosis. For each application the table reports the locked baseline,
// the PerfPlay ULCP-free replay, the elided run, and LE's abort economy.
func TableLE(cfg Config) *report.Table {
	cfg = cfg.withDefaults()
	t := report.NewTable("Table LE (ablation): PerfPlay transformation vs. speculative lock elision",
		"application", "locked", "ULCP-free", "elided", "LE aborts", "LE abort rate", "LE wasted work")
	for _, name := range []string{"openldap", "mysql", "handbrake", "bodytrack", "canneal", "dedup", "facesim", "fluidanimate", "vips", "x264"} {
		app, _ := workload.Get(name)
		a, err := analyze(app, workload.Config{Threads: 2, Scale: cfg.Scale, Seed: cfg.Seed}, core.Config{})
		if err != nil {
			t.AddRow(name, "error", err.Error())
			continue
		}
		le, err := elision.Run(a.Recorded.Trace, elision.Options{Seed: cfg.Seed})
		if err != nil {
			t.AddRow(name, "error", err.Error())
			continue
		}
		t.AddRow(name,
			fmt.Sprint(a.Debug.Tut),
			fmt.Sprint(a.Debug.Tuft),
			fmt.Sprint(le.Total),
			fmt.Sprint(le.Aborts+le.FalseAborts),
			fmt.Sprintf("%.1f%%", le.AbortRate()*100),
			fmt.Sprint(le.WastedWork))
	}
	t.AddNote("LE: 2 retries, 150-tick abort penalty, 2%% false aborts")
	return t
}

// TableStatic is the Sec. 7.2 ablation: what a static, region-level
// analyzer would report versus PerfPlay's dynamic identification — the
// "abundant false ULCPs" and the ULCP/TLCP unrolling obstacle made
// measurable.
func TableStatic(cfg Config) *report.Table {
	cfg = cfg.withDefaults()
	t := report.NewTable("Table Static (ablation): region-level static analysis vs. dynamic identification",
		"application", "static ULCP pairs", "confirmed", "false positives", "missed dynamic ULCP regions")
	for _, name := range []string{"openldap", "mysql", "pbzip2", "handbrake", "dedup", "facesim", "fluidanimate", "x264"} {
		app, _ := workload.Get(name)
		p := app.Build(workload.Config{Threads: 2, Scale: cfg.Scale, Seed: cfg.Seed})
		rec := sim.Run(p, sim.Config{Seed: cfg.Seed})
		static := staticcheck.Analyze(rec.Trace)
		css := rec.Trace.ExtractCS()
		dyn := ulcp.IdentifySharded(rec.Trace, css, ulcp.Options{})
		static.CompareWithDynamic(dyn)
		claims := 0
		for _, f := range static.Findings {
			if f.Cat.IsULCP() {
				claims++
			}
		}
		t.AddRow(name, fmt.Sprint(claims), fmt.Sprint(static.TruePositive),
			fmt.Sprint(static.FalsePositive), fmt.Sprint(static.Missed))
	}
	t.AddNote("static view: per code region, flow-insensitive (merged access sets)")
	return t
}

// sensitivityApps are the Fig. 15/16 subjects: few, medium and many ULCPs.
var sensitivityApps = []string{"canneal", "bodytrack", "fluidanimate"}

// Figure15 reproduces Fig. 15: ULCP impact vs. thread count — (a)
// performance loss, (b) CPU wasting per thread.
func Figure15(cfg Config) []*report.Figure {
	cfg = cfg.withDefaults()
	fa := report.NewFigure("Figure 15a: performance loss vs. threads", "normalized execution time")
	fb := report.NewFigure("Figure 15b: CPU wasting per thread vs. threads", "normalized CPU time per thread")
	for _, name := range sensitivityApps {
		app, _ := workload.Get(name)
		sa, sb := fa.Add(name), fb.Add(name)
		for _, th := range []int{2, 4, 6, 8} {
			a, err := analyze(app, workload.Config{Threads: th, Scale: cfg.Scale, Seed: cfg.Seed}, core.Config{})
			if err != nil {
				continue
			}
			sa.AddPoint(fmt.Sprint(th), a.Debug.NormalizedDegradation(), 0)
			sb.AddPoint(fmt.Sprint(th), a.Debug.CPUWastePerThread(th), 0)
		}
	}
	return []*report.Figure{fa, fb}
}

// Figure16 reproduces Fig. 16: ULCP impact vs. input size.
func Figure16(cfg Config) []*report.Figure {
	cfg = cfg.withDefaults()
	fa := report.NewFigure("Figure 16a: performance loss vs. input size", "normalized execution time")
	fb := report.NewFigure("Figure 16b: CPU wasting per thread vs. input size", "normalized CPU time per thread")
	inputs := []workload.InputSize{workload.SimSmall, workload.SimMedium, workload.SimLarge}
	for _, name := range sensitivityApps {
		app, _ := workload.Get(name)
		sa, sb := fa.Add(name), fb.Add(name)
		for _, in := range inputs {
			a, err := analyze(app, workload.Config{Threads: 2, Input: in, Scale: cfg.Scale, Seed: cfg.Seed}, core.Config{})
			if err != nil {
				continue
			}
			sa.AddPoint(in.String(), a.Debug.NormalizedDegradation(), 0)
			sb.AddPoint(in.String(), a.Debug.CPUWastePerThread(2), 0)
		}
	}
	return []*report.Figure{fa, fb}
}

// Figure19 reproduces Fig. 19: the two verified case-study bugs, measured
// by running the buggy and the fixed implementation side by side —
// #BUG 1 (openldap spin wait vs. barrier) and #BUG 2 (pbzip2 polling join
// vs. signal/wait).
func Figure19(cfg Config) []*report.Figure {
	cfg = cfg.withDefaults()
	fa := report.NewFigure("Figure 19a: case studies vs. threads", "normalized time")
	fb := report.NewFigure("Figure 19b: case studies vs. input size", "normalized time")

	bug1 := func(wcfg workload.Config) (float64, float64) {
		buggy := sim.Run(workload.MustGet("openldap").Build(wcfg), sim.Config{Seed: wcfg.Seed})
		fixed := sim.Run(workload.BuildOpenldapFixed(wcfg), sim.Config{Seed: wcfg.Seed})
		// #BUG 1 wastes CPU in the release-wait spin loop (poll computes
		// plus spin-lock burn); the barrier fix idles instead.
		waste := float64(buggy.CPUTotal()-fixed.CPUTotal()) / float64(wcfg.Threads) / float64(buggy.Total)
		loss := float64(buggy.Total-fixed.Total) / float64(buggy.Total)
		if waste < 0 {
			waste = 0
		}
		if loss < 0 {
			loss = 0
		}
		return loss, waste
	}
	bug2 := func(wcfg workload.Config) (float64, float64) {
		buggy := sim.Run(workload.MustGet("pbzip2").Build(wcfg), sim.Config{Seed: wcfg.Seed})
		fixed := sim.Run(workload.BuildPbzip2Fixed(wcfg), sim.Config{Seed: wcfg.Seed})
		// #BUG 2's cost is system throughput: the polling join burns CPU
		// and serializes the consumers' checks, so the loss is measured
		// in total CPU time per unit of work.
		loss := float64(buggy.CPUTotal()-fixed.CPUTotal()) / float64(buggy.CPUTotal())
		waste := float64(buggy.CPUTotal()-fixed.CPUTotal()) / float64(wcfg.Threads) / float64(buggy.Total)
		if waste < 0 {
			waste = 0
		}
		if loss < 0 {
			loss = 0
		}
		return loss, waste
	}

	s1a, s2a := fa.Add("BUG1 (waste/thread)"), fa.Add("BUG2 (perf loss)")
	for _, th := range []int{2, 4, 6, 8} {
		wcfg := workload.Config{Threads: th, Scale: cfg.Scale, Seed: cfg.Seed}
		_, w1 := bug1(wcfg)
		l2, _ := bug2(wcfg)
		s1a.AddPoint(fmt.Sprint(th), w1, 0)
		s2a.AddPoint(fmt.Sprint(th), l2, 0)
	}

	s1b, s2b := fb.Add("BUG1 (waste/thread)"), fb.Add("BUG2 (perf loss)")
	labels := []string{"500/32M", "1000/64M", "1500/128M", "2000/256M"}
	scales := []float64{0.25, 0.5, 0.75, 1.0}
	for i, sc := range scales {
		wcfg := workload.Config{Threads: 2, Scale: cfg.Scale * sc, Seed: cfg.Seed}
		_, w1 := bug1(wcfg)
		l2, _ := bug2(wcfg)
		s1b.AddPoint(labels[i], w1, 0)
		s2b.AddPoint(labels[i], l2, 0)
	}
	return []*report.Figure{fa, fb}
}
