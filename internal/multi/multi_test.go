package multi

import (
	"strings"
	"testing"

	"perfplay/internal/core"
	"perfplay/internal/sim"
	"perfplay/internal/vtime"
)

// build constructs a two-region workload; the second region only contends
// when wide is set, modelling an input-dependent opportunity.
func build(seed int64, wide bool) *core.Analysis {
	p := sim.NewProgram("m")
	l1 := p.NewLock("L1")
	l2 := p.NewLock("L2")
	x := p.Mem.Alloc("x", 1)
	y := p.Mem.Alloc("y", 2)
	sa := p.Site("a.c", 10, "always")
	sb := p.Site("b.c", 50, "sometimes")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 8; j++ {
				th.Lock(l1, sa)
				th.Read(x, sa)
				th.Compute(500)
				th.Unlock(l1, sa)
				if wide {
					th.Lock(l2, sb)
					th.Read(y, sb)
					th.Compute(400)
					th.Unlock(l2, sb)
				}
				th.Compute(vtime.Duration(100 + 30*j))
			}
		})
	}
	a, err := core.Analyze(p, core.Config{Sim: sim.Config{Seed: seed}})
	if err != nil {
		panic(err)
	}
	return a
}

func TestMergeConsistentAcrossSeeds(t *testing.T) {
	runs := []*core.Analysis{build(1, true), build(2, true), build(3, true)}
	agg := Merge(runs)
	if agg.Runs != 3 {
		t.Fatalf("runs = %d", agg.Runs)
	}
	if len(agg.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(agg.Groups))
	}
	for _, g := range agg.Groups {
		if !g.Consistent(3) {
			t.Errorf("group %v inconsistent despite identical workloads", g)
		}
		if g.MinP > g.MeanP || g.MeanP > g.MaxP {
			t.Errorf("P ordering broken: %v", g)
		}
	}
	rec := agg.Recommend(1)
	if len(rec) != 1 {
		t.Fatal("no consistent recommendation")
	}
	if rec[0].CR1.File != "a.c" {
		t.Errorf("top recommendation = %v, want the hot a.c region", rec[0].CR1)
	}
}

func TestMergeFlagsInputSensitivity(t *testing.T) {
	// The b.c region only exists in the wide runs: it must not be
	// reported as a consistent opportunity.
	runs := []*core.Analysis{build(1, true), build(2, false)}
	agg := Merge(runs)
	var bGroup *GroupStat
	for _, g := range agg.Groups {
		if g.CR1.File == "b.c" || g.CR2.File == "b.c" {
			bGroup = g
		}
	}
	if bGroup == nil {
		t.Fatal("b.c group missing entirely")
	}
	if bGroup.Consistent(agg.Runs) {
		t.Fatal("input-sensitive group reported as consistent")
	}
	for _, g := range agg.Recommend(10) {
		if g == bGroup {
			t.Fatal("Recommend returned an inconsistent group")
		}
	}
}

func TestSummaryRendering(t *testing.T) {
	agg := Merge([]*core.Analysis{build(1, true), build(2, true)})
	s := agg.Summary(5)
	for _, want := range []string{"aggregated over 2 traces", "a.c", "*"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	agg := Merge(nil)
	if agg.Runs != 0 || len(agg.Groups) != 0 {
		t.Fatal("empty merge not empty")
	}
	if got := agg.Recommend(3); len(got) != 0 {
		t.Fatal("recommendations from nothing")
	}
}
