// Package multi implements the paper's Sec. 6.7 extension: aggregating
// PerfPlay analyses over multiple traces (different seeds, inputs or
// thread counts) so a recommendation is backed by every execution, not
// one. "Input sensitivity will give a great chance for us to make
// PerfPlay more useful, because this may prohibit any code modification
// that could lead to performance improvement in some cases but not all."
package multi

import (
	"fmt"
	"sort"

	"perfplay/internal/core"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// GroupStat is one fused code-region pair viewed across runs.
type GroupStat struct {
	// CR1 and CR2 are the conflated regions (unioned across runs).
	CR1, CR2 trace.Region
	// SeenIn counts the runs in which the group appeared.
	SeenIn int
	// MeanP, MinP and MaxP summarize the group's Eq. 2 share across the
	// runs it appeared in.
	MeanP, MinP, MaxP float64
	// TotalDelta sums the group's ΔT over all runs.
	TotalDelta vtime.Duration
	// Pairs sums the dynamic ULCP count over all runs.
	Pairs int
}

// Consistent reports whether the opportunity held in every aggregated run
// — the safety condition for recommending a code modification.
func (g *GroupStat) Consistent(runs int) bool { return g.SeenIn == runs }

// String renders a report line.
func (g *GroupStat) String() string {
	return fmt.Sprintf("%s <-> %s: P mean %.1f%% [%.1f%%, %.1f%%] in %d run(s), ΔT=%v",
		g.CR1, g.CR2, g.MeanP*100, g.MinP*100, g.MaxP*100, g.SeenIn, g.TotalDelta)
}

// Aggregate is the cross-trace summary.
type Aggregate struct {
	// Runs is the number of analyses aggregated.
	Runs int
	// Groups is sorted by (SeenIn desc, MeanP desc): region pairs that
	// matter everywhere come first.
	Groups []*GroupStat
	// MeanDegradation averages the normalized degradation across runs.
	MeanDegradation float64
}

// Recommend returns the top-k groups that appear in every run.
func (a *Aggregate) Recommend(k int) []*GroupStat {
	var out []*GroupStat
	for _, g := range a.Groups {
		if g.Consistent(a.Runs) {
			out = append(out, g)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// Merge aggregates the fused groups of several analyses. Groups from
// different runs merge when their region pairs overlap (directly or
// crossed), the same criterion as Algorithm 2 within one run.
func Merge(analyses []*core.Analysis) *Aggregate {
	agg := &Aggregate{Runs: len(analyses)}
	type acc struct {
		stat *GroupStat
		ps   []float64
	}
	var accs []*acc
	for _, a := range analyses {
		agg.MeanDegradation += a.Debug.NormalizedDegradation()
		for _, g := range a.Debug.Groups {
			var hit *acc
			for _, c := range accs {
				direct := c.stat.CR1.Overlaps(g.CR1) && c.stat.CR2.Overlaps(g.CR2)
				crossed := c.stat.CR1.Overlaps(g.CR2) && c.stat.CR2.Overlaps(g.CR1)
				if direct || crossed {
					hit = c
					break
				}
			}
			if hit == nil {
				hit = &acc{stat: &GroupStat{CR1: g.CR1, CR2: g.CR2}}
				accs = append(accs, hit)
			}
			hit.stat.CR1 = hit.stat.CR1.Merge(g.CR1)
			hit.stat.CR2 = hit.stat.CR2.Merge(g.CR2)
			hit.stat.TotalDelta += g.DeltaT
			hit.stat.Pairs += g.Count
			hit.ps = append(hit.ps, g.P)
		}
	}
	if agg.Runs > 0 {
		agg.MeanDegradation /= float64(agg.Runs)
	}
	for _, c := range accs {
		st := c.stat
		st.SeenIn = len(c.ps)
		st.MinP, st.MaxP = c.ps[0], c.ps[0]
		sum := 0.0
		for _, p := range c.ps {
			sum += p
			if p < st.MinP {
				st.MinP = p
			}
			if p > st.MaxP {
				st.MaxP = p
			}
		}
		st.MeanP = sum / float64(len(c.ps))
		agg.Groups = append(agg.Groups, st)
	}
	sort.SliceStable(agg.Groups, func(i, j int) bool {
		gi, gj := agg.Groups[i], agg.Groups[j]
		if gi.SeenIn != gj.SeenIn {
			return gi.SeenIn > gj.SeenIn
		}
		if gi.MeanP != gj.MeanP {
			return gi.MeanP > gj.MeanP
		}
		return gi.CR1.Less(gj.CR1)
	})
	return agg
}

// Summary renders the aggregate as a short report.
func (a *Aggregate) Summary(topK int) string {
	s := fmt.Sprintf("aggregated over %d traces; mean degradation %.2f%%\n",
		a.Runs, a.MeanDegradation*100)
	n := 0
	for _, g := range a.Groups {
		marker := " "
		if g.Consistent(a.Runs) {
			marker = "*"
		}
		s += fmt.Sprintf(" %s %s\n", marker, g)
		n++
		if n == topK {
			break
		}
	}
	if a.Runs > 1 {
		s += "(* = opportunity present in every trace: safe to act on)\n"
	}
	return s
}
