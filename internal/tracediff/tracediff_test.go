package tracediff

import (
	"strings"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/workload"
)

func TestProfileBasics(t *testing.T) {
	p := sim.NewProgram("prof")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	sa := p.Site("a.c", 10, "hot")
	sb := p.Site("b.c", 20, "cold")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *sim.Thread) {
			for j := 0; j < 5; j++ {
				th.Lock(l, sa)
				th.Add(x, 1, sa)
				th.Compute(500)
				th.Unlock(l, sa)
				th.Compute(50)
			}
			th.Lock(l, sb)
			th.Read(x, sb)
			th.Unlock(l, sb)
		})
	}
	rec := sim.Run(p, sim.Config{Seed: 2})
	prof, err := Profile(rec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 2 {
		t.Fatalf("regions = %d, want 2", len(prof))
	}
	hot := prof["a.c:10"]
	cold := prof["b.c:20"]
	if hot == nil || cold == nil {
		t.Fatalf("regions missing: %v", prof)
	}
	if hot.CSs != 10 || cold.CSs != 2 {
		t.Fatalf("CS counts = %d/%d, want 10/2", hot.CSs, cold.CSs)
	}
	if hot.Held <= cold.Held {
		t.Fatal("hot region must hold the lock longer")
	}
	if hot.Waited == 0 {
		t.Fatal("contended region shows no waiting")
	}
}

func TestCompareBugVsFix(t *testing.T) {
	cfg := workload.Config{Threads: 4, Scale: 0.05, Seed: 3}
	buggy := sim.Run(workload.MustGet("openldap").Build(cfg), sim.Config{Seed: 3})
	fixed := sim.Run(workload.BuildOpenldapFixed(cfg), sim.Config{Seed: 3})
	tbl, err := Compare("buggy", buggy.Trace, "fixed", fixed.Trace)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "mp/mp_fopen.c") {
		t.Fatalf("diff missing the spin-wait region:\n%s", out)
	}
	if !strings.Contains(out, "total wait") {
		t.Fatalf("diff missing totals note:\n%s", out)
	}
	// The fixed build has no mp_fopen polling CSs, so its row must show a
	// →0 count for that region.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mp/mp_fopen.c:717") || strings.Contains(line, "mp/mp_fopen.c:713") {
			if !strings.Contains(line, "→0") {
				t.Fatalf("spin region not eliminated in fixed build: %s", line)
			}
		}
	}
}
