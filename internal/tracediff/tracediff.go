// Package tracediff profiles traces per code region and diffs two
// recordings — the "did my fix help, and where" complement to PerfPlay's
// prediction: record the buggy build, record the patched build, and
// compare lock-held and lock-wait time per code region.
package tracediff

import (
	"fmt"
	"sort"

	"perfplay/internal/replay"
	"perfplay/internal/report"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// RegionStat aggregates one code region's locking behaviour.
type RegionStat struct {
	// Region is the code region (from the acquisition site).
	Region trace.Region
	// Lock names the most common lock acquired at this region.
	Lock trace.LockID
	// CSs counts dynamic critical sections.
	CSs int
	// Held is total virtual time spent inside the region's critical
	// sections.
	Held vtime.Duration
	// Waited is total time threads blocked (or spun) entering them.
	Waited vtime.Duration
}

// Profile replays the trace under ELSC and aggregates per-region stats.
func Profile(tr *trace.Trace) (map[string]*RegionStat, error) {
	res, err := replay.Run(tr, replay.Options{Sched: replay.ELSCS})
	if err != nil {
		return nil, fmt.Errorf("tracediff: %w", err)
	}
	out := make(map[string]*RegionStat)
	css := tr.ExtractCS()
	// Completion time of the event preceding each acquisition.
	prevEnd := make(map[int32]vtime.Time, len(css))
	for t, evs := range tr.PerThread() {
		_ = t
		var last int32 = -1
		for _, idx := range evs {
			if tr.Events[idx].Kind == trace.KLockAcq {
				if last >= 0 {
					prevEnd[idx] = res.EventEnd[last]
				}
			}
			last = idx
		}
	}
	for _, cs := range css {
		if cs.RelEv < 0 {
			continue
		}
		site := trace.Site{}
		if tr.Sites != nil {
			site = tr.Sites.At(tr.Events[cs.AcqEv].Site)
		}
		region := trace.Region{}.Extend(site)
		key := region.String()
		st, ok := out[key]
		if !ok {
			st = &RegionStat{Region: region, Lock: cs.Lock}
			out[key] = st
		}
		st.CSs++
		st.Held += res.EventEnd[cs.RelEv].Sub(res.EventEnd[cs.AcqEv])
		wait := res.EventStart[cs.AcqEv].Sub(prevEnd[cs.AcqEv])
		if wait > 0 {
			st.Waited += wait
		}
	}
	return out, nil
}

// Compare renders a table diffing two traces region by region: critical
// sections, held time and wait time, with deltas. Regions present in only
// one trace show on their own rows.
func Compare(labelA string, a *trace.Trace, labelB string, b *trace.Trace) (*report.Table, error) {
	pa, err := Profile(a)
	if err != nil {
		return nil, err
	}
	pb, err := Profile(b)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]struct{}, len(pa)+len(pb))
	for k := range pa {
		keys[k] = struct{}{}
	}
	for k := range pb {
		keys[k] = struct{}{}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	t := report.NewTable(
		fmt.Sprintf("per-region lock profile: %s vs %s", labelA, labelB),
		"region", "CSs A→B", "held A→B", "wait A→B", "Δwait")
	var totWaitA, totWaitB vtime.Duration
	for _, k := range sorted {
		sa, sb := pa[k], pb[k]
		var csA, csB int
		var heldA, heldB, waitA, waitB vtime.Duration
		if sa != nil {
			csA, heldA, waitA = sa.CSs, sa.Held, sa.Waited
		}
		if sb != nil {
			csB, heldB, waitB = sb.CSs, sb.Held, sb.Waited
		}
		totWaitA += waitA
		totWaitB += waitB
		t.AddRow(k,
			fmt.Sprintf("%d→%d", csA, csB),
			fmt.Sprintf("%v→%v", heldA, heldB),
			fmt.Sprintf("%v→%v", waitA, waitB),
			fmt.Sprint(waitB-waitA))
	}
	t.AddNote("total wait: %v → %v (Δ %v); makespan: %v → %v",
		totWaitA, totWaitB, totWaitB-totWaitA, a.TotalTime, b.TotalTime)
	return t, nil
}
