package workload

import (
	"perfplay/internal/sim"
	"perfplay/internal/vtime"
)

// mysql models the InnoDB/server locking behaviour under a mysqlslap-style
// query load (Sec. 6.1: 1000 queries, 2 iterations), reproducing the
// specific ULCP idioms the paper documents:
//
//   - Fig. 1: fil_flush vs fil_flush_file_spaces on fil_system->mutex —
//     when buffering is disabled the flush path only *reads* the unflushed
//     list, so the two critical sections are a read-read ULCP.
//   - Case 2: lock_print_info_all_transactions traversing the TRX list
//     read-only under lock_sys + trx_sys mutexes.
//   - Case 5: THD::set_query_id / THD::set_mysys_var writing different THD
//     members under the shared LOCK_thd_data (disjoint-write).
//   - Case 8: fil_space_get_by_id hash lookups repeated four times per
//     block read, all read-only under fil_system->mutex.
//   - Bug #68573 / Case 9: Query_cache::try_lock's timed condition wait,
//     whose unlock/re-lock cycle manufactures null-locks and inflates the
//     50 ms timeout when several threads pile up.

func mysqlRegions() []Region {
	return []Region{
		// Case 8: four hash lookups per block read, read-only.
		{Name: "fil_space_get_by_id", File: "storage/innobase/fil/fil0fil.cc", Line: 5475,
			Pattern: PatRead, Iters: 400, CSLen: 240, Gap: 150, ConflictEvery: 20, LockPool: 2, Sites: 4},
		// Case 2: read-only TRX list traversal.
		{Name: "lock_print_info", File: "storage/innobase/lock/lock0lock.cc", Line: 5203,
			Pattern: PatRead, Iters: 200, CSLen: 420, Gap: 260, ConflictEvery: 20, LockPool: 2, Sites: 2},
		// Case 5: disjoint THD member updates under LOCK_thd_data.
		{Name: "thd_set_members", File: "sql/sql_class.cc", Line: 4526,
			Pattern: PatDisjointWrite, Iters: 290, CSLen: 260, Gap: 210, ConflictEvery: 10, Sites: 3},
		// Row operations with genuine conflicts (index updates).
		{Name: "row_update", File: "storage/innobase/row/row0upd.cc", Line: 2310,
			Pattern: PatConflict, Iters: 60, CSLen: 300, Gap: 240},
		// Query statistics: commutative counters (benign).
		{Name: "status_counters", File: "sql/mysqld.cc", Line: 3877,
			Pattern: PatBenignAdd, Iters: 190, CSLen: 150, Gap: 190, ConflictEvery: 3, Sites: 4},
	}
}

// buildMySQL builds the server model: workers run the query mix, the
// Fig. 1 flush pair, and the Bug #68573 query-cache timed wait.
func buildMySQL(cfg Config) *sim.Program {
	cfg = cfg.withDefaults()
	p := sim.NewProgram("mysql")
	m := newMixRT(p, mysqlRegions(), cfg)

	// Fig. 1: fil_system->mutex guards the unflushed_spaces list; with
	// buffering disabled, fil_flush only reads it.
	filMutex := p.NewLock("fil_system->mutex")
	unflushed := p.Mem.Alloc("fil_system->unflushed_spaces", 8)
	sFlushEnter := p.Site("storage/innobase/fil/fil0fil.cc", 5473, "fil_flush")
	sFlushRead := p.Site("storage/innobase/fil/fil0fil.cc", 5483, "fil_flush")
	sFlushExit := p.Site("storage/innobase/fil/fil0fil.cc", 5501, "fil_flush")
	sSpacesEnter := p.Site("storage/innobase/fil/fil0fil.cc", 5609, "fil_flush_file_spaces")
	sSpacesRead := p.Site("storage/innobase/fil/fil0fil.cc", 5611, "fil_flush_file_spaces")
	sSpacesExit := p.Site("storage/innobase/fil/fil0fil.cc", 5614, "fil_flush_file_spaces")

	// Bug #68573: structure_guard_mutex + COND_cache_status_changed.
	qcMutex := p.NewLock("structure_guard_mutex")
	qcCond := p.NewCond("COND_cache_status_changed")
	sTryLock := p.Site("sql/sql_cache.cc", 458, "Query_cache::try_lock")
	sTimedWait := p.Site("sql/sql_cache.cc", 466, "Query_cache::try_lock")
	// The documented intent is a 50 ms timeout; model it as 5000 ticks so
	// the inflation under contention is visible at simulator scale.
	const qcTimeout = vtime.Duration(5000)

	filFlushes := cfg.iters(26)
	qcTries := cfg.iters(5)

	for t := 0; t < cfg.Threads; t++ {
		t := t
		p.AddThread(func(th *sim.Thread) {
			m.run(th, t)
			// Fig. 1 pair: alternate the read-only flush with the list
			// length check.
			for i := 0; i < filFlushes; i++ {
				if (i+t)%2 == 0 {
					th.Lock(filMutex, sFlushEnter)
					th.Read(unflushed, sFlushRead) // buffering disabled: no update
					th.Compute(jittered(th, 420))
					th.Unlock(filMutex, sFlushExit)
				} else {
					th.Lock(filMutex, sSpacesEnter)
					th.Read(unflushed, sSpacesRead) // UT_LIST_GET_LEN
					th.Compute(jittered(th, 260))
					th.Unlock(filMutex, sSpacesExit)
				}
				th.Compute(jittered(th, 380))
			}
			// Bug #68573: the SELECT path tries the query-cache lock with
			// a timed wait; the cond wait's unlock/sleep/re-lock cycle
			// serializes the waiters and stretches the intended timeout.
			for i := 0; i < qcTries; i++ {
				th.Lock(qcMutex, sTryLock)
				th.TimedWait(qcCond, qcMutex, qcTimeout, sTimedWait)
				th.Unlock(qcMutex, sTryLock)
				th.Compute(jittered(th, 600))
			}
		})
	}
	return p
}

// BuildMySQLFixed models the fix for Bug #68573: the SELECT path checks a
// lock-free status flag and skips the query cache entirely when it is
// busy, so no thread ever parks on the guard mutex.
func BuildMySQLFixed(cfg Config) *sim.Program {
	cfg = cfg.withDefaults()
	p := sim.NewProgram("mysql-fixed")
	m := newMixRT(p, mysqlRegions(), cfg)

	filMutex := p.NewLock("fil_system->mutex")
	unflushed := p.Mem.Alloc("fil_system->unflushed_spaces", 8)
	sFlush := p.Site("storage/innobase/fil/fil0fil.cc", 5473, "fil_flush")
	sStatus := p.Site("sql/sql_cache.cc", 458, "Query_cache::try_lock_fixed")
	status := p.Mem.Alloc("qc_status", 0)

	filFlushes := cfg.iters(26)
	qcTries := cfg.iters(5)

	for t := 0; t < cfg.Threads; t++ {
		t := t
		p.AddThread(func(th *sim.Thread) {
			m.run(th, t)
			for i := 0; i < filFlushes; i++ {
				th.Lock(filMutex, sFlush)
				th.Read(unflushed, sFlush)
				th.Compute(jittered(th, 340))
				th.Unlock(filMutex, sFlush)
				th.Compute(jittered(th, 380))
			}
			for i := 0; i < qcTries; i++ {
				// Lock-free status probe: no mutex, no timed wait.
				th.Read(status, sStatus)
				th.Compute(jittered(th, 600))
			}
		})
	}
	return p
}

func init() {
	register(&App{
		Name: "mysql", Kind: "server", LOC: "1,132K", BinSize: "22M",
		Build: buildMySQL,
	})
}
