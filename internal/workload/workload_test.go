package workload

import (
	"testing"

	"perfplay/internal/core"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	if len(Names()) != 16 {
		t.Fatalf("registered apps = %d, want 16", len(Names()))
	}
	if len(Parsec()) != 11 {
		t.Fatalf("parsec apps = %d, want 11", len(Parsec()))
	}
	if len(RealWorld()) != 5 {
		t.Fatalf("real-world apps = %d, want 5", len(RealWorld()))
	}
	// Table 1 presentation order starts with the servers.
	if Names()[0] != "openldap" || Names()[1] != "mysql" {
		t.Fatalf("order = %v", Names()[:2])
	}
	if _, ok := Get("nonesuch"); ok {
		t.Fatal("unknown app resolved")
	}
	if MustGet("vips") == nil {
		t.Fatal("MustGet failed")
	}
}

func TestEveryAppBuildsAndValidates(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			p := app.Build(Config{Threads: 2, Scale: 0.05, Seed: 3})
			res := sim.Run(p, sim.Config{Seed: 3})
			if err := res.Trace.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if app.Name != "blackscholes" && res.Trace.DynamicLocks() == 0 {
				t.Fatal("no locks recorded")
			}
		})
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, name := range []string{"mysql", "pbzip2", "fluidanimate"} {
		app := MustGet(name)
		r1 := sim.Run(app.Build(Config{Threads: 2, Scale: 0.05, Seed: 9}), sim.Config{Seed: 9})
		r2 := sim.Run(app.Build(Config{Threads: 2, Scale: 0.05, Seed: 9}), sim.Config{Seed: 9})
		if r1.Total != r2.Total || len(r1.Trace.Events) != len(r2.Trace.Events) {
			t.Fatalf("%s: nondeterministic build (%v/%d vs %v/%d)",
				name, r1.Total, len(r1.Trace.Events), r2.Total, len(r2.Trace.Events))
		}
	}
}

func TestLocksScaleWithThreads(t *testing.T) {
	app := MustGet("bodytrack")
	small := sim.Run(app.Build(Config{Threads: 2, Scale: 0.05, Seed: 1}), sim.Config{Seed: 1})
	big := sim.Run(app.Build(Config{Threads: 8, Scale: 0.05, Seed: 1}), sim.Config{Seed: 1})
	if big.Trace.DynamicLocks() <= small.Trace.DynamicLocks()*2 {
		t.Fatalf("locks did not scale with threads: %d -> %d",
			small.Trace.DynamicLocks(), big.Trace.DynamicLocks())
	}
}

func TestInputSizeScalesWork(t *testing.T) {
	app := MustGet("vips")
	s := sim.Run(app.Build(Config{Threads: 2, Scale: 0.1, Input: SimSmall, Seed: 1}), sim.Config{Seed: 1})
	l := sim.Run(app.Build(Config{Threads: 2, Scale: 0.1, Input: SimLarge, Seed: 1}), sim.Config{Seed: 1})
	if l.Trace.DynamicLocks() <= s.Trace.DynamicLocks() {
		t.Fatalf("locks did not grow with input: %d -> %d",
			s.Trace.DynamicLocks(), l.Trace.DynamicLocks())
	}
	if l.Total <= s.Total {
		t.Fatal("run time did not grow with input")
	}
}

func TestOpenldapFixSavesCPU(t *testing.T) {
	cfg := Config{Threads: 4, Scale: 0.05, Seed: 2}
	buggy := sim.Run(MustGet("openldap").Build(cfg), sim.Config{Seed: 2})
	fixed := sim.Run(BuildOpenldapFixed(cfg), sim.Config{Seed: 2})
	if fixed.CPUTotal() >= buggy.CPUTotal() {
		t.Fatalf("barrier fix did not save CPU: %v vs %v", fixed.CPUTotal(), buggy.CPUTotal())
	}
	if fixed.SpinWaste != 0 {
		t.Fatalf("fixed variant still spins: %v", fixed.SpinWaste)
	}
}

func TestPbzip2FixSavesCPU(t *testing.T) {
	cfg := Config{Threads: 2, Scale: 0.25, Seed: 2}
	buggy := sim.Run(MustGet("pbzip2").Build(cfg), sim.Config{Seed: 2})
	fixed := sim.Run(BuildPbzip2Fixed(cfg), sim.Config{Seed: 2})
	if fixed.CPUTotal() >= buggy.CPUTotal() {
		t.Fatalf("signal/wait fix did not save CPU: %v vs %v", fixed.CPUTotal(), buggy.CPUTotal())
	}
	// Both variants compress every block exactly once.
	var outB, outF int64
	for a, name := range buggy.Trace.MemNames {
		if name == "OutputBuffer->tail" {
			outB = buggy.Trace.FinalMem[a]
		}
	}
	for a, name := range fixed.Trace.MemNames {
		if name == "OutputBuffer->tail" {
			outF = fixed.Trace.FinalMem[a]
		}
	}
	if outB != outF {
		t.Fatalf("fix changed the work done: tail %d vs %d", outB, outF)
	}
}

func TestMySQLFixReducesWaiting(t *testing.T) {
	cfg := Config{Threads: 4, Scale: 0.1, Seed: 2}
	buggy := sim.Run(MustGet("mysql").Build(cfg), sim.Config{Seed: 2})
	fixed := sim.Run(BuildMySQLFixed(cfg), sim.Config{Seed: 2})
	if fixed.Total >= buggy.Total {
		t.Fatalf("query-cache fix did not speed up the run: %v vs %v", fixed.Total, buggy.Total)
	}
}

func TestInputSizeStrings(t *testing.T) {
	if SimSmall.String() != "simsmall" || SimMedium.String() != "simmedium" || SimLarge.String() != "simlarge" {
		t.Fatal("InputSize strings wrong")
	}
	// The zero value defaults to simlarge.
	c := Config{Threads: 2}.withDefaults()
	if c.Input != SimLarge {
		t.Fatalf("default input = %v, want simlarge", c.Input)
	}
}

func TestMixRegionSitesSpread(t *testing.T) {
	// Multi-site regions must intern distinct code regions, so fusion can
	// produce multiple groups per lock.
	p := sim.NewProgram("sites")
	cfg := Config{Threads: 2, Scale: 1}.withDefaults()
	m := newMixRT(p, []Region{{
		Name: "r", File: "f.c", Line: 100, Pattern: PatRead,
		Iters: 8, CSLen: 50, Gap: 50, Sites: 3, ConflictEvery: 4,
	}}, cfg)
	if len(m.rts[0].sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(m.rts[0].sites))
	}
	seen := map[trace.SiteID]bool{}
	for _, s := range m.rts[0].sites {
		seen[s[0]] = true
	}
	if len(seen) != 3 {
		t.Fatal("lock sites not distinct")
	}
}

// TestTheorem1HoldsForAllApps is the strongest end-to-end correctness
// assertion: for every modelled application, the ULCP-free transformation
// either preserves the observable semantics or explains the divergence
// with reported races (Theorem 1).
func TestTheorem1HoldsForAllApps(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			p := app.Build(Config{Threads: 2, Scale: 0.05, Seed: 11})
			a, err := core.Analyze(p, core.Config{Sim: sim.Config{Seed: 11}, VerifyTheorem1: true})
			if err != nil {
				t.Fatal(err)
			}
			if !a.Theorem1.Ok() {
				t.Fatalf("Theorem 1 violated:\n%s", a.Theorem1)
			}
		})
	}
}
