package workload

import (
	"testing"

	"perfplay/internal/core"
	"perfplay/internal/sim"
	"perfplay/internal/ulcp"
)

// analyzeCase runs the pipeline on an appendix case.
func analyzeCase(t *testing.T, n, threads int) *core.Analysis {
	t.Helper()
	p, err := BuildCase(n, Config{Threads: threads, Scale: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(p, core.Config{Sim: sim.Config{Seed: 17}})
	if err != nil {
		t.Fatalf("case %d: %v", n, err)
	}
	return a
}

func TestCaseUnknown(t *testing.T) {
	if _, err := BuildCase(0, Config{}); err == nil {
		t.Fatal("case 0 must error")
	}
	if _, err := BuildCase(11, Config{}); err == nil {
		t.Fatal("case 11 must error")
	}
}

func TestCase1CondWaitNullLocks(t *testing.T) {
	a := analyzeCase(t, 1, 3)
	// The re-acquired critical sections re-read the predicate, so the
	// wakeup sections pair as read-read/null-lock ULCPs, never pure TLCPs
	// against each other.
	if a.Report.NumULCPs() == 0 {
		t.Fatalf("case 1 found no ULCPs: %v", a.Report.Counts)
	}
}

func TestCase2ReadOnlyTraversal(t *testing.T) {
	a := analyzeCase(t, 2, 2)
	if a.Report.Counts[ulcp.ReadRead] == 0 {
		t.Fatalf("case 2: no read-read ULCPs: %v", a.Report.Counts)
	}
	if a.Report.Counts[ulcp.TLCP] != 0 {
		t.Fatalf("case 2: read-only traversal produced TLCPs: %v", a.Report.Counts)
	}
	if a.Debug.Tuft >= a.Debug.Tut {
		t.Fatal("case 2: traversals should parallelize")
	}
}

func TestCase3DisjointFields(t *testing.T) {
	a := analyzeCase(t, 3, 2)
	if a.Report.Counts[ulcp.DisjointWrite] == 0 {
		t.Fatalf("case 3: no disjoint-write ULCPs: %v", a.Report.Counts)
	}
}

func TestCase4MixedProtection(t *testing.T) {
	a := analyzeCase(t, 4, 3)
	// The close path writes mysys_var while the processlist path reads
	// query: disjoint addresses under one lock.
	if a.Report.Counts[ulcp.DisjointWrite] == 0 && a.Report.Counts[ulcp.ReadRead] == 0 {
		t.Fatalf("case 4: no ULCPs identified: %v", a.Report.Counts)
	}
}

func TestCase5DisjointMembers(t *testing.T) {
	a := analyzeCase(t, 5, 2)
	if a.Report.Counts[ulcp.DisjointWrite] == 0 {
		t.Fatalf("case 5: no disjoint-write ULCPs: %v", a.Report.Counts)
	}
	if a.Debug.Tuft >= a.Debug.Tut {
		t.Fatal("case 5: disjoint member stores should parallelize")
	}
}

func TestCase6CoarseLock(t *testing.T) {
	a := analyzeCase(t, 6, 3)
	// Per-partition reads and writes under one coarse lock: DW ULCPs and
	// a large recovery.
	if a.Report.Counts[ulcp.DisjointWrite] == 0 {
		t.Fatalf("case 6: no disjoint-write ULCPs: %v", a.Report.Counts)
	}
	if a.Debug.NormalizedDegradation() < 0.10 {
		t.Fatalf("case 6: degradation = %.2f%%, want substantial (coarse lock)",
			a.Debug.NormalizedDegradation()*100)
	}
}

func TestCase7SpinWaste(t *testing.T) {
	p, err := BuildCase(7, Config{Threads: 4, Scale: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(p, sim.Config{Seed: 17})
	// Failed trylocks burn CPU in the my_sleep(0) loop.
	busy := res.CPUTotal()
	if busy <= res.Total {
		t.Fatalf("case 7: no spinning visible (cpu %v vs span %v)", busy, res.Total)
	}
}

func TestCase8HashLookupSerialization(t *testing.T) {
	a := analyzeCase(t, 8, 2)
	if a.Report.Counts[ulcp.ReadRead] == 0 {
		t.Fatalf("case 8: no read-read ULCPs: %v", a.Report.Counts)
	}
	// Four call sites share fil_system->mutex: fusion must produce
	// several distinct groups.
	if len(a.Debug.Groups) < 4 {
		t.Fatalf("case 8: groups = %d, want >= 4 (four lookup sites)", len(a.Debug.Groups))
	}
}

func TestCase9TimeoutInflation(t *testing.T) {
	// The effective wait per thread grows with the number of threads
	// because the re-acquisitions serialize.
	single, err := BuildCase(9, Config{Threads: 1, Scale: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	many, err := BuildCase(9, Config{Threads: 6, Scale: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r1 := sim.Run(single, sim.Config{Seed: 17})
	rn := sim.Run(many, sim.Config{Seed: 17})
	if rn.Total <= r1.Total {
		t.Fatalf("case 9: timeout did not inflate with threads (%v vs %v)", rn.Total, r1.Total)
	}
}

func TestCase10GlobalReadLock(t *testing.T) {
	a := analyzeCase(t, 10, 4)
	// The must_wait checks are read/commutative: classified benign or
	// read-read, not real contention.
	if got := a.Report.NumULCPs(); got == 0 {
		t.Fatalf("case 10: no ULCPs: %v", a.Report.Counts)
	}
}

func TestAllCasesValidateAndAnalyze(t *testing.T) {
	for n := 1; n <= 10; n++ {
		n := n
		t.Run(caseName(n), func(t *testing.T) {
			t.Parallel()
			p, err := BuildCase(n, Config{Threads: 2, Scale: 1, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			res := sim.Run(p, sim.Config{Seed: 5})
			if err := res.Trace.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if _, err := core.AnalyzeTrace(res.Trace, core.Config{DetectRaces: true}); err != nil {
				t.Fatalf("pipeline failed: %v", err)
			}
		})
	}
}

func caseName(n int) string {
	return map[int]string{
		1: "condwait", 2: "lockprint", 3: "slotfields", 4: "thddata",
		5: "setmembers", 6: "coarse", 7: "qcspin", 8: "hashlookup",
		9: "trylock", 10: "globalreadlock",
	}[n]
}
