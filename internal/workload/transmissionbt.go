package workload

import "perfplay/internal/sim"

// transmissionBT models the BitTorrent client downloading a local file
// (Sec. 6.1: a 300 MB local download): piece-completion bookkeeping with
// disjoint bit manipulation (a benign pattern the paper lists in
// Sec. 2.1), read-mostly peer statistics, and per-piece buffer writes.

func transmissionRegions() []Region {
	return []Region{
		// Peer/session statistics polled by the UI thread: read-only.
		{Name: "session_stats", File: "libtransmission/session.c", Line: 1420,
			Pattern: PatRead, Iters: 26, CSLen: 300, Gap: 420, ConflictEvery: 6},
		// Per-piece buffers: each worker writes its own piece slot.
		{Name: "piece_store", File: "libtransmission/cache.c", Line: 331,
			Pattern: PatDisjointWrite, Iters: 30, CSLen: 340, Gap: 380, ConflictEvery: 8},
		// Completion bitfield: disjoint bit sets — benign conflicts.
		{Name: "bitfield_set", File: "libtransmission/bitfield.c", Line: 204,
			Pattern: PatBenignAdd, Iters: 14, CSLen: 180, Gap: 320, ConflictEvery: 3},
		// Choke/interest negotiation: genuine conflicting updates.
		{Name: "peer_negotiate", File: "libtransmission/peer-mgr.c", Line: 2716,
			Pattern: PatConflict, Iters: 90, CSLen: 260, Gap: 350},
		// Event-loop wakeups that find nothing to do.
		{Name: "announcer_idle", File: "libtransmission/announcer.c", Line: 1512,
			Pattern: PatNull, Iters: 12, CSLen: 80, Gap: 300, LockPool: 9},
	}
}

func buildTransmission(cfg Config) *sim.Program {
	return buildMix("transmissionBT", Profile{Regions: transmissionRegions()}, cfg)
}

func init() {
	register(&App{
		Name: "transmissionBT", Kind: "desktop", LOC: "79K", BinSize: "4M",
		Build: buildTransmission,
	})
}
