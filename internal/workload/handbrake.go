package workload

import "perfplay/internal/sim"

// handBrake models the video transcoder converting a 256 MB DVD title to
// H.264/MP4 at 30 fps (Sec. 6.1): a frame pipeline whose stage queues
// contend heavily (real contention), beside read-mostly codec parameter
// lookups and per-stage disjoint frame buffers.

func handbrakeRegions() []Region {
	return []Region{
		// Stage fifo push/pop: the dominant, genuinely conflicting locks.
		{Name: "fifo_ops", File: "libhb/fifo.c", Line: 582,
			Pattern: PatConflict, Iters: 8100, CSLen: 70, Gap: 110},
		// Codec parameter/state lookups: read-only.
		{Name: "param_read", File: "libhb/work.c", Line: 233,
			Pattern: PatRead, Iters: 390, CSLen: 190, Gap: 160, ConflictEvery: 6, LockPool: 2, Sites: 4},
		// Per-stage frame buffers: disjoint writes under a shared pool lock.
		{Name: "buf_pool_write", File: "libhb/fifo.c", Line: 219,
			Pattern: PatDisjointWrite, Iters: 280, CSLen: 180, Gap: 170, ConflictEvery: 6, Sites: 3},
		// Progress accounting: commutative counters.
		{Name: "progress_accum", File: "libhb/hb.c", Line: 1594,
			Pattern: PatBenignAdd, Iters: 190, CSLen: 110, Gap: 150, ConflictEvery: 2, Sites: 2},
		// Scheduler wakeups that find an empty fifo.
		{Name: "empty_poll", File: "libhb/fifo.c", Line: 548,
			Pattern: PatNull, Iters: 8, CSLen: 60, Gap: 140, LockPool: 4},
	}
}

func buildHandbrake(cfg Config) *sim.Program {
	return buildMix("handbrake", Profile{Regions: handbrakeRegions()}, cfg)
}

func init() {
	register(&App{
		Name: "handbrake", Kind: "desktop", LOC: "1,070K", BinSize: "3M",
		Build: buildHandbrake,
	})
}
