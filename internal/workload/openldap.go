package workload

import (
	"perfplay/internal/sim"
	"perfplay/internal/vtime"
)

// openldap models the LDAP server's locking behaviour under a
// DirectoryMark-style search load (Sec. 6.1 benchmarks it searching 2000
// entries), dominated by read-mostly directory lookups, plus the Fig. 4
// mpool reference-count spin loop that is case-study #BUG 1:
//
//	for (deleted = 0;;) {
//	    THREAD_LOCK(dbmp->mutex);
//	    if (dbmfp->ref == 1) { ... deleted = 1; }
//	    THREAD_UNLOCK(dbmp->mutex);
//	    if (deleted) break;
//	}
//
// Every iteration before the last holder drops its reference is a
// read-read ULCP, and the spinning wastes CPU on the non-critical path.

// openldapRegions is the background server mix (directory search, cache
// maintenance, connection bookkeeping).
func openldapRegions() []Region {
	return []Region{
		{Name: "entry_search", File: "servers/slapd/search.c", Line: 217,
			Pattern: PatRead, Iters: 520, CSLen: 420, Gap: 310, ConflictEvery: 4, LockPool: 2, Sites: 3},
		{Name: "cache_update", File: "servers/slapd/backend.c", Line: 1104,
			Pattern: PatDisjointWrite, Iters: 160, CSLen: 380, Gap: 330, ConflictEvery: 6, Sites: 2},
		{Name: "conn_dispatch", File: "servers/slapd/connection.c", Line: 741,
			Pattern: PatConflict, Iters: 150, CSLen: 260, Gap: 340},
		{Name: "idle_probe", File: "servers/slapd/daemon.c", Line: 2930,
			Pattern: PatNull, Iters: 36, CSLen: 90, Gap: 260, LockPool: 17},
		{Name: "stat_counter", File: "servers/slapd/result.c", Line: 88,
			Pattern: PatBenignAdd, Iters: 8, CSLen: 140, Gap: 250, ConflictEvery: 2},
	}
}

// buildOpenldap builds the full server model: every worker runs the
// search/cache mix and then joins the Fig. 4 release-wait spin loop; the
// last worker (the "critical thread" Tn) holds the buffer reference and
// drops it after draining its queue.
func buildOpenldap(cfg Config) *sim.Program {
	cfg = cfg.withDefaults()
	p := sim.NewProgram("openldap")
	m := newMixRT(p, openldapRegions(), cfg)

	// Fig. 4 state: dbmp->mutex spins, dbmfp->ref counts holders.
	mpMutex := p.NewSpinLock("dbmp->mutex")
	ref := p.Mem.Alloc("dbmfp->ref", int64(cfg.Threads))
	sLock := p.Site("mp/mp_fopen.c", 713, "__memp_fclose")
	sRead := p.Site("mp/mp_fopen.c", 717, "__memp_fclose")
	sDecr := p.Site("mp/mp_fopen.c", 724, "__memp_fclose")

	for t := 0; t < cfg.Threads; t++ {
		t := t
		p.AddThread(func(th *sim.Thread) {
			m.run(th, t)
			// The critical thread Tn "runs slowly" (Fig. 4a): the last
			// worker drains its connection backlog before dropping its
			// reference, and everyone else spins for that whole time.
			// The backlog is input-independent, which is why #BUG 1's
			// normalized impact declines as the input grows (Fig. 19b).
			if t == cfg.Threads-1 {
				th.Compute(slowDrain)
			}
			// Reference release: each thread drops its ref, then waits
			// for the remaining holders by polling under the mutex.
			th.Lock(mpMutex, sLock)
			th.Add(ref, -1, sDecr)
			th.Unlock(mpMutex, sLock)
			for {
				th.Lock(mpMutex, sLock)
				v := th.Read(ref, sRead)
				th.Unlock(mpMutex, sLock)
				if v == 0 {
					break
				}
				th.Compute(vtime.Duration(120 + th.Intn(60)))
			}
		})
	}
	return p
}

// BuildOpenldapFixed is the paper's recommended fix for #BUG 1: the
// spin-wait loop "performs the same function as barrier primitive", so the
// wait is replaced with a pthread barrier and the wasted CPU disappears.
func BuildOpenldapFixed(cfg Config) *sim.Program {
	cfg = cfg.withDefaults()
	p := sim.NewProgram("openldap-fixed")
	m := newMixRT(p, openldapRegions(), cfg)

	bar := p.NewBarrier("mp_close_barrier", cfg.Threads)
	sBar := p.Site("mp/mp_fopen.c", 713, "__memp_fclose_fixed")

	for t := 0; t < cfg.Threads; t++ {
		t := t
		p.AddThread(func(th *sim.Thread) {
			m.run(th, t)
			if t == cfg.Threads-1 {
				th.Compute(slowDrain)
			}
			th.Barrier(bar, sBar)
		})
	}
	return p
}

// slowDrain is the critical thread's extra work before it releases the
// buffer reference — a connection-close backlog whose size does not depend
// on the benchmark input.
const slowDrain vtime.Duration = 22000

func init() {
	register(&App{
		Name: "openldap", Kind: "server", LOC: "392K", BinSize: "6M",
		Build: buildOpenldap,
	})
}
