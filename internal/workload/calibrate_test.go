package workload

import (
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

// TestCalibrationReport prints, for every app at 2 threads and full scale,
// the dynamic lock count and ULCP category mix next to Table 1's targets.
// Run with -v to inspect; it asserts only loose magnitude bounds so the
// suite stays robust.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	type target struct{ locks, nl, rr, dw, bg int }
	targets := map[string]target{
		"openldap":       {1851, 75, 1414, 473, 15},
		"mysql":          {2109, 125, 9822, 2924, 194},
		"pbzip2":         {1281, 2, 1047, 838, 51},
		"transmissionBT": {352, 15, 111, 123, 29},
		"handbrake":      {18316, 10, 1536, 1143, 189},
		"blackscholes":   {0, 0, 0, 0, 0},
		"bodytrack":      {32642, 0, 1322, 321, 43},
		"canneal":        {34, 0, 0, 0, 0},
		"dedup":          {19352, 231, 2421, 1952, 164},
		"facesim":        {14541, 102, 871, 819, 12},
		"ferret":         {6231, 11, 101, 231, 343},
		"fluidanimate":   {82142, 2, 10501, 6694, 197},
		"streamcluster":  {191, 0, 0, 0, 0},
		"swaptions":      {23, 0, 0, 0, 0},
		"vips":           {33586, 142, 4512, 1142, 26},
		"x264":           {16767, 941, 3841, 412, 84},
	}
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			p := app.Build(Config{Threads: 2, Seed: 42})
			rec := sim.Run(p, sim.Config{Seed: 42})
			css := rec.Trace.ExtractCS()
			rep := ulcp.Identify(rec.Trace, css, ulcp.Options{})
			locks := rec.Trace.DynamicLocks()
			nl := rep.Counts[ulcp.NullLock]
			rr := rep.Counts[ulcp.ReadRead]
			dw := rep.Counts[ulcp.DisjointWrite]
			bg := rep.Counts[ulcp.Benign]
			tg := targets[app.Name]
			t.Logf("%-15s locks %6d (paper %6d) | NL %5d (%4d) RR %6d (%5d) DW %5d (%4d) BG %4d (%3d) TLCP %5d trunc %d",
				app.Name, locks, tg.locks, nl, tg.nl, rr, tg.rr, dw, tg.dw, bg, tg.bg,
				rep.Counts[ulcp.TLCP], rep.Truncated)
			within := func(name string, got, want int) {
				if want == 0 {
					if got > want+10 {
						t.Errorf("%s: got %d, paper %d", name, got, want)
					}
					return
				}
				lo, hi := want/4, want*4
				if got < lo || got > hi {
					t.Errorf("%s: got %d, outside [%d,%d] around paper %d", name, got, lo, hi, want)
				}
			}
			within("locks", locks, tg.locks)
			within("read-read", rr, tg.rr)
			within("disjoint-write", dw, tg.dw)
			within("null-lock", nl, tg.nl)
			within("benign", bg, tg.bg)
			if err := rec.Trace.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
		})
	}
	_ = trace.NoLock
}
