package workload

import (
	"fmt"

	"perfplay/internal/memmodel"
	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// Pattern is the dynamic behaviour of one modelled code region's critical
// section — the four ULCP categories of Sec. 2.1 plus true contention.
type Pattern int

// Region critical-section patterns.
const (
	// PatNull takes the lock and touches no shared data (Fig. 3).
	PatNull Pattern = iota
	// PatRead only reads shared data (read-read, Fig. 4).
	PatRead
	// PatDisjointWrite writes a thread-private slot of a shared object
	// under the common lock (the pointer-alias idiom).
	PatDisjointWrite
	// PatBenignAdd performs a commutative read-modify-write (redundant/
	// commutative conflict — classified benign by reversed replay).
	PatBenignAdd
	// PatRedundantWrite stores the same constant from every thread.
	PatRedundantWrite
	// PatConflict reads then overwrites shared data with a distinct value:
	// true contention.
	PatConflict
)

// Region models one synchronized code region of an application.
type Region struct {
	// Name labels the region; File/Line give it a source location so
	// fusion and recommendations read like the paper's case studies.
	Name string
	File string
	Line int
	// Pattern is the region's dominant critical-section behaviour.
	Pattern Pattern
	// Iters is the per-thread execution count at scale 1.
	Iters int
	// CSLen is the compute cost inside the critical section; Gap the cost
	// after it.
	CSLen, Gap vtime.Duration
	// LockPool shards the region over several lock objects (hash-bucket
	// style); 0 means 1.
	LockPool int
	// ConflictEvery makes every k-th execution a real conflicting update,
	// terminating RULE-1 scans (0 = never).
	ConflictEvery int
	// Cells is the number of shared cells the region touches (>= Threads
	// for disjoint writes); 0 means max(4, threads).
	Cells int
	// Spin marks the region's locks as spin locks (waiting burns CPU).
	Spin bool
	// Sites spreads the region's dynamic instances over several distinct
	// call sites (0 means 1). Real applications reach one lock from many
	// places — mysql's Case 8 hits fil_system->mutex from four functions —
	// and Table 2's grouped-ULCP counts depend on that spread.
	Sites int
	// ShareLockWith reuses the lock pool of the named earlier region, so
	// different code regions contend on the same lock object.
	ShareLockWith string
}

// Profile is a full application model: a set of regions executed
// round-robin by every worker thread.
type Profile struct {
	Name    string
	Regions []Region
}

// regionRT is the runtime state of one region within a built program.
type regionRT struct {
	spec         Region
	locks        []trace.LockID
	cells        []memmodel.Addr
	conflictCell memmodel.Addr
	// sites holds (lock-site, body-site, unlock-site) per call site.
	sites [][3]trace.SiteID
	iters int
	// readCS is the input-adjusted read-side critical-section length:
	// larger inputs mean longer traversals under the lock (mysql Case 2
	// walks the whole TRX list), which is why Fig. 16's normalized impact
	// grows with input size.
	readCS vtime.Duration
}

// mixRT is the built runtime of a region set within one program. The
// real-world app models combine it with hand-written idiom threads.
type mixRT struct {
	rts      []*regionRT
	maxIters int
	phase    sim.BarrierID
	sPhase   trace.SiteID
	// phaseEvery inserts the phase barrier every N rounds, keeping worker
	// threads in the same program phase — the reason the paper's Fig. 2
	// observes cross-thread pairs from "common codes repeatedly executed
	// in most threads". PARSEC workers are barrier-phased in reality.
	phaseEvery int
}

// newMixRT allocates locks, cells and sites for a region set on p.
func newMixRT(p *sim.Program, regions []Region, cfg Config) *mixRT {
	cfg = cfg.withDefaults()
	m := &mixRT{phaseEvery: 1}
	if len(regions) > 0 && cfg.Threads > 1 {
		m.phase = p.NewBarrier("phase_barrier", cfg.Threads)
		m.sPhase = p.Site(regions[0].File, 1, "phase")
	}
	for _, r := range regions {
		pool := r.LockPool
		if pool <= 0 {
			pool = 1
		}
		cells := r.Cells
		if cells == 0 {
			cells = cfg.Threads
			if cells < 4 {
				cells = 4
			}
		}
		rt := &regionRT{spec: r, iters: cfg.iters(r.Iters)}
		switch cfg.Input {
		case SimSmall:
			rt.readCS = r.CSLen * 7 / 10
		case SimMedium:
			rt.readCS = r.CSLen * 85 / 100
		default:
			rt.readCS = r.CSLen
		}
		if r.ShareLockWith != "" {
			for _, prev := range m.rts {
				if prev.spec.Name == r.ShareLockWith {
					rt.locks = prev.locks
					break
				}
			}
			if rt.locks == nil {
				panic(fmt.Sprintf("workload: region %s shares lock with unknown region %s", r.Name, r.ShareLockWith))
			}
		} else {
			for k := 0; k < pool; k++ {
				lname := fmt.Sprintf("%s.lock%d", r.Name, k)
				if r.Spin {
					rt.locks = append(rt.locks, p.NewSpinLock(lname))
				} else {
					rt.locks = append(rt.locks, p.NewLock(lname))
				}
			}
		}
		rt.cells = p.Mem.AllocN(r.Name+".data", cells, 0)
		rt.conflictCell = p.Mem.Alloc(r.Name+".state", 0)
		nsites := r.Sites
		if nsites <= 0 {
			nsites = 1
		}
		for si := 0; si < nsites; si++ {
			// Call sites are spaced far apart so distinct sites never fuse
			// into one code region.
			base := r.Line + si*60
			rt.sites = append(rt.sites, [3]trace.SiteID{
				p.Site(r.File, base, r.Name),
				p.Site(r.File, base+2, r.Name),
				p.Site(r.File, base+5, r.Name),
			})
		}
		m.rts = append(m.rts, rt)
		if rt.iters > m.maxIters {
			m.maxIters = rt.iters
		}
	}
	return m
}

// run executes the full round-robin schedule for worker t: in each round,
// every region whose quota is not exhausted runs once, so same-region
// critical sections from different threads interleave and form the
// cross-thread pairs Fig. 2's discussion predicts ("produced by some
// common codes ... repeatedly executed in most threads").
func (m *mixRT) run(th *sim.Thread, t int) {
	for round := 0; round < m.maxIters; round++ {
		for _, rt := range m.rts {
			if round < rt.iters {
				runRegion(th, rt, t, round)
			}
		}
		if m.phase != 0 && round%m.phaseEvery == 0 {
			th.Barrier(m.phase, m.sPhase)
		}
	}
}

// buildMix constructs a program whose threads only execute the profile.
func buildMix(name string, prof Profile, cfg Config) *sim.Program {
	cfg = cfg.withDefaults()
	p := sim.NewProgram(name)
	m := newMixRT(p, prof.Regions, cfg)
	for t := 0; t < cfg.Threads; t++ {
		t := t
		p.AddThread(func(th *sim.Thread) { m.run(th, t) })
	}
	return p
}

// runRegion executes one dynamic instance of a region on thread t.
func runRegion(th *sim.Thread, rt *regionRT, t, round int) {
	r := rt.spec
	lock := rt.locks[round%len(rt.locks)]
	site := rt.sites[round%len(rt.sites)]
	sLock, sBody, sUnlock := site[0], site[1], site[2]
	// Conflict cadence is per lock stream (round/pool is the position
	// within this lock's acquisition stream), so every stream sees a real
	// update every ConflictEvery positions and RULE-1 scans stay bounded.
	pos := round / len(rt.locks)
	conflict := r.ConflictEvery > 0 && (pos+1)%r.ConflictEvery == 0

	th.Lock(lock, sLock)
	switch {
	case conflict || r.Pattern == PatConflict:
		// A real update: read-modify-write of the region's hot state and
		// every data slot, conflicting with any concurrent pattern CS.
		v := th.Read(rt.conflictCell, sBody)
		th.Compute(jittered(th, r.CSLen))
		th.Write(rt.conflictCell, v+int64(t*1000+round+1), sBody)
		if r.Pattern != PatConflict {
			for _, c := range rt.cells {
				th.Write(c, int64(round+t+1), sBody)
			}
		}
	case r.Pattern == PatNull:
		th.Compute(jittered(th, r.CSLen))
	case r.Pattern == PatRead:
		th.Read(rt.cells[round%len(rt.cells)], sBody)
		th.Compute(jittered(th, rt.readCS))
	case r.Pattern == PatDisjointWrite:
		th.Write(rt.cells[t%len(rt.cells)], int64(round), sBody)
		th.Compute(jittered(th, r.CSLen))
	case r.Pattern == PatBenignAdd:
		th.Add(rt.cells[0], 1, sBody)
		th.Compute(jittered(th, r.CSLen))
	case r.Pattern == PatRedundantWrite:
		th.Write(rt.cells[0], 7, sBody)
		th.Compute(jittered(th, r.CSLen))
	}
	th.Unlock(lock, sUnlock)
	th.Compute(jittered(th, r.Gap))
}
