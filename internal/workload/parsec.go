package workload

import "perfplay/internal/sim"

// PARSEC benchmark models. Region iteration counts are calibrated so a
// 2-thread simlarge run lands near Table 1's dynamic lock counts and ULCP
// category mix (see EXPERIMENTS.md for the measured values). Region names
// and files follow each benchmark's real synchronization sites.

func parsecProfiles() []Profile {
	return []Profile{
		{
			// blackscholes uses no locks at all (Table 1: 0 locks).
			Name:    "blackscholes",
			Regions: nil,
		},
		{
			// bodytrack: a worker-pool with a hot ticket mutex (true
			// contention) plus read-mostly pool state and per-worker
			// result slots.
			Name: "bodytrack",
			Regions: []Region{
				{Name: "ticket_dispense", File: "TrackingModel.cpp", Line: 262,
					Pattern: PatConflict, Iters: 15500, CSLen: 90, Gap: 160},
				{Name: "pool_state_read", File: "WorkPoolPthread.cpp", Line: 118,
					Pattern: PatRead, Iters: 650, CSLen: 220, Gap: 240, ConflictEvery: 4, LockPool: 2},
				{Name: "result_merge", File: "ParticleFilterPthread.h", Line: 77,
					Pattern: PatDisjointWrite, Iters: 110, CSLen: 200, Gap: 260, ConflictEvery: 4},
				{Name: "frame_counter", File: "WorkPoolPthread.cpp", Line: 203,
					Pattern: PatBenignAdd, Iters: 48, CSLen: 120, Gap: 200, ConflictEvery: 2},
			},
		},
		{
			// canneal: a handful of genuinely conflicting swaps; Table 1
			// reports zero ULCPs.
			Name: "canneal",
			Regions: []Region{
				{Name: "element_swap", File: "annealer_thread.cpp", Line: 87,
					Pattern: PatConflict, Iters: 17, CSLen: 300, Gap: 500},
			},
		},
		{
			// dedup: pipeline queues (conflicting head/tail updates), a
			// read-mostly hash index, per-stage disjoint buffers, and rare
			// empty dequeues (null-locks).
			Name: "dedup",
			Regions: []Region{
				{Name: "queue_ops", File: "queue.c", Line: 46,
					Pattern: PatConflict, Iters: 6900, CSLen: 80, Gap: 140},
				{Name: "hash_lookup", File: "hashtable.c", Line: 220,
					Pattern: PatRead, Iters: 900, CSLen: 180, Gap: 180, ConflictEvery: 6, LockPool: 2},
				{Name: "chunk_buffers", File: "encoder.c", Line: 513,
					Pattern: PatDisjointWrite, Iters: 650, CSLen: 170, Gap: 190, ConflictEvery: 6},
				{Name: "empty_dequeue", File: "queue.c", Line: 31,
					Pattern: PatNull, Iters: 70, CSLen: 60, Gap: 150, LockPool: 20},
				{Name: "stat_counter", File: "dedup.c", Line: 301,
					Pattern: PatBenignAdd, Iters: 90, CSLen: 90, Gap: 170, ConflictEvery: 3},
			},
		},
		{
			// facesim: large-grained critical sections (the paper notes
			// facesim's ULCPs cover "larger-scale critical sections",
			// Sec. 6.3) over mesh partitions.
			Name: "facesim",
			Regions: []Region{
				{Name: "task_queue", File: "TASK_Q.cpp", Line: 58,
					Pattern: PatConflict, Iters: 5900, CSLen: 150, Gap: 260},
				{Name: "mesh_read", File: "FACE_DRIVER.cpp", Line: 190,
					Pattern: PatRead, Iters: 330, CSLen: 1500, Gap: 420, ConflictEvery: 4, LockPool: 2, Sites: 2},
				{Name: "partition_update", File: "DEFORMABLE_BODY.cpp", Line: 334,
					Pattern: PatDisjointWrite, Iters: 270, CSLen: 1300, Gap: 430, ConflictEvery: 6, Sites: 2},
				{Name: "frame_gate", File: "TASK_Q.cpp", Line: 41,
					Pattern: PatNull, Iters: 45, CSLen: 80, Gap: 200, LockPool: 20},
				{Name: "norm_accum", File: "DEFORMABLE_BODY.cpp", Line: 402,
					Pattern: PatBenignAdd, Iters: 12, CSLen: 400, Gap: 300, ConflictEvery: 2},
			},
		},
		{
			// ferret: similarity-search pipeline; its standout feature in
			// Table 1 is the benign-heavy mix (rank accumulation).
			Name: "ferret",
			Regions: []Region{
				{Name: "pipeline_queue", File: "ferret-pthreads.c", Line: 160,
					Pattern: PatConflict, Iters: 2700, CSLen: 100, Gap: 180},
				{Name: "cass_table_read", File: "cass_table.c", Line: 88,
					Pattern: PatRead, Iters: 80, CSLen: 260, Gap: 240, ConflictEvery: 4, LockPool: 2},
				{Name: "rank_accum", File: "cass_result.c", Line: 37,
					Pattern: PatBenignAdd, Iters: 220, CSLen: 160, Gap: 210, ConflictEvery: 3},
				{Name: "slot_fill", File: "ferret-pthreads.c", Line: 244,
					Pattern: PatDisjointWrite, Iters: 190, CSLen: 150, Gap: 210, ConflictEvery: 4},
				{Name: "probe_gate", File: "ferret-pthreads.c", Line: 131,
					Pattern: PatNull, Iters: 12, CSLen: 50, Gap: 160, LockPool: 6},
			},
		},
		{
			// fluidanimate: the most lock-intensive PARSEC benchmark —
			// fine-grained per-cell locks, overwhelmingly parallelizable
			// (huge read-read and disjoint-write counts).
			Name: "fluidanimate",
			Regions: []Region{
				{Name: "cell_force_read", File: "pthreads.cpp", Line: 410,
					Pattern: PatRead, Iters: 5800, CSLen: 110, Gap: 90, ConflictEvery: 3, LockPool: 3},
				{Name: "cell_density", File: "pthreads.cpp", Line: 341,
					Pattern: PatDisjointWrite, Iters: 5400, CSLen: 100, Gap: 95, ConflictEvery: 3, LockPool: 2},
				{Name: "border_exchange", File: "pthreads.cpp", Line: 520,
					Pattern: PatConflict, Iters: 29500, CSLen: 60, Gap: 80},
				{Name: "mass_accum", File: "pthreads.cpp", Line: 471,
					Pattern: PatBenignAdd, Iters: 160, CSLen: 90, Gap: 110, ConflictEvery: 3},
				{Name: "grid_gate", File: "pthreads.cpp", Line: 283,
					Pattern: PatNull, Iters: 4, CSLen: 40, Gap: 90, LockPool: 4},
			},
		},
		{
			// streamcluster: barrier-style phases with a few conflicting
			// center updates; zero ULCPs in Table 1.
			Name: "streamcluster",
			Regions: []Region{
				{Name: "center_update", File: "streamcluster.cpp", Line: 988,
					Pattern: PatConflict, Iters: 95, CSLen: 250, Gap: 420},
			},
		},
		{
			// swaptions: almost lock-free; a tiny conflicting work queue.
			Name: "swaptions",
			Regions: []Region{
				{Name: "swaption_queue", File: "HJM_Securities.cpp", Line: 156,
					Pattern: PatConflict, Iters: 11, CSLen: 200, Gap: 600},
			},
		},
		{
			// vips: image operation cache with read-mostly descriptor
			// lookups and per-band disjoint writes.
			Name: "vips",
			Regions: []Region{
				{Name: "op_dispatch", File: "threadgroup.c", Line: 324,
					Pattern: PatConflict, Iters: 13900, CSLen: 70, Gap: 120},
				{Name: "cache_probe", File: "im_prepare.c", Line: 144,
					Pattern: PatRead, Iters: 1700, CSLen: 140, Gap: 130, ConflictEvery: 4, LockPool: 2},
				{Name: "band_write", File: "im_generate.c", Line: 412,
					Pattern: PatDisjointWrite, Iters: 380, CSLen: 130, Gap: 140, ConflictEvery: 6},
				{Name: "eval_gate", File: "threadgroup.c", Line: 276,
					Pattern: PatNull, Iters: 85, CSLen: 50, Gap: 110, LockPool: 50},
				{Name: "progress_accum", File: "im_iterate.c", Line: 207,
					Pattern: PatBenignAdd, Iters: 22, CSLen: 80, Gap: 120, ConflictEvery: 2},
			},
		},
		{
			// x264: frame reference waits produce many null-locks (the
			// largest NL count in Table 1) beside read-mostly reference
			// lookups.
			Name: "x264",
			Regions: []Region{
				{Name: "frame_encode", File: "encoder.c", Line: 1840,
					Pattern: PatConflict, Iters: 5400, CSLen: 110, Gap: 150},
				{Name: "ref_lookup", File: "frame.c", Line: 560,
					Pattern: PatRead, Iters: 1300, CSLen: 160, Gap: 170, ConflictEvery: 6, LockPool: 2},
				{Name: "mb_row_write", File: "frame.c", Line: 612,
					Pattern: PatDisjointWrite, Iters: 140, CSLen: 150, Gap: 170, ConflictEvery: 6},
				{Name: "ref_wait_gate", File: "frame.c", Line: 543,
					Pattern: PatNull, Iters: 310, CSLen: 60, Gap: 120, LockPool: 100},
				{Name: "bitrate_accum", File: "ratecontrol.c", Line: 998,
					Pattern: PatBenignAdd, Iters: 55, CSLen: 90, Gap: 150, ConflictEvery: 2},
			},
		},
	}
}

// parsecMeta echoes Table 1's static columns.
var parsecMeta = map[string][2]string{
	"blackscholes":  {"812", "204K"},
	"bodytrack":     {"10K", "9.0M"},
	"canneal":       {"4K", "628K"},
	"dedup":         {"3.6K", "156K"},
	"facesim":       {"29K", "4.8K"},
	"ferret":        {"9.7K", "316K"},
	"fluidanimate":  {"1.4K", "72K"},
	"streamcluster": {"1.3K", "44K"},
	"swaptions":     {"1.5K", "152K"},
	"vips":          {"3.2K", "17M"},
	"x264":          {"40.3K", "2.4M"},
}

func init() {
	for _, prof := range parsecProfiles() {
		prof := prof
		meta := parsecMeta[prof.Name]
		register(&App{
			Name:    prof.Name,
			Kind:    "parsec",
			LOC:     meta[0],
			BinSize: meta[1],
			Build: func(cfg Config) *sim.Program {
				return buildMix(prof.Name, prof, cfg)
			},
		})
	}
}
