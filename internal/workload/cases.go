package workload

import (
	"fmt"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
)

// Appendix A of the paper lists ten real-world ULCP cases "mainly used for
// the discussion and understanding of ULCP manifestation". Each is
// reproduced here as a small standalone program whose identification
// outcome the test suite pins down. BuildCase returns the program for a
// case number (1-10).
//
//	Case 1  — pthread_cond_wait's unlock/relock manufactures null-locks.
//	Case 2  — lock_print_info_all_transactions: read-only TRX traversal.
//	Case 3  — disjoint fields of one object (slot->suspended vs
//	          slot->in_use/type) under srv_sys mutex.
//	Case 4  — LOCK_thd_data covers both query fields and mysys_var abort.
//	Case 5  — THD::set_query_id vs THD::set_mysys_var: disjoint members.
//	Case 6  — a coarse lock over a partitionable transaction.
//	Case 7  — Bug #37844: spinning on the query-cache trylock.
//	Case 8  — Bug #69276: fil_space_get_by_id hash lookups, 4x per read.
//	Case 9  — Bug #68573: timed wait under structure_guard_mutex (Fig. 17).
//	Case 10 — Bug #60951: global read lock serializing UPDATE and DELETE.
func BuildCase(n int, cfg Config) (*sim.Program, error) {
	cfg = cfg.withDefaults()
	builders := map[int]func(Config) *sim.Program{
		1:  buildCase1,
		2:  buildCase2,
		3:  buildCase3,
		4:  buildCase4,
		5:  buildCase5,
		6:  buildCase6,
		7:  buildCase7,
		8:  buildCase8,
		9:  buildCase9,
		10: buildCase10,
	}
	b, ok := builders[n]
	if !ok {
		return nil, fmt.Errorf("workload: unknown appendix case %d (valid: 1-10)", n)
	}
	return b(cfg), nil
}

// Case 1: the second lock/unlock pair of pthread_cond_wait holds the lock
// around no shared access — a null-lock per wakeup.
func buildCase1(cfg Config) *sim.Program {
	p := sim.NewProgram("case1-condwait")
	l := p.NewLock("L")
	c := p.NewCond("cond")
	ready := p.Mem.Alloc("queue.ready", 0)
	sWait := p.Site("pthread_cond_wait.c", 12, "waiter")
	sSig := p.Site("producer.c", 40, "producer")
	for i := 0; i < cfg.Threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			th.Lock(l, sWait)
			for th.Read(ready, sWait) == 0 {
				// Wait releases L, sleeps, re-acquires: the re-acquired
				// critical section re-reads the predicate only.
				th.Wait(c, l, sWait)
			}
			th.Unlock(l, sWait)
		})
	}
	p.AddThread(func(th *sim.Thread) {
		th.Compute(2000)
		th.Lock(l, sSig)
		th.Write(ready, 1, sSig)
		th.Unlock(l, sSig)
		th.Broadcast(c, sSig)
	})
	return p
}

// Case 2: multiple threads traverse the whole TRX list read-only under
// lock_sys + trx_sys mutexes — read-read ULCPs on both locks.
func buildCase2(cfg Config) *sim.Program {
	p := sim.NewProgram("case2-lockprint")
	lockMutex := p.NewLock("lock_sys->mutex")
	trxMutex := p.NewLock("trx_sys->mutex")
	trxList := p.Mem.AllocN("trx_sys->trx_list", 6, 3)
	s := p.Site("storage/innobase/lock/lock0lock.cc", 5203, "lock_print_info_all_transactions")
	for i := 0; i < cfg.Threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(4); it++ {
				th.Lock(lockMutex, s)
				th.Lock(trxMutex, s)
				for _, trx := range trxList {
					th.Read(trx, s)
					th.Compute(120) // format one TRX into the file
				}
				th.Unlock(trxMutex, s)
				th.Unlock(lockMutex, s)
				th.Compute(jittered(th, 400))
			}
		})
	}
	return p
}

// Case 3: srv_release_threads writes slot->suspended while
// srv_threads_has_released_slot reads slot->in_use and slot->type —
// disjoint fields of the same object.
func buildCase3(cfg Config) *sim.Program {
	p := sim.NewProgram("case3-slotfields")
	mu := p.NewLock("srv_sys->mutex")
	suspended := p.Mem.Alloc("slot->suspended", 1)
	inUse := p.Mem.Alloc("slot->in_use", 1)
	typ := p.Mem.Alloc("slot->type", 2)
	sRel := p.Site("storage/innobase/srv/srv0srv.cc", 800, "srv_release_threads")
	sChk := p.Site("storage/innobase/srv/srv0srv.cc", 860, "srv_threads_has_released_slot")
	p.AddThread(func(th *sim.Thread) {
		for it := 0; it < cfg.iters(6); it++ {
			th.Lock(mu, sRel)
			th.Write(suspended, 0, sRel)
			th.Compute(180)
			th.Unlock(mu, sRel)
			th.Compute(jittered(th, 300))
		}
	})
	for i := 1; i < cfg.Threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(6); it++ {
				th.Lock(mu, sChk)
				th.Read(inUse, sChk)
				th.Read(typ, sChk)
				th.Compute(160)
				th.Unlock(mu, sChk)
				th.Compute(jittered(th, 280))
			}
		})
	}
	return p
}

// Case 4 (Bug #73168): LOCK_thd_data protects thd->query for the
// processlist reader but is also taken around mysys_var->abort on the
// connection-close path, blocking queries needlessly.
func buildCase4(cfg Config) *sim.Program {
	p := sim.NewProgram("case4-thddata")
	mu := p.NewLock("tmp->LOCK_thd_data")
	query := p.Mem.Alloc("thd->query", 7)
	mysysAbort := p.Mem.Alloc("thd->mysys_var->abort", 0)
	sClose := p.Site("sql/mysqld.cc", 1391, "close_connections")
	sList := p.Site("sql/sql_show.cc", 2232, "fill_schema_processlist")
	p.AddThread(func(th *sim.Thread) {
		for it := 0; it < cfg.iters(4); it++ {
			th.Compute(jittered(th, 900))
			th.Lock(mu, sClose)
			th.Write(mysysAbort, 1, sClose)
			th.Compute(250)
			th.Unlock(mu, sClose)
		}
	})
	for i := 1; i < cfg.Threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(6); it++ {
				th.Lock(mu, sList)
				th.Read(query, sList)
				th.Compute(300) // copy PROCESS_LIST_INFO_WIDTH bytes
				th.Unlock(mu, sList)
				th.Compute(jittered(th, 350))
			}
		})
	}
	return p
}

// Case 5: both THD::set_query_id and THD::set_mysys_var assign different
// members under LOCK_thd_data — a pure disjoint-write pair the paper says
// "we can benefit with less overhead if replacing mutex with lock-free
// atomic operations".
func buildCase5(cfg Config) *sim.Program {
	p := sim.NewProgram("case5-setmembers")
	mu := p.NewLock("LOCK_thd_data")
	queryID := p.Mem.Alloc("thd->query_id", 0)
	mysysVar := p.Mem.Alloc("thd->mysys_var", 0)
	sQID := p.Site("sql/sql_class.cc", 4526, "THD::set_query_id")
	sVar := p.Site("sql/sql_class.cc", 4534, "THD::set_mysys_var")
	half := cfg.Threads / 2
	if half == 0 {
		half = 1
	}
	for i := 0; i < half; i++ {
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(8); it++ {
				th.Lock(mu, sQID)
				th.Write(queryID, int64(it+1), sQID)
				th.Unlock(mu, sQID)
				th.Compute(jittered(th, 320))
			}
		})
	}
	for i := half; i < cfg.Threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(8); it++ {
				th.Lock(mu, sVar)
				th.Write(mysysVar, int64(100+it), sVar)
				th.Unlock(mu, sVar)
				th.Compute(jittered(th, 340))
			}
		})
	}
	return p
}

// Case 6: one coarse lock over a large transaction that in fact touches
// partitionable halves of the data.
func buildCase6(cfg Config) *sim.Program {
	p := sim.NewProgram("case6-coarse")
	mu := p.NewLock("LOCK_big")
	parts := p.Mem.AllocN("table.partition", cfg.Threads, 0)
	s := p.Site("sql/handler.cc", 2098, "mysql_list_process")
	for i := 0; i < cfg.Threads; i++ {
		i := i
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(6); it++ {
				th.Lock(mu, s)
				th.Read(parts[i], s)
				th.Compute(700) // the large, mis-synchronized transaction
				th.Write(parts[i], int64(it), s)
				th.Unlock(mu, s)
				th.Compute(jittered(th, 250))
			}
		})
	}
	return p
}

// Case 7 (Bug #37844): only one thread can search the query cache at a
// time; the others spin on pthread_mutex_trylock, wasting CPU.
func buildCase7(cfg Config) *sim.Program {
	p := sim.NewProgram("case7-qcspin")
	mu := p.NewLock("structure_guard_mutex")
	cache := p.Mem.Alloc("query_cache.index", 11)
	s := p.Site("sql/sql_cache.cc", 1155, "Query_cache::send_result_to_client")
	for i := 0; i < cfg.Threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(5); it++ {
				spins := 0
				for !th.TryLock(mu, s) {
					spins++
					th.Compute(90) // my_sleep(0) busy loop
					if spins > 200 {
						break
					}
				}
				if spins <= 200 {
					th.Read(cache, s)
					th.Compute(650) // search the cache
					th.Unlock(mu, s)
				}
				th.Compute(jittered(th, 280))
			}
		})
	}
	return p
}

// Case 8 (Bug #69276): every block read performs at least four
// fil_space_get_by_id hash lookups under fil_system->mutex; read-only
// transactions serialize on it with "a slowdown of 4X at least".
func buildCase8(cfg Config) *sim.Program {
	p := sim.NewProgram("case8-hashlookup")
	mu := p.NewLock("fil_system->mutex")
	hash := p.Mem.AllocN("fil_system->spaces", 8, 5)
	// Sites are interned up front, as in every other case, rather than
	// from inside the thread bodies: the threads run as concurrent
	// goroutines under the simulator, so per-iteration interning would
	// hammer the (now synchronized) site table from all of them.
	lookups := []struct {
		fn   string
		line int
	}{
		{"fil_space_get_version", 4890},
		{"fil_inc_pending_ops", 4932},
		{"fil_decr_pending_ops", 4961},
		{"fil_space_get_size", 4850},
	}
	sites := make([]trace.SiteID, len(lookups))
	for i, l := range lookups {
		sites[i] = p.Site("storage/innobase/fil/fil0fil.cc", l.line, l.fn)
	}
	for i := 0; i < cfg.Threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(5); it++ {
				for _, s := range sites {
					th.Lock(mu, s)
					th.Read(hash[it%len(hash)], s)
					th.Compute(200)
					th.Unlock(mu, s)
				}
				th.Compute(jittered(th, 500)) // the block read itself
			}
		})
	}
	return p
}

// Case 9 (Bug #68573, Fig. 17): Query_cache::try_lock holds
// structure_guard_mutex around a timed condition wait; the waiters'
// unlock/sleep/relock cycles serialize and inflate the 50 ms timeout.
func buildCase9(cfg Config) *sim.Program {
	p := sim.NewProgram("case9-trylock")
	mu := p.NewLock("structure_guard_mutex")
	cond := p.NewCond("COND_cache_status_changed")
	s := p.Site("sql/sql_cache.cc", 458, "Query_cache::try_lock")
	for i := 0; i < cfg.Threads; i++ {
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(3); it++ {
				th.Lock(mu, s)
				th.TimedWait(cond, mu, 5000, s) // 50ms at simulator scale
				th.Unlock(mu, s)
				th.Compute(jittered(th, 700))
			}
		})
	}
	return p
}

// Case 10 (Bug #60951): wait_if_global_read_lock serializes UPDATE and
// DELETE statements even when they touch different fields.
func buildCase10(cfg Config) *sim.Program {
	p := sim.NewProgram("case10-globalreadlock")
	mu := p.NewLock("LOCK_global_read_lock")
	protectAgainst := p.Mem.Alloc("protect_against_global_read_lock", 0)
	fields := p.Mem.AllocN("table.field", cfg.Threads, 0)
	sUpd := p.Site("sql/sql_parse.cc", 3792, "mysql_update_path")
	sDel := p.Site("sql/sql_parse.cc", 4009, "mysql_delete_path")
	for i := 0; i < cfg.Threads; i++ {
		i := i
		site := sUpd
		if i%2 == 1 {
			site = sDel
		}
		p.AddThread(func(th *sim.Thread) {
			for it := 0; it < cfg.iters(5); it++ {
				th.Lock(mu, site)
				th.Read(protectAgainst, site) // must_wait check
				th.Add(protectAgainst, 0, site)
				th.Unlock(mu, site)
				// The statement proper touches this thread's own field.
				th.Compute(jittered(th, 500))
				th.Write(fields[i], int64(it), site)
			}
		})
	}
	return p
}
