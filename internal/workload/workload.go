// Package workload models the sixteen applications of the paper's
// evaluation — five real-world programs (openldap, mysql, pbzip2,
// transmissionBT, handbrake) and eleven PARSEC benchmarks — as simulator
// programs, plus the verified case-study bugs of Sec. 6.6.
//
// Each model reproduces the application's *dynamic locking behaviour* as
// the paper characterizes it (Table 1's lock counts and ULCP category
// mix, and the idioms of the appendix cases), not its computation: ULCP
// analysis consumes only the trace — lock order, per-CS read/write sets
// and segment costs — so that is what the models generate.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"perfplay/internal/sim"
	"perfplay/internal/vtime"
)

// InputSize selects the PARSEC-style input class.
type InputSize int

// PARSEC input classes (Sec. 6.1 runs simlarge by default; Fig. 16 sweeps
// all three).
// The zero value selects the default class, simlarge.
const (
	SimDefault InputSize = iota
	SimSmall
	SimMedium
	SimLarge
)

// String names the input class as PARSEC does.
func (s InputSize) String() string {
	switch s {
	case SimSmall:
		return "simsmall"
	case SimMedium:
		return "simmedium"
	case SimLarge:
		return "simlarge"
	default:
		return fmt.Sprintf("InputSize(%d)", int(s))
	}
}

// ParseInputSize maps a PARSEC input-class name to its InputSize; the
// empty string selects the default class (simlarge). Shared by every
// front end that accepts the class by name (CLI flags, daemon specs).
func ParseInputSize(name string) (InputSize, error) {
	switch strings.ToLower(name) {
	case "", "simlarge":
		return SimLarge, nil
	case "simmedium":
		return SimMedium, nil
	case "simsmall":
		return SimSmall, nil
	}
	return 0, fmt.Errorf("workload: unknown input size %q", name)
}

// factor converts the input class to an iteration multiplier.
func (s InputSize) factor() float64 {
	switch s {
	case SimSmall:
		return 0.25
	case SimMedium:
		return 0.5
	default:
		return 1.0
	}
}

// Config parameterizes one workload build.
type Config struct {
	// Threads is the worker thread count (paper default: 2).
	Threads int
	// Input is the PARSEC input class; real-world apps map it onto their
	// own input units (search entries, file size).
	Input InputSize
	// Scale multiplies every iteration count; 1.0 reproduces paper-scale
	// dynamic lock counts, tests use smaller values. Zero means 1.0.
	Scale float64
	// Seed feeds the simulator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 2
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Input <= SimDefault || c.Input > SimLarge {
		c.Input = SimLarge
	}
	return c
}

// iters scales a base per-thread iteration count by Scale and Input.
func (c Config) iters(base int) int {
	n := int(float64(base) * c.Scale * c.Input.factor())
	if n < 1 {
		n = 1
	}
	return n
}

// App is a registered workload.
type App struct {
	// Name is the canonical lower-case application name.
	Name string
	// Kind is "server", "desktop" or "parsec".
	Kind string
	// LOC and BinSize echo Table 1's static columns (code size of the
	// modelled application), for report output only.
	LOC, BinSize string
	// Build constructs the simulator program.
	Build func(cfg Config) *sim.Program
}

var registry = map[string]*App{}

// order fixes the presentation order to Table 1's: the five real-world
// programs, then PARSEC.
var order = []string{
	"openldap", "mysql", "pbzip2", "transmissionBT", "handbrake",
	"blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
	"fluidanimate", "streamcluster", "swaptions", "vips", "x264",
}

func register(a *App) {
	if _, dup := registry[a.Name]; dup {
		panic("workload: duplicate app " + a.Name)
	}
	found := false
	for _, n := range order {
		if n == a.Name {
			found = true
			break
		}
	}
	if !found {
		panic("workload: app " + a.Name + " missing from presentation order")
	}
	registry[a.Name] = a
}

// Get returns a registered app by name.
func Get(name string) (*App, bool) {
	a, ok := registry[name]
	return a, ok
}

// MustGet returns a registered app or panics; for harness code whose app
// names are compile-time constants.
func MustGet(name string) *App {
	a, ok := registry[name]
	if !ok {
		panic("workload: unknown app " + name)
	}
	return a
}

// Names lists all registered app names in Table 1 order.
func Names() []string {
	out := append([]string(nil), order...)
	return out
}

// All returns every registered app in Table 1 order.
func All() []*App {
	out := make([]*App, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// Parsec returns the PARSEC benchmark apps.
func Parsec() []*App { return byKind("parsec") }

// RealWorld returns the five real-world programs.
func RealWorld() []*App {
	out := byKind("server")
	out = append(out, byKind("desktop")...)
	return out
}

func byKind(kind string) []*App {
	var out []*App
	for _, n := range order {
		if registry[n].Kind == kind {
			out = append(out, registry[n])
		}
	}
	return out
}

// SortedNames returns registered names alphabetically (for CLI help).
func SortedNames() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// jittered returns d perturbed by ±12% using the thread's deterministic
// RNG, avoiding artificial lockstep between identical thread bodies.
func jittered(th *sim.Thread, d vtime.Duration) vtime.Duration {
	if d <= 0 {
		return d
	}
	span := int(d / 4)
	if span == 0 {
		return d
	}
	return d - vtime.Duration(span/2) + vtime.Duration(th.Intn(span))
}
