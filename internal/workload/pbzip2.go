package workload

import (
	"perfplay/internal/sim"
	"perfplay/internal/vtime"
)

// pbzip2 models the parallel bzip2 compressor (Sec. 6.1: compressing a
// 256 MB file with two processors): a producer reads file blocks into a
// FIFO, consumer threads pop and compress them into per-consumer output
// slots, and a file-writer thread drains the slots. The end/empty stage
// contains case-study #BUG 2 (Fig. 18): whenever the FIFO is empty, every
// consumer checks
//
//	lock(mu);   load(fifo->empty);
//	lock(muDone); load(producerDone); unlock(muDone);
//	unlock(mu);
//
// — nested read-read ULCPs that serialize the consumers' polling and,
// at the join, all their exits.
//
// The simulated thread layout matches the real program: one producer,
// cfg.Threads consumers, one file writer.

// buildPbzip2 builds the buggy (as-shipped) compressor model.
func buildPbzip2(cfg Config) *sim.Program {
	return buildPbzip2Variant(cfg, false)
}

// BuildPbzip2Fixed models the paper's signal/wait fix for #BUG 2: the
// producer takes responsibility for the fifo->empty/producerDone check and
// signals consumers once at the end, so the polling pairs disappear.
func BuildPbzip2Fixed(cfg Config) *sim.Program {
	return buildPbzip2Variant(cfg, true)
}

func buildPbzip2Variant(cfg Config, fixed bool) *sim.Program {
	cfg = cfg.withDefaults()
	name := "pbzip2"
	if fixed {
		name = "pbzip2-fixed"
	}
	p := sim.NewProgram(name)

	mu := p.NewLock("mu")             // FIFO mutex
	muDone := p.NewLock("muDone")     // producer-done mutex
	outMu := p.NewLock("OutMutex")    // output-slot mutex
	notEmpty := p.NewCond("notEmpty") // consumer wakeup

	fifoLen := p.Mem.Alloc("fifo->len", 0)
	fifoHead := p.Mem.Alloc("fifo->head", 0)
	fifoTail := p.Mem.Alloc("fifo->tail", 0)
	producerDone := p.Mem.Alloc("producerDone", 0)
	outSlots := p.Mem.AllocN("OutputBuffer", cfg.Threads, 0)
	outTail := p.Mem.Alloc("OutputBuffer->tail", 0)
	progress := p.Mem.Alloc("bytesCompleted", 0)

	sProd := p.Site("pbzip2.cpp", 1030, "producer")
	sCons := p.Site("pbzip2.cpp", 2109, "consumer")
	sPop := p.Site("pbzip2.cpp", 2140, "consumer")
	sDone := p.Site("pbzip2.cpp", 534, "syncGetProducerDone")
	sSetDone := p.Site("pbzip2.cpp", 1101, "producer")
	sOut := p.Site("pbzip2.cpp", 2205, "consumer")
	sWriter := p.Site("pbzip2.cpp", 840, "fileWriter")
	sProg := p.Site("pbzip2.cpp", 2262, "consumer")
	progressMu := p.NewLock("ProgressMutex")

	blocks := cfg.iters(350) // block count scales with input file size

	// Producer: read a block (I/O modelled as compute), push under mu.
	// The FIFO is bounded as in the real program, so the producer paces
	// itself to the consumers.
	const fifoCap = 1
	// Seeks happen per file segment: their count is input-independent, so
	// the polling windows (and #BUG 2's absolute cost) stay fixed while
	// the run grows with the input — the declining trend of Fig. 19b.
	seekEvery := blocks / 29
	if seekEvery < 6 {
		seekEvery = 6
	}
	p.AddThread(func(th *sim.Thread) {
		for b := 0; b < blocks; b++ {
			// Reading is usually faster than compressing, but periodically
			// a disk seek stalls the producer and the FIFO drains — that
			// is when the consumers start polling (the #BUG 2 window).
			cost := vtime.Duration(1150)
			if b%seekEvery == seekEvery-1 {
				cost = 3600
			}
			th.Compute(jittered(th, cost))
			for {
				th.Lock(mu, sProd)
				if th.Read(fifoLen, sProd) < fifoCap {
					v := th.Read(fifoTail, sProd)
					th.Write(fifoTail, v+1, sProd)
					th.Add(fifoLen, 1, sProd)
					th.Unlock(mu, sProd)
					break
				}
				th.Unlock(mu, sProd)
				th.Compute(jittered(th, 400)) // FIFO full: brief backoff
			}
			if fixed {
				th.Signal(notEmpty, sProd)
			}
		}
		th.Lock(muDone, sSetDone)
		th.Write(producerDone, 1, sSetDone)
		th.Unlock(muDone, sSetDone)
		if fixed {
			// Wake any consumer parked on the empty FIFO. Taking mu first
			// guarantees every consumer that read producerDone==0 has
			// already entered the wait queue (no lost wakeup).
			th.Lock(mu, sSetDone)
			th.Read(fifoLen, sSetDone)
			th.Unlock(mu, sSetDone)
			th.Broadcast(notEmpty, sSetDone)
		}
	})

	perConsumer := cfg.Threads
	if perConsumer < 1 {
		perConsumer = 1
	}
	compressCost := vtime.Duration(3000 * perConsumer / 2) // keep consumers slightly starved

	for t := 0; t < cfg.Threads; t++ {
		t := t
		p.AddThread(func(th *sim.Thread) {
			written := int64(0)
			backoff := vtime.Duration(150)
			th.Lock(mu, sCons)
			for {
				n := th.Read(fifoLen, sCons)
				if n > 0 {
					h := th.Read(fifoHead, sPop)
					th.Write(fifoHead, h+1, sPop)
					th.Add(fifoLen, -1, sPop)
					th.Unlock(mu, sCons)
					// bzip2 block compression has very uniform cost, so the
					// consumers stay in phase and collide at the output
					// queue every block.
					th.Compute(compressCost)
					// Publish into this consumer's private output slot — a
					// disjoint write under the shared output lock. Every few
					// blocks the shared queue tail must advance too (a real
					// conflicting update).
					written++
					th.Lock(outMu, sOut)
					// Inserting reads the shared queue tail, copies the
					// block descriptor, and advances the tail once the
					// local batch fills.
					tail := th.Read(outTail, sOut)
					th.Compute(90)
					th.Write(outSlots[t], written, sOut)
					if written%4 == 0 {
						th.Write(outTail, tail+4, sOut)
					}
					th.Unlock(outMu, sOut)
					// Coarse progress reporting for the UI.
					if written%14 == 0 {
						th.Lock(progressMu, sProg)
						if written%42 == 0 {
							v := th.Read(progress, sProg)
							th.Write(progress, v+42, sProg)
						} else {
							th.Add(progress, 14, sProg)
						}
						th.Unlock(progressMu, sProg)
					}
					th.Lock(mu, sCons)
					backoff = 150
					continue
				}
				if fixed {
					// Fixed variant: the producer owns the end check; a
					// consumer just waits to be told (signal/wait model).
					d := th.Read(producerDone, sDone)
					if d == 1 {
						break
					}
					th.Wait(notEmpty, mu, sCons)
					continue
				}
				// #BUG 2: FIFO empty — poll producerDone under the nested
				// muDone lock (the read-read ULCP of Fig. 18), then spin
				// with backoff. The polling burns CPU and the nested locks
				// serialize all consumers' checks.
				th.Lock(muDone, sDone)
				d := th.Read(producerDone, sDone)
				th.Unlock(muDone, sDone)
				if d == 1 {
					break
				}
				th.Unlock(mu, sCons)
				th.Compute(jittered(th, backoff))
				backoff *= 2
				if backoff > 2400 {
					backoff = 2400
				}
				th.Lock(mu, sCons)
			}
			th.Unlock(mu, sCons)
		})
	}

	// File writer: drain the output slots until every block is written.
	p.AddThread(func(th *sim.Thread) {
		for {
			th.Lock(outMu, sWriter)
			var sum int64
			for _, slot := range outSlots {
				sum += th.Read(slot, sWriter)
			}
			th.Unlock(outMu, sWriter)
			if sum >= int64(blocks) {
				return
			}
			th.Compute(jittered(th, 9000)) // write accumulated output
		}
	})
	return p
}

func init() {
	register(&App{
		Name: "pbzip2", Kind: "desktop", LOC: "5K", BinSize: "1M",
		Build: buildPbzip2,
	})
}
