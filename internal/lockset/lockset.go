// Package lockset implements the auxiliary-lock re-synchronization of
// RULE 3 and the lockset mutual-exclusion relation of RULE 4.
//
// Each causal node with outgoing edges is granted a fresh auxiliary lock
// ("@L" in Fig. 8); each node with incoming edges inherits the auxiliary
// locks of its source nodes. Two critical sections are mutually exclusive
// iff their locksets intersect. The dynamic locking strategy (Fig. 9) is
// carried through to replay as per-member source release events: a source
// whose END flag is set at runtime contributes no lock.
package lockset

import (
	"sort"

	"perfplay/internal/topo"
	"perfplay/internal/trace"
)

// Set is a sorted set of lock IDs — a critical section's lockset LS.
type Set []trace.LockID

// NewSet builds a sorted set from locks.
func NewSet(locks ...trace.LockID) Set {
	s := append(Set(nil), locks...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// Contains reports membership.
func (s Set) Contains(l trace.LockID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= l })
	return i < len(s) && s[i] == l
}

// Intersects implements RULE 4's test: the pair is mutually exclusive iff
// the intersection is non-empty.
func (s Set) Intersects(o Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			return true
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// MutuallyExclusive is RULE 4 spelled out: two critical sections exclude
// each other iff their locksets share a lock.
func MutuallyExclusive(a, b Set) bool { return a.Intersects(b) }

// Assignment is the RULE-3 outcome: the lockset of every causal node,
// with per-member provenance for the dynamic locking strategy.
type Assignment struct {
	// Own maps a node ID to its fresh auxiliary lock (outdegree > 0 only).
	Own map[int]trace.LockID
	// Sets maps node IDs to their locksets, sorted.
	Sets map[int]Set
	// Sources parallels Sets: Sources[id][i] is the source node whose own
	// lock is Sets[id][i], or -1 when the lock is the node's own.
	Sources map[int][]int
	// NumAux is the count of auxiliary locks allocated.
	NumAux int
}

// Assign performs the RULE-3 re-synchronization over the ULCP-free
// topology: fresh lock per out-degree node, inherited source locks per
// in-degree node. Standalone nodes receive empty locksets (their lock
// operations will be removed).
func Assign(g *topo.Graph) *Assignment {
	a := &Assignment{
		Own:     make(map[int]trace.LockID),
		Sets:    make(map[int]Set),
		Sources: make(map[int][]int),
	}
	// Deterministic allocation: walk causal nodes in ascending ID order.
	for _, id := range g.CausalNodes() {
		if g.OutDeg(id) > 0 {
			a.NumAux++
			a.Own[id] = trace.AuxLockBase + trace.LockID(a.NumAux)
		}
	}
	for _, id := range g.CausalNodes() {
		type member struct {
			lock trace.LockID
			src  int
		}
		var members []member
		if own, ok := a.Own[id]; ok {
			members = append(members, member{lock: own, src: -1})
		}
		for _, src := range g.Sources(id) {
			if own, ok := a.Own[src]; ok {
				members = append(members, member{lock: own, src: src})
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i].lock < members[j].lock })
		set := make(Set, len(members))
		srcs := make([]int, len(members))
		for i, m := range members {
			set[i] = m.lock
			srcs[i] = m.src
		}
		a.Sets[id] = set
		a.Sources[id] = srcs
	}
	return a
}

// LS returns the lockset of a node (empty for standalone nodes).
func (a *Assignment) LS(id int) Set { return a.Sets[id] }
