package lockset

import (
	"testing"
	"testing/quick"

	"perfplay/internal/topo"
	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

func TestSetOps(t *testing.T) {
	a := NewSet(3, 1, 2)
	if !a.Contains(2) || a.Contains(4) {
		t.Fatal("Contains broken")
	}
	b := NewSet(4, 5)
	if a.Intersects(b) {
		t.Fatal("disjoint sets must not intersect")
	}
	c := NewSet(5, 1)
	if !a.Intersects(c) {
		t.Fatal("sets sharing lock 1 must intersect")
	}
	if !MutuallyExclusive(a, c) {
		t.Fatal("RULE 4: intersecting locksets are mutually exclusive")
	}
	if MutuallyExclusive(a, b) {
		t.Fatal("RULE 4: disjoint locksets are not mutually exclusive")
	}
}

// TestIntersectsQuick: Intersects agrees with a naive set intersection.
func TestIntersectsQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b Set
		for _, x := range xs {
			a = append(a, trace.LockID(x%16))
		}
		for _, y := range ys {
			b = append(b, trace.LockID(y%16))
		}
		a, b = NewSet(a...), NewSet(b...)
		naive := false
		for _, x := range a {
			for _, y := range b {
				if x == y {
					naive = true
				}
			}
		}
		return a.Intersects(b) == naive && b.Intersects(a) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fig8 reproduces the paper's Fig. 8 assignment over the Fig. 7 topology.
func fig8Graph() *topo.Graph {
	l := trace.LockID(1)
	mk := func(id int, th int32, seq int) *trace.CritSec {
		return &trace.CritSec{ID: id, Thread: th, Lock: l, SeqInLock: seq,
			AcqEv: int32(id * 2), RelEv: int32(id*2 + 1)}
	}
	css := []*trace.CritSec{
		mk(0, 0, 0), // R1 in T1
		mk(1, 2, 1), // W1st in T3
		mk(2, 1, 2), // W1 in T2
		mk(3, 2, 3), // W2nd in T3
		mk(4, 1, 4), // R2 in T2 standalone
	}
	edges := []ulcp.Edge{
		{From: 0, To: 2}, {From: 0, To: 1},
		{From: 1, To: 2}, {From: 2, To: 3},
	}
	return topo.Build(css, edges)
}

func TestAssignFig8(t *testing.T) {
	g := fig8Graph()
	a := Assign(g)

	// Out-degree nodes R1, W1st, W1 each get a fresh auxiliary lock.
	if a.NumAux != 3 {
		t.Fatalf("aux locks = %d, want 3", a.NumAux)
	}
	for _, id := range []int{0, 1, 2} {
		own, ok := a.Own[id]
		if !ok {
			t.Fatalf("node %d missing own lock", id)
		}
		if !own.IsAux() {
			t.Fatalf("own lock %v of node %d is not auxiliary", own, id)
		}
	}
	if _, ok := a.Own[3]; ok {
		t.Fatal("W2nd has no outdegree and must not own a lock")
	}

	// W1 in T2 (node 2): lockset = {own, R1's, W1st's} — the paper's
	// LS={@L11,@L31} example generalized to its two sources here.
	ls2 := a.LS(2)
	if len(ls2) != 3 {
		t.Fatalf("lockset(W1-T2) = %v, want 3 members", ls2)
	}
	if !ls2.Contains(a.Own[2]) || !ls2.Contains(a.Own[0]) || !ls2.Contains(a.Own[1]) {
		t.Fatalf("lockset(W1-T2) = %v missing expected members", ls2)
	}

	// W2nd (node 3): inherits W1's lock only.
	ls3 := a.LS(3)
	if len(ls3) != 1 || !ls3.Contains(a.Own[2]) {
		t.Fatalf("lockset(W2nd) = %v, want exactly W1's lock", ls3)
	}

	// Standalone R2: empty lockset (sync removed).
	if len(a.LS(4)) != 0 {
		t.Fatalf("standalone node lockset = %v, want empty", a.LS(4))
	}

	// RULE 4 semantics over the assignment: connected nodes exclude each
	// other, standalone nodes exclude nobody.
	if !MutuallyExclusive(a.LS(0), a.LS(2)) {
		t.Error("R1 and W1 share an edge and must be mutually exclusive")
	}
	if MutuallyExclusive(a.LS(4), a.LS(2)) {
		t.Error("standalone R2 must not exclude anyone")
	}

	// Sources align with locks: own entries are -1.
	for id, srcs := range a.Sources {
		set := a.Sets[id]
		if len(srcs) != len(set) {
			t.Fatalf("node %d: sources/set length mismatch", id)
		}
		for i, src := range srcs {
			if src == -1 {
				if set[i] != a.Own[id] {
					t.Fatalf("node %d: -1 source not aligned with own lock", id)
				}
			} else if set[i] != a.Own[src] {
				t.Fatalf("node %d: source %d not aligned with its lock", id, src)
			}
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	a1 := Assign(fig8Graph())
	a2 := Assign(fig8Graph())
	if a1.NumAux != a2.NumAux {
		t.Fatal("aux allocation not deterministic")
	}
	for id, s1 := range a1.Sets {
		s2 := a2.Sets[id]
		if len(s1) != len(s2) {
			t.Fatalf("node %d: set sizes differ", id)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("node %d: sets differ", id)
			}
		}
	}
}
