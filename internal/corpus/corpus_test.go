package corpus

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perfplay/internal/sim"
	"perfplay/internal/trace"
	"perfplay/internal/workload"
)

// sampleTrace records a small deterministic workload and returns its
// serialized bytes; different seeds yield different digests.
func sampleTrace(t *testing.T, seed int64) []byte {
	t.Helper()
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.1, Seed: seed}), sim.Config{Seed: seed})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fakeClock hands out strictly increasing times so LRU order is
// deterministic regardless of wall-clock resolution.
func fakeClock() func() time.Time {
	now := time.Date(2026, 7, 26, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		now = now.Add(time.Second)
		return now
	}
}

func TestPutGetDedupe(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := sampleTrace(t, 1)

	m, created, err := s.Put(data, false)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first Put reported existing blob")
	}
	if m.Digest != Digest(data) {
		t.Fatalf("digest = %s, want %s", m.Digest, Digest(data))
	}
	if m.Size != int64(len(data)) || m.Format != trace.FormatBinary || m.App != "pbzip2" {
		t.Fatalf("meta = %+v", m)
	}

	// Same content again: one blob, same digest, created=false.
	m2, created, err := s.Put(data, false)
	if err != nil {
		t.Fatal(err)
	}
	if created || m2.Digest != m.Digest {
		t.Fatalf("dedupe: created=%v digest=%s", created, m2.Digest)
	}
	if s.Len() != 1 || s.TotalBytes() != int64(len(data)) {
		t.Fatalf("store holds %d traces / %d bytes after dedupe", s.Len(), s.TotalBytes())
	}

	got, gm, err := s.Get(m.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || gm.Digest != m.Digest {
		t.Fatal("Get returned different bytes")
	}
	tr, _, err := s.Load(m.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if tr.App != "pbzip2" || len(tr.Events) != m.Events {
		t.Fatalf("Load: app=%s events=%d", tr.App, len(tr.Events))
	}

	// JSON encoding of the same trace is different content: second blob.
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.1, Seed: 1}), sim.Config{Seed: 1})
	var js bytes.Buffer
	if err := rec.Trace.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	jm, created, err := s.Put(js.Bytes(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !created || jm.Format != trace.FormatJSON || jm.Digest == m.Digest {
		t.Fatalf("json put: created=%v meta=%+v", created, jm)
	}
}

func TestRejectsGarbageAndEmptyAndBadDigests(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put([]byte("not a trace"), false); !errors.Is(err, ErrInvalid) {
		t.Fatalf("garbage: err = %v, want ErrInvalid", err)
	}
	// A structurally valid but empty trace must be refused.
	var buf bytes.Buffer
	if err := trace.New("empty", 0).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(buf.Bytes(), false); err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Fatalf("empty trace: err = %v", err)
	}

	for _, d := range []string{"", "sha256:zz", "md5:abc", "sha256:" + strings.Repeat("g", 64)} {
		if _, _, err := s.Get(d); !errors.Is(err, ErrInvalid) {
			t.Fatalf("digest %q: err = %v, want ErrInvalid", d, err)
		}
	}
	missing := Digest([]byte("missing"))
	if _, _, err := s.Get(missing); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v", err)
	}
	if _, err := s.Stat(missing); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat(missing) = %v", err)
	}
	if err := s.Delete(missing); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(missing) = %v", err)
	}
}

func TestDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := sampleTrace(t, 2)
	m, _, err := s.Put(data, true) // pinned traces still Delete
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(m.Digest); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(m.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if s.Len() != 0 || s.TotalBytes() != 0 {
		t.Fatalf("len=%d bytes=%d after delete", s.Len(), s.TotalBytes())
	}
	blobs, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 0 {
		t.Fatalf("%d blobs left on disk", len(blobs))
	}
}

func TestLRUEvictionRespectsRecencyAndPins(t *testing.T) {
	a := sampleTrace(t, 10)
	b := sampleTrace(t, 11)
	c := sampleTrace(t, 12)
	budget := int64(len(a) + len(b) + len(c)) // all three fit; a fourth will not

	s, err := Open(t.TempDir(), Options{MaxBytes: budget, now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	ma, _, _ := s.Put(a, false)
	mb, _, _ := s.Put(b, true) // pinned: never evicted
	mc, _, _ := s.Put(c, false)

	// Touch a so c becomes the least recently used unpinned trace.
	if _, _, err := s.Get(ma.Digest); err != nil {
		t.Fatal(err)
	}

	d := sampleTrace(t, 13)
	md, created, err := s.Put(d, false)
	if err != nil || !created {
		t.Fatalf("put d: created=%v err=%v", created, err)
	}
	if _, err := s.Stat(mc.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("c should have been evicted (LRU), got %v", err)
	}
	for _, digest := range []string{ma.Digest, mb.Digest, md.Digest} {
		if _, err := s.Stat(digest); err != nil {
			t.Fatalf("%s unexpectedly evicted: %v", digest, err)
		}
	}
	if s.TotalBytes() > budget {
		t.Fatalf("store over budget: %d > %d", s.TotalBytes(), budget)
	}
}

func TestBudgetExhaustedByPins(t *testing.T) {
	a := sampleTrace(t, 20)
	b := sampleTrace(t, 21)
	s, err := Open(t.TempDir(), Options{MaxBytes: int64(len(a)) + 1, now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(a, true); err != nil {
		t.Fatal(err)
	}
	// b cannot fit alongside the pinned a: the Put must be refused up
	// front, storing nothing.
	if _, _, err := s.Put(b, false); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d after refused put", s.Len())
	}
	if _, err := s.Stat(Digest(b)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("refused blob still indexed: %v", err)
	}
}

// TestRefusedPutEvictsNothing pins down the no-data-loss contract: a
// Put that cannot possibly fit (pinned residue + new blob over budget)
// must not evict any existing unpinned trace on its way to failing.
func TestRefusedPutEvictsNothing(t *testing.T) {
	pinned := sampleTrace(t, 22)
	resident := sampleTrace(t, 23)
	incoming := sampleTrace(t, 24)
	// Budget: both residents fit, but pinned + incoming never can.
	budget := int64(len(pinned) + len(resident))
	if int64(len(pinned)+len(incoming)) <= budget {
		t.Fatalf("fixture sizes defeat the setup: %d+%d <= %d", len(pinned), len(incoming), budget)
	}
	s, err := Open(t.TempDir(), Options{MaxBytes: budget, now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(pinned, true); err != nil {
		t.Fatal(err)
	}
	mr, _, err := s.Put(resident, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(incoming, false); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if _, err := s.Stat(mr.Digest); err != nil {
		t.Fatalf("refused Put destroyed a stored trace: %v", err)
	}

	// A single blob larger than the whole budget is refused outright.
	s2, err := Open(t.TempDir(), Options{MaxBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Put(incoming, false); !errors.Is(err, ErrBudget) {
		t.Fatalf("oversized blob: err = %v", err)
	}
}

func TestReopenPersistsIndexAndRecoversStrays(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := sampleTrace(t, 30)
	b := sampleTrace(t, 31)
	ma, _, _ := s.Put(a, true)
	mb, _, _ := s.Put(b, false)

	// Reopen: the index round-trips, including pins.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || s2.TotalBytes() != int64(len(a)+len(b)) {
		t.Fatalf("reopened: len=%d bytes=%d", s2.Len(), s2.TotalBytes())
	}
	sa, err := s2.Stat(ma.Digest)
	if err != nil || !sa.Pinned {
		t.Fatalf("pin lost across reopen: %+v err=%v", sa, err)
	}

	// Losing the index (crash between blob rename and index write, or a
	// deleted index.json) must not lose identifiable blobs.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 2 {
		t.Fatalf("recovered %d traces from blobs, want 2", s3.Len())
	}
	got, _, err := s3.Get(mb.Digest)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("recovered blob differs: %v", err)
	}

	// A corrupt stray blob is ignored, not adopted and not deleted.
	bad := filepath.Join(dir, "blobs", strings.Repeat("ab", 32))
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s4.Len() != 2 {
		t.Fatalf("corrupt blob adopted: len=%d", s4.Len())
	}
	if _, err := os.Stat(bad); err != nil {
		t.Fatalf("corrupt blob deleted: %v", err)
	}

	// Crash-leftover temp files (the store's own naming) are swept on
	// Open; nothing else may linger either.
	for _, sub := range []string{dir, filepath.Join(dir, "blobs")} {
		if err := os.WriteFile(filepath.Join(sub, "tmp-123456"), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{dir, filepath.Join(dir, "blobs")} {
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "tmp-") {
				t.Fatalf("leftover temp file %s", e.Name())
			}
		}
	}
}

func TestListOrder(t *testing.T) {
	s, err := Open(t.TempDir(), Options{now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	ma, _, _ := s.Put(sampleTrace(t, 40), false)
	mb, _, _ := s.Put(sampleTrace(t, 41), false)
	list := s.List()
	if len(list) != 2 {
		t.Fatalf("list len = %d", len(list))
	}
	if list[0].Digest != mb.Digest || list[1].Digest != ma.Digest {
		t.Fatalf("list not newest-first: %s, %s", list[0].Digest, list[1].Digest)
	}
}

// TestPutColumnarTrace pins format metadata for the columnar encoding:
// the store must record FormatColumnar for "PCOL" blobs and load them
// through the shared sniffing reader like any other format.
func TestPutColumnarTrace(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.1, Seed: 9}), sim.Config{Seed: 9})
	var buf bytes.Buffer
	if err := rec.Trace.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}

	m, created, err := s.Put(buf.Bytes(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("fresh columnar blob reported as duplicate")
	}
	if m.Format != trace.FormatColumnar {
		t.Fatalf("Meta.Format = %q, want %q", m.Format, trace.FormatColumnar)
	}

	tr, meta, err := s.Load(m.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != trace.FormatColumnar {
		t.Fatalf("loaded Meta.Format = %q", meta.Format)
	}
	if tr.App != rec.Trace.App || len(tr.Events) != len(rec.Trace.Events) {
		t.Fatalf("loaded %s/%d events, want %s/%d", tr.App, len(tr.Events), rec.Trace.App, len(rec.Trace.Events))
	}
}
