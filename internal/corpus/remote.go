package corpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"perfplay/internal/cachepolicy"
	"perfplay/internal/clusterapi"
	"perfplay/internal/telemetry"
)

// Remote is a client for another node's corpus — the /traces endpoints
// a perfplayd daemon serves. A coordinator uses it to push a job's
// trace blob to peers whose store misses the digest, and any node can
// pull a blob it has only heard referenced. Content addressing makes
// both directions safe to retry: pushing identical bytes twice dedupes
// server-side, and every fetched blob is verified against its digest
// before being trusted.
type Remote struct {
	// Base is the peer's base URL, e.g. "http://host:8080".
	Base string
	// Client overrides http.DefaultClient (timeouts, transports).
	Client *http.Client
	// MaxFetchBytes bounds how much of a fetched blob Fetch will buffer
	// (0 = 1 GiB, matching the store's default byte budget) — a broken
	// peer must not be able to balloon this process.
	MaxFetchBytes int64
	// TraceID and SpanID, when set, ride every request as
	// X-Perfplay-Trace/-Span headers so a cross-node hop (submit
	// redirect, blob fetch, push) stays on the originating job's
	// distributed trace.
	TraceID string
	SpanID  string
}

func (r *Remote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

// do issues one request with the trace-context headers attached.
func (r *Remote) do(method, url, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if r.TraceID != "" {
		req.Header.Set(telemetry.TraceHeader, r.TraceID)
	}
	if r.SpanID != "" {
		req.Header.Set(telemetry.SpanHeader, r.SpanID)
	}
	return r.client().Do(req)
}

// RemoteError decodes a perfplayd error body — the documented
// {"error": {"code", "message"}} envelope, or the legacy
// {"error": "..."} string a pre-envelope node still sends — into an
// error tagged with the local sentinel matching the remote status, so
// callers can errors.Is a peer's ErrNotFound exactly like a local
// store's. It is exported because every client of the daemon's JSON
// surface (not just this package) wants the same mapping — notably the
// cluster shard protocol, whose 404 means "push the blob and retry".
func RemoteError(op string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := resp.Status
	if apiErr := clusterapi.DecodeError(raw); apiErr != nil {
		msg = apiErr.Error()
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s: %s", ErrNotFound, op, msg)
	case http.StatusInsufficientStorage:
		return fmt.Errorf("%w: %s: %s", ErrBudget, op, msg)
	case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		return fmt.Errorf("%w: %s: %s", ErrInvalid, op, msg)
	default:
		return fmt.Errorf("corpus: %s: %s", op, msg)
	}
}

// SubmitAnalyze submits one analysis job — a perfplayd JSON spec: a
// workload description or a {"trace": "sha256:..."} stored-trace
// reference — to the peer's POST /analyze, following steal-aware
// admission redirects: a node whose queue is full answers 503 with a
// Retry-Peer header naming its idlest peer, and the submit retries
// there. The chain policy (hop bound, visited set, slash-normalized
// base comparison) is cachepolicy.FollowRedirects — the same code the
// simulator sweeps — with this method as its HTTP submit adapter. It
// returns the job id and the base URL that accepted it — the node to
// poll for the result, which under redirection is not necessarily the
// one submitted to.
func (r *Remote) SubmitAnalyze(spec []byte) (id, base string, err error) {
	return cachepolicy.FollowRedirects(r.submitOnce(spec), r.Base, cachepolicy.Defaults().SubmitHops)
}

// submitOnce adapts one POST /analyze into the admission chain's
// vocabulary: transport failures (unreachable peer, un-decodable
// accept) on the error return, rejections — with the Retry-Peer header
// attached only when the 503 makes it meaningful — in the reply.
func (r *Remote) submitOnce(spec []byte) cachepolicy.SubmitFunc {
	return func(base string) (cachepolicy.SubmitReply, error) {
		resp, err := r.do(http.MethodPost, base+"/analyze", "application/json", bytes.NewReader(spec))
		if err != nil {
			return cachepolicy.SubmitReply{}, fmt.Errorf("corpus: submit to %s: %w", base, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			var body struct {
				ID string `json:"id"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&body)
			if derr != nil || body.ID == "" {
				return cachepolicy.SubmitReply{}, fmt.Errorf("corpus: submit to %s: bad accept response (%v)", base, derr)
			}
			return cachepolicy.SubmitReply{ID: body.ID}, nil
		}
		reply := cachepolicy.SubmitReply{Reject: RemoteError("submit to "+base, resp)}
		if resp.StatusCode == http.StatusServiceUnavailable {
			reply.RetryPeer = resp.Header.Get("Retry-Peer")
		}
		return reply, nil
	}
}

// Push stores raw trace bytes in the peer's corpus and returns the
// stored metadata. Pushing already-present content is a cheap dedupe on
// the peer (200 instead of 201), so callers need not probe first.
func (r *Remote) Push(data []byte) (Meta, error) {
	resp, err := r.do(http.MethodPost, r.Base+"/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return Meta{}, fmt.Errorf("corpus: push to %s: %w", r.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return Meta{}, RemoteError("push to "+r.Base, resp)
	}
	var body struct {
		Trace Meta `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return Meta{}, fmt.Errorf("corpus: push to %s: decode response: %w", r.Base, err)
	}
	return body.Trace, nil
}

// Fetch downloads a blob by digest and verifies the bytes actually hash
// to it — a peer (or a middlebox) can be wrong, and an unverified blob
// would poison every digest-keyed cache above us.
func (r *Remote) Fetch(digest string) ([]byte, error) {
	if _, err := parseDigest(digest); err != nil {
		return nil, err
	}
	resp, err := r.do(http.MethodGet, r.Base+"/traces/"+digest, "", nil)
	if err != nil {
		return nil, fmt.Errorf("corpus: fetch %s from %s: %w", digest, r.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, RemoteError("fetch "+digest+" from "+r.Base, resp)
	}
	maxBytes := r.MaxFetchBytes
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("corpus: fetch %s from %s: %w", digest, r.Base, err)
	}
	if int64(len(data)) > maxBytes {
		return nil, fmt.Errorf("%w: peer %s served more than %d bytes for %s", ErrInvalid, r.Base, maxBytes, digest)
	}
	if Digest(data) != digest {
		return nil, fmt.Errorf("%w: peer %s served %d bytes not matching %s", ErrInvalid, r.Base, len(data), digest)
	}
	return data, nil
}
