// Package corpus is the content-addressed trace store shared by the
// perfplay CLI and the perfplayd daemon. Every stored trace is
// identified by the SHA-256 digest of its serialized bytes
// ("sha256:<hex>"), so uploading the same recording twice stores one
// blob, jobs can reference prior recordings by digest instead of
// re-uploading, and the pipeline's result cache can key on trace
// content rather than pointer identity.
//
// On-disk layout (one directory per store):
//
//	<dir>/index.json     metadata for every stored trace
//	<dir>/blobs/<hex>    the raw trace bytes (binary or JSON encoding)
//
// Blobs and the index are written atomically (temp file + rename in the
// same directory), so a crashed writer never leaves a partial blob
// under a valid name. A configurable byte budget bounds the store;
// exceeding it evicts least-recently-used unpinned traces.
package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"perfplay/internal/telemetry"
	"perfplay/internal/trace"
)

// DigestPrefix is the algorithm tag every corpus digest carries.
const DigestPrefix = "sha256:"

// ErrNotFound reports a digest with no stored trace.
var ErrNotFound = errors.New("corpus: trace not found")

// ErrBudget reports a Put that cannot fit: the blob alone exceeds the
// byte budget, or everything evictable is pinned.
var ErrBudget = errors.New("corpus: byte budget exhausted")

// ErrInvalid marks caller mistakes — malformed digests, unparsable or
// empty traces — as opposed to internal store failures, so front ends
// can map them to 4xx rather than 5xx.
var ErrInvalid = errors.New("corpus: invalid request")

// Digest computes the content address of raw trace bytes.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return DigestPrefix + hex.EncodeToString(sum[:])
}

// parseDigest validates a digest string and returns its hex part (the
// blob file name).
func parseDigest(d string) (string, error) {
	hexPart, ok := strings.CutPrefix(d, DigestPrefix)
	if !ok || len(hexPart) != sha256.Size*2 {
		return "", fmt.Errorf("%w: malformed digest %q (want %s<64 hex chars>)", ErrInvalid, d, DigestPrefix)
	}
	if _, err := hex.DecodeString(hexPart); err != nil {
		return "", fmt.Errorf("%w: malformed digest %q: %v", ErrInvalid, d, err)
	}
	return hexPart, nil
}

// Meta describes one stored trace.
type Meta struct {
	Digest   string    `json:"digest"`
	Size     int64     `json:"size"`
	Format   string    `json:"format"` // trace.FormatBinary, trace.FormatColumnar or trace.FormatJSON
	App      string    `json:"app,omitempty"`
	Events   int       `json:"events"`
	Threads  int       `json:"threads"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
	// Pinned traces are never LRU-evicted (explicit Delete still works).
	Pinned bool `json:"pinned,omitempty"`
}

// Options configures a Store.
type Options struct {
	// MaxBytes caps the sum of stored blob sizes; exceeding it evicts
	// least-recently-used unpinned traces. <= 0 means unlimited.
	MaxBytes int64

	// Metrics, when set, exports the store's occupancy (bytes, trace
	// count — evaluated at scrape time) and its lifetime eviction
	// counter on the given registry.
	Metrics *telemetry.Registry

	// now overrides the clock in tests.
	now func() time.Time
}

// Store is a content-addressed trace store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	now      func() time.Time

	evictions *telemetry.Counter // nil when no registry was supplied

	mu    sync.Mutex
	metas map[string]*Meta // digest → meta
	total int64            // sum of stored blob sizes
}

// Open opens (creating if needed) the store at dir and reconciles the
// index with the blobs actually on disk: index entries whose blob
// vanished are dropped, and blobs missing from the index (e.g. after a
// crash between blob rename and index write) are re-adopted by
// re-parsing them.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		now:      opts.now,
		metas:    make(map[string]*Meta),
	}
	if s.now == nil {
		s.now = time.Now
	}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	if err := s.reconcile(); err != nil {
		return nil, err
	}
	if reg := opts.Metrics; reg != nil {
		// Gauges are callbacks so a scrape reads the store's state at
		// that instant; only the eviction counter needs a handle. The
		// callbacks take s.mu briefly — the metrics renderer holds no
		// lock of its own while evaluating them, so there is no cycle.
		reg.NewGaugeFunc("perfplay_corpus_blob_bytes",
			"Bytes of trace blobs currently stored.", func() float64 { return float64(s.TotalBytes()) })
		reg.NewGaugeFunc("perfplay_corpus_traces",
			"Traces currently stored.", func() float64 { return float64(s.Len()) })
		s.evictions = reg.NewCounter("perfplay_corpus_evictions_total",
			"Traces evicted to fit the byte budget.")
	}
	return s, nil
}

func (s *Store) indexPath() string        { return filepath.Join(s.dir, "index.json") }
func (s *Store) blobPath(h string) string { return filepath.Join(s.dir, "blobs", h) }

func (s *Store) loadIndex() error {
	data, err := os.ReadFile(s.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("corpus: read index: %w", err)
	}
	var metas []*Meta
	if err := json.Unmarshal(data, &metas); err != nil {
		return fmt.Errorf("corpus: parse index: %w", err)
	}
	for _, m := range metas {
		s.metas[m.Digest] = m
	}
	return nil
}

// reconcile makes the in-memory index agree with the blobs directory,
// and sweeps the store's own crash leftovers (tmp-* files abandoned
// between CreateTemp and rename) so they cannot accumulate.
func (s *Store) reconcile() error {
	for _, sub := range []string{s.dir, filepath.Join(s.dir, "blobs")} {
		entries, err := os.ReadDir(sub)
		if err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "tmp-") {
				os.Remove(filepath.Join(sub, e.Name()))
			}
		}
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "blobs"))
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	onDisk := make(map[string]int64, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil || !info.Mode().IsRegular() {
			continue
		}
		// Only sha256-named files can be blobs; anything else is not
		// ours to read (or adopt), and skipping it up front avoids
		// re-reading junk on every startup.
		if _, err := hex.DecodeString(e.Name()); err != nil || len(e.Name()) != sha256.Size*2 {
			continue
		}
		onDisk[e.Name()] = info.Size()
	}
	for d, m := range s.metas {
		hexPart, err := parseDigest(d)
		if err != nil {
			delete(s.metas, d)
			continue
		}
		size, ok := onDisk[hexPart]
		if !ok {
			delete(s.metas, d) // blob vanished out from under the index
			continue
		}
		m.Size = size
		s.total += size
		delete(onDisk, hexPart)
	}
	// Adopt stray blobs the index never recorded. Files that do not
	// verify against their name or do not parse as traces are left on
	// disk but unindexed — never destroy data we cannot identify.
	for hexPart := range onDisk {
		data, err := os.ReadFile(s.blobPath(hexPart))
		if err != nil || Digest(data) != DigestPrefix+hexPart {
			continue
		}
		tr, err := trace.ReadAny(bytes.NewReader(data))
		if err != nil {
			continue
		}
		now := s.now()
		s.metas[DigestPrefix+hexPart] = &Meta{
			Digest:   DigestPrefix + hexPart,
			Size:     int64(len(data)),
			Format:   trace.DetectFormat(data),
			App:      tr.App,
			Events:   len(tr.Events),
			Threads:  tr.NumThreads,
			Created:  now,
			LastUsed: now,
		}
		s.total += int64(len(data))
	}
	return s.saveIndexLocked()
}

// saveIndexLocked atomically rewrites index.json; call with mu held (or
// during Open, before the store is shared).
func (s *Store) saveIndexLocked() error {
	metas := make([]*Meta, 0, len(s.metas))
	for _, m := range s.metas {
		metas = append(metas, m)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Digest < metas[j].Digest })
	data, err := json.MarshalIndent(metas, "", " ")
	if err != nil {
		return fmt.Errorf("corpus: encode index: %w", err)
	}
	return atomicWrite(s.indexPath(), data)
}

// atomicWrite writes data to path via a temp file + rename in the same
// directory, so readers never observe a partial file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("corpus: write %s: %w", filepath.Base(path), werr)
	}
	return nil
}

// Put stores raw trace bytes (either encoding), validating that they
// parse as a non-empty trace first. It returns the blob's metadata and
// whether a new blob was created — false means the content was already
// present (the digest matched), which refreshes its LRU recency and,
// when pin is set, pins it.
func (s *Store) Put(data []byte, pin bool) (Meta, bool, error) {
	tr, err := trace.ReadAny(bytes.NewReader(data))
	if err != nil {
		return Meta{}, false, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if len(tr.Events) == 0 || tr.NumThreads == 0 {
		return Meta{}, false, fmt.Errorf("%w: refusing to store empty trace (%d events, %d threads)",
			ErrInvalid, len(tr.Events), tr.NumThreads)
	}
	digest := Digest(data)
	hexPart, _ := parseDigest(digest)

	// Dedupe and feasibility are checked under the mutex, but the
	// fsync'd blob write happens OUTSIDE it — holding the store lock
	// across large-upload disk I/O would block every concurrent Stat,
	// List and healthz probe for seconds. Content addressing makes the
	// unlocked write safe: racing writers of the same digest produce
	// byte-identical files behind an atomic rename, and the insert is
	// re-checked under the lock afterwards.
	if m, existed, err := s.admitLocked(digest, pin, int64(len(data))); existed || err != nil {
		return m, false, err
	}
	if err := atomicWrite(s.blobPath(hexPart), data); err != nil {
		return Meta{}, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.metas[digest]; ok { // lost the race to an identical Put
		m.LastUsed = s.now()
		m.Pinned = m.Pinned || pin
		return *m, false, nil
	}
	now := s.now()
	m := &Meta{
		Digest:   digest,
		Size:     int64(len(data)),
		Format:   trace.DetectFormat(data),
		App:      tr.App,
		Events:   len(tr.Events),
		Threads:  tr.NumThreads,
		Created:  now,
		LastUsed: now,
		Pinned:   pin,
	}
	s.metas[digest] = m
	s.total += m.Size
	if err := s.evictLocked(digest); err != nil {
		// Near-unreachable given the admission check (eviction can
		// normally free enough unpinned bytes; only a pin racing in
		// between admit and insert changes that), kept as a rollback so
		// the new blob is never admitted into an over-budget store.
		s.total -= m.Size
		delete(s.metas, digest)
		os.Remove(s.blobPath(hexPart))
		return Meta{}, false, err
	}
	if err := s.saveIndexLocked(); err != nil {
		return Meta{}, false, err
	}
	return *m, true, nil
}

// admitLocked is Put's under-mutex front half: dedupe (refreshing
// recency and upgrading pins) and the up-front budget feasibility
// check. It reports existed=true with the refreshed meta when the
// content is already stored, and an error when the blob can never fit —
// even after evicting every unpinned trace, the pinned residue plus the
// new blob must stay within budget. Rejecting up front means a doomed
// Put never evicts anything.
func (s *Store) admitLocked(digest string, pin bool, size int64) (Meta, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.metas[digest]; ok {
		m.LastUsed = s.now()
		// The common idempotent re-upload only moves recency, which —
		// like Get — stays in memory until the next real mutation;
		// rewriting the index per duplicate POST would turn dedupe into
		// synchronous disk I/O.
		if pin && !m.Pinned {
			m.Pinned = true
			if err := s.saveIndexLocked(); err != nil {
				return Meta{}, true, err
			}
		}
		return *m, true, nil
	}
	if s.maxBytes > 0 {
		if size > s.maxBytes {
			return Meta{}, false, fmt.Errorf("%w: trace is %d bytes, budget %d", ErrBudget, size, s.maxBytes)
		}
		var pinned int64
		for _, m := range s.metas {
			if m.Pinned {
				pinned += m.Size
			}
		}
		if pinned+size > s.maxBytes {
			return Meta{}, false, fmt.Errorf("%w: %d bytes pinned + %d new exceed budget %d",
				ErrBudget, pinned, size, s.maxBytes)
		}
	}
	return Meta{}, false, nil
}

// evictLocked removes least-recently-used unpinned traces until the
// store fits its budget, never evicting keep (the blob just inserted).
func (s *Store) evictLocked(keep string) error {
	for s.maxBytes > 0 && s.total > s.maxBytes {
		var victim *Meta
		var pinned int64
		for d, m := range s.metas {
			if d == keep || m.Pinned {
				pinned += m.Size
				continue
			}
			if victim == nil || m.LastUsed.Before(victim.LastUsed) ||
				(m.LastUsed.Equal(victim.LastUsed) && d < victim.Digest) {
				victim = m
			}
		}
		if victim == nil {
			return fmt.Errorf("%w: %d bytes stored, %d pinned or just inserted", ErrBudget, s.total, pinned)
		}
		hexPart, _ := parseDigest(victim.Digest)
		if err := os.Remove(s.blobPath(hexPart)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("corpus: evict %s: %w", victim.Digest, err)
		}
		s.total -= victim.Size
		delete(s.metas, victim.Digest)
		if s.evictions != nil {
			s.evictions.Inc()
		}
	}
	return nil
}

// Stat returns the metadata for a digest without touching its recency.
func (s *Store) Stat(digest string) (Meta, error) {
	if _, err := parseDigest(digest); err != nil {
		return Meta{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metas[digest]
	if !ok {
		return Meta{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	return *m, nil
}

// Touch refreshes a trace's LRU recency without reading the blob — for
// callers that reference a trace by digest but may be served from a
// result cache without ever loading it, so actively-used traces do not
// become eviction victims just because their bytes were never re-read.
func (s *Store) Touch(digest string) (Meta, error) {
	if _, err := parseDigest(digest); err != nil {
		return Meta{}, err
	}
	m, ok := s.touch(digest)
	if !ok {
		return Meta{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	return m, nil
}

// touch looks a digest up and refreshes its LRU recency, returning a
// meta snapshot. Recency moves in memory only — rewriting the index on
// every read would serialize reads behind synchronous disk I/O — and is
// persisted by the next mutating operation (Put/Delete/Pin); across a
// restart the order degrades gracefully to the last persisted one.
func (s *Store) touch(digest string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metas[digest]
	if !ok {
		return Meta{}, false
	}
	m.LastUsed = s.now()
	return *m, true
}

// Get returns the stored bytes for a digest and refreshes its LRU
// recency. The blob read happens outside the store mutex — blobs are
// immutable and content-addressed, so the only hazard is a concurrent
// Delete, which surfaces as ErrNotFound.
func (s *Store) Get(digest string) ([]byte, Meta, error) {
	hexPart, err := parseDigest(digest)
	if err != nil {
		return nil, Meta{}, err
	}
	m, ok := s.touch(digest)
	if !ok {
		return nil, Meta{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	data, err := os.ReadFile(s.blobPath(hexPart))
	if errors.Is(err, os.ErrNotExist) {
		return nil, Meta{}, fmt.Errorf("%w: %s (deleted concurrently)", ErrNotFound, digest)
	}
	if err != nil {
		return nil, Meta{}, fmt.Errorf("corpus: %w", err)
	}
	return data, m, nil
}

// OpenBlob returns a streaming reader over the stored bytes (refreshing
// LRU recency), so large blobs can be served without buffering them in
// memory. The caller must Close the reader.
func (s *Store) OpenBlob(digest string) (io.ReadCloser, Meta, error) {
	hexPart, err := parseDigest(digest)
	if err != nil {
		return nil, Meta{}, err
	}
	m, ok := s.touch(digest)
	if !ok {
		return nil, Meta{}, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	f, err := os.Open(s.blobPath(hexPart))
	if errors.Is(err, os.ErrNotExist) {
		return nil, Meta{}, fmt.Errorf("%w: %s (deleted concurrently)", ErrNotFound, digest)
	}
	if err != nil {
		return nil, Meta{}, fmt.Errorf("corpus: %w", err)
	}
	return f, m, nil
}

// Load parses the stored trace for a digest (refreshing LRU recency).
func (s *Store) Load(digest string) (*trace.Trace, Meta, error) {
	data, m, err := s.Get(digest)
	if err != nil {
		return nil, Meta{}, err
	}
	tr, err := trace.ReadAny(bytes.NewReader(data))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("corpus: stored blob %s: %w", digest, err)
	}
	return tr, m, nil
}

// Pin marks a trace exempt from (or, with false, eligible for again)
// LRU eviction.
func (s *Store) Pin(digest string, pinned bool) error {
	if _, err := parseDigest(digest); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metas[digest]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	m.Pinned = pinned
	return s.saveIndexLocked()
}

// Delete removes a stored trace, pinned or not.
func (s *Store) Delete(digest string) error {
	hexPart, err := parseDigest(digest)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metas[digest]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if err := os.Remove(s.blobPath(hexPart)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("corpus: %w", err)
	}
	s.total -= m.Size
	delete(s.metas, digest)
	return s.saveIndexLocked()
}

// List returns metadata for every stored trace, newest first (ties
// broken by digest for deterministic output).
func (s *Store) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.metas))
	for _, m := range s.metas {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.After(out[j].Created)
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}

// Len reports how many traces are stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.metas)
}

// TotalBytes reports the sum of stored blob sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
