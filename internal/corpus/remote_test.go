package corpus

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"perfplay/internal/cachepolicy"
	"perfplay/internal/sim"
	"perfplay/internal/workload"
)

// tracesStub serves a perfplayd-shaped /traces surface over a real
// Store, so Remote is tested against the store semantics it will meet
// in production without importing the daemon.
func tracesStub(t *testing.T, st *Store) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /traces", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		meta, created, err := st.Put(data, false)
		if err != nil {
			code := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrInvalid):
				code = http.StatusBadRequest
			case errors.Is(err, ErrBudget):
				code = http.StatusInsufficientStorage
			}
			w.WriteHeader(code)
			_, _ = w.Write([]byte(`{"error":` + `"` + strings.ReplaceAll(err.Error(), `"`, `'`) + `"}`))
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		w.WriteHeader(code)
		_, _ = w.Write([]byte(`{"trace":{"digest":"` + meta.Digest + `","size":` +
			"0" + `}}`))
	})
	mux.HandleFunc("GET /traces/{digest}", func(w http.ResponseWriter, r *http.Request) {
		data, _, err := st.Get(r.PathValue("digest"))
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			_, _ = w.Write([]byte(`{"error":"not found"}`))
			return
		}
		_, _ = w.Write(data)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func remotePayload(t *testing.T) []byte {
	t.Helper()
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 3}), sim.Config{Seed: 3})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRemotePushFetch: the push/pull halves round-trip against a real
// store, fetched bytes verify against their digest, and unknown digests
// surface as ErrNotFound.
func TestRemotePushFetch(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := tracesStub(t, st)
	rem := &Remote{Base: ts.URL}

	payload := remotePayload(t)
	meta, err := rem.Push(payload)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Digest != Digest(payload) {
		t.Fatalf("pushed digest %s, want %s", meta.Digest, Digest(payload))
	}

	got, err := rem.Fetch(meta.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("fetched %d bytes differ from pushed %d", len(got), len(payload))
	}

	if _, err := rem.Fetch(Digest([]byte("never stored"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown digest: err = %v, want ErrNotFound", err)
	}
	if _, err := rem.Fetch("sha256:nope"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("malformed digest: err = %v, want ErrInvalid", err)
	}
}

// TestRemoteFetchRejectsBadBytes: a peer serving bytes that do not hash
// to the requested digest — or more bytes than the caller's bound —
// must be rejected, never trusted into a digest-keyed cache.
func TestRemoteFetchRejectsBadBytes(t *testing.T) {
	payload := remotePayload(t)
	digest := Digest(payload)
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("not the bytes you hashed"))
	}))
	defer lying.Close()

	rem := &Remote{Base: lying.URL}
	if _, err := rem.Fetch(digest); !errors.Is(err, ErrInvalid) {
		t.Fatalf("mismatched bytes: err = %v, want ErrInvalid", err)
	}

	rem.MaxFetchBytes = 8
	if _, err := rem.Fetch(digest); err == nil || !strings.Contains(err.Error(), "more than 8 bytes") {
		t.Fatalf("oversized body: err = %v, want size-bound rejection", err)
	}
}

// analyzeStub serves a minimal /analyze that either accepts or answers
// 503, optionally with a Retry-Peer header; it counts submits.
func analyzeStub(t *testing.T, accept bool, retryPeer func() string) (*httptest.Server, *int) {
	t.Helper()
	calls := new(int)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", func(w http.ResponseWriter, r *http.Request) {
		*calls++
		if accept {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			io.WriteString(w, `{"id": "job-1", "status": "queued"}`)
			return
		}
		if rp := retryPeer(); rp != "" {
			w.Header().Set("Retry-Peer", rp)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error": "job queue full"}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, calls
}

// TestSubmitAnalyzeFollowsRetryPeer: a 503 naming an idle peer is
// followed, and the accepted base — not the submitted one — is
// returned, so the caller polls the node that actually owns the job.
func TestSubmitAnalyzeFollowsRetryPeer(t *testing.T) {
	idle, idleCalls := analyzeStub(t, true, nil)
	full, fullCalls := analyzeStub(t, false, func() string { return idle.URL })

	rem := &Remote{Base: full.URL}
	id, base, err := rem.SubmitAnalyze([]byte(`{"app":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-1" || base != idle.URL {
		t.Fatalf("submit = (%q, %q), want (job-1, %s)", id, base, idle.URL)
	}
	if *fullCalls != 1 || *idleCalls != 1 {
		t.Fatalf("calls full=%d idle=%d, want 1 each", *fullCalls, *idleCalls)
	}
}

// TestSubmitAnalyzeNoRedirect: a plain 503 (no Retry-Peer) surfaces as
// an error after exactly one attempt, and a direct accept needs none.
func TestSubmitAnalyzeNoRedirect(t *testing.T) {
	full, fullCalls := analyzeStub(t, false, func() string { return "" })
	rem := &Remote{Base: full.URL}
	if _, _, err := rem.SubmitAnalyze([]byte(`{}`)); err == nil {
		t.Fatal("503 without Retry-Peer did not error")
	}
	if *fullCalls != 1 {
		t.Fatalf("calls = %d, want 1 (no peer to retry)", *fullCalls)
	}

	ok, okCalls := analyzeStub(t, true, nil)
	if _, base, err := (&Remote{Base: ok.URL}).SubmitAnalyze([]byte(`{}`)); err != nil || base != ok.URL {
		t.Fatalf("direct accept: base=%q err=%v", base, err)
	}
	if *okCalls != 1 {
		t.Fatalf("calls = %d, want 1", *okCalls)
	}
}

// TestSubmitAnalyzeHopBound: a chain of full nodes longer than the hop
// bound ends in an error naming the bound — never an unbounded crawl.
func TestSubmitAnalyzeHopBound(t *testing.T) {
	// Build a chain: each full node redirects to the next.
	maxHops := cachepolicy.Defaults().SubmitHops
	next := ""
	var chain []*httptest.Server
	var counts []*int
	for i := 0; i < maxHops+2; i++ {
		target := next
		ts, calls := analyzeStub(t, false, func() string { return target })
		chain = append(chain, ts)
		counts = append(counts, calls)
		next = ts.URL
	}
	head := chain[len(chain)-1]

	_, _, err := (&Remote{Base: head.URL}).SubmitAnalyze([]byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "Retry-Peer hops") {
		t.Fatalf("err = %v, want hop-bound rejection", err)
	}
	visited := 0
	for _, c := range counts {
		visited += *c
	}
	if visited != maxHops+1 {
		t.Fatalf("visited %d nodes, want %d (origin + %d hops)",
			visited, maxHops+1, maxHops)
	}
}
