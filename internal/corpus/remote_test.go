package corpus

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"perfplay/internal/sim"
	"perfplay/internal/workload"
)

// tracesStub serves a perfplayd-shaped /traces surface over a real
// Store, so Remote is tested against the store semantics it will meet
// in production without importing the daemon.
func tracesStub(t *testing.T, st *Store) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /traces", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		meta, created, err := st.Put(data, false)
		if err != nil {
			code := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrInvalid):
				code = http.StatusBadRequest
			case errors.Is(err, ErrBudget):
				code = http.StatusInsufficientStorage
			}
			w.WriteHeader(code)
			_, _ = w.Write([]byte(`{"error":` + `"` + strings.ReplaceAll(err.Error(), `"`, `'`) + `"}`))
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		w.WriteHeader(code)
		_, _ = w.Write([]byte(`{"trace":{"digest":"` + meta.Digest + `","size":` +
			"0" + `}}`))
	})
	mux.HandleFunc("GET /traces/{digest}", func(w http.ResponseWriter, r *http.Request) {
		data, _, err := st.Get(r.PathValue("digest"))
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			_, _ = w.Write([]byte(`{"error":"not found"}`))
			return
		}
		_, _ = w.Write(data)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func remotePayload(t *testing.T) []byte {
	t.Helper()
	app := workload.MustGet("pbzip2")
	rec := sim.Run(app.Build(workload.Config{Threads: 2, Scale: 0.2, Seed: 3}), sim.Config{Seed: 3})
	var buf bytes.Buffer
	if err := rec.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRemotePushFetch: the push/pull halves round-trip against a real
// store, fetched bytes verify against their digest, and unknown digests
// surface as ErrNotFound.
func TestRemotePushFetch(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := tracesStub(t, st)
	rem := &Remote{Base: ts.URL}

	payload := remotePayload(t)
	meta, err := rem.Push(payload)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Digest != Digest(payload) {
		t.Fatalf("pushed digest %s, want %s", meta.Digest, Digest(payload))
	}

	got, err := rem.Fetch(meta.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("fetched %d bytes differ from pushed %d", len(got), len(payload))
	}

	if _, err := rem.Fetch(Digest([]byte("never stored"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown digest: err = %v, want ErrNotFound", err)
	}
	if _, err := rem.Fetch("sha256:nope"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("malformed digest: err = %v, want ErrInvalid", err)
	}
}

// TestRemoteFetchRejectsBadBytes: a peer serving bytes that do not hash
// to the requested digest — or more bytes than the caller's bound —
// must be rejected, never trusted into a digest-keyed cache.
func TestRemoteFetchRejectsBadBytes(t *testing.T) {
	payload := remotePayload(t)
	digest := Digest(payload)
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("not the bytes you hashed"))
	}))
	defer lying.Close()

	rem := &Remote{Base: lying.URL}
	if _, err := rem.Fetch(digest); !errors.Is(err, ErrInvalid) {
		t.Fatalf("mismatched bytes: err = %v, want ErrInvalid", err)
	}

	rem.MaxFetchBytes = 8
	if _, err := rem.Fetch(digest); err == nil || !strings.Contains(err.Error(), "more than 8 bytes") {
		t.Fatalf("oversized body: err = %v, want size-bound rejection", err)
	}
}
