package sim

import (
	"perfplay/internal/memmodel"
	"reflect"
	"testing"

	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

func site(p *Program, line int) trace.SiteID {
	return p.Site("test.c", line, "f")
}

func TestSingleThreadCompute(t *testing.T) {
	p := NewProgram("t")
	p.AddThread(func(th *Thread) {
		th.Compute(100)
		th.Compute(200)
	})
	res := Run(p, Config{Seed: 1})
	if res.Total != 300 {
		t.Fatalf("total = %v, want 300", res.Total)
	}
	if res.PerThreadCPU[0] != 300 {
		t.Fatalf("cpu = %v, want 300", res.PerThreadCPU[0])
	}
	if got := res.Trace.CountKind(trace.KCompute); got != 2 {
		t.Fatalf("compute events = %d, want 2", got)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	p := NewProgram("t")
	l := p.NewLock("L")
	x := p.Mem.Alloc("x", 0)
	s := site(p, 1)
	for i := 0; i < 4; i++ {
		p.AddThread(func(th *Thread) {
			for j := 0; j < 10; j++ {
				th.Lock(l, s)
				v := th.Read(x, s)
				th.Compute(50)
				th.Write(x, v+1, s)
				th.Unlock(l, s)
			}
		})
	}
	res := Run(p, Config{Seed: 7})
	if got := p.Mem.Load(x); got != 40 {
		t.Fatalf("x = %d, want 40 (lost update => mutual exclusion broken)", got)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if got := res.Trace.DynamicLocks(); got != 40 {
		t.Fatalf("dynamic locks = %d, want 40", got)
	}
}

func TestContentionSerializesTime(t *testing.T) {
	// Two threads each hold the same lock for 1000 ticks: the makespan
	// must be at least 2000 (serialized), and waiting time recorded.
	p := NewProgram("t")
	l := p.NewLock("L")
	s := site(p, 1)
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *Thread) {
			th.Lock(l, s)
			th.Compute(1000)
			th.Unlock(l, s)
		})
	}
	res := Run(p, Config{Seed: 1})
	if res.Total < 2000 {
		t.Fatalf("total = %v, want >= 2000 (critical sections must serialize)", res.Total)
	}
	if res.Waited <= 0 {
		t.Fatalf("waited = %v, want > 0", res.Waited)
	}
	if res.SpinWaste != 0 {
		t.Fatalf("spin waste = %v on a blocking lock, want 0", res.SpinWaste)
	}
}

func TestSpinLockBurnsCPU(t *testing.T) {
	p := NewProgram("t")
	l := p.NewSpinLock("S")
	s := site(p, 1)
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *Thread) {
			th.Lock(l, s)
			th.Compute(1000)
			th.Unlock(l, s)
		})
	}
	res := Run(p, Config{Seed: 1})
	if res.SpinWaste <= 0 {
		t.Fatalf("spin waste = %v, want > 0", res.SpinWaste)
	}
	if !res.Trace.SpinLocks[l] {
		t.Fatal("trace should mark the lock as spinning")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Program {
		p := NewProgram("t")
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := site(p, 1)
		for i := 0; i < 3; i++ {
			p.AddThread(func(th *Thread) {
				for j := 0; j < 20; j++ {
					th.Compute(vtime.Duration(10 + th.Intn(100)))
					th.Lock(l, s)
					th.Add(x, 1, s)
					th.Unlock(l, s)
				}
			})
		}
		return p
	}
	r1 := Run(build(), Config{Seed: 42})
	r2 := Run(build(), Config{Seed: 42})
	if r1.Total != r2.Total {
		t.Fatalf("totals differ: %v vs %v", r1.Total, r2.Total)
	}
	if len(r1.Trace.Events) != len(r2.Trace.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(r1.Trace.Events), len(r2.Trace.Events))
	}
	for i := range r1.Trace.Events {
		e1, e2 := r1.Trace.Events[i], r2.Trace.Events[i]
		e1.Delta, e2.Delta = nil, nil
		if !reflect.DeepEqual(e1, e2) {
			t.Fatalf("event %d differs: %v vs %v", i, e1, e2)
		}
	}
	// A different seed may change compute costs (thread RNG) but must
	// still produce a valid trace.
	r3 := Run(build(), Config{Seed: 43})
	if err := r3.Trace.Validate(); err != nil {
		t.Fatalf("seed 43 trace invalid: %v", err)
	}
}

func TestTryLock(t *testing.T) {
	p := NewProgram("t")
	l := p.NewLock("L")
	got := p.Mem.Alloc("got", 0)
	s := site(p, 1)
	p.AddThread(func(th *Thread) {
		th.Lock(l, s)
		th.Compute(5000)
		th.Unlock(l, s)
	})
	p.AddThread(func(th *Thread) {
		th.Compute(100) // ensure T0 holds the lock already
		n := 0
		for !th.TryLock(l, s) {
			n++
			th.Compute(50)
			if n > 1000 {
				t.Error("trylock never succeeded")
				return
			}
		}
		th.Unlock(l, s)
		th.Write(got, int64(n), s)
	})
	res := Run(p, Config{Seed: 3})
	if p.Mem.Load(got) == 0 {
		t.Fatal("expected at least one failed trylock spin")
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestCondSignalWait(t *testing.T) {
	p := NewProgram("t")
	l := p.NewLock("L")
	c := p.NewCond("C")
	ready := p.Mem.Alloc("ready", 0)
	s := site(p, 1)
	p.AddThread(func(th *Thread) {
		th.Lock(l, s)
		for th.Read(ready, s) == 0 {
			th.Wait(c, l, s)
		}
		th.Unlock(l, s)
	})
	p.AddThread(func(th *Thread) {
		th.Compute(500)
		th.Lock(l, s)
		th.Write(ready, 1, s)
		th.Unlock(l, s)
		th.Signal(c, s)
	})
	res := Run(p, Config{Seed: 1})
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	// cond wait emits an unlock + re-acquire pair, so the waiter produces
	// at least 2 acquisitions.
	if got := res.Trace.DynamicLocks(); got < 3 {
		t.Fatalf("dynamic locks = %d, want >= 3", got)
	}
}

func TestCondTimedWaitTimesOut(t *testing.T) {
	p := NewProgram("t")
	l := p.NewLock("L")
	c := p.NewCond("C")
	out := p.Mem.Alloc("out", 0)
	s := site(p, 1)
	p.AddThread(func(th *Thread) {
		th.Lock(l, s)
		ok := th.TimedWait(c, l, 1000, s)
		th.Unlock(l, s)
		if ok {
			th.Write(out, 1, s)
		} else {
			th.Write(out, 2, s)
		}
	})
	res := Run(p, Config{Seed: 1})
	if got := p.Mem.Load(out); got != 2 {
		t.Fatalf("out = %d, want 2 (timeout)", got)
	}
	if res.Total < 1000 {
		t.Fatalf("total = %v, want >= 1000 (the timeout must elapse)", res.Total)
	}
}

func TestCondTimedWaitSignalled(t *testing.T) {
	p := NewProgram("t")
	l := p.NewLock("L")
	c := p.NewCond("C")
	out := p.Mem.Alloc("out", 0)
	s := site(p, 1)
	p.AddThread(func(th *Thread) {
		th.Lock(l, s)
		ok := th.TimedWait(c, l, 100000, s)
		th.Unlock(l, s)
		if ok {
			th.Write(out, 1, s)
		} else {
			th.Write(out, 2, s)
		}
	})
	p.AddThread(func(th *Thread) {
		th.Compute(300)
		th.Signal(c, s)
	})
	Run(p, Config{Seed: 1})
	if got := p.Mem.Load(out); got != 1 {
		t.Fatalf("out = %d, want 1 (signalled)", got)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	p := NewProgram("t")
	b := p.NewBarrier("B", 3)
	after := p.Mem.AllocN("after", 3, 0)
	s := site(p, 1)
	costs := []vtime.Duration{100, 2000, 700}
	for i := 0; i < 3; i++ {
		i := i
		p.AddThread(func(th *Thread) {
			th.Compute(costs[i])
			th.Barrier(b, s)
			th.Write(after[i], int64(th.Now()), s)
		})
	}
	res := Run(p, Config{Seed: 1})
	t0 := p.Mem.Load(after[0])
	for i := 1; i < 3; i++ {
		// All threads resume at the same post-barrier instant (± the
		// memory-write cost of the probe itself).
		if p.Mem.Load(after[i]) != t0 {
			t.Fatalf("thread %d resumed at %d, thread 0 at %d", i, p.Mem.Load(after[i]), t0)
		}
	}
	if res.Total < 2000 {
		t.Fatalf("total = %v, want >= slowest arrival 2000", res.Total)
	}
}

func TestBarrierReusable(t *testing.T) {
	p := NewProgram("t")
	b := p.NewBarrier("B", 2)
	s := site(p, 1)
	n := p.Mem.Alloc("n", 0)
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *Thread) {
			for j := 0; j < 3; j++ {
				th.Compute(vtime.Duration(100 * (th.Intn(5) + 1)))
				th.Barrier(b, s)
			}
			th.Add(n, 1, s)
		})
	}
	Run(p, Config{Seed: 9})
	if got := p.Mem.Load(n); got != 2 {
		t.Fatalf("n = %d, want 2", got)
	}
}

func TestSkipRangeRecordsDelta(t *testing.T) {
	p := NewProgram("t")
	x := p.Mem.Alloc("x", 1)
	y := p.Mem.Alloc("y", 0)
	s := site(p, 1)
	p.AddThread(func(th *Thread) {
		// A "system call" whose effects are selectively recorded.
		th.SkipRange(5000, func(m *memmodel.Memory) {
			m.Store(y, 42)
		})
		if got := th.Read(y, s); got != 42 {
			t.Errorf("y = %d after skip range, want 42", got)
		}
		_ = x
	})
	res := Run(p, Config{Seed: 1})
	var skip *trace.Event
	for i := range res.Trace.Events {
		if res.Trace.Events[i].Kind == trace.KSkip {
			skip = &res.Trace.Events[i]
		}
	}
	if skip == nil {
		t.Fatal("no KSkip event recorded")
	}
	if skip.Delta[y] != 42 {
		t.Fatalf("skip delta = %v, want y=42", skip.Delta)
	}
	if skip.Cost != 5000 {
		t.Fatalf("skip cost = %v, want 5000", skip.Cost)
	}
}

func TestThreadStartEndEvents(t *testing.T) {
	p := NewProgram("t")
	p.AddThread(func(th *Thread) { th.Compute(10) })
	p.AddThread(func(th *Thread) { th.Compute(20) })
	res := Run(p, Config{Seed: 1})
	if got := res.Trace.CountKind(trace.KThreadStart); got != 2 {
		t.Fatalf("thread starts = %d, want 2", got)
	}
	if got := res.Trace.CountKind(trace.KThreadEnd); got != 2 {
		t.Fatalf("thread ends = %d, want 2", got)
	}
}

func TestFIFOLockFairnessByArrival(t *testing.T) {
	// T1 arrives at the lock before T2; T1 must win it first.
	p := NewProgram("t")
	l := p.NewLock("L")
	order := p.Mem.Alloc("order", 0)
	s := site(p, 1)
	p.AddThread(func(th *Thread) { // holder
		th.Lock(l, s)
		th.Compute(10000)
		th.Unlock(l, s)
	})
	p.AddThread(func(th *Thread) { // early waiter
		th.Compute(100)
		th.Lock(l, s)
		v := th.Read(order, s)
		th.Write(order, v*10+1, s)
		th.Unlock(l, s)
	})
	p.AddThread(func(th *Thread) { // late waiter
		th.Compute(5000)
		th.Lock(l, s)
		v := th.Read(order, s)
		th.Write(order, v*10+2, s)
		th.Unlock(l, s)
	})
	Run(p, Config{Seed: 1})
	if got := p.Mem.Load(order); got != 12 {
		t.Fatalf("acquisition order encoded %d, want 12 (arrival FIFO)", got)
	}
}
