package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"perfplay/internal/memmodel"
	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// Config controls the cost model and determinism seed of a run.
type Config struct {
	// Seed drives every tie-break and the per-thread RNGs. Identical
	// (program, Config) pairs produce identical traces.
	Seed int64
	// LockCost, UnlockCost and MemCost are the fixed virtual costs of the
	// corresponding instructions. SyncCost covers condvar signal/barrier
	// bookkeeping.
	LockCost, UnlockCost, MemCost, SyncCost vtime.Duration
}

// DefaultConfig is the cost model used by all experiments: lock operations
// cost a few tens of ticks, so contention (thousands of ticks of critical
// section work) dominates — the regime the paper studies.
func DefaultConfig() Config {
	return Config{LockCost: 40, UnlockCost: 20, MemCost: 15, SyncCost: 25}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LockCost == 0 {
		c.LockCost = d.LockCost
	}
	if c.UnlockCost == 0 {
		c.UnlockCost = d.UnlockCost
	}
	if c.MemCost == 0 {
		c.MemCost = d.MemCost
	}
	if c.SyncCost == 0 {
		c.SyncCost = d.SyncCost
	}
	return c
}

// Result is the outcome of a simulated run.
type Result struct {
	// Trace is the recorded execution.
	Trace *trace.Trace
	// Total is the virtual makespan (max thread completion time).
	Total vtime.Duration
	// PerThreadCPU is CPU time consumed per thread, including spin waste.
	PerThreadCPU []vtime.Duration
	// PerThreadWait is blocked (non-CPU) lock/cond waiting per thread.
	PerThreadWait []vtime.Duration
	// SpinWaste is total CPU burned spinning on spin locks.
	SpinWaste vtime.Duration
	// Waited is total blocked waiting time across threads.
	Waited vtime.Duration
}

// CPUTotal sums per-thread CPU time.
func (r *Result) CPUTotal() vtime.Duration {
	var s vtime.Duration
	for _, c := range r.PerThreadCPU {
		s += c
	}
	return s
}

type reqKind uint8

const (
	opInvalid reqKind = iota
	opCompute
	opLock
	opTryLock
	opUnlock
	opRead
	opWrite
	opSleep
	opWait
	opTimedWait
	opSignal
	opBroadcast
	opBarrier
	opSkip
	opDone
)

type request struct {
	kind reqKind
	lock trace.LockID
	cond CondID
	bar  BarrierID
	addr memmodel.Addr
	val  int64
	wop  trace.WriteOp
	cost vtime.Duration
	site trace.SiteID
	fn   func(m *memmodel.Memory)
}

type response struct {
	val int64
	ok  bool
	now vtime.Time
}

// Thread is the handle a ThreadBody uses to execute simulated
// instructions. All methods are synchronous in virtual time.
type Thread struct {
	id     int32
	m      *machine
	rng    *rand.Rand
	reqCh  chan request
	respCh chan response
	now    vtime.Time
}

// ID returns the thread's index.
func (t *Thread) ID() int32 { return t.id }

// Now returns the thread's current virtual clock.
func (t *Thread) Now() vtime.Time { return t.now }

// Intn returns a deterministic per-thread pseudo-random int in [0, n).
func (t *Thread) Intn(n int) int { return t.rng.Intn(n) }

// Float64 returns a deterministic per-thread pseudo-random float in [0,1).
func (t *Thread) Float64() float64 { return t.rng.Float64() }

func (t *Thread) do(r request) response {
	t.reqCh <- r
	resp := <-t.respCh
	t.now = resp.now
	return resp
}

// Compute burns d ticks of CPU with no shared access (a program segment).
func (t *Thread) Compute(d vtime.Duration) {
	if d <= 0 {
		return
	}
	t.do(request{kind: opCompute, cost: d})
}

// Sleep advances time by d without consuming CPU.
func (t *Thread) Sleep(d vtime.Duration) {
	if d <= 0 {
		return
	}
	t.do(request{kind: opSleep, cost: d})
}

// Lock acquires l, blocking (or spinning, per the lock's declaration)
// until available.
func (t *Thread) Lock(l trace.LockID, site trace.SiteID) {
	t.do(request{kind: opLock, lock: l, site: site})
}

// TryLock attempts to acquire l without waiting; it reports success.
func (t *Thread) TryLock(l trace.LockID, site trace.SiteID) bool {
	return t.do(request{kind: opTryLock, lock: l, site: site}).ok
}

// Unlock releases l.
func (t *Thread) Unlock(l trace.LockID, site trace.SiteID) {
	t.do(request{kind: opUnlock, lock: l, site: site})
}

// Read performs a shared load.
func (t *Thread) Read(a memmodel.Addr, site trace.SiteID) int64 {
	return t.do(request{kind: opRead, addr: a, site: site}).val
}

// Write performs a shared store of v.
func (t *Thread) Write(a memmodel.Addr, v int64, site trace.SiteID) {
	t.do(request{kind: opWrite, addr: a, val: v, wop: trace.WSet, site: site})
}

// Add performs a shared read-modify-write adding v (commutative).
func (t *Thread) Add(a memmodel.Addr, v int64, site trace.SiteID) {
	t.do(request{kind: opWrite, addr: a, val: v, wop: trace.WAdd, site: site})
}

// Or performs a shared bitwise-or of v (disjoint bit manipulation).
func (t *Thread) Or(a memmodel.Addr, v int64, site trace.SiteID) {
	t.do(request{kind: opWrite, addr: a, val: v, wop: trace.WOr, site: site})
}

// And performs a shared bitwise-and of v.
func (t *Thread) And(a memmodel.Addr, v int64, site trace.SiteID) {
	t.do(request{kind: opWrite, addr: a, val: v, wop: trace.WAnd, site: site})
}

// Wait releases l, sleeps until c is signalled, then re-acquires l —
// pthread_cond_wait semantics, including the re-acquire that the paper's
// Case 1 identifies as a null-lock source.
func (t *Thread) Wait(c CondID, l trace.LockID, site trace.SiteID) {
	t.do(request{kind: opWait, cond: c, lock: l, site: site})
}

// TimedWait is Wait with a timeout; it reports true if signalled and
// false on timeout (pthread_cond_timedwait returning ETIMEDOUT).
func (t *Thread) TimedWait(c CondID, l trace.LockID, d vtime.Duration, site trace.SiteID) bool {
	return t.do(request{kind: opTimedWait, cond: c, lock: l, cost: d, site: site}).ok
}

// Signal wakes one waiter of c.
func (t *Thread) Signal(c CondID, site trace.SiteID) {
	t.do(request{kind: opSignal, cond: c, site: site})
}

// Broadcast wakes all waiters of c.
func (t *Thread) Broadcast(c CondID, site trace.SiteID) {
	t.do(request{kind: opBroadcast, cond: c, site: site})
}

// Barrier blocks until all parties of b have arrived.
func (t *Thread) Barrier(b BarrierID, site trace.SiteID) {
	t.do(request{kind: opBarrier, bar: b, site: site})
}

// SkipRange executes fn against shared memory as a selectively-recorded
// range: the trace receives a single KSkip event holding the memory delta
// and elapsed cost, and the replayer restores the delta instead of
// re-executing (Sec. 5.1).
func (t *Thread) SkipRange(d vtime.Duration, fn func(m *memmodel.Memory)) {
	t.do(request{kind: opSkip, cost: d, fn: fn})
}

type blockKind uint8

const (
	blockNone blockKind = iota
	blockLock
	blockCond
)

type threadState struct {
	th        *Thread
	clock     vtime.Time
	cpu       vtime.Duration
	waitDur   vtime.Duration
	spinWaste vtime.Duration
	req       request
	hasReq    bool
	done      bool
	blocked   blockKind
	// arrival is the time the thread began waiting.
	arrival vtime.Time
	// deadline is the timed-wait deadline, or Infinity.
	deadline vtime.Time
	// condTimed marks a cond wait as timed.
	condTimed bool
	// wakeOK is the response value pending after a cond wake/timeout.
	wakeOK bool
}

type lockWaiter struct {
	tid     int32
	arrival vtime.Time
	// fromCond carries the pending cond-wait result through the
	// re-acquisition.
	fromCond bool
	ok       bool
	site     trace.SiteID
}

type lockState struct {
	heldBy int32
	queue  []lockWaiter
	// freeAt is the virtual time of the last release: a requester whose
	// clock lags behind it (its request is processed after the release
	// event) still cannot hold the lock before the previous holder let go.
	freeAt vtime.Time
}

type condWaiter struct {
	tid  int32
	lock trace.LockID
	site trace.SiteID
}

type barrierState struct {
	arrived    []int32
	maxAt      vtime.Time
	sites      []trace.SiteID
	generation int64
}

type machine struct {
	prog    *Program
	cfg     Config
	tr      *trace.Trace
	threads []*threadState
	locks   []lockState
	conds   [][]condWaiter
	bars    []barrierState
	active  int
}

// Run executes the program to completion and returns the recorded trace
// and measurements.
func Run(p *Program, cfg Config) *Result {
	cfg = cfg.withDefaults()
	m := &machine{
		prog:  p,
		cfg:   cfg,
		tr:    trace.New(p.Name, p.NumThreads()),
		locks: make([]lockState, len(p.locks)+1),
		conds: make([][]condWaiter, len(p.conds)+1),
		bars:  make([]barrierState, len(p.barriers)+1),
	}
	m.tr.Sites = p.Sites
	m.tr.InitMem = p.Mem.Snapshot()
	for i := range m.locks {
		m.locks[i].heldBy = -1
	}
	for l := 1; l <= len(p.locks); l++ {
		if p.locks[l-1].spin {
			m.tr.SpinLocks[trace.LockID(l)] = true
		}
	}
	for a, name := range p.Mem.Names() {
		m.tr.MemNames[a] = name
	}

	for i, body := range p.bodies {
		th := &Thread{
			id:     int32(i),
			m:      m,
			rng:    rand.New(rand.NewSource(cfg.Seed ^ (int64(i)+1)*0x9e3779b97f4a7c)),
			reqCh:  make(chan request),
			respCh: make(chan response),
		}
		ts := &threadState{th: th, deadline: vtime.Infinity}
		m.threads = append(m.threads, ts)
		m.tr.Append(trace.Event{Thread: int32(i), Kind: trace.KThreadStart})
		b := body
		go func() {
			b(th)
			th.reqCh <- request{kind: opDone}
		}()
	}
	m.active = len(m.threads)
	for _, ts := range m.threads {
		m.fetch(ts)
	}
	m.loop()

	m.tr.FinalMem = p.Mem.Snapshot()
	res := &Result{Trace: m.tr}
	var total vtime.Time
	for _, ts := range m.threads {
		if ts.clock > total {
			total = ts.clock
		}
		res.PerThreadCPU = append(res.PerThreadCPU, ts.cpu)
		res.PerThreadWait = append(res.PerThreadWait, ts.waitDur)
		res.SpinWaste += ts.spinWaste
		res.Waited += ts.waitDur
	}
	res.Total = vtime.Duration(total)
	m.tr.TotalTime = res.Total
	return res
}

// fetch receives the next request from a thread (or registers completion).
func (m *machine) fetch(ts *threadState) {
	r := <-ts.th.reqCh
	if r.kind == opDone {
		ts.done = true
		ts.hasReq = false
		m.active--
		m.tr.Append(trace.Event{Thread: ts.th.id, Kind: trace.KThreadEnd, Time: ts.clock})
		return
	}
	ts.req = r
	ts.hasReq = true
}

// respond completes the thread's current instruction and fetches the next.
func (m *machine) respond(ts *threadState, resp response) {
	ts.hasReq = false
	resp.now = ts.clock
	ts.th.respCh <- resp
	m.fetch(ts)
}

func (m *machine) loop() {
	for m.active > 0 {
		// Candidate 1: runnable thread with minimal clock.
		best := -1
		for i, ts := range m.threads {
			if !ts.hasReq || ts.done {
				continue
			}
			if best == -1 || ts.clock < m.threads[best].clock {
				best = i
			}
		}
		// Candidate 2: timed cond waiter with minimal deadline.
		timed := -1
		for i, ts := range m.threads {
			if ts.blocked == blockCond && ts.condTimed {
				if timed == -1 || ts.deadline < m.threads[timed].deadline {
					timed = i
				}
			}
		}
		switch {
		case best == -1 && timed == -1:
			m.deadlock()
			return
		case best == -1 || (timed != -1 && m.threads[timed].deadline <= m.threads[best].clock):
			m.fireTimeout(m.threads[timed])
		default:
			m.exec(m.threads[best])
		}
	}
}

func (m *machine) deadlock() {
	var stuck []string
	for i, ts := range m.threads {
		if !ts.done {
			stuck = append(stuck, fmt.Sprintf("T%d(blocked=%d)", i, ts.blocked))
		}
	}
	if len(stuck) == 0 {
		return
	}
	panic(fmt.Sprintf("sim: deadlock; stuck threads: %v", stuck))
}

// fireTimeout wakes a timed cond waiter at its deadline; per pthread
// semantics it must re-acquire the mutex before returning ETIMEDOUT.
func (m *machine) fireTimeout(ts *threadState) {
	c := ts.req.cond
	// Remove from the cond queue.
	q := m.conds[c]
	for i := range q {
		if q[i].tid == ts.th.id {
			m.conds[c] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	wake := ts.deadline
	waited := wake.Sub(ts.arrival)
	ts.waitDur += waited
	ts.clock = wake
	// Record the wait as think-time so replays reproduce it: the paper
	// only guarantees partial-order fidelity for non-mutex semaphores
	// (Sec. 5.1), and a recorded sleep is exactly that.
	m.tr.Append(trace.Event{Thread: ts.th.id, Kind: trace.KSleep, Cost: waited, Time: wake, Site: ts.req.site})
	ts.blocked = blockNone
	ts.condTimed = false
	ts.deadline = vtime.Infinity
	m.acquire(ts, ts.req.lock, ts.req.site, true, false)
}

func (m *machine) exec(ts *threadState) {
	r := ts.req
	id := ts.th.id
	switch r.kind {
	case opCompute:
		ts.clock = ts.clock.Add(r.cost)
		ts.cpu += r.cost
		m.tr.Append(trace.Event{Thread: id, Kind: trace.KCompute, Cost: r.cost, Time: ts.clock, Site: r.site})
		m.respond(ts, response{})
	case opSleep:
		ts.clock = ts.clock.Add(r.cost)
		m.tr.Append(trace.Event{Thread: id, Kind: trace.KSleep, Cost: r.cost, Time: ts.clock, Site: r.site})
		m.respond(ts, response{})
	case opLock:
		m.prog.checkLock(r.lock)
		m.acquire(ts, r.lock, r.site, false, false)
	case opTryLock:
		m.prog.checkLock(r.lock)
		ls := &m.locks[r.lock]
		ts.clock = ts.clock.Add(m.cfg.LockCost)
		ts.cpu += m.cfg.LockCost
		// At the requester's instant the lock counts as held if the last
		// release lies in the requester's future.
		if ls.heldBy == -1 && ts.clock >= ls.freeAt {
			ls.heldBy = id
			m.tr.Append(trace.Event{Thread: id, Kind: trace.KLockAcq, Lock: r.lock, Cost: m.cfg.LockCost, Time: ts.clock, Site: r.site, Spin: m.prog.lockSpin(r.lock)})
			m.respond(ts, response{ok: true})
		} else {
			// Failed trylock: time passes, no sync event.
			m.tr.Append(trace.Event{Thread: id, Kind: trace.KCompute, Cost: m.cfg.LockCost, Time: ts.clock, Site: r.site})
			m.respond(ts, response{ok: false})
		}
	case opUnlock:
		m.release(ts, r.lock, r.site)
		m.respond(ts, response{})
	case opRead:
		v := m.prog.Mem.Load(r.addr)
		ts.clock = ts.clock.Add(m.cfg.MemCost)
		ts.cpu += m.cfg.MemCost
		m.tr.Append(trace.Event{Thread: id, Kind: trace.KRead, Addr: r.addr, Value: v, Cost: m.cfg.MemCost, Time: ts.clock, Site: r.site})
		m.respond(ts, response{val: v})
	case opWrite:
		cur := m.prog.Mem.Load(r.addr)
		m.prog.Mem.Store(r.addr, r.wop.Apply(cur, r.val))
		ts.clock = ts.clock.Add(m.cfg.MemCost)
		ts.cpu += m.cfg.MemCost
		m.tr.Append(trace.Event{Thread: id, Kind: trace.KWrite, Addr: r.addr, Value: r.val, Op: r.wop, Cost: m.cfg.MemCost, Time: ts.clock, Site: r.site})
		m.respond(ts, response{})
	case opWait, opTimedWait:
		m.prog.checkCond(r.cond)
		// Release the mutex (recorded, as in pthread_cond_wait).
		m.release(ts, r.lock, r.site)
		ts.hasReq = false
		ts.blocked = blockCond
		ts.arrival = ts.clock
		if r.kind == opTimedWait {
			ts.condTimed = true
			ts.deadline = ts.clock.Add(r.cost)
		}
		m.conds[r.cond] = append(m.conds[r.cond], condWaiter{tid: id, lock: r.lock, site: r.site})
		// No respond: the thread stays parked until signal/timeout.
	case opSignal:
		m.prog.checkCond(r.cond)
		ts.clock = ts.clock.Add(m.cfg.SyncCost)
		ts.cpu += m.cfg.SyncCost
		m.tr.Append(trace.Event{Thread: id, Kind: trace.KCompute, Cost: m.cfg.SyncCost, Time: ts.clock, Site: r.site})
		m.wakeCond(r.cond, 1, ts.clock)
		m.respond(ts, response{})
	case opBroadcast:
		m.prog.checkCond(r.cond)
		ts.clock = ts.clock.Add(m.cfg.SyncCost)
		ts.cpu += m.cfg.SyncCost
		m.tr.Append(trace.Event{Thread: id, Kind: trace.KCompute, Cost: m.cfg.SyncCost, Time: ts.clock, Site: r.site})
		m.wakeCond(r.cond, len(m.conds[r.cond]), ts.clock)
		m.respond(ts, response{})
	case opBarrier:
		m.prog.checkBarrier(r.bar)
		bs := &m.bars[r.bar]
		bs.arrived = append(bs.arrived, id)
		bs.sites = append(bs.sites, r.site)
		if ts.clock > bs.maxAt {
			bs.maxAt = ts.clock
		}
		ts.hasReq = false
		ts.blocked = blockCond
		ts.arrival = ts.clock
		if len(bs.arrived) >= m.prog.barriers[r.bar-1].parties {
			// Everyone arrived: release all at the max arrival time. Each
			// participant records a KBarrier event tagged with the
			// episode number so replays re-derive the wait semantically.
			rel := bs.maxAt.Add(m.cfg.SyncCost)
			arrived, sites := bs.arrived, bs.sites
			gen := bs.generation
			bs.arrived, bs.sites, bs.maxAt = nil, nil, 0
			bs.generation++
			for i, tid := range arrived {
				wts := m.threads[tid]
				wts.waitDur += rel.Sub(wts.clock)
				m.tr.Append(trace.Event{
					Thread: tid, Kind: trace.KBarrier,
					Lock: trace.LockID(r.bar), Value: int64(gen),
					Cost: m.cfg.SyncCost, Time: rel, Site: sites[i],
				})
				wts.clock = rel
				wts.blocked = blockNone
				m.respond(wts, response{})
			}
		}
		// Otherwise stay parked; the last arrival releases us.
	case opSkip:
		before := m.prog.Mem.Snapshot()
		if r.fn != nil {
			r.fn(m.prog.Mem)
		}
		after := m.prog.Mem.Snapshot()
		delta := memmodel.Snapshot{}
		for _, a := range before.Diff(after) {
			delta[a] = after[a]
		}
		ts.clock = ts.clock.Add(r.cost)
		ts.cpu += r.cost
		m.tr.Append(trace.Event{Thread: id, Kind: trace.KSkip, Cost: r.cost, Time: ts.clock, Site: r.site, Delta: delta})
		m.respond(ts, response{})
	default:
		panic(fmt.Sprintf("sim: unknown request kind %d", r.kind))
	}
}

// acquire grants the lock immediately or parks the thread on its queue.
// fromCond marks re-acquisition after a cond wake/timeout; ok is the
// pending cond result to deliver once the lock is re-held.
func (m *machine) acquire(ts *threadState, l trace.LockID, site trace.SiteID, fromCond, ok bool) {
	ls := &m.locks[l]
	if ls.heldBy == -1 {
		ls.heldBy = ts.th.id
		start := vtime.Max(ts.clock, ls.freeAt)
		waited := start.Sub(ts.clock)
		if waited > 0 {
			if m.prog.lockSpin(l) {
				ts.cpu += waited
				ts.spinWaste += waited
			} else {
				ts.waitDur += waited
			}
		}
		ts.clock = start.Add(m.cfg.LockCost)
		ts.cpu += m.cfg.LockCost
		m.tr.Append(trace.Event{Thread: ts.th.id, Kind: trace.KLockAcq, Lock: l, Cost: m.cfg.LockCost, Time: ts.clock, Site: site, Spin: m.prog.lockSpin(l)})
		m.respond(ts, response{ok: ok})
		return
	}
	ts.hasReq = false
	ts.blocked = blockLock
	ts.arrival = ts.clock
	ls.queue = append(ls.queue, lockWaiter{tid: ts.th.id, arrival: ts.clock, fromCond: fromCond, ok: ok, site: site})
}

// release unlocks l at ts's clock and hands it to the earliest waiter.
func (m *machine) release(ts *threadState, l trace.LockID, site trace.SiteID) {
	m.prog.checkLock(l)
	ls := &m.locks[l]
	if ls.heldBy != ts.th.id {
		panic(fmt.Sprintf("sim: T%d unlocks %v held by T%d", ts.th.id, l, ls.heldBy))
	}
	ts.clock = ts.clock.Add(m.cfg.UnlockCost)
	ts.cpu += m.cfg.UnlockCost
	m.tr.Append(trace.Event{Thread: ts.th.id, Kind: trace.KLockRel, Lock: l, Cost: m.cfg.UnlockCost, Time: ts.clock, Site: site})
	ls.heldBy = -1
	ls.freeAt = ts.clock
	if len(ls.queue) == 0 {
		return
	}
	// Wake the earliest-arrival waiter (FIFO in time, tie-break by id).
	sort.SliceStable(ls.queue, func(i, j int) bool {
		if ls.queue[i].arrival != ls.queue[j].arrival {
			return ls.queue[i].arrival < ls.queue[j].arrival
		}
		return ls.queue[i].tid < ls.queue[j].tid
	})
	w := ls.queue[0]
	ls.queue = ls.queue[1:]
	wts := m.threads[w.tid]
	wake := vtime.Max(w.arrival, ts.clock)
	waited := wake.Sub(w.arrival)
	if m.prog.lockSpin(l) {
		wts.cpu += waited
		wts.spinWaste += waited
	} else {
		wts.waitDur += waited
	}
	wts.clock = wake.Add(m.cfg.LockCost)
	wts.cpu += m.cfg.LockCost
	wts.blocked = blockNone
	wts.condTimed = false
	wts.deadline = vtime.Infinity
	ls.heldBy = w.tid
	m.tr.Append(trace.Event{Thread: w.tid, Kind: trace.KLockAcq, Lock: l, Cost: m.cfg.LockCost, Time: wts.clock, Site: w.site, Spin: m.prog.lockSpin(l)})
	m.respond(wts, response{ok: w.ok})
}

// wakeCond moves up to n cond waiters into lock re-acquisition at time at.
func (m *machine) wakeCond(c CondID, n int, at vtime.Time) {
	for ; n > 0 && len(m.conds[c]) > 0; n-- {
		w := m.conds[c][0]
		m.conds[c] = m.conds[c][1:]
		wts := m.threads[w.tid]
		wake := vtime.Max(wts.clock, at)
		waited := wake.Sub(wts.arrival)
		wts.waitDur += waited
		wts.clock = wake
		if waited > 0 {
			m.tr.Append(trace.Event{Thread: w.tid, Kind: trace.KSleep, Cost: waited, Time: wake, Site: w.site})
		}
		wts.blocked = blockNone
		wts.condTimed = false
		wts.deadline = vtime.Infinity
		m.acquire(wts, w.lock, w.site, true, true)
	}
}
