package sim

import (
	"strings"
	"testing"

	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

// TestLockFreeAtSemantics pins the fix for a subtle simulator bug: a
// thread whose lock request is processed after the holder's release event
// (but whose own clock predates it) must still wait until the release
// time — the lock cannot be held by two threads at overlapping virtual
// times.
func TestLockFreeAtSemantics(t *testing.T) {
	p := NewProgram("freeat")
	l := p.NewLock("L")
	s := p.Site("f.c", 1, "f")
	// T0 holds L for [~0, 1060]; T1 requests at 1000 — after T0's release
	// is processed in event order but before it in virtual time? No: T1
	// requests at 1000 < release 1060, so it must wait.
	p.AddThread(func(th *Thread) {
		th.Lock(l, s)
		th.Compute(1000)
		th.Unlock(l, s)
	})
	p.AddThread(func(th *Thread) {
		th.Compute(1000)
		th.Lock(l, s)
		th.Unlock(l, s)
	})
	res := Run(p, Config{Seed: 1})
	// Verify no two critical sections of L overlap in recorded time.
	css := res.Trace.ExtractCS()
	for i := 0; i < len(css); i++ {
		for j := i + 1; j < len(css); j++ {
			a, b := css[i], css[j]
			if a.Lock != b.Lock {
				continue
			}
			// Span of a CS: acquisition completion .. release completion.
			if a.Start < b.End && b.Start < a.End {
				t.Fatalf("critical sections overlap: %v [%v,%v] and %v [%v,%v]",
					a, a.Start, a.End, b, b.Start, b.End)
			}
		}
	}
}

// TestCSNeverOverlapQuick: the invariant above over randomized programs.
func TestCSNeverOverlapQuick(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := NewProgram("q")
		l := p.NewLock("L")
		x := p.Mem.Alloc("x", 0)
		s := p.Site("f.c", 1, "f")
		for i := 0; i < 3; i++ {
			p.AddThread(func(th *Thread) {
				for j := 0; j < 8; j++ {
					th.Compute(vtime.Duration(10 + th.Intn(500)))
					th.Lock(l, s)
					th.Add(x, 1, s)
					th.Compute(vtime.Duration(10 + th.Intn(200)))
					th.Unlock(l, s)
				}
			})
		}
		res := Run(p, Config{Seed: seed})
		css := res.Trace.ExtractCS()
		for i := 0; i < len(css); i++ {
			for j := i + 1; j < len(css); j++ {
				a, b := css[i], css[j]
				if a.Start < b.End && b.Start < a.End {
					t.Fatalf("seed %d: overlapping CSs %v and %v", seed, a, b)
				}
			}
		}
	}
}

func TestTryLockSeesInFlightHold(t *testing.T) {
	// T1's trylock at t=500 happens while T0 holds [0, 1060]: must fail
	// even though the sim may process T0's release first.
	p := NewProgram("tryfree")
	l := p.NewLock("L")
	got := p.Mem.Alloc("got", -1)
	s := p.Site("f.c", 1, "f")
	p.AddThread(func(th *Thread) {
		th.Lock(l, s)
		th.Compute(1000)
		th.Unlock(l, s)
	})
	p.AddThread(func(th *Thread) {
		th.Compute(500)
		if th.TryLock(l, s) {
			th.Unlock(l, s)
			th.Write(got, 1, s)
		} else {
			th.Write(got, 0, s)
		}
	})
	Run(p, Config{Seed: 1})
	if p.Mem.Load(got) != 0 {
		t.Fatal("trylock succeeded while the lock was virtually held")
	}
}

func TestBroadcastWakesAllWaiters(t *testing.T) {
	p := NewProgram("bcast")
	l := p.NewLock("L")
	c := p.NewCond("C")
	go_ := p.Mem.Alloc("go", 0)
	woke := p.Mem.Alloc("woke", 0)
	s := p.Site("f.c", 1, "f")
	for i := 0; i < 4; i++ {
		p.AddThread(func(th *Thread) {
			th.Lock(l, s)
			for th.Read(go_, s) == 0 {
				th.Wait(c, l, s)
			}
			th.Add(woke, 1, s)
			th.Unlock(l, s)
		})
	}
	p.AddThread(func(th *Thread) {
		th.Compute(1000)
		th.Lock(l, s)
		th.Write(go_, 1, s)
		th.Unlock(l, s)
		th.Broadcast(c, s)
	})
	Run(p, Config{Seed: 1})
	if p.Mem.Load(woke) != 4 {
		t.Fatalf("woke = %d, want all 4 waiters", p.Mem.Load(woke))
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlock did not panic")
		}
		if !strings.Contains(r.(string), "deadlock") {
			t.Fatalf("panic = %v", r)
		}
	}()
	p := NewProgram("dead")
	l1, l2 := p.NewLock("L1"), p.NewLock("L2")
	s := p.Site("f.c", 1, "f")
	p.AddThread(func(th *Thread) {
		th.Lock(l1, s)
		th.Compute(100)
		th.Lock(l2, s)
		th.Unlock(l2, s)
		th.Unlock(l1, s)
	})
	p.AddThread(func(th *Thread) {
		th.Lock(l2, s)
		th.Compute(100)
		th.Lock(l1, s)
		th.Unlock(l1, s)
		th.Unlock(l2, s)
	})
	Run(p, Config{Seed: 1})
}

func TestSpinWaitAccountedOnLateGrant(t *testing.T) {
	// Same freeAt scenario on a spin lock: the wait burns CPU.
	p := NewProgram("spinfree")
	l := p.NewSpinLock("S")
	s := p.Site("f.c", 1, "f")
	p.AddThread(func(th *Thread) {
		th.Lock(l, s)
		th.Compute(2000)
		th.Unlock(l, s)
	})
	p.AddThread(func(th *Thread) {
		th.Compute(100)
		th.Lock(l, s)
		th.Unlock(l, s)
	})
	res := Run(p, Config{Seed: 1})
	if res.SpinWaste < 1800 {
		t.Fatalf("spin waste = %v, want ~1900 (the full wait burns CPU)", res.SpinWaste)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c != d {
		t.Fatalf("withDefaults() = %+v, want %+v", c, d)
	}
	// Partial override keeps the rest.
	c2 := Config{LockCost: 99}.withDefaults()
	if c2.LockCost != 99 || c2.UnlockCost != d.UnlockCost {
		t.Fatalf("partial defaults broken: %+v", c2)
	}
}

func TestBarrierGenerationsRecorded(t *testing.T) {
	p := NewProgram("gen")
	b := p.NewBarrier("B", 2)
	s := p.Site("f.c", 1, "f")
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *Thread) {
			for j := 0; j < 3; j++ {
				th.Compute(vtime.Duration(100 * (th.Intn(4) + 1)))
				th.Barrier(b, s)
			}
		})
	}
	res := Run(p, Config{Seed: 6})
	gens := map[int64]int{}
	for i := range res.Trace.Events {
		e := &res.Trace.Events[i]
		if e.Kind == trace.KBarrier {
			gens[e.Value]++
		}
	}
	if len(gens) != 3 {
		t.Fatalf("generations = %v, want 3 episodes", gens)
	}
	for g, n := range gens {
		if n != 2 {
			t.Fatalf("episode %d has %d participants, want 2", g, n)
		}
	}
}

func TestRandHelpersDeterministic(t *testing.T) {
	run := func() []int {
		p := NewProgram("rng")
		out := p.Mem.AllocN("o", 4, 0)
		s := p.Site("f.c", 1, "f")
		p.AddThread(func(th *Thread) {
			for i := 0; i < 4; i++ {
				th.Write(out[i], int64(th.Intn(1000)), s)
			}
			_ = th.Float64()
		})
		Run(p, Config{Seed: 77})
		var vals []int
		for _, a := range out {
			vals = append(vals, int(p.Mem.Load(a)))
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("thread RNG not deterministic: %v vs %v", a, b)
		}
	}
}
