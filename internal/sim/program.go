// Package sim implements a deterministic discrete-event simulator of a
// multicore machine running a lock-based multithreaded program.
//
// It is the substrate that replaces the paper's Pin-instrumented native
// execution: workloads are written against a small instruction set
// (compute segments, lock/unlock, shared reads/writes, condition
// variables, barriers), the simulator advances per-thread virtual clocks,
// and a recorder turns the run into a trace.Trace. Because exactly one
// virtual thread executes at a time and every tie-break is seeded, a
// given (program, seed) pair always yields the identical trace — the
// determinism that the paper's record phase obtains from Pin.
package sim

import (
	"fmt"

	"perfplay/internal/memmodel"
	"perfplay/internal/trace"
)

// CondID identifies a condition variable.
type CondID int32

// BarrierID identifies a barrier.
type BarrierID int32

// ThreadBody is the code of one simulated thread.
type ThreadBody func(t *Thread)

type lockDecl struct {
	name string
	spin bool // waiters burn CPU instead of blocking
}

type barrierDecl struct {
	name    string
	parties int
}

// Program is a simulated multithreaded application: shared memory, lock
// and condvar declarations, a site table naming the (pretend) source
// locations, and one body per thread.
type Program struct {
	// Name labels traces and reports.
	Name string
	// Mem is the shared address space.
	Mem *memmodel.Memory
	// Sites interns the program's code sites.
	Sites *trace.SiteTable

	bodies   []ThreadBody
	locks    []lockDecl
	conds    []string
	barriers []barrierDecl
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{
		Name:  name,
		Mem:   memmodel.New(),
		Sites: trace.NewSiteTable(),
	}
}

// AddThread appends a thread; threads are numbered in addition order.
func (p *Program) AddThread(body ThreadBody) int32 {
	p.bodies = append(p.bodies, body)
	return int32(len(p.bodies) - 1)
}

// NumThreads reports the thread count.
func (p *Program) NumThreads() int { return len(p.bodies) }

// NewLock declares a blocking mutex and returns its ID.
func (p *Program) NewLock(name string) trace.LockID {
	p.locks = append(p.locks, lockDecl{name: name})
	return trace.LockID(len(p.locks)) // IDs start at 1
}

// NewSpinLock declares a mutex whose waiters spin (burn CPU), as in the
// paper's openldap and mysql #37844 cases where waiting wastes CPU time.
func (p *Program) NewSpinLock(name string) trace.LockID {
	p.locks = append(p.locks, lockDecl{name: name, spin: true})
	return trace.LockID(len(p.locks))
}

// NewCond declares a condition variable.
func (p *Program) NewCond(name string) CondID {
	p.conds = append(p.conds, name)
	return CondID(len(p.conds)) // IDs start at 1
}

// NewBarrier declares a barrier for n parties.
func (p *Program) NewBarrier(name string, n int) BarrierID {
	p.barriers = append(p.barriers, barrierDecl{name: name, parties: n})
	return BarrierID(len(p.barriers))
}

// Site interns a (file, line, function) source location.
func (p *Program) Site(file string, line int, fn string) trace.SiteID {
	return p.Sites.Intern(trace.Site{File: file, Line: line, Func: fn})
}

// LockName returns the declared name of a lock.
func (p *Program) LockName(l trace.LockID) string {
	i := int(l) - 1
	if i < 0 || i >= len(p.locks) {
		return l.String()
	}
	return p.locks[i].name
}

func (p *Program) lockSpin(l trace.LockID) bool {
	i := int(l) - 1
	if i < 0 || i >= len(p.locks) {
		return false
	}
	return p.locks[i].spin
}

func (p *Program) checkLock(l trace.LockID) {
	if int(l) < 1 || int(l) > len(p.locks) {
		panic(fmt.Sprintf("sim: undeclared lock %v", l))
	}
}

func (p *Program) checkCond(c CondID) {
	if int(c) < 1 || int(c) > len(p.conds) {
		panic(fmt.Sprintf("sim: undeclared cond %d", c))
	}
}

func (p *Program) checkBarrier(b BarrierID) {
	if int(b) < 1 || int(b) > len(p.barriers) {
		panic(fmt.Sprintf("sim: undeclared barrier %d", b))
	}
}
