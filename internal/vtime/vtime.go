// Package vtime provides the virtual time base used by the PerfPlay
// simulator and replay engine.
//
// All timing in this repository is virtual: the discrete-event simulator
// advances per-thread clocks by explicit costs attached to instructions.
// Virtual time makes every experiment deterministic and platform
// independent, which is the property the paper's ELSC scheduler exists to
// approximate on real hardware.
package vtime

import "fmt"

// Time is an absolute virtual timestamp in ticks. One tick is an abstract
// unit; workloads choose their own scale (the experiment harness reports
// normalized quantities, so the absolute scale cancels out).
type Time int64

// Duration is a span of virtual time in ticks.
type Duration int64

// Common durations, for readability in workload definitions.
const (
	Tick Duration = 1
	// Micro approximates "one microsecond" of simulated work at the
	// default workload scale.
	Micro Duration = 1000
	// Milli approximates one millisecond.
	Milli Duration = 1000 * 1000
)

// Infinity is a timestamp later than any reachable simulation time.
const Infinity Time = 1<<63 - 1

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the larger of two durations.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Clamp limits d to the range [lo, hi].
func Clamp(d, lo, hi Duration) Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// String renders a timestamp with its tick unit.
func (t Time) String() string { return fmt.Sprintf("%dt", int64(t)) }

// String renders a duration with its tick unit.
func (d Duration) String() string { return fmt.Sprintf("%dt", int64(d)) }

// Seconds converts a duration to floating seconds assuming Milli ticks per
// millisecond; used only for human-readable report output.
func (d Duration) Seconds() float64 { return float64(d) / float64(Milli*1000) }
