package vtime

import (
	"testing"
	"testing/quick"
)

func TestArithmetic(t *testing.T) {
	var tm Time = 100
	if tm.Add(50) != 150 {
		t.Fatal("Add broken")
	}
	if Time(150).Sub(tm) != 50 {
		t.Fatal("Sub broken")
	}
	if !tm.Before(150) || tm.After(150) {
		t.Fatal("Before/After broken")
	}
	if Max(3, 5) != 5 || Min(3, 5) != 3 {
		t.Fatal("Max/Min broken")
	}
	if MaxDur(3, 5) != 5 {
		t.Fatal("MaxDur broken")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(10, 0, 5) != 5 || Clamp(-1, 0, 5) != 0 || Clamp(3, 0, 5) != 3 {
		t.Fatal("Clamp broken")
	}
}

func TestStrings(t *testing.T) {
	if Time(7).String() != "7t" || Duration(9).String() != "9t" {
		t.Fatal("String broken")
	}
	if (Milli * 1000).Seconds() != 1.0 {
		t.Fatal("Seconds broken")
	}
}

// Add/Sub are inverses.
func TestAddSubQuick(t *testing.T) {
	f := func(base int32, d int32) bool {
		tm := Time(base)
		return tm.Add(Duration(d)).Sub(tm) == Duration(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
