package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("perfplay_events_total", "events")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if got := c.Int(); got != 3 {
		t.Fatalf("counter int = %d, want 3", got)
	}

	g := r.NewGauge("perfplay_depth", "depth")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}

	h := r.NewHistogram("perfplay_wait_seconds", "wait", DurationBuckets)
	h.Observe(0.0007)
	h.Observe(0.3)
	h.Observe(120) // beyond the last bound: only +Inf/_count/_sum
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d, want 3", got)
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("perfplay_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("perfplay_hits_total", "hits", "cache", "outcome")
	v.With("result", "hit").Add(2)
	v.With("result", "miss").Inc()
	v.With("table", "hit").Inc()
	if got := v.With("result", "hit").Value(); got != 2 {
		t.Fatalf("series = %v, want 2", got)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`perfplay_hits_total{cache="result",outcome="hit"} 2`,
		`perfplay_hits_total{cache="result",outcome="miss"} 1`,
		`perfplay_hits_total{cache="table",outcome="hit"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 7
	r.NewGaugeFunc("perfplay_queue_depth", "queued jobs", func() float64 { return float64(depth) })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "perfplay_queue_depth 7") {
		t.Fatalf("callback gauge not rendered:\n%s", b.String())
	}
	depth = 9
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "perfplay_queue_depth 9") {
		t.Fatalf("callback gauge not re-evaluated:\n%s", b.String())
	}
}

func TestRegisterIdempotentAndConflicting(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("perfplay_same_total", "help")
	b := r.NewCounter("perfplay_same_total", "help")
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("re-registration returned a distinct series: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.NewGauge("perfplay_same_total", "help")
}

func TestRegisterRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"Perfplay_total", "perfplay__x", "_x", "x-y", "x_"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.NewCounter(bad, "h")
		}()
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("perfplay_jobs_total", "jobs").Add(4)
	r.NewGaugeVec("perfplay_temp", "temp", "zone").With(`we"ird\zone`).Set(1.5)
	h := r.NewHistogramVec("perfplay_stage_seconds", "stage wall", DurationBuckets, "stage")
	h.With("record").Observe(0.02)
	h.With("replay").Observe(2)
	r.NewGaugeFunc("perfplay_live", "live", func() float64 { return 1 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition failed strict parse: %v\n%s", err, b.String())
	}
	byName := map[string]ExpositionFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["perfplay_stage_seconds"]; f.Type != "histogram" {
		t.Fatalf("stage family = %+v", f)
	}
	// Two label values × (len(buckets)+1 bucket lines + sum + count).
	want := 2 * (len(DurationBuckets) + 3)
	if got := len(byName["perfplay_stage_seconds"].Series); got != want {
		t.Fatalf("histogram series = %d, want %d", got, want)
	}
	if problems := LintFamilies(fams, "perfplay_"); len(problems) != 0 {
		t.Fatalf("lint problems on a conforming registry: %v", problems)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("perfplay_d_seconds", "d", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(100)
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, want := range []string{
		`perfplay_d_seconds_bucket{le="1"} 1`,
		`perfplay_d_seconds_bucket{le="2"} 2`,
		`perfplay_d_seconds_bucket{le="4"} 3`,
		`perfplay_d_seconds_bucket{le="+Inf"} 4`,
		`perfplay_d_seconds_count 4`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestParseExpositionCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"sample before HELP":  "perfplay_x_total 1\n",
		"missing TYPE":        "# HELP perfplay_x_total x\nperfplay_x_total 1\n",
		"duplicate series":    "# HELP perfplay_x_total x\n# TYPE perfplay_x_total counter\nperfplay_x_total 1\nperfplay_x_total 2\n",
		"interleaved family":  "# HELP a_total a\n# TYPE a_total counter\nb_total 1\n",
		"bad value":           "# HELP a_total a\n# TYPE a_total counter\na_total abc\n",
		"reopened family":     "# HELP a_total a\n# TYPE a_total counter\na_total 1\n# HELP b b\n# TYPE b gauge\nb 1\n# HELP a_total a\n# TYPE a_total counter\na_total 2\n",
		"stray comment":       "# a comment\n",
		"type without help":   "# TYPE a_total counter\na_total 1\n",
		"unknown metric type": "# HELP a a\n# TYPE a zig\na 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: strict parse accepted:\n%s", name, in)
		}
	}
}

func TestLintFamiliesCatchesViolations(t *testing.T) {
	fams := []ExpositionFamily{
		{Name: "requests_total", Type: "counter"},         // missing prefix
		{Name: "perfplay_requests", Type: "counter"},      // counter without _total
		{Name: "perfplay_wait", Type: "histogram"},        // histogram without unit
		{Name: "perfplay_depth_total", Type: "gauge"},     // gauge ending _total
		{Name: "perfplay_ok_total", Type: "counter"},      // conforming
		{Name: "perfplay_dur_seconds", Type: "histogram"}, // conforming
	}
	problems := LintFamilies(fams, "perfplay_")
	if len(problems) != 4 {
		t.Fatalf("lint found %d problems, want 4: %v", len(problems), problems)
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("two trace IDs collided")
	}
	if !ValidTraceID(a) {
		t.Fatalf("minted trace ID %q not valid", a)
	}
	if len(NewSpanID()) != 16 {
		t.Fatalf("span ID length = %d", len(NewSpanID()))
	}
	for _, bad := range []string{"", "short", strings.Repeat("a", 65), "UPPERHEX00", "not-hex-zz"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
}

func TestTraceStoreOrderAndBounds(t *testing.T) {
	ts := NewTraceStore(2, 3)
	base := time.Now()
	// Out-of-order insertion sorts by start on read.
	ts.Add("t1", Span{ID: "b", Name: "second", Start: base.Add(time.Second)})
	ts.Add("t1", Span{ID: "a", Name: "first", Start: base})
	spans, dropped, ok := ts.Get("t1")
	if !ok || dropped != 0 || len(spans) != 2 || spans[0].ID != "a" {
		t.Fatalf("Get(t1) = %v, %d, %v", spans, dropped, ok)
	}

	// Per-trace span cap: keep the first maxSpans, count the rest.
	ts.Add("t1", Span{ID: "c", Start: base})
	ts.Add("t1", Span{ID: "d", Start: base})
	spans, dropped, _ = ts.Get("t1")
	if len(spans) != 3 || dropped != 1 {
		t.Fatalf("after overflow: %d spans, %d dropped", len(spans), dropped)
	}

	// Store cap: t1 was just touched, so adding t2 then t3 evicts t2.
	ts.Add("t2", Span{ID: "x", Start: base})
	ts.Get("t1")
	ts.Add("t3", Span{ID: "y", Start: base})
	if _, _, ok := ts.Get("t2"); ok {
		t.Fatal("LRU eviction kept the least-recently-touched trace")
	}
	if _, _, ok := ts.Get("t1"); !ok {
		t.Fatal("LRU eviction removed a recently-touched trace")
	}
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}

	// Empty trace IDs are silently ignored.
	ts.Add("", Span{ID: "z"})
	if ts.Len() != 2 {
		t.Fatal("empty trace ID created an entry")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("perfplay_conc_total", "c")
	h := r.NewHistogram("perfplay_conc_seconds", "h", DurationBuckets)
	ts := NewTraceStore(8, 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
				h.Observe(0.001)
				ts.Add("t", Span{ID: NewSpanID(), Start: time.Now()})
			}
		}(i)
	}
	wg.Wait()
	if got := c.Int(); got != 800 {
		t.Fatalf("concurrent counter = %d, want 800", got)
	}
	if got := h.Count(); got != 800 {
		t.Fatalf("concurrent histogram count = %d, want 800", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("exposition after concurrency: %v", err)
	}
}
