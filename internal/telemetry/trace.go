package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HTTP headers that carry trace context between cluster nodes. Every
// hop perfplayd makes on behalf of a job — steal claim, result settle,
// cache probe, admission redirect, shard fan-out — forwards these so a
// job keeps one identity across the whole cluster.
const (
	// TraceHeader carries the job's trace ID.
	TraceHeader = "X-Perfplay-Trace"
	// SpanHeader carries the caller's span ID, which the receiving
	// node adopts as the parent of the spans it records.
	SpanHeader = "X-Perfplay-Span"
)

// Span is one named, timed event in a job's distributed timeline. The
// Node attribute is what lets a single trace tell a cross-machine
// story: spans recorded by the victim, the thief, and a shard worker
// all land under the same trace ID with different Node values.
type Span struct {
	ID     string            `json:"id"`
	Parent string            `json:"parent,omitempty"`
	Node   string            `json:"node"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// idCounter backs the fallback ID path if crypto/rand ever fails.
var idCounter atomic.Uint64

func randomID(bytes int) string {
	b := make([]byte, bytes)
	if _, err := rand.Read(b); err != nil {
		// Degrade to a process-unique counter rather than panicking in
		// the middle of a job submit; IDs stay unique, just guessable.
		n := idCounter.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * (uint(i) % 8)))
		}
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a 16-byte hex trace ID.
func NewTraceID() string { return randomID(16) }

// NewSpanID mints an 8-byte hex span ID.
func NewSpanID() string { return randomID(8) }

// ValidTraceID reports whether a client-supplied trace ID is safe to
// adopt: lowercase hex, 8–64 chars. Anything else is replaced with a
// minted ID rather than rejected — tracing must never fail a job.
func ValidTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Default TraceStore bounds.
const (
	// DefaultMaxTraces bounds how many distinct traces a node retains.
	DefaultMaxTraces = 1024
	// DefaultMaxSpansPerTrace bounds one trace's timeline; a job that
	// somehow generates more keeps its earliest spans and counts the
	// overflow, so a runaway fan-out can't eat the store.
	DefaultMaxSpansPerTrace = 256
)

// TraceStore is a bounded in-memory map from trace ID to span
// timeline. Whole traces are evicted least-recently-touched first once
// the store is full; within a trace, spans past the per-trace cap are
// dropped (counted, not stored). All methods are safe for concurrent
// use.
type TraceStore struct {
	maxTraces int
	maxSpans  int

	mu     sync.Mutex
	traces map[string]*traceEntry
	clock  uint64 // logical time for LRU ordering
}

type traceEntry struct {
	spans   []Span
	dropped int
	touched uint64
}

// NewTraceStore builds a store; non-positive bounds use the defaults.
func NewTraceStore(maxTraces, maxSpansPerTrace int) *TraceStore {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	return &TraceStore{
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
		traces:    make(map[string]*traceEntry),
	}
}

// Add appends one span to a trace's timeline, creating the trace (and
// evicting the least-recently-touched one if the store is full) as
// needed. Spans with an empty trace ID are dropped silently — a
// non-traced code path is legal, not an error.
func (ts *TraceStore) Add(traceID string, span Span) {
	if traceID == "" {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.clock++
	e, ok := ts.traces[traceID]
	if !ok {
		if len(ts.traces) >= ts.maxTraces {
			ts.evictOldestLocked()
		}
		e = &traceEntry{}
		ts.traces[traceID] = e
	}
	e.touched = ts.clock
	if len(e.spans) >= ts.maxSpans {
		e.dropped++
		return
	}
	e.spans = append(e.spans, span)
}

// evictOldestLocked removes the least-recently-touched trace.
func (ts *TraceStore) evictOldestLocked() {
	var victim string
	var oldest uint64
	first := true
	for id, e := range ts.traces {
		if first || e.touched < oldest {
			victim, oldest, first = id, e.touched, false
		}
	}
	if victim != "" {
		delete(ts.traces, victim)
	}
}

// Get returns a copy of a trace's spans sorted by start time (stable on
// insertion order for equal starts) plus the count of spans dropped to
// the per-trace cap. ok is false for an unknown trace.
func (ts *TraceStore) Get(traceID string) (spans []Span, dropped int, ok bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e, found := ts.traces[traceID]
	if !found {
		return nil, 0, false
	}
	ts.clock++
	e.touched = ts.clock
	spans = append([]Span(nil), e.spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return spans, e.dropped, true
}

// Len reports how many traces the store currently holds.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}
