// Package telemetry is perfplay's dependency-free observability core:
// a Prometheus-compatible metrics registry (counters, gauges and
// fixed-bucket histograms rendered in the text exposition format) and a
// lightweight distributed-tracing substrate (trace IDs minted per job,
// named spans collected into bounded per-job timelines).
//
// The package deliberately imports nothing beyond the standard library
// so every internal package — pipeline, scheduler, corpus — can hang
// instruments on its hot seams without dragging a client library into
// the build. perfplayd owns the one Registry per process, serves it at
// GET /metrics, and re-backs its /healthz counter sections with the
// same instruments so the two surfaces can never drift.
//
// Instruments are cheap: counters and gauges are a single atomic word,
// histogram observations touch one bucket counter plus the sum. None of
// them branch on recorded values, which is what keeps instrumentation
// outside the determinism contract — a traced, metered run produces
// byte-identical reports to a bare one.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind string

// Family kinds, matching the Prometheus # TYPE vocabulary.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// validMetricName is the snake_case shape every registered family must
// have. Prefix and unit-suffix conventions are linted separately (see
// LintFamilies) so the registry itself stays reusable.
var validMetricName = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// validLabelName mirrors the Prometheus label grammar (sans the
// reserved __ prefix, which nothing here needs).
var validLabelName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// DurationBuckets are the default histogram buckets for second-valued
// durations: half a millisecond to a minute, roughly logarithmic —
// wide enough for queue waits and whole-pipeline stages alike.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets are the default histogram buckets for byte sizes: 1 KiB
// to 1 GiB in powers of four.
var SizeBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; construct with
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and one series
// per observed label-value combination.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only; sorted ascending

	fn func() float64 // callback gauges only

	mu     sync.Mutex
	series map[string]*series // key = joined label values
}

// series is one (family, label values) time series. value holds
// math.Float64bits for counters/gauges; histograms use buckets/sum/
// count instead.
type series struct {
	labelValues []string
	value       atomic.Uint64
	buckets     []atomic.Uint64 // one per bucket bound, cumulative at render
	sum         atomic.Uint64   // float64 bits
	count       atomic.Uint64
}

func (s *series) addFloat(dst *atomic.Uint64, v float64) {
	for {
		old := dst.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if dst.CompareAndSwap(old, next) {
			return
		}
	}
}

// register creates (or idempotently returns) a family. Registering the
// same name with a different kind, help or label schema panics —
// a programming error the process must not limp past, since the
// rendered exposition would be ambiguous.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validMetricName.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q (want snake_case)", name))
	}
	for _, l := range labels {
		if !validLabelName.MatchString(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, name))
		}
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DurationBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("telemetry: unsorted buckets on %q", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.help != help || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns (creating on first use) the series for one label-value
// tuple.
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %q wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.kind == KindHistogram {
			s.buckets = make([]atomic.Uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing series.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas panic (counters are
// monotone by contract — a decrease would silently corrupt every rate()
// computed over the series).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decrease")
	}
	c.s.addFloat(&c.s.value, v)
}

// Value reads the current total — the hook that lets /healthz report
// the same numbers /metrics exposes.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.value.Load()) }

// Int reads the current total as an integer (counters here count
// discrete events).
func (c *Counter) Int() int64 { return int64(c.Value()) }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the series for one label-value tuple, creating it on
// first use. Handles are cheap; hot paths may cache them.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.get(labelValues)}
}

// Gauge is a series that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.s.value.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) { g.s.addFloat(&g.s.value, v) }

// Value reads the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.value.Load()) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the series for one label-value tuple.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.get(labelValues)}
}

// Histogram is a fixed-bucket distribution series.
type Histogram struct {
	f *family
	s *series
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, bound := range h.f.buckets {
		if v <= bound {
			h.s.buckets[i].Add(1)
			break
		}
	}
	h.s.count.Add(1)
	h.s.addFloat(&h.s.sum, v)
}

// Count reads how many samples have been observed.
func (h *Histogram) Count() int64 { return int64(h.s.count.Load()) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the series for one label-value tuple.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.get(labelValues)}
}

// NewCounter registers (or returns) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return &Counter{s: f.get(nil)}
}

// NewCounterVec registers (or returns) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// NewGauge registers (or returns) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// NewGaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// NewGaugeFunc registers a callback gauge: fn is evaluated at render
// time, so values like queue depth or corpus bytes are always current
// at the instant of the scrape instead of as of the last update. fn
// must not call back into this registry.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fn = fn
}

// NewHistogram registers (or returns) an unlabeled histogram. A nil
// buckets slice uses DurationBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, buckets)
	return &Histogram{f: f, s: f.get(nil)}
}

// NewHistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, buckets)}
}

// FamilyNames lists every registered family name, sorted — the input
// LintFamilies and the CI metric-name lint consume.
func (r *Registry) FamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FamilyKind reports a registered family's kind.
func (r *Registry) FamilyKind(name string) (Kind, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return "", false
	}
	return f.kind, true
}

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, each preceded by its # HELP and # TYPE
// lines, series sorted by label values, histograms expanded into
// cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	var b strings.Builder
	for _, f := range families {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	fn := f.fn
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	f.mu.Unlock()

	// A labeled family whose series haven't materialized yet (a vec no
	// code path has touched) renders nothing: emitting # HELP/# TYPE
	// with no samples trips strict scrapers and says nothing useful.
	if fn == nil && len(ss) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	if fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(fn()))
		return
	}
	sort.Slice(ss, func(i, j int) bool {
		return strings.Join(ss[i].labelValues, "\x00") < strings.Join(ss[j].labelValues, "\x00")
	})
	for _, s := range ss {
		switch f.kind {
		case KindHistogram:
			cum := uint64(0)
			for i, bound := range f.buckets {
				cum += s.buckets[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelValues, "le", formatValue(bound)), cum)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "le", "+Inf"), s.count.Load())
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, s.labelValues, "", ""), formatValue(math.Float64frombits(s.sum.Load())))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "", ""), s.count.Load())
		default:
			fmt.Fprintf(b, "%s%s %s\n", f.name,
				labelString(f.labels, s.labelValues, "", ""),
				formatValue(math.Float64frombits(s.value.Load())))
		}
	}
}

// labelString renders {k="v",...}, optionally with one extra pair (the
// histogram "le" bound); empty for label-less series.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
