package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// This file is the verification half of the metrics surface: a strict
// parser for the Prometheus text exposition format and a metric-name
// lint. Both are consumed twice — by the repo's own tests (every
// /metrics scrape must parse, with HELP/TYPE discipline and no
// duplicate series) and by cmd/promlint, the CI smoke check that
// scrapes a live daemon.

// ExpositionFamily is one parsed metric family from a text exposition.
type ExpositionFamily struct {
	Name string
	Help string
	Type string
	// Series are the family's sample lines (metric name + label set),
	// in exposition order.
	Series []string
}

// sampleLine tolerates braces and commas inside quoted label values
// (route patterns like "GET /jobs/{id}" are legitimate label values);
// the label block ends only at a close brace outside quotes.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[^{}"]|"(?:\\.|[^"\\])*")*\})?\s+(\S+)(\s+\d+)?$`)

var labelPair = regexp.MustCompile(
	`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)

// ParseExposition parses Prometheus text-format input strictly:
//
//   - every non-blank line is a # HELP, # TYPE or sample line
//   - each family's # HELP and # TYPE precede its samples, in that
//     order, exactly once
//   - a family's samples are contiguous (no interleaving)
//   - sample names match the family (allowing _bucket/_sum/_count for
//     histograms), label sets are well-formed, values parse as floats
//   - no duplicate series (same name and label set)
//
// It returns the parsed families in order plus every violation found
// (not just the first), so a CI failure names all problems at once.
func ParseExposition(r io.Reader) ([]ExpositionFamily, error) {
	var (
		families []ExpositionFamily
		cur      *ExpositionFamily
		closed   = map[string]bool{} // families whose sample block ended
		seen     = map[string]bool{} // full series lines seen (dup check)
		errs     []error
	)
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				fail(n, "malformed HELP line %q", line)
				continue
			}
			if closed[name] {
				fail(n, "family %s re-opened after its samples ended", name)
			}
			if cur != nil {
				closed[cur.Name] = true
			}
			families = append(families, ExpositionFamily{Name: name, Help: rest[len(name)+1:]})
			cur = &families[len(families)-1]
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				fail(n, "malformed TYPE line %q", line)
				continue
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail(n, "unknown metric type %q for %s", typ, name)
			}
			if cur == nil || cur.Name != name {
				fail(n, "TYPE for %s without a preceding HELP", name)
				continue
			}
			if cur.Type != "" {
				fail(n, "duplicate TYPE for %s", name)
				continue
			}
			if len(cur.Series) > 0 {
				fail(n, "TYPE for %s after its samples", name)
			}
			cur.Type = typ
		case strings.HasPrefix(line, "#"):
			fail(n, "unexpected comment %q (only # HELP and # TYPE allowed)", line)
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				fail(n, "unparsable sample line %q", line)
				continue
			}
			name, labels, value := m[1], m[2], m[3]
			if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
				fail(n, "sample value %q does not parse as a float", value)
			}
			if labels != "" {
				for _, pair := range splitLabels(labels[1 : len(labels)-1]) {
					if !labelPair.MatchString(pair) {
						fail(n, "malformed label pair %q", pair)
					}
				}
			}
			if cur == nil {
				fail(n, "sample %s before any HELP/TYPE", name)
				continue
			}
			if !sampleBelongsTo(name, cur.Name, cur.Type) {
				fail(n, "sample %s interleaved into family %s", name, cur.Name)
				continue
			}
			if cur.Type == "" {
				fail(n, "sample %s before its family's TYPE", name)
			}
			key := name + labels
			if seen[key] {
				fail(n, "duplicate series %s", key)
			}
			seen[key] = true
			cur.Series = append(cur.Series, key)
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err)
	}
	if cur != nil {
		closed[cur.Name] = true
	}
	for i := range families {
		if families[i].Type == "" {
			errs = append(errs, fmt.Errorf("family %s has HELP but no TYPE", families[i].Name))
		}
		if len(families[i].Series) == 0 {
			errs = append(errs, fmt.Errorf("family %s has no samples", families[i].Name))
		}
	}
	return families, errors.Join(errs...)
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var out []string
	var b strings.Builder
	inQuotes, escaped := false, false
	for _, r := range body {
		switch {
		case escaped:
			escaped = false
			b.WriteRune(r)
		case r == '\\' && inQuotes:
			escaped = true
			b.WriteRune(r)
		case r == '"':
			inQuotes = !inQuotes
			b.WriteRune(r)
		case r == ',' && !inQuotes:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteRune(r)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}

// sampleBelongsTo reports whether a sample name is legal inside the
// named family: an exact match, or the histogram/summary expansion
// suffixes.
func sampleBelongsTo(sample, fam, typ string) bool {
	if sample == fam {
		return true
	}
	if typ == "histogram" || typ == "summary" {
		return sample == fam+"_bucket" || sample == fam+"_sum" ||
			sample == fam+"_count" || (typ == "summary" && sample == fam)
	}
	return false
}

// LintFamilies enforces the repo's metric-name conventions over parsed
// families:
//
//   - every name carries the given prefix (e.g. "perfplay_")
//   - names are snake_case: lowercase, no leading/trailing/double
//     underscores
//   - counters end in _total; nothing else does
//   - histograms end in a base unit suffix (_seconds or _bytes)
//   - gauges carry a unit suffix where one applies (_bytes, _seconds,
//     _ratio) or a bare count noun; they must not end in _total
//
// It returns one message per violation, empty when everything passes.
func LintFamilies(families []ExpositionFamily, prefix string) []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	for _, f := range families {
		name := f.Name
		if prefix != "" && !strings.HasPrefix(name, prefix) {
			bad("%s: missing the %q prefix", name, prefix)
		}
		if !validMetricName.MatchString(name) {
			bad("%s: not snake_case", name)
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				bad("%s: counters must end in _total", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				bad("%s: histograms must end in a unit suffix (_seconds or _bytes)", name)
			}
		default:
			if strings.HasSuffix(name, "_total") {
				bad("%s: only counters may end in _total", name)
			}
		}
	}
	return problems
}
