// Package race implements a happens-before data-race detector over
// (possibly transformed) traces.
//
// Theorem 1 guarantees that a transformed ULCP-free trace either preserves
// the original program semantics or surfaces interleaving-sensitive data
// races between the segments the transformation made concurrent. This
// detector is how PerfPlay surfaces them: it linearizes a replay of the
// transformed trace and runs a DJIT+-style vector-clock analysis whose
// synchronization edges are original locks, auxiliary lockset members, and
// the transformation's explicit happens-before constraints.
package race

import (
	"fmt"
	"sort"

	"perfplay/internal/memmodel"
	"perfplay/internal/trace"
	"perfplay/internal/vclock"
	"perfplay/internal/vtime"
)

// Race is one detected conflict: two accesses to the same address, at
// least one a write, unordered by happens-before.
type Race struct {
	Addr     memmodel.Addr
	AddrName string
	// First and Second are the global event indices of the two accesses
	// in linearized order.
	First, Second int32
	Threads       [2]int32
	Sites         [2]trace.Site
	// WriteWrite distinguishes write/write from read/write races.
	WriteWrite bool
}

// String renders a one-line report.
func (r Race) String() string {
	kind := "read/write"
	if r.WriteWrite {
		kind = "write/write"
	}
	name := r.AddrName
	if name == "" {
		name = fmt.Sprintf("addr#%d", r.Addr)
	}
	return fmt.Sprintf("%s race on %s: T%d@%s vs T%d@%s",
		kind, name, r.Threads[0], r.Sites[0], r.Threads[1], r.Sites[1])
}

// epoch records the per-thread clock of the last access of each kind.
type accessState struct {
	readVC  vclock.VC // last read clock per thread
	writeVC vclock.VC // last write clock per thread
	lastRd  []int32   // event index of each thread's last read
	lastWr  []int32   // event index of each thread's last write
}

// Detect runs the analysis over the events of tr in the given
// linearization (event indices in execution order, e.g. sorted by a
// replay's start times). A nil order uses trace order. At most limit races
// are returned (0 means no limit); duplicates per (address, site pair) are
// suppressed.
func Detect(tr *trace.Trace, order []int32, limit int) []Race {
	n := tr.NumThreads
	if order == nil {
		order = make([]int32, len(tr.Events))
		for i := range order {
			order[i] = int32(i)
		}
	}

	threadVC := make([]vclock.VC, n)
	for i := range threadVC {
		threadVC[i] = vclock.New(n)
		threadVC[i].Tick(int32(i))
	}
	lockVC := make(map[trace.LockID]vclock.VC)
	// Completion clocks of constraint sources, captured when executed.
	consSrc := make(map[int32]vclock.VC)
	wanted := make(map[int32]bool)
	prereq := make(map[int32][]int32)
	for _, c := range tr.Constraints {
		wanted[c.After] = true
		prereq[c.Before] = append(prereq[c.Before], c.After)
	}

	// Barrier episodes: member event indices per (barrier, generation),
	// and arrivals seen so far. When the last member is processed, every
	// participant's clock joins the episode-wide maximum: all post-barrier
	// code happens after all pre-barrier code.
	type barKey struct {
		bar trace.LockID
		gen int64
	}
	barGroups := make(map[barKey]int)
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.KBarrier {
			barGroups[barKey{tr.Events[i].Lock, tr.Events[i].Value}]++
		}
	}
	barMembers := make(map[barKey][]int32)

	mem := make(map[memmodel.Addr]*accessState)
	state := func(a memmodel.Addr) *accessState {
		st, ok := mem[a]
		if !ok {
			st = &accessState{
				readVC: vclock.New(n), writeVC: vclock.New(n),
				lastRd: make([]int32, n), lastWr: make([]int32, n),
			}
			for i := range st.lastRd {
				st.lastRd[i], st.lastWr[i] = -1, -1
			}
			mem[a] = st
		}
		return st
	}

	var races []Race
	seen := make(map[string]bool)
	report := func(addr memmodel.Addr, first, second int32, ww bool) {
		e1, e2 := &tr.Events[first], &tr.Events[second]
		r := Race{
			Addr: addr, AddrName: tr.MemNames[addr],
			First: first, Second: second,
			Threads:    [2]int32{e1.Thread, e2.Thread},
			WriteWrite: ww,
		}
		if tr.Sites != nil {
			r.Sites[0] = tr.Sites.At(e1.Site)
			r.Sites[1] = tr.Sites.At(e2.Site)
		}
		key := fmt.Sprintf("%d/%d/%d/%v", addr, e1.Site, e2.Site, ww)
		if seen[key] {
			return
		}
		seen[key] = true
		races = append(races, r)
	}

	for _, idx := range order {
		e := &tr.Events[idx]
		t := e.Thread
		vc := threadVC[t]
		// Constraint edges join the source's completion clock.
		for _, p := range prereq[idx] {
			if src, ok := consSrc[p]; ok {
				vc.Join(src)
			}
		}
		switch e.Kind {
		case trace.KLockAcq:
			if lv, ok := lockVC[e.Lock]; ok {
				vc.Join(lv)
			}
		case trace.KLockRel:
			lockVC[e.Lock] = vc.Copy()
			vc.Tick(t)
		case trace.KLocksetAcq:
			for _, l := range e.Locks {
				if lv, ok := lockVC[l]; ok {
					vc.Join(lv)
				}
			}
		case trace.KLocksetRel:
			for _, l := range e.Locks {
				lockVC[l] = vc.Copy()
			}
			vc.Tick(t)
		case trace.KBarrier:
			k := barKey{e.Lock, e.Value}
			barMembers[k] = append(barMembers[k], t)
			if len(barMembers[k]) == barGroups[k] {
				joined := vclock.New(n)
				for _, m := range barMembers[k] {
					joined.Join(threadVC[m])
				}
				for _, m := range barMembers[k] {
					threadVC[m].Join(joined)
					threadVC[m].Tick(m)
				}
				delete(barMembers, k)
			}
		case trace.KRead:
			st := state(e.Addr)
			for o := int32(0); o < int32(n); o++ {
				if o != t && st.writeVC.At(o) > vc.At(o) {
					report(e.Addr, st.lastWr[o], idx, false)
				}
			}
			st.readVC[t] = vc.At(t)
			st.lastRd[t] = idx
		case trace.KWrite:
			st := state(e.Addr)
			for o := int32(0); o < int32(n); o++ {
				if o == t {
					continue
				}
				if st.writeVC.At(o) > vc.At(o) {
					report(e.Addr, st.lastWr[o], idx, true)
				}
				if st.readVC.At(o) > vc.At(o) {
					report(e.Addr, st.lastRd[o], idx, false)
				}
			}
			st.writeVC[t] = vc.At(t)
			st.lastWr[t] = idx
		}
		if wanted[idx] {
			consSrc[idx] = vc.Copy()
			vc.Tick(t)
		}
		if limit > 0 && len(races) >= limit {
			break
		}
	}
	sort.Slice(races, func(i, j int) bool {
		if races[i].Addr != races[j].Addr {
			return races[i].Addr < races[j].Addr
		}
		return races[i].First < races[j].First
	})
	return races
}

// OrderByStart builds a linearization of the trace's events from per-event
// start times (as produced by a replay), breaking ties by event index.
func OrderByStart(starts []vtime.Time) []int32 {
	order := make([]int32, len(starts))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return starts[order[a]] < starts[order[b]]
	})
	return order
}
