package race

import (
	"testing"

	"perfplay/internal/trace"
	"perfplay/internal/vtime"
)

func TestDetectUnsyncedWriteWrite(t *testing.T) {
	tr := trace.New("r", 2)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 1, Value: 5})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 1, Value: 6})
	races := Detect(tr, nil, 0)
	if len(races) != 1 {
		t.Fatalf("races = %d, want 1", len(races))
	}
	if !races[0].WriteWrite {
		t.Error("race should be write/write")
	}
}

func TestDetectReadWrite(t *testing.T) {
	tr := trace.New("r", 2)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 1, Value: 5})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KRead, Addr: 1})
	races := Detect(tr, nil, 0)
	if len(races) != 1 {
		t.Fatalf("races = %d, want 1", len(races))
	}
	if races[0].WriteWrite {
		t.Error("race should be read/write")
	}
}

func TestLockOrderingSuppressesRace(t *testing.T) {
	tr := trace.New("r", 2)
	l := trace.LockID(1)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLockAcq, Lock: l})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 1, Value: 5})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLockRel, Lock: l})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLockAcq, Lock: l})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 1, Value: 6})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLockRel, Lock: l})
	if races := Detect(tr, nil, 0); len(races) != 0 {
		t.Fatalf("locked accesses raced: %v", races)
	}
}

func TestDifferentLocksDoNotOrder(t *testing.T) {
	tr := trace.New("r", 2)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLockAcq, Lock: 1})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 9, Value: 5})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLockRel, Lock: 1})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLockAcq, Lock: 2})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 9, Value: 6})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLockRel, Lock: 2})
	if races := Detect(tr, nil, 0); len(races) != 1 {
		t.Fatalf("races = %d, want 1 (different locks give no ordering)", len(races))
	}
}

func TestLocksetOrderingSuppressesRace(t *testing.T) {
	aux := trace.AuxLockBase + 1
	tr := trace.New("r", 2)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux}})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 3, Value: 5})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux}})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLocksetAcq, Locks: []trace.LockID{aux}})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 3, Value: 6})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KLocksetRel, Locks: []trace.LockID{aux}})
	if races := Detect(tr, nil, 0); len(races) != 0 {
		t.Fatalf("lockset-protected accesses raced: %v", races)
	}
}

func TestConstraintOrderingSuppressesRace(t *testing.T) {
	tr := trace.New("r", 2)
	w0 := tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 4, Value: 5})
	w1 := tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 4, Value: 6})
	tr.Constraints = []trace.Constraint{{After: w0, Before: w1}}
	if races := Detect(tr, nil, 0); len(races) != 0 {
		t.Fatalf("constraint-ordered accesses raced: %v", races)
	}
}

func TestBarrierOrderingSuppressesRace(t *testing.T) {
	tr := trace.New("r", 2)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 5, Value: 1})
	tr.Append(trace.Event{Thread: 0, Kind: trace.KBarrier, Lock: 1, Value: 0})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KBarrier, Lock: 1, Value: 0})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 5, Value: 2})
	if races := Detect(tr, nil, 0); len(races) != 0 {
		t.Fatalf("barrier-separated accesses raced: %v", races)
	}
}

func TestRaceWithoutBarrierDetected(t *testing.T) {
	// Same as above without the barrier: must race.
	tr := trace.New("r", 2)
	tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 5, Value: 1})
	tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 5, Value: 2})
	if races := Detect(tr, nil, 0); len(races) != 1 {
		t.Fatal("unsynchronized writes must race")
	}
}

func TestLimitAndDedup(t *testing.T) {
	tr := trace.New("r", 2)
	site := tr.Sites.Intern(trace.Site{File: "x.c", Line: 1})
	for i := 0; i < 5; i++ {
		tr.Append(trace.Event{Thread: 0, Kind: trace.KWrite, Addr: 7, Value: int64(i), Site: site})
		tr.Append(trace.Event{Thread: 1, Kind: trace.KWrite, Addr: 7, Value: int64(i + 10), Site: site})
	}
	// All conflicts share (addr, site pair): deduplicated to one report.
	races := Detect(tr, nil, 0)
	if len(races) != 1 {
		t.Fatalf("races = %d, want 1 after dedup", len(races))
	}
	if got := races[0].String(); got == "" {
		t.Error("empty race string")
	}
}

func TestOrderByStart(t *testing.T) {
	starts := []vtime.Time{30, 10, 20, 10}
	order := OrderByStart(starts)
	want := []int32{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
