// Package topo builds and analyzes the causal-order topology of Sec. 3:
// nodes are critical sections, causal edges are the RULE-1 first-matched
// true-contention dependencies, and RULE 2 derives the per-lock partial
// order that must survive into the ULCP-free trace.
package topo

import (
	"fmt"
	"sort"

	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

// Graph is the causal-order topology over critical sections. Node IDs are
// CritSec.ID values.
type Graph struct {
	css   []*trace.CritSec
	out   map[int][]int
	in    map[int][]int
	edges []ulcp.Edge
}

// Build constructs the ULCP-free topology from the identification report's
// causal edges (RULE 1 already filtered out non-causal ULCP relations).
func Build(css []*trace.CritSec, edges []ulcp.Edge) *Graph {
	g := &Graph{
		css: css,
		out: make(map[int][]int),
		in:  make(map[int][]int),
	}
	seen := make(map[ulcp.Edge]bool, len(edges))
	for _, e := range edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		g.edges = append(g.edges, e)
		g.out[e.From] = append(g.out[e.From], e.To)
		g.in[e.To] = append(g.in[e.To], e.From)
	}
	return g
}

// NumNodes returns the node count (all critical sections).
func (g *Graph) NumNodes() int { return len(g.css) }

// NumEdges returns the causal-edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the deduplicated causal edges.
func (g *Graph) Edges() []ulcp.Edge { return g.edges }

// OutDeg returns the out-degree of a node.
func (g *Graph) OutDeg(id int) int { return len(g.out[id]) }

// InDeg returns the in-degree of a node.
func (g *Graph) InDeg(id int) int { return len(g.in[id]) }

// Sources returns the causal predecessors of a node.
func (g *Graph) Sources(id int) []int { return g.in[id] }

// Targets returns the causal successors of a node.
func (g *Graph) Targets(id int) []int { return g.out[id] }

// Standalone reports whether the node participates in no causal edge;
// PerfPlay removes the lock operations of such nodes entirely (Sec. 3.2).
func (g *Graph) Standalone(id int) bool {
	return len(g.out[id]) == 0 && len(g.in[id]) == 0
}

// CausalNodes returns the IDs of nodes with at least one causal edge, in
// ascending order.
func (g *Graph) CausalNodes() []int {
	set := make(map[int]struct{})
	for _, e := range g.edges {
		set[e.From] = struct{}{}
		set[e.To] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// TopoSort returns the nodes in a topological order of the causal edges,
// or an error if the edges contain a cycle (which would indicate a RULE-1
// construction bug, since causal edges always point forward in the
// original acquisition order).
func (g *Graph) TopoSort() ([]int, error) {
	indeg := make(map[int]int, len(g.css))
	for _, cs := range g.css {
		indeg[cs.ID] = 0
	}
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var queue []int
	for _, cs := range g.css {
		if indeg[cs.ID] == 0 {
			queue = append(queue, cs.ID)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range g.out[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(g.css) {
		return nil, fmt.Errorf("topo: causal graph has a cycle (%d of %d nodes ordered)", len(order), len(g.css))
	}
	return order, nil
}

// Rule2Chains computes, for every original lock, the causal nodes of that
// lock in the original acquisition order. RULE 2 requires the transformed
// trace to preserve exactly this partial order, which the transformation
// realizes as happens-before constraints between consecutive chain
// elements.
func (g *Graph) Rule2Chains() map[trace.LockID][]*trace.CritSec {
	causal := make(map[int]bool)
	for _, e := range g.edges {
		causal[e.From] = true
		causal[e.To] = true
	}
	chains := make(map[trace.LockID][]*trace.CritSec)
	for _, cs := range g.css {
		if causal[cs.ID] {
			chains[cs.Lock] = append(chains[cs.Lock], cs)
		}
	}
	for _, chain := range chains {
		sort.Slice(chain, func(i, j int) bool { return chain[i].SeqInLock < chain[j].SeqInLock })
	}
	return chains
}

// CS returns the critical section with the given node ID. Extraction
// assigns IDs densely in order, so this is a direct index.
func (g *Graph) CS(id int) *trace.CritSec {
	if id < 0 || id >= len(g.css) {
		return nil
	}
	return g.css[id]
}
