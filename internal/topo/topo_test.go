package topo

import (
	"testing"

	"perfplay/internal/trace"
	"perfplay/internal/ulcp"
)

// mkCS builds a minimal critical section for graph tests.
func mkCS(id int, thread int32, lock trace.LockID, seq int) *trace.CritSec {
	return &trace.CritSec{ID: id, Thread: thread, Lock: lock, SeqInLock: seq,
		AcqEv: int32(id * 2), RelEv: int32(id*2 + 1)}
}

// fig7 builds the paper's Fig. 7 example: R1(T1), R2(T2), W1(T2),
// W1st(T3), W2nd(T3), R2(T1) with causal edges
// R1→W1(T2), R1→W1st(T3), W1st→W1(T2), W1(T2)→W2nd.
func fig7() ([]*trace.CritSec, []ulcp.Edge) {
	l := trace.LockID(1)
	css := []*trace.CritSec{
		mkCS(0, 0, l, 0), // R1 in T1
		mkCS(1, 2, l, 1), // W1st in T3
		mkCS(2, 1, l, 2), // W1 in T2
		mkCS(3, 2, l, 3), // W2nd in T3
		mkCS(4, 1, l, 4), // R2 in T2 (standalone)
		mkCS(5, 0, l, 5), // R2 in T1 (standalone)
	}
	edges := []ulcp.Edge{
		{From: 0, To: 2}, {From: 0, To: 1},
		{From: 1, To: 2}, {From: 2, To: 3},
	}
	return css, edges
}

func TestBuildFig7(t *testing.T) {
	css, edges := fig7()
	g := Build(css, edges)
	if g.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	// R1 has outdegree 2 (RULE 3 gives it an auxiliary lock).
	if g.OutDeg(0) != 2 {
		t.Errorf("outdeg(R1) = %d, want 2", g.OutDeg(0))
	}
	// W1 in T2 has indegree 2 (from R1 and W1st).
	if g.InDeg(2) != 2 {
		t.Errorf("indeg(W1-T2) = %d, want 2", g.InDeg(2))
	}
	// The two R2 nodes are standalone — their locks get removed.
	if !g.Standalone(4) || !g.Standalone(5) {
		t.Error("R2 nodes must be standalone")
	}
	if g.Standalone(0) {
		t.Error("R1 is causal, not standalone")
	}
	causal := g.CausalNodes()
	if len(causal) != 4 {
		t.Fatalf("causal nodes = %v, want 4 entries", causal)
	}
}

func TestBuildDeduplicatesEdges(t *testing.T) {
	css, _ := fig7()
	g := Build(css, []ulcp.Edge{{From: 0, To: 2}, {From: 0, To: 2}})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 after dedup", g.NumEdges())
	}
}

func TestTopoSortAcyclic(t *testing.T) {
	css, edges := fig7()
	g := Build(css, edges)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violated by topo order", e)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	css, _ := fig7()
	g := Build(css, []ulcp.Edge{{From: 0, To: 2}, {From: 2, To: 0}})
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestRule2ChainsOrderedBySeq(t *testing.T) {
	css, edges := fig7()
	g := Build(css, edges)
	chains := g.Rule2Chains()
	chain := chains[trace.LockID(1)]
	if len(chain) != 4 {
		t.Fatalf("chain length = %d, want 4 causal nodes", len(chain))
	}
	// The paper's partial order: R1 ≺ W1st(T3) ≺ W1(T2) ≺ W2nd(T3).
	want := []int{0, 1, 2, 3}
	for i, cs := range chain {
		if cs.ID != want[i] {
			t.Fatalf("chain[%d] = CS %d, want %d", i, cs.ID, want[i])
		}
	}
}

func TestSourcesAndTargets(t *testing.T) {
	css, edges := fig7()
	g := Build(css, edges)
	if srcs := g.Sources(2); len(srcs) != 2 {
		t.Errorf("sources(W1-T2) = %v, want 2", srcs)
	}
	if tgts := g.Targets(0); len(tgts) != 2 {
		t.Errorf("targets(R1) = %v, want 2", tgts)
	}
	if g.CS(3) == nil || g.CS(3).ID != 3 {
		t.Error("CS lookup broken")
	}
	if g.CS(99) != nil {
		t.Error("out-of-range CS lookup should be nil")
	}
}
