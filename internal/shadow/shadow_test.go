package shadow

import (
	"testing"
	"testing/quick"

	"perfplay/internal/memmodel"
)

func TestSetBasics(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4)
	c := NewSet(5)
	if Empty(a) || !Empty(NewSet()) {
		t.Fatal("Empty broken")
	}
	if !Intersects(a, b) || Intersects(a, c) || Intersects(c, b) {
		t.Fatal("Intersects broken")
	}
	if got := Intersection(a, b); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Intersection = %v", got)
	}
	if got := Union(a, c); len(got) != 4 {
		t.Fatalf("Union = %v", got)
	}
	if got := Keys(a); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Keys = %v, want sorted 1..3", got)
	}
}

// Intersects is symmetric and consistent with Intersection.
func TestIntersectsQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := make(Set), make(Set)
		for _, x := range xs {
			a[memmodel.Addr(x%32)] = struct{}{}
		}
		for _, y := range ys {
			b[memmodel.Addr(y%32)] = struct{}{}
		}
		got := Intersects(a, b)
		return got == Intersects(b, a) && got == (len(Intersection(a, b)) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Union and Intersection return sorted, duplicate-free results.
func TestSortedOutputsQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := make(Set), make(Set)
		for _, x := range xs {
			a[memmodel.Addr(x)] = struct{}{}
		}
		for _, y := range ys {
			b[memmodel.Addr(y)] = struct{}{}
		}
		for _, out := range [][]memmodel.Addr{Union(a, b), Intersection(a, b), Keys(a)} {
			for i := 1; i < len(out); i++ {
				if out[i-1] >= out[i] {
					return false
				}
			}
		}
		return len(Union(a, b)) >= len(a) && len(Union(a, b)) >= len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
