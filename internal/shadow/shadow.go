// Package shadow provides the shadow-memory set algebra used by ULCP
// identification (Sec. 3.1): every critical section C carries two sets —
// C.Srd (shared reads) and C.Swr (shared writes) — and Algorithm 1
// classifies pairs by intersecting them.
package shadow

import (
	"sort"

	"perfplay/internal/memmodel"
)

// Set is a set of shared addresses.
type Set map[memmodel.Addr]struct{}

// NewSet builds a set from addresses.
func NewSet(addrs ...memmodel.Addr) Set {
	s := make(Set, len(addrs))
	for _, a := range addrs {
		s[a] = struct{}{}
	}
	return s
}

// Empty reports whether the set has no elements.
func Empty(s Set) bool { return len(s) == 0 }

// Intersects reports whether a ∩ b ≠ ∅. It iterates the smaller set.
func Intersects(a, b Set) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for x := range a {
		if _, ok := b[x]; ok {
			return true
		}
	}
	return false
}

// Intersection returns a ∩ b in ascending address order.
func Intersection(a, b Set) []memmodel.Addr {
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []memmodel.Addr
	for x := range a {
		if _, ok := b[x]; ok {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Union returns a ∪ b in ascending address order.
func Union(a, b Set) []memmodel.Addr {
	seen := make(Set, len(a)+len(b))
	for x := range a {
		seen[x] = struct{}{}
	}
	for x := range b {
		seen[x] = struct{}{}
	}
	out := make([]memmodel.Addr, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Keys returns the set's addresses in ascending order.
func Keys(s Set) []memmodel.Addr {
	out := make([]memmodel.Addr, 0, len(s))
	for x := range s {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
