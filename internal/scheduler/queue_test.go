package scheduler

import (
	"sync"
	"testing"
	"time"
)

func stealableJob(id string) *Job {
	return &Job{ID: id, Spec: Spec{App: "mysql", Threads: 4, Seed: 7}}
}

func localJob(id string) *Job { return &Job{ID: id} }

// fakeClock is an injectable clock for lease-expiry tests: leases
// expire by Advance, not by sleeping, so the tests are instant and
// cannot flake under -race scheduling jitter.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

func TestQueueFIFOAndBound(t *testing.T) {
	q := NewQueue(2)
	if !q.Push(stealableJob("a")) || !q.Push(stealableJob("b")) {
		t.Fatal("push within capacity failed")
	}
	if q.Push(stealableJob("c")) {
		t.Fatal("push beyond capacity admitted")
	}
	if q.Len() != 2 || q.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", q.Len(), q.Cap())
	}
	j, ok := q.Pop()
	if !ok || j.ID != "a" {
		t.Fatalf("pop = %v, want a", j)
	}
	if j, _ := q.Pop(); j.ID != "b" {
		t.Fatalf("pop = %v, want b", j)
	}
}

func TestQueueClaimTakesNewestStealable(t *testing.T) {
	q := NewQueue(8)
	q.Push(stealableJob("old"))
	q.Push(stealableJob("new"))
	q.Push(localJob("upload")) // newest, but not stealable

	j, deadline, ok := q.Claim("http://thief", time.Minute)
	if !ok || j.ID != "new" {
		t.Fatalf("claim = %v, want the newest stealable job", j)
	}
	if time.Until(deadline) <= 0 {
		t.Fatal("lease deadline not in the future")
	}
	if thief, ok := q.Claimant("new"); !ok || thief != "http://thief" {
		t.Fatalf("claimant = %q, %t", thief, ok)
	}
	if q.Len() != 2 || q.Stealable() != 1 || q.ClaimedCount() != 1 {
		t.Fatalf("len=%d stealable=%d claimed=%d", q.Len(), q.Stealable(), q.ClaimedCount())
	}

	// The remaining stealable job goes next; then nothing is left even
	// though the unstealable upload job still waits for a local worker.
	if j, _, ok := q.Claim("t2", time.Minute); !ok || j.ID != "old" {
		t.Fatalf("second claim = %v", j)
	}
	if _, _, ok := q.Claim("t3", time.Minute); ok {
		t.Fatal("claimed an unstealable job")
	}
	if j, _ := q.Pop(); j.ID != "upload" {
		t.Fatalf("pop = %v, want the upload job", j)
	}
}

func TestQueueCompleteSettlesOnce(t *testing.T) {
	q := NewQueue(4)
	q.Push(stealableJob("a"))
	q.Claim("thief", time.Minute)
	if j, ok := q.Complete("a"); !ok || j.ID != "a" {
		t.Fatalf("complete = %v, %t", j, ok)
	}
	if _, ok := q.Complete("a"); ok {
		t.Fatal("double completion accepted")
	}
	if _, ok := q.Complete("never-claimed"); ok {
		t.Fatal("completing an unclaimed job accepted")
	}
}

func TestQueueExpiredClaimRequeuesAtFront(t *testing.T) {
	clock := newFakeClock()
	q := NewQueue(4)
	q.Now = clock.Now
	q.Push(stealableJob("stolen"))
	q.Push(stealableJob("waiting"))
	if _, _, ok := q.Claim("thief", time.Minute); !ok {
		t.Fatal("claim failed")
	}
	if exp := q.TakeExpired(clock.Now()); len(exp) != 0 {
		t.Fatalf("expired %d claims before the lease passed", len(exp))
	}
	exp := q.TakeExpired(clock.Advance(2 * time.Minute))
	if len(exp) != 1 || exp[0].ID != "waiting" {
		t.Fatalf("expired = %v, want the claimed job", exp)
	}
	// Between TakeExpired and Requeue the job is in limbo: not
	// claimable, not poppable — the owner's window to reset its state.
	if _, ok := q.Complete("waiting"); ok {
		t.Fatal("taken claim still completable")
	}
	if _, _, ok := q.Claim("t2", time.Minute); !ok {
		t.Fatal("claim should find the other job")
	}
	q.Requeue(exp)
	// Claim took the newest ("waiting"); after expiry it must come back
	// at the FRONT — it already waited once.
	if j, _ := q.Pop(); j.ID != "waiting" {
		t.Fatalf("pop after requeue = %v, want the requeued job first", j)
	}
	// A late Complete for the expired claim must be rejected: the job
	// re-ran (or will re-run) locally.
	if _, ok := q.Complete("waiting"); ok {
		t.Fatal("late completion of an expired claim accepted")
	}
}

// TestQueueTakeExpiredOldestFirst: multiple expiries in one sweep come
// back oldest deadline first, so the longest-abandoned job re-runs
// soonest.
func TestQueueTakeExpiredOldestFirst(t *testing.T) {
	clock := newFakeClock()
	q := NewQueue(8)
	q.Now = clock.Now
	q.Push(stealableJob("a"))
	q.Push(stealableJob("b"))
	q.Push(stealableJob("c"))
	q.Claim("t1", 30*time.Minute) // takes c, latest deadline... claimed first
	q.Claim("t2", 10*time.Minute) // takes b
	q.Claim("t3", 20*time.Minute) // takes a
	exp := q.TakeExpired(clock.Advance(time.Hour))
	if len(exp) != 3 {
		t.Fatalf("expired %d, want 3", len(exp))
	}
	if exp[0].ID != "b" || exp[1].ID != "a" || exp[2].ID != "c" {
		t.Fatalf("expiry order = %s,%s,%s; want oldest deadline first (b,a,c)",
			exp[0].ID, exp[1].ID, exp[2].ID)
	}
}

// TestQueueRequeueOverridesCapacity: a full queue still re-admits its
// own expired claims — dropping them would turn a thief crash into job
// loss.
func TestQueueRequeueOverridesCapacity(t *testing.T) {
	clock := newFakeClock()
	q := NewQueue(1)
	q.Now = clock.Now
	q.Push(stealableJob("a"))
	q.Claim("thief", time.Minute)
	q.Push(stealableJob("b")) // fills the queue again
	exp := q.TakeExpired(clock.Advance(2 * time.Minute))
	if len(exp) != 1 {
		t.Fatalf("expired %d, want 1", len(exp))
	}
	if dropped := q.Requeue(exp); len(dropped) != 0 {
		t.Fatalf("requeue dropped %d jobs on an open queue", len(dropped))
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2 (requeue bypasses the admission cap)", q.Len())
	}
}

// TestQueueRequeueAfterCloseReportsDropped: the old behavior silently
// resurrected expired-lease jobs into a closed queue no worker would
// ever drain; now the caller is told exactly which jobs were dropped.
func TestQueueRequeueAfterCloseReportsDropped(t *testing.T) {
	clock := newFakeClock()
	q := NewQueue(4)
	q.Now = clock.Now
	q.Push(stealableJob("a"))
	q.Push(stealableJob("b"))
	q.Claim("t1", time.Minute)
	q.Claim("t2", time.Minute)
	exp := q.TakeExpired(clock.Advance(2 * time.Minute))
	if len(exp) != 2 {
		t.Fatalf("expired %d, want 2", len(exp))
	}
	q.Close()
	dropped := q.Requeue(exp)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want both jobs reported", len(dropped))
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d: dropped jobs re-entered the closed queue", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("a worker popped from the closed queue after the dead requeue")
	}
}

// recordingLog captures queue transitions for assertion.
type recordingLog struct {
	mu      sync.Mutex
	entries []string
}

func (l *recordingLog) Transition(op string, j *Job, thief string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := op + ":" + j.ID
	if thief != "" {
		e += "@" + thief
	}
	l.entries = append(l.entries, e)
}

// TestQueueTransitionLog: every state change reaches the journal hook,
// in queue order, including the abandoned path on a closed queue.
func TestQueueTransitionLog(t *testing.T) {
	clock := newFakeClock()
	log := &recordingLog{}
	q := NewQueue(2)
	q.Now = clock.Now
	q.Journal = log

	q.Push(stealableJob("a"))
	q.Push(stealableJob("b"))
	q.Push(stealableJob("rejected")) // over capacity: no transition
	q.Claim("thief", time.Minute)    // takes b (newest)
	q.Complete("b")
	q.Claim("thief2", time.Minute) // takes a
	exp := q.TakeExpired(clock.Advance(2 * time.Minute))
	q.Requeue(exp) // a back at the front
	q.Close()
	q.Requeue([]*Job{stealableJob("late")}) // abandoned

	want := []string{
		"admitted:a",
		"admitted:b",
		"claimed:b@thief",
		"settled:b@thief",
		"claimed:a@thief2",
		"requeued:a",
		"abandoned:late",
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.entries) != len(want) {
		t.Fatalf("transitions = %v, want %v", log.entries, want)
	}
	for i := range want {
		if log.entries[i] != want[i] {
			t.Errorf("transition[%d] = %q, want %q", i, log.entries[i], want[i])
		}
	}
}

func TestQueuePopBlocksUntilPushOrClose(t *testing.T) {
	q := NewQueue(4)
	got := make(chan *Job, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		j, ok := q.Pop()
		if !ok {
			t.Error("pop returned !ok with a job pending")
		}
		got <- j
	}()
	time.Sleep(10 * time.Millisecond) // let the popper block
	q.Push(stealableJob("a"))
	select {
	case j := <-got:
		if j.ID != "a" {
			t.Fatalf("pop = %v", j)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never woke")
	}
	wg.Wait()

	// Close wakes blocked poppers with ok=false once drained.
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned ok after close on an empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close never woke the popper")
	}
	if q.Push(stealableJob("x")) {
		t.Fatal("push after close admitted")
	}
	if _, _, ok := q.Claim("t", time.Minute); ok {
		t.Fatal("claim after close succeeded")
	}
}

// TestQueueDrainsAfterClose: jobs queued before Close still pop.
func TestQueueDrainsAfterClose(t *testing.T) {
	q := NewQueue(4)
	q.Push(stealableJob("a"))
	q.Close()
	if j, ok := q.Pop(); !ok || j.ID != "a" {
		t.Fatalf("pop after close = %v, %t", j, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on closed empty queue returned ok")
	}
}
