package scheduler

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"perfplay/internal/clusterapi"
)

// ErrLeaseExpired is returned by Transport.Settle when the victim
// answered that the job is no longer on lease — the lease expired and
// the job was re-enqueued there, so the caller's result is stale and
// must be discarded (determinism makes that safe: the victim's re-run
// produces the identical summary).
var ErrLeaseExpired = errors.New("job lease expired on victim")

// Transport carries the steal protocol to a peer. The policy code
// (Stealer, admission's idlest-peer selection, the cluster simulator)
// speaks only this interface; HTTPTransport is the production
// implementation, and clustersim substitutes an in-memory one so the
// identical policy code runs deterministically offline.
type Transport interface {
	// Probe asks one peer for its queue and cache status. The
	// implementation must clear the peer's self-stamped Seen —
	// observation time is the observer's business.
	Probe(peer string) (PeerStatus, error)
	// Claim attempts to take one whole job from a peer on a lease.
	// ok=false with a nil error means the peer had nothing stealable.
	Claim(peer, thief string) (StolenJob, bool, error)
	// Settle reports a stolen job's outcome back to its victim.
	// ErrLeaseExpired (possibly wrapped) means the victim re-owns the
	// job and discarded the result.
	Settle(victim, jobID string, res clusterapi.StealResult) error
}

// HTTPTransport is the production Transport: the steal protocol over
// the daemon's HTTP routes (GET /steal, POST /jobs/claim,
// POST /jobs/{id}/result).
type HTTPTransport struct {
	// Client overrides http.DefaultClient.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t != nil && t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// Probe asks one peer for its queue and cache status (GET /steal).
func (t *HTTPTransport) Probe(peer string) (PeerStatus, error) {
	resp, err := t.client().Get(peer + "/steal")
	if err != nil {
		return PeerStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return PeerStatus{}, fmt.Errorf("probe %s: status %d", peer, resp.StatusCode)
	}
	var st PeerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return PeerStatus{}, fmt.Errorf("probe %s: %w", peer, err)
	}
	// The victim stamps Seen with its own clock; observation time is
	// the observer's business (and victim clock skew would poison
	// staleness checks), so clear it for Gossip.Record to re-stamp.
	st.Seen = time.Time{}
	return st, nil
}

// Claim attempts to take one whole job from a peer (POST /jobs/claim).
func (t *HTTPTransport) Claim(peer, thief string) (StolenJob, bool, error) {
	body, _ := json.Marshal(map[string]string{"thief": thief})
	resp, err := t.client().Post(peer+"/jobs/claim", "application/json", bytes.NewReader(body))
	if err != nil {
		return StolenJob{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent:
		return StolenJob{}, false, nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return StolenJob{}, false, fmt.Errorf("claim from %s: status %d", peer, resp.StatusCode)
	}
	var job StolenJob
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return StolenJob{}, false, fmt.Errorf("claim from %s: %w", peer, err)
	}
	if job.ID == "" || !job.Spec.Stealable() {
		return StolenJob{}, false, fmt.Errorf("claim from %s: unusable job %+v", peer, job)
	}
	return job, true, nil
}

// Settle reports a stolen job's outcome (POST /jobs/{id}/result).
func (t *HTTPTransport) Settle(victim, jobID string, res clusterapi.StealResult) error {
	body, err := json.Marshal(&res)
	if err != nil {
		return err
	}
	resp, err := t.client().Post(victim+"/jobs/"+jobID+"/result", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("report stolen job %s to %s: %w", jobID, victim, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusConflict {
		return fmt.Errorf("report stolen job %s to %s: %w", jobID, victim, ErrLeaseExpired)
	}
	if apiErr := clusterapi.DecodeError(raw); apiErr != nil {
		return fmt.Errorf("report stolen job %s to %s: status %d: %w", jobID, victim, resp.StatusCode, apiErr)
	}
	return fmt.Errorf("report stolen job %s to %s: status %d", jobID, victim, resp.StatusCode)
}

// Probe asks one peer for its queue and cache status over HTTP.
// Exported as a free function because the stealer loop is not the only
// consumer: steal-aware admission probes on demand when its gossip view
// is empty (a node without a running stealer still wants a Retry-Peer
// target).
func Probe(client *http.Client, peer string) (PeerStatus, error) {
	return (&HTTPTransport{Client: client}).Probe(peer)
}

// IdlestPeer picks the best admission-redirect (or load-shedding)
// target from a gossip view: the healthy peer with the shortest known
// queue that is not itself full. Peers missing from the view, peers
// whose last probe failed, and peers at their admission cap are all
// skipped — redirecting a submitter into another full queue would just
// bounce them around the cluster. ok=false means no peer is known to
// have room. Shared by the daemon's steal-aware admission and the
// cluster simulator, so tuning runs exercise the production policy.
func IdlestPeer(peers []string, view map[string]PeerStatus) (string, bool) {
	var best string
	bestLen, found := 0, false
	for _, peer := range peers {
		st, ok := view[peer]
		if !ok || st.Err != "" {
			continue
		}
		if st.QueueCap > 0 && st.QueueLen >= st.QueueCap {
			continue // full too; not a valid redirect target
		}
		if !found || st.QueueLen < bestLen {
			best, bestLen, found = peer, st.QueueLen, true
		}
	}
	return best, found
}
